// Package repro's root benchmarks regenerate every table and figure of
// the paper at reduced scale: one testing.B benchmark per artifact,
// each reporting its headline number via b.ReportMetric. Run the full
// harness with cmd/experiments; run these with
//
//	go test -bench=. -benchmem
//
// Benchmarks use small instruction windows so the whole suite completes
// in minutes; cmd/experiments (optionally -full) produces the
// paper-scale numbers recorded in EXPERIMENTS.md.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/domino"
	"repro/internal/prefetch/hybrid"
	"repro/internal/prefetch/misb"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/stms"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchWindows are deliberately small; they preserve each figure's
// qualitative shape, not its converged magnitude.
const (
	benchWarmup  = 1_200_000
	benchMeasure = 600_000
)

func llcTicks1() uint64 {
	m := config.Default(1)
	return uint64(m.LLCLatency) * dram.TicksPerCycle
}

func runBench(b *testing.B, name string, pf prefetch.Prefetcher, cores int) sim.Result {
	b.Helper()
	spec, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("unknown benchmark %s", name)
	}
	m := config.Default(cores)
	ws := make([]trace.Reader, cores)
	pfs := make([]prefetch.Prefetcher, cores)
	for c := 0; c < cores; c++ {
		ws[c] = spec.New(uint64(c)+1, mem.Addr(c+1)<<40)
		pfs[c] = pf
		if c > 0 {
			pfs[c] = nil // single prefetcher instance only on core 0 for simplicity
		}
	}
	machine, err := sim.New(sim.Options{
		Machine:             m,
		Workloads:           ws,
		Prefetchers:         pfs,
		WarmupInstructions:  benchWarmup,
		MeasureInstructions: benchMeasure,
	})
	if err != nil {
		b.Fatal(err)
	}
	return machine.Run()
}

// speedupOn measures pf's speedup over no prefetching on one benchmark.
func speedupOn(b *testing.B, bench string, mk func() prefetch.Prefetcher) float64 {
	b.Helper()
	base := runBench(b, bench, nil, 1)
	with := runBench(b, bench, mk(), 1)
	return with.SpeedupOver(base)
}

func mkTriage1M() prefetch.Prefetcher {
	return core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20, LLCLatencyTicks: llcTicks1()})
}

func mkTriageDyn() prefetch.Prefetcher {
	return core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: llcTicks1()})
}

// BenchmarkFig01Reuse regenerates the metadata reuse distribution.
func BenchmarkFig01Reuse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tri := core.New(core.Config{Mode: core.Unlimited})
		runBench(b, "mcf", tri, 1)
		counts := tri.ReuseCounts()
		if len(counts) == 0 {
			b.Fatal("no metadata recorded")
		}
		// At bench scale few entries exceed the paper's 15-reuse mark,
		// so report the skew as top-entry reuse and the share of
		// entries with any reuse at all.
		var max, reused uint64
		for _, c := range counts {
			if c > max {
				max = c
			}
			if c > 0 {
				reused++
			}
		}
		b.ReportMetric(float64(max), "max-reuse")
		b.ReportMetric(100*float64(reused)/float64(len(counts)), "pct-entries-reused")
	}
}

// BenchmarkFig05Speedup regenerates the headline Triage-vs-on-chip
// comparison on one representative benchmark per class.
func BenchmarkFig05Speedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(speedupOn(b, "xalancbmk", mkTriage1M), "triage-speedup")
		b.ReportMetric(speedupOn(b, "xalancbmk", func() prefetch.Prefetcher { return bo.New() }), "bo-speedup")
	}
}

// BenchmarkFig06CovAcc regenerates coverage/accuracy.
func BenchmarkFig06CovAcc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runBench(b, "omnetpp", nil, 1)
		with := runBench(b, "omnetpp", mkTriage1M(), 1)
		b.ReportMetric(with.CoverageOver(base)*100, "coverage-pct")
		b.ReportMetric(with.Accuracy()*100, "accuracy-pct")
	}
}

// BenchmarkFig07Breakdown regenerates the capacity-loss breakdown.
func BenchmarkFig07Breakdown(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	for i := 0; i < b.N; i++ {
		mk := func(llcBytes int, pf prefetch.Prefetcher, free bool) sim.Result {
			m := config.Default(1)
			m.LLCBytesPerCore = llcBytes
			machine, err := sim.New(sim.Options{
				Machine:             m,
				Workloads:           []trace.Reader{spec.New(1, 0)},
				Prefetchers:         []prefetch.Prefetcher{pf},
				WarmupInstructions:  benchWarmup,
				MeasureInstructions: benchMeasure,
				NoCapacityLoss:      free,
			})
			if err != nil {
				b.Fatal(err)
			}
			return machine.Run()
		}
		base := mk(2<<20, nil, false)
		freeStore := mk(2<<20, mkTriage1M(), true)
		halfLLC := mk(1<<20, nil, false)
		b.ReportMetric(freeStore.SpeedupOver(base), "free-store-speedup")
		b.ReportMetric(halfLLC.SpeedupOver(base), "half-llc-speedup")
	}
}

// BenchmarkFig08Regular shows Triage-Dynamic doing no harm on a
// regular benchmark where static partitioning hurts.
func BenchmarkFig08Regular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(speedupOn(b, "milc", mkTriageDyn), "dyn-speedup")
		b.ReportMetric(speedupOn(b, "milc", func() prefetch.Prefetcher { return bo.New() }), "bo-speedup")
	}
}

// BenchmarkFig09Sensitivity compares LRU vs Hawkeye metadata
// replacement at a small store size.
func BenchmarkFig09Sensitivity(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	for i := 0; i < b.N; i++ {
		run := func(repl core.Replacement) sim.Result {
			m := config.Default(1)
			machine, err := sim.New(sim.Options{
				Machine: m,
				Workloads: []trace.Reader{
					spec.New(1, 0),
				},
				Prefetchers: []prefetch.Prefetcher{core.New(core.Config{
					Mode: core.Static, StaticBytes: 256 << 10,
					Replacement: repl, LLCLatencyTicks: llcTicks1(),
				})},
				WarmupInstructions:  benchWarmup,
				MeasureInstructions: benchMeasure,
				NoCapacityLoss:      true,
			})
			if err != nil {
				b.Fatal(err)
			}
			return machine.Run()
		}
		base := runBench(b, "mcf", nil, 1)
		b.ReportMetric(run(core.LRU).SpeedupOver(base), "lru-256k-speedup")
		b.ReportMetric(run(core.Hawkeye).SpeedupOver(base), "hawkeye-256k-speedup")
	}
}

// BenchmarkFig10Hybrid regenerates the BO+Triage hybrid comparison.
func BenchmarkFig10Hybrid(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := speedupOn(b, "soplex_k", func() prefetch.Prefetcher {
			return hybrid.New(mkTriageDyn(), bo.New())
		})
		b.ReportMetric(sp, "hybrid-speedup")
	}
}

// BenchmarkFig11OffChip regenerates the off-chip temporal prefetcher
// comparison (speedup and traffic) on mcf.
func BenchmarkFig11OffChip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runBench(b, "mcf", nil, 1)
		mi := runBench(b, "mcf", misb.New(), 1)
		tr := runBench(b, "mcf", mkTriage1M(), 1)
		st := runBench(b, "mcf", stms.New(), 1)
		b.ReportMetric(mi.SpeedupOver(base), "misb-speedup")
		b.ReportMetric(tr.SpeedupOver(base), "triage-speedup")
		b.ReportMetric(st.SpeedupOver(base), "stms-speedup")
		b.ReportMetric(mi.TrafficOverheadPct(base), "misb-traffic-pct")
		b.ReportMetric(tr.TrafficOverheadPct(base), "triage-traffic-pct")
	}
}

// BenchmarkFig12DesignSpace reports the two axes of the design-space
// scatter for Triage.
func BenchmarkFig12DesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := runBench(b, "omnetpp", nil, 1)
		tr := runBench(b, "omnetpp", mkTriage1M(), 1)
		b.ReportMetric(tr.SpeedupOver(base), "speedup")
		b.ReportMetric(tr.TrafficOverheadPct(base), "traffic-pct")
	}
}

// BenchmarkFig13Energy regenerates the metadata energy comparison.
func BenchmarkFig13Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := runBench(b, "mcf", mkTriage1M(), 1)
		mi := runBench(b, "mcf", misb.New(), 1)
		te := float64(tr.TriageLLCMetadataAccesses)
		me := float64(mi.MISBOffChipMetadataAccesses)
		if te == 0 {
			b.Fatal("no Triage metadata accesses")
		}
		b.ReportMetric(me*25/te, "misb-energy-ratio@25")
	}
}

// BenchmarkFig14CloudSuite runs one server workload on 4 cores with
// the BO+Triage hybrid.
func BenchmarkFig14CloudSuite(b *testing.B) {
	spec, _ := workload.ByName("classification")
	for i := 0; i < b.N; i++ {
		run := func(mk func() prefetch.Prefetcher) sim.Result {
			m := config.Default(4)
			ws := make([]trace.Reader, 4)
			pfs := make([]prefetch.Prefetcher, 4)
			for c := 0; c < 4; c++ {
				ws[c] = spec.New(uint64(c)+1, mem.Addr(c+1)<<40)
				if mk != nil {
					pfs[c] = mk()
				}
			}
			machine, err := sim.New(sim.Options{
				Machine: m, Workloads: ws, Prefetchers: pfs,
				WarmupInstructions:  benchWarmup,
				MeasureInstructions: benchMeasure / 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			return machine.Run()
		}
		base := run(nil)
		hyb := run(func() prefetch.Prefetcher { return hybrid.New(mkTriageDyn(), bo.New()) })
		b.ReportMetric(hyb.SpeedupOver(base), "bo+triage-speedup")
	}
}

// benchMix runs one 4-core mix under a prefetcher factory.
func benchMix(b *testing.B, irregularOnly bool, mk func() prefetch.Prefetcher) float64 {
	b.Helper()
	mix := workload.Mixes(1, 4, 7, irregularOnly)[0]
	run := func(use bool) sim.Result {
		m := config.Default(4)
		ws := make([]trace.Reader, 4)
		pfs := make([]prefetch.Prefetcher, 4)
		for c, spec := range mix.Specs {
			ws[c] = spec.New(uint64(c)+11, mem.Addr(c+1)<<40)
			if use {
				pfs[c] = mk()
			}
		}
		machine, err := sim.New(sim.Options{
			Machine: m, Workloads: ws, Prefetchers: pfs,
			WarmupInstructions:  benchWarmup,
			MeasureInstructions: benchMeasure / 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		return machine.Run()
	}
	base := run(false)
	return run(true).SpeedupOver(base)
}

// BenchmarkFig15DynShared compares static vs dynamic partitioning on a
// shared-LLC mix.
func BenchmarkFig15DynShared(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := benchMix(b, true, func() prefetch.Prefetcher {
			return core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20, LLCLatencyTicks: llcTicks1()})
		})
		dy := benchMix(b, true, mkTriageDyn)
		b.ReportMetric(st, "static-speedup")
		b.ReportMetric(dy, "dynamic-speedup")
	}
}

// BenchmarkFig16FourCore runs the irregular-mix hybrid comparison.
func BenchmarkFig16FourCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(benchMix(b, true, func() prefetch.Prefetcher {
			return hybrid.New(mkTriageDyn(), bo.New())
		}), "bo+triage-speedup")
	}
}

// BenchmarkFig17Scaling compares MISB and Triage on an 8-core mix (the
// bandwidth-constrained regime; the full 2/4/8/16 sweep lives in
// cmd/experiments).
func BenchmarkFig17Scaling(b *testing.B) {
	mix := workload.Mixes(1, 8, 50, true)[0]
	run := func(mk func() prefetch.Prefetcher) sim.Result {
		m := config.Default(8)
		ws := make([]trace.Reader, 8)
		pfs := make([]prefetch.Prefetcher, 8)
		for c, spec := range mix.Specs {
			ws[c] = spec.New(uint64(c)+3, mem.Addr(c+1)<<40)
			if mk != nil {
				pfs[c] = mk()
			}
		}
		machine, err := sim.New(sim.Options{
			Machine: m, Workloads: ws, Prefetchers: pfs,
			WarmupInstructions:  benchWarmup / 2,
			MeasureInstructions: benchMeasure / 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		return machine.Run()
	}
	for i := 0; i < b.N; i++ {
		base := run(nil)
		b.ReportMetric(run(func() prefetch.Prefetcher { return misb.New() }).SpeedupOver(base), "misb-speedup")
		b.ReportMetric(run(mkTriageDyn).SpeedupOver(base), "triage-speedup")
	}
}

// BenchmarkFig18MixedRegular runs a mixed regular+irregular 4-core mix.
func BenchmarkFig18MixedRegular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.ReportMetric(benchMix(b, false, func() prefetch.Prefetcher {
			return hybrid.New(mkTriageDyn(), bo.New())
		}), "bo+triage-speedup")
	}
}

// BenchmarkFig19WayAlloc reports the spread of per-core metadata way
// allocations on a mixed mix.
func BenchmarkFig19WayAlloc(b *testing.B) {
	mix := workload.Mixes(1, 4, 99, false)[0]
	for i := 0; i < b.N; i++ {
		m := config.Default(4)
		ws := make([]trace.Reader, 4)
		pfs := make([]prefetch.Prefetcher, 4)
		for c, spec := range mix.Specs {
			ws[c] = spec.New(uint64(c)+17, mem.Addr(c+1)<<40)
			pfs[c] = mkTriageDyn()
		}
		machine, err := sim.New(sim.Options{
			Machine: m, Workloads: ws, Prefetchers: pfs,
			WarmupInstructions:  benchWarmup,
			MeasureInstructions: benchMeasure / 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		res := machine.Run()
		min, max := 1e18, 0.0
		for _, cr := range res.Cores {
			if cr.AvgMetadataWays < min {
				min = cr.AvgMetadataWays
			}
			if cr.AvgMetadataWays > max {
				max = cr.AvgMetadataWays
			}
		}
		b.ReportMetric(max-min, "way-allocation-spread")
	}
}

// BenchmarkFig20Degree regenerates the degree sensitivity at degree 4.
func BenchmarkFig20Degree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sp := speedupOn(b, "xalancbmk", func() prefetch.Prefetcher {
			return core.New(core.Config{
				Mode: core.Static, StaticBytes: 1 << 20,
				Degree: 4, LLCLatencyTicks: llcTicks1(),
			})
		})
		b.ReportMetric(sp, "triage-d4-speedup")
	}
}

// BenchmarkSensEpoch checks partition-epoch insensitivity.
func BenchmarkSensEpoch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, epoch := range []int{10_000, 200_000} {
			sp := speedupOn(b, "omnetpp", func() prefetch.Prefetcher {
				return core.New(core.Config{Mode: core.Dynamic, EpochAccesses: epoch, LLCLatencyTicks: llcTicks1()})
			})
			b.ReportMetric(sp, fmt.Sprintf("epoch%dk-speedup", epoch/1000))
		}
	}
}

// BenchmarkSensLatency checks the +6 cycle LLC latency penalty.
func BenchmarkSensLatency(b *testing.B) {
	spec, _ := workload.ByName("omnetpp")
	for i := 0; i < b.N; i++ {
		m := config.Default(1)
		m.LLCExtraLatency = 6
		machine, err := sim.New(sim.Options{
			Machine:   m,
			Workloads: []trace.Reader{spec.New(1, 0)},
			Prefetchers: []prefetch.Prefetcher{core.New(core.Config{
				Mode: core.Static, StaticBytes: 1 << 20,
				LLCLatencyTicks: uint64(m.LLCLatency+6) * dram.TicksPerCycle,
			})},
			WarmupInstructions:  benchWarmup,
			MeasureInstructions: benchMeasure,
		})
		if err != nil {
			b.Fatal(err)
		}
		penalized := machine.Run()
		base := runBench(b, "omnetpp", nil, 1)
		b.ReportMetric(penalized.SpeedupOver(base), "speedup-at+6cyc")
	}
}

// BenchmarkAblationEntryWidth quantifies the value of the 4-byte
// compressed-tag entry format (§3.2): 8-byte full-tag entries halve the
// effective store capacity, which is exactly a 512KB store in a 1MB
// partition.
func BenchmarkAblationEntryWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		compressed := speedupOn(b, "mcf", mkTriage1M) // 4B entries: 256K entries/MB
		full := speedupOn(b, "mcf", func() prefetch.Prefetcher {
			// 8B entries: half the entries in the same silicon.
			return core.New(core.Config{Mode: core.Static, StaticBytes: 512 << 10, LLCLatencyTicks: llcTicks1()})
		})
		b.ReportMetric(compressed, "4B-entry-speedup")
		b.ReportMetric(full, "8B-entry-speedup")
	}
}

// BenchmarkAblationReplacement isolates the metadata replacement policy
// at the paper's store sizes (DESIGN.md ablation).
func BenchmarkAblationReplacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, repl := range []core.Replacement{core.LRU, core.Hawkeye} {
			repl := repl
			sp := speedupOn(b, "mcf", func() prefetch.Prefetcher {
				return core.New(core.Config{
					Mode: core.Static, StaticBytes: 512 << 10,
					Replacement: repl, LLCLatencyTicks: llcTicks1(),
				})
			})
			name := "lru-speedup"
			if repl == core.Hawkeye {
				name = "hawkeye-speedup"
			}
			b.ReportMetric(sp, name)
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed
// (instructions per second of host time), the simulator's own cost.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine, err := sim.New(sim.Options{
			Machine:             config.Default(1),
			Workloads:           []trace.Reader{spec.New(uint64(i)+1, 0)},
			MeasureInstructions: 1_000_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		machine.Run()
	}
	b.ReportMetric(float64(b.N)*1_000_000/b.Elapsed().Seconds(), "sim-instr/s")
}

// The remaining zoo components get smoke benches so regressions in any
// prefetcher's cost show up in -bench runs.
func BenchmarkPrefetcherTrainCost(b *testing.B) {
	gens := map[string]prefetch.Prefetcher{
		"bo":     bo.New(),
		"sms":    sms.New(),
		"stms":   stms.New(),
		"domino": domino.New(),
		"misb":   misb.New(),
		"triage": mkTriage1M().(*core.Triage),
	}
	for name, pf := range gens {
		b.Run(name, func(b *testing.B) {
			r := workload.NewChase(workload.ChaseParams{
				Nodes: 64 << 10, Streams: 2, HotFrac: 0.5, HotProb: 0.8, RunLen: 128, Gap: 0,
			}, 9, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, _ := r.Next()
				if rec.Op != trace.Load {
					continue
				}
				pf.Train(prefetch.Event{PC: rec.PC, Line: mem.LineOf(rec.Addr), Miss: true, Tick: uint64(i)})
			}
		})
	}
}

// BenchmarkExperimentRegistry sanity-runs the experiment registry
// plumbing (no simulations).
func BenchmarkExperimentRegistry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.All()) < 19 {
			b.Fatal("experiment registry incomplete")
		}
	}
}

// --- Step-loop microbenchmarks (BENCH_sim.json "micro" rows) ---
//
// These three isolate the simulator's hot machinery rather than a
// figure: the batched retirement loop itself, the devirtualized
// prefetcher dispatch path, and warm-state snapshot restore. Merge
// their results into BENCH_sim.json with:
//
//	go test -run '^$' -bench 'StepLoop|PrefetchDispatch|WarmupSnapshot' . |
//	    go run ./cmd/benchmerge -file BENCH_sim.json -pkg repro

// BenchmarkStepLoop measures the raw batched step loop: one core, no
// prefetcher, so nothing but dispatch, cache lookups, and retirement.
func BenchmarkStepLoop(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	const instr = 1_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine, err := sim.New(sim.Options{
			Machine:             config.Default(1),
			Workloads:           []trace.Reader{spec.New(uint64(i)+1, 0)},
			MeasureInstructions: instr,
		})
		if err != nil {
			b.Fatal(err)
		}
		machine.Run()
	}
	b.ReportMetric(float64(b.N)*instr/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkPrefetchDispatch measures the step loop with a Triage
// prefetcher attached: every L2 event goes through the function-
// pointer dispatch table resolved at machine construction.
func BenchmarkPrefetchDispatch(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	const instr = 1_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine, err := sim.New(sim.Options{
			Machine:             config.Default(1),
			Workloads:           []trace.Reader{spec.New(uint64(i)+1, 0)},
			Prefetchers:         []prefetch.Prefetcher{mkTriage1M()},
			MeasureInstructions: instr,
		})
		if err != nil {
			b.Fatal(err)
		}
		machine.Run()
	}
	b.ReportMetric(float64(b.N)*instr/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkWarmupSnapshot measures a warm-restored run end to end: a
// cold run populates the process snapshot cache, then every iteration
// restores the 2M-instruction warm state instead of re-simulating it
// and runs a short measurement window on top.
func BenchmarkWarmupSnapshot(b *testing.B) {
	spec, _ := workload.ByName("mcf")
	const (
		warm    = 2_000_000
		measure = 200_000
	)
	mk := func(seedRun int) *sim.Machine {
		machine, err := sim.New(sim.Options{
			Machine:             config.Default(1),
			Workloads:           []trace.Reader{spec.New(1, 0)},
			Prefetchers:         []prefetch.Prefetcher{mkTriage1M()},
			WarmupInstructions:  warm,
			MeasureInstructions: measure,
			WarmKey:             "bench/warm-snapshot/mcf/triage-1m",
		})
		if err != nil {
			b.Fatal(err)
		}
		return machine
	}
	sim.GlobalWarmCache().Reset()
	mk(0).Run() // cold: simulates warmup and stores the snapshot
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mk(i + 1).Run()
	}
	b.StopTimer()
	hits, _, _ := sim.GlobalWarmCache().Stats()
	if hits < uint64(b.N) {
		b.Fatalf("warm restores: %d of %d runs", hits, b.N)
	}
	b.ReportMetric(float64(b.N)*(warm+measure)/b.Elapsed().Seconds()/1e6, "effective-Minstr/s")
}
