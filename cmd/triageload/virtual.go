package main

import (
	"container/heap"
	"sort"
	"time"

	"repro/internal/benchfile"
	"repro/internal/service"
)

// The virtual clock runs the scenario as a deterministic discrete-
// event simulation of the service's admission pipeline: the same FIFO
// queue semantics, queue cap, worker count, in-flight dedup, and warm
// store the real server implements, with each job's service time given
// by the specCost model instead of the wall clock. Identical seeds
// therefore produce byte-identical BENCH_service.json rows — that is
// the mode verify.sh pins with cmp — while the real service path is
// exercised separately by the validation pass in main.go.

// desJob is one in-flight (queued or running) virtual job.
type desJob struct {
	key     string
	waiters []time.Duration // arrival offsets awaiting this result
}

// completion is a worker finishing at a virtual instant.
type completion struct {
	at  time.Duration
	seq int // FIFO tie-break so equal times resolve deterministically
	job *desJob
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)         { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any           { old := *h; x := old[len(old)-1]; *h = old[:len(old)-1]; return x }
func (h completionHeap) peek() time.Duration { return h[0].at }

// clusterDispatchRTT is the fixed per-job network overhead the cluster
// model charges on top of the service time: one lease assignment
// round-trip plus one result upload, the two RPCs every remotely
// executed job pays on the (uncontended) LAN path the cluster targets.
const clusterDispatchRTT = 2 * time.Millisecond

// runVirtual plays the schedule through the DES and returns the
// scenario row (latency quantiles in virtual time) plus the dedup keys
// observed, so callers can sanity-check against the generator.
// A fault window (fw) models degraded mode the way the real server
// sequences it: dedup joins and warm-store hits still succeed while
// degraded (Submit checks them before the degraded gate), fresh
// admissions shed with 503. The window opens and closes on arrival
// index, mirroring the wall clock's SetPlan/Heal points.
//
// cluster > 0 switches execution to the coordinator/worker model:
// admission, dedup joins and warm-store hits still happen at the
// coordinator (unchanged), but jobs execute on that many remote
// workers, each job paying clusterDispatchRTT of network overhead.
func runVirtual(arr []arrival, workers, queueCap int, fw faultWindow, cluster int) benchfile.ServiceRow {
	overhead := time.Duration(0)
	if cluster > 0 {
		workers = cluster
		overhead = clusterDispatchRTT
	}
	var (
		comps     completionHeap
		queue     []*desJob
		inflight  = make(map[string]*desJob) // queued or running
		store     = make(map[string]bool)    // virtually durable results
		cost      = make(map[string]time.Duration)
		latencies []time.Duration
		row       benchfile.ServiceRow
		running   int
		seq       int
		now       time.Duration
	)
	qHWM, iHWM := 0, 0
	start := func(j *desJob) {
		running++
		if running > iHWM {
			iHWM = running
		}
		seq++
		heap.Push(&comps, completion{at: now + cost[j.key], seq: seq, job: j})
	}
	finish := func(c completion) {
		running--
		store[c.job.key] = true
		delete(inflight, c.job.key)
		for _, at := range c.job.waiters {
			latencies = append(latencies, now-at)
			row.Completed++
		}
		if len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			start(j)
		}
	}
	admit := func(i int, a arrival) {
		key := keyOf(a.Spec)
		if j, ok := inflight[key]; ok {
			row.Deduped++
			j.waiters = append(j.waiters, a.At)
			return
		}
		if store[key] {
			row.StoreHits++
			row.Completed++
			latencies = append(latencies, 0) // served warm, no queueing
			return
		}
		if fw.degraded(i) {
			row.Rejected503++
			return
		}
		if len(queue) >= queueCap {
			row.Rejected429++
			return
		}
		j := &desJob{key: key, waiters: []time.Duration{a.At}}
		inflight[key] = j
		cost[key] = specCost(a.Spec) + overhead
		if running < workers {
			start(j)
			return
		}
		queue = append(queue, j)
		if len(queue) > qHWM {
			qHWM = len(queue)
		}
	}

	i := 0
	for i < len(arr) || comps.Len() > 0 {
		// Completions at t run before arrivals at t: the real server
		// frees the queue slot before the next Submit can observe it.
		if comps.Len() > 0 && (i >= len(arr) || comps.peek() <= arr[i].At) {
			c := heap.Pop(&comps).(completion)
			now = c.at
			finish(c)
			continue
		}
		now = arr[i].At
		admit(i, arr[i])
		i++
	}

	row.Jobs = len(arr)
	row.QueueDepthHWM = qHWM
	row.InflightHWM = iHWM
	row.WallSeconds = now.Seconds()
	if row.WallSeconds > 0 {
		row.ThroughputJobsPerSec = round3(float64(row.Completed) / row.WallSeconds)
	}
	if row.Jobs > 0 {
		row.DedupRate = round3(float64(row.Deduped+row.StoreHits) / float64(row.Jobs))
	}
	row.WallSeconds = round3(row.WallSeconds)
	fillQuantiles(&row, latencies)
	return row
}

// keyOf canonicalizes a spec to its content key (the same identity the
// service dedups on).
func keyOf(spec service.JobSpec) string { return spec.Run.Key() }

// fillQuantiles computes exact latency quantiles from the sample set
// (sorted, nearest-rank) in milliseconds.
func fillQuantiles(row *benchfile.ServiceRow, lat []time.Duration) {
	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) float64 {
		i := int(float64(len(lat))*p+0.9999999) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return round3(float64(lat[i]) / float64(time.Millisecond))
	}
	row.P50Ms = q(0.50)
	row.P99Ms = q(0.99)
	row.P999Ms = q(0.999)
	row.MaxMs = round3(float64(lat[len(lat)-1]) / float64(time.Millisecond))
}

// round3 trims float noise to 3 decimals so reports stay readable and
// byte-stable.
func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }
