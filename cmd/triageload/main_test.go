package main

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/benchfile"
)

func testGen(t *testing.T, mutate func(*genConfig)) []arrival {
	t.Helper()
	g := genConfig{Process: "poisson", Rate: 500, Jobs: 80, Seed: 7, Dedup: 0.2, Bench: "mcf", PF: "none"}
	if mutate != nil {
		mutate(&g)
	}
	arr, err := generate(g)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

// TestGenerateDeterministic pins the schedule generator: the same seed
// reproduces the schedule exactly, a different seed does not.
func TestGenerateDeterministic(t *testing.T) {
	a, b := testGen(t, nil), testGen(t, nil)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different schedules")
	}
	c := testGen(t, func(g *genConfig) { g.Seed = 8 })
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated the same schedule")
	}
}

// TestGenerateSchedules pins structural invariants for every process:
// requested length, non-decreasing arrival times, dup arrivals reuse a
// spec some earlier fresh arrival introduced.
func TestGenerateSchedules(t *testing.T) {
	for _, proc := range []string{"poisson", "bursty", "diurnal"} {
		arr := testGen(t, func(g *genConfig) { g.Process = proc; g.Period = time.Second })
		if len(arr) != 80 {
			t.Fatalf("%s: generated %d arrivals, want 80", proc, len(arr))
		}
		seen := make(map[string]bool)
		var last time.Duration
		dups := 0
		for _, a := range arr {
			if a.At < last {
				t.Fatalf("%s: arrival times go backwards (%v after %v)", proc, a.At, last)
			}
			last = a.At
			key := keyOf(a.Spec)
			if a.Dup {
				dups++
				if !seen[key] {
					t.Fatalf("%s: dup arrival reuses a spec never introduced", proc)
				}
			}
			seen[key] = true
		}
		if dups == 0 {
			t.Errorf("%s: 20%% dedup produced no dup arrivals in 80", proc)
		}
	}
	if _, err := generate(genConfig{Process: "lumpy", Rate: 1, Jobs: 1}); err == nil {
		t.Error("unknown process accepted")
	}
}

// TestVirtualAccounting pins DES bookkeeping: every arrival is either
// completed or rejected, HWMs respect the configured caps, and
// latency quantiles are ordered.
func TestVirtualAccounting(t *testing.T) {
	arr := testGen(t, func(g *genConfig) { g.Rate = 2000; g.Jobs = 200 })
	row := runVirtual(arr, 2, 8, faultWindow{}, 0)
	if got := row.Completed + row.Rejected429 + row.Rejected503; got != row.Jobs {
		t.Errorf("accounting leak: %d completed + %d rejected != %d jobs",
			row.Completed, row.Rejected429+row.Rejected503, row.Jobs)
	}
	if row.QueueDepthHWM > 8 {
		t.Errorf("queue HWM %d exceeds cap 8", row.QueueDepthHWM)
	}
	if row.InflightHWM > 2 {
		t.Errorf("inflight HWM %d exceeds 2 workers", row.InflightHWM)
	}
	if row.Rejected429 == 0 {
		t.Error("2000 jobs/sec against 2 workers and queue 8 produced no backpressure")
	}
	if !(row.P50Ms <= row.P99Ms && row.P99Ms <= row.P999Ms && row.P999Ms <= row.MaxMs) {
		t.Errorf("quantiles out of order: p50 %g p99 %g p999 %g max %g",
			row.P50Ms, row.P99Ms, row.P999Ms, row.MaxMs)
	}
	if row.WallSeconds <= 0 || row.ThroughputJobsPerSec <= 0 {
		t.Errorf("degenerate wall/throughput: %+v", row)
	}
}

// TestVirtualByteIdentical pins the determinism contract end to end
// through the CLI: two full runs (validation pass included) write
// byte-identical reports.
func TestVirtualByteIdentical(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")}
	for _, p := range paths {
		err := run([]string{
			"-scenario", "pin", "-process", "diurnal", "-rate", "400",
			"-jobs", "40", "-seed", "11", "-validate", "2", "-o", p,
		}, os.Stdout)
		if err != nil {
			t.Fatal(err)
		}
	}
	a, _ := os.ReadFile(paths[0])
	b, _ := os.ReadFile(paths[1])
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed runs differ:\n%s\nvs\n%s", a, b)
	}
	f, err := benchfile.ReadService(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := f.Row("pin"); !ok || r.Completed == 0 {
		t.Fatalf("report row missing or empty: %+v", f)
	}
}

// TestVirtualFaultWindow pins the degraded-mode model: a store-fault
// window sheds fresh admissions with 503 (dedup joins and warm hits
// still succeed, matching the real Submit order), accounting still
// balances, and the run stays deterministic.
func TestVirtualFaultWindow(t *testing.T) {
	arr := testGen(t, func(g *genConfig) { g.Rate = 2000; g.Jobs = 200 })
	fw := faultWindow{after: 50, dur: 60}
	row := runVirtual(arr, 2, 8, fw, 0)
	if row.Rejected503 == 0 {
		t.Fatal("a 60-arrival fault window shed nothing")
	}
	if got := row.Completed + row.Rejected429 + row.Rejected503; got != row.Jobs {
		t.Errorf("accounting leak under faults: %+v", row)
	}
	healthy := runVirtual(arr, 2, 8, faultWindow{}, 0)
	if healthy.Rejected503 != 0 {
		t.Errorf("healthy run counted 503s: %+v", healthy)
	}
	if again := runVirtual(arr, 2, 8, fw, 0); !reflect.DeepEqual(row, again) {
		t.Error("fault-window run is not deterministic")
	}
}

// TestVirtualClusterModel pins the coordinator/worker model: remote
// execution charges the dispatch round-trip on every executed job
// (warm hits still serve at zero latency), concurrency follows the
// remote worker count rather than the in-process pool, the run stays
// deterministic, and the CLI rejects the knob on the wall clock.
func TestVirtualClusterModel(t *testing.T) {
	arr := testGen(t, func(g *genConfig) { g.Rate = 400; g.Jobs = 120 })
	single := runVirtual(arr, 4, 64, faultWindow{}, 0)
	clustered := runVirtual(arr, 0, 64, faultWindow{}, 4)
	if got := clustered.Completed + clustered.Rejected429 + clustered.Rejected503; got != clustered.Jobs {
		t.Errorf("accounting leak in cluster mode: %+v", clustered)
	}
	// Same concurrency (4 vs 4) and schedule, every service time 2ms
	// longer: the slowest executed job must be at least that much slower.
	if clustered.MaxMs < single.MaxMs+2 {
		t.Errorf("dispatch RTT not charged: single max %gms, clustered max %gms",
			single.MaxMs, clustered.MaxMs)
	}
	if narrow := runVirtual(arr, 8, 64, faultWindow{}, 2); narrow.InflightHWM > 2 {
		t.Errorf("cluster of 2 ran %d jobs concurrently (in-process pool leaked through)", narrow.InflightHWM)
	}
	if again := runVirtual(arr, 0, 64, faultWindow{}, 4); !reflect.DeepEqual(clustered, again) {
		t.Error("cluster-model run is not deterministic")
	}
	err := run([]string{"-clock", "wall", "-cluster-workers", "2", "-jobs", "4", "-o", "-"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "-clock virtual") {
		t.Errorf("wall clock accepted -cluster-workers: %v", err)
	}
}

// TestWallInproc drives a real in-process server in real time and
// checks the same accounting invariant plus the observability
// validation (traces monotonic, Prometheus parseable).
func TestWallInproc(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time load run skipped in -short mode")
	}
	arr := testGen(t, func(g *genConfig) { g.Jobs = 24; g.Rate = 800 })
	tg, _, closeTg, err := wallTarget("", 2, 64, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeTg()
	row, ids, err := runWall(tg, arr, faultWindow{})
	if err != nil {
		t.Fatal(err)
	}
	if got := row.Completed + row.Rejected429 + row.Rejected503; got != row.Jobs {
		t.Errorf("accounting leak: %+v", row)
	}
	if row.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if row.QueueDepthHWM == 0 && row.InflightHWM == 0 {
		t.Error("server HWM gauges never advanced")
	}
	if err := validateTarget(tg, sampleIDs(ids, 4)); err != nil {
		t.Errorf("observability validation: %v", err)
	}
}

// TestSampleIDs pins the even spread and edge cases.
func TestSampleIDs(t *testing.T) {
	ids := []string{"a", "b", "c", "d", "e", "f"}
	if got := sampleIDs(ids, 0); got != nil {
		t.Errorf("n=0: %v", got)
	}
	if got := sampleIDs(ids, 10); len(got) != 6 {
		t.Errorf("n>len: %v", got)
	}
	got := sampleIDs(ids, 3)
	if len(got) != 3 || got[0] != "a" {
		t.Errorf("n=3: %v", got)
	}
}
