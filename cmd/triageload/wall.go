package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/benchfile"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/vfs"
)

// outcome is one submission's fate against a real server.
type outcome struct {
	jobID  string
	dedup  bool // joined an in-flight job or served warm
	warm   bool
	status int // 429, 503, or 0 for admitted
}

// target abstracts where the load lands: an in-process server over an
// in-memory disk (the default, and the only option for -clock virtual)
// or a live triaged reached over HTTP (-addr).
type target interface {
	submit(spec service.JobSpec) (outcome, error)
	waitDone(jobID string) error
	prometheus() (string, error)
	trace(jobID string) (obs.TraceDump, error)
	obsGauge(name string) (float64, error)
}

// --- in-process target ---

type inprocTarget struct{ srv *service.Server }

func (t *inprocTarget) submit(spec service.JobSpec) (outcome, error) {
	// Dup arrivals share the generator's *RunSpec; the server
	// normalizes specs in place, so each in-process submission gets its
	// own copy (the HTTP path copies implicitly by marshaling).
	if spec.Run != nil {
		r := *spec.Run
		spec.Run = &r
	}
	j, disp, err := t.srv.Submit(spec)
	switch {
	case errors.Is(err, service.ErrQueueFull):
		return outcome{status: 429}, nil
	case errors.Is(err, service.ErrDraining), errors.Is(err, service.ErrDegraded):
		return outcome{status: 503}, nil
	case err != nil:
		return outcome{}, err
	}
	return outcome{
		jobID: j.ID(),
		dedup: disp == service.DispDeduped,
		warm:  disp == service.DispCached,
	}, nil
}

func (t *inprocTarget) waitDone(jobID string) error {
	j, ok := t.srv.Lookup(jobID)
	if !ok {
		return fmt.Errorf("job %s vanished", jobID)
	}
	for {
		st := t.srv.Status(j)
		switch st.State {
		case service.StateDone:
			return nil
		case service.StateFailed:
			return fmt.Errorf("job %s failed: %s", jobID, st.Error)
		}
		time.Sleep(time.Millisecond)
	}
}

func (t *inprocTarget) prometheus() (string, error) {
	var buf bytes.Buffer
	if err := t.srv.Registry().WritePrometheus(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func (t *inprocTarget) trace(jobID string) (obs.TraceDump, error) {
	tr, ok := t.srv.FlightRecorder().Get(jobID)
	if !ok {
		return obs.TraceDump{}, fmt.Errorf("no trace for job %s", jobID)
	}
	return tr.Dump(), nil
}

func (t *inprocTarget) obsGauge(name string) (float64, error) {
	v, ok := t.srv.Registry().Snapshot()[name]
	if !ok {
		return 0, fmt.Errorf("gauge %s not registered", name)
	}
	return toFloat(v)
}

// --- HTTP target ---

type httpTarget struct {
	base string
	hc   http.Client
}

func (t *httpTarget) submit(spec service.JobSpec) (outcome, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return outcome{}, err
	}
	resp, err := t.hc.Post(t.base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return outcome{}, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusTooManyRequests:
		return outcome{status: 429}, nil
	case http.StatusServiceUnavailable:
		return outcome{status: 503}, nil
	case http.StatusOK, http.StatusCreated:
	default:
		b, _ := io.ReadAll(resp.Body)
		return outcome{}, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var sr service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return outcome{}, err
	}
	return outcome{jobID: sr.ID, dedup: sr.Deduped, warm: sr.Cached}, nil
}

func (t *httpTarget) waitDone(jobID string) error {
	for {
		var st service.JobStatus
		if err := t.getJSON("/v1/jobs/"+jobID, &st); err != nil {
			return err
		}
		switch st.State {
		case service.StateDone:
			return nil
		case service.StateFailed:
			return fmt.Errorf("job %s failed: %s", jobID, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (t *httpTarget) prometheus() (string, error) {
	resp, err := t.hc.Get(t.base + "/metrics?format=prometheus")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func (t *httpTarget) trace(jobID string) (obs.TraceDump, error) {
	var d obs.TraceDump
	err := t.getJSON("/debug/trace/"+jobID, &d)
	return d, err
}

func (t *httpTarget) obsGauge(name string) (float64, error) {
	var m struct {
		Obs map[string]any `json:"obs"`
	}
	if err := t.getJSON("/metrics", &m); err != nil {
		return 0, err
	}
	v, ok := m.Obs[name]
	if !ok {
		return 0, fmt.Errorf("gauge %s missing from /metrics", name)
	}
	return toFloat(v)
}

func (t *httpTarget) getJSON(path string, v any) error {
	resp, err := t.hc.Get(t.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: %s: %s", path, resp.Status, bytes.TrimSpace(b))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func toFloat(v any) (float64, error) {
	switch n := v.(type) {
	case float64:
		return n, nil
	case int64:
		return float64(n), nil
	case int:
		return float64(n), nil
	}
	return 0, fmt.Errorf("metric value %T is not numeric", v)
}

// faultWindow is a store-fault injection window in arrival indices:
// the disk starts failing writes at arrival `after` and heals `dur`
// arrivals later. On the wall clock it drives a real vfs.Faulty; on
// the virtual clock the DES models the resulting degraded mode
// deterministically. Inactive when after == 0.
type faultWindow struct {
	after  int
	dur    int
	seed   int64
	faulty *vfs.Faulty // wall clock only
}

func (fw faultWindow) active() bool { return fw.after > 0 }

// degraded reports whether arrival index i lands inside the window.
func (fw faultWindow) degraded(i int) bool {
	return fw.active() && i >= fw.after && i < fw.after+fw.dur
}

// apply drives the real disk across the window boundary before
// arrival i is submitted (wall clock only).
func (fw faultWindow) apply(i int) {
	if fw.faulty == nil || !fw.active() {
		return
	}
	switch i {
	case fw.after:
		fw.faulty.SetPlan(vfs.Plan{Seed: fw.seed, PWrite: 1, PSync: 1})
	case fw.after + fw.dur:
		fw.faulty.Heal()
	}
}

// runWall plays the schedule against a real server in real time: an
// open-loop driver that submits on schedule regardless of completions
// (late responses do not throttle the offered load) and measures each
// accepted job's submit-to-done latency. Returns the scenario row and
// the completed job ids (for trace validation).
func runWall(tg target, arr []arrival, fw faultWindow) (benchfile.ServiceRow, []string, error) {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		jobIDs    []string
		row       benchfile.ServiceRow
		firstErr  error
		wg        sync.WaitGroup
	)
	start := time.Now()
	for i, a := range arr {
		if d := time.Until(start.Add(a.At)); d > 0 {
			time.Sleep(d)
		}
		fw.apply(i)
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			issued := time.Now()
			out, err := tg.submit(a.Spec)
			mu.Lock()
			switch {
			case err != nil:
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			case out.status == 429:
				row.Rejected429++
				mu.Unlock()
				return
			case out.status == 503:
				row.Rejected503++
				mu.Unlock()
				return
			}
			if out.dedup {
				row.Deduped++
			}
			if out.warm {
				row.StoreHits++
			}
			mu.Unlock()
			if err := tg.waitDone(out.jobID); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			row.Completed++
			latencies = append(latencies, time.Since(issued))
			jobIDs = append(jobIDs, out.jobID)
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	wall := time.Since(start)

	row.Jobs = len(arr)
	row.WallSeconds = round3(wall.Seconds())
	if wall > 0 {
		row.ThroughputJobsPerSec = round3(float64(row.Completed) / wall.Seconds())
	}
	if row.Jobs > 0 {
		row.DedupRate = round3(float64(row.Deduped+row.StoreHits) / float64(row.Jobs))
	}
	fillQuantiles(&row, latencies)
	if q, err := tg.obsGauge("triaged_queue_depth_hwm"); err == nil {
		row.QueueDepthHWM = int(q)
	}
	if q, err := tg.obsGauge("triaged_inflight_hwm"); err == nil {
		row.InflightHWM = int(q)
	}
	sort.Strings(jobIDs)
	return row, jobIDs, firstErr
}
