// Command triageload is the capacity harness for the triaged service:
// an open-loop load generator with seeded stochastic arrival processes
// (Poisson, bursty, diurnal) that publishes service-level results —
// latency quantiles, max throughput, queue high-water marks, dedup
// rate, rejection counts — as BENCH_service.json rows.
//
// Two clocks:
//
//	-clock wall     drives a real server (in-process by default, or a
//	                live triaged via -addr) in real time; numbers come
//	                from the wall clock.
//	-clock virtual  replays the same schedule through a deterministic
//	                discrete-event model of the admission pipeline
//	                (same queue cap, worker count, dedup and warm-store
//	                semantics), so a fixed seed yields byte-identical
//	                output — the mode CI pins with cmp.
//
// Either way the run ends with a validation pass against a real
// server: a sample of jobs is executed in-process (or read back from
// -addr), each job's trace is checked for monotonic spans, and the
// Prometheus exposition is parsed. A scenario that produces numbers
// but breaks observability fails.
//
//	triageload -scenario steady -process poisson -rate 200 -jobs 400 -o -
//	triageload -scenario rush -process bursty -clock wall -workers 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/benchfile"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/vfs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "triageload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("triageload", flag.ContinueOnError)
	var (
		scenario   = fs.String("scenario", "", "row name in the report (default: the process name)")
		process    = fs.String("process", "poisson", "arrival process: poisson, bursty, or diurnal")
		rate       = fs.Float64("rate", 200, "mean arrival rate, jobs/sec")
		jobs       = fs.Int("jobs", 200, "number of arrivals to generate")
		seed       = fs.Uint64("seed", 42, "schedule RNG seed")
		dedup      = fs.Float64("dedup", 0.15, "fraction of arrivals resubmitting an earlier spec")
		bench      = fs.String("bench", "mcf", "workload every job runs")
		pf         = fs.String("pf", "none", "prefetcher every job runs")
		period     = fs.Duration("period", 4*time.Second, "modulation period for bursty/diurnal")
		clock      = fs.String("clock", "virtual", "virtual (deterministic DES) or wall (real time)")
		addr       = fs.String("addr", "", "drive a live triaged at HOST:PORT instead of in-process (wall clock only)")
		workers    = fs.Int("workers", 4, "in-process server worker count (and DES server count)")
		clusterW   = fs.Int("cluster-workers", 0, "model a triaged -cluster deployment with this many remote workers (virtual clock only; 0 = single-node)")
		queueCap   = fs.Int("queue", 64, "in-process server queue capacity (and DES queue cap)")
		validate   = fs.Int("validate", 8, "jobs to run through the real service path for trace/metrics validation (0 = skip)")
		faultAfter = fs.Int("faultafter", 0, "degraded-mode window: the result store starts failing at this arrival index (0 = no fault)")
		faultFor   = fs.Int("faultfor", 0, "degraded-mode window: the store heals this many arrivals after -faultafter")
		out        = fs.String("o", "BENCH_service.json", "write the report here (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario == "" {
		*scenario = *process
	}
	if *faultAfter > 0 && *faultFor <= 0 {
		return fmt.Errorf("-faultafter needs a positive -faultfor window")
	}

	arr, err := generate(genConfig{
		Process: *process, Rate: *rate, Jobs: *jobs, Seed: *seed,
		Dedup: *dedup, Bench: *bench, PF: *pf, Period: *period,
	})
	if err != nil {
		return err
	}

	fw := faultWindow{after: *faultAfter, dur: *faultFor}
	var row benchfile.ServiceRow
	switch *clock {
	case "virtual":
		if *addr != "" {
			return fmt.Errorf("-addr needs -clock wall (the virtual clock cannot pace a remote server)")
		}
		row = runVirtual(arr, *workers, *queueCap, fw, *clusterW)
		if err := validateVirtual(arr, *validate, *seed); err != nil {
			return fmt.Errorf("service-path validation: %w", err)
		}
	case "wall":
		if *clusterW > 0 {
			return fmt.Errorf("-cluster-workers needs -clock virtual (drive a real cluster coordinator with -addr instead)")
		}
		if *addr != "" && fw.active() {
			return fmt.Errorf("-faultafter needs an in-process server (cannot inject disk faults into a remote triaged)")
		}
		tg, faulty, closeTg, err := wallTarget(*addr, *workers, *queueCap, *seed, fw.active())
		if err != nil {
			return err
		}
		fw.faulty, fw.seed = faulty, int64(*seed)
		var jobIDs []string
		row, jobIDs, err = runWall(tg, arr, fw)
		if err != nil {
			closeTg()
			return err
		}
		if err := validateTarget(tg, sampleIDs(jobIDs, *validate)); err != nil {
			closeTg()
			return fmt.Errorf("service-path validation: %w", err)
		}
		closeTg()
	default:
		return fmt.Errorf("unknown clock %q (want virtual or wall)", *clock)
	}

	row.Scenario = *scenario
	row.Process = *process
	row.Clock = *clock
	row.Seed = *seed
	row.RatePerSec = *rate
	row.Workers = *workers
	row.QueueCap = *queueCap
	row.ClusterWorkers = *clusterW
	row.DedupFrac = *dedup
	row.FaultAfter = *faultAfter
	row.FaultFor = *faultFor

	// Merge into the existing report (scenario rows update in place)
	// so accumulating scenarios into one BENCH_service.json works the
	// way cmd/experiments -bench accumulates figures.
	report := &benchfile.ServiceFile{}
	if *out != "-" {
		if report, err = benchfile.ReadService(*out); err != nil {
			return err
		}
	}
	report.MergeService([]benchfile.ServiceRow{row})
	if *out == "-" {
		data, err := report.Encode()
		if err != nil {
			return err
		}
		_, err = stdout.Write(data)
		return err
	}
	if err := report.Write(*out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "triageload: %s (%s clock): %d jobs, %d completed, p99 %.3fms — wrote %s\n",
		*scenario, *clock, row.Jobs, row.Completed, row.P99Ms, *out)
	return nil
}

// wallTarget builds the wall-clock target: a fresh in-process server
// over an in-memory disk, or a live triaged at addr. With injectFaults
// the in-memory disk is wrapped in a vfs.Faulty (initially healthy) so
// the scenario can fail the store mid-run, and the recovery probe is
// tightened so the server heals within the scenario rather than long
// after it.
func wallTarget(addr string, workers, queueCap int, seed uint64, injectFaults bool) (target, *vfs.Faulty, func(), error) {
	if addr != "" {
		return &httpTarget{base: "http://" + addr}, nil, func() {}, nil
	}
	var (
		fsys   vfs.FS = vfs.NewMem(int64(seed))
		faulty *vfs.Faulty
	)
	cfg := service.Config{
		StoreDir: "store",
		Workers:  workers,
		QueueCap: queueCap,
	}
	if injectFaults {
		faulty = vfs.NewFaulty(fsys, vfs.Plan{})
		fsys = faulty
		cfg.ProbeInterval = 25 * time.Millisecond
	}
	cfg.FS = fsys
	srv, err := service.New(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return &inprocTarget{srv: srv}, faulty, func() { srv.Drain(); srv.Close() }, nil
}

// validateVirtual exercises the real service path the DES modeled:
// the first n unique specs of the schedule run through an in-process
// server, every trace must be monotonic and complete, and the
// Prometheus exposition must parse.
func validateVirtual(arr []arrival, n int, seed uint64) error {
	if n == 0 {
		return nil
	}
	tg, _, closeTg, err := wallTarget("", 2, max(n, 1), seed, false)
	if err != nil {
		return err
	}
	defer closeTg()
	seen := make(map[string]bool)
	var ids []string
	for _, a := range arr {
		if len(ids) >= n {
			break
		}
		key := keyOf(a.Spec)
		if seen[key] {
			continue
		}
		seen[key] = true
		out, err := tg.submit(a.Spec)
		if err != nil {
			return err
		}
		if err := tg.waitDone(out.jobID); err != nil {
			return err
		}
		ids = append(ids, out.jobID)
	}
	return validateTarget(tg, ids)
}

// validateTarget checks the observability contract on a live server:
// every sampled job has a fetchable trace whose spans are monotonic
// and reach a terminal mark, and /metrics emits parseable Prometheus.
func validateTarget(tg target, jobIDs []string) error {
	for _, id := range jobIDs {
		d, err := tg.trace(id)
		if err != nil {
			return err
		}
		if err := traceMonotonic(d); err != nil {
			return fmt.Errorf("job %s: %w", id, err)
		}
	}
	text, err := tg.prometheus()
	if err != nil {
		return err
	}
	if err := obs.ValidatePrometheus(strings.NewReader(text)); err != nil {
		return fmt.Errorf("/metrics exposition: %w", err)
	}
	return nil
}

// traceMonotonic asserts the span record is causally ordered: starts
// never go backwards, no span ends before it starts, and the trace
// reaches a terminal mark (done or failed).
func traceMonotonic(d obs.TraceDump) error {
	var last int64
	terminal := false
	for _, sp := range d.Spans {
		if sp.Start < last {
			return fmt.Errorf("span %q starts at %d, before the previous span's %d", sp.Name, sp.Start, last)
		}
		last = sp.Start
		if sp.End != 0 && sp.End < sp.Start {
			return fmt.Errorf("span %q ends before it starts", sp.Name)
		}
		if sp.Name == "done" || sp.Name == "failed" {
			terminal = true
		}
	}
	if len(d.Spans) == 0 {
		return fmt.Errorf("trace %s has no spans", d.TraceID)
	}
	if !terminal {
		return fmt.Errorf("trace %s never reached a terminal mark", d.TraceID)
	}
	return nil
}

// sampleIDs picks up to n ids, evenly spread across the (sorted) set.
func sampleIDs(ids []string, n int) []string {
	if n <= 0 || len(ids) == 0 {
		return nil
	}
	if len(ids) <= n {
		return ids
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ids[i*len(ids)/n])
	}
	return out
}
