package main

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// arrival is one scheduled submission: an offset from the scenario
// start and the job to submit. Dup arrivals reuse an earlier spec and
// exercise the service's dedup/warm-store path.
type arrival struct {
	At   time.Duration
	Spec service.JobSpec
	Dup  bool
}

// genConfig parameterizes the arrival schedule. Everything downstream
// of the seed is deterministic: the same config always generates the
// same schedule, which is what makes -clock virtual byte-identical.
type genConfig struct {
	Process string  // poisson | bursty | diurnal
	Rate    float64 // mean arrivals per second
	Jobs    int
	Seed    uint64
	Dedup   float64       // fraction of arrivals resubmitting an earlier spec
	Bench   string        // workload every job runs
	PF      string        // prefetcher every job runs
	Period  time.Duration // modulation period (bursty/diurnal)
}

// sizeMix is the job-size distribution: mostly small cells with a
// medium and a heavy tail, like a figure suite's spec spread.
var sizeMix = []struct {
	p       float64
	warmup  uint64
	measure uint64
}{
	{0.60, 2_000, 20_000},
	{0.30, 5_000, 50_000},
	{0.10, 10_000, 120_000},
}

// lambda is the instantaneous arrival rate at offset t.
//
//	poisson: flat.
//	bursty:  square wave — 3× the mean for the first quarter of each
//	         period, ⅓× for the rest (mean preserved).
//	diurnal: sinusoidal ±80% swing around the mean.
func (g genConfig) lambda(t time.Duration) float64 {
	switch g.Process {
	case "poisson":
		return g.Rate
	case "bursty":
		phase := float64(t%g.Period) / float64(g.Period)
		if phase < 0.25 {
			return 3 * g.Rate
		}
		return g.Rate / 3
	case "diurnal":
		phase := float64(t) / float64(g.Period)
		return g.Rate * (1 + 0.8*math.Sin(2*math.Pi*phase))
	}
	return g.Rate
}

// lambdaMax bounds the instantaneous rate, for thinning.
func (g genConfig) lambdaMax() float64 {
	switch g.Process {
	case "bursty":
		return 3 * g.Rate
	case "diurnal":
		return 1.8 * g.Rate
	}
	return g.Rate
}

// generate builds the arrival schedule: a non-homogeneous Poisson
// process via Lewis-Shedler thinning (candidates at the peak rate,
// accepted with probability λ(t)/λmax), with each accepted arrival
// drawing a job size and, with probability Dedup, reusing an earlier
// spec instead of a fresh seed.
func generate(g genConfig) ([]arrival, error) {
	switch g.Process {
	case "poisson", "bursty", "diurnal":
	default:
		return nil, fmt.Errorf("unknown arrival process %q (want poisson, bursty, or diurnal)", g.Process)
	}
	if g.Rate <= 0 {
		return nil, fmt.Errorf("rate must be positive, got %g", g.Rate)
	}
	if g.Period <= 0 {
		g.Period = 4 * time.Second
	}
	rng := rand.New(rand.NewSource(int64(g.Seed)))
	lmax := g.lambdaMax()
	var (
		arr   []arrival
		fresh []service.JobSpec // specs eligible for dup reuse
		t     time.Duration
		seq   uint64
	)
	for len(arr) < g.Jobs {
		t += time.Duration(rng.ExpFloat64() / lmax * float64(time.Second))
		if rng.Float64()*lmax > g.lambda(t) {
			continue // thinned candidate
		}
		a := arrival{At: t}
		if len(fresh) > 0 && rng.Float64() < g.Dedup {
			a.Dup = true
			a.Spec = fresh[rng.Intn(len(fresh))]
		} else {
			seq++
			sz := pickSize(rng)
			a.Spec = service.JobSpec{
				Kind: service.KindSingle,
				Run: &experiments.RunSpec{
					Bench:   g.Bench,
					PF:      g.PF,
					Cores:   1,
					Warmup:  sz.warmup,
					Measure: sz.measure,
					Seed:    g.Seed<<20 | seq, // unique per fresh arrival
					Degree:  1,
				},
			}
			fresh = append(fresh, a.Spec)
		}
		arr = append(arr, a)
	}
	return arr, nil
}

func pickSize(rng *rand.Rand) struct {
	p       float64
	warmup  uint64
	measure uint64
} {
	u := rng.Float64()
	for _, s := range sizeMix {
		if u < s.p {
			return s
		}
		u -= s.p
	}
	return sizeMix[len(sizeMix)-1]
}

// specCost is the virtual service time of a job: a fixed per-
// instruction cost over the whole simulated window. 100ns/instr makes
// the small cell ~2.2ms, the heavy one ~13ms.
func specCost(spec service.JobSpec) time.Duration {
	r := spec.Run
	instr := (r.Warmup + r.Measure) * uint64(max(r.Cores, 1))
	return time.Duration(instr) * 100 * time.Nanosecond
}
