package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("128, 256,512")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{128, 256, 512}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("element %d = %d, want %d", i, got[i], want[i])
		}
	}
	if _, err := parseInts("12,abc"); err == nil {
		t.Error("bad list accepted")
	}
	if _, err := parseInts(""); err == nil {
		t.Error("empty list accepted")
	}
}
