// Command sweep explores the design space beyond the paper's fixed
// points: metadata store size x prefetch degree x LLC capacity x
// replacement policy, on any benchmark, emitting CSV for plotting.
//
// Usage:
//
//	sweep -bench mcf -sizes 128,256,512,1024 -degrees 1,2,4 [-llc 1,2,4] [-repl lru,hawkeye]
//
// Each configuration is simulated against its own no-prefetch baseline
// at the same LLC size, so the speedup isolates the prefetcher.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark name")
		sizes   = flag.String("sizes", "128,256,512,1024", "metadata store sizes in KB")
		degrees = flag.String("degrees", "1", "prefetch degrees")
		llcs    = flag.String("llc", "2", "LLC sizes in MB")
		repls   = flag.String("repl", "hawkeye", "metadata replacement: lru,hawkeye")
		warmup  = flag.Uint64("warmup", 3_000_000, "warmup instructions")
		measure = flag.Uint64("measure", 2_000_000, "measured instructions")
		seed    = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	sizeList, err := parseInts(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	degreeList, err := parseInts(*degrees)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	llcList, err := parseInts(*llcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(llcMB int, pf prefetch.Prefetcher) sim.Result {
		m := config.Default(1)
		m.LLCBytesPerCore = llcMB << 20
		machine, err := sim.New(sim.Options{
			Machine:             m,
			Workloads:           []trace.Reader{spec.New(*seed, 0)},
			Prefetchers:         []prefetch.Prefetcher{pf},
			WarmupInstructions:  *warmup,
			MeasureInstructions: *measure,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return machine.Run()
	}

	fmt.Println("bench,llc_mb,store_kb,degree,replacement,speedup,coverage,accuracy,traffic_overhead_pct")
	for _, llcMB := range llcList {
		base := run(llcMB, nil)
		for _, sizeKB := range sizeList {
			for _, d := range degreeList {
				for _, repl := range strings.Split(*repls, ",") {
					r := core.Hawkeye
					if strings.TrimSpace(repl) == "lru" {
						r = core.LRU
					}
					m := config.Default(1)
					tri := core.New(core.Config{
						Mode:            core.Static,
						StaticBytes:     sizeKB << 10,
						Degree:          d,
						Replacement:     r,
						LLCLatencyTicks: uint64(m.LLCLatency) * dram.TicksPerCycle,
					})
					res := run(llcMB, tri)
					fmt.Printf("%s,%d,%d,%d,%s,%.4f,%.4f,%.4f,%.1f\n",
						*bench, llcMB, sizeKB, d, strings.TrimSpace(repl),
						res.SpeedupOver(base), res.CoverageOver(base),
						res.Accuracy(), res.TrafficOverheadPct(base))
				}
			}
		}
	}
}
