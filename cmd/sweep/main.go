// Command sweep explores the design space beyond the paper's fixed
// points: metadata store size x prefetch degree x LLC capacity x
// replacement policy, on any benchmark, emitting CSV for plotting.
//
// Usage:
//
//	sweep -bench mcf -sizes 128,256,512,1024 -degrees 1,2,4 [-llc 1,2,4] [-repl lru,hawkeye] [-j N]
//
// Each configuration is simulated against its own no-prefetch baseline
// at the same LLC size, so the speedup isolates the prefetcher. -j
// runs up to N simulations concurrently; rows still print in sweep
// order, so the CSV is byte-identical for any -j.
//
// -resume DIR persists completed cells; an interrupted sweep rerun
// with the same flags simulates only the missing ones and emits
// identical CSV. -deadline/-stall abort stuck cells (rendered as
// ERROR rows, exit nonzero); -check N asserts simulator invariants
// every N instructions (see EXPERIMENTS.md "Fault tolerance").
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark name")
		sizes   = flag.String("sizes", "128,256,512,1024", "metadata store sizes in KB")
		degrees = flag.String("degrees", "1", "prefetch degrees")
		llcs    = flag.String("llc", "2", "LLC sizes in MB")
		repls   = flag.String("repl", "hawkeye", "metadata replacement: lru,hawkeye")
		warmup  = flag.Uint64("warmup", 3_000_000, "warmup instructions")
		measure = flag.Uint64("measure", 2_000_000, "measured instructions")
		seed    = flag.Uint64("seed", 42, "workload seed")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "max simulations running concurrently")

		progress = flag.Bool("progress", false, "print a live progress line (cells done, Minstr/s, ETA) to stderr")

		resume = flag.String("resume", "", "checkpoint directory: completed cells persist here and an interrupted sweep restarts only the missing ones")
		check  = flag.Uint64("check", 0, "assert simulator structural invariants every N instructions (debug mode, 0 = off)")
	)
	prof := cliutil.AddProfile(flag.CommandLine)
	wd := cliutil.AddWatchdog(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	sizeList, err := parseInts(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	degreeList, err := parseInts(*degrees)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	llcList, err := parseInts(*llcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	replList := strings.Split(*repls, ",")

	// Every cell counts as one progress unit, plus the per-LLC baselines:
	// the cell count is known up front, so the ETA is exact in runs.
	cellCount := len(llcList) * (1 + len(sizeList)*len(degreeList)*len(replList))
	var prog *telemetry.PoolProgress
	if *progress {
		prog = telemetry.NewPoolProgress(cellCount)
		stop := telemetry.StartPrinter(os.Stderr, prog, 2*time.Second)
		defer stop()
	}
	mkHooks := func() *telemetry.Hooks {
		if prog == nil {
			return nil
		}
		return &telemetry.Hooks{Progress: prog}
	}

	var ck *experiments.Checkpoint
	if *resume != "" {
		// Sweep cell keys don't carry the instruction windows or seed, so
		// the store is stamped with a fingerprint of them: resuming with
		// different -warmup/-measure/-seed is refused, not silently mixed.
		fp := experiments.Params{Warmup: *warmup, Measure: *measure, Seed: *seed}.Fingerprint(config.Default(1))
		var err error
		ck, err = experiments.OpenCheckpoint(*resume, fp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	run := func(llcMB int, pf prefetch.Prefetcher, cellKey string, hooks *telemetry.Hooks) sim.Result {
		m := config.Default(1)
		m.LLCBytesPerCore = llcMB << 20
		// Cell keys already encode bench/LLC/store/degree/replacement;
		// adding the warmup window and seed pins the full warm prefix, so
		// repeated cells (e.g. service jobs in one process) can reuse the
		// post-warmup snapshot. -check disables reuse inside the simulator.
		machine, err := sim.New(sim.Options{
			Machine:             m,
			Workloads:           []trace.Reader{spec.New(*seed, 0)},
			Prefetchers:         []prefetch.Prefetcher{pf},
			WarmupInstructions:  *warmup,
			MeasureInstructions: *measure,
			Telemetry:           hooks,
			CheckEvery:          *check,
			WarmKey:             fmt.Sprintf("sweep/%s/w%d/s%d", cellKey, *warmup, *seed),
		})
		if err != nil {
			panic(err) // recovered by the pool into the cell's RunError
		}
		res := machine.Run()
		if prog != nil {
			prog.RunDone()
			prog.UnitDone()
		}
		return res
	}

	// Launch every point on the pool, then collect in sweep order so the
	// CSV is identical regardless of -j. Checkpointed cells resolve from
	// disk; Put runs inside the pooled closure so a cell completed but
	// not yet collected still persists before a kill.
	pool := experiments.NewPool(*jobs)
	if prog != nil {
		pool.SetProgress(prog)
	}
	restored := 0
	schedule := func(key string, job func(*telemetry.Hooks) sim.Result) *experiments.Future[sim.Result] {
		if ck != nil {
			if res, _, ok := ck.Get(key); ok {
				restored++
				return experiments.Resolved(res)
			}
		}
		return experiments.Go(pool, func() sim.Result {
			res := experiments.Guarded(key, *wd.Deadline, *wd.Stall, mkHooks, job)
			if ck != nil {
				ck.Put(key, res, nil)
			}
			return res
		})
	}
	baseFs := make([]*experiments.Future[sim.Result], len(llcList))
	cellFs := make(map[[4]int]*experiments.Future[sim.Result])
	for li, llcMB := range llcList {
		llcMB := llcMB
		baseKey := fmt.Sprintf("%s/llc%dMB/base", *bench, llcMB)
		baseFs[li] = schedule(baseKey, func(hooks *telemetry.Hooks) sim.Result {
			return run(llcMB, nil, baseKey, hooks)
		})
		for si, sizeKB := range sizeList {
			for di, d := range degreeList {
				for ri, repl := range replList {
					llcMB, sizeKB, d := llcMB, sizeKB, d
					replName := strings.TrimSpace(repl)
					r := core.Hawkeye
					if replName == "lru" {
						r = core.LRU
					}
					key := fmt.Sprintf("%s/llc%dMB/%dKB/d%d/%s", *bench, llcMB, sizeKB, d, replName)
					cellFs[[4]int{li, si, di, ri}] = schedule(key, func(hooks *telemetry.Hooks) sim.Result {
						m := config.Default(1)
						tri := core.New(core.Config{
							Mode:            core.Static,
							StaticBytes:     sizeKB << 10,
							Degree:          d,
							Replacement:     r,
							LLCLatencyTicks: uint64(m.LLCLatency) * dram.TicksPerCycle,
						})
						return run(llcMB, tri, key, hooks)
					})
				}
			}
		}
	}

	failed := false
	cellFail := func(err *experiments.RunError) {
		failed = true
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		if len(err.Stack) > 0 {
			os.Stderr.Write(err.Stack)
		}
	}
	fmt.Println("bench,llc_mb,store_kb,degree,replacement,speedup,coverage,accuracy,traffic_overhead_pct")
	for li, llcMB := range llcList {
		base, berr := baseFs[li].Result()
		if berr != nil {
			cellFail(berr)
		}
		for si, sizeKB := range sizeList {
			for di, d := range degreeList {
				for ri, repl := range replList {
					res, err := cellFs[[4]int{li, si, di, ri}].Result()
					if err != nil {
						cellFail(err)
					}
					if berr != nil || err != nil {
						fmt.Printf("%s,%d,%d,%d,%s,ERROR,ERROR,ERROR,ERROR\n",
							*bench, llcMB, sizeKB, d, strings.TrimSpace(repl))
						continue
					}
					fmt.Printf("%s,%d,%d,%d,%s,%.4f,%.4f,%.4f,%.1f\n",
						*bench, llcMB, sizeKB, d, strings.TrimSpace(repl),
						res.SpeedupOver(base), res.CoverageOver(base),
						res.Accuracy(), res.TrafficOverheadPct(base))
				}
			}
		}
	}
	if ck != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %d cells restored, %d simulated\n",
			restored, cellCount-restored)
		if err := ck.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: checkpoint: %v\n", err)
		}
	}
	if failed {
		os.Exit(1)
	}
}
