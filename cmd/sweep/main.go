// Command sweep explores the design space beyond the paper's fixed
// points: metadata store size x prefetch degree x LLC capacity x
// replacement policy, on any benchmark, emitting CSV for plotting.
//
// Usage:
//
//	sweep -bench mcf -sizes 128,256,512,1024 -degrees 1,2,4 [-llc 1,2,4] [-repl lru,hawkeye] [-j N]
//
// Each configuration is simulated against its own no-prefetch baseline
// at the same LLC size, so the speedup isolates the prefetcher. -j
// runs up to N simulations concurrently; rows still print in sweep
// order, so the CSV is byte-identical for any -j.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/prefetch"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list element %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark name")
		sizes   = flag.String("sizes", "128,256,512,1024", "metadata store sizes in KB")
		degrees = flag.String("degrees", "1", "prefetch degrees")
		llcs    = flag.String("llc", "2", "LLC sizes in MB")
		repls   = flag.String("repl", "hawkeye", "metadata replacement: lru,hawkeye")
		warmup  = flag.Uint64("warmup", 3_000_000, "warmup instructions")
		measure = flag.Uint64("measure", 2_000_000, "measured instructions")
		seed    = flag.Uint64("seed", 42, "workload seed")
		jobs    = flag.Int("j", runtime.GOMAXPROCS(0), "max simulations running concurrently")

		progress   = flag.Bool("progress", false, "print a live progress line (cells done, Minstr/s, ETA) to stderr")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}
	if *memProfile != "" {
		defer func() {
			if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(2)
	}
	sizeList, err := parseInts(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	degreeList, err := parseInts(*degrees)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	llcList, err := parseInts(*llcs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	replList := strings.Split(*repls, ",")

	// Every cell counts as one progress unit, plus the per-LLC baselines:
	// the cell count is known up front, so the ETA is exact in runs.
	cellCount := len(llcList) * (1 + len(sizeList)*len(degreeList)*len(replList))
	var prog *telemetry.PoolProgress
	var hooks *telemetry.Hooks
	if *progress {
		prog = telemetry.NewPoolProgress(cellCount)
		hooks = &telemetry.Hooks{Progress: prog}
		stop := telemetry.StartPrinter(os.Stderr, prog, 2*time.Second)
		defer stop()
	}

	run := func(llcMB int, pf prefetch.Prefetcher) sim.Result {
		m := config.Default(1)
		m.LLCBytesPerCore = llcMB << 20
		machine, err := sim.New(sim.Options{
			Machine:             m,
			Workloads:           []trace.Reader{spec.New(*seed, 0)},
			Prefetchers:         []prefetch.Prefetcher{pf},
			WarmupInstructions:  *warmup,
			MeasureInstructions: *measure,
			Telemetry:           hooks,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res := machine.Run()
		if prog != nil {
			prog.RunDone()
			prog.UnitDone()
		}
		return res
	}

	// Launch every point on the pool, then collect in sweep order so the
	// CSV is identical regardless of -j.
	pool := experiments.NewPool(*jobs)
	if prog != nil {
		pool.SetProgress(prog)
	}
	baseFs := make([]*experiments.Future[sim.Result], len(llcList))
	cellFs := make(map[[4]int]*experiments.Future[sim.Result])
	for li, llcMB := range llcList {
		llcMB := llcMB
		baseFs[li] = experiments.Go(pool, func() sim.Result { return run(llcMB, nil) })
		for si, sizeKB := range sizeList {
			for di, d := range degreeList {
				for ri, repl := range replList {
					llcMB, sizeKB, d := llcMB, sizeKB, d
					r := core.Hawkeye
					if strings.TrimSpace(repl) == "lru" {
						r = core.LRU
					}
					cellFs[[4]int{li, si, di, ri}] = experiments.Go(pool, func() sim.Result {
						m := config.Default(1)
						tri := core.New(core.Config{
							Mode:            core.Static,
							StaticBytes:     sizeKB << 10,
							Degree:          d,
							Replacement:     r,
							LLCLatencyTicks: uint64(m.LLCLatency) * dram.TicksPerCycle,
						})
						return run(llcMB, tri)
					})
				}
			}
		}
	}

	fmt.Println("bench,llc_mb,store_kb,degree,replacement,speedup,coverage,accuracy,traffic_overhead_pct")
	for li, llcMB := range llcList {
		base := baseFs[li].Wait()
		for si, sizeKB := range sizeList {
			for di, d := range degreeList {
				for ri, repl := range replList {
					res := cellFs[[4]int{li, si, di, ri}].Wait()
					fmt.Printf("%s,%d,%d,%d,%s,%.4f,%.4f,%.4f,%.1f\n",
						*bench, llcMB, sizeKB, d, strings.TrimSpace(repl),
						res.SpeedupOver(base), res.CoverageOver(base),
						res.Accuracy(), res.TrafficOverheadPct(base))
				}
			}
		}
	}
}
