package main

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// TestBackoffDelaySchedule pins the retry schedule: exponential from
// the base, capped, and always within the ±25% jitter band.
func TestBackoffDelaySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 16; attempt++ {
		want := backoffBase << uint(attempt)
		if want <= 0 || want > backoffCap {
			want = backoffCap
		}
		for i := 0; i < 100; i++ {
			got := backoffDelay(attempt, rng)
			if got < want*3/4 || got > want*5/4 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, got, want*3/4, want*5/4)
			}
		}
	}
	// Deep attempts must never overflow into negative or zero delays.
	if d := backoffDelay(63, rng); d < backoffCap*3/4 {
		t.Fatalf("attempt 63: delay %v, want ~%v (cap)", d, backoffCap)
	}
}

// TestRetryableNetErr classifies transport errors the way the CLI
// retries them: refused/reset (server restarting) retry, everything
// else surfaces immediately.
func TestRetryableNetErr(t *testing.T) {
	wrapped := &url.Error{Op: "Post", URL: "http://x", Err: fmt.Errorf("dial: %w", syscall.ECONNREFUSED)}
	cases := []struct {
		err  error
		want bool
	}{
		{syscall.ECONNREFUSED, true},
		{syscall.ECONNRESET, true},
		{wrapped, true},
		{errors.New("no such host"), false},
		{syscall.EACCES, false},
	}
	for _, c := range cases {
		if got := retryableNetErr(c.err); got != c.want {
			t.Errorf("retryableNetErr(%v) = %t, want %t", c.err, got, c.want)
		}
	}
}

// testClient builds a client with a tiny deterministic backoff so
// retry tests run fast.
func testClient(base string, retries int) *client {
	return &client{base: base, maxRetries: retries, rng: rand.New(rand.NewSource(42))}
}

// TestDoRetries5xxThenSucceeds serves two 503s then a success and
// verifies the client rides through them.
func TestDoRetries5xxThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 3)
	start := time.Now()
	resp, err := c.do(http.MethodGet, "/", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retries, want 200", resp.StatusCode)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d requests, want 3", n)
	}
	// Two waits: ~250ms + ~500ms, ±25%.
	if e := time.Since(start); e < 500*time.Millisecond {
		t.Errorf("retries finished in %v, want ≥ 500ms of backoff", e)
	}
}

// TestDoGivesUpAfterBudget verifies the retry budget is honored and
// the final 5xx is returned for error rendering.
func TestDoGivesUpAfterBudget(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 1)
	resp, err := c.do(http.MethodGet, "/", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want the final 500", resp.StatusCode)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d requests, want 2 (1 try + 1 retry)", n)
	}
}

// TestDoRetriesConnectionRefused points the client at a dead address:
// every attempt is refused, the budget is consumed, and the transport
// error surfaces.
func TestDoRetriesConnectionRefused(t *testing.T) {
	// Bind-then-close guarantees an unused port that refuses.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead := ts.URL
	ts.Close()

	c := testClient(dead, 2)
	start := time.Now()
	_, err := c.do(http.MethodGet, "/", nil)
	if err == nil {
		t.Fatal("dead server supposedly answered")
	}
	if !retryableNetErr(err) {
		t.Fatalf("final error %v is not the refused/reset class that was retried", err)
	}
	// Two waits (~250ms, ~500ms ±25%) prove retries actually happened.
	if e := time.Since(start); e < 500*time.Millisecond {
		t.Errorf("gave up after %v, want ≥ 500ms of backoff (2 retries)", e)
	}
}

// TestDoDoesNotRetryClientErrors pins that 4xx responses surface
// immediately: retrying a bad spec wastes the budget and hides bugs.
func TestDoDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"bad","code":"bad_spec"}`)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 5)
	resp, err := c.do(http.MethodPost, "/v1/jobs", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d requests, want 1 (no retry on 4xx)", n)
	}
}

// TestSubmitRetriesAcrossRestart simulates the server vanishing and
// coming back between submit attempts: the submit eventually lands
// and the job id is the content-addressed one — no duplicate job.
func TestSubmitRetriesAcrossRestart(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable) // draining before "restart"
			return
		}
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, `{"id":"jdeadbeef","state":"queued"}`)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 3)
	sr, err := c.submit(service.JobSpec{Kind: service.KindSingle})
	if err != nil {
		t.Fatal(err)
	}
	if sr.ID != "jdeadbeef" {
		t.Errorf("submit landed on job %q, want jdeadbeef", sr.ID)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d submits, want 2", n)
	}
}

// captureFd swaps the given *os.File (os.Stdout/os.Stderr) for a pipe
// while fn runs and returns everything written to it.
func captureFd(t *testing.T, fd **os.File, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := *fd
	*fd = w
	defer func() { *fd = old }()
	fn()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDo429HonorsRetryAfter pins the backpressure path: a 429 with
// Retry-After is waited out (without consuming the retry budget), and
// the log line surfaces both the wait and the attempt count.
func TestDo429HonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 0) // zero budget: the 429 wait must not need it
	start := time.Now()
	logged := captureFd(t, &os.Stderr, func() {
		resp, err := c.do(http.MethodPost, "/v1/jobs", []byte(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d after the 429 wait, want 200", resp.StatusCode)
		}
	})
	if e := time.Since(start); e < time.Second {
		t.Errorf("request finished in %v, want ≥ 1s (Retry-After honored)", e)
	}
	if !strings.Contains(logged, "waiting 1s per Retry-After") || !strings.Contains(logged, "(attempt 1)") {
		t.Errorf("429 log line missing the wait or attempt count: %q", logged)
	}
}

// TestCmdMetricsProm pins the -prom flag: the raw Prometheus text is
// passed through to stdout untouched.
func TestCmdMetricsProm(t *testing.T) {
	const exposition = "# TYPE triaged_submitted_total counter\ntriaged_submitted_total 3\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" || r.URL.Query().Get("format") != "prometheus" {
			t.Errorf("unexpected request %s", r.URL)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprint(w, exposition)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 0)
	out := captureFd(t, &os.Stdout, func() {
		if err := c.cmdMetrics([]string{"-prom"}); err != nil {
			t.Fatal(err)
		}
	})
	if out != exposition {
		t.Errorf("metrics -prom output = %q, want the exposition verbatim", out)
	}
}

// TestCmdTraceTimeline pins the trace rendering: spans appear in order
// with offsets relative to the first span and durations for ended ones.
func TestCmdTraceTimeline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/debug/trace/j1" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, `{"trace_id":"t000001","job_id":"j1","spans":[
			{"name":"admit","start_ns":1000,"attrs":{"disposition":"new"}},
			{"name":"queue-wait","start_ns":1000,"end_ns":2001000},
			{"name":"run","start_ns":2001000,"end_ns":5001000}]}`)
	}))
	defer ts.Close()

	c := testClient(ts.URL, 0)
	out := captureFd(t, &os.Stdout, func() {
		if err := c.cmdTrace([]string{"j1"}); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{
		"trace t000001 (job j1)",
		"admit",
		`{"disposition":"new"}`,
		"queue-wait  [2ms]",
		"run  [3ms]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace timeline missing %q:\n%s", want, out)
		}
	}
}

// TestApiErrorRendersEnvelope checks the structured error envelope is
// surfaced to the user, code included via the prose.
func TestApiErrorRendersEnvelope(t *testing.T) {
	resp := &http.Response{
		Status:     "400 Bad Request",
		StatusCode: http.StatusBadRequest,
		Body:       http.NoBody,
	}
	resp.Body = httpBody(`{"error":"decoding job spec: boom","code":"bad_spec"}`)
	err := apiError(resp)
	if err == nil || !strings.Contains(err.Error(), "decoding job spec: boom") {
		t.Fatalf("apiError = %v, want the envelope prose", err)
	}
}

func httpBody(s string) *bodyReader { return &bodyReader{Reader: strings.NewReader(s)} }

type bodyReader struct{ *strings.Reader }

func (b *bodyReader) Close() error { return nil }
