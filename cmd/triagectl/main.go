// Command triagectl is the client for the triaged simulation service:
// submit jobs, wait for them, and fetch results.
//
//	triagectl -addr 127.0.0.1:8080 submit -bench graph500 -pf triage -wait -o res.json
//	triagectl -addr 127.0.0.1:8080 figures -j 4 fig05 fig10
//	triagectl -addr 127.0.0.1:8080 status j1a2b3c4d5e6f708
//	triagectl -addr 127.0.0.1:8080 result j1a2b3c4d5e6f708 -o res.json
//
// Single-run results are written in the same byte-exact JSON encoding
// as `triagesim -json`, so outputs from the two paths can be compared
// with cmp(1).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "triagectl:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: triagectl [-addr HOST:PORT] {submit|status|wait|result|jobs|figures|workers|metrics|trace} ...")
}

func run(args []string) error {
	global := flag.NewFlagSet("triagectl", flag.ContinueOnError)
	addr := global.String("addr", "127.0.0.1:8080", "triaged address (HOST:PORT)")
	maxRetries := global.Int("max-retries", 8, "retries for transient failures (connection refused/reset, 5xx) with capped exponential backoff")
	if err := global.Parse(args); err != nil {
		return err
	}
	if global.NArg() == 0 {
		return usage()
	}
	c := &client{
		base:       "http://" + *addr,
		maxRetries: *maxRetries,
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	cmd, rest := global.Arg(0), global.Args()[1:]
	switch cmd {
	case "submit":
		return c.cmdSubmit(rest)
	case "status":
		return c.cmdStatus(rest)
	case "wait":
		return c.cmdWait(rest)
	case "result":
		return c.cmdResult(rest)
	case "jobs":
		return c.cmdJobs(rest)
	case "figures":
		return c.cmdFigures(rest)
	case "workers":
		return c.cmdWorkers(rest)
	case "metrics":
		return c.cmdMetrics(rest)
	case "trace":
		return c.cmdTrace(rest)
	default:
		return fmt.Errorf("unknown command %q\n%v", cmd, usage())
	}
}

// client wraps the service HTTP API. All requests go through do,
// which retries transient failures: the server restarting (connection
// refused/reset) or answering 5xx. Retrying a submit is safe because
// job ids are content-addressed — resubmitting the same spec after an
// ambiguous failure lands on the same job (deduped or served warm),
// never a duplicate simulation.
type client struct {
	base       string
	http       http.Client
	maxRetries int

	mu  sync.Mutex // guards rng (cmdFigures retries concurrently)
	rng *rand.Rand
}

// backoffBase and backoffCap bound the retry schedule:
// backoffBase·2^attempt, capped, ±25% jitter.
const (
	backoffBase = 250 * time.Millisecond
	backoffCap  = 5 * time.Second
)

// backoffDelay computes the capped exponential backoff with jitter for
// the given retry attempt (0-based). The jitter keeps a fleet of
// clients from hammering a recovering server in lockstep.
func backoffDelay(attempt int, rng *rand.Rand) time.Duration {
	d := backoffBase << uint(min(attempt, 20))
	if d <= 0 || d > backoffCap {
		d = backoffCap
	}
	// ±25%: uniform in [0.75d, 1.25d].
	jitter := time.Duration(rng.Int63n(int64(d)/2+1)) - d/4
	return d + jitter
}

// retryableNetErr reports whether err is a transient connection
// failure worth retrying: the server may be restarting behind the
// same address (refused), or it died mid-exchange (reset, abrupt EOF).
func retryableNetErr(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF)
}

// do issues one API request, retrying per the client's budget. 429
// backpressure is not a failure and does not consume the budget — the
// server asked us to wait, so we wait as long as it keeps asking.
func (c *client) do(method, path string, body []byte) (*http.Response, error) {
	attempt, waits429 := 0, 0
	for {
		var rdr io.Reader
		if body != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rdr)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.http.Do(req)
		switch {
		case err != nil:
			if !retryableNetErr(err) || attempt >= c.maxRetries {
				return nil, err
			}
		case resp.StatusCode == http.StatusTooManyRequests:
			delay := retryAfter(resp, 2*time.Second)
			resp.Body.Close()
			waits429++
			fmt.Fprintf(os.Stderr, "triagectl: %s %s: queue full — waiting %v per Retry-After (attempt %d)\n",
				method, path, delay, waits429)
			time.Sleep(delay)
			continue
		case resp.StatusCode < http.StatusInternalServerError:
			return resp, nil
		default:
			if attempt >= c.maxRetries {
				return resp, nil // caller renders the 5xx via apiError
			}
		}
		c.mu.Lock()
		delay := backoffDelay(attempt, c.rng)
		c.mu.Unlock()
		reason, src := "", "backoff"
		if err != nil {
			reason = err.Error()
		} else {
			reason = resp.Status
			// A degraded server hints when to come back; honor it if it
			// is longer than our own schedule.
			if ra := retryAfter(resp, 0); ra > delay {
				delay, src = ra, "Retry-After"
			}
			resp.Body.Close()
		}
		attempt++
		fmt.Fprintf(os.Stderr, "triagectl: %s %s: %s — retry %d/%d in %v (%s)\n",
			method, path, reason, attempt, c.maxRetries, delay, src)
		time.Sleep(delay)
	}
}

// apiError decodes the service's error envelope into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(resp.Body)
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c *client) getJSON(path string, v any) error {
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// submit posts a job. Backpressure (429) and transient failures are
// retried by do; resubmission is idempotent (content-addressed ids).
func (c *client) submit(spec service.JobSpec) (service.SubmitResponse, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return service.SubmitResponse{}, err
	}
	resp, err := c.do(http.MethodPost, "/v1/jobs", body)
	if err != nil {
		return service.SubmitResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return service.SubmitResponse{}, apiError(resp)
	}
	var sr service.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	return sr, err
}

func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return fallback
}

// wait polls until the job reaches a terminal state.
func (c *client) wait(id string) (service.JobStatus, error) {
	for {
		var st service.JobStatus
		if err := c.getJSON("/v1/jobs/"+id, &st); err != nil {
			return st, err
		}
		switch st.State {
		case service.StateDone:
			return st, nil
		case service.StateFailed:
			return st, fmt.Errorf("job %s failed: %s", id, st.Error)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// fetchResult downloads a finished job's result envelope.
func (c *client) fetchResult(id string) (service.JobResult, error) {
	var jr service.JobResult
	resp, err := c.do(http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return jr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jr, apiError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&jr)
	return jr, err
}

// writeResult renders a result envelope: single runs write the
// byte-exact `triagesim -json` encoding to out (and the sampled series
// to telem, if requested); figure jobs render the table.
func writeResult(jr service.JobResult, out, telem string) error {
	if jr.Kind == service.KindFigure {
		if jr.Table == nil {
			return fmt.Errorf("figure result carries no table")
		}
		w := os.Stdout
		if out != "" {
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		jr.Table.Fprint(w)
		return nil
	}
	if jr.Result == nil {
		return fmt.Errorf("result envelope carries no simulation result")
	}
	enc := experiments.EncodeResult(*jr.Result)
	if out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(out, enc, 0o644); err != nil {
		return err
	}
	if telem != "" {
		if err := os.WriteFile(telem, []byte(jr.SamplesJSONL), 0o644); err != nil {
			return err
		}
	}
	return nil
}

func (c *client) cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	bench := fs.String("bench", "", "workload name (single job)")
	traceID := fs.String("trace", "", "replay this corpus trace (sha256:<hex>) instead of a -bench generator; the server must run with -corpus")
	mix := fs.String("mix", "", "comma-separated per-core workload mix; entries are bench names or sha256:<hex> corpus traces (overrides -bench/-trace/-cores)")
	pf := fs.String("pf", "none", "prefetcher configuration (single job)")
	cores := fs.Int("cores", 1, "number of cores (rate mode when > 1)")
	warmup := fs.Uint64("warmup", 1_000_000, "warmup instructions per core")
	measure := fs.Uint64("measure", 5_000_000, "measured instructions per core")
	seed := fs.Uint64("seed", 42, "workload RNG seed")
	degree := fs.Int("degree", 0, "prefetch degree override (0 = default)")
	sample := fs.Uint64("sample", 0, "telemetry sampling interval in instructions (0 = off)")
	figure := fs.String("figure", "", "figure id (figure job; see `experiments -list`)")
	priority := fs.Int("priority", 0, "admission priority (higher runs first)")
	wait := fs.Bool("wait", false, "block until the job finishes and fetch its result")
	out := fs.String("o", "", "write the result to this file (default stdout)")
	telem := fs.String("telemetry", "", "write the sampled series (JSONL) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec service.JobSpec
	if *figure != "" {
		spec = service.JobSpec{Kind: service.KindFigure, Figure: *figure, Priority: *priority}
	} else {
		if *bench == "" && *traceID == "" && *mix == "" {
			return fmt.Errorf("submit: need -bench, -trace, or -mix (single job) or -figure (figure job)")
		}
		spec = service.JobSpec{
			Kind: service.KindSingle,
			Run: &experiments.RunSpec{
				Bench:       *bench,
				PF:          *pf,
				Cores:       *cores,
				Warmup:      *warmup,
				Measure:     *measure,
				Seed:        *seed,
				Degree:      *degree,
				Trace:       *traceID,
				Mix:         splitMix(*mix),
				SampleEvery: *sample,
			},
			Priority: *priority,
		}
		if *mix != "" {
			spec.Run.Bench, spec.Run.Trace = "", ""
		}
	}
	sr, err := c.submit(spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "triagectl: job %s %s (state %s, trace %s)\n", sr.ID, disposition(sr), sr.State, sr.Trace)
	if !*wait {
		fmt.Println(sr.ID)
		return nil
	}
	if _, err := c.wait(sr.ID); err != nil {
		return err
	}
	jr, err := c.fetchResult(sr.ID)
	if err != nil {
		return err
	}
	return writeResult(jr, *out, *telem)
}

// splitMix parses the comma-separated -mix value into RunSpec.Mix
// entries, trimming whitespace and dropping empties.
func splitMix(s string) []string {
	if s == "" {
		return nil
	}
	var mix []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			mix = append(mix, e)
		}
	}
	return mix
}

func disposition(sr service.SubmitResponse) string {
	switch {
	case sr.Cached:
		return "served from warm store"
	case sr.Deduped:
		return "deduped onto existing job"
	}
	return "admitted"
}

func (c *client) cmdStatus(args []string) error {
	if len(args) == 0 {
		return c.clusterStatus()
	}
	if len(args) != 1 {
		return fmt.Errorf("usage: triagectl status [JOB-ID]  (no argument: cluster view)")
	}
	var st service.JobStatus
	if err := c.getJSON("/v1/jobs/"+args[0], &st); err != nil {
		return err
	}
	b, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(b))
	return nil
}

// clusterStatus renders the coordinator's cluster view: registered
// workers (with health/quarantine/drain state), active leases, and
// in-flight cells. Against a triaged started without -cluster the
// endpoint does not exist (404).
func (c *client) clusterStatus() error {
	var sv cluster.StatusView
	if err := c.getJSON("/cluster/v1/status", &sv); err != nil {
		return fmt.Errorf("cluster status (is triaged running with -cluster?): %w", err)
	}
	fmt.Printf("workers: %d    queued: %d  assigned: %d  requeued: %d  leases expired: %d  hedged: %d  uploads rejected: %d\n",
		len(sv.Workers), sv.Queued, sv.Assigned, sv.Requeued, sv.Expired, sv.Hedged, sv.Rejected)
	for _, wv := range sv.Workers {
		state := "live"
		if !wv.Live {
			state = "stale"
		}
		if wv.Quarantined {
			state += " QUARANTINED"
		}
		if wv.Draining {
			state += " draining"
		}
		fmt.Printf("  %-6s %-24s slots %d  inflight %d  health %4.1f  last seen %5dms ago  %s\n",
			wv.ID, wv.Name, wv.Slots, wv.Inflight, wv.Health, wv.LastSeenMillis, state)
	}
	if len(sv.Leases) == 0 {
		fmt.Println("leases: none (no cells in flight)")
		return nil
	}
	fmt.Printf("leases: %d\n", len(sv.Leases))
	for _, lv := range sv.Leases {
		hedged := ""
		if lv.Hedged {
			hedged = "  (hedged)"
		}
		fmt.Printf("  %s on %-6s expires in %5dms  age %6dms  %s%s\n",
			lv.JobID, lv.Worker, lv.ExpiresInMillis, lv.AgeMillis, lv.Key, hedged)
	}
	return nil
}

// cmdWorkers manages the cluster fleet. The only verb today is drain:
// rotate workers out by name — they finish in-flight jobs, get no new
// ones, and their next poll tells them to exit.
func (c *client) cmdWorkers(args []string) error {
	if len(args) != 2 || args[0] != "drain" {
		return fmt.Errorf("usage: triagectl workers drain WORKER-NAME")
	}
	body, err := json.Marshal(cluster.DrainRequest{Name: args[1]})
	if err != nil {
		return err
	}
	resp, err := c.do(http.MethodPost, "/cluster/v1/workers/drain", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	var dr cluster.DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		return err
	}
	fmt.Printf("draining: %s\n", strings.Join(dr.Drained, " "))
	return nil
}

func (c *client) cmdWait(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: triagectl wait JOB-ID")
	}
	st, err := c.wait(args[0])
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "triagectl: job %s done (%d instructions simulated)\n", st.ID, st.Instructions)
	return nil
}

func (c *client) cmdResult(args []string) error {
	fs := flag.NewFlagSet("result", flag.ContinueOnError)
	out := fs.String("o", "", "write the result to this file (default stdout)")
	telem := fs.String("telemetry", "", "write the sampled series (JSONL) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: triagectl result [-o FILE] [-telemetry FILE] JOB-ID")
	}
	jr, err := c.fetchResult(fs.Arg(0))
	if err != nil {
		return err
	}
	return writeResult(jr, *out, *telem)
}

func (c *client) cmdJobs(args []string) error {
	var js []service.JobStatus
	if err := c.getJSON("/v1/jobs", &js); err != nil {
		return err
	}
	for _, st := range js {
		fmt.Printf("%s  %-7s  p%-3d  %12d instr  %s\n", st.ID, st.State, st.Priority, st.Instructions, st.Key)
	}
	return nil
}

// cmdFigures batch-submits a whole figure suite and waits for all of
// it, make -j style: at most j figures in flight at once, the rest
// submitted as slots free up (and 429 backpressure respected).
func (c *client) cmdFigures(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	j := fs.Int("j", 2, "max figures in flight at once")
	outDir := fs.String("o", "", "write each figure's table to DIR/<id>.txt (default stdout)")
	priority := fs.Int("priority", 0, "admission priority for the whole batch")
	warmup := fs.Uint64("warmup", 0, "override single-core warmup instructions (0 = server default)")
	measure := fs.Uint64("measure", 0, "override single-core measured instructions (0 = server default)")
	mwarmup := fs.Uint64("mwarmup", 0, "override multi-core warmup instructions (0 = server default)")
	mmeasure := fs.Uint64("mmeasure", 0, "override multi-core measured instructions (0 = server default)")
	mixes := fs.Int("mixes", 0, "override the number of multi-programmed mixes (0 = server default)")
	seed := fs.Uint64("seed", 0, "override the experiment seed (0 = server default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var scale *service.FigureScale
	if *warmup != 0 || *measure != 0 || *mwarmup != 0 || *mmeasure != 0 || *mixes != 0 || *seed != 0 {
		scale = &service.FigureScale{
			Warmup: *warmup, Measure: *measure,
			MultiWarmup: *mwarmup, MultiMeasure: *mmeasure,
			Mixes: *mixes, Seed: *seed,
		}
	}
	ids := fs.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	if len(ids) == 0 {
		return fmt.Errorf("usage: triagectl figures [-j N] [-o DIR] {all | FIGURE-ID...}")
	}
	if *j < 1 {
		*j = 1
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	sem := make(chan struct{}, *j)
	errs := make([]error, len(ids))
	var mu sync.Mutex // serializes stdout table output
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[i] = func() error {
				sr, err := c.submit(service.JobSpec{Kind: service.KindFigure, Figure: id, Scale: scale, Priority: *priority})
				if err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "triagectl: %s → job %s (%s)\n", id, sr.ID, disposition(sr))
				if _, err := c.wait(sr.ID); err != nil {
					return err
				}
				jr, err := c.fetchResult(sr.ID)
				if err != nil {
					return err
				}
				if *outDir != "" {
					return writeResult(jr, fileInDir(*outDir, id), "")
				}
				mu.Lock()
				defer mu.Unlock()
				return writeResult(jr, "", "")
			}()
		}(i, id)
	}
	wg.Wait()
	var failed int
	for i, err := range errs {
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "triagectl: %s: %v\n", ids[i], err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d figures failed", failed, len(ids))
	}
	fmt.Fprintf(os.Stderr, "triagectl: all %d figures done\n", len(ids))
	return nil
}

func fileInDir(dir, id string) string {
	return dir + string(os.PathSeparator) + id + ".txt"
}

func (c *client) cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	prom := fs.Bool("prom", false, "print the Prometheus text exposition instead of JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *prom {
		resp, err := c.do(http.MethodGet, "/metrics?format=prometheus", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}
	var m map[string]any
	if err := c.getJSON("/metrics", &m); err != nil {
		return err
	}
	b, _ := json.MarshalIndent(m, "", "  ")
	fmt.Println(string(b))
	return nil
}

// cmdTrace fetches a job's span record from the flight recorder and
// renders it as a timeline relative to the first span.
func (c *client) cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	raw := fs.Bool("json", false, "print the raw trace dump instead of the timeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: triagectl trace [-json] {JOB-ID | TRACE-ID}")
	}
	var d struct {
		TraceID string `json:"trace_id"`
		JobID   string `json:"job_id"`
		Spans   []struct {
			Name  string            `json:"name"`
			Start int64             `json:"start_ns"`
			End   int64             `json:"end_ns,omitempty"`
			Attrs map[string]string `json:"attrs,omitempty"`
		} `json:"spans"`
	}
	if err := c.getJSON("/debug/trace/"+fs.Arg(0), &d); err != nil {
		return err
	}
	if *raw {
		b, _ := json.MarshalIndent(d, "", "  ")
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("trace %s (job %s)\n", d.TraceID, d.JobID)
	if len(d.Spans) == 0 {
		return nil
	}
	t0 := d.Spans[0].Start
	for _, sp := range d.Spans {
		dur := ""
		if sp.End != 0 {
			dur = fmt.Sprintf("  [%v]", time.Duration(sp.End-sp.Start))
		}
		line := fmt.Sprintf("  %12v  %s%s", time.Duration(sp.Start-t0), sp.Name, dur)
		if len(sp.Attrs) > 0 {
			b, _ := json.Marshal(sp.Attrs)
			line += "  " + string(b)
		}
		fmt.Println(line)
	}
	return nil
}
