// Command triaged serves the simulation engine as a long-running job
// service (see internal/service): submit benchmark runs or whole paper
// figures over HTTP, follow their progress live, and fetch results
// from a content-addressed store that survives restarts.
//
// On SIGTERM/SIGINT the server drains gracefully: in-flight
// simulations finish (and persist), queued jobs stay in the store
// directory and are re-admitted by the next process, and only then
// does the process exit.
//
//	triaged -store runs.service -listen 127.0.0.1:8080
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/netfault"
	"repro/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "triaged:", err)
		os.Exit(1)
	}
}

func run() error {
	listen := flag.String("listen", "127.0.0.1:8080", "address to serve the HTTP API on (port 0 picks a free port)")
	store := flag.String("store", "runs.service", "result store directory (shared with queued-job persistence)")
	queueCap := flag.Int("queue", 64, "admission queue capacity; submissions beyond it get 429")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulations")
	portFile := flag.String("portfile", "", "write the bound address to this file once listening (for scripts using port 0)")
	traceCap := flag.Int("tracecap", 256, "flight-recorder capacity (traces held for /debug/trace)")
	corpus := flag.String("corpus", "", "content-addressed trace corpus directory; enables jobs that replay traces by hash")
	clusterMode := flag.Bool("cluster", false, "coordinator mode: jobs run on triageworker processes instead of in-process goroutines")
	lease := flag.Duration("lease", 10*time.Second, "cluster mode: worker lease TTL; a job whose worker stops heartbeating this long is requeued")
	nfPlan := flag.String("netfault", "", "seeded server-side fault plan for chaos drills, e.g. seed=7,refuse=0.05 (accepted connections are dropped per plan; see internal/netfault)")
	prof := cliutil.AddProfile(flag.CommandLine)
	wd := cliutil.AddWatchdog(flag.CommandLine)
	dbg := cliutil.AddDebugHTTP(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer stopProf()

	srv, err := service.New(service.Config{
		StoreDir:   *store,
		QueueCap:   *queueCap,
		Workers:    *workers,
		Deadline:   *wd.Deadline,
		Stall:      *wd.Stall,
		TraceCap:   *traceCap,
		CorpusDir:  *corpus,
		RemoteExec: *clusterMode,
		// Degraded-mode entries dump the flight recorder to stderr so the
		// trace timeline around a store fault survives even a crash
		// before anyone scrapes /debug/trace.
		TraceLog: os.Stderr,
	})
	if err != nil {
		return err
	}
	if n := srv.Restored(); n > 0 {
		fmt.Fprintf(os.Stderr, "triaged: re-admitted %d queued job(s) from %s\n", n, *store)
	}
	var coord *cluster.Coordinator
	if *clusterMode {
		coord, err = cluster.New(cluster.Config{Server: srv, LeaseTTL: *lease})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "triaged: cluster coordinator enabled (lease %v) — start triageworker processes to execute jobs\n", *lease)
	}
	// Surface the service counters on the process-global expvar page:
	// the whole snapshot under "service" (legacy shape) and the
	// individual counters under the "triaged." namespace, so a
	// -debughttp listener's /debug/vars shows them alongside the
	// runtime's (memstats, cmdline).
	expvar.Publish("service", expvar.Func(func() any { return srv.MetricsSnapshot() }))
	srv.PublishExpvars()
	dbg.Serve(srv.PoolProgress(), os.Stderr)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	var faulty *netfault.Listener
	if *nfPlan != "" {
		plan, err := netfault.ParsePlan(*nfPlan)
		if err != nil {
			return err
		}
		faulty = netfault.WrapListener(ln, plan)
		ln = faulty
		fmt.Fprintf(os.Stderr, "triaged: netfault listener armed (%s)\n", *nfPlan)
	}
	if *portFile != "" {
		if err := os.WriteFile(*portFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "triaged: serving on http://%s (store %s, %d workers, queue %d)\n",
		ln.Addr(), *store, *workers, *queueCap)

	// Non-zero timeouts everywhere a slow or dead client could
	// otherwise pin a connection: headers and bodies are small (submits
	// are capped at 1 MiB), so generous-but-finite limits only ever
	// bite misbehaving peers. SSE streams outlive WriteTimeout by
	// re-arming a per-write deadline via http.ResponseController.
	handler := http.Handler(srv.Handler())
	if coord != nil {
		handler = coord.Handler(handler)
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "triaged: %v — draining (in-flight jobs finish, queued jobs persist)\n", sig)
	}

	// Drain order: stop admissions and let workers finish first, so a
	// client that was mid-submit gets a clean 503 rather than a reset,
	// then stop the HTTP listener.
	stats := srv.Drain()
	if coord != nil {
		// Drain closed the queue, so the dispatcher has exited; Stop
		// joins it and closes the assignment log.
		coord.Stop()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "triaged: drained — %d job(s) finished, %d queued job(s) persisted\n",
		stats.Finished, stats.Queued)
	if faulty != nil {
		fmt.Fprintf(os.Stderr, "triaged: netfault injected: %s\n", faulty.CountersString())
	}
	return nil
}
