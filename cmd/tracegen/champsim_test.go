package main

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// champsimInsn encodes one 64-byte ChampSim instruction.
func champsimInsn(pc uint64, srcMem, dstMem []uint64) []byte {
	buf := make([]byte, champsimRecordSize)
	binary.LittleEndian.PutUint64(buf[0:8], pc)
	for i, a := range dstMem {
		binary.LittleEndian.PutUint64(buf[16+8*i:24+8*i], a)
	}
	for i, a := range srcMem {
		binary.LittleEndian.PutUint64(buf[32+8*i:40+8*i], a)
	}
	return buf
}

func collectChampSim(t *testing.T, r io.Reader) ([]trace.Record, error) {
	t.Helper()
	cr, err := newChampSimReader(r)
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	for {
		rec, ok := cr.Next()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	return recs, cr.Err()
}

func TestChampSimConvert(t *testing.T) {
	var in bytes.Buffer
	in.Write(champsimInsn(0x400000, []uint64{0x7000}, []uint64{0x8000}))
	in.Write(champsimInsn(0x400004, nil, nil))
	in.Write(champsimInsn(0x400008, []uint64{0x7040, 0x9000}, nil))

	recs, err := collectChampSim(t, &in)
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Record{
		{PC: 0x400000, Op: trace.Load, Addr: mem.Addr(0x7000)},
		{PC: 0x400000, Op: trace.Store, Addr: mem.Addr(0x8000)},
		{PC: 0x400004, Op: trace.NonMem},
		{PC: 0x400008, Op: trace.Load, Addr: mem.Addr(0x7040)},
		{PC: 0x400008, Op: trace.Load, Addr: mem.Addr(0x9000)},
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d: %+v", len(recs), len(want), recs)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Errorf("record %d: got %+v, want %+v", i, recs[i], want[i])
		}
	}
}

// TestChampSimGzip checks that a gzip-compressed input is sniffed and
// decodes to the identical record stream.
func TestChampSimGzip(t *testing.T) {
	raw := append(champsimInsn(0x1000, []uint64{0x2000}, nil),
		champsimInsn(0x1004, nil, []uint64{0x3000})...)
	plain, err := collectChampSim(t, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var zbuf bytes.Buffer
	zw := gzip.NewWriter(&zbuf)
	zw.Write(raw)
	zw.Close()
	zipped, err := collectChampSim(t, bytes.NewReader(zbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(zipped) {
		t.Fatalf("gzip path decoded %d records, plain %d", len(zipped), len(plain))
	}
	for i := range plain {
		if plain[i] != zipped[i] {
			t.Errorf("record %d differs across gzip: %+v vs %+v", i, plain[i], zipped[i])
		}
	}
}

// TestChampSimTruncated pins the torn-input contract: a partial final
// instruction surfaces io.ErrUnexpectedEOF instead of being silently
// dropped — the same discipline as the trace decoders.
func TestChampSimTruncated(t *testing.T) {
	raw := append(champsimInsn(0x1000, []uint64{0x2000}, nil),
		champsimInsn(0x1004, []uint64{0x2040}, nil)...)
	recs, err := collectChampSim(t, bytes.NewReader(raw[:champsimRecordSize+10]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated input: err = %v, want ErrUnexpectedEOF", err)
	}
	if len(recs) != 1 {
		t.Errorf("got %d records before the tear, want 1", len(recs))
	}
}

// TestImportChampSimToCorpus runs the full import pipeline: encode
// instructions, ingest via -import champsim -corpus, reopen by id.
func TestImportChampSimToCorpus(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.champsim")
	var raw []byte
	for i := 0; i < 100; i++ {
		raw = append(raw, champsimInsn(0x1000+uint64(i)*4, []uint64{0x4000 + uint64(i)*64}, nil)...)
	}
	if err := os.WriteFile(inPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	src, closeSrc, err := openSource("champsim", inPath, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSrc()
	corpusDir := filepath.Join(dir, "corpus")
	if err := ingestCorpus(corpusDir, src, 1<<20); err != nil {
		t.Fatal(err)
	}

	c, err := trace.OpenCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c.List()
	if err != nil || len(ids) != 1 {
		t.Fatalf("corpus list = %v, %v", ids, err)
	}
	cf, err := c.Open(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	defer cf.Close()
	for i := 0; i < 100; i++ {
		rec, ok := cf.Next()
		if !ok {
			t.Fatalf("corpus trace ended at %d: %v", i, cf.Err())
		}
		want := trace.Record{PC: 0x1000 + uint64(i)*4, Op: trace.Load, Addr: mem.Addr(0x4000 + i*64)}
		if rec != want {
			t.Fatalf("record %d: got %+v, want %+v", i, rec, want)
		}
	}
	if _, ok := cf.Next(); ok {
		t.Fatal("extra records after import")
	}
	if err := cf.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeV2 checks -inspect against a TRC2 file (the decoder is
// sniffed, so the same code path serves both containers).
func TestSummarizeV2(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trc2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriterV2(f)
	w.Write(trace.Record{PC: 0x10, Op: trace.Load, Addr: 0x100})
	w.Write(trace.Record{PC: 0x14, Op: trace.Store, Addr: 0x140})
	w.Write(trace.Record{PC: 0x18, Op: trace.NonMem})
	w.Write(trace.Record{PC: 0x10, Op: trace.Load, Addr: 0x100, LoadDep: 1})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := summarize(path)
	if err != nil {
		t.Fatal(err)
	}
	want := summary{Records: 4, Loads: 2, Stores: 1, Dependent: 1, MemoryPCs: 2, Lines: 2}
	if got != want {
		t.Errorf("summarize = %+v, want %+v", got, want)
	}
}
