// Command tracegen materializes a synthetic benchmark into a binary
// trace file (the compact delta-encoded format of internal/trace), or
// inspects an existing trace. Materialized traces decouple workload
// generation from simulation and make runs byte-reproducible.
//
// Usage:
//
//	tracegen -bench mcf -n 5000000 -o mcf.trace     # generate
//	tracegen -inspect mcf.trace                      # summarize
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"repro/internal/cliutil"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// A generator panic (bad parameters, broken workload) reports as a
	// clean diagnostic with the stack rather than a raw crash, matching
	// the other tools' failure reporting.
	defer func() {
		if rec := recover(); rec != nil {
			fmt.Fprintf(os.Stderr, "tracegen: panic: %v\n", rec)
			os.Stderr.Write(debug.Stack())
			os.Exit(1)
		}
	}()
	var (
		bench   = flag.String("bench", "mcf", "benchmark to materialize")
		n       = flag.Uint64("n", 5_000_000, "number of instructions")
		out     = flag.String("o", "", "output file (default <bench>.trace)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		base    = flag.Uint64("base", 0, "address-space base")
		inspect = flag.String("inspect", "", "summarize an existing trace file and exit")
		list    = flag.Bool("list", false, "list benchmarks and exit")
	)
	prof := cliutil.AddProfile(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	if *inspect != "" {
		s, err := summarize(*inspect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.print(os.Stdout)
		return
	}

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *bench + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	w := trace.NewWriter(f)
	r := spec.New(*seed, mem.Addr(*base))
	for i := uint64(0); i < *n; i++ {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d records to %s (%.1f MB, %.2f bytes/record)\n",
		w.Count(), path, float64(st.Size())/(1<<20), float64(st.Size())/float64(w.Count()))
}

// summary is the -inspect report, split from its printing so tests
// can check the round-trip numbers directly.
type summary struct {
	Records   uint64
	Loads     uint64
	Stores    uint64
	Dependent uint64
	MemoryPCs int
	Lines     int
}

func summarize(path string) (summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return summary{}, err
	}
	defer f.Close()
	r := trace.NewFileReader(f)
	var s summary
	pcs := map[uint64]struct{}{}
	lines := map[mem.Line]struct{}{}
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		s.Records++
		switch rec.Op {
		case trace.Load:
			s.Loads++
		case trace.Store:
			s.Stores++
		}
		if rec.Op != trace.NonMem {
			pcs[rec.PC] = struct{}{}
			if len(lines) < 1<<22 {
				lines[mem.LineOf(rec.Addr)] = struct{}{}
			}
		}
		if rec.LoadDep > 0 {
			s.Dependent++
		}
	}
	if err := r.Err(); err != nil {
		return summary{}, err
	}
	s.MemoryPCs = len(pcs)
	s.Lines = len(lines)
	return s, nil
}

func (s summary) print(w io.Writer) {
	fmt.Fprintf(w, "records      : %d\n", s.Records)
	fmt.Fprintf(w, "loads/stores : %d / %d\n", s.Loads, s.Stores)
	fmt.Fprintf(w, "dependent    : %d loads (%.1f%%) are pointer-chained\n",
		s.Dependent, 100*float64(s.Dependent)/float64(max64(s.Loads, 1)))
	fmt.Fprintf(w, "memory PCs   : %d\n", s.MemoryPCs)
	fmt.Fprintf(w, "footprint    : %d distinct lines (%.1f MB)\n",
		s.Lines, float64(s.Lines)*mem.LineSize/(1<<20))
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
