// Command tracegen materializes a synthetic benchmark into a binary
// trace file (TRC2, the CRC-framed block-compressed container of
// internal/trace, or the legacy v1 delta format), ingests traces into
// a content-addressed corpus, imports external ChampSim traces, or
// inspects an existing trace. Materialized traces decouple workload
// generation from simulation and make runs byte-reproducible.
//
// Usage:
//
//	tracegen -bench mcf -n 5000000 -o mcf.trc2           # generate
//	tracegen -bench mcf -n 5000000 -corpus traces/       # ingest; prints sha256:<hex>
//	tracegen -import champsim -in cloud.xz.gz -corpus traces/
//	tracegen -inspect mcf.trc2                           # summarize (v1 or v2)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"

	"repro/internal/cliutil"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// A generator panic (bad parameters, broken workload) reports as a
	// clean diagnostic with the stack rather than a raw crash, matching
	// the other tools' failure reporting.
	defer func() {
		if rec := recover(); rec != nil {
			fmt.Fprintf(os.Stderr, "tracegen: panic: %v\n", rec)
			os.Stderr.Write(debug.Stack())
			os.Exit(1)
		}
	}()
	var (
		bench   = flag.String("bench", "mcf", "benchmark to materialize")
		n       = flag.Uint64("n", 5_000_000, "number of instructions (cap when importing)")
		out     = flag.String("o", "", "output file (default <bench>.trace)")
		format  = flag.String("format", "v2", "output container: v2 (TRC2, checksummed+compressed) or v1 (legacy)")
		corpus  = flag.String("corpus", "", "ingest into this content-addressed corpus directory instead of -o; prints the trace id on stdout")
		imp     = flag.String("import", "", "import an external trace instead of generating (formats: champsim)")
		in      = flag.String("in", "", "input file for -import (gzip is detected by sniffing)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		base    = flag.Uint64("base", 0, "address-space base")
		inspect = flag.String("inspect", "", "summarize an existing trace file and exit")
		list    = flag.Bool("list", false, "list benchmarks and exit")
	)
	prof := cliutil.AddProfile(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	if *inspect != "" {
		s, err := summarize(*inspect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s.print(os.Stdout)
		return
	}

	src, closeSrc, err := openSource(*imp, *in, *bench, *seed, *base)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer closeSrc()

	if *corpus != "" {
		if err := ingestCorpus(*corpus, src, *n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	path := *out
	if path == "" {
		if *imp != "" {
			fmt.Fprintln(os.Stderr, "tracegen: -import to a file requires -o (or use -corpus)")
			os.Exit(2)
		}
		path = *bench + ".trace"
	}
	if err := writeFile(path, *format, src, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// source is a record stream with a terminal error: a workload
// generator (never fails) or an external-format importer.
type source interface {
	Next() (trace.Record, bool)
	Err() error
}

// generatorSource adapts an endless workload generator.
type generatorSource struct{ trace.Reader }

func (generatorSource) Err() error { return nil }

func openSource(imp, in, bench string, seed, base uint64) (source, func(), error) {
	switch imp {
	case "":
		spec, ok := workload.ByName(bench)
		if !ok {
			return nil, nil, fmt.Errorf("unknown benchmark %q (use -list)", bench)
		}
		return generatorSource{spec.New(seed, mem.Addr(base))}, func() {}, nil
	case "champsim":
		if in == "" {
			return nil, nil, fmt.Errorf("tracegen: -import champsim requires -in FILE")
		}
		f, err := os.Open(in)
		if err != nil {
			return nil, nil, err
		}
		cr, err := newChampSimReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return cr, func() { f.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("tracegen: unknown import format %q (supported: champsim)", imp)
	}
}

// ingestCorpus streams up to n records into the corpus and prints the
// canonical content id on stdout (stats go to stderr, so scripts can
// capture the id alone). A source error aborts the ingest: a torn
// input must never be published under a valid content address.
func ingestCorpus(dir string, src source, n uint64) error {
	c, err := trace.OpenCorpus(dir)
	if err != nil {
		return err
	}
	cw, err := c.Create()
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := cw.Write(rec); err != nil {
			cw.Abort()
			return err
		}
	}
	if err := src.Err(); err != nil {
		cw.Abort()
		return err
	}
	if cw.Count() == 0 {
		cw.Abort()
		return fmt.Errorf("tracegen: source yielded no records; refusing to ingest an empty trace")
	}
	count := cw.Count()
	id, err := cw.Commit()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ingested %d records into %s\n", count, dir)
	fmt.Println(id)
	return nil
}

// writeFile streams up to n records into a standalone trace file in
// the requested container format.
func writeFile(path, format string, src source, n uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		write func(trace.Record) error
		seal  func() error
		count func() uint64
	)
	switch format {
	case "v1":
		tw := trace.NewWriter(f)
		write, seal, count = tw.Write, tw.Flush, tw.Count
	case "v2":
		tw := trace.NewWriterV2(f)
		write, seal, count = tw.Write, tw.Close, tw.Count
	default:
		return fmt.Errorf("tracegen: unknown format %q (want v1 or v2)", format)
	}
	for i := uint64(0); i < n; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := write(rec); err != nil {
			return err
		}
	}
	if err := src.Err(); err != nil {
		return err
	}
	if err := seal(); err != nil {
		return err
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d records to %s (%.1f MB, %.2f bytes/record)\n",
		count(), path, float64(st.Size())/(1<<20), float64(st.Size())/float64(max64(count(), 1)))
	return nil
}

// summary is the -inspect report, split from its printing so tests
// can check the round-trip numbers directly.
type summary struct {
	Records   uint64
	Loads     uint64
	Stores    uint64
	Dependent uint64
	MemoryPCs int
	Lines     int
}

func summarize(path string) (summary, error) {
	f, err := os.Open(path)
	if err != nil {
		return summary{}, err
	}
	defer f.Close()
	r := trace.NewDecoder(f)
	var s summary
	pcs := map[uint64]struct{}{}
	lines := map[mem.Line]struct{}{}
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		s.Records++
		switch rec.Op {
		case trace.Load:
			s.Loads++
		case trace.Store:
			s.Stores++
		}
		if rec.Op != trace.NonMem {
			pcs[rec.PC] = struct{}{}
			if len(lines) < 1<<22 {
				lines[mem.LineOf(rec.Addr)] = struct{}{}
			}
		}
		if rec.LoadDep > 0 {
			s.Dependent++
		}
	}
	if err := r.Err(); err != nil {
		return summary{}, err
	}
	s.MemoryPCs = len(pcs)
	s.Lines = len(lines)
	return s, nil
}

func (s summary) print(w io.Writer) {
	fmt.Fprintf(w, "records      : %d\n", s.Records)
	fmt.Fprintf(w, "loads/stores : %d / %d\n", s.Loads, s.Stores)
	fmt.Fprintf(w, "dependent    : %d loads (%.1f%%) are pointer-chained\n",
		s.Dependent, 100*float64(s.Dependent)/float64(max64(s.Loads, 1)))
	fmt.Fprintf(w, "memory PCs   : %d\n", s.MemoryPCs)
	fmt.Fprintf(w, "footprint    : %d distinct lines (%.1f MB)\n",
		s.Lines, float64(s.Lines)*mem.LineSize/(1<<20))
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
