// Command tracegen materializes a synthetic benchmark into a binary
// trace file (the compact delta-encoded format of internal/trace), or
// inspects an existing trace. Materialized traces decouple workload
// generation from simulation and make runs byte-reproducible.
//
// Usage:
//
//	tracegen -bench mcf -n 5000000 -o mcf.trace     # generate
//	tracegen -inspect mcf.trace                      # summarize
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark to materialize")
		n       = flag.Uint64("n", 5_000_000, "number of instructions")
		out     = flag.String("o", "", "output file (default <bench>.trace)")
		seed    = flag.Uint64("seed", 42, "generator seed")
		base    = flag.Uint64("base", 0, "address-space base")
		inspect = flag.String("inspect", "", "summarize an existing trace file and exit")
		list    = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			fmt.Println(name)
		}
		return
	}
	if *inspect != "" {
		if err := summarize(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	path := *out
	if path == "" {
		path = *bench + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()

	w := trace.NewWriter(f)
	r := spec.New(*seed, mem.Addr(*base))
	for i := uint64(0); i < *n; i++ {
		rec, ok := r.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	st, _ := f.Stat()
	fmt.Printf("wrote %d records to %s (%.1f MB, %.2f bytes/record)\n",
		w.Count(), path, float64(st.Size())/(1<<20), float64(st.Size())/float64(w.Count()))
}

func summarize(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewFileReader(f)
	var total, loads, stores, deps uint64
	pcs := map[uint64]struct{}{}
	lines := map[mem.Line]struct{}{}
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		total++
		switch rec.Op {
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		}
		if rec.Op != trace.NonMem {
			pcs[rec.PC] = struct{}{}
			if len(lines) < 1<<22 {
				lines[mem.LineOf(rec.Addr)] = struct{}{}
			}
		}
		if rec.LoadDep > 0 {
			deps++
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	fmt.Printf("records      : %d\n", total)
	fmt.Printf("loads/stores : %d / %d\n", loads, stores)
	fmt.Printf("dependent    : %d loads (%.1f%%) are pointer-chained\n",
		deps, 100*float64(deps)/float64(max64(loads, 1)))
	fmt.Printf("memory PCs   : %d\n", len(pcs))
	fmt.Printf("footprint    : %d distinct lines (%.1f MB)\n",
		len(lines), float64(len(lines))*mem.LineSize/(1<<20))
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
