package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSummarizeRoundTrip materializes a small benchmark trace exactly
// the way the generate path does, counting the expected statistics on
// the fly, then checks that -inspect's summarize recovers them from
// the encoded file.
func TestSummarizeRoundTrip(t *testing.T) {
	spec, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("benchmark mcf not registered")
	}
	path := filepath.Join(t.TempDir(), "mcf.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f)
	r := spec.New(42, 0)

	var want summary
	pcs := map[uint64]struct{}{}
	lines := map[mem.Line]struct{}{}
	const n = 50_000
	for i := 0; i < n; i++ {
		rec, ok := r.Next()
		if !ok {
			break
		}
		want.Records++
		switch rec.Op {
		case trace.Load:
			want.Loads++
		case trace.Store:
			want.Stores++
		}
		if rec.Op != trace.NonMem {
			pcs[rec.PC] = struct{}{}
			lines[mem.LineOf(rec.Addr)] = struct{}{}
		}
		if rec.LoadDep > 0 {
			want.Dependent++
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want.MemoryPCs = len(pcs)
	want.Lines = len(lines)

	got, err := summarize(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("summarize mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Records != n {
		t.Errorf("expected the generator to supply all %d records, got %d", n, got.Records)
	}
	if got.Loads == 0 || got.Dependent == 0 {
		t.Errorf("mcf should contain dependent loads, got %+v", got)
	}
}

// TestSummarizePrint pins the -inspect report format so the CLI output
// stays stable for scripts that scrape it.
func TestSummarizePrint(t *testing.T) {
	s := summary{Records: 10, Loads: 6, Stores: 2, Dependent: 3, MemoryPCs: 4, Lines: 5}
	var buf bytes.Buffer
	s.print(&buf)
	want := "records      : 10\n" +
		"loads/stores : 6 / 2\n" +
		"dependent    : 3 loads (50.0%) are pointer-chained\n" +
		"memory PCs   : 4\n" +
		"footprint    : 5 distinct lines (0.0 MB)\n"
	if buf.String() != want {
		t.Errorf("print output:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestSummarizeMissingFile checks the error path -inspect relies on.
func TestSummarizeMissingFile(t *testing.T) {
	if _, err := summarize(filepath.Join(t.TempDir(), "nope.trace")); err == nil {
		t.Error("expected an error for a missing trace file")
	}
}
