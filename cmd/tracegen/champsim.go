// ChampSim trace import: the de-facto interchange format for cache
// and prefetcher studies. A ChampSim trace is a flat sequence of
// fixed-size 64-byte little-endian records, one per retired
// instruction, usually compressed. The container here understands raw
// and gzip streams (sniffed by magic, so the filename does not
// matter); xz-compressed traces must be decompressed externally since
// the toolchain has no xz support and this repo adds no dependencies.

package main

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
	"repro/internal/trace"
)

// champsimRecordSize is the fixed on-disk size of one input
// instruction: ip(8) + is_branch(1) + branch_taken(1) +
// destination_registers(2) + source_registers(4) +
// destination_memory(2*8) + source_memory(4*8).
const champsimRecordSize = 64

// champsimReader converts ChampSim instructions into trace.Records,
// streaming: one instruction expands to one record per memory operand
// (sources become Loads, destinations become Stores) or a single
// NonMem record when the instruction touches no memory. LoadDep is
// left zero — the format does not carry the pointer-chain signal, so
// imported traces exercise the address stream only.
type champsimReader struct {
	r       *bufio.Reader
	buf     [champsimRecordSize]byte
	pending []trace.Record
	insns   uint64
	err     error
}

// newChampSimReader wraps r, transparently ungzipping when the stream
// starts with the gzip magic.
func newChampSimReader(r io.Reader) (*champsimReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("tracegen: opening gzip stream: %w", err)
		}
		br = bufio.NewReaderSize(zr, 1<<16)
	}
	return &champsimReader{r: br}, nil
}

// Next implements trace.Reader.
func (cr *champsimReader) Next() (trace.Record, bool) {
	for {
		if len(cr.pending) > 0 {
			rec := cr.pending[0]
			cr.pending = cr.pending[1:]
			return rec, true
		}
		if cr.err != nil {
			return trace.Record{}, false
		}
		if _, err := io.ReadFull(cr.r, cr.buf[:]); err != nil {
			if !errors.Is(err, io.EOF) {
				// A partial final record is a truncated input, not a clean
				// end — surface it like the trace decoders do.
				if errors.Is(err, io.ErrUnexpectedEOF) {
					err = fmt.Errorf("tracegen: champsim input truncated mid-instruction (%d whole instructions): %w",
						cr.insns, io.ErrUnexpectedEOF)
				}
				cr.err = err
			}
			return trace.Record{}, false
		}
		cr.insns++
		cr.expand()
	}
}

// Err reports the first decode failure, nil on a clean end.
func (cr *champsimReader) Err() error { return cr.err }

// Instructions returns the count of whole input instructions consumed.
func (cr *champsimReader) Instructions() uint64 { return cr.insns }

// expand decodes the buffered instruction into pending records.
func (cr *champsimReader) expand() {
	pc := binary.LittleEndian.Uint64(cr.buf[0:8])
	// Layout offsets: 8 is_branch, 9 branch_taken, 10..11 dest regs,
	// 12..15 source regs, 16..31 destination_memory, 32..63 source_memory.
	cr.pending = cr.pending[:0]
	for i := 0; i < 4; i++ {
		addr := binary.LittleEndian.Uint64(cr.buf[32+8*i : 40+8*i])
		if addr != 0 {
			cr.pending = append(cr.pending, trace.Record{PC: pc, Op: trace.Load, Addr: mem.Addr(addr)})
		}
	}
	for i := 0; i < 2; i++ {
		addr := binary.LittleEndian.Uint64(cr.buf[16+8*i : 24+8*i])
		if addr != 0 {
			cr.pending = append(cr.pending, trace.Record{PC: pc, Op: trace.Store, Addr: mem.Addr(addr)})
		}
	}
	if len(cr.pending) == 0 {
		cr.pending = append(cr.pending, trace.Record{PC: pc, Op: trace.NonMem})
	}
}
