// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-fig fig05,fig11] [-full] [-j N] [-mixes N] [-measure N] [-warmup N] [-seed N]
//
// Without -fig it runs every experiment in paper order. -full switches
// to the larger paper-scale windows (slower). -j sets how many
// simulations run concurrently (default: GOMAXPROCS); tables and CSVs
// are byte-identical for every -j. Results print as aligned text
// tables with shape notes; EXPERIMENTS.md records paper-vs-measured
// values for a committed run.
//
// -bench FILE runs each selected experiment with a fresh runner,
// timing it, and writes a JSON report of simulation throughput
// (see EXPERIMENTS.md "Performance"). -telemetry attaches a sampler to
// every run so the report also measures the instrumented path.
//
// Introspection: -progress prints a live status line (runs, Minstr/s,
// busy workers, ETA) to stderr; -debughttp ADDR serves expvar counters
// at http://ADDR/debug/vars; -cpuprofile/-memprofile write pprof
// profiles.
//
// Fault tolerance: -resume DIR checkpoints completed runs and restarts
// only the missing ones after an interruption (output byte-identical);
// -deadline/-stall abort stuck runs; a panicking or aborted cell
// degrades into an error row/table while siblings complete, and the
// process exits nonzero. -check N asserts simulator structural
// invariants every N instructions. See EXPERIMENTS.md "Fault
// tolerance".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchfile"
	"repro/internal/cliutil"
	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	var (
		figs     = flag.String("fig", "all", "comma-separated experiment ids, or 'all' (known: "+strings.Join(experiments.IDs(), ",")+")")
		full     = flag.Bool("full", false, "paper-scale instruction windows (slower)")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "max simulations running concurrently (output is identical for any value)")
		mixes    = flag.Int("mixes", 0, "override number of multi-programmed mixes")
		warmup   = flag.Uint64("warmup", 0, "override single-core warmup instructions")
		measure  = flag.Uint64("measure", 0, "override single-core measured instructions")
		mwarmup  = flag.Uint64("mwarmup", 0, "override multi-core warmup instructions")
		mmeasure = flag.Uint64("mmeasure", 0, "override multi-core measured instructions")
		seed     = flag.Uint64("seed", 0, "override workload seed")
		csvDir   = flag.String("csv", "", "also write each table as CSV into this directory")
		bench    = flag.String("bench", "", "write a JSON throughput report (per-experiment wall time and sim-instr/s) to this file")

		resume  = flag.String("resume", "", "checkpoint directory: completed runs persist here and an interrupted invocation restarts only the missing cells")
		retries = flag.Int("retries", 0, "extra attempts for transiently failed runs (fault-injection test hook; deterministic failures are never retried)")
		check   = flag.Uint64("check", 0, "assert simulator structural invariants every N instructions (debug mode, 0 = off)")

		progress = flag.Bool("progress", false, "print a live progress line to stderr")
		withTel  = flag.Bool("telemetry", false, "attach a 100k-instruction sampler to every run (bench: measures the instrumented path)")
	)
	wd := cliutil.AddWatchdog(flag.CommandLine)
	debugHTTP := cliutil.AddDebugHTTP(flag.CommandLine)
	prof := cliutil.AddProfile(flag.CommandLine)
	flag.Parse()

	p := experiments.DefaultParams()
	if *full {
		p = experiments.FullParams()
	}
	if *mixes > 0 {
		p.Mixes = *mixes
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}
	if *measure > 0 {
		p.Measure = *measure
	}
	if *mwarmup > 0 {
		p.MultiWarmup = *mwarmup
	}
	if *mmeasure > 0 {
		p.MultiMeasure = *mmeasure
	}
	if *seed > 0 {
		p.Seed = *seed
	}
	if *withTel {
		p.SampleEvery = 100_000
	}
	p.Deadline = *wd.Deadline
	p.StallTimeout = *wd.Stall
	p.Retries = *retries
	p.CheckEvery = *check

	var selected []experiments.Experiment
	if *figs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	pool := experiments.NewPool(*jobs)
	start := time.Now()

	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()
	if *progress || *debugHTTP.Addr != "" {
		prog := telemetry.NewPoolProgress(len(selected))
		pool.SetProgress(prog)
		if *progress {
			stop := telemetry.StartPrinter(os.Stderr, prog, 2*time.Second)
			defer stop()
		}
		debugHTTP.Serve(prog, os.Stderr)
	}

	if *bench != "" {
		if err := runBench(*bench, p, pool, selected, *csvDir, *withTel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
		return
	}

	// All experiments share one runner: the single-flight cache simulates
	// each baseline exactly once even when figures race to it, and the
	// launch/collect figure structure keeps tables deterministic.
	runner := experiments.NewRunnerPool(p, pool)
	var ck *experiments.Checkpoint
	if *resume != "" {
		// The checkpoint is stamped with the parameter fingerprint, so a
		// directory written under different scale flags (or a different
		// machine config) is refused instead of silently served.
		var err error
		ck, err = experiments.OpenCheckpoint(*resume, p.Fingerprint(config.Default(1)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runner.SetCheckpoint(ck)
	}
	fmt.Printf("running %d experiments on %d workers...\n", len(selected), pool.Workers())
	tables := experiments.RunAll(runner, selected)
	for i, e := range selected {
		tables[i].Fprint(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, tables[i]); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("total: %.1fs (%d simulations, %.2fM sim-instr/s)\n",
		time.Since(start).Seconds(), runner.Runs(),
		float64(runner.SimulatedInstructions())/time.Since(start).Seconds()/1e6)
	// Diagnostics go to stderr so stdout stays byte-identical between
	// fresh and resumed invocations.
	for _, err := range runner.SampleErrors() {
		fmt.Fprintf(os.Stderr, "warning: %v\n", err)
	}
	if ck != nil {
		fmt.Fprintf(os.Stderr, "checkpoint: %d cells restored, %d simulated\n",
			runner.Restored(), runner.Runs())
		if err := ck.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "warning: checkpoint: %v\n", err)
		}
	}
	if experiments.AnyFailed(tables) {
		fmt.Fprintln(os.Stderr, "one or more experiments failed (see error rows above)")
		os.Exit(1)
	}
}

// runBench times each experiment with a fresh runner (so cached work is
// attributed to the experiment that caused it) and writes the versioned
// JSON report (internal/benchfile). Experiments run one at a time;
// their internal simulations still fan out across the pool. An existing
// report's microbenchmark rows (appended by cmd/benchmerge) survive the
// rewrite; the experiment rows are replaced wholesale.
func runBench(path string, p experiments.Params, pool *experiments.Pool, selected []experiments.Experiment, csvDir string, withTel bool) error {
	report, err := benchfile.Read(path)
	if err != nil {
		return err
	}
	report.Experiments = nil
	var totalInstr, totalRuns uint64
	benchStart := time.Now()
	for _, e := range selected {
		runner := experiments.NewRunnerPool(p, pool)
		t0 := time.Now()
		fmt.Printf("running %s (%s)...\n", e.ID, e.Short)
		table := experiments.RunOne(runner, e)
		wall := time.Since(t0).Seconds()
		instr := runner.SimulatedInstructions()
		totalInstr += instr
		totalRuns += runner.Runs()
		report.Experiments = append(report.Experiments, benchfile.Experiment{
			Experiment:       e.ID,
			WallSeconds:      wall,
			Simulations:      runner.Runs(),
			SimInstructions:  instr,
			SimInstrPerSec:   float64(instr) / wall,
			Workers:          pool.Workers(),
			WarmupInstr:      p.Warmup,
			MeasureInstr:     p.Measure,
			MultiWarmupInstr: p.MultiWarmup,
			MultiMeasure:     p.MultiMeasure,
			Telemetry:        withTel,
		})
		if csvDir != "" {
			if err := writeCSV(csvDir, e.ID, table); err != nil {
				return err
			}
		}
		fmt.Printf("(%s took %.1fs, %.2fM sim-instr/s)\n\n", e.ID, wall, float64(instr)/wall/1e6)
	}
	totalWall := time.Since(benchStart).Seconds()
	report.Experiments = append(report.Experiments, benchfile.Experiment{
		Experiment:      "total",
		WallSeconds:     totalWall,
		Simulations:     totalRuns,
		SimInstructions: totalInstr,
		SimInstrPerSec:  float64(totalInstr) / totalWall,
		Workers:         pool.Workers(),
		WarmupInstr:     p.Warmup,
		MeasureInstr:    p.Measure,
		Telemetry:       withTel,
	})
	return report.Write(path)
}

func writeCSV(dir, id string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
