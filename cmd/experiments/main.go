// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-fig fig05,fig11] [-full] [-mixes N] [-measure N] [-warmup N] [-seed N]
//
// Without -fig it runs every experiment in paper order. -full switches
// to the larger paper-scale windows (slower). Results print as aligned
// text tables with shape notes; EXPERIMENTS.md records paper-vs-
// measured values for a committed run.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		figs    = flag.String("fig", "all", "comma-separated experiment ids, or 'all' (known: "+strings.Join(experiments.IDs(), ",")+")")
		full    = flag.Bool("full", false, "paper-scale instruction windows (slower)")
		mixes   = flag.Int("mixes", 0, "override number of multi-programmed mixes")
		warmup  = flag.Uint64("warmup", 0, "override single-core warmup instructions")
		measure = flag.Uint64("measure", 0, "override single-core measured instructions")
		seed    = flag.Uint64("seed", 0, "override workload seed")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	p := experiments.DefaultParams()
	if *full {
		p = experiments.FullParams()
	}
	if *mixes > 0 {
		p.Mixes = *mixes
	}
	if *warmup > 0 {
		p.Warmup = *warmup
	}
	if *measure > 0 {
		p.Measure = *measure
	}
	if *seed > 0 {
		p.Seed = *seed
	}

	var selected []experiments.Experiment
	if *figs == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*figs, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", id, strings.Join(experiments.IDs(), ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	runner := experiments.NewRunner(p)
	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		fmt.Printf("running %s (%s)...\n", e.ID, e.Short)
		table := e.Run(runner)
		table.Fprint(os.Stdout)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, table); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s took %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}

func writeCSV(dir, id string, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
