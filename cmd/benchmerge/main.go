// Command benchmerge folds Go microbenchmark results into the
// versioned BENCH_sim.json report next to the whole-experiment rows
// written by cmd/experiments -bench:
//
//	go test -run '^$' -bench 'StepLoop|PrefetchDispatch|WarmupSnapshot' . |
//	    go run ./cmd/benchmerge -file BENCH_sim.json -pkg repro
//
// Rows are keyed (package, benchmark name): re-running a suite updates
// its rows in place, and a legacy bare-array report is upgraded to the
// current schema on first merge.
//
// With -service, stdin is instead a BENCH_service.json fragment (the
// shape cmd/triageload emits) and its scenario rows are merged into the
// service report, keyed by scenario name:
//
//	triageload -scenario steady -o - | benchmerge -service -file BENCH_service.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfile"
)

func main() {
	var (
		file    = flag.String("file", "BENCH_sim.json", "report to update")
		pkg     = flag.String("pkg", "", "package label for the parsed rows (required unless -service)")
		service = flag.Bool("service", false, "merge a BENCH_service.json fragment from stdin instead of go-test -bench output")
	)
	flag.Parse()
	if *service {
		if err := mergeService(*file); err != nil {
			fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *pkg == "" {
		fmt.Fprintln(os.Stderr, "benchmerge: -pkg is required")
		os.Exit(2)
	}
	rows, err := benchfile.ParseGoBench(os.Stdin, *pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: parse: %v\n", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchmerge: no benchmark lines on stdin")
		os.Exit(1)
	}
	f, err := benchfile.Read(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
		os.Exit(1)
	}
	f.MergeMicro(rows)
	if err := f.Write(*file); err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d microbenchmark rows into %s\n", len(rows), *file)
}

// mergeService folds the scenario rows of a service report on stdin
// into the report at path, replacing rows with matching scenario names.
func mergeService(path string) error {
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return err
	}
	in, err := benchfile.DecodeService(data)
	if err != nil {
		return err
	}
	if len(in.Service) == 0 {
		return fmt.Errorf("no service rows on stdin")
	}
	// Default -file still points at the sim report; steer the common
	// mistake of merging service rows into it.
	if path == "BENCH_sim.json" {
		path = "BENCH_service.json"
	}
	f, err := benchfile.ReadService(path)
	if err != nil {
		return err
	}
	f.MergeService(in.Service)
	if err := f.Write(path); err != nil {
		return err
	}
	fmt.Printf("merged %d service scenario row(s) into %s\n", len(in.Service), path)
	return nil
}
