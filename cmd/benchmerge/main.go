// Command benchmerge folds Go microbenchmark results into the
// versioned BENCH_sim.json report next to the whole-experiment rows
// written by cmd/experiments -bench:
//
//	go test -run '^$' -bench 'StepLoop|PrefetchDispatch|WarmupSnapshot' . |
//	    go run ./cmd/benchmerge -file BENCH_sim.json -pkg repro
//
// Rows are keyed (package, benchmark name): re-running a suite updates
// its rows in place, and a legacy bare-array report is upgraded to the
// current schema on first merge.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchfile"
)

func main() {
	var (
		file = flag.String("file", "BENCH_sim.json", "report to update")
		pkg  = flag.String("pkg", "", "package label for the parsed rows (required)")
	)
	flag.Parse()
	if *pkg == "" {
		fmt.Fprintln(os.Stderr, "benchmerge: -pkg is required")
		os.Exit(2)
	}
	rows, err := benchfile.ParseGoBench(os.Stdin, *pkg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: parse: %v\n", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchmerge: no benchmark lines on stdin")
		os.Exit(1)
	}
	f, err := benchfile.Read(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
		os.Exit(1)
	}
	f.MergeMicro(rows)
	if err := f.Write(*file); err != nil {
		fmt.Fprintf(os.Stderr, "benchmerge: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d microbenchmark rows into %s\n", len(rows), *file)
}
