// Command triageworker is the cluster worker: it registers with a
// triaged coordinator (started with -cluster), long-polls for
// simulation jobs, executes them on a local pool, streams progress
// back, and uploads results into the coordinator's content-addressed
// store. Traces a job names that the worker lacks are fetched from
// the coordinator by content hash and verified on ingest.
//
// On SIGTERM/SIGINT the worker stops polling, finishes (and uploads)
// its in-flight jobs, and exits. A worker that dies instead simply
// stops heartbeating: the coordinator requeues its leased jobs on
// another worker, and nothing is lost.
//
//	triageworker -coordinator 127.0.0.1:8080 -slots 2 -corpus worker.corpus
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/netfault"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "triageworker:", err)
		os.Exit(1)
	}
}

func run() error {
	coord := flag.String("coordinator", "", "coordinator base URL or host:port (required)")
	name := flag.String("name", defaultName(), "worker display name")
	slots := flag.Int("slots", 1, "jobs executed concurrently")
	poolWorkers := flag.Int("poolworkers", runtime.GOMAXPROCS(0), "simulation pool size a figure job fans out over")
	corpusDir := flag.String("corpus", "", "local trace corpus directory; missing traces are fetched from the coordinator by hash")
	nfPlan := flag.String("netfault", "", "seeded client-side fault plan for chaos drills, e.g. seed=7,drop=0.05,dup=0.05 (applied to every coordinator RPC; see internal/netfault)")
	jitterSeed := flag.Int64("jitterseed", 0, "seed for the retry-jitter stream and register idempotency token (0: derive a unique one)")
	prof := cliutil.AddProfile(flag.CommandLine)
	wd := cliutil.AddWatchdog(flag.CommandLine)
	flag.Parse()

	if *coord == "" {
		return fmt.Errorf("-coordinator is required")
	}
	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer stopProf()

	cfg := cluster.WorkerConfig{
		Coordinator: *coord,
		Name:        *name,
		Slots:       *slots,
		PoolWorkers: *poolWorkers,
		Deadline:    *wd.Deadline,
		Stall:       *wd.Stall,
		JitterSeed:  *jitterSeed,
		Log:         os.Stderr,
	}
	var faulty *netfault.Transport
	if *nfPlan != "" {
		plan, err := netfault.ParsePlan(*nfPlan)
		if err != nil {
			return err
		}
		faulty = netfault.New(nil, plan)
		cfg.Client = &http.Client{Transport: faulty, Timeout: 5 * time.Minute}
		fmt.Fprintf(os.Stderr, "triageworker: netfault transport armed (%s)\n", *nfPlan)
	}
	if *corpusDir != "" {
		// The local corpus doubles as the process-wide trace source, so
		// fetched traces resolve when the spec validates and runs.
		if err := experiments.SetTraceCorpus(*corpusDir); err != nil {
			return err
		}
		c, err := trace.OpenCorpus(*corpusDir)
		if err != nil {
			return err
		}
		cfg.Corpus = c
	}
	w, err := cluster.NewWorker(cfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		fmt.Fprintf(os.Stderr, "triageworker: %v — finishing in-flight jobs, then exiting\n", sig)
		cancel()
	}()

	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "triageworker: done (%d job(s) uploaded)\n", w.JobsDone())
	if faulty != nil {
		fmt.Fprintf(os.Stderr, "triageworker: netfault injected: %s\n", faulty.CountersString())
	}
	return nil
}

func defaultName() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}
