// Command triagesim runs one benchmark under one prefetcher
// configuration and prints detailed statistics — the workhorse for
// exploring the simulator outside the canned experiments.
//
// Usage:
//
//	triagesim -bench mcf -pf triage-dyn [-cores 1] [-warmup N] [-measure N] [-degree D]
//
// Prefetchers: none, stride-only, nextline, ghb, markov, bo, sms,
// stms, domino, isb, misb, triage-512k, triage-1m, triage-dyn,
// triage-dynutil, triage-unlimited, and '+'-joined hybrids such as
// triage+bo. Use -list to see benchmarks.
//
// Telemetry: -sample N records a counter snapshot every N retired
// instructions and writes the series to -sampleout (JSONL, or CSV when
// the path ends in .csv); -events PATH writes the last -eventcap
// prefetch-lifecycle events as JSONL; -cpuprofile/-memprofile write
// pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/domino"
	"repro/internal/prefetch/ghb"
	"repro/internal/prefetch/hybrid"
	"repro/internal/prefetch/isb"
	"repro/internal/prefetch/markov"
	"repro/internal/prefetch/misb"
	"repro/internal/prefetch/nextline"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/stms"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

func buildPF(name string, m config.Machine, degree int) (prefetch.Prefetcher, error) {
	llcTicks := uint64(m.LLCLatency+m.LLCExtraLatency) * dram.TicksPerCycle
	mk := func(n string) (prefetch.Prefetcher, error) {
		switch n {
		case "none", "stride-only":
			return nil, nil
		case "bo":
			return bo.New(), nil
		case "sms":
			return sms.New(), nil
		case "stms":
			return stms.New(), nil
		case "domino":
			return domino.New(), nil
		case "misb":
			return misb.New(), nil
		case "isb":
			return isb.New(), nil
		case "markov":
			return markov.New(1 << 20), nil
		case "ghb":
			return ghb.New(512), nil
		case "nextline":
			return nextline.New(1), nil
		case "triage-512k":
			return core.New(core.Config{Mode: core.Static, StaticBytes: 512 << 10, LLCLatencyTicks: llcTicks}), nil
		case "triage-1m":
			return core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20, LLCLatencyTicks: llcTicks}), nil
		case "triage-dyn":
			return core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: llcTicks}), nil
		case "triage-dynutil":
			return core.New(core.Config{Mode: core.DynamicUtility, LLCLatencyTicks: llcTicks}), nil
		case "triage-unlimited":
			return core.New(core.Config{Mode: core.Unlimited, LLCLatencyTicks: llcTicks}), nil
		default:
			return nil, fmt.Errorf("unknown prefetcher %q", n)
		}
	}
	if strings.Contains(name, "+") {
		parts := strings.Split(name, "+")
		var ps []prefetch.Prefetcher
		for _, part := range parts {
			if part == "triage" {
				part = "triage-dyn"
			}
			p, err := mk(part)
			if err != nil {
				return nil, err
			}
			if p == nil {
				return nil, fmt.Errorf("cannot compose %q", part)
			}
			ps = append(ps, p)
		}
		return hybrid.New(ps...), nil
	}
	p, err := mk(name)
	if err != nil {
		return nil, err
	}
	if p != nil && degree > 1 {
		if ds, ok := p.(prefetch.DegreeSetter); ok {
			ds.SetDegree(degree)
		}
	}
	return p, nil
}

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark name")
		pfName  = flag.String("pf", "none", "prefetcher configuration")
		cores   = flag.Int("cores", 1, "number of cores (rate mode: N copies)")
		warmup  = flag.Uint64("warmup", 3_000_000, "warmup instructions per core")
		measure = flag.Uint64("measure", 2_000_000, "measured instructions per core")
		degree  = flag.Int("degree", 1, "prefetch degree")
		seed    = flag.Uint64("seed", 42, "workload seed")
		list    = flag.Bool("list", false, "list benchmarks and exit")

		deadline = flag.Duration("deadline", 0, "wall-clock deadline for the run (0 = none); an overrunning simulation aborts with a diagnostic")
		stall    = flag.Duration("stall", 0, "abort if retired instructions stop advancing for this long (0 = off)")
		check    = flag.Uint64("check", 0, "assert simulator structural invariants every N instructions (debug mode, 0 = off)")

		sample     = flag.Uint64("sample", 0, "snapshot counters every N retired instructions (0 = off)")
		sampleOut  = flag.String("sampleout", "samples.jsonl", "time-series output path (.csv selects CSV, else JSONL)")
		eventsOut  = flag.String("events", "", "write prefetch-lifecycle event trace (JSONL) to this path")
		eventCap   = flag.Int("eventcap", 1<<16, "event ring capacity (keeps the last N events)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this path")
		memProfile = flag.String("memprofile", "", "write a heap profile to this path")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	m := config.Default(*cores)
	ws := make([]trace.Reader, *cores)
	pfs := make([]prefetch.Prefetcher, *cores)
	for c := 0; c < *cores; c++ {
		ws[c] = spec.New(*seed+uint64(c)*104729, mem.Addr(c+1)<<40)
		p, err := buildPF(*pfName, m, *degree)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pfs[c] = p
	}
	var hooks *telemetry.Hooks
	if *sample > 0 || *eventsOut != "" || *deadline > 0 || *stall > 0 {
		hooks = &telemetry.Hooks{}
		if *sample > 0 {
			hooks.Sampler = telemetry.NewSampler(*sample)
		}
		if *eventsOut != "" {
			hooks.Events = telemetry.NewEventTrace(*eventCap)
		}
		if *deadline > 0 || *stall > 0 {
			hooks.Watch = telemetry.NewRunWatch()
		}
	}
	machine, err := sim.New(sim.Options{
		Machine:             m,
		Workloads:           ws,
		Prefetchers:         pfs,
		WarmupInstructions:  *warmup,
		MeasureInstructions: *measure,
		Telemetry:           hooks,
		CheckEvery:          *check,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *cpuProfile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}
	res, err := runGuarded(machine, hooks, *deadline, *stall)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *memProfile != "" {
		if err := telemetry.WriteHeapProfile(*memProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if hooks != nil {
		if err := writeTelemetry(hooks, *sampleOut, *eventsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark    : %s (x%d cores)\n", spec.Name, *cores)
	fmt.Printf("prefetcher   : %s (degree %d)\n", *pfName, *degree)
	for c, cr := range res.Cores {
		fmt.Printf("core %-2d      : IPC %.4f  (%d instr, %d cycles, %d loads, %d L2 misses, %.2f meta ways)\n",
			c, cr.IPC(), cr.Instructions, cr.Cycles, cr.Loads, cr.L2DemandMisses, cr.AvgMetadataWays)
		fmt.Printf("  avg load lat: %.1f cycles\n", cr.AvgLoadCycles)
	}
	fmt.Printf("mean IPC     : %.4f\n", res.IPC())
	fmt.Printf("accuracy     : %.1f%%\n", res.Accuracy()*100)
	fmt.Printf("prefetches   : issued %d, useful %d, redundant-dropped %d\n",
		res.PrefetchesIssued, res.PrefetchesUseful, res.PrefetchesRedundant)
	d := res.DRAM
	fmt.Printf("DRAM         : demand %d, prefetch %d, writeback %d, metadata r/w %d/%d (total %d lines, %.1f MB)\n",
		d.Transfers[dram.DemandRead], d.Transfers[dram.PrefetchRead], d.Transfers[dram.Writeback],
		d.Transfers[dram.MetadataRead], d.Transfers[dram.MetadataWrite],
		d.Total(), float64(d.Bytes())/(1<<20))
	fmt.Printf("LLC          : %d/%d hits (data ways end state reflect partition)\n", res.LLC.Hits, res.LLC.Accesses)
	fmt.Printf("meta accesses: triage-LLC %d, misb-offchip %d\n",
		res.TriageLLCMetadataAccesses, res.MISBOffChipMetadataAccesses)
	if hooks != nil && hooks.Sampler != nil {
		fmt.Printf("telemetry    : %d samples -> %s\n", len(hooks.Sampler.Samples()), *sampleOut)
	}
	if hooks != nil && hooks.Events != nil {
		fmt.Printf("events       : %d total (last %d kept) -> %s\n",
			hooks.Events.Total(), len(hooks.Events.Events()), *eventsOut)
	}
}

// runGuarded executes the simulation under an optional watchdog,
// converting a watchdog abort (or an invariant-check panic) into an
// error instead of a raw panic.
func runGuarded(machine *sim.Machine, hooks *telemetry.Hooks, deadline, stall time.Duration) (res sim.Result, err error) {
	if hooks != nil && hooks.Watch != nil {
		defer telemetry.StartWatchdog(hooks.Watch, deadline, stall)()
	}
	defer func() {
		if rec := recover(); rec != nil {
			switch v := rec.(type) {
			case *sim.Aborted:
				err = v
			case error:
				err = v
			default:
				err = fmt.Errorf("%v", v)
			}
		}
	}()
	return machine.Run(), nil
}

// writeTelemetry flushes the sampled series and event trace to disk.
func writeTelemetry(hooks *telemetry.Hooks, sampleOut, eventsOut string) error {
	if hooks.Sampler != nil {
		f, err := os.Create(sampleOut)
		if err != nil {
			return err
		}
		if strings.HasSuffix(sampleOut, ".csv") {
			err = hooks.Sampler.WriteCSV(f)
		} else {
			err = hooks.Sampler.WriteJSONL(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if hooks.Events != nil {
		f, err := os.Create(eventsOut)
		if err != nil {
			return err
		}
		err = hooks.Events.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
