// Command triagesim runs one benchmark under one prefetcher
// configuration and prints detailed statistics — the workhorse for
// exploring the simulator outside the canned experiments.
//
// Usage:
//
//	triagesim -bench mcf -pf triage-dyn [-cores 1] [-warmup N] [-measure N] [-degree D]
//
// Prefetchers: none, stride-only, nextline, ghb, markov, bo, sms,
// stms, domino, isb, misb, triage-512k, triage-1m, triage-dyn,
// triage-dynutil, triage-unlimited, and '+'-joined hybrids such as
// triage+bo. Use -list to see benchmarks.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/domino"
	"repro/internal/prefetch/ghb"
	"repro/internal/prefetch/hybrid"
	"repro/internal/prefetch/isb"
	"repro/internal/prefetch/markov"
	"repro/internal/prefetch/misb"
	"repro/internal/prefetch/nextline"
	"repro/internal/prefetch/sms"
	"repro/internal/prefetch/stms"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func buildPF(name string, m config.Machine, degree int) (prefetch.Prefetcher, error) {
	llcTicks := uint64(m.LLCLatency+m.LLCExtraLatency) * dram.TicksPerCycle
	mk := func(n string) (prefetch.Prefetcher, error) {
		switch n {
		case "none", "stride-only":
			return nil, nil
		case "bo":
			return bo.New(), nil
		case "sms":
			return sms.New(), nil
		case "stms":
			return stms.New(), nil
		case "domino":
			return domino.New(), nil
		case "misb":
			return misb.New(), nil
		case "isb":
			return isb.New(), nil
		case "markov":
			return markov.New(1 << 20), nil
		case "ghb":
			return ghb.New(512), nil
		case "nextline":
			return nextline.New(1), nil
		case "triage-512k":
			return core.New(core.Config{Mode: core.Static, StaticBytes: 512 << 10, LLCLatencyTicks: llcTicks}), nil
		case "triage-1m":
			return core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20, LLCLatencyTicks: llcTicks}), nil
		case "triage-dyn":
			return core.New(core.Config{Mode: core.Dynamic, LLCLatencyTicks: llcTicks}), nil
		case "triage-dynutil":
			return core.New(core.Config{Mode: core.DynamicUtility, LLCLatencyTicks: llcTicks}), nil
		case "triage-unlimited":
			return core.New(core.Config{Mode: core.Unlimited, LLCLatencyTicks: llcTicks}), nil
		default:
			return nil, fmt.Errorf("unknown prefetcher %q", n)
		}
	}
	if strings.Contains(name, "+") {
		parts := strings.Split(name, "+")
		var ps []prefetch.Prefetcher
		for _, part := range parts {
			if part == "triage" {
				part = "triage-dyn"
			}
			p, err := mk(part)
			if err != nil {
				return nil, err
			}
			if p == nil {
				return nil, fmt.Errorf("cannot compose %q", part)
			}
			ps = append(ps, p)
		}
		return hybrid.New(ps...), nil
	}
	p, err := mk(name)
	if err != nil {
		return nil, err
	}
	if p != nil && degree > 1 {
		if ds, ok := p.(prefetch.DegreeSetter); ok {
			ds.SetDegree(degree)
		}
	}
	return p, nil
}

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark name")
		pfName  = flag.String("pf", "none", "prefetcher configuration")
		cores   = flag.Int("cores", 1, "number of cores (rate mode: N copies)")
		warmup  = flag.Uint64("warmup", 3_000_000, "warmup instructions per core")
		measure = flag.Uint64("measure", 2_000_000, "measured instructions per core")
		degree  = flag.Int("degree", 1, "prefetch degree")
		seed    = flag.Uint64("seed", 42, "workload seed")
		list    = flag.Bool("list", false, "list benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	spec, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (use -list)\n", *bench)
		os.Exit(2)
	}
	m := config.Default(*cores)
	ws := make([]trace.Reader, *cores)
	pfs := make([]prefetch.Prefetcher, *cores)
	for c := 0; c < *cores; c++ {
		ws[c] = spec.New(*seed+uint64(c)*104729, mem.Addr(c+1)<<40)
		p, err := buildPF(*pfName, m, *degree)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pfs[c] = p
	}
	machine, err := sim.New(sim.Options{
		Machine:             m,
		Workloads:           ws,
		Prefetchers:         pfs,
		WarmupInstructions:  *warmup,
		MeasureInstructions: *measure,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := machine.Run()

	fmt.Printf("benchmark    : %s (x%d cores)\n", spec.Name, *cores)
	fmt.Printf("prefetcher   : %s (degree %d)\n", *pfName, *degree)
	for c, cr := range res.Cores {
		fmt.Printf("core %-2d      : IPC %.4f  (%d instr, %d cycles, %d loads, %d L2 misses, %.2f meta ways)\n",
			c, cr.IPC(), cr.Instructions, cr.Cycles, cr.Loads, cr.L2DemandMisses, cr.AvgMetadataWays)
		fmt.Printf("  avg load lat: %.1f cycles\n", cr.AvgLoadCycles)
	}
	fmt.Printf("mean IPC     : %.4f\n", res.IPC())
	fmt.Printf("accuracy     : %.1f%%\n", res.Accuracy()*100)
	fmt.Printf("prefetches   : issued %d, useful %d, redundant-dropped %d\n",
		res.PrefetchesIssued, res.PrefetchesUseful, res.PrefetchesRedundant)
	d := res.DRAM
	fmt.Printf("DRAM         : demand %d, prefetch %d, writeback %d, metadata r/w %d/%d (total %d lines, %.1f MB)\n",
		d.Transfers[dram.DemandRead], d.Transfers[dram.PrefetchRead], d.Transfers[dram.Writeback],
		d.Transfers[dram.MetadataRead], d.Transfers[dram.MetadataWrite],
		d.Total(), float64(d.Bytes())/(1<<20))
	fmt.Printf("LLC          : %d/%d hits (data ways end state reflect partition)\n", res.LLC.Hits, res.LLC.Accesses)
	fmt.Printf("meta accesses: triage-LLC %d, misb-offchip %d\n",
		res.TriageLLCMetadataAccesses, res.MISBOffChipMetadataAccesses)
}
