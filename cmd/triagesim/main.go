// Command triagesim runs one benchmark under one prefetcher
// configuration and prints detailed statistics — the workhorse for
// exploring the simulator outside the canned experiments.
//
// Usage:
//
//	triagesim -bench mcf -pf triage-dyn [-cores 1] [-warmup N] [-measure N] [-degree D]
//	triagesim -corpus traces/ -trace sha256:<hex> -pf triage-dyn ...  # replay a materialized trace
//
// Prefetchers: none, stride-only, nextline, ghb, markov, bo, sms,
// stms, domino, isb, misb, triage-512k, triage-1m, triage-dyn,
// triage-dynutil, triage-unlimited, and '+'-joined hybrids such as
// triage+bo. Use -list to see benchmarks.
//
// The run itself is an experiments.RunSpec — the same job spec the
// triaged service executes — so `triagesim -json PATH` writes the
// result in the service's exact encoding and the two paths can be
// compared byte for byte.
//
// Telemetry: -sample N records a counter snapshot every N retired
// instructions and writes the series to -sampleout (JSONL, or CSV when
// the path ends in .csv); -events PATH writes the last -eventcap
// prefetch-lifecycle events as JSONL; -cpuprofile/-memprofile write
// pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

func main() {
	var (
		bench   = flag.String("bench", "mcf", "benchmark name")
		pfName  = flag.String("pf", "none", "prefetcher configuration")
		cores   = flag.Int("cores", 1, "number of cores (rate mode: N copies)")
		warmup  = flag.Uint64("warmup", 3_000_000, "warmup instructions per core")
		measure = flag.Uint64("measure", 2_000_000, "measured instructions per core")
		degree  = flag.Int("degree", 1, "prefetch degree")
		seed    = flag.Uint64("seed", 42, "workload seed")
		traceID = flag.String("trace", "", "replay this corpus trace (sha256:<hex>) instead of the -bench generator; requires -corpus")
		mix     = flag.String("mix", "", "comma-separated per-core workload mix; entries are bench names or sha256:<hex> corpus traces (overrides -bench/-trace/-cores)")
		corpus  = flag.String("corpus", "", "content-addressed trace corpus directory (see tracegen -corpus)")
		list    = flag.Bool("list", false, "list benchmarks and exit")

		check = flag.Uint64("check", 0, "assert simulator structural invariants every N instructions (debug mode, 0 = off)")

		sample    = flag.Uint64("sample", 0, "snapshot counters every N retired instructions (0 = off)")
		sampleOut = flag.String("sampleout", "samples.jsonl", "time-series output path (.csv selects CSV, else JSONL)")
		eventsOut = flag.String("events", "", "write prefetch-lifecycle event trace (JSONL) to this path")
		eventCap  = flag.Int("eventcap", 1<<16, "event ring capacity (keeps the last N events)")
		jsonOut   = flag.String("json", "", "also write the result as JSON to this path (the service wire encoding; byte-comparable with triagectl output)")
	)
	wd := cliutil.AddWatchdog(flag.CommandLine)
	prof := cliutil.AddProfile(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	if *corpus != "" {
		if err := experiments.SetTraceCorpus(*corpus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	rs := experiments.RunSpec{
		Bench:       *bench,
		PF:          *pfName,
		Cores:       *cores,
		Warmup:      *warmup,
		Measure:     *measure,
		Seed:        *seed,
		Degree:      *degree,
		Trace:       *traceID,
		SampleEvery: *sample,
		CheckEvery:  *check,
	}
	if *mix != "" {
		for _, e := range strings.Split(*mix, ",") {
			if e = strings.TrimSpace(e); e != "" {
				rs.Mix = append(rs.Mix, e)
			}
		}
		// The mix supplies both the workloads and the core count; the
		// -bench default and -trace must not ride along.
		rs.Bench, rs.Trace = "", ""
	} else if *traceID != "" {
		// -bench is only a display label on a replay; unless the user set
		// it explicitly, let Normalize derive one from the content hash.
		benchSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "bench" {
				benchSet = true
			}
		})
		if !benchSet {
			rs.Bench = ""
		}
	}
	rs.Normalize()
	if err := rs.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "%v (use -list for benchmarks)\n", err)
		os.Exit(2)
	}
	var hooks *telemetry.Hooks
	if *sample > 0 || *eventsOut != "" || wd.Armed() {
		hooks = &telemetry.Hooks{}
		if *sample > 0 {
			hooks.Sampler = telemetry.NewSampler(*sample)
		}
		if *eventsOut != "" {
			hooks.Events = telemetry.NewEventTrace(*eventCap)
		}
		if wd.Armed() {
			hooks.Watch = telemetry.NewRunWatch()
		}
	}
	stopProf, err := prof.Start(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res, err := runGuarded(rs, hooks, *wd.Deadline, *wd.Stall)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	stopProf()
	if hooks != nil {
		if err := writeTelemetry(hooks, *sampleOut, *eventsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, experiments.EncodeResult(res), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark    : %s (x%d cores)\n", rs.Bench, rs.Cores)
	fmt.Printf("prefetcher   : %s (degree %d)\n", rs.PF, rs.Degree)
	for c, cr := range res.Cores {
		fmt.Printf("core %-2d      : IPC %.4f  (%d instr, %d cycles, %d loads, %d L2 misses, %.2f meta ways)\n",
			c, cr.IPC(), cr.Instructions, cr.Cycles, cr.Loads, cr.L2DemandMisses, cr.AvgMetadataWays)
		fmt.Printf("  avg load lat: %.1f cycles\n", cr.AvgLoadCycles)
	}
	fmt.Printf("mean IPC     : %.4f\n", res.IPC())
	fmt.Printf("accuracy     : %.1f%%\n", res.Accuracy()*100)
	fmt.Printf("prefetches   : issued %d, useful %d, redundant-dropped %d\n",
		res.PrefetchesIssued, res.PrefetchesUseful, res.PrefetchesRedundant)
	d := res.DRAM
	fmt.Printf("DRAM         : demand %d, prefetch %d, writeback %d, metadata r/w %d/%d (total %d lines, %.1f MB)\n",
		d.Transfers[dram.DemandRead], d.Transfers[dram.PrefetchRead], d.Transfers[dram.Writeback],
		d.Transfers[dram.MetadataRead], d.Transfers[dram.MetadataWrite],
		d.Total(), float64(d.Bytes())/(1<<20))
	fmt.Printf("LLC          : %d/%d hits (data ways end state reflect partition)\n", res.LLC.Hits, res.LLC.Accesses)
	fmt.Printf("meta accesses: triage-LLC %d, misb-offchip %d\n",
		res.TriageLLCMetadataAccesses, res.MISBOffChipMetadataAccesses)
	if hooks != nil && hooks.Sampler != nil {
		fmt.Printf("telemetry    : %d samples -> %s\n", len(hooks.Sampler.Samples()), *sampleOut)
	}
	if hooks != nil && hooks.Events != nil {
		fmt.Printf("events       : %d total (last %d kept) -> %s\n",
			hooks.Events.Total(), len(hooks.Events.Events()), *eventsOut)
	}
}

// runGuarded executes the spec under an optional watchdog, converting
// a watchdog abort (or an invariant-check panic) into an error instead
// of a raw panic.
func runGuarded(rs experiments.RunSpec, hooks *telemetry.Hooks, deadline, stall time.Duration) (res sim.Result, err error) {
	if hooks != nil && hooks.Watch != nil {
		defer telemetry.StartWatchdog(hooks.Watch, deadline, stall)()
	}
	defer func() {
		if rec := recover(); rec != nil {
			switch v := rec.(type) {
			case *sim.Aborted:
				err = v
			case error:
				err = v
			default:
				err = fmt.Errorf("%v", v)
			}
		}
	}()
	return rs.Run(hooks)
}

// writeTelemetry flushes the sampled series and event trace to disk.
func writeTelemetry(hooks *telemetry.Hooks, sampleOut, eventsOut string) error {
	if hooks.Sampler != nil {
		f, err := os.Create(sampleOut)
		if err != nil {
			return err
		}
		if strings.HasSuffix(sampleOut, ".csv") {
			err = hooks.Sampler.WriteCSV(f)
		} else {
			err = hooks.Sampler.WriteJSONL(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	if hooks.Events != nil {
		f, err := os.Create(eventsOut)
		if err != nil {
			return err
		}
		err = hooks.Events.WriteJSONL(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}
