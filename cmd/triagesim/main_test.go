package main

import (
	"testing"

	"repro/internal/config"
	"repro/internal/prefetch"
	"repro/internal/prefetch/hybrid"
)

func TestBuildPFKnownNames(t *testing.T) {
	m := config.Default(1)
	names := []string{
		"bo", "sms", "stms", "domino", "misb", "isb", "markov", "ghb",
		"nextline", "triage-512k", "triage-1m", "triage-dyn",
		"triage-dynutil", "triage-unlimited",
	}
	for _, n := range names {
		p, err := buildPF(n, m, 1)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if p == nil {
			t.Errorf("%s: nil prefetcher", n)
		}
	}
}

func TestBuildPFNone(t *testing.T) {
	m := config.Default(1)
	for _, n := range []string{"none", "stride-only"} {
		p, err := buildPF(n, m, 1)
		if err != nil || p != nil {
			t.Errorf("%s: p=%v err=%v, want nil,nil", n, p, err)
		}
	}
}

func TestBuildPFUnknown(t *testing.T) {
	m := config.Default(1)
	if _, err := buildPF("bogus", m, 1); err == nil {
		t.Error("unknown prefetcher accepted")
	}
}

func TestBuildPFHybrid(t *testing.T) {
	m := config.Default(1)
	p, err := buildPF("triage+bo", m, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, ok := p.(*hybrid.Prefetcher)
	if !ok {
		t.Fatalf("got %T, want hybrid", p)
	}
	if len(h.Parts()) != 2 {
		t.Errorf("hybrid has %d parts", len(h.Parts()))
	}
	if _, err := buildPF("bo+none", m, 1); err == nil {
		t.Error("hybrid with non-composable part accepted")
	}
}

func TestBuildPFDegree(t *testing.T) {
	m := config.Default(1)
	p, err := buildPF("bo", m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(prefetch.DegreeSetter); !ok {
		t.Error("bo does not expose DegreeSetter")
	}
}
