// Package hybrid composes prefetchers. The paper evaluates BO+Triage
// (Figs. 10, 14, 16, 18) and BO+SMS (Fig. 14): each component trains on
// the same L2 stream and their requests are merged with duplicates
// removed, first-come-first-kept.
package hybrid

import (
	"strings"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Prefetcher runs several component prefetchers side by side.
type Prefetcher struct {
	parts []prefetch.Prefetcher
	name  string
	out   []prefetch.Request // Train scratch, reused every call
}

// New composes the given prefetchers. Request order follows argument
// order, so put the more accurate component first.
func New(parts ...prefetch.Prefetcher) *Prefetcher {
	if len(parts) == 0 {
		panic("hybrid: need at least one component")
	}
	names := make([]string, len(parts))
	for i, p := range parts {
		names[i] = p.Name()
	}
	return &Prefetcher{parts: parts, name: strings.Join(names, "+")}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return p.name }

// Parts exposes the components (tests, stats).
func (p *Prefetcher) Parts() []prefetch.Prefetcher { return p.parts }

// SetDegree implements prefetch.DegreeSetter, fanning out to components
// that support it.
func (p *Prefetcher) SetDegree(d int) {
	for _, part := range p.parts {
		if ds, ok := part.(prefetch.DegreeSetter); ok {
			ds.SetDegree(d)
		}
	}
}

// Bind implements prefetch.EnvUser.
func (p *Prefetcher) Bind(env prefetch.Env) {
	for _, part := range p.parts {
		if eu, ok := part.(prefetch.EnvUser); ok {
			eu.Bind(env)
		}
	}
}

// ObserveFill implements prefetch.FillObserver.
func (p *Prefetcher) ObserveFill(line mem.Line, prefetched bool, tick uint64) {
	for _, part := range p.parts {
		if fo, ok := part.(prefetch.FillObserver); ok {
			fo.ObserveFill(line, prefetched, tick)
		}
	}
}

// PrefetchOutcome implements prefetch.OutcomeObserver.
func (p *Prefetcher) PrefetchOutcome(req prefetch.Request, missed bool) {
	for _, part := range p.parts {
		if oo, ok := part.(prefetch.OutcomeObserver); ok {
			oo.PrefetchOutcome(req, missed)
		}
	}
}

// Train implements prefetch.Prefetcher: requests from all components,
// deduplicated by line (first-come-first-kept). Request counts are a
// handful per event, so a linear scan over the merged slice replaces
// the former per-call map; the returned slice is scratch owned by the
// hybrid and consumed before the next Train.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	p.out = p.out[:0]
	for _, part := range p.parts {
	next:
		for _, r := range part.Train(ev) {
			for _, kept := range p.out {
				if kept.Line == r.Line {
					continue next
				}
			}
			p.out = append(p.out, r)
		}
	}
	if len(p.out) == 0 {
		return nil
	}
	return p.out
}
