package hybrid

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// fake is a scriptable prefetcher recording calls.
type fake struct {
	name     string
	reqs     []prefetch.Request
	degree   int
	fills    int
	outcomes int
	bound    bool
}

func (f *fake) Name() string                            { return f.name }
func (f *fake) Train(prefetch.Event) []prefetch.Request { return f.reqs }
func (f *fake) SetDegree(d int)                         { f.degree = d }
func (f *fake) ObserveFill(mem.Line, bool, uint64)      { f.fills++ }
func (f *fake) PrefetchOutcome(prefetch.Request, bool)  { f.outcomes++ }
func (f *fake) Bind(prefetch.Env)                       { f.bound = true }

func TestNameComposition(t *testing.T) {
	h := New(&fake{name: "bo"}, &fake{name: "triage"})
	if h.Name() != "bo+triage" {
		t.Errorf("Name = %q, want bo+triage", h.Name())
	}
}

func TestMergesAndDeduplicates(t *testing.T) {
	a := &fake{name: "a", reqs: []prefetch.Request{{Line: 1}, {Line: 2}}}
	b := &fake{name: "b", reqs: []prefetch.Request{{Line: 2}, {Line: 3}}}
	h := New(a, b)
	got := h.Train(prefetch.Event{})
	if len(got) != 3 {
		t.Fatalf("got %d requests, want 3 (deduplicated)", len(got))
	}
	wantOrder := []mem.Line{1, 2, 3}
	for i, r := range got {
		if r.Line != wantOrder[i] {
			t.Errorf("request %d = %d, want %d", i, r.Line, wantOrder[i])
		}
	}
}

func TestFanOut(t *testing.T) {
	a, b := &fake{name: "a"}, &fake{name: "b"}
	h := New(a, b)
	h.SetDegree(5)
	h.ObserveFill(1, false, 0)
	h.PrefetchOutcome(prefetch.Request{}, true)
	h.Bind(prefetch.NopEnv{})
	for _, f := range []*fake{a, b} {
		if f.degree != 5 || f.fills != 1 || f.outcomes != 1 || !f.bound {
			t.Errorf("%s: degree=%d fills=%d outcomes=%d bound=%v", f.name, f.degree, f.fills, f.outcomes, f.bound)
		}
	}
}

func TestEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New() did not panic")
		}
	}()
	New()
}

func TestParts(t *testing.T) {
	a, b := &fake{name: "a"}, &fake{name: "b"}
	h := New(a, b)
	if len(h.Parts()) != 2 {
		t.Errorf("Parts len = %d, want 2", len(h.Parts()))
	}
}

var (
	_ prefetch.Prefetcher      = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter    = (*Prefetcher)(nil)
	_ prefetch.FillObserver    = (*Prefetcher)(nil)
	_ prefetch.OutcomeObserver = (*Prefetcher)(nil)
	_ prefetch.EnvUser         = (*Prefetcher)(nil)
)
