// Package bo implements the Best-Offset prefetcher (Michaud, HPCA'16),
// winner of the 2nd Data Prefetching Championship and the paper's
// strongest on-chip regular-prefetching baseline.
//
// BO learns a single best offset D by scoring candidate offsets against
// a recent-requests (RR) table: offset d scores a point when a
// triggering access X finds X-d in the RR table, meaning a prefetch of
// X issued at the time X-d was filled would have been timely. The
// highest-scoring offset at the end of a learning round becomes the
// prefetch offset.
package bo

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Default parameters from the HPCA'16 paper.
const (
	scoreMax  = 31
	roundMax  = 100
	badScore  = 10
	rrEntries = 256
	maxOffset = 256
)

// Prefetcher is a Best-Offset prefetcher.
type Prefetcher struct {
	offsets []int64
	scores  []int
	current int // index of offset being tested next

	round      int
	bestOffset int64
	bestScore  int
	active     bool // prefetching on (best score above badScore)

	rr [rrEntries]mem.Line

	// pending holds RR insertions until their fill completes: an offset
	// may only score if the corresponding prefetch would have been
	// timely, which is the essence of Best-Offset learning.
	pending []pendingFill

	// own tracks BO's recently issued prefetch targets so that fills
	// requested by a co-running prefetcher (hybrid configurations) are
	// not mistaken for BO's own and credited with phantom offsets.
	own     map[mem.Line]struct{}
	ownRing [rrEntries]mem.Line
	ownHead int

	degree int

	reqs []prefetch.Request // Train scratch, reused every call
}

type pendingFill struct {
	base  mem.Line
	ready uint64
}

// New returns a BO prefetcher with the standard offset list
// (numbers <= maxOffset whose factorization uses only 2, 3, 5).
func New() *Prefetcher {
	p := &Prefetcher{degree: 1, bestOffset: 1, active: true, own: make(map[mem.Line]struct{}, rrEntries)}
	for i := int64(1); i <= maxOffset; i++ {
		if smooth235(i) {
			p.offsets = append(p.offsets, i)
		}
	}
	p.scores = make([]int, len(p.offsets))
	return p
}

// smooth235 reports whether v has no prime factor other than 2, 3, 5.
func smooth235(v int64) bool {
	for _, f := range []int64{2, 3, 5} {
		for v%f == 0 {
			v /= f
		}
	}
	return v == 1
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "bo" }

// SetDegree implements prefetch.DegreeSetter. At degree k, BO issues
// X+D, X+2D, ..., X+kD.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

// BestOffset exposes the currently learned offset (tests, reports).
func (p *Prefetcher) BestOffset() int64 { return p.bestOffset }

func rrIndex(l mem.Line) int {
	h := uint64(l) * 0x9E3779B97F4A7C15
	return int(h >> 56 & (rrEntries - 1))
}

func (p *Prefetcher) rrInsert(l mem.Line) { p.rr[rrIndex(l)] = l }

func (p *Prefetcher) rrTest(l mem.Line) bool { return p.rr[rrIndex(l)] == l }

// ObserveFill implements prefetch.FillObserver: when a line's fill
// completes at the L2 (tick = ready time), its base address enters the
// RR table. For prefetched lines the base is line-bestOffset (the
// address that triggered it); for demand fills it is the line itself.
// Insertion is deferred until the fill's ready tick so that offsets
// score only when the prefetch would have been timely.
func (p *Prefetcher) ObserveFill(line mem.Line, prefetched bool, ready uint64) {
	base := int64(line)
	if prefetched {
		if _, mine := p.own[line]; !mine {
			// Another prefetcher's fill: it carries no offset evidence.
			return
		}
		base -= p.bestOffset
	}
	if base < 0 {
		return
	}
	if len(p.pending) > 4*rrEntries {
		p.pending = p.pending[len(p.pending)-2*rrEntries:]
	}
	p.pending = append(p.pending, pendingFill{base: mem.Line(base), ready: ready})
}

// drainPending moves completed fills into the RR table.
func (p *Prefetcher) drainPending(now uint64) {
	kept := p.pending[:0]
	for _, f := range p.pending {
		if f.ready <= now {
			p.rrInsert(f.base)
		} else {
			kept = append(kept, f)
		}
	}
	p.pending = kept
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	p.drainPending(ev.Tick)
	p.learn(ev.Line)
	if !p.active {
		return nil
	}
	p.reqs = p.reqs[:0]
	for i := 1; i <= p.degree; i++ {
		target := int64(ev.Line) + p.bestOffset*int64(i)
		if target < 0 {
			break
		}
		p.reqs = append(p.reqs, prefetch.Request{Line: mem.Line(target), PC: ev.PC})
		p.recordOwn(mem.Line(target))
	}
	if len(p.reqs) == 0 {
		return nil
	}
	return p.reqs
}

// recordOwn remembers a just-issued prefetch target (bounded FIFO).
func (p *Prefetcher) recordOwn(l mem.Line) {
	if old := p.ownRing[p.ownHead]; old != 0 {
		delete(p.own, old)
	}
	p.ownRing[p.ownHead] = l
	p.ownHead = (p.ownHead + 1) % rrEntries
	p.own[l] = struct{}{}
}

// learn runs one scoring step and ends the round when every offset has
// been tested roundMax times or some offset saturates.
func (p *Prefetcher) learn(line mem.Line) {
	d := p.offsets[p.current]
	if base := int64(line) - d; base >= 0 && p.rrTest(mem.Line(base)) {
		p.scores[p.current]++
		if p.scores[p.current] >= scoreMax {
			p.finishRound()
			return
		}
	}
	p.current++
	if p.current == len(p.offsets) {
		p.current = 0
		p.round++
		if p.round >= roundMax {
			p.finishRound()
		}
	}
}

// finishRound adopts the best-scoring offset and resets learning state.
func (p *Prefetcher) finishRound() {
	best, bestScore := int64(1), -1
	for i, s := range p.scores {
		if s > bestScore {
			bestScore, best = s, p.offsets[i]
		}
	}
	p.bestOffset = best
	p.bestScore = bestScore
	// Below badScore the prefetcher turns itself off for the next round
	// (Michaud's "no prefetching" mode).
	p.active = bestScore > badScore
	for i := range p.scores {
		p.scores[i] = 0
	}
	p.current = 0
	p.round = 0
}
