package bo

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func TestOffsetListIs235Smooth(t *testing.T) {
	p := New()
	if len(p.offsets) == 0 {
		t.Fatal("empty offset list")
	}
	for _, d := range p.offsets {
		if !smooth235(d) {
			t.Errorf("offset %d is not 2-3-5 smooth", d)
		}
		if d < 1 || d > maxOffset {
			t.Errorf("offset %d out of range", d)
		}
	}
	// The DPC-2 list has 52 offsets for max 256.
	if len(p.offsets) != 52 {
		t.Errorf("offset list has %d entries, want 52", len(p.offsets))
	}
}

// drive streams a miss sequence with fills, letting BO learn.
func drive(p *Prefetcher, lines []mem.Line) []prefetch.Request {
	var last []prefetch.Request
	for _, l := range lines {
		last = p.Train(prefetch.Event{PC: 1, Line: l, Miss: true})
		p.ObserveFill(l, false, 0)
	}
	return last
}

func TestLearnsStrideOffset(t *testing.T) {
	p := New()
	var stream []mem.Line
	for i := 0; i < 20000; i++ {
		stream = append(stream, mem.Line(i*4))
	}
	drive(p, stream)
	if p.BestOffset()%4 != 0 {
		t.Errorf("learned offset %d, want a multiple of the stride 4", p.BestOffset())
	}
	// Prefetches fire from the learned offset.
	reqs := p.Train(prefetch.Event{PC: 1, Line: 4 * 30000, Miss: true})
	if len(reqs) != 1 {
		t.Fatalf("got %d requests, want 1", len(reqs))
	}
	if reqs[0].Line != mem.Line(4*30000)+mem.Line(p.BestOffset()) {
		t.Errorf("prefetch target %d, want trigger+%d", reqs[0].Line, p.BestOffset())
	}
}

func TestCannotLearnNonSmoothStride(t *testing.T) {
	// Stride 7 has no 2-3-5-smooth multiple <= 256, so BO's offset list
	// cannot express it: the prefetcher must shut itself off rather than
	// issue garbage. (This is faithful to the HPCA'16 design.)
	p := New()
	var stream []mem.Line
	for i := 0; i < 20000; i++ {
		stream = append(stream, mem.Line(i*7))
	}
	drive(p, stream)
	if p.active {
		t.Errorf("BO stayed active on stride 7 with best score %d", p.bestScore)
	}
}

func TestSequentialStream(t *testing.T) {
	p := New()
	var stream []mem.Line
	for i := 0; i < 20000; i++ {
		stream = append(stream, mem.Line(i))
	}
	drive(p, stream)
	if p.BestOffset() < 1 {
		t.Errorf("learned offset %d on sequential stream", p.BestOffset())
	}
}

func TestTurnsOffOnRandomStream(t *testing.T) {
	p := New()
	state := uint64(7)
	var stream []mem.Line
	for i := 0; i < 300000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		stream = append(stream, mem.Line(state>>20))
	}
	drive(p, stream)
	reqs := p.Train(prefetch.Event{PC: 1, Line: 123456, Miss: true})
	if p.active && len(reqs) > 0 {
		t.Logf("note: BO stayed active on random stream (score %d)", p.bestScore)
	}
	// At minimum the best score must be tiny on random data.
	if p.bestScore > 5 {
		t.Errorf("best score %d on random stream, want <= 5", p.bestScore)
	}
}

func TestDegree(t *testing.T) {
	p := New()
	p.SetDegree(4)
	var stream []mem.Line
	for i := 0; i < 20000; i++ {
		stream = append(stream, mem.Line(i))
	}
	drive(p, stream)
	reqs := p.Train(prefetch.Event{PC: 1, Line: 50000, Miss: true})
	if len(reqs) != 4 {
		t.Fatalf("degree 4: got %d requests", len(reqs))
	}
	d := p.BestOffset()
	for k, r := range reqs {
		want := mem.Line(50000 + d*int64(k+1))
		if r.Line != want {
			t.Errorf("request %d: %d, want %d", k, r.Line, want)
		}
	}
}

func TestIgnoresPlainHits(t *testing.T) {
	p := New()
	if reqs := p.Train(prefetch.Event{PC: 1, Line: 5}); reqs != nil {
		t.Error("train on non-miss produced requests")
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
	_ prefetch.FillObserver = (*Prefetcher)(nil)
)
