package nextline

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func TestPrefetchesNextLines(t *testing.T) {
	p := New(3)
	reqs := p.Train(prefetch.Event{PC: 1, Line: 100, Miss: true})
	if len(reqs) != 3 {
		t.Fatalf("got %d requests, want 3", len(reqs))
	}
	for i, want := range []mem.Line{101, 102, 103} {
		if reqs[i].Line != want {
			t.Errorf("request %d = %d, want %d", i, reqs[i].Line, want)
		}
	}
}

func TestIgnoresHits(t *testing.T) {
	p := New(1)
	if reqs := p.Train(prefetch.Event{PC: 1, Line: 5}); reqs != nil {
		t.Error("trained on a non-miss event")
	}
}

func TestDegreeClamping(t *testing.T) {
	p := New(0) // clamps to 1
	if got := len(p.Train(prefetch.Event{Line: 1, Miss: true})); got != 1 {
		t.Errorf("degree-0 constructor: %d requests, want 1", got)
	}
	p.SetDegree(-5) // ignored
	if got := len(p.Train(prefetch.Event{Line: 1, Miss: true})); got != 1 {
		t.Errorf("after SetDegree(-5): %d requests, want 1", got)
	}
	p.SetDegree(4)
	if got := len(p.Train(prefetch.Event{Line: 1, Miss: true})); got != 4 {
		t.Errorf("after SetDegree(4): %d requests, want 4", got)
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
)
