// Package nextline implements the simplest hardware prefetcher: on a
// miss for line X, fetch X+1..X+degree (Smith, 1978). It is the
// canonical lower bound for the prefetcher zoo and a sanity anchor for
// the simulator (it must help sequential streams and do nothing useful
// for pointer chases).
package nextline

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Prefetcher is a next-N-line prefetcher.
type Prefetcher struct {
	degree int
}

// New returns a next-line prefetcher with the given degree.
func New(degree int) *Prefetcher {
	if degree < 1 {
		degree = 1
	}
	return &Prefetcher{degree: degree}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "nextline" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) {
	if d >= 1 {
		p.degree = d
	}
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	reqs := make([]prefetch.Request, 0, p.degree)
	for i := 1; i <= p.degree; i++ {
		reqs = append(reqs, prefetch.Request{Line: ev.Line + mem.Line(i), PC: ev.PC})
	}
	return reqs
}
