package stride

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ev(pc uint64, line mem.Line) prefetch.Event {
	return prefetch.Event{PC: pc, Line: line, Miss: true}
}

func TestLearnsConstantStride(t *testing.T) {
	p := New(WithDegree(1))
	var got []prefetch.Request
	for i := 0; i < 6; i++ {
		got = p.Train(ev(0x100, mem.Line(i*3)))
	}
	if len(got) != 1 {
		t.Fatalf("after 6 strided accesses, got %d requests, want 1", len(got))
	}
	if got[0].Line != mem.Line(5*3+3) {
		t.Errorf("prefetch line = %d, want %d", got[0].Line, 5*3+3)
	}
}

func TestDegreeScaling(t *testing.T) {
	p := New(WithDegree(4))
	var got []prefetch.Request
	for i := 0; i < 8; i++ {
		got = p.Train(ev(0x100, mem.Line(i*2)))
	}
	if len(got) != 4 {
		t.Fatalf("degree 4: got %d requests", len(got))
	}
	for k, r := range got {
		want := mem.Line(7*2 + 2*(k+1))
		if r.Line != want {
			t.Errorf("request %d: line %d, want %d", k, r.Line, want)
		}
	}
}

func TestNoPrefetchOnIrregular(t *testing.T) {
	p := New()
	addrs := []mem.Line{10, 500, 3, 999, 42, 7777, 12, 6}
	for _, a := range addrs {
		if got := p.Train(ev(0x200, a)); len(got) != 0 {
			t.Fatalf("irregular stream produced prefetches: %v", got)
		}
	}
}

func TestPerPCIsolation(t *testing.T) {
	p := New(WithDegree(1))
	// Interleave two streams with different strides on different PCs.
	// Train returns a scratch slice valid only until the next call, so
	// snapshot each stream's requests before training the other.
	var gotA, gotB []prefetch.Request
	for i := 0; i < 8; i++ {
		gotA = append(gotA[:0], p.Train(ev(0xA, mem.Line(i)))...)
		gotB = append(gotB[:0], p.Train(ev(0xB, mem.Line(1000+i*5)))...)
	}
	if len(gotA) != 1 || gotA[0].Line != 8 {
		t.Errorf("stream A prefetch = %v, want line 8", gotA)
	}
	if len(gotB) != 1 || gotB[0].Line != 1000+7*5+5 {
		t.Errorf("stream B prefetch = %v, want line %d", gotB, 1000+7*5+5)
	}
}

func TestZeroStrideSuppressed(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		if got := p.Train(ev(0x1, mem.Line(42))); len(got) != 0 {
			t.Fatal("repeated same-line accesses must not prefetch")
		}
	}
}

func TestTableBound(t *testing.T) {
	p := New(WithTableSize(4))
	for pc := uint64(0); pc < 100; pc++ {
		p.Train(ev(pc, mem.Line(pc)))
	}
	if len(p.table) > 4 {
		t.Errorf("table grew to %d entries, bound is 4", len(p.table))
	}
}

func TestSetDegree(t *testing.T) {
	p := New()
	p.SetDegree(3)
	var got []prefetch.Request
	for i := 0; i < 8; i++ {
		got = p.Train(ev(0x1, mem.Line(i)))
	}
	if len(got) != 3 {
		t.Errorf("SetDegree(3): got %d requests", len(got))
	}
}

var _ prefetch.Prefetcher = (*Prefetcher)(nil)
var _ prefetch.DegreeSetter = (*Prefetcher)(nil)
