// Package stride implements a classic per-PC stride prefetcher
// (Baer & Chen, 1995). Table 1 attaches one to the L1D of the baseline
// machine; it is also a useful regular-pattern comparison point.
package stride

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

type entry struct {
	lastLine   mem.Line
	stride     int64
	confidence int8
	valid      bool
}

// Prefetcher is a per-PC stride predictor with 2-bit confidence.
type Prefetcher struct {
	table     map[uint64]*entry
	max       int
	degree    int
	maxStride int64
	reqs      []prefetch.Request // Train scratch, reused every call
}

// Option configures the prefetcher.
type Option func(*Prefetcher)

// WithDegree sets how many strides ahead to prefetch.
func WithDegree(d int) Option {
	return func(p *Prefetcher) { p.degree = d }
}

// WithTableSize bounds the PC table.
func WithTableSize(n int) Option {
	return func(p *Prefetcher) { p.max = n }
}

// New returns a stride prefetcher (default: 256-entry table, degree 2,
// strides confined to a 4KB page as in real hardware).
func New(opts ...Option) *Prefetcher {
	p := &Prefetcher{table: make(map[uint64]*entry), max: 256, degree: 2, maxStride: 64}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "stride" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	e, ok := p.table[ev.PC]
	if !ok {
		if len(p.table) >= p.max {
			// Cheap clock-style reclamation: drop one arbitrary entry.
			for pc := range p.table {
				delete(p.table, pc)
				break
			}
		}
		p.table[ev.PC] = &entry{lastLine: ev.Line, valid: true}
		return nil
	}
	stride := int64(ev.Line) - int64(e.lastLine)
	if stride > p.maxStride || stride < -p.maxStride {
		// Cross-page jump: hardware stride predictors train only within
		// a page. Reset rather than learn a wild stride.
		e.lastLine = ev.Line
		e.stride = 0
		e.confidence = 0
		return nil
	}
	if stride == e.stride && stride != 0 {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		if e.confidence > 0 {
			e.confidence--
		}
		if e.confidence == 0 {
			e.stride = stride
		}
	}
	e.lastLine = ev.Line
	if e.confidence < 2 || e.stride == 0 {
		return nil
	}
	p.reqs = p.reqs[:0]
	for i := 1; i <= p.degree; i++ {
		target := int64(ev.Line) + e.stride*int64(i)
		if target < 0 {
			break
		}
		p.reqs = append(p.reqs, prefetch.Request{Line: mem.Line(target), PC: ev.PC})
	}
	if len(p.reqs) == 0 {
		return nil
	}
	return p.reqs
}
