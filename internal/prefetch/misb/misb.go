// Package misb implements MISB (Wu et al., ISCA'19), the state-of-the-
// art off-chip temporal prefetcher the paper compares against. MISB
// maps PC-localized correlated addresses into a *structural address
// space*: physically arbitrary but temporally consecutive addresses get
// consecutive structural addresses, so that (1) prediction is a +1 walk
// in structural space, and (2) metadata acquires spatial locality that
// an on-chip metadata cache and a metadata prefetcher can exploit.
//
// Unlike the idealized STMS/Domino models, MISB's metadata traffic and
// latency are modeled faithfully per the paper (§4.1): every on-chip
// metadata-cache miss costs an off-chip metadata read, dirty metadata
// evictions cost writes, and the structural-space metadata prefetcher
// hides latency by fetching ahead along the stream.
package misb

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// blockEntries is how many 8-byte mappings one 64B metadata block
// holds; the metadata cache transfers whole blocks.
const blockEntries = 8

// streamGap spaces structural streams so chains can grow long without
// colliding with a neighboring stream's slots. Structural space is
// virtual (it indexes off-chip metadata), so generous spacing costs
// nothing.
const streamGap = 1 << 20

type blockKind uint8

const (
	psKind blockKind = iota // physical -> structural blocks
	spKind                  // structural -> physical blocks
)

type blockKey struct {
	kind blockKind
	id   uint64
}

// Prefetcher is the MISB model.
type Prefetcher struct {
	env prefetch.Env

	// Off-chip metadata (backed by host memory = simulated DRAM).
	// Each correlation is tracked twice (PS and SP entries) — the 2x
	// metadata redundancy the paper attributes to MISB (§2.1).
	ps     map[mem.Line]uint64
	sp     map[uint64]mem.Line
	spConf map[uint64]bool // 1-bit successor confidence per SP slot

	lastAddr map[uint64]mem.Line // training unit: PC -> last line

	nextStream uint64

	cache  *blockCache
	degree int

	// Stats
	offchipReads  uint64
	offchipWrites uint64
	cacheHits     uint64
	cacheMisses   uint64

	dbgRebinds, dbgDisplace, dbgForgiven, dbgConsistent uint64
}

// Option configures MISB.
type Option func(*Prefetcher)

// WithCacheBytes sets the on-chip metadata cache size (default 48KB,
// the "MISB_48KB" configuration of Fig. 11).
func WithCacheBytes(b int) Option {
	return func(p *Prefetcher) { p.cache = newBlockCache(b / mem.LineSize) }
}

// New returns a MISB prefetcher.
func New(opts ...Option) *Prefetcher {
	p := &Prefetcher{
		env:      prefetch.NopEnv{},
		ps:       make(map[mem.Line]uint64),
		sp:       make(map[uint64]mem.Line),
		spConf:   make(map[uint64]bool),
		lastAddr: make(map[uint64]mem.Line),
		cache:    newBlockCache(48 << 10 / mem.LineSize),
		degree:   1,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "misb" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

// Bind implements prefetch.EnvUser.
func (p *Prefetcher) Bind(env prefetch.Env) { p.env = env }

// OffChipMetadataAccesses returns total off-chip metadata transfers
// (the energy model of Fig. 13 charges these at DRAM cost).
func (p *Prefetcher) OffChipMetadataAccesses() uint64 {
	return p.offchipReads + p.offchipWrites
}

// CacheHitRate returns the on-chip metadata cache hit rate.
func (p *Prefetcher) CacheHitRate() float64 {
	t := p.cacheHits + p.cacheMisses
	if t == 0 {
		return 0
	}
	return float64(p.cacheHits) / float64(t)
}

func psBlock(l mem.Line) blockKey { return blockKey{psKind, uint64(l) / blockEntries} }
func spBlock(s uint64) blockKey   { return blockKey{spKind, s / blockEntries} }

// touch runs one metadata-cache access for an operation that began at
// tick eventTick; on a miss it pays an off-chip read and installs the
// block. It returns the read latency in ticks (0 on a hit). DRAM
// bandwidth is always charged at eventTick — chained lookups pipeline
// on the channel even though their latencies add up serially.
func (p *Prefetcher) touch(key blockKey, eventTick uint64, write bool) uint64 {
	if p.cache.access(key, write) {
		p.cacheHits++
		return 0
	}
	p.cacheMisses++
	p.offchipReads++
	done := p.env.MetadataRead(eventTick)
	if ev, dirty := p.cache.install(key, write); ev {
		if dirty {
			p.offchipWrites++
			p.env.MetadataWrite(eventTick)
		}
	}
	return done - eventTick
}

// prefetchBlock installs a block without charging latency to the
// current operation (the metadata prefetcher runs off the critical
// path) but still pays traffic.
func (p *Prefetcher) prefetchBlock(key blockKey, now uint64) {
	if p.cache.present(key) {
		return
	}
	p.offchipReads++
	p.env.MetadataRead(now)
	if ev, dirty := p.cache.install(key, false); ev && dirty {
		p.offchipWrites++
		p.env.MetadataWrite(now)
	}
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	now := ev.Tick
	reqs := p.predict(ev, now)
	p.learn(ev, now)
	return reqs
}

// predict walks the structural space from ev.Line's structural address.
func (p *Prefetcher) predict(ev prefetch.Event, now uint64) []prefetch.Request {
	s, ok := p.ps[ev.Line]
	if !ok {
		return nil
	}
	delay := p.touch(psBlock(ev.Line), now, false)
	var reqs []prefetch.Request
	for i := 1; i <= p.degree; i++ {
		line, ok := p.sp[s+uint64(i)]
		if !ok {
			break
		}
		delay += p.touch(spBlock(s+uint64(i)), now, false)
		reqs = append(reqs, prefetch.Request{Line: line, PC: ev.PC, IssueDelay: delay})
	}
	// Metadata prefetching — MISB's central mechanism for hiding
	// off-chip metadata latency: fetch the next SP block along the
	// stream, and the PS blocks of the just-predicted addresses (they
	// become triggers momentarily). Off the critical path; traffic is
	// still charged.
	p.prefetchBlock(spBlock(s+uint64(p.degree)+blockEntries), now)
	for _, req := range reqs {
		p.prefetchBlock(psBlock(req.Line), now)
	}
	return reqs
}

// learn updates the structural mapping with the new correlation.
// Unlike a table, the structural space must be *maintained*: a pair
// whose successor changed updates the SP slot under a 1-bit confidence
// (first disagreement forgiven), and a line keeps its first structural
// position for life. Cross-stream links leave stale duplicate SP
// entries behind — exactly the metadata redundancy the paper says
// structural organizations pay relative to Triage's table (§2.1).
func (p *Prefetcher) learn(ev prefetch.Event, now uint64) {
	prev, hadPrev := p.lastAddr[ev.PC]
	p.lastAddr[ev.PC] = ev.Line
	if !hadPrev || prev == ev.Line {
		return
	}
	sPrev, ok := p.ps[prev]
	if !ok {
		// Start a new structural stream at prev.
		sPrev = p.nextStream * streamGap
		p.nextStream++
		p.ps[prev] = sPrev
		p.sp[sPrev] = prev
		p.touch(psBlock(prev), now, true)
		p.touch(spBlock(sPrev), now, true)
	}
	desired := sPrev + 1
	if old, ok := p.sp[desired]; ok {
		if old == ev.Line {
			p.dbgConsistent++
			p.spConf[desired] = true
			return // already correlated
		}
		if p.spConf[desired] {
			// First disagreement is forgiven (1-bit confidence).
			p.dbgForgiven++
			p.spConf[desired] = false
			return
		}
		p.dbgDisplace++
	}
	p.dbgRebinds++
	p.sp[desired] = ev.Line
	p.spConf[desired] = true
	p.touch(spBlock(desired), now, true)
	if _, ok := p.ps[ev.Line]; !ok {
		p.ps[ev.Line] = desired
		p.touch(psBlock(ev.Line), now, true)
	}
}

// --- on-chip metadata cache: LRU over 64B blocks ---

type blockNode struct {
	key        blockKey
	dirty      bool
	prev, next *blockNode
}

type blockCache struct {
	capacity int
	nodes    map[blockKey]*blockNode
	head     *blockNode // MRU
	tail     *blockNode // LRU
}

func newBlockCache(blocks int) *blockCache {
	if blocks < 1 {
		blocks = 1
	}
	return &blockCache{capacity: blocks, nodes: make(map[blockKey]*blockNode, blocks)}
}

// access touches key; returns true on hit. write marks it dirty.
func (c *blockCache) access(key blockKey, write bool) bool {
	n, ok := c.nodes[key]
	if !ok {
		return false
	}
	if write {
		n.dirty = true
	}
	c.moveToFront(n)
	return true
}

func (c *blockCache) present(key blockKey) bool {
	_, ok := c.nodes[key]
	return ok
}

// install inserts key, evicting the LRU block if full. It returns
// whether an eviction happened and whether the victim was dirty.
func (c *blockCache) install(key blockKey, write bool) (evicted, dirty bool) {
	if n, ok := c.nodes[key]; ok {
		if write {
			n.dirty = true
		}
		c.moveToFront(n)
		return false, false
	}
	if len(c.nodes) >= c.capacity {
		victim := c.tail
		c.unlink(victim)
		delete(c.nodes, victim.key)
		evicted, dirty = true, victim.dirty
	}
	n := &blockNode{key: key, dirty: write}
	c.nodes[key] = n
	c.pushFront(n)
	return evicted, dirty
}

func (c *blockCache) moveToFront(n *blockNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *blockCache) pushFront(n *blockNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *blockCache) unlink(n *blockNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
