// Package misb implements MISB (Wu et al., ISCA'19), the state-of-the-
// art off-chip temporal prefetcher the paper compares against. MISB
// maps PC-localized correlated addresses into a *structural address
// space*: physically arbitrary but temporally consecutive addresses get
// consecutive structural addresses, so that (1) prediction is a +1 walk
// in structural space, and (2) metadata acquires spatial locality that
// an on-chip metadata cache and a metadata prefetcher can exploit.
//
// Unlike the idealized STMS/Domino models, MISB's metadata traffic and
// latency are modeled faithfully per the paper (§4.1): every on-chip
// metadata-cache miss costs an off-chip metadata read, dirty metadata
// evictions cost writes, and the structural-space metadata prefetcher
// hides latency by fetching ahead along the stream.
package misb

import (
	"repro/internal/flat"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// blockEntries is how many 8-byte mappings one 64B metadata block
// holds; the metadata cache transfers whole blocks.
const blockEntries = 8

// streamGap spaces structural streams so chains can grow long without
// colliding with a neighboring stream's slots. Structural space is
// virtual (it indexes off-chip metadata), so generous spacing costs
// nothing.
const streamGap = 1 << 20

type blockKind uint8

const (
	psKind blockKind = iota // physical -> structural blocks
	spKind                  // structural -> physical blocks
)

// blockKey identifies one metadata block; kind occupies the low bit so
// the key doubles as a flat-table key.
type blockKey uint64

func makeBlockKey(kind blockKind, id uint64) blockKey {
	return blockKey(id<<1 | uint64(kind))
}

// Prefetcher is the MISB model. The hot-path maps — PS/SP, the
// training units, and the metadata block cache — are flat
// open-addressed tables (internal/flat), so Train allocates nothing in
// steady state.
type Prefetcher struct {
	env prefetch.Env

	// Off-chip metadata (backed by host memory = simulated DRAM).
	// Each correlation is tracked twice (PS and SP entries) — the 2x
	// metadata redundancy the paper attributes to MISB (§2.1). The SP
	// map packs the physical line and its 1-bit successor confidence
	// into one value: line<<1 | conf.
	ps *flat.Map
	sp *flat.Map

	lastAddr *flat.Map // training unit: PC -> last line

	nextStream uint64

	cache  *blockCache
	degree int

	reqs []prefetch.Request // predict scratch, reused every Train

	// Stats
	offchipReads  uint64
	offchipWrites uint64
	cacheHits     uint64
	cacheMisses   uint64

	dbgRebinds, dbgDisplace, dbgForgiven, dbgConsistent uint64
}

// Option configures MISB.
type Option func(*Prefetcher)

// WithCacheBytes sets the on-chip metadata cache size (default 48KB,
// the "MISB_48KB" configuration of Fig. 11).
func WithCacheBytes(b int) Option {
	return func(p *Prefetcher) { p.cache = newBlockCache(b / mem.LineSize) }
}

// New returns a MISB prefetcher.
func New(opts ...Option) *Prefetcher {
	// PS/SP grow to one entry per correlated line — hundreds of
	// thousands over a few million trained instructions. Pre-sizing
	// them skips the long ladder of doubling rehashes on the way up
	// (measurably hot in multi-core figures); 1<<16 slots is 1MB per
	// map, far below one simulated LLC.
	p := &Prefetcher{
		env:      prefetch.NopEnv{},
		ps:       flat.NewMap(1 << 16),
		sp:       flat.NewMap(1 << 16),
		lastAddr: flat.NewMap(1 << 12),
		cache:    newBlockCache(48 << 10 / mem.LineSize),
		degree:   1,
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "misb" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

// Bind implements prefetch.EnvUser.
func (p *Prefetcher) Bind(env prefetch.Env) { p.env = env }

// OffChipMetadataAccesses returns total off-chip metadata transfers
// (the energy model of Fig. 13 charges these at DRAM cost).
func (p *Prefetcher) OffChipMetadataAccesses() uint64 {
	return p.offchipReads + p.offchipWrites
}

// CacheHitRate returns the on-chip metadata cache hit rate.
func (p *Prefetcher) CacheHitRate() float64 {
	t := p.cacheHits + p.cacheMisses
	if t == 0 {
		return 0
	}
	return float64(p.cacheHits) / float64(t)
}

func psBlock(l mem.Line) blockKey { return makeBlockKey(psKind, uint64(l)/blockEntries) }
func spBlock(s uint64) blockKey   { return makeBlockKey(spKind, s/blockEntries) }

// touch runs one metadata-cache access for an operation that began at
// tick eventTick; on a miss it pays an off-chip read and installs the
// block. It returns the read latency in ticks (0 on a hit). DRAM
// bandwidth is always charged at eventTick — chained lookups pipeline
// on the channel even though their latencies add up serially.
func (p *Prefetcher) touch(key blockKey, eventTick uint64, write bool) uint64 {
	if p.cache.access(key, write) {
		p.cacheHits++
		return 0
	}
	p.cacheMisses++
	p.offchipReads++
	done := p.env.MetadataRead(eventTick)
	if ev, dirty := p.cache.install(key, write); ev {
		if dirty {
			p.offchipWrites++
			p.env.MetadataWrite(eventTick)
		}
	}
	return done - eventTick
}

// prefetchBlock installs a block without charging latency to the
// current operation (the metadata prefetcher runs off the critical
// path) but still pays traffic.
func (p *Prefetcher) prefetchBlock(key blockKey, now uint64) {
	if p.cache.present(key) {
		return
	}
	p.offchipReads++
	p.env.MetadataRead(now)
	if ev, dirty := p.cache.install(key, false); ev && dirty {
		p.offchipWrites++
		p.env.MetadataWrite(now)
	}
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	now := ev.Tick
	reqs := p.predict(ev, now)
	p.learn(ev, now)
	return reqs
}

// predict walks the structural space from ev.Line's structural address.
// The returned slice is scratch owned by the prefetcher; callers
// consume it before the next Train.
func (p *Prefetcher) predict(ev prefetch.Event, now uint64) []prefetch.Request {
	s, ok := p.ps.Get(uint64(ev.Line))
	if !ok {
		return nil
	}
	delay := p.touch(psBlock(ev.Line), now, false)
	p.reqs = p.reqs[:0]
	for i := 1; i <= p.degree; i++ {
		packed, ok := p.sp.Get(s + uint64(i))
		if !ok {
			break
		}
		delay += p.touch(spBlock(s+uint64(i)), now, false)
		p.reqs = append(p.reqs, prefetch.Request{Line: mem.Line(packed >> 1), PC: ev.PC, IssueDelay: delay})
	}
	// Metadata prefetching — MISB's central mechanism for hiding
	// off-chip metadata latency: fetch the next SP block along the
	// stream, and the PS blocks of the just-predicted addresses (they
	// become triggers momentarily). Off the critical path; traffic is
	// still charged.
	p.prefetchBlock(spBlock(s+uint64(p.degree)+blockEntries), now)
	for _, req := range p.reqs {
		p.prefetchBlock(psBlock(req.Line), now)
	}
	if len(p.reqs) == 0 {
		return nil
	}
	return p.reqs
}

// learn updates the structural mapping with the new correlation.
// Unlike a table, the structural space must be *maintained*: a pair
// whose successor changed updates the SP slot under a 1-bit confidence
// (first disagreement forgiven), and a line keeps its first structural
// position for life. Cross-stream links leave stale duplicate SP
// entries behind — exactly the metadata redundancy the paper says
// structural organizations pay relative to Triage's table (§2.1).
func (p *Prefetcher) learn(ev prefetch.Event, now uint64) {
	prevU, hadPrev := p.lastAddr.Get(ev.PC)
	prev := mem.Line(prevU)
	p.lastAddr.Set(ev.PC, uint64(ev.Line))
	if !hadPrev || prev == ev.Line {
		return
	}
	sPrev, ok := p.ps.Get(uint64(prev))
	if !ok {
		// Start a new structural stream at prev.
		sPrev = p.nextStream * streamGap
		p.nextStream++
		p.ps.Set(uint64(prev), sPrev)
		p.sp.Set(sPrev, uint64(prev)<<1)
		p.touch(psBlock(prev), now, true)
		p.touch(spBlock(sPrev), now, true)
	}
	desired := sPrev + 1
	if packed, ok := p.sp.Get(desired); ok {
		old, conf := mem.Line(packed>>1), packed&1 == 1
		if old == ev.Line {
			p.dbgConsistent++
			p.sp.Set(desired, packed|1)
			return // already correlated
		}
		if conf {
			// First disagreement is forgiven (1-bit confidence).
			p.dbgForgiven++
			p.sp.Set(desired, packed&^1)
			return
		}
		p.dbgDisplace++
	}
	p.dbgRebinds++
	p.sp.Set(desired, uint64(ev.Line)<<1|1)
	p.touch(spBlock(desired), now, true)
	if _, ok := p.ps.Get(uint64(ev.Line)); !ok {
		p.ps.Set(uint64(ev.Line), desired)
		p.touch(psBlock(ev.Line), now, true)
	}
}

// --- on-chip metadata cache: LRU over 64B blocks ---

// blockCache is a fixed-capacity LRU of metadata blocks; the value per
// block is its dirty bit.
type blockCache struct {
	lru *flat.LRU[bool]
}

func newBlockCache(blocks int) *blockCache {
	if blocks < 1 {
		blocks = 1
	}
	return &blockCache{lru: flat.NewLRU[bool](blocks)}
}

// access touches key; returns true on hit. write marks it dirty.
func (c *blockCache) access(key blockKey, write bool) bool {
	slot, ok := c.lru.Find(uint64(key))
	if !ok {
		return false
	}
	if write {
		*c.lru.At(slot) = true
	}
	c.lru.TouchFront(slot)
	return true
}

func (c *blockCache) present(key blockKey) bool {
	_, ok := c.lru.Find(uint64(key))
	return ok
}

// install inserts key, evicting the LRU block if full. It returns
// whether an eviction happened and whether the victim was dirty.
func (c *blockCache) install(key blockKey, write bool) (evicted, dirty bool) {
	if slot, ok := c.lru.Find(uint64(key)); ok {
		if write {
			*c.lru.At(slot) = true
		}
		c.lru.TouchFront(slot)
		return false, false
	}
	_, victimDirty, ev := c.lru.Insert(uint64(key), write)
	return ev, ev && victimDirty
}
