package misb

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func miss(pc uint64, line mem.Line) prefetch.Event {
	return prefetch.Event{PC: pc, Line: line, Miss: true}
}

func feed(p *Prefetcher, pc uint64, seq []mem.Line) {
	for _, l := range seq {
		p.Train(miss(pc, l))
	}
}

func TestLearnsTemporalStream(t *testing.T) {
	p := New()
	seq := []mem.Line{100, 7, 9999, 42}
	feed(p, 1, seq)
	// Replay: each element predicts its successor.
	for i := 0; i < len(seq)-1; i++ {
		reqs := p.Train(miss(1, seq[i]))
		if len(reqs) != 1 || reqs[0].Line != seq[i+1] {
			t.Errorf("trigger %d: got %v, want %d", seq[i], reqs, seq[i+1])
		}
	}
}

func TestPCLocalization(t *testing.T) {
	p := New()
	// Interleave two PC streams; each must keep its own successors —
	// exactly what STMS cannot do.
	for i := 0; i < 4; i++ {
		p.Train(miss(0xA, mem.Line(100+i)))
		p.Train(miss(0xB, mem.Line(200+i)))
	}
	reqs := p.Train(miss(0xA, 100))
	if len(reqs) != 1 || reqs[0].Line != 101 {
		t.Errorf("PC A successor of 100 = %v, want 101", reqs)
	}
	reqs = p.Train(miss(0xB, 200))
	if len(reqs) != 1 || reqs[0].Line != 201 {
		t.Errorf("PC B successor of 200 = %v, want 201", reqs)
	}
}

func TestStructuralSpaceIsConsecutive(t *testing.T) {
	p := New()
	feed(p, 1, []mem.Line{10, 20, 30, 40})
	s10, _ := p.ps.Get(10)
	for i, l := range []mem.Line{20, 30, 40} {
		if s, _ := p.ps.Get(uint64(l)); s != s10+uint64(i+1) {
			t.Errorf("PS[%d] = %d, want %d", l, s, s10+uint64(i+1))
		}
	}
	for i := uint64(0); i < 4; i++ {
		want := []mem.Line{10, 20, 30, 40}[i]
		// SP values pack line<<1 | confidence.
		if packed, _ := p.sp.Get(s10 + i); mem.Line(packed>>1) != want {
			t.Errorf("SP[%d] = %d, want %d", s10+i, packed>>1, want)
		}
	}
}

func TestDegreeWalksStream(t *testing.T) {
	p := New()
	p.SetDegree(3)
	feed(p, 1, []mem.Line{1, 2, 3, 4, 5})
	reqs := p.Train(miss(1, 1))
	if len(reqs) != 3 {
		t.Fatalf("degree 3: got %d requests (%v)", len(reqs), reqs)
	}
	for k, want := range []mem.Line{2, 3, 4} {
		if reqs[k].Line != want {
			t.Errorf("request %d = %d, want %d", k, reqs[k].Line, want)
		}
	}
}

// countingEnv counts metadata transfers and applies a fixed latency.
type countingEnv struct {
	reads, writes int
	latency       uint64
}

func (e *countingEnv) MetadataRead(now uint64) uint64 {
	e.reads++
	return now + e.latency
}
func (e *countingEnv) MetadataWrite(uint64)  { e.writes++ }
func (e *countingEnv) LLCMetadataAccess(int) {}

func TestMetadataTrafficOnCacheMisses(t *testing.T) {
	env := &countingEnv{latency: 100}
	// Tiny metadata cache: every block access misses eventually.
	p := New(WithCacheBytes(64)) // one block
	p.Bind(env)
	for i := 0; i < 100; i++ {
		p.Train(miss(1, mem.Line(i*1000)))
	}
	if env.reads == 0 {
		t.Error("no off-chip metadata reads with a 1-block cache")
	}
	if p.OffChipMetadataAccesses() == 0 {
		t.Error("OffChipMetadataAccesses = 0")
	}
}

func TestMetadataCacheHitsAvoidTraffic(t *testing.T) {
	env := &countingEnv{latency: 100}
	p := New() // default 48KB cache
	p.Bind(env)
	// A short loop fits easily in the metadata cache.
	seq := []mem.Line{1, 2, 3, 4}
	for round := 0; round < 50; round++ {
		feed(p, 1, seq)
	}
	readsAfterWarm := env.reads
	for round := 0; round < 50; round++ {
		feed(p, 1, seq)
	}
	// A cyclic stream keeps some steady-state churn at the wrap link
	// (this is the residual metadata traffic real temporal prefetchers
	// pay), but the warm working set must mostly hit on chip: far fewer
	// than one off-chip read per training event.
	steadyReads := env.reads - readsAfterWarm
	if steadyReads > 50 { // 200 events in the second phase
		t.Errorf("steady-state off-chip reads = %d over 200 events, want < 50", steadyReads)
	}
	if p.CacheHitRate() < 0.5 {
		t.Errorf("metadata cache hit rate %.2f, want > 0.5 on a warm loop", p.CacheHitRate())
	}
}

func TestIssueDelayReflectsMetadataMisses(t *testing.T) {
	env := &countingEnv{latency: 500}
	p := New(WithCacheBytes(64))
	p.Bind(env)
	feed(p, 1, []mem.Line{10, 20})
	// Pollute the 1-block cache so the next lookup misses.
	feed(p, 2, []mem.Line{100000, 200000})
	reqs := p.Train(miss(1, 10))
	if len(reqs) != 1 {
		t.Fatalf("got %d requests", len(reqs))
	}
	if reqs[0].IssueDelay == 0 {
		t.Error("IssueDelay = 0 despite guaranteed metadata cache misses")
	}
}

func TestSuccessorRebinding(t *testing.T) {
	p := New()
	feed(p, 1, []mem.Line{10, 20})
	// One disagreeing observation is forgiven (1-bit SP confidence)...
	feed(p, 1, []mem.Line{10, 99})
	reqs := p.Train(miss(1, 10))
	if len(reqs) != 1 || reqs[0].Line != 20 {
		t.Errorf("after one disagreement, successor = %v, want still 20", reqs)
	}
	// The trigger access above re-armed (10 -> 99)? No: Train(10) set
	// lastAddr=10, so feed two more disagreeing pairs to flip the slot.
	feed(p, 1, []mem.Line{10, 99})
	reqs = p.Train(miss(1, 10))
	if len(reqs) != 1 || reqs[0].Line != 99 {
		t.Errorf("after two disagreements, successor = %v, want 99", reqs)
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
	_ prefetch.EnvUser      = (*Prefetcher)(nil)
)
