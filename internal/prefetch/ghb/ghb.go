// Package ghb implements a Global History Buffer delta-correlation
// prefetcher, GHB G/DC (Nesbit & Smith, HPCA'04 / IEEE Micro'05) — the
// paper's §2.1 example of a *weaker* correlation that fits on chip:
// instead of memorizing address pairs, it memorizes PC-localized delta
// pairs, which compresses regular and semi-regular patterns but cannot
// express arbitrary pointer chains.
//
// Mechanism: a circular global history buffer of recent miss addresses,
// with per-PC linked lists threading through it. On a miss, the last
// two deltas of the PC's stream form a key; the history is searched for
// the previous occurrence of that delta pair, and the deltas that
// followed it then are replayed from the current address.
package ghb

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

type histEntry struct {
	line mem.Line
	prev int // index of this PC's previous entry, -1 if none
	pc   uint64
	seq  uint64 // monotone sequence number to detect overwritten links
}

// Prefetcher is a GHB G/DC prefetcher.
type Prefetcher struct {
	buf    []histEntry
	head   int
	seq    uint64
	index  map[uint64]int // PC -> most recent buffer slot
	degree int
}

// New returns a GHB prefetcher with the given history size in entries
// (Nesbit & Smith use 256-512).
func New(entries int) *Prefetcher {
	if entries < 8 {
		entries = 8
	}
	return &Prefetcher{
		buf:    make([]histEntry, entries),
		index:  make(map[uint64]int),
		degree: 1,
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ghb-gdc" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) {
	if d >= 1 {
		p.degree = d
	}
}

// chain returns up to n most recent lines of pc's stream, newest first.
func (p *Prefetcher) chain(pc uint64, n int) []mem.Line {
	out := make([]mem.Line, 0, n)
	idx, ok := p.index[pc]
	if !ok {
		return out
	}
	seq := p.buf[idx].seq
	for len(out) < n {
		e := p.buf[idx]
		if e.pc != pc || e.seq > seq {
			break // link overwritten by buffer wrap
		}
		out = append(out, e.line)
		seq = e.seq
		if e.prev < 0 {
			break
		}
		// Validate the link target still belongs to this PC and is older.
		t := p.buf[e.prev]
		if t.pc != pc || t.seq >= e.seq {
			break
		}
		idx = e.prev
	}
	return out
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	reqs := p.predict(ev)
	p.record(ev)
	return reqs
}

// predict matches the current delta pair against the PC's history.
func (p *Prefetcher) predict(ev prefetch.Event) []prefetch.Request {
	hist := p.chain(ev.PC, len(p.buf))
	if len(hist) < 2 {
		return nil
	}
	// Current key: the two most recent deltas ending at ev.Line.
	d1 := int64(ev.Line) - int64(hist[0])
	d2 := int64(hist[0]) - int64(hist[1])
	if d1 == 0 || d2 == 0 {
		return nil
	}
	// Scan the stream (newest-first) for a previous (d2, d1) pair; the
	// deltas that followed it are the prediction. Prefer a match deep
	// enough (i >= degree) to supply a full prediction run; fall back to
	// shallower matches.
	match := -1
	for i := 1; i+2 < len(hist); i++ {
		e1 := int64(hist[i]) - int64(hist[i+1])
		e2 := int64(hist[i+1]) - int64(hist[i+2])
		if e1 != d1 || e2 != d2 {
			continue
		}
		match = i
		if i >= p.degree {
			break
		}
	}
	if match < 0 {
		return nil
	}
	// hist[match-1], hist[match-2], ... are the lines that followed the
	// matched position; replay their forward deltas from ev.Line.
	var reqs []prefetch.Request
	sum := int64(0)
	for k := 1; k <= p.degree && match-k >= 0; k++ {
		sum += int64(hist[match-k]) - int64(hist[match-k+1])
		target := int64(ev.Line) + sum
		if target < 0 {
			break
		}
		reqs = append(reqs, prefetch.Request{Line: mem.Line(target), PC: ev.PC})
	}
	return reqs
}

// record appends ev to the history and links it into the PC's stream.
func (p *Prefetcher) record(ev prefetch.Event) {
	p.seq++
	prev := -1
	if idx, ok := p.index[ev.PC]; ok && p.buf[idx].pc == ev.PC {
		prev = idx
	}
	p.buf[p.head] = histEntry{line: ev.Line, prev: prev, pc: ev.PC, seq: p.seq}
	p.index[ev.PC] = p.head
	p.head = (p.head + 1) % len(p.buf)
	if len(p.index) > 4*len(p.buf) {
		// Bound the PC index against pathological PC churn.
		for pc := range p.index {
			delete(p.index, pc)
			if len(p.index) <= len(p.buf) {
				break
			}
		}
	}
}
