package ghb

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func ev(pc uint64, line mem.Line) prefetch.Event {
	return prefetch.Event{PC: pc, Line: line, Miss: true}
}

func feed(p *Prefetcher, pc uint64, seq []mem.Line) []prefetch.Request {
	var last []prefetch.Request
	for _, l := range seq {
		last = p.Train(ev(pc, l))
	}
	return last
}

func TestLearnsConstantStride(t *testing.T) {
	p := New(256)
	// Stride 3: delta pairs repeat immediately.
	var reqs []prefetch.Request
	for i := 0; i < 10; i++ {
		reqs = p.Train(ev(1, mem.Line(i*3)))
	}
	if len(reqs) != 1 || reqs[0].Line != mem.Line(9*3+3) {
		t.Fatalf("got %v, want next stride element %d", reqs, 9*3+3)
	}
}

func TestLearnsRepeatingDeltaPattern(t *testing.T) {
	p := New(256)
	// Pattern of deltas +1, +3 repeating: 0 1 4 5 8 9 12 ...
	seq := []mem.Line{0, 1, 4, 5, 8, 9, 12}
	reqs := feed(p, 1, seq)
	// Last pair of deltas is (+3, +1)... after 12 the pattern gives 13.
	if len(reqs) == 0 || reqs[0].Line != 13 {
		t.Fatalf("got %v, want [13]", reqs)
	}
}

func TestPCLocalizedDeltas(t *testing.T) {
	p := New(256)
	// Two interleaved strided streams on different PCs: each must learn
	// its own stride despite global interleaving.
	var ra, rb []prefetch.Request
	for i := 0; i < 10; i++ {
		ra = p.Train(ev(0xA, mem.Line(i*2)))
		rb = p.Train(ev(0xB, mem.Line(1000+i*5)))
	}
	if len(ra) != 1 || ra[0].Line != mem.Line(9*2+2) {
		t.Errorf("stream A: got %v, want %d", ra, 9*2+2)
	}
	if len(rb) != 1 || rb[0].Line != mem.Line(1000+9*5+5) {
		t.Errorf("stream B: got %v, want %d", rb, 1000+9*5+5)
	}
}

func TestCannotLearnLargePointerChase(t *testing.T) {
	// Delta correlation CAN follow an exactly repeating sequence (the
	// deltas repeat too), but only while it fits the history buffer.
	// Real pointer chases have working sets of hundreds of thousands of
	// lines vs a 256-512 entry GHB — this is why on-chip GHBs cannot do
	// temporal prefetching at scale (paper §2.1).
	p := New(256)
	state := uint64(9)
	issued := 0
	for round := 0; round < 3; round++ {
		state = 9
		for i := 0; i < 4096; i++ { // loop 16x the history size
			state = state*6364136223846793005 + 1442695040888963407
			issued += len(p.Train(ev(1, mem.Line(state>>40))))
		}
	}
	// The sequence ages out of the buffer long before it repeats, so
	// only chance delta-pair collisions fire.
	if frac := float64(issued) / (3 * 4096); frac > 0.10 {
		t.Errorf("GHB G/DC covered %.1f%% of an out-of-buffer chase, want < 10%%", frac*100)
	}
}

func TestFollowsExactlyRepeatingLoopWithinBuffer(t *testing.T) {
	// Within the history size, an exactly repeating irregular loop IS
	// predictable via deltas (the flip side of the test above).
	p := New(512)
	state := uint64(9)
	issued := 0
	for round := 0; round < 4; round++ {
		state = 9
		for i := 0; i < 100; i++ {
			state = state*6364136223846793005 + 1442695040888963407
			issued += len(p.Train(ev(1, mem.Line(state>>40))))
		}
	}
	if issued == 0 {
		t.Error("GHB failed to follow a small exactly-repeating loop")
	}
}

func TestDegree(t *testing.T) {
	p := New(256)
	p.SetDegree(3)
	var reqs []prefetch.Request
	for i := 0; i < 12; i++ {
		reqs = p.Train(ev(1, mem.Line(i*4)))
	}
	if len(reqs) != 3 {
		t.Fatalf("degree 3: got %d requests (%v)", len(reqs), reqs)
	}
	for k, want := range []mem.Line{11*4 + 4, 11*4 + 8, 11*4 + 12} {
		if reqs[k].Line != want {
			t.Errorf("request %d = %d, want %d", k, reqs[k].Line, want)
		}
	}
}

func TestBufferWrapInvalidatesLinks(t *testing.T) {
	p := New(8) // tiny history
	// Fill with PC 1, then overwrite everything with PC 2; PC 1's chain
	// must not follow stale links into PC 2's entries.
	for i := 0; i < 8; i++ {
		p.Train(ev(1, mem.Line(i*2)))
	}
	for i := 0; i < 16; i++ {
		p.Train(ev(2, mem.Line(1000+i*7)))
	}
	got := p.chain(1, 8)
	for _, l := range got {
		if l >= 1000 {
			t.Fatalf("PC 1's chain contains PC 2's line %d", l)
		}
	}
}

func TestMinimumSize(t *testing.T) {
	p := New(1)
	if len(p.buf) < 8 {
		t.Errorf("buffer size %d, want clamped to >= 8", len(p.buf))
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
)
