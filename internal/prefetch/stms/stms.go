// Package stms implements an idealized Sampled Temporal Memory
// Streaming prefetcher (Wenisch et al., HPCA'09). STMS records the
// global miss stream in a history buffer and, on a miss, replays the
// successors of the previous occurrence of the missing address.
//
// Per the paper's methodology (§4.1), STMS is modeled as an *idealized*
// off-chip prefetcher: its metadata transactions complete instantly
// with no latency or traffic cost, so our results are an upper bound on
// real STMS performance — but its metadata traffic is still accounted
// (TrafficPerTrainEvent) so Figs. 11/12 can chart the 400-500% overhead
// a real implementation would incur.
package stms

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// Prefetcher is an idealized STMS.
type Prefetcher struct {
	history []mem.Line
	index   map[mem.Line]int // last position of each line
	degree  int
	maxHist int
	// estMeta counts the off-chip metadata transfers a real STMS would
	// make (index probe + history segment reads per lookup, index and
	// buffered history writes per update). The idealized model pays no
	// latency for them, but Fig. 11/12 chart the traffic.
	estMeta uint64
}

// New returns an idealized STMS with an effectively unbounded history
// (capped only to bound host memory).
func New() *Prefetcher {
	return &Prefetcher{
		index:   make(map[mem.Line]int),
		degree:  1,
		maxHist: 64 << 20, // 64M entries ~= a DRAM-resident GHB
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "stms" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

// HistoryLen exposes the history size (tests).
func (p *Prefetcher) HistoryLen() int { return len(p.history) }

// EstimatedMetadataTransfers returns the off-chip metadata line
// transfers a realistic implementation would have made.
func (p *Prefetcher) EstimatedMetadataTransfers() uint64 { return p.estMeta / 2 }

// Train implements prefetch.Prefetcher. STMS is trained on the miss
// stream without PC localization (the GHB makes PC localization
// infeasible, §2.1).
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	// A real STMS pays an index probe plus history-segment reads on
	// every miss, and index/history writes on every append (Wenisch et
	// al. report 200-400%+ traffic overheads).
	p.estMeta += 3 // halves: 1.5 line transfers per event
	var reqs []prefetch.Request
	if pos, ok := p.index[ev.Line]; ok {
		for i := 1; i <= p.degree; i++ {
			if pos+i >= len(p.history) {
				break
			}
			reqs = append(reqs, prefetch.Request{Line: p.history[pos+i], PC: ev.PC})
		}
	}
	if len(p.history) < p.maxHist {
		p.index[ev.Line] = len(p.history)
		p.history = append(p.history, ev.Line)
	}
	return reqs
}
