package stms

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func miss(line mem.Line) prefetch.Event {
	return prefetch.Event{PC: 1, Line: line, Miss: true}
}

func TestReplaysTemporalStream(t *testing.T) {
	p := New()
	seq := []mem.Line{10, 99, 3, 7, 42}
	for _, l := range seq {
		if reqs := p.Train(miss(l)); len(reqs) != 0 {
			t.Fatalf("first pass prefetched %v", reqs)
		}
	}
	// Second pass: each access should predict its recorded successor.
	for i := 0; i < len(seq)-1; i++ {
		reqs := p.Train(miss(seq[i]))
		if len(reqs) != 1 || reqs[0].Line != seq[i+1] {
			t.Errorf("trigger %d: got %v, want successor %d", seq[i], reqs, seq[i+1])
		}
	}
}

func TestDegreeReplaysRun(t *testing.T) {
	p := New()
	p.SetDegree(3)
	seq := []mem.Line{1, 2, 3, 4, 5}
	for _, l := range seq {
		p.Train(miss(l))
	}
	reqs := p.Train(miss(1))
	if len(reqs) != 3 {
		t.Fatalf("degree 3: got %d requests", len(reqs))
	}
	for k, want := range []mem.Line{2, 3, 4} {
		if reqs[k].Line != want {
			t.Errorf("request %d = %d, want %d", k, reqs[k].Line, want)
		}
	}
}

func TestNoPCLocalization(t *testing.T) {
	// STMS uses the global stream: interleaving two streams pollutes the
	// successors — the defining weakness vs ISB/Triage (§2.1).
	p := New()
	for i := 0; i < 4; i++ {
		p.Train(prefetch.Event{PC: 0xA, Line: mem.Line(100 + i), Miss: true})
		p.Train(prefetch.Event{PC: 0xB, Line: mem.Line(200 + i), Miss: true})
	}
	reqs := p.Train(prefetch.Event{PC: 0xA, Line: 100, Miss: true})
	if len(reqs) != 1 {
		t.Fatalf("got %d requests", len(reqs))
	}
	// The recorded global successor of 100 is 200 (stream B's access),
	// not 101.
	if reqs[0].Line != 200 {
		t.Errorf("global successor = %d, want 200 (interleaved stream)", reqs[0].Line)
	}
}

func TestIndexTracksLatestOccurrence(t *testing.T) {
	p := New()
	for _, l := range []mem.Line{1, 2, 1, 3} {
		p.Train(miss(l))
	}
	reqs := p.Train(miss(1))
	if len(reqs) != 1 || reqs[0].Line != 3 {
		t.Errorf("got %v, want successor of the latest occurrence (3)", reqs)
	}
}

func TestHistoryGrowth(t *testing.T) {
	p := New()
	for i := 0; i < 1000; i++ {
		p.Train(miss(mem.Line(i)))
	}
	if p.HistoryLen() != 1000 {
		t.Errorf("history length %d, want 1000", p.HistoryLen())
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
)
