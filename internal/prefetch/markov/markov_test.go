package markov

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func miss(line mem.Line) prefetch.Event {
	return prefetch.Event{PC: 1, Line: line, Miss: true}
}

func feed(p *Prefetcher, seq []mem.Line) {
	for _, l := range seq {
		p.Train(miss(l))
	}
}

func TestLearnsSuccessor(t *testing.T) {
	p := New(1 << 20)
	feed(p, []mem.Line{10, 20, 10, 20}) // conf builds to 2
	reqs := p.Train(miss(10))
	if len(reqs) != 1 || reqs[0].Line != 20 {
		t.Fatalf("got %v, want [20]", reqs)
	}
}

func TestTracksTwoSuccessors(t *testing.T) {
	p := New(1 << 20)
	p.SetDegree(2)
	// Alternate successors: 10 -> 20 and 10 -> 30, both reinforced.
	feed(p, []mem.Line{10, 20, 10, 30, 10, 20, 10, 30})
	reqs := p.Train(miss(10))
	if len(reqs) != 2 {
		t.Fatalf("got %d requests (%v), want both successors", len(reqs), reqs)
	}
	seen := map[mem.Line]bool{}
	for _, r := range reqs {
		seen[r.Line] = true
	}
	if !seen[20] || !seen[30] {
		t.Errorf("successors %v, want {20, 30}", reqs)
	}
}

func TestDegreeOnePicksHighestConfidence(t *testing.T) {
	p := New(1 << 20)
	// 10->20 reinforced three times, 10->30 once.
	feed(p, []mem.Line{10, 20, 10, 20, 10, 20, 10, 30})
	reqs := p.Train(miss(10))
	if len(reqs) != 1 || reqs[0].Line != 20 {
		t.Errorf("got %v, want the dominant successor 20", reqs)
	}
}

func TestNoPCLocalization(t *testing.T) {
	// The original Markov table correlates the global stream; two
	// interleaved PC streams pollute each other.
	p := New(1 << 20)
	for i := 0; i < 4; i++ {
		p.Train(prefetch.Event{PC: 0xA, Line: mem.Line(100 + i), Miss: true})
		p.Train(prefetch.Event{PC: 0xB, Line: mem.Line(200 + i), Miss: true})
	}
	reqs := p.Train(prefetch.Event{PC: 0xA, Line: 100, Miss: true})
	// Global successor of 100 is 200 (stream B), not 101.
	if len(reqs) == 1 && reqs[0].Line == 101 {
		t.Error("Markov behaved PC-localized; it must use the global stream")
	}
}

func TestCapacityScalesWithBudgetAndEntryWidth(t *testing.T) {
	small := New(64 << 10)
	big := New(1 << 20)
	if small.Capacity() >= big.Capacity() {
		t.Errorf("capacity did not scale: %d vs %d", small.Capacity(), big.Capacity())
	}
	// K=2 successors at 4B each: a 1MB Markov table holds half the
	// triggers of a 1MB Triage table (the paper's 2x redundancy claim).
	if got, want := big.Capacity(), (1<<20)/8; got != want {
		t.Errorf("1MB capacity = %d entries, want %d (8B entries)", got, want)
	}
}

func TestBoundedEviction(t *testing.T) {
	p := New(16 << 10) // 2048 entries, 1 per set
	// Fill far beyond capacity.
	for i := 0; i < 3*2048; i++ {
		feed(p, []mem.Line{mem.Line(i * 3), mem.Line(i*3 + 100000)})
	}
	n := 0
	for _, set := range p.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	if n > p.Capacity() {
		t.Errorf("table holds %d entries, capacity %d", n, p.Capacity())
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
)
