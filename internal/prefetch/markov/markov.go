// Package markov implements a bounded, on-chip Markov prefetcher
// (Joseph & Grunwald, ISCA'97) — the original table-based temporal
// prefetcher the paper's §2.1 starts from. Each table entry records up
// to K successor candidates for a trigger line with saturating
// confidence counters; prediction prefetches the highest-confidence
// successors.
//
// The paper's argument against Markov tables as an on-chip design is
// their redundancy: tracking multiple successors per trigger multiplies
// entry size by K (2-4x vs Triage's single-successor 4-byte entries).
// This implementation is the ablation comparator for that claim
// (BenchmarkAblationMarkov): at equal silicon, a Markov table holds
// K-fold fewer triggers.
package markov

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// successorsPerEntry is K, the number of successor slots per trigger
// (Joseph & Grunwald evaluate 1-4; 2 is their sweet spot).
const successorsPerEntry = 2

// entryBytes models the hardware cost of one Markov entry: a compressed
// trigger tag plus K (successor, 2-bit confidence) pairs — twice
// Triage's 4-byte entry at K=2.
const entryBytes = 4 * successorsPerEntry

type successor struct {
	line mem.Line
	conf uint8 // 2-bit saturating
}

type entry struct {
	valid bool
	tag   uint64
	succ  [successorsPerEntry]successor
	stamp uint64
}

// Prefetcher is the bounded Markov table.
type Prefetcher struct {
	sets    [][]entry
	nsets   int
	assoc   int
	clock   uint64
	last    mem.Line // global last line (no PC localization, per the original)
	hasLast bool
	degree  int
}

// New returns a Markov prefetcher with the given on-chip budget.
func New(budgetBytes int) *Prefetcher {
	const nsets = 2048
	assoc := budgetBytes / entryBytes / nsets
	if assoc < 1 {
		assoc = 1
	}
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, assoc)
	}
	return &Prefetcher{sets: sets, nsets: nsets, assoc: assoc, degree: 1}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "markov" }

// SetDegree implements prefetch.DegreeSetter: degree caps how many
// successor candidates are prefetched per trigger.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

// Capacity returns the number of trigger entries the table holds.
func (p *Prefetcher) Capacity() int { return p.nsets * p.assoc }

func (p *Prefetcher) setOf(l mem.Line) int    { return int(uint64(l) % uint64(p.nsets)) }
func (p *Prefetcher) tagOf(l mem.Line) uint64 { return uint64(l) / uint64(p.nsets) }

func (p *Prefetcher) find(l mem.Line) *entry {
	set := p.sets[p.setOf(l)]
	tag := p.tagOf(l)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Train implements prefetch.Prefetcher: it records the global-stream
// successor (the original Markov design is not PC-localized) and
// predicts from the trigger's successor list.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	p.clock++
	var reqs []prefetch.Request
	if e := p.find(ev.Line); e != nil {
		e.stamp = p.clock
		n := p.degree
		if n > successorsPerEntry {
			n = successorsPerEntry
		}
		// Highest-confidence successors first.
		order := make([]int, 0, successorsPerEntry)
		for i := 0; i < successorsPerEntry; i++ {
			order = append(order, i)
		}
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if e.succ[order[j]].conf > e.succ[order[i]].conf {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		for _, i := range order[:n] {
			if e.succ[i].conf > 0 {
				reqs = append(reqs, prefetch.Request{Line: e.succ[i].line, PC: ev.PC})
			}
		}
	}
	p.learn(ev.Line)
	return reqs
}

// learn updates the last-line's successor list with ev's line.
func (p *Prefetcher) learn(cur mem.Line) {
	prev := p.last
	had := p.hasLast
	p.last, p.hasLast = cur, true
	if !had || prev == cur {
		return
	}
	e := p.find(prev)
	if e == nil {
		e = p.allocate(prev)
	}
	e.stamp = p.clock
	// Existing candidate: bump its confidence, decay the others.
	for i := range e.succ {
		if e.succ[i].conf > 0 && e.succ[i].line == cur {
			if e.succ[i].conf < 3 {
				e.succ[i].conf++
			}
			return
		}
	}
	// Replace the weakest candidate.
	weakest := 0
	for i := range e.succ {
		if e.succ[i].conf < e.succ[weakest].conf {
			weakest = i
		}
	}
	if e.succ[weakest].conf > 0 {
		e.succ[weakest].conf--
		if e.succ[weakest].conf > 0 {
			return // not yet displaced
		}
	}
	e.succ[weakest] = successor{line: cur, conf: 1}
}

// allocate installs a new trigger entry, evicting LRU.
func (p *Prefetcher) allocate(l mem.Line) *entry {
	set := p.sets[p.setOf(l)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = entry{valid: true, tag: p.tagOf(l), stamp: p.clock}
	return &set[victim]
}
