package domino

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func miss(line mem.Line) prefetch.Event {
	return prefetch.Event{PC: 1, Line: line, Miss: true}
}

func feed(p *Prefetcher, seq []mem.Line) {
	for _, l := range seq {
		p.Train(miss(l))
	}
}

func TestPairIndexDisambiguates(t *testing.T) {
	p := New()
	// Two streams share the address 5 but with different contexts:
	// (1,5) -> 6 and (2,5) -> 7.
	feed(p, []mem.Line{1, 5, 6})
	feed(p, []mem.Line{2, 5, 7})
	// Replaying context (1,5) must predict 6, not 7 — the pair index is
	// what separates Domino from STMS.
	p.Train(miss(1))
	reqs := p.Train(miss(5))
	if len(reqs) != 1 || reqs[0].Line != 6 {
		t.Errorf("context (1,5): got %v, want 6", reqs)
	}
	p.Train(miss(2))
	reqs = p.Train(miss(5))
	if len(reqs) != 1 || reqs[0].Line != 7 {
		t.Errorf("context (2,5): got %v, want 7", reqs)
	}
}

func TestFallsBackToSingleIndex(t *testing.T) {
	p := New()
	feed(p, []mem.Line{10, 20, 30})
	// Unseen context (99, 20): the pair misses, but the single-address
	// index for 20 predicts 30.
	p.Train(miss(99))
	reqs := p.Train(miss(20))
	if len(reqs) != 1 || reqs[0].Line != 30 {
		t.Errorf("fallback: got %v, want 30", reqs)
	}
}

func TestDegree(t *testing.T) {
	p := New()
	p.SetDegree(2)
	feed(p, []mem.Line{1, 2, 3, 4})
	p.Train(miss(1))
	reqs := p.Train(miss(2))
	if len(reqs) != 2 || reqs[0].Line != 3 || reqs[1].Line != 4 {
		t.Errorf("degree 2: got %v, want [3 4]", reqs)
	}
}

func TestColdStreamSilent(t *testing.T) {
	p := New()
	for i := 0; i < 100; i++ {
		if reqs := p.Train(miss(mem.Line(i * 17))); len(reqs) != 0 {
			t.Fatalf("cold stream prefetched %v", reqs)
		}
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
)
