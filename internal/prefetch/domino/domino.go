// Package domino implements an idealized Domino temporal prefetcher
// (Bakhshalipour et al., HPCA'18). Domino improves on STMS by indexing
// the history buffer with the last *two* misses, which disambiguates
// addresses that appear in multiple temporal streams; it falls back to
// a single-miss index when the pair has not been seen.
//
// Like STMS, it is modeled idealized per the paper (§4.1): off-chip
// metadata lookups are free and instantaneous.
package domino

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

type pairKey struct {
	a, b mem.Line
}

// Prefetcher is an idealized Domino.
type Prefetcher struct {
	history   []mem.Line
	pairIndex map[pairKey]int
	oneIndex  map[mem.Line]int
	prev      mem.Line
	hasPrev   bool
	degree    int
	maxHist   int
	estMeta   uint64 // see stms.EstimatedMetadataTransfers
}

// New returns an idealized Domino prefetcher.
func New() *Prefetcher {
	return &Prefetcher{
		pairIndex: make(map[pairKey]int),
		oneIndex:  make(map[mem.Line]int),
		degree:    1,
		maxHist:   64 << 20,
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "domino" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

// EstimatedMetadataTransfers returns the off-chip metadata line
// transfers a realistic implementation would have made.
func (p *Prefetcher) EstimatedMetadataTransfers() uint64 { return p.estMeta / 2 }

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	// Domino probes two index tables (pair + single) and appends to
	// both, like STMS with an extra index.
	p.estMeta += 3 // halves: 1.5 line transfers per event
	var reqs []prefetch.Request
	pos, ok := -1, false
	if p.hasPrev {
		pos, ok = lookup(p.pairIndex, pairKey{p.prev, ev.Line})
	}
	if !ok {
		pos, ok = lookupOne(p.oneIndex, ev.Line)
	}
	if ok {
		for i := 1; i <= p.degree; i++ {
			if pos+i >= len(p.history) {
				break
			}
			reqs = append(reqs, prefetch.Request{Line: p.history[pos+i], PC: ev.PC})
		}
	}
	if len(p.history) < p.maxHist {
		at := len(p.history)
		p.oneIndex[ev.Line] = at
		if p.hasPrev {
			p.pairIndex[pairKey{p.prev, ev.Line}] = at
		}
		p.history = append(p.history, ev.Line)
	}
	p.prev, p.hasPrev = ev.Line, true
	return reqs
}

func lookup(m map[pairKey]int, k pairKey) (int, bool) {
	v, ok := m[k]
	return v, ok
}

func lookupOne(m map[mem.Line]int, k mem.Line) (int, bool) {
	v, ok := m[k]
	return v, ok
}
