// Package prefetch defines the contract between the simulator and data
// prefetchers, plus shared helpers. Concrete prefetchers live in
// subpackages (bo, sms, stride, stms, domino, misb, hybrid) and the
// paper's contribution, Triage, lives in internal/core.
//
// Per the paper's methodology (§4.1), prefetchers train on the L2
// access stream — demand misses and demand hits on prefetched lines —
// and their prefetches are inserted into the L2.
package prefetch

import "repro/internal/mem"

// Event is one L2 training event.
type Event struct {
	// PC is the load/store instruction address (PC localization).
	PC uint64
	// Line is the accessed cache line.
	Line mem.Line
	// Core is the requesting core id.
	Core int
	// Miss is true for an L2 demand miss.
	Miss bool
	// PrefetchHit is true for a demand hit on a prefetched line.
	PrefetchHit bool
	// Store marks write accesses.
	Store bool
	// Tick is the current simulator time.
	Tick uint64
}

// Request is a prefetch candidate.
type Request struct {
	// Line to prefetch.
	Line mem.Line
	// PC is the trigger PC, recorded for replacement/feedback training.
	PC uint64
	// IssueDelay is extra ticks before the request may be sent below
	// the L2 (metadata lookup latency: LLC-resident metadata for
	// Triage, off-chip metadata for MISB).
	IssueDelay uint64
}

// Prefetcher is the interface all L2 prefetchers implement.
type Prefetcher interface {
	// Name identifies the prefetcher in reports.
	Name() string
	// Train observes one training event and returns prefetch
	// candidates, at most its configured degree. The returned slice
	// may be scratch storage owned by the prefetcher, valid only
	// until the next Train call; callers must consume (or copy) it
	// before training again.
	Train(ev Event) []Request
}

// DegreeSetter is implemented by prefetchers with a tunable degree.
type DegreeSetter interface {
	SetDegree(d int)
}

// FillObserver is implemented by prefetchers that learn from fills
// completing at the L2 (Best-Offset uses this for its recent-requests
// table so that learned offsets respect prefetch timeliness).
type FillObserver interface {
	// ObserveFill is called when line arrives at the L2. prefetched
	// reports whether a prefetcher requested it.
	ObserveFill(line mem.Line, prefetched bool, tick uint64)
}

// OutcomeObserver is implemented by prefetchers that need per-request
// feedback. Triage trains its Hawkeye metadata replacement positively
// only when a prefetch actually misses in the cache (paper §3,
// "Metadata Replacement").
type OutcomeObserver interface {
	// PrefetchOutcome reports whether the issued request missed the
	// data caches (useful) or was redundant (hit L2/LLC).
	PrefetchOutcome(req Request, missedCache bool)
}

// Env gives prefetchers access to simulator resources they are
// architecturally entitled to: off-chip metadata transfers (MISB) and
// LLC metadata access counting (Triage's energy accounting).
type Env interface {
	// MetadataRead models one off-chip metadata block read starting at
	// tick now; it returns the completion tick and accounts traffic.
	MetadataRead(now uint64) uint64
	// MetadataWrite models one posted off-chip metadata block write.
	MetadataWrite(now uint64)
	// LLCMetadataAccess counts n LLC accesses made for prefetcher
	// metadata (energy model: 1 unit per access, Fig. 13).
	LLCMetadataAccess(n int)
}

// EnvUser is implemented by prefetchers that need an Env. The simulator
// calls Bind before the first Train.
type EnvUser interface {
	Bind(env Env)
}

// NopEnv is an Env that ignores everything (tests, standalone use).
type NopEnv struct{}

// MetadataRead implements Env with zero latency.
func (NopEnv) MetadataRead(now uint64) uint64 { return now }

// MetadataWrite implements Env.
func (NopEnv) MetadataWrite(uint64) {}

// LLCMetadataAccess implements Env.
func (NopEnv) LLCMetadataAccess(int) {}

// Nil is the no-prefetching baseline ("NoL2PF" in the figures).
type Nil struct{}

// Name implements Prefetcher.
func (Nil) Name() string { return "none" }

// Train implements Prefetcher.
func (Nil) Train(Event) []Request { return nil }
