// Package sms implements Spatial Memory Streaming (Somogyi et al.,
// ISCA'06): it records the spatial footprint of accesses within a
// memory region during a "generation", associates the footprint with
// the (PC, trigger-offset) that opened the generation, and on a later
// trigger replays the footprint as prefetches across a new region.
//
// SMS captures recurring spatial patterns in irregular code but — as
// the paper stresses — cannot follow pointers, which is why it trails
// Triage badly on the irregular SPEC subset (Fig. 5).
package sms

import (
	"repro/internal/flat"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// RegionLines is the spatial region size in cache lines (2KB regions).
const RegionLines = 32

type generation struct {
	pc        uint64
	trigger   int // offset of the first access
	footprint uint32
}

// Prefetcher implements SMS.
type Prefetcher struct {
	// Active generation table: region -> in-flight footprint. The
	// flat.LRU's recency order matches the previous explicit lastUse
	// clock exactly (every access promotes, every use is unique), so
	// eviction picks the same victim the old min-scan did — in O(1)
	// instead of a full table walk per new generation.
	agt    *flat.LRU[generation]
	agtCap int

	// pattern history table: (pc, trigger offset) -> footprint
	pht    map[uint64]uint32
	phtCap int

	degree int
}

// Option configures the prefetcher.
type Option func(*Prefetcher)

// WithTableSizes bounds the AGT and PHT.
func WithTableSizes(agt, pht int) Option {
	return func(p *Prefetcher) { p.agtCap, p.phtCap = agt, pht }
}

// New returns an SMS prefetcher (defaults: 64-region AGT, 16K-entry
// PHT, footprint replay capped at 8 lines).
func New(opts ...Option) *Prefetcher {
	p := &Prefetcher{
		agtCap: 64,
		pht:    make(map[uint64]uint32),
		phtCap: 16384,
		degree: 8,
	}
	for _, o := range opts {
		o(p)
	}
	p.agt = flat.NewLRU[generation](p.agtCap)
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "sms" }

// SetDegree implements prefetch.DegreeSetter: it caps the number of
// footprint lines replayed per trigger.
func (p *Prefetcher) SetDegree(d int) { p.degree = d }

func phtKey(pc uint64, trigger int) uint64 {
	return pc<<5 | uint64(trigger)
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	region := mem.RegionOf(ev.Line, RegionLines)
	off := mem.RegionOffset(ev.Line, RegionLines)
	if slot, ok := p.agt.Find(region); ok {
		p.agt.At(slot).footprint |= 1 << uint(off)
		p.agt.TouchFront(slot)
		return nil
	}
	// New generation: first access to the region is the trigger.
	p.openGeneration(region, ev.PC, off)
	// Replay a learned footprint for this (PC, trigger offset), if any.
	fp, ok := p.pht[phtKey(ev.PC, off)]
	if !ok {
		return nil
	}
	base := mem.Line(region * RegionLines)
	reqs := make([]prefetch.Request, 0, p.degree)
	// Replay nearest offsets first so a small degree keeps the most
	// correlated lines.
	for dist := 1; dist < RegionLines && len(reqs) < p.degree; dist++ {
		for _, o := range []int{off + dist, off - dist} {
			if o < 0 || o >= RegionLines || len(reqs) >= p.degree {
				continue
			}
			if fp&(1<<uint(o)) != 0 {
				reqs = append(reqs, prefetch.Request{Line: base + mem.Line(o), PC: ev.PC})
			}
		}
	}
	return reqs
}

// openGeneration starts tracking a region, retiring the LRU generation
// into the PHT when the AGT is full.
func (p *Prefetcher) openGeneration(region uint64, pc uint64, off int) {
	_, ev, evicted := p.agt.Insert(region, generation{
		pc:        pc,
		trigger:   off,
		footprint: 1 << uint(off),
	})
	if evicted {
		p.retire(ev)
	}
}

// retire moves a finished generation's footprint into the PHT.
func (p *Prefetcher) retire(g generation) {
	key := phtKey(g.pc, g.trigger)
	if _, ok := p.pht[key]; ok && g.footprint == 1<<uint(g.trigger) {
		// The generation ended before any spatial neighbor was touched
		// (e.g. it was displaced from the AGT immediately); keep the
		// learned pattern instead of degrading it to a lone trigger.
		return
	}
	if len(p.pht) >= p.phtCap {
		for k := range p.pht {
			delete(p.pht, k)
			break
		}
	}
	p.pht[key] = g.footprint
}
