package sms

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func miss(pc uint64, line mem.Line) prefetch.Event {
	return prefetch.Event{PC: pc, Line: line, Miss: true}
}

// touchRegion accesses offsets within region r (by region number).
func touchRegion(p *Prefetcher, pc uint64, region uint64, offsets []int) []prefetch.Request {
	var last []prefetch.Request
	for _, o := range offsets {
		last = p.Train(miss(pc, mem.Line(region*RegionLines)+mem.Line(o)))
	}
	return last
}

func TestReplaysLearnedFootprint(t *testing.T) {
	p := New(WithTableSizes(1, 100)) // AGT of 1 retires generations fast
	// Teach the footprint {0, 3, 9} for PC 0x42 triggered at offset 0.
	touchRegion(p, 0x42, 1, []int{0, 3, 9})
	// Opening region 2 retires region 1's generation into the PHT; then
	// opening region 3 (same trigger offset, same PC) replays it.
	touchRegion(p, 0x42, 2, []int{0})
	reqs := touchRegion(p, 0x42, 3, []int{0})
	want := map[mem.Line]bool{
		3*RegionLines + 3: true,
		3*RegionLines + 9: true,
	}
	if len(reqs) != 2 {
		t.Fatalf("replay produced %d requests, want 2: %v", len(reqs), reqs)
	}
	for _, r := range reqs {
		if !want[r.Line] {
			t.Errorf("unexpected prefetch %d", r.Line)
		}
	}
}

func TestFootprintKeyedByPCAndOffset(t *testing.T) {
	p := New(WithTableSizes(1, 100))
	touchRegion(p, 0x42, 1, []int{0, 5})
	touchRegion(p, 0x42, 2, []int{0})
	// Different PC must not replay PC 0x42's footprint.
	reqs := touchRegion(p, 0x99, 3, []int{0})
	if len(reqs) != 0 {
		t.Errorf("foreign PC replayed footprint: %v", reqs)
	}
	// Different trigger offset must not replay either.
	reqs = touchRegion(p, 0x42, 4, []int{1})
	if len(reqs) != 0 {
		t.Errorf("different trigger offset replayed footprint: %v", reqs)
	}
}

func TestDegreeCapsReplay(t *testing.T) {
	p := New(WithTableSizes(1, 100))
	p.SetDegree(2)
	touchRegion(p, 0x1, 1, []int{0, 1, 2, 3, 4, 5, 6, 7})
	touchRegion(p, 0x1, 2, []int{0})
	reqs := touchRegion(p, 0x1, 3, []int{0})
	if len(reqs) != 2 {
		t.Errorf("degree 2: replayed %d lines", len(reqs))
	}
	// Nearest offsets first.
	if len(reqs) == 2 && (reqs[0].Line != 3*RegionLines+1 || reqs[1].Line != 3*RegionLines+2) {
		t.Errorf("replay order %v, want nearest-first", reqs)
	}
}

func TestNoPrefetchWithinActiveGeneration(t *testing.T) {
	p := New()
	reqs := touchRegion(p, 0x1, 1, []int{0, 1, 2})
	if len(reqs) != 0 {
		t.Errorf("accesses within an active generation prefetched: %v", reqs)
	}
}

func TestPointerChaseDefeatsSMS(t *testing.T) {
	// A pointer chase touches each region once at a varying offset: SMS
	// learns nothing useful. This is the behavioral gap Fig. 5 shows.
	p := New()
	issued := 0
	state := uint64(99)
	for i := 0; i < 5000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		issued += len(p.Train(miss(0x7, mem.Line(state>>16))))
	}
	if issued > 250 { // <5% of triggers
		t.Errorf("SMS issued %d prefetches on a pointer chase, want almost none", issued)
	}
}

func TestPHTBound(t *testing.T) {
	p := New(WithTableSizes(1, 8))
	for r := uint64(0); r < 100; r++ {
		touchRegion(p, uint64(r), r, []int{0, 1})
	}
	if len(p.pht) > 8 {
		t.Errorf("PHT grew to %d entries, bound 8", len(p.pht))
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
)
