// Package isb implements the Irregular Stream Buffer (Jain & Lin,
// MICRO'13), the paper's direct ancestor: the first prefetcher to
// combine address correlation with PC localization, via the structural
// address space that MISB later refined.
//
// ISB's defining metadata-management idea — and its weakness, which the
// paper quantifies as 200-400% traffic overhead — is that the on-chip
// metadata cache is synchronized with the TLB: on a (simulated) TLB
// eviction, all metadata for that page is written back off chip; on a
// TLB fill, it is fetched back in. Caching is therefore page-granular
// even though metadata reuse is fine-grained, so utilization is poor.
// MISB (package misb) replaces this with fine-grained caching plus a
// metadata prefetcher; Triage (internal/core) removes the off-chip
// store entirely.
package isb

import (
	"repro/internal/flat"
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// linesPerPage is a 4KB page in 64B lines.
const linesPerPage = 64

// streamGap spaces structural streams (virtual, indexes off-chip maps).
const streamGap = 1 << 20

// tlbEntries models the 1024-entry L2 TLB of Table 1; ISB's on-chip
// metadata mirrors exactly the pages the TLB holds.
const tlbEntries = 1024

// Prefetcher is the ISB model. The per-instruction maps are flat
// open-addressed tables (internal/flat), so the training path allocates
// nothing in steady state.
type Prefetcher struct {
	env prefetch.Env

	// Off-chip metadata: PS/SP maps with per-slot confidence, as in
	// package misb (the structural space is the common substrate). The
	// SP map packs the physical line and its 1-bit confidence into one
	// value: line<<1 | conf.
	ps *flat.Map
	sp *flat.Map

	lastAddr   *flat.Map // PC -> last line
	nextStream uint64

	// TLB-synchronized metadata residency: the set of pages whose
	// metadata is currently on chip, LRU-ordered. The value is the
	// page's dirty-mapping count (write-back volume).
	tlb    *flat.LRU[int32]
	degree int

	reqs []prefetch.Request // predict scratch, reused every Train

	offchipReads  uint64
	offchipWrites uint64
}

// New returns an ISB prefetcher.
func New() *Prefetcher {
	return &Prefetcher{
		env:      prefetch.NopEnv{},
		ps:       flat.NewMap(0),
		sp:       flat.NewMap(0),
		lastAddr: flat.NewMap(0),
		tlb:      flat.NewLRU[int32](tlbEntries),
		degree:   1,
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "isb" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) {
	if d >= 1 {
		p.degree = d
	}
}

// Bind implements prefetch.EnvUser.
func (p *Prefetcher) Bind(env prefetch.Env) { p.env = env }

// OffChipMetadataAccesses returns total off-chip metadata transfers.
func (p *Prefetcher) OffChipMetadataAccesses() uint64 {
	return p.offchipReads + p.offchipWrites
}

func pageOf(l mem.Line) uint64 { return uint64(l) / linesPerPage }

// touchPage simulates the TLB access for line l: a hit keeps the page's
// metadata resident; a miss evicts the LRU page (writing back its
// metadata) and fetches the new page's metadata. Page-granular
// transfers are ISB's traffic problem: the whole page's PS mappings
// (up to 64 lines x 8B = 8 metadata blocks) move on every TLB miss.
func (p *Prefetcher) touchPage(l mem.Line, now uint64) (latency uint64) {
	page := pageOf(l)
	if slot, ok := p.tlb.Find(page); ok {
		p.tlb.TouchFront(slot)
		return 0
	}
	if _, dirtyLines, evicted := p.tlb.Insert(page, 0); evicted {
		// Write back the victim page's metadata (amortized: one block
		// per 8 dirty mappings, at least one block if any).
		blocks := (int(dirtyLines) + 7) / 8
		if blocks == 0 {
			blocks = 1
		}
		for i := 0; i < blocks; i++ {
			p.offchipWrites++
			p.env.MetadataWrite(now)
		}
	}
	// Fetch the page's metadata: ISB hides this under the TLB-miss
	// page walk, so the prefetcher itself pays no issue latency, but
	// the traffic is real. Count populated mappings on the page.
	populated := 0
	base := mem.Line(page * linesPerPage)
	for i := mem.Line(0); i < linesPerPage; i++ {
		if _, ok := p.ps.Get(uint64(base + i)); ok {
			populated++
		}
	}
	blocks := (populated + 7) / 8
	if blocks == 0 {
		blocks = 1
	}
	for i := 0; i < blocks; i++ {
		p.offchipReads++
		p.env.MetadataRead(now)
	}
	return 0
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	p.touchPage(ev.Line, ev.Tick)
	reqs := p.predict(ev)
	p.learn(ev)
	return reqs
}

// predict walks the structural space (metadata for TLB-resident pages
// is on chip, so lookups are free once the page is touched). The
// returned slice is scratch owned by the prefetcher; callers consume it
// before the next Train.
func (p *Prefetcher) predict(ev prefetch.Event) []prefetch.Request {
	s, ok := p.ps.Get(uint64(ev.Line))
	if !ok {
		return nil
	}
	p.reqs = p.reqs[:0]
	for i := 1; i <= p.degree; i++ {
		packed, ok := p.sp.Get(s + uint64(i))
		if !ok {
			break
		}
		p.reqs = append(p.reqs, prefetch.Request{Line: mem.Line(packed >> 1), PC: ev.PC})
	}
	if len(p.reqs) == 0 {
		return nil
	}
	return p.reqs
}

// learn updates the structural mapping (same redundant-SP scheme as
// MISB; see internal/prefetch/misb).
func (p *Prefetcher) learn(ev prefetch.Event) {
	prevU, had := p.lastAddr.Get(ev.PC)
	prev := mem.Line(prevU)
	p.lastAddr.Set(ev.PC, uint64(ev.Line))
	if !had || prev == ev.Line {
		return
	}
	sPrev, ok := p.ps.Get(uint64(prev))
	if !ok {
		sPrev = p.nextStream * streamGap
		p.nextStream++
		p.ps.Set(uint64(prev), sPrev)
		p.sp.Set(sPrev, uint64(prev)<<1)
		p.markDirty(prev)
	}
	desired := sPrev + 1
	if packed, ok := p.sp.Get(desired); ok {
		old, conf := mem.Line(packed>>1), packed&1 == 1
		if old == ev.Line {
			p.sp.Set(desired, packed|1)
			return
		}
		if conf {
			p.sp.Set(desired, packed&^1)
			return
		}
	}
	p.sp.Set(desired, uint64(ev.Line)<<1|1)
	if _, ok := p.ps.Get(uint64(ev.Line)); !ok {
		p.ps.Set(uint64(ev.Line), desired)
	}
	p.markDirty(ev.Line)
}

// markDirty records a metadata update against the line's page (charged
// at the page's next TLB eviction) without disturbing LRU order.
func (p *Prefetcher) markDirty(l mem.Line) {
	if slot, ok := p.tlb.Find(pageOf(l)); ok {
		*p.tlb.At(slot)++
	}
}
