// Package isb implements the Irregular Stream Buffer (Jain & Lin,
// MICRO'13), the paper's direct ancestor: the first prefetcher to
// combine address correlation with PC localization, via the structural
// address space that MISB later refined.
//
// ISB's defining metadata-management idea — and its weakness, which the
// paper quantifies as 200-400% traffic overhead — is that the on-chip
// metadata cache is synchronized with the TLB: on a (simulated) TLB
// eviction, all metadata for that page is written back off chip; on a
// TLB fill, it is fetched back in. Caching is therefore page-granular
// even though metadata reuse is fine-grained, so utilization is poor.
// MISB (package misb) replaces this with fine-grained caching plus a
// metadata prefetcher; Triage (internal/core) removes the off-chip
// store entirely.
package isb

import (
	"repro/internal/mem"
	"repro/internal/prefetch"
)

// linesPerPage is a 4KB page in 64B lines.
const linesPerPage = 64

// streamGap spaces structural streams (virtual, indexes off-chip maps).
const streamGap = 1 << 20

// tlbEntries models the 1024-entry L2 TLB of Table 1; ISB's on-chip
// metadata mirrors exactly the pages the TLB holds.
const tlbEntries = 1024

// Prefetcher is the ISB model.
type Prefetcher struct {
	env prefetch.Env

	// Off-chip metadata: PS/SP maps with per-slot confidence, as in
	// package misb (the structural space is the common substrate).
	ps     map[mem.Line]uint64
	sp     map[uint64]mem.Line
	spConf map[uint64]bool

	lastAddr   map[uint64]mem.Line
	nextStream uint64

	// TLB-synchronized metadata residency: the set of pages whose
	// metadata is currently on chip, LRU-ordered.
	tlb    map[uint64]*pageNode
	head   *pageNode
	tail   *pageNode
	degree int

	offchipReads  uint64
	offchipWrites uint64
}

type pageNode struct {
	page       uint64
	dirtyLines int // metadata updates since fetched (write-back volume)
	prev, next *pageNode
}

// New returns an ISB prefetcher.
func New() *Prefetcher {
	return &Prefetcher{
		env:      prefetch.NopEnv{},
		ps:       make(map[mem.Line]uint64),
		sp:       make(map[uint64]mem.Line),
		spConf:   make(map[uint64]bool),
		lastAddr: make(map[uint64]mem.Line),
		tlb:      make(map[uint64]*pageNode),
		degree:   1,
	}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "isb" }

// SetDegree implements prefetch.DegreeSetter.
func (p *Prefetcher) SetDegree(d int) {
	if d >= 1 {
		p.degree = d
	}
}

// Bind implements prefetch.EnvUser.
func (p *Prefetcher) Bind(env prefetch.Env) { p.env = env }

// OffChipMetadataAccesses returns total off-chip metadata transfers.
func (p *Prefetcher) OffChipMetadataAccesses() uint64 {
	return p.offchipReads + p.offchipWrites
}

func pageOf(l mem.Line) uint64 { return uint64(l) / linesPerPage }

// touchPage simulates the TLB access for line l: a hit keeps the page's
// metadata resident; a miss evicts the LRU page (writing back its
// metadata) and fetches the new page's metadata. Page-granular
// transfers are ISB's traffic problem: the whole page's PS mappings
// (up to 64 lines x 8B = 8 metadata blocks) move on every TLB miss.
func (p *Prefetcher) touchPage(l mem.Line, now uint64) (latency uint64) {
	page := pageOf(l)
	if n, ok := p.tlb[page]; ok {
		p.moveToFront(n)
		return 0
	}
	if len(p.tlb) >= tlbEntries {
		victim := p.tail
		p.unlink(victim)
		delete(p.tlb, victim.page)
		// Write back the victim page's metadata (amortized: one block
		// per 8 dirty mappings, at least one block if any).
		blocks := (victim.dirtyLines + 7) / 8
		if blocks == 0 {
			blocks = 1
		}
		for i := 0; i < blocks; i++ {
			p.offchipWrites++
			p.env.MetadataWrite(now)
		}
	}
	n := &pageNode{page: page}
	p.tlb[page] = n
	p.pushFront(n)
	// Fetch the page's metadata: ISB hides this under the TLB-miss
	// page walk, so the prefetcher itself pays no issue latency, but
	// the traffic is real. Count populated mappings on the page.
	populated := 0
	base := mem.Line(page * linesPerPage)
	for i := mem.Line(0); i < linesPerPage; i++ {
		if _, ok := p.ps[base+i]; ok {
			populated++
		}
	}
	blocks := (populated + 7) / 8
	if blocks == 0 {
		blocks = 1
	}
	for i := 0; i < blocks; i++ {
		p.offchipReads++
		p.env.MetadataRead(now)
	}
	return 0
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	p.touchPage(ev.Line, ev.Tick)
	reqs := p.predict(ev)
	p.learn(ev)
	return reqs
}

// predict walks the structural space (metadata for TLB-resident pages
// is on chip, so lookups are free once the page is touched).
func (p *Prefetcher) predict(ev prefetch.Event) []prefetch.Request {
	s, ok := p.ps[ev.Line]
	if !ok {
		return nil
	}
	var reqs []prefetch.Request
	for i := 1; i <= p.degree; i++ {
		line, ok := p.sp[s+uint64(i)]
		if !ok {
			break
		}
		reqs = append(reqs, prefetch.Request{Line: line, PC: ev.PC})
	}
	return reqs
}

// learn updates the structural mapping (same redundant-SP scheme as
// MISB; see internal/prefetch/misb).
func (p *Prefetcher) learn(ev prefetch.Event) {
	prev, had := p.lastAddr[ev.PC]
	p.lastAddr[ev.PC] = ev.Line
	if !had || prev == ev.Line {
		return
	}
	sPrev, ok := p.ps[prev]
	if !ok {
		sPrev = p.nextStream * streamGap
		p.nextStream++
		p.ps[prev] = sPrev
		p.sp[sPrev] = prev
		p.markDirty(prev)
	}
	desired := sPrev + 1
	if old, ok := p.sp[desired]; ok {
		if old == ev.Line {
			p.spConf[desired] = true
			return
		}
		if p.spConf[desired] {
			p.spConf[desired] = false
			return
		}
	}
	p.sp[desired] = ev.Line
	p.spConf[desired] = true
	if _, ok := p.ps[ev.Line]; !ok {
		p.ps[ev.Line] = desired
	}
	p.markDirty(ev.Line)
}

// markDirty records a metadata update against the line's page (charged
// at the page's next TLB eviction).
func (p *Prefetcher) markDirty(l mem.Line) {
	if n, ok := p.tlb[pageOf(l)]; ok {
		n.dirtyLines++
	}
}

// --- intrusive LRU list ---

func (p *Prefetcher) moveToFront(n *pageNode) {
	if p.head == n {
		return
	}
	p.unlink(n)
	p.pushFront(n)
}

func (p *Prefetcher) pushFront(n *pageNode) {
	n.prev = nil
	n.next = p.head
	if p.head != nil {
		p.head.prev = n
	}
	p.head = n
	if p.tail == nil {
		p.tail = n
	}
}

func (p *Prefetcher) unlink(n *pageNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		p.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		p.tail = n.prev
	}
	n.prev, n.next = nil, nil
}
