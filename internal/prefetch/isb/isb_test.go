package isb

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func miss(pc uint64, line mem.Line) prefetch.Event {
	return prefetch.Event{PC: pc, Line: line, Miss: true}
}

func feed(p *Prefetcher, pc uint64, seq []mem.Line) {
	for _, l := range seq {
		p.Train(miss(pc, l))
	}
}

func TestLearnsTemporalStream(t *testing.T) {
	p := New()
	seq := []mem.Line{100, 70000, 9, 123456}
	feed(p, 1, seq)
	for i := 0; i < len(seq)-1; i++ {
		reqs := p.Train(miss(1, seq[i]))
		if len(reqs) != 1 || reqs[0].Line != seq[i+1] {
			t.Errorf("trigger %d: got %v, want %d", seq[i], reqs, seq[i+1])
		}
	}
}

func TestPCLocalization(t *testing.T) {
	p := New()
	for i := 0; i < 4; i++ {
		p.Train(miss(0xA, mem.Line(100+i)))
		p.Train(miss(0xB, mem.Line(90000+i)))
	}
	reqs := p.Train(miss(0xA, 100))
	if len(reqs) != 1 || reqs[0].Line != 101 {
		t.Errorf("PC A successor = %v, want 101", reqs)
	}
}

// countingEnv counts metadata transfers.
type countingEnv struct{ reads, writes int }

func (e *countingEnv) MetadataRead(now uint64) uint64 { e.reads++; return now }
func (e *countingEnv) MetadataWrite(uint64)           { e.writes++ }
func (e *countingEnv) LLCMetadataAccess(int)          {}

func TestTLBSyncTrafficOnPageChurn(t *testing.T) {
	env := &countingEnv{}
	p := New()
	p.Bind(env)
	// Touch more pages than the TLB holds: every new page fetches
	// metadata, every eviction writes it back. This page-granular churn
	// is ISB's 200-400% overhead (paper §2.1).
	for i := 0; i < 3*tlbEntries; i++ {
		p.Train(miss(1, mem.Line(i*linesPerPage))) // one line per page
	}
	if env.reads == 0 || env.writes == 0 {
		t.Fatalf("no TLB-sync metadata traffic: reads=%d writes=%d", env.reads, env.writes)
	}
	if p.OffChipMetadataAccesses() == 0 {
		t.Error("OffChipMetadataAccesses = 0")
	}
}

func TestTLBResidentPagesAreFree(t *testing.T) {
	env := &countingEnv{}
	p := New()
	p.Bind(env)
	// A working set of few pages: after the first touches, no traffic.
	seq := make([]mem.Line, 0, 32)
	for i := 0; i < 32; i++ {
		seq = append(seq, mem.Line(i%4*linesPerPage+i)) // 4 pages
	}
	feed(p, 1, seq)
	warm := env.reads + env.writes
	for round := 0; round < 10; round++ {
		feed(p, 1, seq)
	}
	if got := env.reads + env.writes; got != warm {
		t.Errorf("TLB-resident metadata caused traffic: %d -> %d", warm, got)
	}
}

func TestDegreeWalk(t *testing.T) {
	p := New()
	p.SetDegree(3)
	feed(p, 1, []mem.Line{1, 2, 3, 4, 5})
	reqs := p.Train(miss(1, 1))
	if len(reqs) != 3 {
		t.Fatalf("degree 3: got %v", reqs)
	}
}

func TestConfidenceOnSuccessorChange(t *testing.T) {
	p := New()
	feed(p, 1, []mem.Line{10, 20})
	feed(p, 1, []mem.Line{10, 99}) // first disagreement forgiven
	reqs := p.Train(miss(1, 10))
	if len(reqs) != 1 || reqs[0].Line != 20 {
		t.Errorf("after one disagreement: %v, want 20", reqs)
	}
}

var (
	_ prefetch.Prefetcher   = (*Prefetcher)(nil)
	_ prefetch.DegreeSetter = (*Prefetcher)(nil)
	_ prefetch.EnvUser      = (*Prefetcher)(nil)
)
