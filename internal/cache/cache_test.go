package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/replacement"
)

func newTest(sets, ways int) *Cache {
	return New("test", sets, ways, replacement.NewLRU(sets, ways))
}

func TestMissThenHit(t *testing.T) {
	c := newTest(16, 4)
	l := mem.Line(0x1234)
	a := replacement.Access{Line: l, PC: 1}
	if r := c.Access(l, a, 0); r.Hit {
		t.Fatal("hit on empty cache")
	}
	c.Fill(l, a, false, 10)
	r := c.Access(l, a, 20)
	if !r.Hit {
		t.Fatal("miss after fill")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 accesses, 1 hit, 1 miss", st)
	}
}

func TestSetConflictEviction(t *testing.T) {
	const sets, ways = 4, 2
	c := newTest(sets, ways)
	// Three lines mapping to set 0.
	l0, l1, l2 := mem.Line(0), mem.Line(sets), mem.Line(2*sets)
	for _, l := range []mem.Line{l0, l1, l2} {
		c.Fill(l, replacement.Access{Line: l}, false, 0)
	}
	if c.Probe(l0) {
		t.Error("l0 should have been evicted (LRU)")
	}
	if !c.Probe(l1) || !c.Probe(l2) {
		t.Error("l1 and l2 should be resident")
	}
}

func TestEvictionReportsDirty(t *testing.T) {
	c := newTest(2, 1)
	l0, l1 := mem.Line(0), mem.Line(2)
	c.Fill(l0, replacement.Access{Line: l0}, true, 0)
	ev := c.Fill(l1, replacement.Access{Line: l1}, false, 0)
	if !ev.Valid || !ev.Dirty || ev.Line != l0 {
		t.Errorf("eviction = %+v, want dirty l0", ev)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestEvictionReconstructsLineAddress(t *testing.T) {
	f := func(raw uint64) bool {
		c := newTest(64, 1)
		l := mem.Line(raw >> 6)
		c.Fill(l, replacement.Access{Line: l}, false, 0)
		// Force eviction by filling a conflicting line.
		l2 := l + 64
		ev := c.Fill(l2, replacement.Access{Line: l2}, false, 0)
		return ev.Valid && ev.Line == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrefetchProvenance(t *testing.T) {
	c := newTest(16, 4)
	l := mem.Line(99)
	pf := replacement.Access{Line: l, PC: 0xCAFE, Prefetch: true}
	c.Fill(l, pf, false, 100)
	// First demand use consumes provenance and reports the trigger PC.
	r := c.Access(l, replacement.Access{Line: l, PC: 1}, 50)
	if !r.Hit || !r.WasPrefetch || r.PrefetchPC != 0xCAFE {
		t.Errorf("result = %+v, want prefetch hit with PC 0xCAFE", r)
	}
	if !r.Late {
		t.Error("demand at tick 50 against fill ready at 100 should be late")
	}
	// Second use is an ordinary hit.
	r = c.Access(l, replacement.Access{Line: l, PC: 1}, 200)
	if r.WasPrefetch {
		t.Error("prefetch provenance should be consumed by first use")
	}
	st := c.Stats()
	if st.PrefetchFills != 1 || st.PrefetchUsed != 1 || st.LatePrefetches != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUnusedPrefetchCountedOnEviction(t *testing.T) {
	c := newTest(2, 1)
	l0, l1 := mem.Line(0), mem.Line(2)
	c.Fill(l0, replacement.Access{Line: l0, Prefetch: true}, false, 0)
	ev := c.Fill(l1, replacement.Access{Line: l1}, false, 0)
	if !ev.Prefetch {
		t.Error("eviction should be flagged as unused prefetch")
	}
	if c.Stats().PrefetchUnused != 1 {
		t.Errorf("PrefetchUnused = %d, want 1", c.Stats().PrefetchUnused)
	}
}

func TestRefillDoesNotDuplicate(t *testing.T) {
	c := newTest(16, 4)
	l := mem.Line(7)
	c.Fill(l, replacement.Access{Line: l}, false, 100)
	ev := c.Fill(l, replacement.Access{Line: l}, true, 50)
	if ev.Valid {
		t.Error("refill of resident line reported an eviction")
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", c.Occupancy())
	}
	// Refill should have taken the earlier ready tick and the dirty bit.
	r := c.Access(l, replacement.Access{Line: l}, 60)
	if r.ReadyTick != 50 {
		t.Errorf("ReadyTick = %d, want 50", r.ReadyTick)
	}
}

func TestMarkDirtyCausesWriteback(t *testing.T) {
	c := newTest(2, 1)
	l := mem.Line(0)
	c.Fill(l, replacement.Access{Line: l}, false, 0)
	c.MarkDirty(l)
	ev := c.Fill(mem.Line(2), replacement.Access{Line: 2}, false, 0)
	if !ev.Dirty {
		t.Error("store-dirtied line evicted clean")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTest(16, 2)
	l := mem.Line(5)
	c.Fill(l, replacement.Access{Line: l}, true, 0)
	ev := c.Invalidate(l)
	if !ev.Valid || !ev.Dirty || ev.Line != l {
		t.Errorf("Invalidate = %+v", ev)
	}
	if c.Probe(l) {
		t.Error("line still resident after Invalidate")
	}
	if ev := c.Invalidate(l); ev.Valid {
		t.Error("second Invalidate found a line")
	}
}

func TestSetDataWaysShrinkFlushes(t *testing.T) {
	const sets, ways = 4, 4
	c := newTest(sets, ways)
	// Fill all 16 slots; make some dirty.
	for i := 0; i < sets*ways; i++ {
		l := mem.Line(i)
		c.Fill(l, replacement.Access{Line: l}, i%2 == 0, 0)
	}
	if c.Occupancy() != sets*ways {
		t.Fatalf("occupancy = %d, want %d", c.Occupancy(), sets*ways)
	}
	evs := c.SetDataWays(2)
	if len(evs) != sets*2 {
		t.Errorf("displaced %d lines, want %d", len(evs), sets*2)
	}
	dirty := 0
	for _, ev := range evs {
		if ev.Dirty {
			dirty++
		}
	}
	if dirty == 0 {
		t.Error("no dirty lines among displaced; flush not modeled")
	}
	if c.DataWays() != 2 {
		t.Errorf("DataWays = %d, want 2", c.DataWays())
	}
	if got := c.Occupancy(); got != sets*2 {
		t.Errorf("occupancy after shrink = %d, want %d", got, sets*2)
	}
	// New fills must stay within the reduced ways.
	for i := 100; i < 140; i++ {
		l := mem.Line(i)
		c.Fill(l, replacement.Access{Line: l}, false, 0)
	}
	if got := c.Occupancy(); got > sets*2 {
		t.Errorf("occupancy %d exceeds partition %d", got, sets*2)
	}
}

func TestSetDataWaysGrow(t *testing.T) {
	c := newTest(4, 4)
	c.SetDataWays(2)
	evs := c.SetDataWays(4)
	if len(evs) != 0 {
		t.Errorf("growing displaced %d lines, want 0", len(evs))
	}
	if c.DataWays() != 4 {
		t.Errorf("DataWays = %d, want 4", c.DataWays())
	}
}

func TestSetDataWaysValidation(t *testing.T) {
	c := newTest(4, 4)
	for _, n := range []int{0, 5, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetDataWays(%d) did not panic", n)
				}
			}()
			c.SetDataWays(n)
		}()
	}
}

func TestGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with non-pow2 sets did not panic")
		}
	}()
	New("bad", 3, 4, replacement.NewLRU(3, 4))
}

// Property: cache occupancy never exceeds sets*dataWays and hits are
// always for lines previously filled and not yet evicted.
func TestCacheCoherenceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const sets, ways = 8, 2
		c := newTest(sets, ways)
		resident := map[mem.Line]bool{}
		for _, op := range ops {
			l := mem.Line(op % 64)
			a := replacement.Access{Line: l, PC: uint64(op % 7)}
			r := c.Access(l, a, 0)
			if r.Hit != resident[l] {
				return false
			}
			if !r.Hit {
				ev := c.Fill(l, a, false, 0)
				resident[l] = true
				if ev.Valid {
					delete(resident, ev.Line)
				}
			}
			if c.Occupancy() > sets*ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
