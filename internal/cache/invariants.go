package cache

import "fmt"

// CheckInvariants verifies the cache's structural invariants: geometry
// is internally consistent, no set holds two valid lines with the same
// tag, and no valid line sits in a way reserved for metadata
// (SetDataWays evicts on shrink, so residency above dataWays means a
// fill escaped the partition). O(sets x ways^2); debug mode only.
func (c *Cache) CheckInvariants() error {
	if c.dataWays < 1 || c.dataWays > c.ways {
		return fmt.Errorf("cache %s: dataWays=%d of %d ways", c.name, c.dataWays, c.ways)
	}
	n := c.sets * c.ways
	if len(c.tags) != n || len(c.st) != n || len(c.live) != c.sets || len(c.validScratch) != c.ways {
		return fmt.Errorf("cache %s: state arrays inconsistent with %dx%d geometry",
			c.name, c.sets, c.ways)
	}
	for i, v := range c.allValid {
		if !v {
			return fmt.Errorf("cache %s: allValid[%d] clobbered (policy wrote through the valid view?)", c.name, i)
		}
	}
	for s := 0; s < c.sets; s++ {
		base := s * c.ways
		lv := uint16(0)
		for w := 0; w < c.ways; w++ {
			if c.tags[base+w] != invalidTag {
				lv++
			}
		}
		if lv != c.live[s] {
			return fmt.Errorf("cache %s: set %d live count %d, actual %d", c.name, s, c.live[s], lv)
		}
		for w := c.dataWays; w < c.ways; w++ {
			if c.tags[base+w] != invalidTag {
				return fmt.Errorf("cache %s: set %d way %d valid inside reserved partition (dataWays=%d)",
					c.name, s, w, c.dataWays)
			}
		}
		for w := 0; w < c.dataWays; w++ {
			t := c.tags[base+w]
			if t == invalidTag {
				continue
			}
			for v := w + 1; v < c.dataWays; v++ {
				if c.tags[base+v] == t {
					return fmt.Errorf("cache %s: set %d ways %d and %d both hold tag %#x",
						c.name, s, w, v, t)
				}
			}
		}
	}
	return nil
}
