package cache

import "fmt"

// CheckInvariants verifies the cache's structural invariants: geometry
// is internally consistent, no set holds two valid lines with the same
// tag, and no valid line sits in a way reserved for metadata
// (SetDataWays evicts on shrink, so residency above dataWays means a
// fill escaped the partition). O(sets x ways^2); debug mode only.
func (c *Cache) CheckInvariants() error {
	if c.dataWays < 1 || c.dataWays > c.ways {
		return fmt.Errorf("cache %s: dataWays=%d of %d ways", c.name, c.dataWays, c.ways)
	}
	if len(c.lines) != c.sets || len(c.validScratch) != c.ways {
		return fmt.Errorf("cache %s: %d line sets / %d scratch entries for %dx%d geometry",
			c.name, len(c.lines), len(c.validScratch), c.sets, c.ways)
	}
	for s := range c.lines {
		set := c.lines[s]
		if len(set) != c.ways {
			return fmt.Errorf("cache %s: set %d has %d ways, want %d", c.name, s, len(set), c.ways)
		}
		for w := c.dataWays; w < c.ways; w++ {
			if set[w].Valid {
				return fmt.Errorf("cache %s: set %d way %d valid inside reserved partition (dataWays=%d)",
					c.name, s, w, c.dataWays)
			}
		}
		for w := 0; w < c.dataWays; w++ {
			if !set[w].Valid {
				continue
			}
			for v := w + 1; v < c.dataWays; v++ {
				if set[v].Valid && set[v].Tag == set[w].Tag {
					return fmt.Errorf("cache %s: set %d ways %d and %d both hold tag %#x",
						c.name, s, w, v, set[w].Tag)
				}
			}
		}
	}
	return nil
}
