package cache

import (
	"strings"
	"testing"

	"repro/internal/replacement"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	return New("l2", 64, 8, replacement.NewLRU(64, 8))
}

func TestCheckInvariantsCleanCache(t *testing.T) {
	c := testCache(t)
	c.putLine(3, 0, Line{Tag: 0x10, Valid: true})
	c.putLine(3, 1, Line{Tag: 0x20, Valid: true})
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("clean cache violates invariants: %v", err)
	}
}

func TestCheckInvariantsDuplicateTag(t *testing.T) {
	c := testCache(t)
	c.putLine(5, 0, Line{Tag: 0x42, Valid: true})
	c.putLine(5, 3, Line{Tag: 0x42, Valid: true})
	err := c.CheckInvariants()
	if err == nil {
		t.Fatal("duplicate tags in one set passed the invariant check")
	}
	if !strings.Contains(err.Error(), "both hold tag") {
		t.Errorf("violation %q does not identify the duplicate", err)
	}
}

func TestCheckInvariantsPartitionLeak(t *testing.T) {
	c := New("llc", 64, 16, replacement.NewLRU(64, 16))
	c.SetDataWays(12)
	c.putLine(0, 14, Line{Tag: 0x99, Valid: true}) // fill escaped into the reserved ways
	err := c.CheckInvariants()
	if err == nil {
		t.Fatal("valid line inside the metadata partition passed the invariant check")
	}
	if !strings.Contains(err.Error(), "reserved partition") {
		t.Errorf("violation %q does not identify the partition leak", err)
	}
}
