// Package cache implements the set-associative caches of the simulated
// hierarchy. A Cache tracks residency, dirtiness, prefetch provenance,
// and fill-completion times (for prefetch timeliness), and supports
// dynamic way partitioning so that Triage can carve LLC ways out for its
// metadata store (paper §3).
//
// Timing model: the hierarchy updates cache *state* eagerly at access
// time and carries latency in "ready ticks" on each line. A demand
// access that finds an in-flight fill (ReadyTick in the future) pays the
// residual latency — this models MSHR merging and late prefetches
// without an event queue.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/replacement"
)

// Line holds the per-line state of one cache way.
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// Prefetched is set when the line was installed by a prefetcher and
	// has not yet been demanded.
	Prefetched bool
	// PrefetchPC is the trigger PC recorded at prefetch-fill time so the
	// prefetcher can be credited/debited on use or eviction.
	PrefetchPC uint64
	// ReadyTick is when the fill completes (simulator ticks); a demand
	// access before then pays the residual latency.
	ReadyTick uint64
	// Core is the id of the core that installed the line (multi-core
	// stats and per-core partitioning).
	Core int
}

// Stats aggregates cache-level event counts.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	PrefetchFills  uint64
	PrefetchUsed   uint64 // demand hit on a prefetched line
	PrefetchUnused uint64 // prefetched line evicted without use
	LatePrefetches uint64 // demand hit before the prefetch completed
	Writebacks     uint64
	Evictions      uint64
}

// Eviction describes a line displaced by a fill or invalidation.
type Eviction struct {
	Line     mem.Line
	Dirty    bool
	Valid    bool // false when no line was displaced
	Prefetch bool // line was an unused prefetch
	Core     int
}

// Cache is one level of the hierarchy.
type Cache struct {
	name     string
	sets     int
	ways     int
	dataWays int // ways usable for data; rest reserved (metadata)
	lines    [][]Line
	policy   replacement.Policy
	stats    Stats
	// validScratch backs the per-fill valid-ways view handed to the
	// policy; reused so Fill allocates nothing.
	validScratch []bool
}

// New returns a cache with the given geometry and replacement policy.
func New(name string, sets, ways int, policy replacement.Policy) *Cache {
	if !mem.IsPow2(sets) {
		panic(fmt.Sprintf("cache %s: sets=%d not a power of two", name, sets))
	}
	if ways < 1 {
		panic(fmt.Sprintf("cache %s: ways=%d", name, ways))
	}
	ls := make([][]Line, sets)
	for i := range ls {
		ls[i] = make([]Line, ways)
	}
	return &Cache{name: name, sets: sets, ways: ways, dataWays: ways, lines: ls, policy: policy, validScratch: make([]bool, ways)}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the total associativity.
func (c *Cache) Ways() int { return c.ways }

// DataWays returns the ways currently available to data.
func (c *Cache) DataWays() int { return c.dataWays }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics (used after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) set(l mem.Line) int    { return mem.SetIndex(l, c.sets) }
func (c *Cache) tag(l mem.Line) uint64 { return mem.TagOf(l, c.sets) }

// Probe reports whether l is resident without touching any state.
func (c *Cache) Probe(l mem.Line) bool {
	s, t := c.set(l), c.tag(l)
	for w := 0; w < c.dataWays; w++ {
		ln := &c.lines[s][w]
		if ln.Valid && ln.Tag == t {
			return true
		}
	}
	return false
}

// LookupResult describes the outcome of a demand or prefetch lookup.
type LookupResult struct {
	Hit bool
	// ReadyTick is the fill-completion tick of the hit line (0 if the
	// line has long been resident).
	ReadyTick uint64
	// WasPrefetch is true if this demand was the first use of a
	// prefetched line.
	WasPrefetch bool
	// PrefetchPC is the trigger PC recorded at prefetch time, valid
	// when WasPrefetch.
	PrefetchPC uint64
	// Late is true if the hit line's fill had not completed at `now`.
	Late bool
}

// Access performs a demand access for line l at tick now. On a hit the
// line is promoted (policy Hit) and prefetch provenance is consumed.
func (c *Cache) Access(l mem.Line, a replacement.Access, now uint64) LookupResult {
	c.stats.Accesses++
	s, t := c.set(l), c.tag(l)
	for w := 0; w < c.dataWays; w++ {
		ln := &c.lines[s][w]
		if !ln.Valid || ln.Tag != t {
			continue
		}
		c.stats.Hits++
		res := LookupResult{Hit: true, ReadyTick: ln.ReadyTick}
		if ln.Prefetched {
			res.WasPrefetch = true
			res.PrefetchPC = ln.PrefetchPC
			ln.Prefetched = false
			c.stats.PrefetchUsed++
			if ln.ReadyTick > now {
				res.Late = true
				c.stats.LatePrefetches++
			}
		}
		if a.Prefetch && ln.ReadyTick > now {
			res.Late = true
		}
		c.policy.Hit(s, w, a)
		return res
	}
	c.stats.Misses++
	return LookupResult{}
}

// Fill installs line l, selecting a victim among the data ways. The
// displaced line (if any) is returned so the caller can issue a
// writeback. readyTick is when the fill data arrives.
func (c *Cache) Fill(l mem.Line, a replacement.Access, dirty bool, readyTick uint64) Eviction {
	s, t := c.set(l), c.tag(l)
	// Refill of an already-resident line (e.g. a prefetch racing a
	// demand fill): just update state.
	for w := 0; w < c.dataWays; w++ {
		ln := &c.lines[s][w]
		if ln.Valid && ln.Tag == t {
			if dirty {
				ln.Dirty = true
			}
			if ln.ReadyTick > readyTick {
				ln.ReadyTick = readyTick
			}
			return Eviction{}
		}
	}
	valid := c.validScratch[:c.dataWays]
	for w := 0; w < c.dataWays; w++ {
		valid[w] = c.lines[s][w].Valid
	}
	w := c.policy.Victim(s, a, valid)
	if w < 0 || w >= c.dataWays {
		panic(fmt.Sprintf("cache %s: policy %s returned way %d of %d", c.name, c.policy.Name(), w, c.dataWays))
	}
	ev := c.evict(s, w)
	c.lines[s][w] = Line{
		Tag:        t,
		Valid:      true,
		Dirty:      dirty,
		Prefetched: a.Prefetch,
		PrefetchPC: a.PC,
		ReadyTick:  readyTick,
		Core:       a.Core,
	}
	if a.Prefetch {
		c.stats.PrefetchFills++
	}
	c.policy.Fill(s, w, a)
	return ev
}

// evict clears (s, w) and returns what was there.
func (c *Cache) evict(s, w int) Eviction {
	ln := &c.lines[s][w]
	if !ln.Valid {
		return Eviction{}
	}
	ev := Eviction{
		Line:     mem.Line(ln.Tag*uint64(c.sets) + uint64(s)),
		Dirty:    ln.Dirty,
		Valid:    true,
		Prefetch: ln.Prefetched,
		Core:     ln.Core,
	}
	c.stats.Evictions++
	if ln.Dirty {
		c.stats.Writebacks++
	}
	if ln.Prefetched {
		c.stats.PrefetchUnused++
	}
	ln.Valid = false
	return ev
}

// MarkDirty sets the dirty bit of a resident line (store hit).
func (c *Cache) MarkDirty(l mem.Line) {
	s, t := c.set(l), c.tag(l)
	for w := 0; w < c.dataWays; w++ {
		ln := &c.lines[s][w]
		if ln.Valid && ln.Tag == t {
			ln.Dirty = true
			return
		}
	}
}

// Invalidate removes line l if resident, returning its eviction record.
func (c *Cache) Invalidate(l mem.Line) Eviction {
	s, t := c.set(l), c.tag(l)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[s][w]
		if ln.Valid && ln.Tag == t {
			return c.evict(s, w)
		}
	}
	return Eviction{}
}

// SetDataWays changes the number of ways available to data, evicting
// lines resident in removed ways. The returned slice contains the
// displaced lines (the hierarchy turns dirty ones into writebacks). Per
// the paper, shrinking the data partition flushes dirty lines and marks
// the ways invalid immediately.
func (c *Cache) SetDataWays(n int) []Eviction {
	if n < 1 || n > c.ways {
		panic(fmt.Sprintf("cache %s: SetDataWays(%d) with %d total ways", c.name, n, c.ways))
	}
	var evs []Eviction
	if n < c.dataWays {
		for s := 0; s < c.sets; s++ {
			for w := n; w < c.dataWays; w++ {
				if ev := c.evict(s, w); ev.Valid {
					evs = append(evs, ev)
				}
			}
		}
	}
	c.dataWays = n
	return evs
}

// Occupancy returns the number of valid data lines (tests, debugging).
func (c *Cache) Occupancy() int {
	n := 0
	for s := range c.lines {
		for w := 0; w < c.dataWays; w++ {
			if c.lines[s][w].Valid {
				n++
			}
		}
	}
	return n
}
