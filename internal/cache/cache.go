// Package cache implements the set-associative caches of the simulated
// hierarchy. A Cache tracks residency, dirtiness, prefetch provenance,
// and fill-completion times (for prefetch timeliness), and supports
// dynamic way partitioning so that Triage can carve LLC ways out for its
// metadata store (paper §3).
//
// Timing model: the hierarchy updates cache *state* eagerly at access
// time and carries latency in "ready ticks" on each line. A demand
// access that finds an in-flight fill (ReadyTick in the future) pays the
// residual latency — this models MSHR merging and late prefetches
// without an event queue.
//
// Layout: line state is held in parallel flat arrays indexed set*ways+
// way (struct-of-arrays). The residency scan — the single hottest loop
// in the simulator — touches only the tag array, 8 bytes per way, with
// invalid ways holding a sentinel tag so no separate valid check is
// needed.
package cache

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/replacement"
)

// Line holds the per-line state of one cache way (the assembled view;
// storage is struct-of-arrays).
type Line struct {
	Tag   uint64
	Valid bool
	Dirty bool
	// Prefetched is set when the line was installed by a prefetcher and
	// has not yet been demanded.
	Prefetched bool
	// PrefetchPC is the trigger PC recorded at prefetch-fill time so the
	// prefetcher can be credited/debited on use or eviction.
	PrefetchPC uint64
	// ReadyTick is when the fill completes (simulator ticks); a demand
	// access before then pays the residual latency.
	ReadyTick uint64
	// Core is the id of the core that installed the line (multi-core
	// stats and per-core partitioning).
	Core int
}

// invalidTag marks an empty way in the tag array. Real tags are line
// addresses shifted right by the set bits, far below 2^64-1.
const invalidTag = ^uint64(0)

// wayState is the non-tag state of one way (24 bytes).
type wayState struct {
	ready uint64 // fill-completion tick
	pfPC  uint64 // trigger PC of a prefetch fill
	core  int32  // installing core
	meta  uint8  // flagDirty | flagPrefetched
}

// Per-way flag bits in the meta array.
const (
	flagDirty      = 1 << 0
	flagPrefetched = 1 << 1
)

// Stats aggregates cache-level event counts.
type Stats struct {
	Accesses       uint64
	Hits           uint64
	Misses         uint64
	PrefetchFills  uint64
	PrefetchUsed   uint64 // demand hit on a prefetched line
	PrefetchUnused uint64 // prefetched line evicted without use
	LatePrefetches uint64 // demand hit before the prefetch completed
	Writebacks     uint64
	Evictions      uint64
}

// Eviction describes a line displaced by a fill or invalidation.
type Eviction struct {
	Line     mem.Line
	Dirty    bool
	Valid    bool // false when no line was displaced
	Prefetch bool // line was an unused prefetch
	Core     int
}

// Cache is one level of the hierarchy.
type Cache struct {
	name     string
	sets     int
	ways     int
	dataWays int // ways usable for data; rest reserved (metadata)

	setMask  uint64 // sets-1 (sets is a power of two)
	tagShift uint   // log2(sets)

	// Per-way state, indexed set*ways + way. Tags live alone so the
	// residency scan touches 8 bytes per way; everything else is
	// interleaved in one record so the hit/evict paths touch a single
	// additional host cache line instead of four parallel arrays.
	tags []uint64 // invalidTag when the way is empty
	st   []wayState

	policy replacement.Policy
	stats  Stats
	// live counts the valid lines per set. Steady-state sets are full,
	// so Fill can hand the policy a constant all-valid view (allValid)
	// instead of rebuilding one from the tag array on every victim
	// selection.
	live []uint16
	// validScratch backs the per-fill valid-ways view handed to the
	// policy when the set is not full; reused so Fill allocates
	// nothing. allValid is permanently true.
	validScratch []bool
	allValid     []bool
}

// New returns a cache with the given geometry and replacement policy.
func New(name string, sets, ways int, policy replacement.Policy) *Cache {
	if !mem.IsPow2(sets) {
		panic(fmt.Sprintf("cache %s: sets=%d not a power of two", name, sets))
	}
	if ways < 1 {
		panic(fmt.Sprintf("cache %s: ways=%d", name, ways))
	}
	n := sets * ways
	c := &Cache{
		name: name, sets: sets, ways: ways, dataWays: ways,
		setMask: uint64(sets - 1), tagShift: mem.Log2(sets),
		tags:         make([]uint64, n),
		st:           make([]wayState, n),
		live:         make([]uint16, sets),
		policy:       policy,
		validScratch: make([]bool, ways), allValid: make([]bool, ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for i := range c.allValid {
		c.allValid[i] = true
	}
	return c
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the total associativity.
func (c *Cache) Ways() int { return c.ways }

// DataWays returns the ways currently available to data.
func (c *Cache) DataWays() int { return c.dataWays }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the statistics (used after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) set(l mem.Line) int    { return int(uint64(l) & c.setMask) }
func (c *Cache) tag(l mem.Line) uint64 { return uint64(l) >> c.tagShift }

// lineAt assembles the Line view of (s, w) (tests, invariants).
func (c *Cache) lineAt(s, w int) Line {
	i := s*c.ways + w
	if c.tags[i] == invalidTag {
		return Line{}
	}
	st := &c.st[i]
	return Line{
		Tag:        c.tags[i],
		Valid:      true,
		Dirty:      st.meta&flagDirty != 0,
		Prefetched: st.meta&flagPrefetched != 0,
		PrefetchPC: st.pfPC,
		ReadyTick:  st.ready,
		Core:       int(st.core),
	}
}

// putLine overwrites (s, w) with ln (tests only), recounting the
// set's live lines.
func (c *Cache) putLine(s, w int, ln Line) {
	i := s*c.ways + w
	defer c.recount(s)
	if !ln.Valid {
		c.tags[i] = invalidTag
		c.st[i].meta = 0
		return
	}
	c.tags[i] = ln.Tag
	var m uint8
	if ln.Dirty {
		m |= flagDirty
	}
	if ln.Prefetched {
		m |= flagPrefetched
	}
	c.st[i] = wayState{meta: m, pfPC: ln.PrefetchPC, ready: ln.ReadyTick, core: int32(ln.Core)}
}

// recount recomputes live[s] from the tag array (test mutations only).
func (c *Cache) recount(s int) {
	base := s * c.ways
	n := uint16(0)
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] != invalidTag {
			n++
		}
	}
	c.live[s] = n
}

// Probe reports whether l is resident without touching any state.
func (c *Cache) Probe(l mem.Line) bool {
	t := c.tag(l)
	base := c.set(l) * c.ways
	tags := c.tags[base : base+c.dataWays]
	for w := range tags {
		if tags[w] == t {
			return true
		}
	}
	return false
}

// LookupResult describes the outcome of a demand or prefetch lookup.
type LookupResult struct {
	Hit bool
	// ReadyTick is the fill-completion tick of the hit line (0 if the
	// line has long been resident).
	ReadyTick uint64
	// WasPrefetch is true if this demand was the first use of a
	// prefetched line.
	WasPrefetch bool
	// PrefetchPC is the trigger PC recorded at prefetch time, valid
	// when WasPrefetch.
	PrefetchPC uint64
	// Late is true if the hit line's fill had not completed at `now`.
	Late bool
}

// Access performs a demand access for line l at tick now. On a hit the
// line is promoted (policy Hit) and prefetch provenance is consumed.
func (c *Cache) Access(l mem.Line, a replacement.Access, now uint64) LookupResult {
	c.stats.Accesses++
	s := c.set(l)
	t := c.tag(l)
	base := s * c.ways
	tags := c.tags[base : base+c.dataWays]
	for w := range tags {
		if tags[w] != t {
			continue
		}
		st := &c.st[base+w]
		c.stats.Hits++
		res := LookupResult{Hit: true, ReadyTick: st.ready}
		if st.meta&flagPrefetched != 0 {
			res.WasPrefetch = true
			res.PrefetchPC = st.pfPC
			st.meta &^= flagPrefetched
			c.stats.PrefetchUsed++
			if st.ready > now {
				res.Late = true
				c.stats.LatePrefetches++
			}
		}
		if a.Prefetch && st.ready > now {
			res.Late = true
		}
		c.policy.Hit(s, w, a)
		return res
	}
	c.stats.Misses++
	return LookupResult{}
}

// Fill installs line l, selecting a victim among the data ways. The
// displaced line (if any) is returned so the caller can issue a
// writeback. readyTick is when the fill data arrives.
func (c *Cache) Fill(l mem.Line, a replacement.Access, dirty bool, readyTick uint64) Eviction {
	s := c.set(l)
	t := c.tag(l)
	base := s * c.ways
	// Refill of an already-resident line (e.g. a prefetch racing a
	// demand fill): just update state.
	tags := c.tags[base : base+c.dataWays]
	for w := range tags {
		if tags[w] != t {
			continue
		}
		st := &c.st[base+w]
		if dirty {
			st.meta |= flagDirty
		}
		if st.ready > readyTick {
			st.ready = readyTick
		}
		return Eviction{}
	}
	valid := c.allValid[:c.dataWays]
	if int(c.live[s]) != c.dataWays {
		valid = c.validScratch[:c.dataWays]
		for w := range tags {
			valid[w] = tags[w] != invalidTag
		}
	}
	w := c.policy.Victim(s, a, valid)
	if w < 0 || w >= c.dataWays {
		panic(fmt.Sprintf("cache %s: policy %s returned way %d of %d", c.name, c.policy.Name(), w, c.dataWays))
	}
	ev := c.evict(s, w)
	c.live[s]++
	i := base + w
	c.tags[i] = t
	var m uint8
	if dirty {
		m = flagDirty
	}
	if a.Prefetch {
		m |= flagPrefetched
		c.stats.PrefetchFills++
	}
	c.st[i] = wayState{meta: m, pfPC: a.PC, ready: readyTick, core: int32(a.Core)}
	c.policy.Fill(s, w, a)
	return ev
}

// evict clears (s, w) and returns what was there.
func (c *Cache) evict(s, w int) Eviction {
	i := s*c.ways + w
	if c.tags[i] == invalidTag {
		return Eviction{}
	}
	st := &c.st[i]
	ev := Eviction{
		Line:     mem.Line(c.tags[i]<<c.tagShift | uint64(s)),
		Dirty:    st.meta&flagDirty != 0,
		Valid:    true,
		Prefetch: st.meta&flagPrefetched != 0,
		Core:     int(st.core),
	}
	c.stats.Evictions++
	c.live[s]--
	if ev.Dirty {
		c.stats.Writebacks++
	}
	if ev.Prefetch {
		c.stats.PrefetchUnused++
	}
	c.tags[i] = invalidTag
	st.meta = 0
	return ev
}

// MarkDirty sets the dirty bit of a resident line (store hit).
func (c *Cache) MarkDirty(l mem.Line) {
	t := c.tag(l)
	base := c.set(l) * c.ways
	tags := c.tags[base : base+c.dataWays]
	for w := range tags {
		if tags[w] == t {
			c.st[base+w].meta |= flagDirty
			return
		}
	}
}

// Invalidate removes line l if resident, returning its eviction record.
func (c *Cache) Invalidate(l mem.Line) Eviction {
	s := c.set(l)
	t := c.tag(l)
	base := s * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == t {
			return c.evict(s, w)
		}
	}
	return Eviction{}
}

// SetDataWays changes the number of ways available to data, evicting
// lines resident in removed ways. The returned slice contains the
// displaced lines (the hierarchy turns dirty ones into writebacks). Per
// the paper, shrinking the data partition flushes dirty lines and marks
// the ways invalid immediately.
func (c *Cache) SetDataWays(n int) []Eviction {
	if n < 1 || n > c.ways {
		panic(fmt.Sprintf("cache %s: SetDataWays(%d) with %d total ways", c.name, n, c.ways))
	}
	var evs []Eviction
	if n < c.dataWays {
		for s := 0; s < c.sets; s++ {
			for w := n; w < c.dataWays; w++ {
				if ev := c.evict(s, w); ev.Valid {
					evs = append(evs, ev)
				}
			}
		}
	}
	c.dataWays = n
	return evs
}

// Occupancy returns the number of valid data lines (tests, debugging).
func (c *Cache) Occupancy() int {
	n := 0
	for s := 0; s < c.sets; s++ {
		base := s * c.ways
		for w := 0; w < c.dataWays; w++ {
			if c.tags[base+w] != invalidTag {
				n++
			}
		}
	}
	return n
}
