package config

import "testing"

func TestDefaultMatchesTable1(t *testing.T) {
	m := Default(1)
	if m.FetchWidth != 4 {
		t.Errorf("FetchWidth = %d, want 4", m.FetchWidth)
	}
	if m.ROBEntries != 128 {
		t.Errorf("ROBEntries = %d, want 128", m.ROBEntries)
	}
	if m.ClockGHz != 2.0 {
		t.Errorf("ClockGHz = %g, want 2.0", m.ClockGHz)
	}
	if m.L1Bytes != 64<<10 || m.L1Ways != 4 || m.L1Latency != 3 {
		t.Errorf("L1 = %d/%d-way/%dcyc, want 64KB/4-way/3cyc", m.L1Bytes, m.L1Ways, m.L1Latency)
	}
	if m.L2Bytes != 512<<10 || m.L2Ways != 8 || m.L2Latency != 11 {
		t.Errorf("L2 = %d/%d-way/%dcyc, want 512KB/8-way/11cyc", m.L2Bytes, m.L2Ways, m.L2Latency)
	}
	if m.LLCBytesPerCore != 2<<20 || m.LLCWays != 16 || m.LLCLatency != 20 {
		t.Errorf("LLC = %d/%d-way/%dcyc, want 2MB/16-way/20cyc", m.LLCBytesPerCore, m.LLCWays, m.LLCLatency)
	}
	if m.DRAMLatencyNS != 85 || m.DRAMBandwidthGBs != 32 {
		t.Errorf("DRAM = %gns/%gGBs, want 85ns/32GB/s", m.DRAMLatencyNS, m.DRAMBandwidthGBs)
	}
	if !m.L1StridePrefetcher {
		t.Error("L1 stride prefetcher should be on by default (Table 1)")
	}
}

func TestDerivedGeometry(t *testing.T) {
	m := Default(1)
	if got := m.LLCSets(); got != 2048 {
		t.Errorf("LLCSets = %d, want 2048 (2MB/16-way/64B)", got)
	}
	if got := m.L1Sets(); got != 256 {
		t.Errorf("L1Sets = %d, want 256", got)
	}
	if got := m.L2Sets(); got != 1024 {
		t.Errorf("L2Sets = %d, want 1024", got)
	}
	if got := m.DRAMLatencyCycles(); got != 170 {
		t.Errorf("DRAMLatencyCycles = %d, want 170 (85ns at 2GHz)", got)
	}
	if got := m.DRAMTransferCycles(); got != 4 {
		t.Errorf("DRAMTransferCycles = %d, want 4 (64B at 32GB/s, 2GHz)", got)
	}
}

func TestMultiCoreLLCScaling(t *testing.T) {
	for _, cores := range []int{1, 2, 4, 8, 16} {
		m := Default(cores)
		if got := m.LLCBytes(); got != cores*(2<<20) {
			t.Errorf("cores=%d: LLCBytes = %d, want %d", cores, got, cores*(2<<20))
		}
		if err := m.Validate(); err != nil {
			t.Errorf("cores=%d: Validate: %v", cores, err)
		}
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Machine)
	}{
		{"zero cores", func(m *Machine) { m.Cores = 0 }},
		{"zero width", func(m *Machine) { m.FetchWidth = 0 }},
		{"rob < width", func(m *Machine) { m.ROBEntries = 2 }},
		{"zero clock", func(m *Machine) { m.ClockGHz = 0 }},
		{"bad L1", func(m *Machine) { m.L1Bytes = 0 }},
		{"non-pow2 sets", func(m *Machine) { m.L2Bytes = 3 << 10 }},
		{"inverted latency", func(m *Machine) { m.LLCLatency = 5 }},
		{"negative extra latency", func(m *Machine) { m.LLCExtraLatency = -1 }},
		{"zero bandwidth", func(m *Machine) { m.DRAMBandwidthGBs = 0 }},
		{"zero channels", func(m *Machine) { m.DRAMChannels = 0 }},
	}
	for _, mu := range mutations {
		m := Default(1)
		mu.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate returned nil, want error", mu.name)
		}
	}
}
