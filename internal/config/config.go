// Package config defines the simulated machine configuration. The
// defaults reproduce Table 1 of the paper: a 4-wide out-of-order core at
// 2GHz with a 128-entry ROB, 64KB L1s, a private 512KB L2, a shared
// 2MB-per-core 16-way LLC, and DRAM with 85ns latency and 32GB/s of
// bandwidth.
package config

import (
	"fmt"

	"repro/internal/mem"
)

// Machine describes one simulated machine. All latencies are in core
// cycles unless noted otherwise.
type Machine struct {
	// Cores is the number of cores sharing the LLC and DRAM.
	Cores int
	// FetchWidth is the fetch/decode/dispatch width (Table 1: 4).
	FetchWidth int
	// ROBEntries is the reorder-buffer size (Table 1: 128).
	ROBEntries int
	// ClockGHz is the core clock in GHz (Table 1: 2GHz).
	ClockGHz float64

	// L1Bytes, L1Ways, L1Latency describe the L1 data cache
	// (Table 1: 64KB, 4-way, 3-cycle).
	L1Bytes   int
	L1Ways    int
	L1Latency int

	// L2Bytes, L2Ways, L2Latency describe the private L2
	// (Table 1: 512KB, 8-way, 11-cycle load-to-use).
	L2Bytes   int
	L2Ways    int
	L2Latency int

	// LLCBytesPerCore, LLCWays, LLCLatency describe the shared LLC
	// (Table 1: 2MB/core, 16-way, 20-cycle load-to-use).
	LLCBytesPerCore int
	LLCWays         int
	LLCLatency      int
	// LLCExtraLatency models the §4.6 sensitivity study that penalizes
	// all LLC accesses by up to 6 extra cycles for the finer-grained
	// metadata indexing logic.
	LLCExtraLatency int

	// DRAMLatencyNS is the idle DRAM load-to-use latency in nanoseconds
	// (Table 1: 85ns).
	DRAMLatencyNS float64
	// DRAMBandwidthGBs is the total off-chip bandwidth in GB/s
	// (Table 1: 32GB/s).
	DRAMBandwidthGBs float64
	// DRAMChannels, DRAMBanksPerChannel configure the contention model
	// used for multi-core runs (Table 1: 2 channels, 8 banks).
	DRAMChannels        int
	DRAMBanksPerChannel int
	// DRAMBankCycles is the bank-busy time per access in core cycles,
	// derived from tRP+tRCD+tCAS at the 800MHz DRAM clock.
	DRAMBankCycles int

	// L1MSHRs and L2MSHRs bound outstanding demand misses per core at
	// each level; PrefetchQueue bounds in-flight prefetches per core
	// (ChampSim-style FIFO prefetch queues, §4.1). These limits are what
	// make memory-level parallelism finite and prefetching valuable for
	// regular streams.
	L1MSHRs       int
	L2MSHRs       int
	PrefetchQueue int

	// L1StridePrefetcher enables the baseline L1 stride prefetcher
	// that Table 1 attaches to the L1D.
	L1StridePrefetcher bool
}

// Default returns the Table 1 configuration for the given core count.
func Default(cores int) Machine {
	return Machine{
		Cores:               cores,
		FetchWidth:          4,
		ROBEntries:          128,
		ClockGHz:            2.0,
		L1Bytes:             64 << 10,
		L1Ways:              4,
		L1Latency:           3,
		L2Bytes:             512 << 10,
		L2Ways:              8,
		L2Latency:           11,
		LLCBytesPerCore:     2 << 20,
		LLCWays:             16,
		LLCLatency:          20,
		DRAMLatencyNS:       85,
		DRAMBandwidthGBs:    32,
		DRAMChannels:        2,
		DRAMBanksPerChannel: 8,
		// tCAS=tRP=tRCD=20 DRAM cycles at 800MHz = 25ns each. A closed-
		// page access holds its bank ~tRP+tRCD = 100 core cycles, but
		// row-buffer locality lets real schedulers do much better; 50
		// cycles keeps the 16 banks above the 32GB/s channel limit so
		// the channels, not the banks, set peak bandwidth.
		DRAMBankCycles:     50,
		L1MSHRs:            8,
		L2MSHRs:            16,
		PrefetchQueue:      32,
		L1StridePrefetcher: true,
	}
}

// LLCBytes returns the total shared LLC capacity.
func (m Machine) LLCBytes() int { return m.LLCBytesPerCore * m.Cores }

// LLCSets returns the number of LLC sets.
func (m Machine) LLCSets() int { return m.LLCBytes() / (mem.LineSize * m.LLCWays) }

// L1Sets returns the number of L1D sets.
func (m Machine) L1Sets() int { return m.L1Bytes / (mem.LineSize * m.L1Ways) }

// L2Sets returns the number of L2 sets.
func (m Machine) L2Sets() int { return m.L2Bytes / (mem.LineSize * m.L2Ways) }

// DRAMLatencyCycles returns the idle DRAM latency in core cycles.
func (m Machine) DRAMLatencyCycles() int {
	return int(m.DRAMLatencyNS * m.ClockGHz)
}

// DRAMTransferCycles returns how many core cycles one 64B line occupies
// the off-chip pipe: 64B / (GB/s) converted to cycles at ClockGHz.
func (m Machine) DRAMTransferCycles() int {
	ns := float64(mem.LineSize) / m.DRAMBandwidthGBs // GB/s == B/ns
	c := int(ns*m.ClockGHz + 0.5)
	if c < 1 {
		c = 1
	}
	return c
}

// Validate checks structural invariants; it returns an error describing
// the first violated constraint.
func (m Machine) Validate() error {
	if m.Cores < 1 {
		return fmt.Errorf("config: Cores = %d, want >= 1", m.Cores)
	}
	if m.FetchWidth < 1 {
		return fmt.Errorf("config: FetchWidth = %d, want >= 1", m.FetchWidth)
	}
	if m.ROBEntries < m.FetchWidth {
		return fmt.Errorf("config: ROBEntries = %d < FetchWidth %d", m.ROBEntries, m.FetchWidth)
	}
	if m.ClockGHz <= 0 {
		return fmt.Errorf("config: ClockGHz = %g, want > 0", m.ClockGHz)
	}
	for _, c := range []struct {
		name        string
		bytes, ways int
	}{
		{"L1", m.L1Bytes, m.L1Ways},
		{"L2", m.L2Bytes, m.L2Ways},
		{"LLC", m.LLCBytes(), m.LLCWays},
	} {
		if c.bytes <= 0 || c.ways <= 0 {
			return fmt.Errorf("config: %s size/ways must be positive", c.name)
		}
		sets := c.bytes / (mem.LineSize * c.ways)
		if sets <= 0 || !mem.IsPow2(sets) {
			return fmt.Errorf("config: %s sets = %d, want power of two", c.name, sets)
		}
	}
	if m.L1Latency <= 0 || m.L2Latency <= m.L1Latency || m.LLCLatency <= m.L2Latency {
		return fmt.Errorf("config: latencies must increase down the hierarchy (L1=%d, L2=%d, LLC=%d)",
			m.L1Latency, m.L2Latency, m.LLCLatency)
	}
	if m.LLCExtraLatency < 0 {
		return fmt.Errorf("config: LLCExtraLatency = %d, want >= 0", m.LLCExtraLatency)
	}
	if m.DRAMLatencyNS <= 0 || m.DRAMBandwidthGBs <= 0 {
		return fmt.Errorf("config: DRAM latency/bandwidth must be positive")
	}
	if m.DRAMChannels < 1 || m.DRAMBanksPerChannel < 1 {
		return fmt.Errorf("config: DRAM channels/banks must be >= 1")
	}
	if m.L1MSHRs < 1 || m.L2MSHRs < 1 || m.PrefetchQueue < 1 {
		return fmt.Errorf("config: MSHR/prefetch-queue sizes must be >= 1")
	}
	return nil
}
