package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// ssePollInterval paces the event stream. The feed is poll-based by
// design: a slow client only slows its own stream, never the
// simulation writing into the feed.
const ssePollInterval = 150 * time.Millisecond

// sseWriteTimeout bounds each event write. A client that stopped
// reading (dead TCP peer, full window) makes the write miss the
// deadline and the handler returns, instead of pinning a goroutine —
// and its feed cursor — for as long as the kernel keeps the socket.
// The deadline is re-armed before every write, so a live stream can
// run indefinitely even under the http.Server's WriteTimeout.
const sseWriteTimeout = 15 * time.Second

// handleEvents streams a job's live telemetry as server-sent events:
//
//	event: progress  data: {"instructions": N}      (on change)
//	event: sample    data: <telemetry.Sample JSON>  (each new sample)
//	event: done      data: <JobStatus JSON>         (terminal, stream ends)
//
// Late subscribers receive the full recorded sample series first, so
// the stream is a complete replay regardless of when the client
// connects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, codeInternal, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	emit := func(event string, v any) bool {
		b, err := json.Marshal(v)
		if err != nil {
			return false
		}
		// Re-arm the per-write deadline: a healthy client extends its
		// stream forever, a dead one fails the write within
		// sseWriteTimeout and frees this goroutine. Recorders and other
		// deadline-less writers (tests) are allowed through.
		if err := rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
			return false
		}
		fl.Flush()
		return true
	}

	var cursor int
	var lastInstr uint64
	flushNew := func() bool {
		st := s.Status(j)
		if st.Instructions != lastInstr {
			lastInstr = st.Instructions
			if !emit("progress", map[string]uint64{"instructions": lastInstr}) {
				return false
			}
		}
		for _, smp := range j.feed.SamplesSince(cursor) {
			cursor++
			if !emit("sample", smp) {
				return false
			}
		}
		return true
	}

	ticker := time.NewTicker(ssePollInterval)
	defer ticker.Stop()
	for {
		if !flushNew() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.feed.Done():
			// Drain anything recorded between the last poll and Finish,
			// then close with the terminal status.
			if flushNew() {
				emit("done", s.Status(j))
			}
			return
		case <-ticker.C:
		}
	}
}
