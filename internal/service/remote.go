package service

import (
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// Remote execution surface: when Config.RemoteExec is set the server
// admits, dedups, and persists jobs exactly as before, but no local
// worker goroutines run. An external dispatcher — the cluster
// coordinator in internal/cluster — pulls queued jobs with Take,
// marks them running on a named worker with BeginRemote, feeds live
// progress through the job's feed, and finishes them with
// CompleteRemote/FailRemote. Requeue returns a job whose worker died
// (lease expired) to the queue; because a job stays in the admission
// log until its result is durable, neither a worker death nor a
// coordinator restart can lose an acknowledged job.

// Take blocks until a queued job is available and removes it from the
// queue. Returns nil once the server is draining (queue closed); the
// still-queued jobs stay persisted for the next process.
func (s *Server) Take() *Job { return s.q.pop() }

// BeginRemote marks a taken job running on the named worker: state,
// in-flight accounting, queue-wait histogram, and a "run" span
// annotated with the executing worker.
func (s *Server) BeginRemote(j *Job, worker string) {
	s.mu.Lock()
	j.state = StateRunning
	if j.trace != nil {
		j.remoteSpan = j.trace.Start("run")
		j.remoteSpan.Annotate("kind", j.spec.Kind)
		j.remoteSpan.Annotate("worker", worker)
	}
	s.mu.Unlock()
	s.mRunning.Add(1)
	s.obs.gInflightHWM.SetMax(s.mRunning.Value())
	j.queueSpan.End()
	if j.admittedNS > 0 {
		s.obs.hQueueWait.Observe(uint64(time.Now().UnixNano() - j.admittedNS))
	}
}

// CompleteRemote persists an uploaded result envelope and completes
// the job, reusing the exact local encode/persist path so a
// cluster-run job's stored bytes match a single-node run's. The
// payload served to clients is re-marshaled from the decoded envelope
// (not the worker's raw bytes), so identity holds no matter how the
// worker formatted its upload. Idempotent: a duplicate upload (e.g. a
// lease expired, the job was requeued, and the original worker's
// result arrived late) reports false and changes nothing — first
// result wins, nothing durable is overwritten or re-simulated.
func (s *Server) CompleteRemote(j *Job, env JobResult) bool {
	s.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		s.mu.Unlock()
		return false
	}
	wasRunning := j.state == StateRunning
	span := j.remoteSpan
	s.mu.Unlock()

	switch env.Kind {
	case KindFigure:
		failed := env.Table != nil && env.Table.Failed
		if failed {
			span.Annotate("failed_table", "true")
		}
		span.End()
		payload := marshalEnvelope(env)
		// A failed table (error rows) completes the job but is never
		// stored — same rule as the local runFigure path.
		if !failed {
			s.persistTraced(j, pendingResult{key: j.key, isBlob: true, blob: payload})
		}
		s.complete(j, payload, failed)
	default:
		span.End()
		var res = *env.Result
		s.persistTraced(j, pendingResult{key: j.key, res: res, samples: []byte(env.SamplesJSONL)})
		s.complete(j, marshalEnvelope(JobResult{Kind: KindSingle, Result: &res, SamplesJSONL: env.SamplesJSONL}), false)
	}
	if wasRunning {
		s.mRunning.Add(-1)
	}
	return true
}

// FailRemote records a worker-reported execution failure. Idempotent
// like CompleteRemote.
func (s *Server) FailRemote(j *Job, msg string) bool {
	s.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		s.mu.Unlock()
		return false
	}
	wasRunning := j.state == StateRunning
	span := j.remoteSpan
	s.mu.Unlock()
	span.Annotate("error", msg)
	span.End()
	s.fail(j, msg)
	if wasRunning {
		s.mRunning.Add(-1)
	}
	return true
}

// Requeue returns a running remote job to the queue (its worker's
// lease expired). The job keeps its identity and admission-log entry;
// a fresh queue-wait span opens so the trace shows the second wait.
// No-op unless the job is currently running.
func (s *Server) Requeue(j *Job, reason string) bool {
	s.mu.Lock()
	if j.state != StateRunning {
		s.mu.Unlock()
		return false
	}
	j.state = StateQueued
	j.remoteSpan.Annotate("requeued", reason)
	span := j.remoteSpan
	tr := j.trace
	if tr != nil {
		j.queueSpan = tr.Start("queue-wait")
	}
	s.mu.Unlock()
	span.End()
	if tr != nil {
		tr.Mark("requeue", map[string]string{"reason": reason})
	}
	s.mRunning.Add(-1)
	s.q.push(j)
	s.obs.gQueueHWM.SetMax(int64(s.q.len()))
	return true
}

// HasDurable reports whether the content-addressed store already
// holds a result for the key — the cluster-wide dedup check a
// dispatcher makes before assigning work.
func (s *Server) HasDurable(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store != nil && s.store.Has(key)
}

// CompleteFromStore finishes a queued/running job straight from the
// warm store (the result became durable through another path — e.g. a
// late upload for a deduplicated key). Reports whether the store had
// it.
func (s *Server) CompleteFromStore(j *Job) bool {
	s.mu.Lock()
	if j.state == StateDone || j.state == StateFailed {
		s.mu.Unlock()
		return true
	}
	store, spec, key := s.store, j.spec, j.key
	wasRunning := j.state == StateRunning
	s.mu.Unlock()
	if store == nil {
		return false
	}
	var payload []byte
	switch spec.Kind {
	case KindFigure:
		blob, ok := store.GetBlob(key)
		if !ok {
			return false
		}
		payload = blob
	default:
		res, samples, ok := store.Get(key)
		if !ok {
			return false
		}
		payload = marshalEnvelope(JobResult{Kind: KindSingle, Result: &res, SamplesJSONL: string(samples)})
	}
	s.mu.Lock()
	j.cached = true
	s.mu.Unlock()
	s.complete(j, payload, false)
	if wasRunning {
		s.mRunning.Add(-1)
	}
	return true
}

// Fingerprint returns the server's machine-config fingerprint — the
// identity the content-addressed store is keyed under. A coordinator
// uses it to verify that an uploaded result was produced under the
// same configuration before persisting it.
func (s *Server) Fingerprint() string { return s.fp }

// Key returns the job's canonical content key.
func (j *Job) Key() string { return j.key }

// Spec returns a copy of the job's normalized spec.
func (j *Job) Spec() JobSpec { return j.spec }

// Feed returns the job's live telemetry fan-out; a dispatcher relays
// worker-streamed progress and samples into it so SSE consumers see a
// cluster-run job exactly like a local one.
func (j *Job) Feed() *telemetry.JobFeed { return j.feed }

// Trace returns the job's span record (nil when tracing is off), so a
// dispatcher can add cluster marks (assign, lease-expired, requeue).
func (j *Job) Trace() *obs.Trace { return j.trace }

// StateOf snapshots the job's lifecycle state.
func (s *Server) StateOf(j *Job) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.state
}

// QueueLen reports the number of queued (not yet dispatched) jobs.
func (s *Server) QueueLen() int { return s.q.len() }

// Gate returns the configured test gate (nil in production); the
// cluster worker calls it before simulating, mirroring the local
// worker path, so chaos tests hold cluster workers at the same
// deterministic point.
func (s *Server) Gate() func(key string) { return s.cfg.Gate }

// VFS returns the filesystem durable state is written through, so the
// coordinator's assignment log shares the server's fault-injection
// stack in tests.
func (s *Server) VFS() vfs.FS { return s.fsys }

// StoreDirPath returns the store directory (queue.jsonl, runs.jsonl —
// and, under a coordinator, assign.jsonl).
func (s *Server) StoreDirPath() string { return s.cfg.StoreDir }
