package service

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a JobSpec    → SubmitResponse
//	GET  /v1/jobs             list jobs           → []JobStatus
//	GET  /v1/jobs/{id}        job status          → JobStatus
//	GET  /v1/jobs/{id}/result finished result     → JobResult
//	GET  /v1/jobs/{id}/events live progress       → SSE stream
//	GET  /metrics             service counters    → JSON
//	GET  /healthz             liveness            → 200 "ok"
//
// Submission maps dispositions and errors to status codes: 201 fresh
// admission, 200 dedup or warm-store hit, 400 invalid spec, 429 queue
// full (with Retry-After), 503 draining.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

// httpError is the error wire format.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, httpError{Error: msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job spec: "+err.Error())
		return
	}
	j, disp, err := s.Submit(spec)
	if err != nil {
		var bad *BadSpecError
		switch {
		case errors.As(err, &bad):
			writeError(w, http.StatusBadRequest, err.Error())
		case errors.Is(err, ErrQueueFull):
			// Backpressure, not failure: tell the client when to retry.
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	st := s.Status(j)
	resp := SubmitResponse{
		ID:      j.ID(),
		Key:     st.Key,
		State:   st.State,
		Cached:  disp == DispCached,
		Deduped: disp == DispDeduped,
	}
	code := http.StatusCreated
	if disp != DispNew {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

// jobFor resolves {id}, writing a 404 when unknown.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.Status(j))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st := s.Status(j)
	switch st.State {
	case StateDone:
		payload, _ := s.Result(j)
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	case StateFailed:
		writeError(w, http.StatusConflict, "job failed: "+st.Error)
	default:
		// Not done yet: poll again shortly (or follow /events instead).
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusAccepted, "job is "+string(st.State))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
