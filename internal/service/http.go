package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// maxSubmitBytes bounds a submission body. A RunSpec is a few hundred
// bytes; anything near the cap is malformed or malicious, and the
// limit keeps a misbehaving client from buffering unbounded JSON into
// the decoder.
const maxSubmitBytes = 1 << 20

// Error codes carried in the error envelope, so clients can branch on
// semantics instead of parsing prose.
const (
	codeBadSpec   = "bad_spec"
	codeQueueFull = "queue_full"
	codeDraining  = "draining"
	codeDegraded  = "degraded"
	codeTooLarge  = "body_too_large"
	codeNotFound  = "not_found"
	codeNotReady  = "not_ready"
	codeJobFailed = "job_failed"
	codeInternal  = "internal"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/jobs             submit a JobSpec    → SubmitResponse
//	GET  /v1/jobs             list jobs           → []JobStatus
//	GET  /v1/jobs/{id}        job status          → JobStatus
//	GET  /v1/jobs/{id}/result finished result     → JobResult
//	GET  /v1/jobs/{id}/events live progress       → SSE stream
//	GET  /metrics             service counters    → JSON, or Prometheus
//	                          text when the Accept header asks for
//	                          text/plain or openmetrics (what a
//	                          Prometheus scraper sends) or the query
//	                          says ?format=prometheus
//	GET  /debug/trace         flight recorder     → all held traces
//	GET  /debug/trace/{id}    one trace           → by trace or job id
//	GET  /healthz             liveness            → 200 "ok", 503 when degraded
//
// Submission maps dispositions and errors to status codes: 201 fresh
// admission, 200 dedup or warm-store hit, 400 invalid spec (error
// envelope carries code "bad_spec"), 413 oversized body, 429 queue
// full (with Retry-After), 503 draining or degraded.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTraceAll)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// httpError is the error wire format: human-readable prose plus a
// stable machine-readable code.
type httpError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, httpError{Error: msg, Code: code})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, codeBadSpec, "decoding job spec: "+err.Error())
		return
	}
	j, disp, err := s.Submit(spec)
	if err != nil {
		var bad *BadSpecError
		switch {
		case errors.As(err, &bad):
			writeError(w, http.StatusBadRequest, codeBadSpec, err.Error())
		case errors.Is(err, ErrQueueFull):
			// Backpressure, not failure: tell the client when to retry.
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusTooManyRequests, codeQueueFull, err.Error())
		case errors.Is(err, ErrDraining):
			writeError(w, http.StatusServiceUnavailable, codeDraining, err.Error())
		case errors.Is(err, ErrDegraded):
			// Degraded is transient: the recovery probe may bring the
			// store back, so give clients a retry hint like 429 does.
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, codeDegraded, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, codeInternal, err.Error())
		}
		return
	}
	st := s.Status(j)
	resp := SubmitResponse{
		ID:      j.ID(),
		Key:     st.Key,
		State:   st.State,
		Cached:  disp == DispCached,
		Deduped: disp == DispDeduped,
		Trace:   j.TraceID(),
	}
	code := http.StatusCreated
	if disp != DispNew {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs())
}

// jobFor resolves {id}, writing a 404 when unknown.
func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound, "unknown job "+r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, s.Status(j))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	st := s.Status(j)
	switch st.State {
	case StateDone:
		payload, _ := s.Result(j)
		// The first successful fetch closes the job's trace: the span
		// sequence ends at result-served, not at completion, so the
		// trace covers the client-visible latency.
		if j.trace != nil {
			j.servedOnce.Do(func() { j.trace.Mark("result-served", nil) })
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
	case StateFailed:
		writeError(w, http.StatusConflict, codeJobFailed, "job failed: "+st.Error)
	default:
		// Not done yet: poll again shortly (or follow /events instead).
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusAccepted, codeNotReady, "job is "+string(st.State))
	}
}

// wantsPrometheus decides the /metrics render format. JSON is the
// default (the original wire format, kept for existing clients and
// tests); Prometheus text is opt-in via Accept or ?format=.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obs.reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// handleTrace serves one trace from the flight recorder, addressable
// by trace id or job id.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.obs.rec.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, codeNotFound,
			"no trace for "+id+" (evicted from the flight recorder, or never admitted)")
		return
	}
	writeJSON(w, http.StatusOK, t.Dump())
}

// handleTraceAll dumps the whole flight recorder, oldest first.
func (s *Server) handleTraceAll(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.obs.rec.DumpAll())
}

// handleHealthz is the liveness/readiness probe: 200 while healthy,
// 503 with the cause while the store is failing — load balancers stop
// routing submissions, and the degraded flag is scrapeable without
// parsing /metrics.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Degraded() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"cause":  s.DegradedCause(),
		})
		return
	}
	w.Write([]byte("ok\n"))
}
