package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsPrometheusExposition pins the /metrics content
// negotiation: JSON by default (the original wire format, unchanged
// keys), Prometheus text when the Accept header or ?format= asks for
// it, and the text must be a valid exposition carrying the service
// counters and latency histograms.
func TestMetricsPrometheusExposition(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, sr := postJob(t, ts, tinySpec(1))
	waitDone(t, ts, sr.ID)

	// Default: JSON, legacy keys intact plus the new obs section.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("default /metrics Content-Type = %q, want JSON", ct)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"submitted", "completed", "queued", "pool", "degraded_seconds_total", "obs"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON /metrics missing key %q", key)
		}
	}
	ob := m["obs"].(map[string]any)
	hist := ob["triaged_submit_to_result_seconds"].(map[string]any)
	if hist["count"].(float64) < 1 {
		t.Errorf("submit-to-result histogram recorded nothing: %v", hist)
	}

	// Prometheus via Accept (what a real scraper sends).
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("Prometheus /metrics Content-Type = %q", ct)
	}
	buf := make([]byte, 1<<20)
	for {
		n, rerr := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	text := sb.String()
	if err := obs.ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Fatalf("/metrics is not a valid Prometheus exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"triaged_submitted_total 1",
		"triaged_completed_total 1",
		"# TYPE triaged_run_seconds histogram",
		"triaged_queue_wait_seconds_count 1",
		"triaged_degraded_seconds_total 0",
		"triaged_queue_depth_hwm 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// ?format=prometheus works without an Accept header (curl).
	resp, err = ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("?format=prometheus Content-Type = %q", ct)
	}
	resp.Body.Close()
}

// TestTraceEndToEnd pins the span record of one completed job: the
// submit response carries a trace id, the trace is fetchable by both
// trace and job id, and its spans cover admission through result-
// served in causal order with monotonic timestamps.
func TestTraceEndToEnd(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := tinySpec(2)
	spec.Run.SampleEvery = 10_000 // arms the measure-start bridge
	_, sr := postJob(t, ts, spec)
	if sr.Trace == "" {
		t.Fatal("submit response carries no trace id")
	}
	waitDone(t, ts, sr.ID)
	// Fetch the result so the trace records result-served.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for _, id := range []string{sr.Trace, sr.ID} {
		resp, err := ts.Client().Get(ts.URL + "/debug/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/trace/%s = %d", id, resp.StatusCode)
		}
		var d obs.TraceDump
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d.TraceID != sr.Trace || d.JobID != sr.ID {
			t.Fatalf("trace ids %q/%q, want %q/%q", d.TraceID, d.JobID, sr.Trace, sr.ID)
		}
		assertSpanOrder(t, d, []string{
			"admit", "queue-wait", "run", "measure-start", "store-put", "done", "result-served",
		})
	}
}

// assertSpanOrder checks that names appear as a subsequence of the
// trace's spans (in order) and that timestamps are monotonic: span
// starts never go backwards across the sequence, and no span ends
// before it starts. (An enclosing span — run around measure-start —
// legitimately ends after a nested mark begins.)
func assertSpanOrder(t *testing.T, d obs.TraceDump, names []string) {
	t.Helper()
	next := 0
	var last int64
	for _, sp := range d.Spans {
		if sp.Start < last {
			t.Errorf("span %q starts at %d, before the previous span's start %d", sp.Name, sp.Start, last)
		}
		last = sp.Start
		if sp.End != 0 && sp.End < sp.Start {
			t.Errorf("span %q ends (%d) before it starts (%d)", sp.Name, sp.End, sp.Start)
		}
		if next < len(names) && sp.Name == names[next] {
			next++
		}
	}
	if next != len(names) {
		got := make([]string, len(d.Spans))
		for i, sp := range d.Spans {
			got[i] = sp.Name
		}
		t.Errorf("span sequence missing %q: trace has %v", names[next], got)
	}
}

// TestTraceDedupMark pins that a deduped submission returns the
// original trace id and stamps a second admit mark on it.
func TestTraceDedupMark(t *testing.T) {
	blockKey := make(chan struct{})
	srv := newTestServer(t, func(c *Config) {
		c.Gate = func(key string) { <-blockKey }
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, first := postJob(t, ts, tinySpec(3))
	_, second := postJob(t, ts, tinySpec(3))
	close(blockKey)
	if !second.Deduped {
		t.Fatal("second submission was not deduped")
	}
	if second.Trace != first.Trace {
		t.Fatalf("deduped trace id %q differs from original %q", second.Trace, first.Trace)
	}
	waitDone(t, ts, first.ID)
	tr, ok := srv.FlightRecorder().Get(first.Trace)
	if !ok {
		t.Fatal("trace missing from flight recorder")
	}
	admits := 0
	for _, sp := range tr.Dump().Spans {
		if sp.Name == "admit" {
			admits++
			if admits == 2 && sp.Attrs["disposition"] != "deduped" {
				t.Errorf("second admit disposition = %q", sp.Attrs["disposition"])
			}
		}
	}
	if admits != 2 {
		t.Errorf("trace has %d admit marks, want 2", admits)
	}
}

// TestDebugTraceUnknown404 pins the miss path.
func TestDebugTraceUnknown404(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/debug/trace/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace returned %d, want 404", resp.StatusCode)
	}
}

// TestObsOverheadGuard bounds the observability cost per job: the full
// per-job instrumentation sequence (trace allocation, every span and
// mark the job path records, all four histogram observations, recorder
// insertion) must cost under 2% of even the tiniest real job's
// wall-clock time. The sequence is measured in a micro-loop; the job
// time is the served submit-to-result latency of the smallest spec the
// test suite uses.
func TestObsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector inflates instrumented-path timings; guard runs in the plain test pass")
	}
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	start := time.Now()
	_, sr := postJob(t, ts, tinySpec(4))
	waitDone(t, ts, sr.ID)
	jobTime := time.Since(start)

	rec := obs.NewRecorder(256)
	var hQueue, hRun, hPut, hTotal obs.Histogram
	perJob := func(i int) {
		tr := obs.NewTrace("t-guard", "j-guard")
		tr.Mark("admit", map[string]string{"disposition": "new", "kind": KindSingle})
		q := tr.Start("queue-wait")
		rec.Add(tr)
		q.End()
		hQueue.Observe(uint64(i))
		run := tr.Start("run")
		run.Annotate("kind", KindSingle)
		tr.Mark("measure-start", nil)
		run.End()
		hRun.Observe(uint64(i))
		p := tr.Start("store-put")
		p.End()
		hPut.Observe(uint64(i))
		hTotal.Observe(uint64(i))
		tr.Mark("done", nil)
		tr.Mark("result-served", nil)
	}
	const iters = 2000
	best := time.Duration(1 << 62)
	for attempt := 0; attempt < 3; attempt++ {
		loopStart := time.Now()
		for i := 0; i < iters; i++ {
			perJob(i)
		}
		if d := time.Since(loopStart) / iters; d < best {
			best = d
		}
	}
	// 2% of the measured tiny-job time, plus absolute slack so a
	// lightning-fast warm machine cannot fail on scheduler jitter.
	budget := jobTime/50 + 200*time.Microsecond
	if best > budget {
		t.Errorf("per-job observability cost %v exceeds budget %v (2%% of %v job)",
			best, budget, jobTime)
	}
}
