package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/trace"
)

// TestTraceJobs covers the service side of the trace ecosystem: a
// server opened with Config.CorpusDir rejects specs naming unknown
// hashes at admission (400, not a queued failure) and runs a spec
// naming an ingested trace to completion.
func TestTraceJobs(t *testing.T) {
	corpusDir := t.TempDir()
	srv := newTestServer(t, func(c *Config) { c.CorpusDir = corpusDir })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	traceSpec := func(id string) JobSpec {
		return JobSpec{Kind: KindSingle, Run: &experiments.RunSpec{
			Trace: id, PF: "none", Cores: 1, Warmup: 0, Measure: 10_000, Degree: 1,
		}}
	}

	// Unknown hash: rejected before it reaches the queue.
	resp, _ := postJob(t, ts, traceSpec("sha256:"+strings.Repeat("0", 64)))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown trace hash: status %d, want 400", resp.StatusCode)
	}

	// Ingest a small synthetic trace (long enough that the measure
	// window never wraps the loop) and run it end to end.
	c, err := trace.OpenCorpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30_000; i++ {
		rec := trace.Record{PC: 0x1000 + uint64(i%16)*4, Op: trace.Load,
			Addr: mem.Addr(0x10000 + (i%512)*64)}
		if err := cw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}

	resp, sr := postJob(t, ts, traceSpec(id))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("ingested trace: status %d, want 201", resp.StatusCode)
	}
	st := waitDone(t, ts, sr.ID)
	if st.State != StateDone {
		t.Fatalf("trace job ended %s: %s", st.State, st.Error)
	}
}
