//go:build race

package service

// raceEnabled reports whether this test binary was built with the race
// detector, which inflates instrumented-path timings and makes
// wall-clock overhead guards meaningless.
const raceEnabled = true
