package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vfs"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the
// flight-recorder dump the server writes on degraded entry.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDegradedModeAndRecovery walks the whole degraded-mode lifecycle:
// a healthy server persists normally; when the disk starts failing, a
// completed job's result is preserved in memory (still served, still
// deduped onto), /healthz flips to 503, and new submissions are
// rejected with 503 degraded; when the disk heals, the recovery probe
// flushes the preserved results durably and restores full service.
func TestDegradedModeAndRecovery(t *testing.T) {
	mem := vfs.NewMem(1)
	faulty := vfs.NewFaulty(mem, vfs.Plan{Seed: 1})

	spec2 := tinySpec(2)
	if err := spec2.normalize(); err != nil {
		t.Fatal(err)
	}
	key2 := spec2.key()
	gate2 := make(chan struct{})
	gateClosed := false
	defer func() {
		if !gateClosed {
			close(gate2)
		}
	}()

	var flightDump syncBuffer
	srv := newTestServer(t, func(c *Config) {
		c.FS = faulty
		c.ProbeInterval = 20 * time.Millisecond
		c.Workers = 1
		c.TraceLog = &flightDump
		c.Gate = func(key string) {
			if key == key2 {
				<-gate2
			}
		}
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Healthy: job 1 runs and persists.
	_, sr1 := postJob(t, ts, tinySpec(1))
	if st := waitDone(t, ts, sr1.ID); st.State != StateDone {
		t.Fatalf("healthy job ended %s (%s)", st.State, st.Error)
	}
	if !srv.store.Has("single/"+tinySpec(1).Run.Key()) || srv.Degraded() {
		t.Fatal("healthy job not persisted, or server degraded without a fault")
	}

	// Job 2 is admitted healthy, then the disk starts failing every
	// write while the worker is held at the gate: its persist fails.
	_, sr2 := postJob(t, ts, tinySpec(2))
	faulty.SetPlan(vfs.Plan{Seed: 2, PWrite: 1, PSync: 1})
	gateClosed = true
	close(gate2)
	st2 := waitDone(t, ts, sr2.ID)
	if st2.State != StateDone {
		t.Fatalf("job under failing disk ended %s (%s), want done (result preserved in memory)", st2.State, st2.Error)
	}
	if !srv.Degraded() {
		t.Fatal("failed persist did not degrade the server")
	}
	if srv.DegradedCause() == "" {
		t.Error("degraded server reports no cause")
	}
	if srv.store.Has(key2) {
		t.Fatal("failing disk supposedly stored the result")
	}

	// The in-memory result still serves...
	body := readAll(t, mustGet(t, ts, "/v1/jobs/"+sr2.ID+"/result"))
	var jr JobResult
	if err := json.Unmarshal(body, &jr); err != nil || jr.Result == nil {
		t.Fatalf("degraded result unserveable: %v (%s)", err, body)
	}
	// ...and a resubmission dedups onto it rather than re-simulating.
	respDup, srDup := postJob(t, ts, tinySpec(2))
	if respDup.StatusCode != http.StatusOK || !srDup.Deduped {
		t.Errorf("resubmit while degraded: status %d resp %+v, want 200 deduped", respDup.StatusCode, srDup)
	}

	// New work is rejected 503 with the degraded code and a retry hint.
	resp3, _ := postJob(t, ts, tinySpec(3))
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while degraded: status %d, want 503", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 carries no Retry-After")
	}

	// /healthz reports degraded with the cause.
	hz, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hzBody map[string]string
	json.NewDecoder(hz.Body).Decode(&hzBody)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable || hzBody["status"] != "degraded" || hzBody["cause"] == "" {
		t.Errorf("healthz while degraded: status %d body %v", hz.StatusCode, hzBody)
	}

	// Metrics expose the incident.
	m := srv.MetricsSnapshot()
	if m["degraded"] != true || m["pending_results"].(int) != 1 || m["degraded_entered"].(int64) < 1 {
		t.Errorf("degraded metrics %v", m)
	}
	if _, ok := m["fs_faults"]; !ok {
		t.Error("metrics omit fs_faults although the FS injects faults")
	}

	// The flight recorder captured the triggering fault as an incident
	// carrying the cause, and the whole recorder was dumped to the
	// configured TraceLog at the moment of entry.
	var sawIncident bool
	for _, d := range srv.FlightRecorder().DumpAll() {
		for _, sp := range d.Spans {
			if sp.Name == "degraded-enter" && sp.Attrs["cause"] != "" {
				sawIncident = true
			}
		}
	}
	if !sawIncident {
		t.Error("flight recorder holds no degraded-enter incident with a cause")
	}
	dump := flightDump.String()
	if !strings.Contains(dump, "flight-recorder-dump") || !strings.Contains(dump, "degraded-enter") {
		t.Errorf("degraded entry did not dump the flight recorder to TraceLog:\n%.400s", dump)
	}

	// degraded_seconds_total is live while degraded: /metrics exposes
	// it in both formats and it grows with wall time.
	if m["degraded_seconds_total"].(float64) < 0 {
		t.Error("degraded_seconds_total negative")
	}
	time.Sleep(20 * time.Millisecond)
	if s2 := srv.MetricsSnapshot()["degraded_seconds_total"].(float64); s2 <= 0 {
		t.Errorf("degraded_seconds_total = %v after 20ms degraded, want > 0", s2)
	}
	promReq, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	promReq.Header.Set("Accept", "text/plain")
	promResp, err := ts.Client().Do(promReq)
	if err != nil {
		t.Fatal(err)
	}
	promText := string(readAll(t, promResp))
	if !strings.Contains(promText, "triaged_degraded_seconds_total") ||
		!strings.Contains(promText, "triaged_degraded 1") {
		t.Errorf("Prometheus /metrics while degraded misses degraded series:\n%.400s", promText)
	}

	// Heal the disk: the probe flushes the preserved result and
	// restores service.
	faulty.Heal()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Degraded() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Degraded() {
		t.Fatal("server never recovered after the disk healed")
	}
	if !srv.store.Has(key2) {
		t.Fatal("recovery did not persist the preserved result")
	}
	m = srv.MetricsSnapshot()
	if m["pending_results"].(int) != 0 || m["recovered"].(int64) != 1 {
		t.Errorf("post-recovery metrics %v", m)
	}
	// The episode's duration is folded into the total, which stops
	// growing once healthy, and the recovery left its own incident.
	recoveredSecs := m["degraded_seconds_total"].(float64)
	if recoveredSecs <= 0 {
		t.Error("degraded_seconds_total did not accumulate the episode")
	}
	var sawRecovery bool
	for _, d := range srv.FlightRecorder().DumpAll() {
		for _, sp := range d.Spans {
			if sp.Name == "degraded-recovered" {
				sawRecovery = true
			}
		}
	}
	if !sawRecovery {
		t.Error("flight recorder holds no degraded-recovered incident")
	}
	hz2, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz2.Body.Close()
	if hz2.StatusCode != http.StatusOK {
		t.Errorf("healthz after recovery: status %d, want 200", hz2.StatusCode)
	}
	resp4, sr4 := postJob(t, ts, tinySpec(3))
	if resp4.StatusCode != http.StatusCreated {
		t.Fatalf("submit after recovery: status %d, want 201", resp4.StatusCode)
	}
	if st := waitDone(t, ts, sr4.ID); st.State != StateDone {
		t.Errorf("post-recovery job ended %s (%s)", st.State, st.Error)
	}
}

// TestSubmitRejectedWhenAdmissionLogFails pins the other degraded
// entry point: when the admission log itself cannot be written, the
// submission is NOT acknowledged (no job a crash could lose) and the
// server degrades.
func TestSubmitRejectedWhenAdmissionLogFails(t *testing.T) {
	mem := vfs.NewMem(3)
	faulty := vfs.NewFaulty(mem, vfs.Plan{Seed: 3})
	srv := newTestServer(t, func(c *Config) {
		c.FS = faulty
		c.ProbeInterval = time.Hour // recovery not under test here
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	faulty.SetPlan(vfs.Plan{Seed: 3, PWrite: 1, PSync: 1})
	resp, sr := postJob(t, ts, tinySpec(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with failing admission log: status %d, want 503", resp.StatusCode)
	}
	if sr.ID != "" {
		t.Error("failed submission still handed out a job id")
	}
	if !srv.Degraded() {
		t.Error("failed admission write did not degrade the server")
	}
	if n := srv.MetricsSnapshot()["submitted"].(int64); n != 0 {
		t.Errorf("failed submission counted as submitted (%d)", n)
	}
	faulty.Heal() // let cleanup close files cleanly
	srv.store.ClearErr()
}

// TestSubmitOversizedBody413 pins the request-size cap: a body that
// exceeds maxSubmitBytes is cut off by MaxBytesReader and rejected
// with 413 and the body_too_large code, not buffered into the decoder.
func TestSubmitOversizedBody413(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Valid JSON whose one string token exceeds the cap, so the decoder
	// must read past the limit to finish it.
	body := `{"kind":"` + strings.Repeat("a", maxSubmitBytes+1024) + `"}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: status %d, want 413", resp.StatusCode)
	}
	var he httpError
	if err := json.NewDecoder(resp.Body).Decode(&he); err != nil {
		t.Fatal(err)
	}
	if he.Code != codeTooLarge {
		t.Errorf("oversized submit code %q, want %q", he.Code, codeTooLarge)
	}
}

// TestErrorEnvelopeCodes verifies error responses carry stable
// machine-readable codes alongside the prose.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"kind":"bogus"}`))
	if err != nil {
		t.Fatal(err)
	}
	var he httpError
	json.NewDecoder(resp.Body).Decode(&he)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || he.Code != codeBadSpec || he.Error == "" {
		t.Errorf("bad spec: status %d envelope %+v, want 400 %s", resp.StatusCode, he, codeBadSpec)
	}

	resp2, err := ts.Client().Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	var he2 httpError
	json.NewDecoder(resp2.Body).Decode(&he2)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound || he2.Code != codeNotFound {
		t.Errorf("unknown job: status %d envelope %+v, want 404 %s", resp2.StatusCode, he2, codeNotFound)
	}
}
