package service

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzJobSpecDecode throws arbitrary JSON at the submission path
// (decode with unknown fields rejected, then normalize), mirroring
// handleSubmit. Invariants: never panic; a spec that normalizes has a
// non-empty content key; and canonicalization is a fixpoint — the
// normalized spec re-marshals, re-decodes, and re-normalizes to the
// same key, so equivalent submissions always dedup onto one job.
func FuzzJobSpecDecode(f *testing.F) {
	single, _ := json.Marshal(tinySpec(1))
	f.Add(single)
	f.Add([]byte(`{"kind":"figure","figure":"fig05"}`))
	f.Add([]byte(`{"kind":"figure","figure":"fig05","scale":{"warmup":1,"mixes":2}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"single","run":{"bench":"mcf","pf":"none"}}`))
	f.Add([]byte(`{"kind":"bogus"}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"priority":-1}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var spec JobSpec
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		if dec.Decode(&spec) != nil {
			return
		}
		if spec.normalize() != nil {
			return
		}
		key := spec.key()
		if key == "" {
			t.Fatal("normalized spec has an empty content key")
		}
		if idOf(key) == "" {
			t.Fatal("content key maps to an empty job id")
		}
		again, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("normalized spec does not re-marshal: %v", err)
		}
		var spec2 JobSpec
		if err := json.Unmarshal(again, &spec2); err != nil {
			t.Fatalf("normalized spec does not re-decode: %v", err)
		}
		if err := spec2.normalize(); err != nil {
			t.Fatalf("canonical spec fails its own validation: %v", err)
		}
		if spec2.key() != key {
			t.Fatalf("canonicalization not a fixpoint: %q -> %q", key, spec2.key())
		}
	})
}
