package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/vfs"
)

// queueFile persists admitted-but-unfinished jobs next to the result
// store so a restart re-admits them.
const queueFile = "queue.jsonl"

// Config sizes a Server.
type Config struct {
	// StoreDir holds the content-addressed result store (runs.jsonl)
	// and the admission log (queue.jsonl). Required.
	StoreDir string
	// QueueCap bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with ErrQueueFull (HTTP 429).
	// Default 64.
	QueueCap int
	// Workers bounds how many simulations run concurrently (the shared
	// experiments.Pool) and how many jobs execute at once. Default
	// GOMAXPROCS.
	Workers int
	// Deadline and Stall arm a per-job watchdog (see experiments
	// Params); zero disables.
	Deadline time.Duration
	Stall    time.Duration
	// Gate, when non-nil, is called on the worker goroutine right
	// before a job's simulation starts. Test hook for holding workers
	// at a deterministic point — leave nil in production.
	Gate func(key string)
	// FS is the filesystem the durable state (result store, admission
	// log) is written through. Nil means the real filesystem; tests
	// substitute a vfs.Faulty/vfs.Mem stack to inject disk faults and
	// crashes.
	FS vfs.FS
	// CorpusDir, when non-empty, opens (creating if needed) the
	// content-addressed trace corpus there and makes it the process-
	// wide trace source, so submitted RunSpecs may name materialized
	// traces by hash (RunSpec.Trace). Unknown hashes are rejected at
	// admission, not at run time.
	CorpusDir string
	// ProbeInterval paces the degraded-mode recovery probe: while the
	// store is failing, the server retries persisting the preserved
	// in-memory results this often, and returns to service when the
	// disk recovers. Default 2s.
	ProbeInterval time.Duration
	// TraceCap bounds the flight recorder (traces held for
	// /debug/trace). Default 256.
	TraceCap int
	// TraceLog, when non-nil, receives a JSON dump of the whole flight
	// recorder on every transition into degraded mode, so the trace
	// timeline leading up to a store fault survives a crash. cmd/triaged
	// points it at stderr; leave nil to disable.
	TraceLog io.Writer
	// RemoteExec disables the local worker goroutines: admitted jobs
	// wait in the queue for an external dispatcher (the cluster
	// coordinator, internal/cluster) to Take them and drive them
	// through BeginRemote/CompleteRemote/FailRemote/Requeue.
	// Admission, dedup, persistence, and the HTTP API are unchanged.
	RemoteExec bool
}

// Submission errors mapped to HTTP status codes by the handlers.
var (
	// ErrQueueFull is backpressure: the admission queue is at capacity.
	ErrQueueFull = errors.New("admission queue full")
	// ErrDraining rejects submissions during graceful shutdown.
	ErrDraining = errors.New("server is draining")
	// ErrDegraded rejects submissions while the store is failing: the
	// server is read-only (existing jobs and warm results still serve)
	// until the recovery probe sees the disk heal.
	ErrDegraded = errors.New("store is failing; server is degraded (read-only)")
)

// BadSpecError wraps a spec validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// Disposition says how a submission was satisfied.
type Disposition int

// Submission dispositions.
const (
	// DispNew admitted a fresh job.
	DispNew Disposition = iota
	// DispDeduped joined an existing queued/running/done job with the
	// same content key (single-flight).
	DispDeduped
	// DispCached materialized a done job straight from the warm result
	// store without simulating.
	DispCached
)

// Server is the simulation service: admission queue, worker pool,
// content-addressed result store, and per-job telemetry fan-out.
// Create with New, serve its Handler, stop with Drain then Close.
type Server struct {
	cfg  Config
	fsys vfs.FS
	fp   string
	pool *experiments.Pool
	prog *telemetry.PoolProgress
	q    *jobQueue
	obs  *serverObs

	mu            sync.Mutex
	store         *experiments.Checkpoint
	queueLog      vfs.File
	jobs          map[string]*Job // by id
	byKey         map[string]*Job
	seq           uint64
	pending       []pendingResult // completed but not yet persisted (degraded mode)
	degradedCause string

	draining atomic.Bool
	degraded atomic.Bool
	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup
	started  time.Time

	// metrics are expvar counters (unpublished; cmd/triaged may
	// additionally Publish the snapshot under a process-global name).
	mSubmitted    expvar.Int
	mDeduped      expvar.Int
	mStoreHits    expvar.Int
	mRejectedFull expvar.Int
	mRejectedDrng expvar.Int
	mRejectedDegr expvar.Int
	mCompleted    expvar.Int
	mFailed       expvar.Int
	mRunning      expvar.Int
	mRestored     expvar.Int // queued jobs re-admitted at startup
	mStoreErrors  expvar.Int // store/admission-log write or sync failures
	mDegradedIn   expvar.Int // transitions into degraded mode
	mRecovered    expvar.Int // successful recoveries out of degraded mode
}

// pendingResult is one completed job whose durable write failed: the
// result stays correct in memory (served to clients, deduped onto)
// and the recovery probe re-attempts persistence until the disk
// heals. A crash before that loses only work that was never durable —
// the job is still in the admission log and re-simulates on restart.
type pendingResult struct {
	key     string
	isBlob  bool
	res     sim.Result
	samples []byte
	blob    []byte
}

// New opens (or creates) the store directory, re-admits any jobs that
// were queued when the previous process stopped, and starts the
// workers. The store is stamped with the configuration fingerprint
// (Table 1 machine + workload suite); a directory written under
// different parameters is refused.
func New(cfg Config) (*Server, error) {
	if cfg.StoreDir == "" {
		return nil, errors.New("service: Config.StoreDir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.FS == nil {
		cfg.FS = vfs.OS{}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.TraceCap <= 0 {
		cfg.TraceCap = 256
	}
	if cfg.CorpusDir != "" {
		if err := experiments.SetTraceCorpus(cfg.CorpusDir); err != nil {
			return nil, err
		}
	}
	fp := experiments.ConfigFingerprint(config.Default(1))
	store, err := experiments.OpenCheckpointFS(cfg.FS, cfg.StoreDir, fp)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		fsys:    cfg.FS,
		fp:      fp,
		pool:    experiments.NewPool(cfg.Workers),
		prog:    telemetry.NewPoolProgress(0),
		q:       newJobQueue(),
		store:   store,
		jobs:    make(map[string]*Job),
		byKey:   make(map[string]*Job),
		stopc:   make(chan struct{}),
		started: time.Now(),
	}
	s.pool.SetProgress(s.prog)
	s.obs = newServerObs(s)
	if err := s.recoverQueue(); err != nil {
		store.Close()
		return nil, err
	}
	if !cfg.RemoteExec {
		for i := 0; i < cfg.Workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	}
	go s.probeLoop()
	return s, nil
}

// idOf derives the content-addressed job id from the canonical key.
// Deterministic, so ids survive restarts and re-submissions.
func idOf(key string) string {
	h := sha256.Sum256([]byte(key))
	return "j" + hex.EncodeToString(h[:8])
}

// admitTrace creates and registers a job's trace: an "admit" mark
// carrying the disposition, plus — for jobs that will actually queue —
// the open queue-wait span the worker closes. Called with s.mu held
// (j.seq was just assigned, making the trace id unique per admission).
func (s *Server) admitTrace(j *Job, disposition string, queued bool) {
	tr := obs.NewTrace(fmt.Sprintf("t%06d", j.seq), j.id)
	j.trace = tr
	j.admittedNS = time.Now().UnixNano()
	tr.Mark("admit", map[string]string{"disposition": disposition, "kind": j.spec.Kind})
	if queued {
		j.queueSpan = tr.Start("queue-wait")
	}
	s.obs.rec.Add(tr)
}

// queueRecord is one admission-log line.
type queueRecord struct {
	Key  string  `json:"key"`
	Spec JobSpec `json:"spec"`
}

// recoverQueue replays the admission log: every admitted job whose key
// is not yet in the result store is re-admitted (queued, original
// priority); finished ones are dropped. The log is then compacted to
// the survivors, so it cannot grow without bound across restarts.
func (s *Server) recoverQueue() error {
	path := filepath.Join(s.cfg.StoreDir, queueFile)
	data, err := s.fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	var live []queueRecord
	seen := make(map[string]bool)
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec queueRecord
		if json.Unmarshal(line, &rec) != nil {
			continue // torn tail from a kill mid-append
		}
		if seen[rec.Key] || s.store.Has(rec.Key) {
			continue
		}
		if rec.Spec.normalize() != nil || rec.Spec.key() != rec.Key {
			continue // log written by an incompatible build
		}
		seen[rec.Key] = true
		live = append(live, rec)
	}
	// Compact: rewrite the log with only the survivors, crash-
	// atomically (write-tmp, fsync, rename, fsync-dir).
	var buf bytes.Buffer
	for _, rec := range live {
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := vfs.WriteFileAtomic(s.fsys, path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	f, err := s.fsys.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.queueLog = f
	for _, rec := range live {
		s.seq++
		j := &Job{
			id:    idOf(rec.Key),
			key:   rec.Key,
			spec:  rec.Spec,
			seq:   s.seq,
			state: StateQueued,
			feed:  telemetry.NewJobFeed(),
		}
		s.jobs[j.id] = j
		s.byKey[j.key] = j
		s.admitTrace(j, "restored", true)
		s.q.push(j)
		s.obs.gQueueHWM.SetMax(int64(s.q.len()))
		s.mRestored.Add(1)
	}
	return nil
}

// Submit validates and admits one job. The returned Disposition says
// whether the submission created a fresh job, joined an existing one,
// or was served from the warm store. Errors: *BadSpecError (400),
// ErrDraining (503), ErrQueueFull (429), or an I/O failure persisting
// the admission (500).
func (s *Server) Submit(spec JobSpec) (*Job, Disposition, error) {
	if err := spec.normalize(); err != nil {
		return nil, DispNew, &BadSpecError{Err: err}
	}
	key := spec.key()
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.byKey[key]; ok && j.state != StateFailed {
		s.mDeduped.Add(1)
		if j.trace != nil {
			j.trace.Mark("admit", map[string]string{"disposition": "deduped"})
		}
		return j, DispDeduped, nil
	}
	if j, ok := s.jobFromStore(key, spec); ok {
		s.mStoreHits.Add(1)
		s.jobs[j.id] = j
		s.byKey[key] = j
		s.admitTrace(j, "cached", false)
		return j, DispCached, nil
	}
	if s.draining.Load() {
		s.mRejectedDrng.Add(1)
		return nil, DispNew, ErrDraining
	}
	if s.degraded.Load() {
		s.mRejectedDegr.Add(1)
		return nil, DispNew, ErrDegraded
	}
	if s.q.len() >= s.cfg.QueueCap {
		s.mRejectedFull.Add(1)
		return nil, DispNew, ErrQueueFull
	}
	// Persist the admission — write AND fsync — before acknowledging
	// it: an accepted job survives any crash from here on (re-admitted
	// by recoverQueue). A failing append flips the server into
	// degraded mode instead of acknowledging a job the disk never saw.
	rec, err := json.Marshal(queueRecord{Key: key, Spec: spec})
	if err != nil {
		return nil, DispNew, err
	}
	if _, err := s.queueLog.Write(append(rec, '\n')); err != nil {
		s.enterDegradedLocked(fmt.Errorf("persisting admission: %w", err))
		return nil, DispNew, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	if err := s.queueLog.Sync(); err != nil {
		s.enterDegradedLocked(fmt.Errorf("syncing admission: %w", err))
		return nil, DispNew, fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	s.seq++
	j := &Job{
		id:    idOf(key),
		key:   key,
		spec:  spec,
		seq:   s.seq,
		state: StateQueued,
		feed:  telemetry.NewJobFeed(),
	}
	s.jobs[j.id] = j
	s.byKey[key] = j
	s.admitTrace(j, "new", true)
	s.q.push(j)
	s.obs.gQueueHWM.SetMax(int64(s.q.len()))
	s.mSubmitted.Add(1)
	return j, DispNew, nil
}

// jobFromStore materializes a done job from the warm result store.
// Called with s.mu held.
func (s *Server) jobFromStore(key string, spec JobSpec) (*Job, bool) {
	var payload []byte
	switch spec.Kind {
	case KindFigure:
		blob, ok := s.store.GetBlob(key)
		if !ok {
			return nil, false
		}
		payload = blob
	default:
		res, samples, ok := s.store.Get(key)
		if !ok {
			return nil, false
		}
		payload = marshalEnvelope(JobResult{Kind: KindSingle, Result: &res, SamplesJSONL: string(samples)})
	}
	s.seq++
	j := &Job{
		id:     idOf(key),
		key:    key,
		spec:   spec,
		seq:    s.seq,
		state:  StateDone,
		cached: true,
		result: payload,
		feed:   telemetry.NewJobFeed(),
	}
	j.feed.Finish()
	return j, true
}

// marshalEnvelope encodes a result envelope; the payload is plain
// exported data, so Marshal cannot fail.
func marshalEnvelope(env JobResult) []byte {
	b, err := json.Marshal(env)
	if err != nil {
		panic(fmt.Sprintf("service: encoding job result: %v", err))
	}
	return b
}

// Lookup finds a job by id.
func (s *Server) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Status snapshots one job.
func (s *Server) Status(j *Job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked(j)
}

func (s *Server) statusLocked(j *Job) JobStatus {
	st := JobStatus{
		ID:       j.id,
		Key:      j.key,
		Kind:     j.spec.Kind,
		State:    j.state,
		Priority: j.spec.Priority,
		Cached:   j.cached,
		Error:    j.errMsg,
		Failed:   j.failedTable,
		Trace:    j.TraceID(),
	}
	if j.runner != nil {
		st.Instructions = j.runner.SimulatedInstructions()
	} else {
		st.Instructions = j.feed.Instructions()
	}
	return st
}

// Jobs lists every known job in admission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	js := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		js = append(js, j)
	}
	sort.Slice(js, func(i, k int) bool { return js[i].seq < js[k].seq })
	for _, j := range js {
		out = append(out, s.statusLocked(j))
	}
	return out
}

// Result returns a done job's marshaled JobResult envelope.
func (s *Server) Result(j *Job) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// worker executes jobs until the queue closes (drain).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.q.pop()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

func (s *Server) setState(j *Job, st State) {
	s.mu.Lock()
	j.state = st
	s.mu.Unlock()
}

func (s *Server) runJob(j *Job) {
	s.setState(j, StateRunning)
	s.mRunning.Add(1)
	defer s.mRunning.Add(-1)
	s.obs.gInflightHWM.SetMax(s.mRunning.Value())
	j.queueSpan.End()
	if j.admittedNS > 0 {
		s.obs.hQueueWait.Observe(uint64(time.Now().UnixNano() - j.admittedNS))
	}
	if gate := s.cfg.Gate; gate != nil {
		gate(j.key)
	}
	var runSpan obs.SpanRef
	if j.trace != nil {
		runSpan = j.trace.Start("run")
		runSpan.Annotate("kind", j.spec.Kind)
	}
	switch j.spec.Kind {
	case KindFigure:
		s.runFigure(j, runSpan)
	default:
		s.runSingle(j, runSpan)
	}
}

// runSingle executes one RunSpec on the shared pool under the
// configured watchdog, streams progress and samples to the job's
// feed, and persists the result in the content-addressed store. The
// run span records the warmup→measure boundary (the sampler's first
// streamed sample, which the simulator emits only inside the
// measurement window) and any watchdog cancellation.
func (s *Server) runSingle(j *Job, runSpan obs.SpanRef) {
	spec := *j.spec.Run
	var hooks *telemetry.Hooks
	mkHooks := func() *telemetry.Hooks {
		h := &telemetry.Hooks{Progress: telemetry.Tee(j.feed, s.prog)}
		if spec.SampleEvery > 0 {
			sam := telemetry.NewSampler(spec.SampleEvery)
			if tr := j.trace; tr != nil {
				var measured sync.Once
				sam.Stream(func(smp telemetry.Sample) {
					measured.Do(func() { tr.Mark("measure-start", nil) })
					j.feed.OnSample(smp)
				})
			} else {
				sam.Stream(j.feed.OnSample)
			}
			h.Sampler = sam
		}
		if s.cfg.Deadline > 0 || s.cfg.Stall > 0 {
			// Pre-attach the watch (Guarded reuses it) so a watchdog
			// abort lands on the run span with its reason.
			w := telemetry.NewRunWatch()
			w.NotifyCancel(func(reason string) { runSpan.Annotate("cancelled", reason) })
			h.Watch = w
		}
		hooks = h
		return h
	}
	runStart := time.Now()
	fut := experiments.Go(s.pool, func() sim.Result {
		return experiments.Guarded(j.key, s.cfg.Deadline, s.cfg.Stall, mkHooks, func(h *telemetry.Hooks) sim.Result {
			res, err := spec.Run(h)
			if err != nil {
				panic(err)
			}
			s.prog.RunDone()
			return res
		})
	})
	res, rerr := fut.Result()
	s.obs.hRun.Observe(uint64(time.Since(runStart)))
	runSpan.End()
	if rerr != nil {
		s.fail(j, rerr.Error())
		return
	}
	var samples []byte
	if hooks != nil && hooks.Sampler != nil {
		var buf bytes.Buffer
		if err := hooks.Sampler.WriteJSONL(&buf); err == nil {
			samples = buf.Bytes()
		}
	}
	s.persistTraced(j, pendingResult{key: j.key, res: res, samples: samples})
	s.complete(j, marshalEnvelope(JobResult{Kind: KindSingle, Result: &res, SamplesJSONL: string(samples)}), false)
}

// runFigure executes one registry experiment with a fresh Runner on
// the shared pool. A failed table (error rows) completes the job but
// is never stored: a transient failure must not be served forever.
func (s *Server) runFigure(j *Job, runSpan obs.SpanRef) {
	e, _ := experiments.ByID(j.spec.Figure)
	p := j.spec.Scale.params()
	p.Deadline, p.StallTimeout = s.cfg.Deadline, s.cfg.Stall
	runner := experiments.NewRunnerPool(p, s.pool)
	s.mu.Lock()
	j.runner = runner
	s.mu.Unlock()
	runStart := time.Now()
	table := experiments.RunOne(runner, e)
	s.obs.hRun.Observe(uint64(time.Since(runStart)))
	if table.Failed {
		runSpan.Annotate("failed_table", "true")
	}
	runSpan.End()
	payload := marshalEnvelope(JobResult{Kind: KindFigure, Table: table})
	if !table.Failed {
		s.persistTraced(j, pendingResult{key: j.key, isBlob: true, blob: payload})
	}
	s.complete(j, payload, table.Failed)
}

// persistTraced wraps persist in the job's store-put span and latency
// histogram.
func (s *Server) persistTraced(j *Job, p pendingResult) {
	var span obs.SpanRef
	if j.trace != nil {
		span = j.trace.Start("store-put")
	}
	start := time.Now()
	s.persist(p)
	s.obs.hStorePut.Observe(uint64(time.Since(start)))
	span.End()
}

// persist writes one completed result to the store. On failure the
// result is preserved in memory (the job still completes and serves)
// and the server degrades to read-only until the recovery probe gets
// it — and everything else pending — durably onto disk.
func (s *Server) persist(p pendingResult) {
	s.mu.Lock()
	store := s.store
	s.mu.Unlock()
	if store == nil {
		return
	}
	var err error
	if p.isBlob {
		err = store.PutBlob(p.key, p.blob)
	} else {
		err = store.Put(p.key, p.res, p.samples)
	}
	if err != nil {
		s.mu.Lock()
		s.pending = append(s.pending, p)
		s.mu.Unlock()
		s.enterDegraded(fmt.Errorf("persisting result %s: %w", p.key, err))
	}
}

// enterDegraded flips the server read-only and records why. The
// transition is sticky until tryRecover proves the disk healthy and
// flushes every preserved result.
func (s *Server) enterDegraded(cause error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enterDegradedLocked(cause)
}

// enterDegradedLocked is enterDegraded for callers already holding
// s.mu (Submit fails mid-admission with the lock held).
func (s *Server) enterDegradedLocked(cause error) {
	s.mStoreErrors.Add(1)
	s.degradedCause = cause.Error()
	if s.degraded.CompareAndSwap(false, true) {
		s.mDegradedIn.Add(1)
		s.obs.degradeEnter()
		// The incident joins the flight recorder's timeline, then the
		// whole recorder is dumped (if configured): the trace context
		// around a store fault should survive even if the process dies
		// before anyone scrapes /debug/trace.
		s.obs.rec.Incident("degraded-enter", map[string]string{"cause": cause.Error()})
		s.obs.dumpFlight(s.cfg.TraceLog, cause.Error())
	}
}

// Degraded reports whether the server is in read-only degraded mode.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// DegradedCause returns the last store failure that degraded the
// server (empty when it has never degraded).
func (s *Server) DegradedCause() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degradedCause
}

// probeLoop periodically attempts recovery while degraded. It runs
// for the server's lifetime and stops at Close.
func (s *Server) probeLoop() {
	t := time.NewTicker(s.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopc:
			return
		case <-t.C:
			if s.degraded.Load() {
				s.tryRecover()
			}
		}
	}
}

// tryRecover probes the disk (store and admission-log fsync) and, if
// it responds, re-persists the preserved results in completion order.
// Only when everything pending is durable does the server return to
// service; a mid-flush failure leaves it degraded for the next probe.
func (s *Server) tryRecover() {
	s.mu.Lock()
	store, qlog := s.store, s.queueLog
	pending := append([]pendingResult(nil), s.pending...)
	s.mu.Unlock()
	if store == nil {
		return
	}
	if err := store.Sync(); err != nil {
		return
	}
	if qlog != nil {
		if err := qlog.Sync(); err != nil {
			return
		}
	}
	flushed := 0
	for _, p := range pending {
		var err error
		if p.isBlob {
			err = store.PutBlob(p.key, p.blob)
		} else {
			err = store.Put(p.key, p.res, p.samples)
		}
		if err != nil {
			break
		}
		flushed++
	}
	s.mu.Lock()
	s.pending = s.pending[flushed:]
	remaining := len(s.pending)
	s.mu.Unlock()
	if flushed < len(pending) || remaining > 0 {
		return
	}
	store.ClearErr()
	if s.degraded.CompareAndSwap(true, false) {
		s.mRecovered.Add(1)
		s.obs.degradeExit()
		s.obs.rec.Incident("degraded-recovered",
			map[string]string{"flushed": fmt.Sprintf("%d", flushed)})
	}
}

func (s *Server) complete(j *Job, payload []byte, failedTable bool) {
	s.mu.Lock()
	j.state = StateDone
	j.result = payload
	j.failedTable = failedTable
	s.mu.Unlock()
	j.feed.Finish()
	s.mCompleted.Add(1)
	if j.admittedNS > 0 {
		s.obs.hSubmitToResult.Observe(uint64(time.Now().UnixNano() - j.admittedNS))
	}
	if j.trace != nil {
		j.trace.Mark("done", nil)
	}
}

func (s *Server) fail(j *Job, msg string) {
	s.mu.Lock()
	j.state = StateFailed
	j.errMsg = msg
	s.mu.Unlock()
	j.feed.Finish()
	s.mFailed.Add(1)
	if j.admittedNS > 0 {
		s.obs.hSubmitToResult.Observe(uint64(time.Now().UnixNano() - j.admittedNS))
	}
	if j.trace != nil {
		j.trace.Mark("failed", map[string]string{"error": msg})
	}
}

// DrainStats reports what a drain left behind.
type DrainStats struct {
	// Finished is how many jobs completed or failed over the server's
	// lifetime (in-flight ones included — Drain waits for them).
	Finished int64
	// Queued is how many admitted jobs remain persisted for the next
	// process to re-admit.
	Queued int
}

// Drain stops the server gracefully: new submissions are rejected
// with ErrDraining, in-flight jobs run to completion (and their
// results persist), and still-queued jobs are left in the admission
// log for the next process. Blocks until every worker has stopped.
func (s *Server) Drain() DrainStats {
	s.draining.Store(true)
	s.q.close()
	s.wg.Wait()
	return DrainStats{
		Finished: s.mCompleted.Value() + s.mFailed.Value(),
		Queued:   s.q.len(),
	}
}

// Draining reports whether Drain has been requested.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases the store and admission log and stops the recovery
// probe. Call after Drain; any latched store write error surfaces
// here.
func (s *Server) Close() error {
	s.stopOnce.Do(func() { close(s.stopc) })
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	if s.queueLog != nil {
		if err := s.queueLog.Close(); err != nil {
			first = err
		}
		s.queueLog = nil
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil && first == nil {
			first = err
		}
		s.store = nil
	}
	return first
}

// Restored returns how many queued jobs the server re-admitted from a
// previous process's admission log.
func (s *Server) Restored() int64 { return s.mRestored.Value() }

// faultCounters is implemented by fault-injecting filesystems
// (vfs.Faulty); when the configured FS has it, the injected-fault
// counts ride along in /metrics so a chaos run's observability can be
// asserted, not just its survival.
type faultCounters interface {
	Counters() map[string]int64
}

// MetricsSnapshot renders the service counters plus the live pool
// snapshot (the /metrics payload, also publishable via expvar.Func).
func (s *Server) MetricsSnapshot() map[string]any {
	s.mu.Lock()
	pendingN := len(s.pending)
	s.mu.Unlock()
	m := map[string]any{
		"submitted":         s.mSubmitted.Value(),
		"deduped":           s.mDeduped.Value(),
		"store_hits":        s.mStoreHits.Value(),
		"rejected_full":     s.mRejectedFull.Value(),
		"rejected_draining": s.mRejectedDrng.Value(),
		"rejected_degraded": s.mRejectedDegr.Value(),
		"completed":         s.mCompleted.Value(),
		"failed":            s.mFailed.Value(),
		"running":           s.mRunning.Value(),
		"restored":          s.mRestored.Value(),
		"queued":            s.q.len(),
		"queue_cap":         s.cfg.QueueCap,
		"workers":           s.cfg.Workers,
		"draining":          s.draining.Load(),
		"degraded":          s.degraded.Load(),
		"store_errors":      s.mStoreErrors.Value(),
		"degraded_entered":  s.mDegradedIn.Value(),
		"recovered":         s.mRecovered.Value(),
		"pending_results":   pendingN,
		"store_quarantined": s.storeQuarantined(),
		"uptime_seconds":    time.Since(s.started).Seconds(),
		"store_len":         s.storeLen(),
		"pool":              s.prog.Snapshot(),
		// degraded_seconds_total and the obs section are the registry's
		// metrics (latency histograms, HWM gauges) rendered as JSON —
		// the same series /metrics serves as Prometheus text.
		"degraded_seconds_total": s.obs.degradedSeconds(),
		"obs":                    s.obs.reg.Snapshot(),
	}
	if fc, ok := s.fsys.(faultCounters); ok {
		m["fs_faults"] = fc.Counters()
	}
	return m
}

func (s *Server) storeLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return 0
	}
	return s.store.Len()
}

func (s *Server) storeQuarantined() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return 0
	}
	return s.store.Quarantined()
}
