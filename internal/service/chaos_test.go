package service

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/vfs"
)

// chaosSpecs is the workload the chaos harness pushes through every
// cycle: distinct seeds give distinct content keys.
func chaosSpecs() []JobSpec {
	specs := make([]JobSpec, 6)
	for i := range specs {
		specs[i] = tinySpec(uint64(i + 1))
	}
	return specs
}

// keyOf canonicalizes a spec to its content key (test helper).
func keyOf(t *testing.T, spec JobSpec) string {
	t.Helper()
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	return spec.key()
}

// waitTerminal polls a job until done or failed.
func waitTerminal(t *testing.T, srv *Server, j *Job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Status(j)
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", j.ID())
	return JobStatus{}
}

// TestChaosKillRestartLoop is the crash-consistency harness: the
// service runs over a crashable in-memory disk with a seeded fault
// schedule (failed and torn writes, failed fsyncs), and is killed —
// power off, then a crash that keeps only fsynced bytes plus a random
// torn prefix — and restarted, three times. Invariants checked across
// every cycle:
//
//   - no acknowledged job is lost: after each restart, every job whose
//     submission was acknowledged is either durably in the result
//     store or re-admitted from the admission log;
//   - no cell is simulated twice: once a key's result is durable in
//     the store, no later cycle ever re-simulates it;
//   - byte-identical results: after the disk heals, resubmitting the
//     whole workload yields result payloads identical to a fault-free
//     baseline run.
func TestChaosKillRestartLoop(t *testing.T) {
	specs := chaosSpecs()
	keys := make([]string, len(specs))
	for i, spec := range specs {
		keys[i] = keyOf(t, spec)
	}

	// Fault-free baseline on a pristine in-memory disk.
	baseline := make(map[string][]byte)
	{
		srv, err := New(Config{StoreDir: "store", FS: vfs.NewMem(7), Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, spec := range specs {
			j, _, err := srv.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			if st := waitTerminal(t, srv, j); st.State != StateDone {
				t.Fatalf("baseline job %s failed: %s", keys[i], st.Error)
			}
			payload, ok := srv.Result(j)
			if !ok {
				t.Fatalf("baseline job %s has no result", keys[i])
			}
			baseline[keys[i]] = payload
		}
		srv.Drain()
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The chaos disk, shared across every restart.
	mem := vfs.NewMem(1234)
	faulty := vfs.NewFaulty(mem, vfs.Plan{Seed: 1234})

	var mu sync.Mutex
	acked := make(map[string]bool)   // submissions the server acknowledged
	durable := make(map[string]bool) // keys seen in the store at a restart boundary
	simCount := make(map[string]int) // simulations per key, across all cycles
	gate := func(key string) {
		mu.Lock()
		defer mu.Unlock()
		simCount[key]++
		if durable[key] {
			t.Errorf("key %s re-simulated after its result was durable", key)
		}
	}

	const restarts = 3
	for cycle := 0; cycle <= restarts; cycle++ {
		// Every cycle starts on a healed disk (the fault schedule models
		// a failing run, not a failing mount).
		faulty.Heal()
		srv, err := New(Config{
			StoreDir:      "store",
			FS:            faulty,
			Workers:       2,
			ProbeInterval: 25 * time.Millisecond,
			Gate:          gate,
		})
		if err != nil {
			t.Fatalf("cycle %d: reopening the store after a crash: %v", cycle, err)
		}

		// Invariants at the restart boundary: acknowledged jobs survived
		// (either durable or re-admitted), and durable keys are recorded
		// so the gate can catch any re-simulation.
		mu.Lock()
		for _, key := range keys {
			if srv.store.Has(key) {
				durable[key] = true
			}
		}
		for key := range acked {
			srv.mu.Lock()
			_, inFlight := srv.byKey[key]
			srv.mu.Unlock()
			if !srv.store.Has(key) && !inFlight {
				t.Errorf("cycle %d: acknowledged job %s lost across the crash", cycle, key)
			}
		}
		mu.Unlock()

		if cycle < restarts {
			// Chaotic cycle: some writes and fsyncs fail (some torn), then
			// the machine dies mid-flight.
			faulty.SetPlan(vfs.Plan{Seed: int64(1000 + cycle), PWrite: 0.3, PSync: 0.3, ShortWrites: true})
			var jobs []*Job
			for _, spec := range specs {
				j, _, err := srv.Submit(spec)
				if err != nil {
					continue // degraded/faulted submit: never acknowledged
				}
				mu.Lock()
				acked[j.key] = true
				mu.Unlock()
				jobs = append(jobs, j)
			}
			// Let roughly half the work land, then pull the plug.
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				done := 0
				for _, j := range jobs {
					st := srv.Status(j)
					if st.State == StateDone || st.State == StateFailed {
						done++
					}
				}
				if done >= len(jobs)/2 {
					break
				}
				time.Sleep(2 * time.Millisecond)
			}
			// Observability invariant: if this cycle's faults degraded the
			// server, the flight recorder must hold the triggering fault
			// as a degraded-enter incident with a cause.
			if srv.mDegradedIn.Value() > 0 {
				found := false
				for _, d := range srv.FlightRecorder().DumpAll() {
					for _, sp := range d.Spans {
						if sp.Name == "degraded-enter" && sp.Attrs["cause"] != "" {
							found = true
						}
					}
				}
				if !found {
					t.Errorf("cycle %d: server degraded but the flight recorder captured no incident", cycle)
				}
			}
			faulty.PowerOff()
			srv.Drain()
			srv.Close() // error expected: the disk is "gone"
			mem.Crash()
			faulty.PowerOn()
			continue
		}

		// Final cycle: healed disk, full workload, byte-exact results.
		for i, spec := range specs {
			j, _, err := srv.Submit(spec)
			if err != nil {
				t.Fatalf("final cycle: submitting %s: %v", keys[i], err)
			}
			if st := waitTerminal(t, srv, j); st.State != StateDone {
				t.Fatalf("final cycle: job %s failed: %s", keys[i], st.Error)
			}
			payload, ok := srv.Result(j)
			if !ok {
				t.Fatalf("final cycle: job %s has no result", keys[i])
			}
			if !bytes.Equal(payload, baseline[keys[i]]) {
				t.Errorf("final cycle: result for %s differs from the fault-free baseline", keys[i])
			}
		}
		srv.Drain()
		if err := srv.Close(); err != nil {
			t.Fatalf("final cycle: close: %v", err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	for _, key := range keys {
		if simCount[key] < 1 {
			t.Errorf("key %s was never simulated", key)
		}
	}
	if fc := faulty.Counters(); fc["write"]+fc["sync"] == 0 {
		t.Error("fault schedule injected nothing; the chaos run exercised no faults")
	}
}
