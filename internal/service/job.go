// Package service turns the experiment engine into shared
// infrastructure: a job-oriented simulation server with a bounded
// admission queue (backpressure instead of collapse), per-job
// priorities, single-flight dedup on the canonical spec key, a
// content-addressed result store that refuses results simulated under
// different parameters (experiments.Checkpoint + config fingerprint),
// live per-job telemetry over SSE, and graceful drain: in-flight jobs
// finish, queued jobs persist and are re-admitted on restart.
//
// cmd/triaged exposes a Server over HTTP; cmd/triagectl is the client.
package service

import (
	"fmt"
	"sync"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Job kinds.
const (
	// KindSingle is one benchmark x prefetcher run (the triagesim
	// shape, experiments.RunSpec).
	KindSingle = "single"
	// KindFigure is one whole experiment from the paper registry
	// (experiments.ByID), run on the server's shared pool.
	KindFigure = "figure"
)

// State is a job's lifecycle phase.
type State string

// Job states. Queued jobs survive a restart (re-admitted from the
// store directory); running jobs finish before a drain completes; done
// and failed are terminal.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// JobSpec is the submission wire format. Exactly one of Run (single
// jobs) or Figure (figure jobs) is set. Priority orders admission:
// higher runs first, ties FIFO. Priority is not part of the job's
// identity — a re-submission at a different priority dedups onto the
// existing job.
type JobSpec struct {
	Kind     string               `json:"kind,omitempty"`
	Run      *experiments.RunSpec `json:"run,omitempty"`
	Figure   string               `json:"figure,omitempty"`
	Scale    *FigureScale         `json:"scale,omitempty"`
	Priority int                  `json:"priority,omitempty"`
}

// FigureScale is the JSON-safe subset of experiments.Params a figure
// job may override (zero fields keep the quick defaults). It mirrors
// the cmd/experiments override flags.
type FigureScale struct {
	Warmup       uint64 `json:"warmup,omitempty"`
	Measure      uint64 `json:"measure,omitempty"`
	MultiWarmup  uint64 `json:"multi_warmup,omitempty"`
	MultiMeasure uint64 `json:"multi_measure,omitempty"`
	Mixes        int    `json:"mixes,omitempty"`
	Seed         uint64 `json:"seed,omitempty"`
	SampleEvery  uint64 `json:"sample_every,omitempty"`
}

// Params resolves the scale against the quick defaults for callers
// outside the package (the cluster worker runs figure jobs with the
// exact parameters the coordinator's local path would have used).
func (fs *FigureScale) Params() experiments.Params { return fs.params() }

// params resolves the scale against the quick defaults, the same way
// cmd/experiments resolves its override flags. Safe on a nil receiver.
func (fs *FigureScale) params() experiments.Params {
	p := experiments.DefaultParams()
	if fs == nil {
		return p
	}
	if fs.Warmup > 0 {
		p.Warmup = fs.Warmup
	}
	if fs.Measure > 0 {
		p.Measure = fs.Measure
	}
	if fs.MultiWarmup > 0 {
		p.MultiWarmup = fs.MultiWarmup
	}
	if fs.MultiMeasure > 0 {
		p.MultiMeasure = fs.MultiMeasure
	}
	if fs.Mixes > 0 {
		p.Mixes = fs.Mixes
	}
	if fs.Seed > 0 {
		p.Seed = fs.Seed
	}
	if fs.SampleEvery > 0 {
		p.SampleEvery = fs.SampleEvery
	}
	return p
}

// normalize canonicalizes the spec in place and validates it, so that
// equivalent submissions map to the same content key.
func (s *JobSpec) normalize() error {
	switch s.Kind {
	case "", KindSingle:
		s.Kind = KindSingle
		if s.Run == nil {
			return fmt.Errorf("single job: missing \"run\" spec")
		}
		s.Figure, s.Scale = "", nil
		s.Run.Normalize()
		// CheckEvery is a local debug knob, not a job property: it does
		// not change results and is excluded from the content key, so it
		// must not ride in over the wire either.
		s.Run.CheckEvery = 0
		return s.Run.Validate()
	case KindFigure:
		if s.Figure == "" {
			return fmt.Errorf("figure job: missing \"figure\" id")
		}
		if _, ok := experiments.ByID(s.Figure); !ok {
			return fmt.Errorf("unknown figure %q", s.Figure)
		}
		s.Run = nil
		return nil
	default:
		return fmt.Errorf("unknown job kind %q (want %q or %q)", s.Kind, KindSingle, KindFigure)
	}
}

// key returns the spec's canonical content key: every parameter that
// shapes the result, none that don't. Call after normalize.
func (s JobSpec) key() string {
	switch s.Kind {
	case KindFigure:
		p := s.Scale.params()
		return fmt.Sprintf("figure/%s/w%d/m%d/mw%d/mm%d/x%d/s%d/t%d",
			s.Figure, p.Warmup, p.Measure, p.MultiWarmup, p.MultiMeasure, p.Mixes, p.Seed, p.SampleEvery)
	default:
		return "single/" + s.Run.Key()
	}
}

// Job is one admitted submission. All mutable fields are guarded by
// the server's mutex; the feed carries the live telemetry fan-out.
type Job struct {
	id   string
	key  string
	spec JobSpec
	seq  uint64

	state       State
	cached      bool
	errMsg      string
	failedTable bool
	result      []byte // marshaled JobResult envelope, set when done

	feed   *telemetry.JobFeed
	runner *experiments.Runner // figure jobs: instruction-count source

	// trace is the job's span record (admit → queue-wait → run →
	// store-put → result-served), held by the server's flight recorder.
	// queueSpan is opened at admission and closed by the worker;
	// admittedNS stamps admission for the latency histograms;
	// servedOnce marks the result-served span exactly once.
	trace      *obs.Trace
	queueSpan  obs.SpanRef
	remoteSpan obs.SpanRef // run span of a remotely-executing job
	admittedNS int64
	servedOnce sync.Once
}

// ID returns the job's content-addressed id (stable across restarts
// and re-submissions of the same spec).
func (j *Job) ID() string { return j.id }

// TraceID returns the job's trace id ("" when the job predates the
// recorder or tracing is off).
func (j *Job) TraceID() string {
	if j.trace == nil {
		return ""
	}
	return j.trace.ID()
}

// JobStatus is the status wire format.
type JobStatus struct {
	ID       string `json:"id"`
	Key      string `json:"key"`
	Kind     string `json:"kind"`
	State    State  `json:"state"`
	Priority int    `json:"priority"`
	// Cached marks a job satisfied from the warm result store without
	// simulating.
	Cached bool `json:"cached,omitempty"`
	// Instructions is the live retired-instruction count (progress).
	Instructions uint64 `json:"instructions"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Failed marks a done figure job whose table carries error rows.
	Failed bool `json:"failed,omitempty"`
	// Trace is the job's trace id, fetchable at /debug/trace/{trace}.
	Trace string `json:"trace,omitempty"`
}

// SubmitResponse is the submission wire format: the job's id plus how
// the submission was disposed (fresh admission, dedup onto an
// in-flight job, or served from the warm store).
type SubmitResponse struct {
	ID      string `json:"id"`
	Key     string `json:"key"`
	State   State  `json:"state"`
	Cached  bool   `json:"cached,omitempty"`
	Deduped bool   `json:"deduped,omitempty"`
	// Trace is the trace id assigned at admission; the span record is
	// fetchable at /debug/trace/{trace} (or by job id) while the
	// flight recorder still holds it.
	Trace string `json:"trace,omitempty"`
}

// JobResult is the result wire format. Single jobs carry the
// simulation result (encoded/decoded losslessly — uint64 exact,
// float64 shortest-round-trip) plus the sampled JSONL series when the
// spec asked for one; figure jobs carry the rendered table.
type JobResult struct {
	Kind         string             `json:"kind"`
	Result       *sim.Result        `json:"result,omitempty"`
	SamplesJSONL string             `json:"samples_jsonl,omitempty"`
	Table        *experiments.Table `json:"table,omitempty"`
}
