package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
)

// tinySpec is a fast single-run job; vary seed to get distinct keys.
func tinySpec(seed uint64) JobSpec {
	return JobSpec{
		Kind: KindSingle,
		Run: &experiments.RunSpec{
			Bench: "mcf", PF: "none", Cores: 1,
			Warmup: 0, Measure: 30_000, Seed: seed, Degree: 1,
		},
	}
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{StoreDir: t.TempDir(), QueueCap: 8, Workers: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Drain()
		srv.Close()
	})
	return srv
}

// postJob submits a spec over HTTP and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, SubmitResponse) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	return resp, sr
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func TestSubmitRunFetch(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, sr := postJob(t, ts, tinySpec(1))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d, want 201", resp.StatusCode)
	}
	if sr.ID == "" || sr.Cached || sr.Deduped {
		t.Fatalf("submit response %+v, want fresh admission", sr)
	}
	st := waitDone(t, ts, sr.ID)
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
	}
	if st.Instructions == 0 {
		t.Error("done job reports zero instructions")
	}

	rr, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d, want 200", rr.StatusCode)
	}
	var jr JobResult
	if err := json.NewDecoder(rr.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Kind != KindSingle || jr.Result == nil {
		t.Fatalf("result envelope %+v, want a single-run result", jr)
	}
	if jr.Result.Cores[0].Instructions == 0 {
		t.Error("result carries no instructions")
	}
}

func TestUnknownJob404(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestBadSpec400(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	bad := []JobSpec{
		{Kind: KindSingle},                  // no run spec
		{Kind: "bogus"},                     // unknown kind
		{Kind: KindFigure},                  // no figure id
		{Kind: KindFigure, Figure: "fig99"}, // unknown figure
		tinyWith(func(r *experiments.RunSpec) { r.Bench = "bogus" }),
		tinyWith(func(r *experiments.RunSpec) { r.PF = "bogus" }),
		tinyWith(func(r *experiments.RunSpec) { r.Measure = 0 }),
	}
	for i, spec := range bad {
		resp, _ := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

func tinyWith(mutate func(*experiments.RunSpec)) JobSpec {
	s := tinySpec(1)
	mutate(s.Run)
	return s
}

// TestResultNotReady pins the 202 + Retry-After contract for a job
// that is still running.
func TestResultNotReady(t *testing.T) {
	gate := make(chan struct{})
	srv := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Gate = func(string) { <-gate }
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(gate)

	_, sr := postJob(t, ts, tinySpec(1))
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("result of unfinished job: status %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("202 response carries no Retry-After")
	}
}

// TestBackpressure429 fills the queue behind a gated worker and
// verifies the overflow submission is rejected with 429 + Retry-After.
func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	srv := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueCap = 1
		c.Gate = func(string) { <-gate }
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(gate)

	// First job: admitted, popped by the single worker, held at the gate.
	resp, sr := postJob(t, ts, tinySpec(1))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("job 1: status %d", resp.StatusCode)
	}
	waitState(t, srv, sr.ID, StateRunning)

	// Second job: fills the queue (cap 1).
	if resp, _ := postJob(t, ts, tinySpec(2)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("job 2: status %d", resp.StatusCode)
	}
	// Third: over capacity.
	resp3, _ := postJob(t, ts, tinySpec(3))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 response carries no Retry-After")
	}
}

func waitState(t *testing.T, srv *Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := srv.Lookup(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if srv.Status(j).State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

// TestDedupSingleFlight submits the same spec twice while the first is
// held in flight: the second joins it (same id, nothing re-simulated),
// even at a different priority.
func TestDedupSingleFlight(t *testing.T) {
	gate := make(chan struct{})
	srv := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.Gate = func(string) { <-gate }
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, sr1 := postJob(t, ts, tinySpec(1))
	spec2 := tinySpec(1)
	spec2.Priority = 9
	resp2, sr2 := postJob(t, ts, spec2)
	if resp2.StatusCode != http.StatusOK || !sr2.Deduped {
		t.Fatalf("duplicate submit: status %d resp %+v, want 200 deduped", resp2.StatusCode, sr2)
	}
	if sr2.ID != sr1.ID {
		t.Errorf("duplicate got id %s, want %s", sr2.ID, sr1.ID)
	}
	close(gate)
	waitDone(t, ts, sr1.ID)
	if got := srv.MetricsSnapshot()["completed"].(int64); got != 1 {
		t.Errorf("completed %d jobs, want 1 (dedup must not re-simulate)", got)
	}
}

// TestWarmStoreServes runs a job to completion, restarts the service on
// the same store directory, and verifies the resubmission is served
// from the warm store byte-identically, without simulating.
func TestWarmStoreServes(t *testing.T) {
	dir := t.TempDir()
	srv1, err := New(Config{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())
	_, sr1 := postJob(t, ts1, tinySpec(1))
	waitDone(t, ts1, sr1.ID)
	r1, err := ts1.Client().Get(ts1.URL + "/v1/jobs/" + sr1.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body1 := readAll(t, r1)
	ts1.Close()
	srv1.Drain()
	srv1.Close()

	srv2, err := New(Config{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	defer srv2.Drain()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, sr2 := postJob(t, ts2, tinySpec(1))
	if resp.StatusCode != http.StatusOK || !sr2.Cached {
		t.Fatalf("warm submit: status %d resp %+v, want 200 cached", resp.StatusCode, sr2)
	}
	if sr2.ID != sr1.ID {
		t.Errorf("warm job id %s, want %s (content-addressed ids are stable)", sr2.ID, sr1.ID)
	}
	r2, err := ts2.Client().Get(ts2.URL + "/v1/jobs/" + sr2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body2 := readAll(t, r2)
	if !bytes.Equal(body1, body2) {
		t.Error("warm-store result differs from the originally simulated one")
	}
	if got := srv2.MetricsSnapshot()["completed"].(int64); got != 0 {
		t.Errorf("warm serve simulated %d jobs, want 0", got)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
	}
	return buf.Bytes()
}

// TestFailedJobNotCachedOrStored aborts a job via a tiny deadline and
// verifies the failure is reported (409), never stored, and that a
// resubmission is admitted fresh rather than deduped onto the corpse.
func TestFailedJobNotCachedOrStored(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.Deadline = 15 * time.Millisecond
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	big := JobSpec{Kind: KindSingle, Run: &experiments.RunSpec{
		Bench: "mcf", PF: "none", Cores: 1, Warmup: 0, Measure: 500_000_000, Seed: 7, Degree: 1,
	}}
	_, sr := postJob(t, ts, big)
	st := waitDone(t, ts, sr.ID)
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("job ended %s (%q), want failed with a reason", st.State, st.Error)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sr.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("result of failed job: status %d, want 409", resp.StatusCode)
	}
	if srv.store.Has("single/" + big.Run.Key()) {
		t.Error("failed result was persisted to the store")
	}
	// Resubmission after failure must not dedup onto the failed job.
	resp2, sr2 := postJob(t, ts, big)
	if resp2.StatusCode != http.StatusCreated || sr2.Deduped || sr2.Cached {
		t.Errorf("resubmit after failure: status %d resp %+v, want fresh 201", resp2.StatusCode, sr2)
	}
	waitDone(t, ts, sr2.ID)
}

// TestFigureJob runs a whole registry experiment through the service
// and checks the rendered table arrives and is stored for warm serves.
func TestFigureJob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := JobSpec{Kind: KindFigure, Figure: "fig05", Scale: &FigureScale{
		Warmup: 10_000, Measure: 30_000, MultiWarmup: 10_000, MultiMeasure: 20_000, Mixes: 1,
	}}
	_, sr := postJob(t, ts, spec)
	st := waitDone(t, ts, sr.ID)
	if st.State != StateDone || st.Failed {
		t.Fatalf("figure job ended %+v", st)
	}
	var jr JobResult
	if err := json.Unmarshal(readAll(t, mustGet(t, ts, "/v1/jobs/"+sr.ID+"/result")), &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Kind != KindFigure || jr.Table == nil || len(jr.Table.Rows) == 0 {
		t.Fatalf("figure result envelope %+v, want a populated table", jr)
	}
	if !srv.store.Has(spec.key()) {
		t.Error("figure table not persisted for warm serves")
	}
}

func mustGet(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSSEEvents follows a job's event stream and requires progress and
// a final done event, with samples when the spec requests them.
func TestSSEEvents(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := tinySpec(1)
	spec.Run.Measure = 100_000
	spec.Run.SampleEvery = 20_000
	_, sr := postJob(t, ts, spec)
	resp := mustGet(t, ts, "/v1/jobs/"+sr.ID+"/events")
	body := readAll(t, resp)
	text := string(body)
	if !bytes.Contains(body, []byte("event: done")) {
		t.Errorf("stream carries no done event:\n%s", text)
	}
	if !bytes.Contains(body, []byte("event: sample")) {
		t.Errorf("stream carries no sample events:\n%s", text)
	}
	if !bytes.Contains(body, []byte("event: progress")) {
		t.Errorf("stream carries no progress events:\n%s", text)
	}
}

// TestMetricsEndpoint spot-checks the counters the smoke test relies on.
func TestMetricsEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, sr := postJob(t, ts, tinySpec(1))
	waitDone(t, ts, sr.ID)
	var m map[string]any
	if err := json.Unmarshal(readAll(t, mustGet(t, ts, "/metrics")), &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"submitted", "completed", "queued", "workers", "pool"} {
		if _, ok := m[k]; !ok {
			t.Errorf("metrics missing %q: %v", k, m)
		}
	}
	if m["submitted"].(float64) != 1 || m["completed"].(float64) != 1 {
		t.Errorf("metrics counted %v submitted / %v completed, want 1/1", m["submitted"], m["completed"])
	}
}

// TestDrainingRejects503 verifies the drain window rejects submissions.
func TestDrainingRejects503(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Drain()
	resp, _ := postJob(t, ts, tinySpec(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestJobsListing lists jobs in admission order.
func TestJobsListing(t *testing.T) {
	srv := newTestServer(t, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var ids []string
	for i := uint64(1); i <= 3; i++ {
		_, sr := postJob(t, ts, tinySpec(i))
		ids = append(ids, sr.ID)
	}
	for _, id := range ids {
		waitDone(t, ts, id)
	}
	var got []JobStatus
	if err := json.Unmarshal(readAll(t, mustGet(t, ts, "/v1/jobs")), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("listed %d jobs, want 3", len(got))
	}
	for i, st := range got {
		if st.ID != ids[i] {
			t.Errorf("listing[%d] = %s, want %s (admission order)", i, st.ID, ids[i])
		}
	}
}
