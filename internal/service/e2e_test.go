package service

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// TestServiceByteIdenticalToDirectRun is the tentpole acceptance
// criterion: a job submitted through the HTTP API returns a result —
// tables and sampled telemetry — byte-identical to running the same
// spec directly (the cmd/triagesim path), including when the result is
// later served from the warm store.
func TestServiceByteIdenticalToDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	spec := experiments.RunSpec{
		Bench: "cassandra", PF: "triage-dyn", Cores: 1,
		Warmup: 20_000, Measure: 120_000, Seed: 42, Degree: 1,
		SampleEvery: 30_000,
	}

	// Direct path: exactly what cmd/triagesim does.
	hooks := &telemetry.Hooks{Sampler: telemetry.NewSampler(spec.SampleEvery)}
	directRes, err := spec.Run(hooks)
	if err != nil {
		t.Fatal(err)
	}
	directJSON := experiments.EncodeResult(directRes)
	var directSamples bytes.Buffer
	if err := hooks.Sampler.WriteJSONL(&directSamples); err != nil {
		t.Fatal(err)
	}
	if directSamples.Len() == 0 {
		t.Fatal("direct run recorded no samples; the comparison would be vacuous")
	}

	// Service path.
	dir := t.TempDir()
	srv, err := New(Config{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	_, sr := postJob(t, ts, JobSpec{Kind: KindSingle, Run: &spec})
	st := waitDone(t, ts, sr.ID)
	if st.State != StateDone {
		t.Fatalf("service job ended %s (%s)", st.State, st.Error)
	}
	apiJSON, apiSamples := fetchEncoded(t, ts, sr.ID)
	if !bytes.Equal(directJSON, apiJSON) {
		t.Errorf("service result differs from direct run:\n--- direct ---\n%s\n--- service ---\n%s", directJSON, apiJSON)
	}
	if !bytes.Equal(directSamples.Bytes(), apiSamples) {
		t.Errorf("service sampled series differs from direct run:\n--- direct ---\n%s\n--- service ---\n%s",
			directSamples.Bytes(), apiSamples)
	}
	ts.Close()
	srv.Drain()
	srv.Close()

	// Warm-store path: a fresh server on the same directory serves the
	// stored result without simulating — still byte-identical.
	srv2, err := New(Config{StoreDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	defer srv2.Drain()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	_, sr2 := postJob(t, ts2, JobSpec{Kind: KindSingle, Run: &spec})
	if !sr2.Cached {
		t.Fatalf("restarted server did not serve from the warm store: %+v", sr2)
	}
	warmJSON, warmSamples := fetchEncoded(t, ts2, sr2.ID)
	if !bytes.Equal(directJSON, warmJSON) {
		t.Error("warm-store result differs from the direct run")
	}
	if !bytes.Equal(directSamples.Bytes(), warmSamples) {
		t.Error("warm-store sampled series differs from the direct run")
	}
	if got := srv2.MetricsSnapshot()["completed"].(int64); got != 0 {
		t.Errorf("warm serve simulated %d jobs, want 0", got)
	}
}

// fetchEncoded downloads a job's result envelope and re-encodes the
// sim.Result with the shared encoder — the same transformation
// triagectl applies before writing to disk.
func fetchEncoded(t *testing.T, ts *httptest.Server, id string) (resJSON, samples []byte) {
	t.Helper()
	var jr JobResult
	if err := json.Unmarshal(readAll(t, mustGet(t, ts, "/v1/jobs/"+id+"/result")), &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Result == nil {
		t.Fatal("result envelope carries no sim.Result")
	}
	return experiments.EncodeResult(*jr.Result), []byte(jr.SamplesJSONL)
}
