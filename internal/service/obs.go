package service

import (
	"encoding/json"
	"expvar"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// serverObs bundles the server's observability state: the metric
// registry behind GET /metrics (Prometheus text and the "obs" section
// of the JSON snapshot), the latency histograms on the job path, and
// the flight recorder behind GET /debug/trace.
type serverObs struct {
	reg *obs.Registry
	rec *obs.Recorder

	// Latency histograms record nanoseconds and export seconds.
	hQueueWait      *obs.Histogram // admission → run start
	hRun            *obs.Histogram // simulation wall time
	hStorePut       *obs.Histogram // durable result write
	hSubmitToResult *obs.Histogram // admission → job done/failed

	// High-water marks advance via Gauge.SetMax; the instantaneous
	// depth/in-flight values are GaugeFuncs over the live state.
	gQueueHWM    obs.Gauge
	gInflightHWM obs.Gauge

	// Degraded-time accounting: start is the unix-ns timestamp of the
	// current degraded episode (0 while healthy), accumNS the total of
	// finished episodes. degraded_seconds_total = accum + live episode.
	degradedStart atomic.Int64
	degradedNS    atomic.Int64
}

// newServerObs builds the registry for one server. Counter metrics
// bridge the existing expvar ints (one source of truth, two render
// paths); gauges read the live queue/pool state at scrape time.
func newServerObs(s *Server) *serverObs {
	o := &serverObs{reg: obs.NewRegistry(), rec: obs.NewRecorder(s.cfg.TraceCap)}
	r := o.reg
	cv := func(name, help string, v *expvar.Int) {
		r.CounterFunc(name, help, func() float64 { return float64(v.Value()) })
	}
	cv("triaged_submitted_total", "fresh jobs admitted", &s.mSubmitted)
	cv("triaged_deduped_total", "submissions joined onto an in-flight job", &s.mDeduped)
	cv("triaged_store_hits_total", "submissions served from the warm result store", &s.mStoreHits)
	cv("triaged_rejected_full_total", "submissions rejected with 429 (queue full)", &s.mRejectedFull)
	cv("triaged_rejected_draining_total", "submissions rejected during drain", &s.mRejectedDrng)
	cv("triaged_rejected_degraded_total", "submissions rejected while degraded", &s.mRejectedDegr)
	cv("triaged_completed_total", "jobs finished successfully", &s.mCompleted)
	cv("triaged_failed_total", "jobs finished in failure", &s.mFailed)
	cv("triaged_restored_total", "queued jobs re-admitted at startup", &s.mRestored)
	cv("triaged_store_errors_total", "store/admission-log write or sync failures", &s.mStoreErrors)
	cv("triaged_degraded_entered_total", "transitions into degraded mode", &s.mDegradedIn)
	cv("triaged_recovered_total", "recoveries out of degraded mode", &s.mRecovered)
	r.CounterFunc("triaged_degraded_seconds_total", "total wall-clock seconds spent degraded",
		func() float64 { return o.degradedSeconds() })

	r.GaugeFunc("triaged_queue_depth", "jobs queued, not yet running",
		func() float64 { return float64(s.q.len()) })
	r.GaugeFunc("triaged_inflight", "jobs currently running",
		func() float64 { return float64(s.mRunning.Value()) })
	r.GaugeFunc("triaged_queue_cap", "admission queue capacity",
		func() float64 { return float64(s.cfg.QueueCap) })
	r.GaugeFunc("triaged_workers", "worker pool size",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("triaged_degraded", "1 while the server is read-only degraded",
		func() float64 { return b2f(s.degraded.Load()) })
	r.GaugeFunc("triaged_draining", "1 once drain has been requested",
		func() float64 { return b2f(s.draining.Load()) })
	r.GaugeFunc("triaged_pending_results", "completed results awaiting durable write",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.pending))
		})
	r.GaugeFunc("triaged_store_len", "results in the content-addressed store",
		func() float64 { return float64(s.storeLen()) })
	r.GaugeFunc("triaged_uptime_seconds", "seconds since the server started",
		func() float64 { return time.Since(s.started).Seconds() })

	o.hQueueWait = r.Histogram("triaged_queue_wait_seconds",
		"admission to run start", 1e-9)
	o.hRun = r.Histogram("triaged_run_seconds",
		"simulation wall time", 1e-9)
	o.hStorePut = r.Histogram("triaged_store_put_seconds",
		"durable result write", 1e-9)
	o.hSubmitToResult = r.Histogram("triaged_submit_to_result_seconds",
		"admission to job completion", 1e-9)

	// Register the HWM gauges by address so SetMax callers and the
	// scrape path share the same cell.
	r.GaugeFunc("triaged_queue_depth_hwm", "queue depth high-water mark",
		func() float64 { return float64(o.gQueueHWM.Value()) })
	r.GaugeFunc("triaged_inflight_hwm", "in-flight high-water mark",
		func() float64 { return float64(o.gInflightHWM.Value()) })
	return o
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// degradedSeconds returns the cumulative degraded time, live episode
// included.
func (o *serverObs) degradedSeconds() float64 {
	ns := o.degradedNS.Load()
	if st := o.degradedStart.Load(); st != 0 {
		ns += time.Now().UnixNano() - st
	}
	return float64(ns) / 1e9
}

// degradeEnter stamps the start of a degraded episode.
func (o *serverObs) degradeEnter() { o.degradedStart.Store(time.Now().UnixNano()) }

// degradeExit folds the finished episode into the accumulator.
func (o *serverObs) degradeExit() {
	if st := o.degradedStart.Swap(0); st != 0 {
		o.degradedNS.Add(time.Now().UnixNano() - st)
	}
}

// dumpFlight writes the whole flight recorder to w as one JSON
// document (the same shape GET /debug/trace serves). Called on
// degraded-mode entry so the trace timeline leading up to the fault is
// preserved even if the process dies before anyone scrapes it.
func (o *serverObs) dumpFlight(w io.Writer, cause string) {
	if w == nil {
		return
	}
	enc := json.NewEncoder(w)
	enc.Encode(map[string]any{
		"event":  "flight-recorder-dump",
		"cause":  cause,
		"traces": o.rec.DumpAll(),
	})
}

// Registry exposes the server's metric registry (Prometheus text via
// WritePrometheus, JSON via Snapshot). Load harnesses scrape through
// it in-process.
func (s *Server) Registry() *obs.Registry { return s.obs.reg }

// FlightRecorder exposes the bounded trace ring behind /debug/trace.
func (s *Server) FlightRecorder() *obs.Recorder { return s.obs.rec }

// PoolProgress exposes the live pool counters (cmd/triaged wires them
// into the -debughttp expvar page).
func (s *Server) PoolProgress() *telemetry.PoolProgress { return s.prog }

// publishOnce guards process-global expvar names: expvar.Publish
// panics on duplicates, and tests construct many Servers per process.
var publishOnce sync.Once

// PublishExpvars publishes the server's counters under the "triaged."
// namespace so a -debughttp listener's /debug/vars shows them
// alongside the runtime's. First server wins; later calls are no-ops
// (expvar names are process-global).
func (s *Server) PublishExpvars() {
	publishOnce.Do(func() {
		for _, v := range []struct {
			name string
			v    *expvar.Int
		}{
			{"triaged.submitted", &s.mSubmitted},
			{"triaged.deduped", &s.mDeduped},
			{"triaged.store_hits", &s.mStoreHits},
			{"triaged.rejected_full", &s.mRejectedFull},
			{"triaged.rejected_draining", &s.mRejectedDrng},
			{"triaged.rejected_degraded", &s.mRejectedDegr},
			{"triaged.completed", &s.mCompleted},
			{"triaged.failed", &s.mFailed},
			{"triaged.running", &s.mRunning},
			{"triaged.restored", &s.mRestored},
			{"triaged.store_errors", &s.mStoreErrors},
			{"triaged.degraded_entered", &s.mDegradedIn},
			{"triaged.recovered", &s.mRecovered},
		} {
			expvar.Publish(v.name, v.v)
		}
		expvar.Publish("triaged.queue_depth", expvar.Func(func() any { return s.q.len() }))
		expvar.Publish("triaged.degraded_seconds", expvar.Func(func() any { return s.obs.degradedSeconds() }))
	})
}
