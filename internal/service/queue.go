package service

import (
	"container/heap"
	"sync"
)

// jobQueue is the bounded admission queue's ordering core: a priority
// heap (higher Priority first, FIFO within a priority) with blocking
// pop. Capacity is enforced by the server at submit time — the queue
// itself only orders and hands out work. close wakes every waiting
// worker and makes pop return nil immediately, *without* running the
// still-queued jobs: during a drain they stay queued (and persisted)
// for re-admission on restart.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  jobHeap
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a job and wakes one worker.
func (q *jobQueue) push(j *Job) {
	q.mu.Lock()
	heap.Push(&q.items, j)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a job is available or the queue is closed. It
// returns nil on close even if jobs remain queued (drain semantics).
func (q *jobQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.items) == 0 {
		q.cond.Wait()
	}
	if q.closed {
		return nil
	}
	return heap.Pop(&q.items).(*Job)
}

// len returns the number of queued (not yet popped) jobs.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops the queue: every blocked and future pop returns nil.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// snapshot returns the queued jobs in pop order (for drain reporting).
func (q *jobQueue) snapshot() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]*Job, len(q.items))
	copy(out, q.items)
	return out
}

// jobHeap orders by priority (desc), then admission sequence (asc).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].spec.Priority != h[j].spec.Priority {
		return h[i].spec.Priority > h[j].spec.Priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*Job)) }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
