package service

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func mkJob(id string, priority int, seq uint64) *Job {
	return &Job{id: id, spec: JobSpec{Priority: priority}, seq: seq}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue()
	q.push(mkJob("low-1", 0, 1))
	q.push(mkJob("high", 5, 2))
	q.push(mkJob("low-2", 0, 3))
	q.push(mkJob("mid", 3, 4))
	want := []string{"high", "mid", "low-1", "low-2"} // priority desc, FIFO within
	for _, w := range want {
		if got := q.pop(); got.id != w {
			t.Fatalf("pop = %s, want %s", got.id, w)
		}
	}
}

func TestQueueCloseUnblocksAndKeepsItems(t *testing.T) {
	q := newJobQueue()
	popped := make(chan *Job, 1)
	go func() { popped <- q.pop() }()
	time.Sleep(10 * time.Millisecond)
	q.push(mkJob("a", 0, 1))
	if j := <-popped; j == nil || j.id != "a" {
		t.Fatalf("blocked pop got %v, want job a", j)
	}
	// Drain semantics: close returns nil from pop even with items left.
	q.push(mkJob("b", 0, 2))
	q.close()
	if j := q.pop(); j != nil {
		t.Fatalf("pop after close = %v, want nil", j)
	}
	if q.len() != 1 {
		t.Fatalf("close dropped queued items: len %d, want 1", q.len())
	}
}

// TestConcurrentSubmitters hammers the admission path from many
// goroutines under -race: every distinct job is simulated exactly
// once, duplicates dedup, and nothing is lost.
func TestConcurrentSubmitters(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.QueueCap = 64
		c.Workers = 4
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const distinct = 12
	const submitters = 6
	var wg sync.WaitGroup
	ids := make([][]string, submitters)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := uint64(1); i <= distinct; i++ {
				resp, sr := postJob(t, ts, tinySpec(i))
				if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
					t.Errorf("submitter %d job %d: status %d", g, i, resp.StatusCode)
					continue
				}
				ids[g] = append(ids[g], sr.ID)
			}
		}(g)
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, list := range ids {
		for _, id := range list {
			seen[id] = true
			waitDone(t, ts, id)
		}
	}
	if len(seen) != distinct {
		t.Errorf("observed %d distinct job ids, want %d", len(seen), distinct)
	}
	m := srv.MetricsSnapshot()
	if got := m["completed"].(int64); got != distinct {
		t.Errorf("completed %d simulations, want %d (dedup must collapse the rest)", got, distinct)
	}
	if srv.storeLen() != distinct {
		t.Errorf("store holds %d results, want %d", srv.storeLen(), distinct)
	}
}

// TestDrainPersistsQueuedJobs is the ISSUE acceptance scenario: under
// mixed load, a drain lets in-flight jobs complete, queued jobs survive
// the restart, and no job is lost or simulated twice.
func TestDrainPersistsQueuedJobs(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	started := make(chan string, 8)
	srv1, err := New(Config{
		StoreDir: dir, QueueCap: 8, Workers: 1,
		Gate: func(key string) { started <- key; <-gate },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// One job in flight (held at the gate), three more queued behind it.
	var ids []string
	for i := uint64(1); i <= 4; i++ {
		resp, sr := postJob(t, ts1, tinySpec(i))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("job %d: status %d", i, resp.StatusCode)
		}
		ids = append(ids, sr.ID)
	}
	<-started // worker holds job 1

	drained := make(chan DrainStats)
	go func() { drained <- srv1.Drain() }()
	time.Sleep(20 * time.Millisecond) // let the drain close the queue
	close(gate)                       // release the in-flight job
	stats := <-drained
	ts1.Close()
	if stats.Finished != 1 {
		t.Errorf("drain finished %d jobs, want 1 (the in-flight one)", stats.Finished)
	}
	if stats.Queued != 3 {
		t.Errorf("drain left %d queued jobs, want 3", stats.Queued)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same directory: queued jobs are re-admitted and run;
	// the finished one is served from the store, not re-simulated.
	srv2, err := New(Config{StoreDir: dir, QueueCap: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if got := srv2.Restored(); got != 3 {
		t.Fatalf("restart re-admitted %d jobs, want 3", got)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	for _, id := range ids[1:] {
		if st := waitDone(t, ts2, id); st.State != StateDone {
			t.Errorf("re-admitted job %s ended %s (%s)", id, st.State, st.Error)
		}
	}
	// Job 1 finished before the restart: resubmitting it must hit the
	// warm store (simulated exactly once across both processes).
	resp, sr := postJob(t, ts2, tinySpec(1))
	if resp.StatusCode != http.StatusOK || !sr.Cached {
		t.Errorf("finished job resubmit: status %d resp %+v, want 200 cached", resp.StatusCode, sr)
	}
	if got := srv2.MetricsSnapshot()["completed"].(int64); got != 3 {
		t.Errorf("restarted server simulated %d jobs, want exactly the 3 queued ones", got)
	}
	srv2.Drain()
	// Nothing queued should remain persisted after everything ran.
	srv3, err := New(Config{StoreDir: dir, QueueCap: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv3.Drain(); srv3.Close() }()
	if got := srv3.Restored(); got != 0 {
		t.Errorf("third start re-admitted %d jobs, want 0 (log compaction)", got)
	}
}
