package dram

import "fmt"

// CheckInvariants verifies the model's structural invariants: table
// dimensions match the configured channel/bank counts and every
// utilization window's busy-time stays within the averaging window
// (wait clamps it, so anything larger means corruption).
func (d *DRAM) CheckInvariants() error {
	if d.channels < 1 || d.banks < 1 {
		return fmt.Errorf("dram: %d channels x %d banks", d.channels, d.banks)
	}
	if len(d.chanFree) != d.channels || len(d.chanUtil) != d.channels || len(d.bankUtil) != d.channels*d.banks {
		return fmt.Errorf("dram: tables sized %d/%d/%d for %d channels x %d banks",
			len(d.chanFree), len(d.chanUtil), len(d.bankUtil), d.channels, d.banks)
	}
	for ch := range d.chanUtil {
		if d.chanUtil[ch].busy > windowTicks {
			return fmt.Errorf("dram: channel %d busy %d exceeds window %d", ch, d.chanUtil[ch].busy, uint64(windowTicks))
		}
		for b := 0; b < d.banks; b++ {
			if d.bankUtil[ch*d.banks+b].busy > windowTicks {
				return fmt.Errorf("dram: channel %d bank %d busy %d exceeds window %d",
					ch, b, d.bankUtil[ch*d.banks+b].busy, uint64(windowTicks))
			}
		}
	}
	return nil
}
