// Package dram models off-chip memory. Two fidelity levels match the
// paper's methodology (§4.1): a simple mode with fixed latency and an
// accurately modeled bandwidth pipe (the single-core, industrial-
// simulator setup), and a detailed mode with per-channel and per-bank
// contention (the multi-core ChampSim setup: 8B channels at 800MHz,
// tCAS=tRP=tRCD=20, 2 channels, 8 banks).
//
// All times are in simulator ticks; the sim package uses 4 ticks per
// core cycle so a 4-wide core can dispatch on quarter-cycle boundaries.
package dram

import (
	"repro/internal/config"
	"repro/internal/mem"
)

// TicksPerCycle is the simulator tick resolution.
const TicksPerCycle = 4

// Kind classifies off-chip transfers for traffic accounting. The paper's
// traffic numbers (Figs. 11, 12) separate demand, prefetch, writeback,
// and — for MISB — metadata traffic.
type Kind int

// Transfer kinds.
const (
	DemandRead Kind = iota
	PrefetchRead
	Writeback
	MetadataRead
	MetadataWrite
	numKinds
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case DemandRead:
		return "demand-read"
	case PrefetchRead:
		return "prefetch-read"
	case Writeback:
		return "writeback"
	case MetadataRead:
		return "metadata-read"
	case MetadataWrite:
		return "metadata-write"
	default:
		return "unknown"
	}
}

// Stats counts transfers by kind. Each transfer moves one 64B line.
type Stats struct {
	Transfers [numKinds]uint64
}

// Total returns the total number of line transfers.
func (s Stats) Total() uint64 {
	var t uint64
	for _, v := range s.Transfers {
		t += v
	}
	return t
}

// Bytes returns total bytes moved.
func (s Stats) Bytes() uint64 { return s.Total() * mem.LineSize }

// Metadata returns metadata transfers (MISB's off-chip metadata).
func (s Stats) Metadata() uint64 {
	return s.Transfers[MetadataRead] + s.Transfers[MetadataWrite]
}

// DRAM is the off-chip memory model.
type DRAM struct {
	detailed bool

	latencyTicks  uint64
	transferTicks uint64 // per-channel occupancy of one line
	bankTicks     uint64

	channels int
	banks    int
	chanFree []uint64

	// Detailed-mode channels and banks use decaying-window utilization
	// models instead of next-free scalars: multi-core requests arrive
	// out of simulated-time order (each core's memory timestamps run
	// ahead of its dispatch order), and a scalar would let one core's
	// future-stamped access penalize another core's earlier access.
	// Each window accumulates recent busy-time; the queueing wait grows
	// as utilization approaches 1 (M/D/1-style).
	chanUtil []window
	bankUtil []window // indexed channel*banks + bank

	stats Stats
}

// window is one decaying-utilization accumulator.
type window struct {
	busy uint64
	last uint64
}

// wait charges one service of length svc at time now and returns the
// M/D/1-style queueing delay rho/(2(1-rho)) x svc.
func (w *window) wait(now, svc uint64) uint64 {
	if now > w.last {
		elapsed := now - w.last
		if elapsed >= windowTicks {
			w.busy = 0
		} else {
			w.busy -= w.busy * elapsed / windowTicks
		}
		w.last = now
	}
	w.busy += svc
	if w.busy > windowTicks {
		w.busy = windowTicks
	}
	rho := float64(w.busy) / float64(windowTicks)
	if rho > 0.98 {
		rho = 0.98
	}
	return uint64(rho / (2 * (1 - rho)) * float64(svc))
}

// windowTicks is the utilization-averaging window (4K cycles).
const windowTicks = 1 << 14

// New returns a DRAM model for machine m. detailed selects the
// channel/bank contention model; otherwise a single bandwidth pipe with
// fixed latency is used.
func New(m config.Machine, detailed bool) *DRAM {
	d := &DRAM{
		detailed:     detailed,
		latencyTicks: uint64(m.DRAMLatencyCycles()) * TicksPerCycle,
		channels:     1,
		banks:        1,
	}
	if detailed {
		d.channels = m.DRAMChannels
		d.banks = m.DRAMBanksPerChannel
		d.bankTicks = uint64(m.DRAMBankCycles) * TicksPerCycle
	}
	// Split the aggregate bandwidth across channels: each channel's
	// per-line occupancy is channels x the aggregate transfer time.
	d.transferTicks = uint64(m.DRAMTransferCycles()) * TicksPerCycle * uint64(d.channels)
	d.chanFree = make([]uint64, d.channels)
	d.chanUtil = make([]window, d.channels)
	d.bankUtil = make([]window, d.channels*d.banks)
	return d
}

// Stats returns accumulated transfer counts.
func (d *DRAM) Stats() Stats { return d.stats }

// TransferTicks returns one line transfer's per-channel occupancy in
// ticks (telemetry derives bandwidth-busy fractions from it).
func (d *DRAM) TransferTicks() uint64 { return d.transferTicks }

// Channels returns the number of modeled channels.
func (d *DRAM) Channels() int { return d.channels }

// ResetStats zeroes counters (after warmup).
func (d *DRAM) ResetStats() { d.stats = Stats{} }

// channelOf/bankOf map a line to its channel and bank by address bits.
func (d *DRAM) channelOf(l mem.Line) int { return int(uint64(l) % uint64(d.channels)) }
func (d *DRAM) bankOf(l mem.Line) int {
	return int((uint64(l) / uint64(d.channels)) % uint64(d.banks))
}

// Access issues a transfer for line l at tick now and returns the tick
// at which the data is available (reads) or accepted (writes). Queueing
// behind busy channels and banks extends the latency; that queueing is
// what makes prefetch-metadata traffic expensive in bandwidth-
// constrained systems (Fig. 17).
func (d *DRAM) Access(now uint64, l mem.Line, k Kind) uint64 {
	d.stats.Transfers[k]++
	ch := d.channelOf(l)
	var start uint64
	if d.detailed {
		start = now + d.chanUtil[ch].wait(now, d.transferTicks)
		b := d.bankOf(l)
		start += d.bankUtil[ch*d.banks+b].wait(now, d.bankTicks)
	} else {
		// Single-core simple mode: a scalar next-free pipe (arrivals
		// from one core are near-monotone, so no poisoning).
		start = now
		if f := d.chanFree[ch]; f > start {
			start = f
		}
		d.chanFree[ch] = start + d.transferTicks
	}
	switch k {
	case Writeback, MetadataWrite:
		// Writes are posted: they consume bandwidth but nothing waits.
		return start + d.transferTicks
	default:
		return start + d.latencyTicks
	}
}

// Utilization returns the fraction of ticks [since, now) during which
// channel 0 was busy — a coarse bandwidth-pressure signal used by tests.
func (d *DRAM) BusyUntil() uint64 {
	var max uint64
	for _, f := range d.chanFree {
		if f > max {
			max = f
		}
	}
	return max
}
