package dram

import (
	"testing"

	"repro/internal/config"
	"repro/internal/mem"
)

// TestDetailedOutOfOrderArrivalsDoNotPoison is the regression test for
// the timestamp-poisoning bug the utilization-window model fixes: a
// request stamped far in the future must not delay an unrelated
// earlier-stamped request.
func TestDetailedOutOfOrderArrivalsDoNotPoison(t *testing.T) {
	m := config.Default(4)
	d := New(m, true)
	idle := uint64(m.DRAMLatencyCycles()) * TicksPerCycle

	// A burst of future-stamped requests (e.g. a deep pointer chain's
	// prefetches) on channel 0 banks.
	for i := 0; i < 32; i++ {
		d.Access(1_000_000, mem.Line(i*2), DemandRead) // channel 0
	}
	// An earlier-stamped request must still see ~idle latency (small
	// bank/channel waits at most), not a 1M-tick stall.
	done := d.Access(1000, mem.Line(0), DemandRead)
	if done > 1000+idle*2 {
		t.Errorf("early request done at %d (latency %d); future-stamped burst poisoned the channel",
			done, done-1000)
	}
}

// TestWindowDecay: after a long idle gap the utilization resets and
// waits return to zero.
func TestWindowDecay(t *testing.T) {
	m := config.Default(2)
	d := New(m, true)
	idle := uint64(m.DRAMLatencyCycles()) * TicksPerCycle
	// Saturate the window.
	for i := 0; i < 2000; i++ {
		d.Access(0, mem.Line(i), DemandRead)
	}
	// Long after the window has decayed, latency is idle again.
	late := uint64(10 * windowTicks)
	done := d.Access(late, mem.Line(12345), DemandRead)
	// A couple of residual ticks of bank wait are fine; the point is no
	// inherited saturation.
	if done > late+idle+4 {
		t.Errorf("post-decay latency = %d ticks, want ~idle %d", done-late, idle)
	}
}

// TestSaturationRaisesWaits: sustained over-demand produces growing
// per-request waits (the throttling mechanism behind Fig. 17).
func TestSaturationRaisesWaits(t *testing.T) {
	m := config.Default(16)
	d := New(m, true)
	idle := uint64(m.DRAMLatencyCycles()) * TicksPerCycle
	// Demand far above the channel capacity within one window.
	var last uint64
	for i := 0; i < 4000; i++ {
		now := uint64(i) // ~1 request/tick: far beyond 1 line/16 ticks
		last = d.Access(now, mem.Line(i), DemandRead) - now
	}
	if last <= idle {
		t.Errorf("saturated per-request latency %d <= idle %d; no throttling", last, idle)
	}
}

func TestWindowWaitMonotoneInLoad(t *testing.T) {
	w := &window{}
	prev := uint64(0)
	for i := 0; i < 2000; i++ {
		wt := w.wait(0, 16) // all at the same instant: load only grows
		if wt < prev {
			t.Fatalf("wait decreased under growing load: %d -> %d", prev, wt)
		}
		prev = wt
	}
	if prev == 0 {
		t.Error("wait never grew under saturation")
	}
}
