package dram

import (
	"testing"

	"repro/internal/config"
	"repro/internal/mem"
)

func TestIdleLatency(t *testing.T) {
	m := config.Default(1)
	d := New(m, false)
	done := d.Access(0, 0, DemandRead)
	want := uint64(170 * TicksPerCycle) // 85ns at 2GHz
	if done != want {
		t.Errorf("idle read done at %d ticks, want %d", done, want)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	m := config.Default(1)
	d := New(m, false)
	// Issue 10 simultaneous reads: each occupies the pipe for
	// transferTicks, so completion times step by that amount.
	var prev uint64
	for i := 0; i < 10; i++ {
		done := d.Access(0, mem.Line(i), DemandRead)
		if i > 0 {
			step := done - prev
			if step != uint64(m.DRAMTransferCycles())*TicksPerCycle {
				t.Errorf("read %d: step %d ticks, want %d", i, step,
					m.DRAMTransferCycles()*TicksPerCycle)
			}
		}
		prev = done
	}
}

func TestWritesArePosted(t *testing.T) {
	m := config.Default(1)
	d := New(m, false)
	done := d.Access(0, 0, Writeback)
	// A posted write completes after its transfer, not the full latency.
	if done >= uint64(m.DRAMLatencyCycles())*TicksPerCycle {
		t.Errorf("writeback done at %d, want transfer-only latency", done)
	}
	// But it still delays a following read.
	read := d.Access(0, 1, DemandRead)
	idle := uint64(m.DRAMLatencyCycles()) * TicksPerCycle
	if read <= idle {
		t.Errorf("read after write done at %d, want > idle %d", read, idle)
	}
}

func TestDetailedBankContention(t *testing.T) {
	m := config.Default(4)
	d := New(m, true)
	// Two reads to the same bank: second must wait for bank busy time.
	l := mem.Line(0)
	first := d.Access(0, l, DemandRead)
	// Same channel+bank: line + channels*banks keeps both mappings.
	same := l + mem.Line(m.DRAMChannels*m.DRAMBanksPerChannel)
	second := d.Access(0, same, DemandRead)
	if second <= first {
		t.Errorf("same-bank reads: second done %d <= first %d", second, first)
	}
	// A read to a different channel at the same time is unaffected.
	other := d.Access(0, l+1, DemandRead)
	if other != first {
		t.Errorf("different-channel read done %d, want %d", other, first)
	}
}

func TestDetailedThroughputLimit(t *testing.T) {
	m := config.Default(16)
	d := New(m, true)
	// Saturate: 1000 reads at t=0 across all banks. Completion of the
	// last read reflects the aggregate bandwidth, not the idle latency.
	var last uint64
	for i := 0; i < 1000; i++ {
		last = d.Access(0, mem.Line(i), DemandRead)
	}
	idle := uint64(m.DRAMLatencyCycles()) * TicksPerCycle
	if last <= idle*2 {
		t.Errorf("1000 concurrent reads finished at %d ticks; contention not modeled", last)
	}
}

func TestStatsByKind(t *testing.T) {
	m := config.Default(1)
	d := New(m, false)
	d.Access(0, 0, DemandRead)
	d.Access(0, 1, PrefetchRead)
	d.Access(0, 2, PrefetchRead)
	d.Access(0, 3, Writeback)
	d.Access(0, 4, MetadataRead)
	d.Access(0, 5, MetadataWrite)
	s := d.Stats()
	if s.Transfers[DemandRead] != 1 || s.Transfers[PrefetchRead] != 2 ||
		s.Transfers[Writeback] != 1 || s.Transfers[MetadataRead] != 1 ||
		s.Transfers[MetadataWrite] != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Total() != 6 {
		t.Errorf("Total = %d, want 6", s.Total())
	}
	if s.Bytes() != 6*64 {
		t.Errorf("Bytes = %d, want %d", s.Bytes(), 6*64)
	}
	if s.Metadata() != 2 {
		t.Errorf("Metadata = %d, want 2", s.Metadata())
	}
	d.ResetStats()
	if d.Stats().Total() != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		DemandRead:    "demand-read",
		PrefetchRead:  "prefetch-read",
		Writeback:     "writeback",
		MetadataRead:  "metadata-read",
		MetadataWrite: "metadata-write",
		Kind(99):      "unknown",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestLaterArrivalNotDelayedByIdlePipe(t *testing.T) {
	m := config.Default(1)
	d := New(m, false)
	d.Access(0, 0, DemandRead)
	// Arrive long after the pipe drained: full idle latency again.
	now := uint64(1_000_000)
	done := d.Access(now, 1, DemandRead)
	if done != now+uint64(m.DRAMLatencyCycles())*TicksPerCycle {
		t.Errorf("late read done at %d, want idle latency from arrival", done)
	}
}
