package mem

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		addr Addr
		want Line
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{128, 2},
		{0xFFFF_FFFF_FFFF_FFFF, Line(0xFFFF_FFFF_FFFF_FFFF >> 6)},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.want {
			t.Errorf("LineOf(%#x) = %#x, want %#x", c.addr, got, c.want)
		}
	}
}

func TestAddrOfRoundTrip(t *testing.T) {
	f := func(l uint64) bool {
		l &= (1 << 58) - 1 // keep within shiftable range
		return LineOf(AddrOf(Line(l))) == Line(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOffset(t *testing.T) {
	if got := Offset(0x1234); got != 0x34 {
		t.Errorf("Offset(0x1234) = %#x, want 0x34", got)
	}
	if got := Offset(64); got != 0 {
		t.Errorf("Offset(64) = %d, want 0", got)
	}
}

func TestSetIndexAndTag(t *testing.T) {
	const sets = 2048
	l := Line(0x123456)
	set := SetIndex(l, sets)
	tag := TagOf(l, sets)
	if set != int(uint64(l)%sets) {
		t.Errorf("SetIndex = %d, want %d", set, uint64(l)%sets)
	}
	if tag != uint64(l)/sets {
		t.Errorf("TagOf = %d, want %d", tag, uint64(l)/sets)
	}
	// Reconstruction: tag*sets + set == line.
	if rec := Line(tag*uint64(sets) + uint64(set)); rec != l {
		t.Errorf("reconstructed %#x, want %#x", rec, l)
	}
}

func TestSetTagReconstructionProperty(t *testing.T) {
	f := func(l uint64, setsExp uint8) bool {
		sets := 1 << (setsExp%12 + 1) // 2..4096 sets
		line := Line(l)
		set := SetIndex(line, sets)
		tag := TagOf(line, sets)
		return Line(tag*uint64(sets)+uint64(set)) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024, 1 << 20} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false, want true", v)
		}
	}
	for _, v := range []int{0, -1, 3, 6, 1023} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true, want false", v)
		}
	}
}

func TestLog2(t *testing.T) {
	for i := uint(0); i < 30; i++ {
		if got := Log2(1 << i); got != i {
			t.Errorf("Log2(%d) = %d, want %d", 1<<i, got, i)
		}
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Log2(3) did not panic")
		}
	}()
	Log2(3)
}

func TestRegion(t *testing.T) {
	const regionLines = 32 // 2KB regions of 64B lines
	l := Line(100)
	if got := RegionOf(l, regionLines); got != 3 {
		t.Errorf("RegionOf(100, 32) = %d, want 3", got)
	}
	if got := RegionOffset(l, regionLines); got != 4 {
		t.Errorf("RegionOffset(100, 32) = %d, want 4", got)
	}
}

func TestRegionProperty(t *testing.T) {
	f := func(l uint64) bool {
		line := Line(l)
		r := RegionOf(line, 32)
		off := RegionOffset(line, 32)
		return r*32+uint64(off) == uint64(line) && off >= 0 && off < 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
