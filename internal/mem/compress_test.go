package mem

import (
	"testing"
	"testing/quick"
)

func TestTagCompressorRoundTrip(t *testing.T) {
	c := NewTagCompressor(10)
	tags := []uint64{0, 1, 42, 0xDEADBEEF, 1 << 40}
	ids := make([]uint32, len(tags))
	for i, tag := range tags {
		ids[i] = c.Compress(tag)
	}
	for i, tag := range tags {
		got, ok := c.Decompress(ids[i])
		if !ok || got != tag {
			t.Errorf("Decompress(%d) = %#x,%v want %#x,true", ids[i], got, ok, tag)
		}
	}
}

func TestTagCompressorStableIDs(t *testing.T) {
	c := NewTagCompressor(8)
	id1 := c.Compress(777)
	id2 := c.Compress(777)
	if id1 != id2 {
		t.Errorf("same tag got different ids: %d vs %d", id1, id2)
	}
}

func TestTagCompressorLookupDoesNotAllocate(t *testing.T) {
	c := NewTagCompressor(4)
	if _, ok := c.Lookup(123); ok {
		t.Error("Lookup of unknown tag returned ok")
	}
	id := c.Compress(123)
	got, ok := c.Lookup(123)
	if !ok || got != id {
		t.Errorf("Lookup(123) = %d,%v want %d,true", got, ok, id)
	}
}

func TestTagCompressorRecycling(t *testing.T) {
	c := NewTagCompressor(3) // 8 slots
	for tag := uint64(0); tag < 8; tag++ {
		c.Compress(tag)
	}
	if c.Recycled() != 0 {
		t.Fatalf("recycled %d before overflow", c.Recycled())
	}
	// Touch tags 1..7 so that tag 0 is LRU, then overflow.
	for tag := uint64(1); tag < 8; tag++ {
		c.Compress(tag)
	}
	id0, _ := c.Lookup(0)
	// Touch 0 via Lookup updated its stamp, so make 1 the LRU instead.
	for tag := uint64(2); tag < 8; tag++ {
		c.Compress(tag)
	}
	c.Compress(0)
	newID := c.Compress(999) // must recycle LRU (tag 1)
	if c.Recycled() != 1 {
		t.Errorf("recycled = %d, want 1", c.Recycled())
	}
	if _, ok := c.Lookup(1); ok {
		t.Error("tag 1 should have been recycled")
	}
	// The stale id now decompresses to the new tag or fails for tag 1.
	if tag, ok := c.Decompress(newID); !ok || tag != 999 {
		t.Errorf("Decompress(recycled id) = %#x,%v want 999,true", tag, ok)
	}
	_ = id0
}

func TestTagCompressorCapacity(t *testing.T) {
	c := NewTagCompressor(10)
	if c.Capacity() != 1024 {
		t.Errorf("Capacity = %d, want 1024", c.Capacity())
	}
	if c.Bits() != 10 {
		t.Errorf("Bits = %d, want 10", c.Bits())
	}
}

func TestTagCompressorDecompressUnknown(t *testing.T) {
	c := NewTagCompressor(4)
	if _, ok := c.Decompress(3); ok {
		t.Error("Decompress of unmapped id returned ok")
	}
	if _, ok := c.Decompress(1 << 20); ok {
		t.Error("Decompress of out-of-range id returned ok")
	}
}

// Property: within capacity, compress/decompress is a bijection.
func TestTagCompressorBijectionProperty(t *testing.T) {
	f := func(seed [16]uint16) bool {
		c := NewTagCompressor(8) // 256 slots, 16 distinct tags fit easily
		seen := map[uint64]uint32{}
		for _, s := range seed {
			tag := uint64(s)
			id := c.Compress(tag)
			if prev, ok := seen[tag]; ok && prev != id {
				return false
			}
			seen[tag] = id
			back, ok := c.Decompress(id)
			if !ok || back != tag {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTagCompressorWidthValidation(t *testing.T) {
	for _, bits := range []uint{0, 32, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTagCompressor(%d) did not panic", bits)
				}
			}()
			NewTagCompressor(bits)
		}()
	}
}
