package mem

import "repro/internal/flat"

// TagCompressor implements the compressed-tag lookup table of paper
// §3.2. Each Triage metadata entry must fit in 4 bytes, so the full
// address tag (everything above the set-index bits) is compressed to a
// small identifier through a lookup table. The paper uses a 10-bit
// compressed tag; we parameterize the width.
//
// The table is a direct mapping in both directions: full tag -> id and
// id -> full tag. When the table is full, the least-recently-used id is
// recycled; metadata entries that still reference the recycled id become
// stale and will fail verification on their next lookup (Lookup returns
// ok=false for them), which mirrors the information loss a real
// fixed-size compression table would suffer.
type TagCompressor struct {
	bits    uint
	fwd     *flat.Map // full tag -> compressed id
	rev     []uint64  // compressed id -> full tag
	revOK   []bool    // id currently mapped
	stamp   []uint64  // LRU timestamps per id
	clock   uint64
	recycle uint64 // number of ids recycled (stat)
}

// NewTagCompressor returns a compressor producing ids of the given bit
// width (the paper uses 10 bits, i.e. 1024 distinct tags).
func NewTagCompressor(bits uint) *TagCompressor {
	if bits == 0 || bits > 31 {
		panic("mem: TagCompressor width must be in [1,31]")
	}
	n := 1 << bits
	return &TagCompressor{
		bits:  bits,
		fwd:   flat.NewMap(n),
		rev:   make([]uint64, n),
		revOK: make([]bool, n),
		stamp: make([]uint64, n),
	}
}

// Bits returns the compressed-tag width in bits.
func (c *TagCompressor) Bits() uint { return c.bits }

// Capacity returns the number of distinct tags the table can hold.
func (c *TagCompressor) Capacity() int { return 1 << c.bits }

// Recycled returns how many ids have been recycled due to capacity.
func (c *TagCompressor) Recycled() uint64 { return c.recycle }

// Compress returns the compressed id for the full tag, allocating (and
// possibly recycling) an id if the tag is not yet in the table.
func (c *TagCompressor) Compress(tag uint64) uint32 {
	c.clock++
	if v, ok := c.fwd.Get(tag); ok {
		id := uint32(v)
		c.stamp[id] = c.clock
		return id
	}
	id := c.allocate()
	if c.revOK[id] {
		c.fwd.Delete(c.rev[id])
		c.recycle++
	}
	c.fwd.Set(tag, uint64(id))
	c.rev[id] = tag
	c.revOK[id] = true
	c.stamp[id] = c.clock
	return id
}

// Lookup returns the compressed id for tag without allocating.
func (c *TagCompressor) Lookup(tag uint64) (uint32, bool) {
	v, ok := c.fwd.Get(tag)
	id := uint32(v)
	if ok {
		c.clock++
		c.stamp[id] = c.clock
	}
	return id, ok
}

// Decompress returns the full tag for a compressed id. ok is false if
// the id is unmapped or has been recycled since it was handed out.
func (c *TagCompressor) Decompress(id uint32) (uint64, bool) {
	if int(id) >= len(c.rev) || !c.revOK[id] {
		return 0, false
	}
	return c.rev[id], true
}

// allocate finds a free id, or the LRU id if none is free.
func (c *TagCompressor) allocate() uint32 {
	var lru uint32
	lruStamp := ^uint64(0)
	for i := range c.revOK {
		if !c.revOK[i] {
			return uint32(i)
		}
		if c.stamp[i] < lruStamp {
			lruStamp = c.stamp[i]
			lru = uint32(i)
		}
	}
	return lru
}
