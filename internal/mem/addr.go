// Package mem provides the address arithmetic shared by every component
// of the simulator: byte addresses, cache-line addresses, set/tag
// decomposition, and the compressed-tag lookup table used by Triage's
// on-chip metadata entries (paper §3.2).
//
// Throughout the simulator a "line address" is a byte address shifted
// right by LineShift; caches, prefetchers, and DRAM all operate on line
// addresses so that the 64-byte granularity is established exactly once.
package mem

import "fmt"

const (
	// LineShift is log2 of the cache-line size.
	LineShift = 6
	// LineSize is the cache-line size in bytes (Table 1: 64B lines).
	LineSize = 1 << LineShift
	// LineMask masks the offset bits within a line.
	LineMask = LineSize - 1
)

// Addr is a physical byte address.
type Addr uint64

// Line is a cache-line address (byte address >> LineShift).
type Line uint64

// LineOf returns the cache line containing the byte address.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// AddrOf returns the first byte address of the line.
func AddrOf(l Line) Addr { return Addr(l << LineShift) }

// Offset returns the byte offset of a within its cache line.
func Offset(a Addr) uint64 { return uint64(a) & LineMask }

// SetIndex returns the set index of line l in a cache with numSets sets.
// numSets must be a power of two.
func SetIndex(l Line, numSets int) int {
	return int(uint64(l) & uint64(numSets-1))
}

// TagOf returns the tag of line l in a cache with numSets sets.
func TagOf(l Line, numSets int) uint64 {
	return uint64(l) / uint64(numSets)
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Log2 returns log2 of a power-of-two v; it panics otherwise, because a
// non-power-of-two geometry is a programming error, not an input error.
func Log2(v int) uint {
	if !IsPow2(v) {
		panic(fmt.Sprintf("mem: Log2 of non-power-of-two %d", v))
	}
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// RegionOf returns the region number of line l for a spatial region of
// regionLines cache lines (used by SMS-style spatial prefetchers).
// regionLines must be a power of two.
func RegionOf(l Line, regionLines int) uint64 {
	return uint64(l) / uint64(regionLines)
}

// RegionOffset returns l's offset, in lines, within its region.
func RegionOffset(l Line, regionLines int) int {
	return int(uint64(l) & uint64(regionLines-1))
}
