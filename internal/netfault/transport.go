package netfault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"syscall"
	"time"
)

// FaultError is what an injected client-side fault returns. It unwraps
// to the syscall errno a real network failure of the same class would
// carry (ECONNREFUSED, ECONNRESET), so callers classifying retryable
// errors with errors.Is treat injected faults exactly like real ones.
type FaultError struct {
	Class string // refuse, reset, drop-response, cut, cut-oneway
	Err   error
}

func (e *FaultError) Error() string { return "netfault: injected " + e.Class + ": " + e.Err.Error() }
func (e *FaultError) Unwrap() error { return e.Err }

// IsInjected reports whether err (or anything it wraps) came from this
// package, letting tests separate injected faults from real ones.
func IsInjected(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe)
}

// Partition modes for the explicit switches.
const (
	partNone   = int32(iota) // faults come from the plan only
	partFull   = int32(1)    // every matched request refused
	partOneWay = int32(2)    // requests delivered + executed, responses lost
)

// Transport wraps an http.RoundTripper with seeded fault injection.
// Safe for concurrent use. The zero probability plan plus Restore mode
// is a transparent passthrough.
type Transport struct {
	inner http.RoundTripper
	state *faultState
	mode  atomic.Int32

	// match scopes fault injection: requests it rejects pass straight
	// through. Set via Match before concurrent use; nil matches all.
	match func(*http.Request) bool

	// sleep is swapped in tests so latency spikes don't slow the suite.
	sleep func(time.Duration)
}

// New wraps inner (nil means http.DefaultTransport) with plan.
func New(inner http.RoundTripper, plan Plan) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, state: newFaultState(plan), sleep: time.Sleep}
}

// Match scopes injection to requests the predicate accepts. Call before
// the transport is shared across goroutines.
func (t *Transport) Match(f func(*http.Request) bool) { t.match = f }

// Cut opens a full partition: every matched request fails with
// connection refused until Restore.
func (t *Transport) Cut() { t.mode.Store(partFull) }

// CutOneWay opens an asymmetric partition: matched requests are still
// delivered and executed by the server, but every response is lost.
// This is the ambiguous-delivery case idempotent RPCs must tolerate.
func (t *Transport) CutOneWay() { t.mode.Store(partOneWay) }

// Restore closes any explicit partition; the probabilistic plan still
// applies.
func (t *Transport) Restore() { t.mode.Store(partNone) }

// SetPlan replaces the plan and reseeds the decision stream.
func (t *Transport) SetPlan(p Plan) { t.state.setPlan(p) }

// Counters returns a copy of the per-class injection counts.
func (t *Transport) Counters() map[string]int64 {
	_, c := t.state.snapshot()
	return c
}

// CountersString renders the counters sorted by class, for logs.
func (t *Transport) CountersString() string { return formatCounters(t.Counters()) }

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.match != nil && !t.match(req) {
		return t.inner.RoundTrip(req)
	}

	// Buffer the body once so the request can be replayed (duplicate
	// delivery) or retried by the caller; cluster RPC bodies are small
	// JSON documents.
	var body []byte
	if req.Body != nil {
		b, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		body = b
	}
	fresh := func() *http.Request {
		r := req.Clone(req.Context())
		if body != nil {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		return r
	}

	switch t.mode.Load() {
	case partFull:
		t.state.count("cut")
		return nil, &FaultError{Class: "cut", Err: fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, syscall.ECONNREFUSED)}
	case partOneWay:
		// Deliver and execute, then lose the response.
		resp, err := t.inner.RoundTrip(fresh())
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		t.state.count("cut-oneway")
		return nil, &FaultError{Class: "cut-oneway", Err: fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, syscall.ECONNRESET)}
	}

	plan, _ := t.state.snapshot()

	// Roll every class in a fixed order so the decision stream is
	// seed-deterministic independent of which faults fire.
	delay := t.state.roll(plan.PDelay, "delay")
	refuse := t.state.roll(plan.PRefuse, "refuse")
	reset := t.state.roll(plan.PReset, "reset")
	dup := t.state.roll(plan.PDuplicate, "duplicate")
	drop := t.state.roll(plan.PDropResponse, "drop-response")
	trunc := t.state.roll(plan.PTruncate, "truncate")

	if delay && plan.Delay > 0 {
		t.sleep(plan.Delay)
	}
	if refuse {
		return nil, &FaultError{Class: "refuse", Err: fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, syscall.ECONNREFUSED)}
	}
	if reset {
		return nil, &FaultError{Class: "reset", Err: fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, syscall.ECONNRESET)}
	}

	if dup {
		// First delivery executes; its response is discarded and the
		// duplicate's response is returned, like a retransmit.
		if resp, err := t.inner.RoundTrip(fresh()); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	resp, err := t.inner.RoundTrip(fresh())
	if err != nil {
		return nil, err
	}

	if drop {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &FaultError{Class: "drop-response", Err: fmt.Errorf("%s %s: %w", req.Method, req.URL.Path, syscall.ECONNRESET)}
	}
	if trunc {
		// Deliver a prefix of the body, then fail the stream the way a
		// torn-down connection does.
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		cut := len(b) / 2
		resp.Body = &truncatedBody{r: bytes.NewReader(b[:cut])}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return resp, nil
}

// truncatedBody yields its prefix then fails with ErrUnexpectedEOF, the
// error a JSON decoder surfaces when a connection dies mid-body.
type truncatedBody struct{ r *bytes.Reader }

func (t *truncatedBody) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedBody) Close() error { return nil }
