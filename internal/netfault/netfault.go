// Package netfault injects deterministic, seeded network faults into
// HTTP traffic, the network analog of vfs.Faulty: a Transport wraps an
// http.RoundTripper on the client side, a Listener wraps a net.Listener
// on the server side, and both draw every fault decision from a seeded
// PRNG so a failing chaos run replays exactly.
//
// The fault vocabulary covers the ways a real cluster link dies:
//
//   - connection refusal (the request never leaves),
//   - mid-body resets (the request dies in flight, delivery unknown),
//   - response truncation (the reply arrives cut short),
//   - latency spikes (slow links, not dead ones),
//   - one-way partitions (the request is delivered and EXECUTED but the
//     response is lost — the ambiguous case idempotency must survive),
//   - duplicate delivery (the request is executed twice).
//
// Beyond the probabilistic plan, a Transport has explicit switches —
// Cut, CutOneWay, Restore — so a chaos scenario can open a partition at
// an exact moment, and a Match predicate to scope faults to a subset of
// calls (e.g. only /cluster/v1/heartbeat, for asymmetric partitions).
package netfault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Plan gives the probability of each fault class, rolled independently
// per request in a fixed order from a PRNG seeded with Seed. The zero
// Plan injects nothing. Probabilities are in [0, 1].
type Plan struct {
	Seed int64

	PRefuse       float64 // connection refused before the request leaves
	PReset        float64 // connection reset mid-request; not delivered
	PDropResponse float64 // request delivered and executed, response lost
	PTruncate     float64 // response body cut short mid-stream
	PDuplicate    float64 // request delivered (and executed) twice
	PDelay        float64 // latency spike of Delay before the request
	Delay         time.Duration
}

// ParsePlan decodes the CLI plan syntax shared by triaged and
// triageworker: comma-separated key=value pairs, e.g.
//
//	seed=7,refuse=0.05,reset=0.02,drop=0.03,trunc=0.02,dup=0.05,delay=0.1:20ms
//
// delay takes an optional ":duration" suffix (default 25ms).
func ParsePlan(s string) (Plan, error) {
	p := Plan{Delay: 25 * time.Millisecond}
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("netfault plan: %q is not key=value", field)
		}
		if k == "seed" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return p, fmt.Errorf("netfault plan: bad seed %q", v)
			}
			p.Seed = n
			continue
		}
		if k == "delay" {
			prob, dur, has := strings.Cut(v, ":")
			f, err := strconv.ParseFloat(prob, 64)
			if err != nil {
				return p, fmt.Errorf("netfault plan: bad delay probability %q", prob)
			}
			p.PDelay = f
			if has {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return p, fmt.Errorf("netfault plan: bad delay duration %q", dur)
				}
				p.Delay = d
			}
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return p, fmt.Errorf("netfault plan: bad probability %q for %s", v, k)
		}
		switch k {
		case "refuse":
			p.PRefuse = f
		case "reset":
			p.PReset = f
		case "drop":
			p.PDropResponse = f
		case "trunc":
			p.PTruncate = f
		case "dup":
			p.PDuplicate = f
		default:
			return p, fmt.Errorf("netfault plan: unknown key %q", k)
		}
	}
	return p, nil
}

// faultState is the shared seeded core behind Transport and Listener.
type faultState struct {
	mu       sync.Mutex
	rng      *rand.Rand
	plan     Plan
	counters map[string]int64
}

func newFaultState(p Plan) *faultState {
	return &faultState{
		rng:      rand.New(rand.NewSource(p.Seed)),
		plan:     p,
		counters: make(map[string]int64),
	}
}

// roll draws one uniform variate under the lock; every fault decision
// consumes exactly one draw so a plan's decision stream is a pure
// function of its seed regardless of which probabilities are zero.
func (s *faultState) roll(p float64, class string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	hit := s.rng.Float64() < p
	if hit {
		s.counters[class]++
	}
	return hit
}

func (s *faultState) count(class string) {
	s.mu.Lock()
	s.counters[class]++
	s.mu.Unlock()
}

func (s *faultState) setPlan(p Plan) {
	s.mu.Lock()
	s.plan = p
	s.rng = rand.New(rand.NewSource(p.Seed))
	s.mu.Unlock()
}

func (s *faultState) snapshot() (Plan, map[string]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.counters))
	for k, v := range s.counters {
		out[k] = v
	}
	return s.plan, out
}

// String renders the counters deterministically (sorted by class) for
// logs: "refuse=3 reset=1".
func formatCounters(c map[string]int64) string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, c[k]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
