package netfault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// echoServer counts requests and echoes a fixed body, so tests can see
// both whether a request was delivered and whether the response
// survived.
func echoServer(t *testing.T, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		fmt.Fprint(w, body)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func get(t *testing.T, c *http.Client, url string) (string, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestTransportPassthrough(t *testing.T) {
	ts, hits := echoServer(t, "ok")
	tr := New(nil, Plan{})
	body, err := get(t, &http.Client{Transport: tr}, ts.URL)
	if err != nil || body != "ok" {
		t.Fatalf("passthrough: body=%q err=%v", body, err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server hits = %d, want 1", hits.Load())
	}
	if len(tr.Counters()) != 0 {
		t.Fatalf("zero plan injected faults: %v", tr.Counters())
	}
}

func TestTransportDeterministic(t *testing.T) {
	// The same seed must produce the same fault sequence; a different
	// seed must diverge somewhere over 200 requests.
	run := func(seed int64) []bool {
		ts, _ := echoServer(t, "ok")
		tr := New(nil, Plan{Seed: seed, PRefuse: 0.3})
		c := &http.Client{Transport: tr}
		out := make([]bool, 200)
		for i := range out {
			_, err := get(t, c, ts.URL)
			out[i] = err != nil
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestTransportFaultClasses(t *testing.T) {
	ts, hits := echoServer(t, strings.Repeat("x", 1024))
	t.Run("refuse", func(t *testing.T) {
		tr := New(nil, Plan{PRefuse: 1})
		_, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("refuse should unwrap to ECONNREFUSED, got %v", err)
		}
		if !IsInjected(err) {
			t.Fatalf("IsInjected(%v) = false", err)
		}
	})
	t.Run("reset", func(t *testing.T) {
		before := hits.Load()
		tr := New(nil, Plan{PReset: 1})
		_, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("reset should unwrap to ECONNRESET, got %v", err)
		}
		if hits.Load() != before {
			t.Fatal("reset must not deliver the request")
		}
	})
	t.Run("drop-response", func(t *testing.T) {
		before := hits.Load()
		tr := New(nil, Plan{PDropResponse: 1})
		_, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if !errors.Is(err, syscall.ECONNRESET) {
			t.Fatalf("drop-response should look like a reset, got %v", err)
		}
		if hits.Load() != before+1 {
			t.Fatal("drop-response must deliver and execute the request")
		}
	})
	t.Run("truncate", func(t *testing.T) {
		tr := New(nil, Plan{PTruncate: 1})
		body, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncate should surface ErrUnexpectedEOF, got %v", err)
		}
		if len(body) == 0 || len(body) >= 1024 {
			t.Fatalf("truncate delivered %d bytes, want a proper prefix of 1024", len(body))
		}
	})
	t.Run("duplicate", func(t *testing.T) {
		before := hits.Load()
		tr := New(nil, Plan{PDuplicate: 1})
		body, err := get(t, &http.Client{Transport: tr}, ts.URL)
		if err != nil || len(body) != 1024 {
			t.Fatalf("duplicate delivery should still succeed: len=%d err=%v", len(body), err)
		}
		if hits.Load() != before+2 {
			t.Fatalf("duplicate must execute twice, got %d extra hits", hits.Load()-before)
		}
	})
	t.Run("delay", func(t *testing.T) {
		tr := New(nil, Plan{PDelay: 1, Delay: 5 * time.Millisecond})
		var slept time.Duration
		tr.sleep = func(d time.Duration) { slept += d }
		if _, err := get(t, &http.Client{Transport: tr}, ts.URL); err != nil {
			t.Fatal(err)
		}
		if slept != 5*time.Millisecond {
			t.Fatalf("slept %v, want 5ms", slept)
		}
	})
}

func TestTransportPartitionSwitches(t *testing.T) {
	ts, hits := echoServer(t, "ok")
	tr := New(nil, Plan{})
	c := &http.Client{Transport: tr}

	tr.Cut()
	if _, err := get(t, c, ts.URL); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("cut: want ECONNREFUSED, got %v", err)
	}
	if hits.Load() != 0 {
		t.Fatal("cut must not deliver")
	}

	tr.CutOneWay()
	before := hits.Load()
	if _, err := get(t, c, ts.URL); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("one-way cut: want ECONNRESET, got %v", err)
	}
	if hits.Load() != before+1 {
		t.Fatal("one-way cut must deliver and execute")
	}

	tr.Restore()
	if body, err := get(t, c, ts.URL); err != nil || body != "ok" {
		t.Fatalf("restore: body=%q err=%v", body, err)
	}
}

func TestTransportMatchScoping(t *testing.T) {
	ts, _ := echoServer(t, "ok")
	tr := New(nil, Plan{})
	tr.Match(func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/heartbeat") })
	tr.Cut()
	c := &http.Client{Transport: tr}
	if _, err := get(t, c, ts.URL+"/poll"); err != nil {
		t.Fatalf("unmatched path must pass through a cut: %v", err)
	}
	if _, err := get(t, c, ts.URL+"/heartbeat"); !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("matched path must be cut, got %v", err)
	}
}

func TestListenerCutAndRestore(t *testing.T) {
	ts, _ := echoServer(t, "ok")
	// Re-listen through the fault wrapper on a fresh server.
	inner := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	ln := WrapListener(inner.Listener, Plan{})
	inner.Listener = ln
	inner.Start()
	defer inner.Close()
	_ = ts

	c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}
	if body, err := get(t, c, inner.URL); err != nil || body != "ok" {
		t.Fatalf("healthy listener: body=%q err=%v", body, err)
	}
	ln.Cut()
	if _, err := get(t, c, inner.URL); err == nil {
		t.Fatal("cut listener should fail requests")
	}
	ln.Restore()
	if body, err := get(t, c, inner.URL); err != nil || body != "ok" {
		t.Fatalf("restored listener: body=%q err=%v", body, err)
	}
	if ln.Counters()["cut"] == 0 {
		t.Fatalf("cut counter not incremented: %v", ln.Counters())
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=9,refuse=0.05,reset=0.02,drop=0.03,trunc=0.01,dup=0.04,delay=0.1:40ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 9, PRefuse: 0.05, PReset: 0.02, PDropResponse: 0.03,
		PTruncate: 0.01, PDuplicate: 0.04, PDelay: 0.1, Delay: 40 * time.Millisecond}
	if p != want {
		t.Fatalf("ParsePlan = %+v, want %+v", p, want)
	}
	if _, err := ParsePlan("bogus=1"); err == nil {
		t.Fatal("unknown key should error")
	}
	if _, err := ParsePlan(""); err != nil {
		t.Fatalf("empty plan should parse: %v", err)
	}
}
