package netfault

import (
	"net"
	"sync"
	"sync/atomic"
)

// Listener wraps a net.Listener with server-side fault injection:
// accepted connections can be reset immediately (the client sees a
// refused/reset connection even though the server is up), and Cut
// tears down every live connection and resets all new ones until
// Restore — the coordinator-side half of a partition.
//
// Only PRefuse from the Plan applies at this layer; finer-grained
// faults (truncation, duplicates) live in Transport where the request
// boundary is visible.
type Listener struct {
	net.Listener
	state *faultState
	cut   atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// WrapListener wraps ln with plan.
func WrapListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, state: newFaultState(plan), conns: make(map[net.Conn]struct{})}
}

// Cut resets every live connection and all future ones until Restore.
func (l *Listener) Cut() {
	l.cut.Store(true)
	l.mu.Lock()
	for c := range l.conns {
		c.Close()
	}
	l.mu.Unlock()
}

// Restore ends an explicit Cut; the probabilistic plan still applies.
func (l *Listener) Restore() { l.cut.Store(false) }

// Counters returns a copy of the per-class injection counts.
func (l *Listener) Counters() map[string]int64 {
	_, c := l.state.snapshot()
	return c
}

// CountersString renders the counters sorted by class, for logs.
func (l *Listener) CountersString() string { return formatCounters(l.Counters()) }

func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		plan, _ := l.state.snapshot()
		if l.cut.Load() {
			l.state.count("cut")
			c.Close()
			continue
		}
		if l.state.roll(plan.PRefuse, "accept-reset") {
			c.Close()
			continue
		}
		tc := &trackedConn{Conn: c, ln: l}
		l.mu.Lock()
		l.conns[tc] = struct{}{}
		l.mu.Unlock()
		return tc, nil
	}
}

// trackedConn deregisters itself on Close so Cut only tears down live
// connections.
type trackedConn struct {
	net.Conn
	ln   *Listener
	once sync.Once
}

func (c *trackedConn) Close() error {
	c.once.Do(func() {
		c.ln.mu.Lock()
		delete(c.ln.conns, c)
		c.ln.mu.Unlock()
	})
	return c.Conn.Close()
}
