package flat

import (
	"strings"
	"testing"
)

func TestMapCheckInvariants(t *testing.T) {
	m := NewMap(16)
	for i := uint64(1); i <= 20; i++ {
		m.Set(i*0x9e3779b97f4a7c15, i)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("healthy map violates invariants: %v", err)
	}
	// Clear an occupied slot without adjusting n: the count no longer
	// matches the table (and any chain through it is broken).
	for i, k := range m.keys {
		if k != 0 {
			m.keys[i] = 0
			break
		}
	}
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("corrupted map passed the invariant check")
	}
}

func TestLRUCheckInvariantsChainCycle(t *testing.T) {
	l := NewLRU[int](8)
	for i := uint64(1); i <= 8; i++ {
		l.Insert(i, int(i))
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatalf("healthy LRU violates invariants: %v", err)
	}
	l.next[l.head] = l.head // recency chain now cycles at the head
	err := l.CheckInvariants()
	if err == nil {
		t.Fatal("cyclic recency chain passed the invariant check")
	}
}

func TestLRUCheckInvariantsIndexCorruption(t *testing.T) {
	l := NewLRU[int](8)
	for i := uint64(1); i <= 4; i++ {
		l.Insert(i, int(i))
	}
	// Point an index entry at a slot beyond the resident range. The
	// checker must report this WITHOUT calling Find (a corrupted full
	// index would make Find probe forever).
	for i, s := range l.idx {
		if s != 0 {
			l.idx[i] = int32(l.n) + 1
			break
		}
	}
	err := l.CheckInvariants()
	if err == nil {
		t.Fatal("out-of-range index slot passed the invariant check")
	}
	if !strings.Contains(err.Error(), "beyond n=") {
		t.Errorf("violation %q does not identify the index corruption", err)
	}
}
