package flat

import (
	"math/rand"
	"testing"
)

func TestMapBasic(t *testing.T) {
	m := NewMap(0)
	if _, ok := m.Get(42); ok {
		t.Fatal("empty map returned a value")
	}
	m.Set(42, 7)
	m.Set(0, 9) // zero key is stored out of line
	m.Set(42, 8)
	if v, ok := m.Get(42); !ok || v != 8 {
		t.Fatalf("Get(42) = %d,%v want 8,true", v, ok)
	}
	if v, ok := m.Get(0); !ok || v != 9 {
		t.Fatalf("Get(0) = %d,%v want 9,true", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d want 2", m.Len())
	}
}

func TestMapGrowAndRandomized(t *testing.T) {
	m := NewMap(0)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 5000 // force overwrites
		v := rng.Uint64()
		m.Set(k, v)
		ref[k] = v
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d want %d", m.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := m.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
	seen := map[uint64]uint64{}
	m.Range(func(k, v uint64) bool {
		seen[k] = v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Range visited %d entries, want %d", len(seen), len(ref))
	}
}

func TestMapDelete(t *testing.T) {
	m := NewMap(0)
	m.Set(42, 7)
	m.Set(0, 9)
	if !m.Delete(42) {
		t.Fatal("Delete(42) = false for present key")
	}
	if _, ok := m.Get(42); ok {
		t.Fatal("Get(42) found a deleted key")
	}
	if m.Delete(42) {
		t.Fatal("Delete(42) = true for absent key")
	}
	if !m.Delete(0) {
		t.Fatal("Delete(0) = false for present zero key")
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("Get(0) found the deleted zero key")
	}
	if m.Len() != 0 {
		t.Fatalf("Len = %d want 0", m.Len())
	}
}

// TestMapDeleteRandomized interleaves inserts and deletes against Go's
// map, exercising backward-shift over colliding probe chains.
func TestMapDeleteRandomized(t *testing.T) {
	m := NewMap(0)
	ref := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		k := rng.Uint64() % 700 // small key space -> long shared chains
		if rng.Intn(3) == 0 {
			if got, want := m.Delete(k), ref[k] != 0 || hasKey(ref, k); got != want {
				t.Fatalf("Delete(%d) = %v want %v", k, got, want)
			}
			delete(ref, k)
		} else {
			v := rng.Uint64()
			m.Set(k, v)
			ref[k] = v
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if m.Len() != len(ref) {
		t.Fatalf("Len = %d want %d", m.Len(), len(ref))
	}
	for k, v := range ref {
		if got, ok := m.Get(k); !ok || got != v {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, got, ok, v)
		}
	}
}

func hasKey(ref map[uint64]uint64, k uint64) bool {
	_, ok := ref[k]
	return ok
}

func TestMapReset(t *testing.T) {
	m := NewMap(4)
	m.Set(0, 1)
	m.Set(5, 2)
	m.Reset()
	if m.Len() != 0 {
		t.Fatalf("Len after Reset = %d", m.Len())
	}
	if _, ok := m.Get(5); ok {
		t.Fatal("Reset map still returns values")
	}
	if _, ok := m.Get(0); ok {
		t.Fatal("Reset map still holds the zero key")
	}
	m.Set(5, 3)
	if v, _ := m.Get(5); v != 3 {
		t.Fatal("map unusable after Reset")
	}
}

// collidingKeys returns n distinct nonzero keys whose home slot in l's
// index is exactly target, forcing one probe chain.
func collidingKeys(l *LRU[int], target, n int) []uint64 {
	var out []uint64
	for k := uint64(1); len(out) < n; k++ {
		if l.home(k) == target {
			out = append(out, k)
		}
	}
	return out
}

func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU[int](3)
	for i := uint64(1); i <= 3; i++ {
		if _, _, ev := l.Insert(i, int(i)); ev {
			t.Fatalf("eviction while filling (key %d)", i)
		}
	}
	// Touch 1 so the LRU order is 2, 3, 1.
	slot, ok := l.Find(1)
	if !ok {
		t.Fatal("key 1 missing")
	}
	l.TouchFront(slot)
	for i, want := range []uint64{2, 3, 1} {
		k, v, ev := l.Insert(uint64(100+i), 0)
		if !ev || k != want {
			t.Fatalf("eviction %d: got key %d (evicted=%v), want %d", i, k, ev, want)
		}
		if v != int(want) {
			t.Fatalf("eviction %d: value %d, want %d", i, v, want)
		}
	}
	if l.Len() != 3 {
		t.Fatalf("Len = %d want 3", l.Len())
	}
}

func TestLRUInsertExistingPromotes(t *testing.T) {
	l := NewLRU[int](2)
	l.Insert(1, 10)
	l.Insert(2, 20)
	l.Insert(1, 11) // overwrite + promote; 2 becomes LRU
	k, _, ev := l.Insert(3, 30)
	if !ev || k != 2 {
		t.Fatalf("evicted %d (evicted=%v), want 2", k, ev)
	}
	slot, ok := l.Find(1)
	if !ok || *l.At(slot) != 11 {
		t.Fatal("overwritten value lost")
	}
}

// TestLRUCollisionWraparound drives a probe chain across the index's
// end so the wraparound and backward-shift deletion paths both run.
func TestLRUCollisionWraparound(t *testing.T) {
	l := NewLRU[int](4) // index has 8 slots
	target := len(l.idx) - 1
	keys := collidingKeys(l, target, 4)
	for i, k := range keys {
		l.Insert(k, i)
	}
	// All keys share home = last index slot, so three of them wrapped.
	for i, k := range keys {
		slot, ok := l.Find(k)
		if !ok || *l.At(slot) != i {
			t.Fatalf("key %d lost after wraparound", k)
		}
	}
	// Evicting (keys[0] is LRU) exercises backward-shift deletion across
	// the wrap point; the survivors must all remain reachable.
	evK, _, ev := l.Insert(collidingKeys(l, target, 5)[4], 99)
	if !ev || evK != keys[0] {
		t.Fatalf("evicted %d, want %d", evK, keys[0])
	}
	for i, k := range keys[1:] {
		slot, ok := l.Find(k)
		if !ok || *l.At(slot) != i+1 {
			t.Fatalf("key %d unreachable after backward-shift delete", k)
		}
	}
}

func TestLRUReset(t *testing.T) {
	l := NewLRU[int](2)
	l.Insert(1, 1)
	l.Insert(2, 2)
	l.Reset()
	if l.Len() != 0 {
		t.Fatalf("Len after Reset = %d", l.Len())
	}
	if _, ok := l.Find(1); ok {
		t.Fatal("Reset table still finds keys")
	}
	l.Insert(3, 3)
	l.Insert(4, 4)
	k, _, ev := l.Insert(5, 5)
	if !ev || k != 3 {
		t.Fatalf("post-Reset eviction got %d (evicted=%v), want 3", k, ev)
	}
}

func TestLRUZeroKey(t *testing.T) {
	l := NewLRU[int](2)
	l.Insert(0, 7) // key 0 is a legal key (page 0 exists)
	if slot, ok := l.Find(0); !ok || *l.At(slot) != 7 {
		t.Fatal("zero key not stored")
	}
	l.Insert(1, 1)
	l.Insert(2, 2) // evicts 0
	if _, ok := l.Find(0); ok {
		t.Fatal("zero key should have been evicted")
	}
}

func TestLRURandomizedAgainstReference(t *testing.T) {
	const capacity = 64
	l := NewLRU[uint64](capacity)
	type refEnt struct {
		key, val uint64
	}
	var ref []refEnt // front = MRU
	find := func(k uint64) int {
		for i, e := range ref {
			if e.key == k {
				return i
			}
		}
		return -1
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		k := rng.Uint64() % 256
		switch rng.Intn(3) {
		case 0: // Find + TouchFront
			slot, ok := l.Find(k)
			ri := find(k)
			if ok != (ri >= 0) {
				t.Fatalf("step %d: Find(%d)=%v, ref %v", i, k, ok, ri >= 0)
			}
			if ok {
				if *l.At(slot) != ref[ri].val {
					t.Fatalf("step %d: value mismatch for %d", i, k)
				}
				l.TouchFront(slot)
				e := ref[ri]
				ref = append(ref[:ri], ref[ri+1:]...)
				ref = append([]refEnt{e}, ref...)
			}
		case 1: // Insert
			v := rng.Uint64()
			evK, evV, ev := l.Insert(k, v)
			if ri := find(k); ri >= 0 {
				if ev {
					t.Fatalf("step %d: eviction on overwrite", i)
				}
				ref = append(ref[:ri], ref[ri+1:]...)
			} else if len(ref) == capacity {
				last := ref[len(ref)-1]
				if !ev || evK != last.key || evV != last.val {
					t.Fatalf("step %d: eviction mismatch: got (%d,%d,%v) want (%d,%d)", i, evK, evV, ev, last.key, last.val)
				}
				ref = ref[:len(ref)-1]
			} else if ev {
				t.Fatalf("step %d: unexpected eviction", i)
			}
			ref = append([]refEnt{{k, v}}, ref...)
		case 2: // mutate through At without touching order
			if slot, ok := l.Find(k); ok {
				*l.At(slot) += 3
				ref[find(k)].val += 3
			}
		}
	}
}
