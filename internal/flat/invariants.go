package flat

import "fmt"

// CheckInvariants verifies the map's structural invariants: the stored
// count matches the occupied slots, the load factor is below the grow
// threshold, and every key is reachable from its home slot (no probe
// chain is broken by a stray empty slot). It is O(capacity) and meant
// for the opt-in debug mode, not the hot path.
func (m *Map) CheckInvariants() error {
	occupied := 0
	for _, k := range m.keys {
		if k != 0 {
			occupied++
		}
	}
	if occupied != m.n {
		return fmt.Errorf("flat.Map: %d occupied slots but n=%d", occupied, m.n)
	}
	if m.n*4 >= len(m.keys)*3 {
		return fmt.Errorf("flat.Map: load %d/%d at or above grow threshold", m.n, len(m.keys))
	}
	mask := len(m.keys) - 1
	for i, k := range m.keys {
		if k == 0 {
			continue
		}
		// Walk from the key's home slot; an empty slot before we reach it
		// means Get would miss this resident key.
		found := false
		for j := m.home(k); ; j = (j + 1) & mask {
			if m.keys[j] == k {
				found = j == i
				break
			}
			if m.keys[j] == 0 {
				break
			}
		}
		if !found {
			return fmt.Errorf("flat.Map: key %#x in slot %d unreachable from home %d", k, i, m.home(k))
		}
	}
	return nil
}

// CheckInvariants verifies the LRU's structural invariants: the
// recency list is a consistent doubly-linked chain over exactly the
// resident slots, the index holds one entry per resident slot, and
// every resident key resolves back to its slot. O(capacity).
func (l *LRU[V]) CheckInvariants() error {
	if l.n == 0 {
		if l.head != -1 || l.tail != -1 {
			return fmt.Errorf("flat.LRU: empty but head=%d tail=%d", l.head, l.tail)
		}
		return nil
	}
	if l.head < 0 || int(l.head) >= l.n || l.tail < 0 || int(l.tail) >= l.n {
		return fmt.Errorf("flat.LRU: head=%d tail=%d out of range [0,%d)", l.head, l.tail, l.n)
	}
	if l.prev[l.head] != -1 {
		return fmt.Errorf("flat.LRU: head %d has prev %d", l.head, l.prev[l.head])
	}
	// Validate the index before calling Find: a corrupted full index
	// would make Find probe forever.
	idxEntries := 0
	for i, s := range l.idx {
		if s == 0 {
			continue
		}
		idxEntries++
		if int(s-1) >= l.n {
			return fmt.Errorf("flat.LRU: idx[%d] points at slot %d beyond n=%d", i, s-1, l.n)
		}
	}
	if idxEntries != l.n {
		return fmt.Errorf("flat.LRU: index holds %d entries for %d residents", idxEntries, l.n)
	}
	// Walk the recency chain head -> tail.
	count := 0
	for s := l.head; s >= 0; s = l.next[s] {
		if int(s) >= l.n {
			return fmt.Errorf("flat.LRU: chain visits slot %d beyond n=%d", s, l.n)
		}
		count++
		if count > l.n {
			return fmt.Errorf("flat.LRU: recency chain longer than %d residents (cycle?)", l.n)
		}
		if nx := l.next[s]; nx >= 0 && l.prev[nx] != s {
			return fmt.Errorf("flat.LRU: prev[%d]=%d, want %d", nx, l.prev[nx], s)
		}
		if l.next[s] < 0 && s != l.tail {
			return fmt.Errorf("flat.LRU: chain ends at slot %d but tail=%d", s, l.tail)
		}
	}
	if count != l.n {
		return fmt.Errorf("flat.LRU: recency chain visits %d of %d residents", count, l.n)
	}
	for s := 0; s < l.n; s++ {
		got, ok := l.Find(l.keys[s])
		if !ok || got != s {
			return fmt.Errorf("flat.LRU: key %#x in slot %d resolves to (%d,%t)", l.keys[s], s, got, ok)
		}
	}
	return nil
}
