// Package flat provides the open-addressed hash structures backing the
// simulator's per-instruction hot paths: a growable uint64->uint64 Map
// (the unbounded off-chip metadata spaces of ISB/MISB and Triage's
// reuse histogram) and a bounded LRU table (TLB-synced and block-
// granular metadata caches). Both avoid Go's map runtime: lookups are a
// multiply, a shift, and a short linear probe over dense arrays, and
// neither allocates on the steady-state access path.
package flat

// fibMul is the 64-bit Fibonacci hashing constant (2^64 / phi).
const fibMul = 0x9E3779B97F4A7C15

// Map is an open-addressed uint64->uint64 hash map with linear probing.
// The zero key is stored out of line so every table slot with key 0 is
// unambiguously empty. Deletion uses backward-shift (no tombstones), so
// probe chains stay short; the table grows by doubling when the load
// factor reaches 3/4 and never shrinks.
type Map struct {
	keys  []uint64
	vals  []uint64
	shift uint // 64 - log2(len(keys))
	n     int  // entries stored in the table (excluding the zero key)

	hasZero bool
	zeroVal uint64
}

// NewMap returns a Map pre-sized for about hint entries.
func NewMap(hint int) *Map {
	capacity := 16
	for capacity*3 < hint*4 {
		capacity <<= 1
	}
	m := &Map{}
	m.init(capacity)
	return m
}

func (m *Map) init(capacity int) {
	m.keys = make([]uint64, capacity)
	m.vals = make([]uint64, capacity)
	m.shift = 64
	for c := capacity; c > 1; c >>= 1 {
		m.shift--
	}
}

func (m *Map) home(k uint64) int {
	return int((k * fibMul) >> m.shift)
}

// Len returns the number of stored entries.
func (m *Map) Len() int {
	if m.hasZero {
		return m.n + 1
	}
	return m.n
}

// Get returns the value stored under k.
func (m *Map) Get(k uint64) (uint64, bool) {
	if k == 0 {
		return m.zeroVal, m.hasZero
	}
	mask := len(m.keys) - 1
	for i := m.home(k); ; i = (i + 1) & mask {
		switch m.keys[i] {
		case k:
			return m.vals[i], true
		case 0:
			return 0, false
		}
	}
}

// Set stores v under k, inserting or overwriting.
func (m *Map) Set(k, v uint64) {
	if k == 0 {
		m.hasZero = true
		m.zeroVal = v
		return
	}
	mask := len(m.keys) - 1
	for i := m.home(k); ; i = (i + 1) & mask {
		switch m.keys[i] {
		case k:
			m.vals[i] = v
			return
		case 0:
			m.keys[i] = k
			m.vals[i] = v
			m.n++
			if m.n*4 >= len(m.keys)*3 {
				m.grow()
			}
			return
		}
	}
}

func (m *Map) grow() {
	oldKeys, oldVals := m.keys, m.vals
	m.init(len(oldKeys) * 2)
	mask := len(m.keys) - 1
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := m.home(k)
		for m.keys[j] != 0 {
			j = (j + 1) & mask
		}
		m.keys[j] = k
		m.vals[j] = oldVals[i]
	}
}

// Delete removes k if present, reporting whether it was. Backward-shift
// deletion moves later entries of the probe chain up over the hole (the
// same scheme as LRU.idxDelete), so lookups never meet a tombstone.
func (m *Map) Delete(k uint64) bool {
	if k == 0 {
		had := m.hasZero
		m.hasZero = false
		m.zeroVal = 0
		return had
	}
	mask := len(m.keys) - 1
	i := m.home(k)
	for {
		switch m.keys[i] {
		case k:
			goto found
		case 0:
			return false
		}
		i = (i + 1) & mask
	}
found:
	m.n--
	for {
		m.keys[i] = 0
		m.vals[i] = 0
		j := i
		for {
			j = (j + 1) & mask
			kj := m.keys[j]
			if kj == 0 {
				return true
			}
			// Move the entry at j up to i only if its home position
			// precedes the hole (cyclically): otherwise moving it would
			// break its own probe chain.
			h := m.home(kj)
			if (j-h)&mask >= (j-i)&mask {
				m.keys[i] = kj
				m.vals[i] = m.vals[j]
				i = j
				break
			}
		}
	}
}

// Range calls fn for every entry until fn returns false. Iteration
// order is the table's probe order (deterministic for a given insert
// history, unlike Go's map).
func (m *Map) Range(fn func(k, v uint64) bool) {
	if m.hasZero && !fn(0, m.zeroVal) {
		return
	}
	for i, k := range m.keys {
		if k != 0 && !fn(k, m.vals[i]) {
			return
		}
	}
}

// Reset empties the map, keeping its capacity.
func (m *Map) Reset() {
	clear(m.keys)
	clear(m.vals)
	m.n = 0
	m.hasZero = false
	m.zeroVal = 0
}

// LRU is a bounded key->value table with exact LRU eviction: an
// open-addressed index over a fixed slot array threaded by an intrusive
// doubly-linked recency list. All storage is allocated once at
// construction; Find/TouchFront/Insert never allocate.
//
// The index uses linear probing with backward-shift deletion, so
// evictions leave no tombstones and probe chains that wrap past the end
// of the table stay intact.
type LRU[V any] struct {
	keys []uint64
	vals []V
	prev []int32
	next []int32
	head int32 // MRU, -1 when empty
	tail int32 // LRU, -1 when empty
	n    int

	idx   []int32 // slot+1; 0 = empty
	shift uint
}

// NewLRU returns an LRU holding at most capacity entries.
func NewLRU[V any](capacity int) *LRU[V] {
	if capacity < 1 {
		capacity = 1
	}
	idxCap := 4
	for idxCap < capacity*2 {
		idxCap <<= 1
	}
	l := &LRU[V]{
		keys:  make([]uint64, capacity),
		vals:  make([]V, capacity),
		prev:  make([]int32, capacity),
		next:  make([]int32, capacity),
		head:  -1,
		tail:  -1,
		idx:   make([]int32, idxCap),
		shift: 64,
	}
	for c := idxCap; c > 1; c >>= 1 {
		l.shift--
	}
	return l
}

// Len returns the number of resident entries.
func (l *LRU[V]) Len() int { return l.n }

// Cap returns the table's fixed capacity.
func (l *LRU[V]) Cap() int { return len(l.keys) }

func (l *LRU[V]) home(k uint64) int {
	return int((k * fibMul) >> l.shift)
}

// Find returns the slot of key without touching recency order.
func (l *LRU[V]) Find(key uint64) (slot int, ok bool) {
	mask := len(l.idx) - 1
	for i := l.home(key); ; i = (i + 1) & mask {
		s := l.idx[i]
		if s == 0 {
			return 0, false
		}
		if l.keys[s-1] == key {
			return int(s - 1), true
		}
	}
}

// At returns a pointer to the value in slot (valid until eviction).
func (l *LRU[V]) At(slot int) *V { return &l.vals[slot] }

// Key returns the key stored in slot.
func (l *LRU[V]) Key(slot int) uint64 { return l.keys[slot] }

// TouchFront promotes slot to most-recently-used.
func (l *LRU[V]) TouchFront(slot int) {
	s := int32(slot)
	if l.head == s {
		return
	}
	l.unlink(s)
	l.pushFront(s)
}

// Insert stores val under key at MRU position. If key is already
// present its value is overwritten and promoted. When the table is full
// the LRU entry is evicted and returned.
func (l *LRU[V]) Insert(key uint64, val V) (evKey uint64, evVal V, evicted bool) {
	if slot, ok := l.Find(key); ok {
		l.vals[slot] = val
		l.TouchFront(slot)
		return 0, evVal, false
	}
	var s int32
	if l.n < len(l.keys) {
		s = int32(l.n)
		l.n++
	} else {
		s = l.tail
		evKey, evVal, evicted = l.keys[s], l.vals[s], true
		l.unlink(s)
		l.idxDelete(l.keys[s])
	}
	l.keys[s] = key
	l.vals[s] = val
	l.pushFront(s)
	l.idxInsert(key, s)
	return evKey, evVal, evicted
}

// Reset empties the table, keeping its capacity.
func (l *LRU[V]) Reset() {
	clear(l.idx)
	var zero V
	for i := range l.vals[:l.n] {
		l.vals[i] = zero
	}
	l.n = 0
	l.head, l.tail = -1, -1
}

func (l *LRU[V]) pushFront(s int32) {
	l.prev[s] = -1
	l.next[s] = l.head
	if l.head >= 0 {
		l.prev[l.head] = s
	}
	l.head = s
	if l.tail < 0 {
		l.tail = s
	}
}

func (l *LRU[V]) unlink(s int32) {
	if p := l.prev[s]; p >= 0 {
		l.next[p] = l.next[s]
	} else {
		l.head = l.next[s]
	}
	if n := l.next[s]; n >= 0 {
		l.prev[n] = l.prev[s]
	} else {
		l.tail = l.prev[s]
	}
}

func (l *LRU[V]) idxInsert(key uint64, s int32) {
	mask := len(l.idx) - 1
	i := l.home(key)
	for l.idx[i] != 0 {
		i = (i + 1) & mask
	}
	l.idx[i] = s + 1
}

// idxDelete removes key from the index with backward-shift deletion:
// later entries in the probe chain move up so lookups never need
// tombstones.
func (l *LRU[V]) idxDelete(key uint64) {
	mask := len(l.idx) - 1
	i := l.home(key)
	for {
		s := l.idx[i]
		if s == 0 {
			return // not present (cannot happen for resident keys)
		}
		if l.keys[s-1] == key {
			break
		}
		i = (i + 1) & mask
	}
	for {
		l.idx[i] = 0
		j := i
		for {
			j = (j + 1) & mask
			s := l.idx[j]
			if s == 0 {
				return
			}
			// Move the entry at j up to i only if its home position
			// precedes the hole (cyclically): otherwise moving it would
			// break its own probe chain.
			h := l.home(l.keys[s-1])
			if (j-h)&mask >= (j-i)&mask {
				l.idx[i] = s
				i = j
				break
			}
		}
	}
}
