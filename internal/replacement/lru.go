package replacement

// LRU is the classic least-recently-used policy.
type LRU struct {
	ways  int
	stamp [][]uint64 // [set][way] last-use timestamps
	clock uint64
}

// NewLRU returns an LRU policy for a sets x ways cache.
func NewLRU(sets, ways int) *LRU {
	s := make([][]uint64, sets)
	for i := range s {
		s[i] = make([]uint64, ways)
	}
	return &LRU{ways: ways, stamp: s}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Hit implements Policy.
func (p *LRU) Hit(set, way int, _ Access) { p.touch(set, way) }

// Fill implements Policy.
func (p *LRU) Fill(set, way int, _ Access) { p.touch(set, way) }

func (p *LRU) touch(set, way int) {
	p.clock++
	p.stamp[set][way] = p.clock
}

// Victim implements Policy.
func (p *LRU) Victim(set int, _ Access, valid []bool) int {
	if w := preferInvalid(valid); w >= 0 {
		return w
	}
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < len(valid); w++ {
		if s := p.stamp[set][w]; s < oldest {
			oldest, victim = s, w
		}
	}
	return victim
}
