package replacement

// LRU is the classic least-recently-used policy.
type LRU struct {
	ways  int
	stamp []uint64 // last-use timestamps, indexed set*ways + way
	clock uint64
}

// NewLRU returns an LRU policy for a sets x ways cache.
func NewLRU(sets, ways int) *LRU {
	return &LRU{ways: ways, stamp: make([]uint64, sets*ways)}
}

// Name implements Policy.
func (p *LRU) Name() string { return "lru" }

// Hit implements Policy.
func (p *LRU) Hit(set, way int, _ Access) { p.touch(set, way) }

// Fill implements Policy.
func (p *LRU) Fill(set, way int, _ Access) { p.touch(set, way) }

func (p *LRU) touch(set, way int) {
	p.clock++
	p.stamp[set*p.ways+way] = p.clock
}

// Victim implements Policy.
func (p *LRU) Victim(set int, _ Access, valid []bool) int {
	if w := preferInvalid(valid); w >= 0 {
		return w
	}
	stamp := p.stamp[set*p.ways : set*p.ways+len(valid)]
	victim, oldest := 0, ^uint64(0)
	for w := range stamp {
		if s := stamp[w]; s < oldest {
			oldest, victim = s, w
		}
	}
	return victim
}
