package replacement

import (
	"testing"

	"repro/internal/mem"
)

// optgenSim drives OPTgen with a line-address stream, tracking last
// access times the way a sampler would, and returns per-access OPT
// hit/miss decisions.
func optgenSim(capacity int, stream []mem.Line) []bool {
	o := NewOPTgen(capacity)
	last := map[mem.Line]uint64{}
	out := make([]bool, len(stream))
	for i, l := range stream {
		t, seen := last[l]
		out[i] = o.Access(t, seen)
		last[l] = o.Now() - 1
	}
	return out
}

func TestOPTgenColdMisses(t *testing.T) {
	got := optgenSim(2, []mem.Line{1, 2, 3, 4})
	for i, hit := range got {
		if hit {
			t.Errorf("access %d: cold access reported as OPT hit", i)
		}
	}
}

func TestOPTgenSimpleReuse(t *testing.T) {
	// Capacity 2, stream A B A B: both reuses fit under OPT.
	got := optgenSim(2, []mem.Line{10, 20, 10, 20})
	want := []bool{false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("access %d: hit=%v, want %v", i, got[i], want[i])
		}
	}
}

func TestOPTgenCapacityPressure(t *testing.T) {
	// OPTgen models Belady WITH BYPASS (as in the Hawkeye paper): lines
	// that are never reused bypass the cache. Capacity 1, stream
	// A B A: B bypasses, so A's reuse is an OPT hit.
	got := optgenSim(1, []mem.Line{1, 2, 1})
	want := []bool{false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cap=1 access %d: hit=%v, want %v", i, got[i], want[i])
		}
	}
	// Capacity 1, stream A B A B: both lines have overlapping liveness
	// intervals; only one can be kept, so exactly one reuse hits.
	got = optgenSim(1, []mem.Line{1, 2, 1, 2})
	hits := 0
	for _, h := range got {
		if h {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("cap=1 ABAB: %d OPT hits, want exactly 1", hits)
	}
	// Capacity 2 fits both liveness intervals: two hits.
	got = optgenSim(2, []mem.Line{1, 2, 1, 2})
	if !got[2] || !got[3] {
		t.Errorf("cap=2 ABAB: got %v, want both reuses to hit", got)
	}
}

func TestOPTgenMatchesBeladyOnScan(t *testing.T) {
	// Cyclic scan of N+1 lines through capacity N: Belady-with-bypass
	// pins N lines and lets the extra one always miss, giving a steady
	// state hit rate of N/(N+1) = 80%. LRU gets exactly zero here.
	const capacity = 4
	var stream []mem.Line
	for rep := 0; rep < 50; rep++ {
		for l := mem.Line(0); l < capacity+1; l++ {
			stream = append(stream, l)
		}
	}
	got := optgenSim(capacity, stream)
	hits := 0
	for _, h := range got {
		if h {
			hits++
		}
	}
	total := len(stream)
	// Steady state: 4 of every 5 accesses hit => 80%. Allow warmup to
	// pull it down a bit.
	rate := float64(hits) / float64(total)
	if rate < 0.70 || rate > 0.82 {
		t.Errorf("OPTgen hit rate on scan = %.2f, want ~0.75-0.80 (Belady with bypass)", rate)
	}
}

func TestOPTgenHitRateMonotoneInCapacity(t *testing.T) {
	// The same stream must never hit less often with a larger capacity.
	stream := make([]mem.Line, 0, 600)
	state := uint64(12345)
	for i := 0; i < 600; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		stream = append(stream, mem.Line(state%40))
	}
	prevRate := -1.0
	for _, c := range []int{1, 2, 4, 8, 16, 32} {
		got := optgenSim(c, stream)
		hits := 0
		for _, h := range got {
			if h {
				hits++
			}
		}
		rate := float64(hits) / float64(len(stream))
		if rate < prevRate-1e-9 {
			t.Errorf("capacity %d: hit rate %.3f < previous %.3f (not monotone)", c, rate, prevRate)
		}
		prevRate = rate
	}
}

func TestOPTgenWindowExpiry(t *testing.T) {
	o := NewOPTgen(1) // history = 8
	last := uint64(0)
	o.Access(0, false)
	last = o.Now() - 1
	// Push 10 unrelated accesses, aging the first line out of the window.
	for i := 0; i < 10; i++ {
		o.Access(0, false)
	}
	if o.Access(last, true) {
		t.Error("access outside the 8x history window must be an OPT miss")
	}
}

func TestOPTgenStats(t *testing.T) {
	o := NewOPTgen(2)
	o.Access(0, false)
	l0 := o.Now() - 1
	o.Access(l0, true)
	if o.Accesses() != 2 || o.Hits() != 1 {
		t.Errorf("accesses=%d hits=%d, want 2,1", o.Accesses(), o.Hits())
	}
	if r := o.HitRate(); r != 0.5 {
		t.Errorf("HitRate = %g, want 0.5", r)
	}
	o.ResetStats()
	if o.Accesses() != 0 || o.Hits() != 0 || o.HitRate() != 0 {
		t.Error("ResetStats did not clear counters")
	}
}

func TestOPTgenCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewOPTgen(0) did not panic")
		}
	}()
	NewOPTgen(0)
}
