package replacement

// SRRIP implements static re-reference interval prediction (Jaleel et
// al., ISCA'10) with M-bit RRPVs. New lines are inserted with a long
// re-reference prediction (maxRRPV-1); hits promote to 0; the victim is
// any line at maxRRPV, aging all lines when none is found.
type SRRIP struct {
	ways    int
	maxRRPV uint8
	rrpv    [][]uint8
}

// NewSRRIP returns an SRRIP policy with the given RRPV width in bits
// (2 or 3 are typical).
func NewSRRIP(sets, ways int, bits uint) *SRRIP {
	if bits == 0 || bits > 7 {
		panic("replacement: SRRIP bits must be in [1,7]")
	}
	r := make([][]uint8, sets)
	max := uint8(1<<bits - 1)
	for i := range r {
		row := make([]uint8, ways)
		for w := range row {
			row[w] = max
		}
		r[i] = row
	}
	return &SRRIP{ways: ways, maxRRPV: max, rrpv: r}
}

// Name implements Policy.
func (p *SRRIP) Name() string { return "srrip" }

// Hit implements Policy.
func (p *SRRIP) Hit(set, way int, _ Access) { p.rrpv[set][way] = 0 }

// Fill implements Policy.
func (p *SRRIP) Fill(set, way int, _ Access) { p.rrpv[set][way] = p.maxRRPV - 1 }

// Victim implements Policy.
func (p *SRRIP) Victim(set int, _ Access, valid []bool) int {
	if w := preferInvalid(valid); w >= 0 {
		return w
	}
	row := p.rrpv[set]
	for {
		for w := 0; w < len(valid); w++ {
			if row[w] == p.maxRRPV {
				return w
			}
		}
		for w := 0; w < len(valid); w++ {
			row[w]++
		}
	}
}
