package replacement

// Predictor is Hawkeye's PC-indexed hit/miss predictor: a table of
// 3-bit saturating counters indexed by a hash of the load PC. A PC whose
// past loads OPT would have cached trains toward "cache-friendly".
type Predictor struct {
	counters []uint8
	mask     uint64
}

const (
	predictorMax = 7 // 3-bit counters
	predictorMid = 4 // >= mid predicts cache-friendly
)

// NewPredictor returns a predictor with 2^bits counters (Hawkeye uses
// 8K entries, bits=13).
func NewPredictor(bits uint) *Predictor {
	if bits == 0 || bits > 24 {
		panic("replacement: Predictor bits must be in [1,24]")
	}
	n := 1 << bits
	c := make([]uint8, n)
	for i := range c {
		c[i] = predictorMid // start neutral-friendly
	}
	return &Predictor{counters: c, mask: uint64(n - 1)}
}

func (p *Predictor) index(pc uint64) uint64 {
	// CRC-ish mix so nearby PCs spread across the table.
	h := pc
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h & p.mask
}

// TrainPositive moves the PC toward cache-friendly.
func (p *Predictor) TrainPositive(pc uint64) {
	i := p.index(pc)
	if p.counters[i] < predictorMax {
		p.counters[i]++
	}
}

// TrainNegative moves the PC toward cache-averse.
func (p *Predictor) TrainNegative(pc uint64) {
	i := p.index(pc)
	if p.counters[i] > 0 {
		p.counters[i]--
	}
}

// Friendly reports whether loads from pc are predicted cache-friendly.
func (p *Predictor) Friendly(pc uint64) bool {
	return p.counters[p.index(pc)] >= predictorMid
}

// Counter exposes the raw counter value for tests and debugging.
func (p *Predictor) Counter(pc uint64) uint8 { return p.counters[p.index(pc)] }
