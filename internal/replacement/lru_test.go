package replacement

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func allValid(ways int) []bool {
	v := make([]bool, ways)
	for i := range v {
		v[i] = true
	}
	return v
}

func TestLRUPrefersInvalid(t *testing.T) {
	p := NewLRU(4, 4)
	valid := []bool{true, true, false, true}
	if got := p.Victim(0, Access{}, valid); got != 2 {
		t.Errorf("Victim = %d, want invalid way 2", got)
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	p := NewLRU(1, 4)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, Access{})
	}
	p.Hit(0, 0, Access{}) // way 0 most recent; way 1 now LRU
	if got := p.Victim(0, Access{}, allValid(4)); got != 1 {
		t.Errorf("Victim = %d, want 1", got)
	}
	p.Hit(0, 1, Access{})
	if got := p.Victim(0, Access{}, allValid(4)); got != 2 {
		t.Errorf("Victim = %d, want 2", got)
	}
}

func TestLRUSetsIndependent(t *testing.T) {
	p := NewLRU(2, 2)
	p.Fill(0, 0, Access{})
	p.Fill(0, 1, Access{})
	p.Fill(1, 1, Access{})
	p.Fill(1, 0, Access{})
	if got := p.Victim(0, Access{}, allValid(2)); got != 0 {
		t.Errorf("set 0 Victim = %d, want 0", got)
	}
	if got := p.Victim(1, Access{}, allValid(2)); got != 1 {
		t.Errorf("set 1 Victim = %d, want 1", got)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := NewRandom(8, 42)
	b := NewRandom(8, 42)
	for i := 0; i < 100; i++ {
		va := a.Victim(0, Access{}, allValid(8))
		vb := b.Victim(0, Access{}, allValid(8))
		if va != vb {
			t.Fatalf("iteration %d: %d != %d", i, va, vb)
		}
		if va < 0 || va >= 8 {
			t.Fatalf("victim %d out of range", va)
		}
	}
}

func TestRandomPrefersInvalid(t *testing.T) {
	p := NewRandom(4, 1)
	valid := []bool{true, false, true, true}
	if got := p.Victim(0, Access{}, valid); got != 1 {
		t.Errorf("Victim = %d, want 1", got)
	}
}

func TestSRRIPHitPromotion(t *testing.T) {
	p := NewSRRIP(1, 4, 3)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, Access{})
	}
	p.Hit(0, 2, Access{})
	// All lines inserted at 6; after aging, ways 0,1,3 reach 7 first.
	v := p.Victim(0, Access{}, allValid(4))
	if v == 2 {
		t.Error("SRRIP evicted the just-hit way")
	}
}

func TestSRRIPVictimAlwaysInRangeProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewSRRIP(4, 8, 2)
		for _, op := range ops {
			set := int(op % 4)
			way := int(op/4) % 8
			switch {
			case op%3 == 0:
				p.Fill(set, way, Access{})
			case op%3 == 1:
				p.Hit(set, way, Access{})
			default:
				v := p.Victim(set, Access{}, allValid(8))
				if v < 0 || v >= 8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRRIPBitsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSRRIP with 0 bits did not panic")
		}
	}()
	NewSRRIP(1, 1, 0)
}

// Every policy must implement the Policy interface.
var (
	_ Policy = (*LRU)(nil)
	_ Policy = (*Random)(nil)
	_ Policy = (*SRRIP)(nil)
	_ Policy = (*Hawkeye)(nil)
)

// Cross-policy property: victims are always legal way indices.
func TestAllPoliciesVictimInRange(t *testing.T) {
	policies := []Policy{
		NewLRU(8, 4),
		NewRandom(4, 7),
		NewSRRIP(8, 4, 3),
		NewHawkeye(8, 4, 2, 8),
	}
	for _, p := range policies {
		for i := 0; i < 500; i++ {
			set := i % 8
			a := Access{Line: mem.Line(i * 37), PC: uint64(i % 5)}
			v := p.Victim(set, a, allValid(4))
			if v < 0 || v >= 4 {
				t.Fatalf("%s: victim %d out of range", p.Name(), v)
			}
			p.Fill(set, v, a)
			if i%3 == 0 {
				p.Hit(set, v, a)
			}
		}
	}
}
