package replacement

// OPTgen reproduces the OPTgen structure from Hawkeye (Jain & Lin,
// ISCA'16): it computes, for a stream of accesses to one cache set,
// whether Belady's optimal policy would have hit each access, using an
// occupancy vector over a sliding window of the last histSize accesses
// (8x the cache capacity in the paper).
//
// The caller supplies the per-line liveness interval: the time of the
// line's previous access (if any). OPTgen checks whether every slot of
// the occupancy vector within the interval is below capacity; if so, OPT
// would have kept the line (a hit), and the interval's occupancy is
// incremented.
//
// Triage reuses OPTgen copies as "sandboxes" to estimate the optimal
// metadata hit rate at candidate metadata-store sizes (paper §3), so
// hit-rate accounting is part of the exported API.
type OPTgen struct {
	capacity int
	histSize int
	occ      []uint16
	now      uint64
	hits     uint64
	accesses uint64
}

// NewOPTgen returns an OPTgen instance for a set with the given
// capacity (number of ways, or metadata entries for Triage sandboxes).
// The history window is 8x the capacity, per the Hawkeye paper.
func NewOPTgen(capacity int) *OPTgen {
	if capacity < 1 {
		panic("replacement: OPTgen capacity must be >= 1")
	}
	h := 8 * capacity
	return &OPTgen{capacity: capacity, histSize: h, occ: make([]uint16, h)}
}

// Capacity returns the modeled capacity.
func (o *OPTgen) Capacity() int { return o.capacity }

// Now returns the current per-set access time. Callers record this as
// the line's last-access time after calling Access.
func (o *OPTgen) Now() uint64 { return o.now }

// Access records one access. lastTime is the OPTgen time of the line's
// previous access and hasLast reports whether there was one within
// callers' tracking. It returns whether OPT would have hit.
func (o *OPTgen) Access(lastTime uint64, hasLast bool) bool {
	t := o.now
	o.now++
	// Zero the slot being reused by the circular window.
	o.occ[t%uint64(o.histSize)] = 0
	o.accesses++
	if !hasLast || t-lastTime >= uint64(o.histSize) || lastTime >= t {
		// Cold access or interval fell out of the window: OPT miss by
		// construction (unbounded reuse distance).
		return false
	}
	for i := lastTime; i < t; i++ {
		if int(o.occ[i%uint64(o.histSize)]) >= o.capacity {
			return false
		}
	}
	for i := lastTime; i < t; i++ {
		o.occ[i%uint64(o.histSize)]++
	}
	o.hits++
	return true
}

// HitRate returns OPT's hit rate over all accesses seen so far.
func (o *OPTgen) HitRate() float64 {
	if o.accesses == 0 {
		return 0
	}
	return float64(o.hits) / float64(o.accesses)
}

// Hits returns the number of OPT hits recorded.
func (o *OPTgen) Hits() uint64 { return o.hits }

// Accesses returns the number of accesses recorded.
func (o *OPTgen) Accesses() uint64 { return o.accesses }

// ResetStats clears hit/access counters, keeping occupancy state. Triage
// resets its sandboxes at every partition-evaluation epoch.
func (o *OPTgen) ResetStats() {
	o.hits = 0
	o.accesses = 0
}
