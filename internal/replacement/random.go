package replacement

// Random evicts a pseudo-random valid way. It is deterministic (seeded
// xorshift) so simulations are reproducible.
type Random struct {
	ways  int
	state uint64
}

// NewRandom returns a random-replacement policy for a cache with the
// given associativity.
func NewRandom(ways int, seed uint64) *Random {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Random{ways: ways, state: seed}
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Hit implements Policy.
func (p *Random) Hit(int, int, Access) {}

// Fill implements Policy.
func (p *Random) Fill(int, int, Access) {}

// Victim implements Policy.
func (p *Random) Victim(_ int, _ Access, valid []bool) int {
	if w := preferInvalid(valid); w >= 0 {
		return w
	}
	p.state ^= p.state << 13
	p.state ^= p.state >> 7
	p.state ^= p.state << 17
	return int(p.state % uint64(len(valid)))
}
