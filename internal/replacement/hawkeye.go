package replacement

import "repro/internal/mem"

// Hawkeye implements the Hawkeye replacement policy (Jain & Lin,
// ISCA'16). A subset of sets is sampled; for those sets OPTgen
// reconstructs Belady's decisions over an 8x history and trains a
// PC-indexed predictor. All sets then insert lines with high priority
// (RRPV 0) when the inserting PC is predicted cache-friendly and with
// RRPV 7 otherwise; evicting a cache-friendly line detrains the last PC
// that touched it.
type Hawkeye struct {
	ways       int
	sampleMask int // set & sampleMask == 0 => sampled
	pred       *Predictor

	rrpv     [][]uint8
	friendly [][]bool
	lastPC   [][]uint64

	samplers map[int]*setSampler
}

const hawkeyeMaxRRPV = 7

// setSampler tracks per-line last access times for one sampled set.
type setSampler struct {
	opt  *OPTgen
	last map[mem.Line]sampleEntry
	cap  int
}

type sampleEntry struct {
	time uint64
	pc   uint64
}

// NewHawkeye returns a Hawkeye policy for a sets x ways cache. Every
// sampleEvery-th set is sampled (64 in the original; must be a power of
// two).
func NewHawkeye(sets, ways, sampleEvery int, predictorBits uint) *Hawkeye {
	if !mem.IsPow2(sampleEvery) {
		panic("replacement: sampleEvery must be a power of two")
	}
	h := &Hawkeye{
		ways:       ways,
		sampleMask: sampleEvery - 1,
		pred:       NewPredictor(predictorBits),
		rrpv:       make([][]uint8, sets),
		friendly:   make([][]bool, sets),
		lastPC:     make([][]uint64, sets),
		samplers:   make(map[int]*setSampler),
	}
	for i := range h.rrpv {
		h.rrpv[i] = make([]uint8, ways)
		h.friendly[i] = make([]bool, ways)
		h.lastPC[i] = make([]uint64, ways)
		for w := range h.rrpv[i] {
			h.rrpv[i][w] = hawkeyeMaxRRPV
		}
	}
	return h
}

// Name implements Policy.
func (h *Hawkeye) Name() string { return "hawkeye" }

// Predictor exposes the underlying PC predictor (used by tests and by
// Triage's modified training path).
func (h *Hawkeye) Predictor() *Predictor { return h.pred }

func (h *Hawkeye) sampled(set int) bool { return set&h.sampleMask == 0 }

func (h *Hawkeye) sampler(set int) *setSampler {
	s, ok := h.samplers[set]
	if !ok {
		s = &setSampler{
			opt:  NewOPTgen(h.ways),
			last: make(map[mem.Line]sampleEntry),
			cap:  16 * h.ways,
		}
		h.samplers[set] = s
	}
	return s
}

// observe runs the OPTgen training pass for an access to a sampled set.
func (h *Hawkeye) observe(set int, a Access) {
	s := h.sampler(set)
	prev, seen := s.last[a.Line]
	optHit := s.opt.Access(prev.time, seen)
	if seen {
		if optHit {
			h.pred.TrainPositive(prev.pc)
		} else {
			h.pred.TrainNegative(prev.pc)
		}
	}
	if len(s.last) >= s.cap {
		// Evict the stalest tracked line to bound sampler state.
		var oldest mem.Line
		oldestTime := ^uint64(0)
		for l, e := range s.last {
			if e.time < oldestTime {
				oldestTime, oldest = e.time, l
			}
		}
		delete(s.last, oldest)
	}
	s.last[a.Line] = sampleEntry{time: s.opt.Now() - 1, pc: a.PC}
}

// Hit implements Policy.
func (h *Hawkeye) Hit(set, way int, a Access) {
	if h.sampled(set) {
		h.observe(set, a)
	}
	friendly := h.pred.Friendly(a.PC)
	h.friendly[set][way] = friendly
	h.lastPC[set][way] = a.PC
	if friendly {
		h.rrpv[set][way] = 0
	} else {
		h.rrpv[set][way] = hawkeyeMaxRRPV
	}
}

// Fill implements Policy.
func (h *Hawkeye) Fill(set, way int, a Access) {
	if h.sampled(set) {
		h.observe(set, a)
	}
	friendly := h.pred.Friendly(a.PC)
	h.friendly[set][way] = friendly
	h.lastPC[set][way] = a.PC
	if friendly {
		// Age the other friendly lines so newly inserted friendly lines
		// form an LRU order among themselves (original Hawkeye).
		for w := 0; w < h.ways; w++ {
			if w != way && h.rrpv[set][w] < hawkeyeMaxRRPV-1 {
				h.rrpv[set][w]++
			}
		}
		h.rrpv[set][way] = 0
	} else {
		h.rrpv[set][way] = hawkeyeMaxRRPV
	}
}

// Victim implements Policy.
func (h *Hawkeye) Victim(set int, _ Access, valid []bool) int {
	if w := preferInvalid(valid); w >= 0 {
		return w
	}
	row := h.rrpv[set]
	// Prefer a cache-averse line (RRPV == 7). Only len(valid) ways are
	// eligible: a way-partitioned cache passes a shortened slice.
	for w := 0; w < len(valid); w++ {
		if row[w] == hawkeyeMaxRRPV {
			return w
		}
	}
	// Otherwise evict the oldest friendly line and detrain its PC.
	victim, maxRRPV := 0, -1
	for w := 0; w < len(valid); w++ {
		if int(row[w]) > maxRRPV {
			maxRRPV, victim = int(row[w]), w
		}
	}
	if h.friendly[set][victim] {
		h.pred.TrainNegative(h.lastPC[set][victim])
	}
	return victim
}
