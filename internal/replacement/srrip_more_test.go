package replacement

import (
	"testing"

	"repro/internal/mem"
)

func mLine(i int) mem.Line { return mem.Line(i * 977) }

func TestSRRIPAgingTerminates(t *testing.T) {
	// All lines at RRPV 0: Victim must age until one reaches max and
	// still return a legal way.
	p := NewSRRIP(1, 4, 2)
	for w := 0; w < 4; w++ {
		p.Fill(0, w, Access{})
		p.Hit(0, w, Access{}) // promote to 0
	}
	v := p.Victim(0, Access{}, allValid(4))
	if v < 0 || v >= 4 {
		t.Fatalf("victim %d out of range", v)
	}
}

func TestHawkeyeSamplerBounded(t *testing.T) {
	h := NewHawkeye(64, 4, 1, 8) // every set sampled
	for i := 0; i < 100000; i++ {
		set := i % 64
		a := Access{Line: 0, PC: uint64(i % 3)}
		a.Line = mLine(i)
		h.Fill(set, i%4, a)
	}
	for set, s := range h.samplers {
		if len(s.last) > s.cap {
			t.Fatalf("set %d sampler grew to %d entries (cap %d)", set, len(s.last), s.cap)
		}
	}
}

func TestPredictorBitsValidation(t *testing.T) {
	for _, bits := range []uint{0, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPredictor(%d) did not panic", bits)
				}
			}()
			NewPredictor(bits)
		}()
	}
}

func TestRandomZeroSeedGetsDefault(t *testing.T) {
	p := NewRandom(4, 0)
	// Must still produce victims without hanging or dividing by zero.
	for i := 0; i < 10; i++ {
		if v := p.Victim(0, Access{}, allValid(4)); v < 0 || v >= 4 {
			t.Fatalf("victim %d", v)
		}
	}
}
