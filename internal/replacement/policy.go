// Package replacement provides cache replacement policies: LRU, random,
// SRRIP, and Hawkeye (Jain & Lin, ISCA'16), which the paper uses both as
// an LLC policy and — in modified form — as Triage's metadata
// replacement policy and partition-utility estimator.
package replacement

import "repro/internal/mem"

// Access carries the information a policy may use on each cache access.
type Access struct {
	Line mem.Line
	PC   uint64
	// Core is the id of the requesting core (0 on single-core systems).
	Core int
	// Prefetch marks fills/touches caused by a prefetcher rather than a
	// demand access.
	Prefetch bool
}

// Policy decides which way to evict within a set and observes hits and
// fills. A single Policy instance serves one cache; implementations are
// sized with NewXxx(sets, ways).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Hit notifies the policy that the line in (set, way) was accessed.
	Hit(set, way int, a Access)
	// Fill notifies the policy that a new line was installed in
	// (set, way).
	Fill(set, way int, a Access)
	// Victim selects the way to evict from set for the incoming access.
	// valid[w] reports whether way w currently holds a line; policies
	// must prefer an invalid way when one exists.
	Victim(set int, a Access, valid []bool) int
}

// preferInvalid returns the first invalid way, or -1 if all are valid.
func preferInvalid(valid []bool) int {
	for w, v := range valid {
		if !v {
			return w
		}
	}
	return -1
}
