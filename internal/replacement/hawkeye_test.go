package replacement

import (
	"testing"

	"repro/internal/mem"
)

func TestPredictorTraining(t *testing.T) {
	p := NewPredictor(8)
	pc := uint64(0x400123)
	if !p.Friendly(pc) {
		t.Fatal("predictor should start neutral-friendly")
	}
	for i := 0; i < 8; i++ {
		p.TrainNegative(pc)
	}
	if p.Friendly(pc) {
		t.Error("fully detrained PC still predicted friendly")
	}
	if p.Counter(pc) != 0 {
		t.Errorf("counter = %d, want saturated at 0", p.Counter(pc))
	}
	for i := 0; i < 20; i++ {
		p.TrainPositive(pc)
	}
	if !p.Friendly(pc) {
		t.Error("fully trained PC not predicted friendly")
	}
	if p.Counter(pc) != predictorMax {
		t.Errorf("counter = %d, want saturated at %d", p.Counter(pc), predictorMax)
	}
}

func TestPredictorIndependentPCs(t *testing.T) {
	p := NewPredictor(13)
	a, b := uint64(0x1000), uint64(0x2000)
	for i := 0; i < 8; i++ {
		p.TrainNegative(a)
	}
	if !p.Friendly(b) {
		t.Error("detraining PC a affected PC b (hash collision at 13 bits is ~0 for 2 PCs)")
	}
}

func TestHawkeyeEvictsAversePCsFirst(t *testing.T) {
	h := NewHawkeye(1, 4, 1, 10)
	friendlyPC, aversePC := uint64(0xAAA0), uint64(0xBBB0)
	for i := 0; i < 8; i++ {
		h.Predictor().TrainPositive(friendlyPC)
		h.Predictor().TrainNegative(aversePC)
	}
	// Fill: ways 0-2 friendly, way 3 averse.
	for w := 0; w < 3; w++ {
		h.Fill(0, w, Access{Line: mem.Line(w), PC: friendlyPC})
	}
	h.Fill(0, 3, Access{Line: 3, PC: aversePC})
	v := h.Victim(0, Access{PC: friendlyPC}, allValid(4))
	if v != 3 {
		t.Errorf("Victim = %d, want the cache-averse way 3", v)
	}
}

func TestHawkeyeDetrainsOnFriendlyEviction(t *testing.T) {
	h := NewHawkeye(1, 2, 1, 10)
	pc := uint64(0x77)
	for i := 0; i < 8; i++ {
		h.Predictor().TrainPositive(pc)
	}
	before := h.Predictor().Counter(pc)
	h.Fill(0, 0, Access{Line: 1, PC: pc})
	h.Fill(0, 1, Access{Line: 2, PC: pc})
	h.Victim(0, Access{PC: pc}, allValid(2)) // must evict a friendly line
	after := h.Predictor().Counter(pc)
	if after != before-1 {
		t.Errorf("counter after friendly eviction = %d, want %d", after, before-1)
	}
}

// End-to-end behavioral test: on a thrashing scan that LRU handles
// terribly, Hawkeye should learn to retain a subset and beat LRU.
func TestHawkeyeBeatsLRUOnScan(t *testing.T) {
	const (
		sets = 16
		ways = 4
	)
	run := func(p Policy) int {
		// Tiny direct cache model around the policy.
		type lineState struct {
			line  mem.Line
			valid bool
		}
		cache := make([][]lineState, sets)
		for i := range cache {
			cache[i] = make([]lineState, ways)
		}
		hits := 0
		// 6 lines per set cycling through 4 ways, 300 rounds.
		for round := 0; round < 300; round++ {
			for k := 0; k < 6; k++ {
				l := mem.Line(k*sets + 1) // same set 1 for stress
				set := mem.SetIndex(l, sets)
				a := Access{Line: l, PC: uint64(k)}
				found := -1
				for w := range cache[set] {
					if cache[set][w].valid && cache[set][w].line == l {
						found = w
						break
					}
				}
				if found >= 0 {
					hits++
					p.Hit(set, found, a)
					continue
				}
				valid := make([]bool, ways)
				for w := range cache[set] {
					valid[w] = cache[set][w].valid
				}
				w := p.Victim(set, a, valid)
				cache[set][w] = lineState{line: l, valid: true}
				p.Fill(set, w, a)
			}
		}
		return hits
	}
	lruHits := run(NewLRU(sets, ways))
	hawkHits := run(NewHawkeye(sets, ways, 1, 10))
	if lruHits != 0 {
		t.Errorf("LRU hits on 6-over-4 cyclic scan = %d, want 0 (sanity)", lruHits)
	}
	if hawkHits <= lruHits {
		t.Errorf("Hawkeye hits = %d, want > LRU's %d on thrashing scan", hawkHits, lruHits)
	}
}

func TestHawkeyeSampleEveryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHawkeye with non-pow2 sampleEvery did not panic")
		}
	}()
	NewHawkeye(8, 4, 3, 8)
}
