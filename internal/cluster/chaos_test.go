package cluster

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// TestClusterWorkerKill is the cluster chaos harness: three seeded
// cycles kill a whole worker mid-job (all its traffic suppressed, as
// if kill -9'd) and check the tentpole guarantees:
//
//   - no acknowledged job is lost: every submission the coordinator
//     acknowledged reaches done, the victim's leased job included
//     (its lease lapses and the sweep requeues it onto the survivor);
//   - nothing durable is re-simulated: a gate on both workers asserts
//     no simulation ever starts for a key whose result is already in
//     the store;
//   - figures stay byte-identical: every payload matches a fault-free
//     single-node baseline.
func TestClusterWorkerKill(t *testing.T) {
	for cycle := 0; cycle < 3; cycle++ {
		seedBase := uint64(cycle*100 + 1)
		specs := make([]service.JobSpec, 6)
		for i := range specs {
			specs[i] = tinySpec(seedBase + uint64(i))
		}
		baseline := localPayloads(t, specs)

		tc := startCluster(t, nil, func(c *Config) {
			c.LeaseTTL = 500 * time.Millisecond
			c.SweepEvery = 50 * time.Millisecond
		})

		var (
			mu       sync.Mutex
			simCount = make(map[string]int)
		)
		countingGate := func(key string) {
			if tc.srv.HasDurable(key) {
				t.Errorf("cycle %d: key %s re-simulated after its result was durable", cycle, key)
			}
			mu.Lock()
			simCount[key]++
			mu.Unlock()
		}

		// The victim parks its first job before the simulation starts
		// and holds it until killed — a worker dying mid-job. The
		// accounting gate runs before the park so the zombie's
		// simulation is counted at pre-kill time.
		victimArmed := make(chan struct{})
		victimRelease := make(chan struct{})
		var armedOnce sync.Once
		var victimSims atomic.Int64
		victimGate := func(key string) {
			victimSims.Add(1)
			countingGate(key)
			armedOnce.Do(func() {
				close(victimArmed)
				<-victimRelease
			})
		}

		victim, stopVictim := startWorker(t, tc.ts.URL, "victim", func(c *WorkerConfig) { c.Gate = victimGate })
		_, stopSurvivor := startWorker(t, tc.ts.URL, "survivor", func(c *WorkerConfig) { c.Gate = countingGate })

		// Submit only once both workers poll, so the victim reliably
		// ends up holding a job.
		regDeadline := time.Now().Add(10 * time.Second)
		for len(tc.coord.Status().Workers) < 2 && time.Now().Before(regDeadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if n := len(tc.coord.Status().Workers); n < 2 {
			t.Fatalf("cycle %d: only %d workers registered", cycle, n)
		}

		jobs := make([]*service.Job, 0, len(specs))
		for _, spec := range specs {
			j, _, err := tc.srv.Submit(cloneSpec(spec))
			if err != nil {
				t.Fatalf("cycle %d: submit: %v", cycle, err)
			}
			jobs = append(jobs, j) // acknowledged
		}

		// Wait until the victim holds a job mid-run, then kill it. The
		// zombie simulation continues but its upload is suppressed.
		select {
		case <-victimArmed:
		case <-time.After(30 * time.Second):
			t.Fatalf("cycle %d: victim never picked up a job", cycle)
		}
		victim.Kill()
		close(victimRelease)

		// Every acknowledged job still completes, and the payloads are
		// byte-identical to the fault-free single-node baseline.
		for i, j := range jobs {
			st := waitTerminal(t, tc.srv, j)
			if st.State != service.StateDone {
				t.Fatalf("cycle %d: acknowledged job %d lost (state %s: %s)", cycle, i, st.State, st.Error)
			}
			payload, ok := tc.srv.Result(j)
			if !ok {
				t.Fatalf("cycle %d: job %d has no result", cycle, i)
			}
			if !bytes.Equal(payload, baseline[st.Key]) {
				t.Errorf("cycle %d: job %d payload differs from the fault-free baseline", cycle, i)
			}
		}

		// The kill was observed: the victim's lease lapsed and its job
		// requeued onto the survivor.
		deadline := time.Now().Add(10 * time.Second)
		for tc.coord.mRequeued.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if tc.coord.mRequeued.Load() == 0 {
			t.Errorf("cycle %d: no job was requeued after the worker kill", cycle)
		}
		if victimSims.Load() == 0 {
			t.Errorf("cycle %d: the victim never started a job (kill tested nothing)", cycle)
		}

		// Every key simulated by someone; the only key allowed a second
		// simulation is the victim's killed job (re-run by the survivor,
		// never after durability).
		mu.Lock()
		doubles := 0
		for key, n := range simCount {
			if n > 2 {
				t.Errorf("cycle %d: key %s simulated %d times", cycle, key, n)
			}
			if n == 2 {
				doubles++
			}
		}
		keys := len(simCount)
		mu.Unlock()
		if keys != len(specs) {
			t.Errorf("cycle %d: %d distinct keys simulated, want %d", cycle, keys, len(specs))
		}
		if doubles > 1 {
			t.Errorf("cycle %d: %d keys were simulated twice, only the killed job's may be", cycle, doubles)
		}

		stopSurvivor()
		stopVictim()
		tc.stop()
	}
}
