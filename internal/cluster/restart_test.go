package cluster

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/vfs"
)

// TestCoordinatorRestart pins the restart durability contract: jobs
// acknowledged by a cluster coordinator — queued ones the dispatcher
// never handed out AND leased-but-unfinished ones a worker held when
// the coordinator died — persist through queue.jsonl and re-admit on
// the next coordinator with the same content-derived ids, then run to
// completion without any cell simulating twice.
func TestCoordinatorRestart(t *testing.T) {
	mem := vfs.NewMem(42)
	specs := make([]service.JobSpec, 4)
	for i := range specs {
		specs[i] = tinySpec(uint64(400 + i))
	}

	// --- Incarnation 1: one worker that parks forever on its first
	// job, so when the coordinator dies the cluster holds one leased
	// Running job, one job in the dispatcher's hand, and the rest
	// queued. Nothing completes.
	srv1, err := service.New(service.Config{StoreDir: "store", FS: mem, QueueCap: 64, Workers: 2, RemoteExec: true})
	if err != nil {
		t.Fatal(err)
	}
	coord1, err := New(Config{Server: srv1, LeaseTTL: time.Minute, SweepEvery: time.Minute, PollWindow: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(coord1.Handler(srv1.Handler()))

	parked := make(chan struct{})
	var parkOnce sync.Once
	w1, _ := startWorker(t, ts1.URL, "doomed", func(c *WorkerConfig) {
		c.Gate = func(key string) {
			parkOnce.Do(func() { close(parked) })
			select {} // never returns: the worker dies with the coordinator
		}
	})

	ids := make([]string, len(specs))
	for i, spec := range specs {
		j, _, err := srv1.Submit(cloneSpec(spec))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = j.ID()
	}
	select {
	case <-parked:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never leased a job")
	}

	// Kill the first incarnation. Drain returns immediately (remote
	// jobs are not local goroutines); the leased job is still Running,
	// and every admission is on disk in queue.jsonl.
	w1.Kill()
	srv1.Drain()
	coord1.Stop()
	ts1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// --- Incarnation 2 over the same disk: all four jobs re-admit
	// (none became durable), under the same content-derived ids.
	srv2, err := service.New(service.Config{StoreDir: "store", FS: mem, QueueCap: 64, Workers: 2, RemoteExec: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := srv2.Restored(); n != int64(len(specs)) {
		t.Fatalf("restarted coordinator re-admitted %d jobs, want %d", n, len(specs))
	}
	coord2, err := New(Config{Server: srv2, LeaseTTL: 5 * time.Second, SweepEvery: 50 * time.Millisecond, PollWindow: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tc2 := &testCluster{srv: srv2, coord: coord2, ts: httptest.NewServer(coord2.Handler(srv2.Handler()))}
	defer tc2.stop()

	var (
		mu       sync.Mutex
		simCount = make(map[string]int)
	)
	_, stopW := startWorker(t, tc2.ts.URL, "fresh", func(c *WorkerConfig) {
		c.Gate = func(key string) {
			if srv2.HasDurable(key) {
				t.Errorf("key %s re-simulated after its result was durable", key)
			}
			mu.Lock()
			simCount[key]++
			mu.Unlock()
		}
	})
	defer stopW()

	for i, id := range ids {
		j, ok := srv2.Lookup(id)
		if !ok {
			t.Fatalf("job %s (spec %d) not re-admitted under its old id", id, i)
		}
		if st := waitTerminal(t, srv2, j); st.State != service.StateDone {
			t.Fatalf("re-admitted job %s failed: %s", id, st.Error)
		}
	}

	// No double simulation: the incarnation-1 worker never simulated
	// (parked before its gate returned), so each key ran exactly once.
	mu.Lock()
	defer mu.Unlock()
	if len(simCount) != len(specs) {
		t.Errorf("%d distinct keys simulated, want %d", len(simCount), len(specs))
	}
	for key, n := range simCount {
		if n != 1 {
			t.Errorf("key %s simulated %d times across the restart, want 1", key, n)
		}
	}
}
