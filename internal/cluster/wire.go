package cluster

import (
	"repro/internal/service"
	"repro/internal/telemetry"
)

// Wire shapes of the coordinator API (all JSON over HTTP):
//
//	POST /cluster/v1/register           RegisterRequest  → RegisterResponse
//	POST /cluster/v1/poll               PollRequest      → PollResponse | 204
//	POST /cluster/v1/heartbeat          HeartbeatRequest → HeartbeatResponse | 410
//	POST /cluster/v1/jobs/{id}/events   EventBatch       → 200
//	POST /cluster/v1/jobs/{id}/result   ResultUpload     → ResultResponse
//	POST /cluster/v1/workers/drain      DrainRequest     → DrainResponse
//	GET  /cluster/v1/status                              → StatusView
//	GET  /cluster/v1/traces/{id}                         → raw TRC2 bytes
//
// Jobs are addressed by their content-derived service ids, which are
// stable across coordinator restarts — a worker that outlives a
// coordinator crash uploads into the re-admitted job and nothing is
// simulated twice.
//
// Every mutating RPC is idempotent, because the network between a
// worker and the coordinator is allowed to refuse, reset, truncate,
// duplicate, and half-deliver (see internal/netfault): registration
// dedups on a client token, event batches carry a per-lease sequence
// number, and result uploads are first-write-wins on content-derived
// job ids.

// RegisterRequest announces a worker.
type RegisterRequest struct {
	// Name is the worker's self-chosen display name (hostname:pid by
	// default). Two workers may share a name; the coordinator-issued
	// WorkerID is the identity.
	Name string `json:"name"`
	// Slots is how many jobs the worker runs concurrently.
	Slots int `json:"slots"`
	// Token is the worker's idempotency key: a duplicate-delivered or
	// retried register with the same token returns the already-issued
	// WorkerID instead of minting a phantom worker.
	Token string `json:"token,omitempty"`
}

// RegisterResponse carries the worker's coordinator-issued identity
// and the lease discipline it must follow.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis is how long a job assignment stays valid without a
	// heartbeat; the worker should heartbeat at a small fraction of it.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
}

// PollRequest asks for one job (long-poll: the coordinator holds the
// request until work arrives or its poll window lapses).
type PollRequest struct {
	WorkerID string `json:"worker_id"`
}

// PollResponse assigns one job, or tells a draining worker to exit.
type PollResponse struct {
	JobID string          `json:"job_id,omitempty"`
	Key   string          `json:"key,omitempty"`
	Spec  service.JobSpec `json:"spec,omitempty"`
	// Drain tells the worker the coordinator is rotating it out: finish
	// in-flight jobs, stop polling, exit cleanly.
	Drain bool `json:"drain,omitempty"`
}

// HeartbeatRequest renews the worker's leases. Jobs lists every job id
// the worker is still executing.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	Jobs     []string `json:"jobs,omitempty"`
}

// HeartbeatResponse acknowledges the renewal. Cancelled lists job ids
// the worker should stop working on (completed elsewhere or requeued
// past it); the worker may abandon them without uploading.
type HeartbeatResponse struct {
	Cancelled []string `json:"cancelled,omitempty"`
}

// EventBatch streams live progress for one job: the worker's absolute
// retired-instruction count plus any new interval samples. The
// coordinator folds both into the job's feed, so /v1/jobs/{id}/events
// SSE consumers see a cluster job exactly like a local one.
type EventBatch struct {
	WorkerID     string `json:"worker_id"`
	Instructions uint64 `json:"instructions"`
	// Seq numbers this worker's batches for the job from 1; the
	// coordinator drops batches at or below the last sequence it folded,
	// so a duplicate-delivered batch cannot double its samples into the
	// feed.
	Seq     int64              `json:"seq,omitempty"`
	Samples []telemetry.Sample `json:"samples,omitempty"`
}

// ResultUpload finishes one job: either a result envelope (the exact
// JobResult shape the service stores and serves) or an execution
// error.
type ResultUpload struct {
	WorkerID string             `json:"worker_id"`
	Result   *service.JobResult `json:"result,omitempty"`
	Error    string             `json:"error,omitempty"`
	// Fingerprint is the worker's machine-config fingerprint; the
	// coordinator rejects results produced under a different
	// configuration than the store is keyed under.
	Fingerprint string `json:"fingerprint,omitempty"`
	// PayloadSHA256 is the hex SHA-256 of the worker's canonical
	// envelope encoding. The coordinator re-encodes what it decoded and
	// compares, so a payload corrupted in flight (or by a buggy worker
	// serializer) is rejected before anything is fsynced.
	PayloadSHA256 string `json:"payload_sha256,omitempty"`
}

// ResultResponse reports how the upload was disposed.
type ResultResponse struct {
	// Duplicate is set when the job already had a result (first upload
	// wins); the upload changed nothing.
	Duplicate bool `json:"duplicate,omitempty"`
	// Rejected is set when verification failed: nothing was persisted,
	// the job was requeued (if this worker held its lease), and the
	// worker's health score took the penalty. Retrying the same bytes is
	// pointless.
	Rejected bool   `json:"rejected,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// DrainRequest asks the coordinator to rotate workers out of the
// fleet. Name matches worker display names (and ids).
type DrainRequest struct {
	Name string `json:"name"`
}

// DrainResponse lists the worker ids now draining.
type DrainResponse struct {
	Drained []string `json:"drained"`
}

// StatusView is the cluster view triagectl renders: registered
// workers, live leases, and queue depth.
type StatusView struct {
	Workers []WorkerView `json:"workers"`
	Leases  []LeaseView  `json:"leases"`
	Queued  int          `json:"queued"`
	// Assigned/Requeued/Expired/Hedged/Rejected are lifetime counters.
	Assigned int64 `json:"assigned"`
	Requeued int64 `json:"requeued"`
	Expired  int64 `json:"expired"`
	// Hedged counts jobs speculatively re-dispatched past the fleet's
	// p99 run estimate.
	Hedged int64 `json:"hedged"`
	// Rejected counts uploads that failed verification.
	Rejected int64 `json:"rejected"`
}

// WorkerView is one registered worker.
type WorkerView struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Slots    int    `json:"slots"`
	Inflight int    `json:"inflight"`
	// LastSeenMillis is milliseconds since the worker's last
	// register/poll/heartbeat/upload.
	LastSeenMillis int64 `json:"last_seen_ms"`
	// Live is false once the worker has gone a full lease TTL without
	// contact.
	Live bool `json:"live"`
	// Health is the worker's decayed fault score (0 = clean); at or
	// above the coordinator's threshold the worker is quarantined.
	Health float64 `json:"health"`
	// Quarantined workers receive no assignments until their score
	// decays below the threshold.
	Quarantined bool `json:"quarantined,omitempty"`
	// Draining workers finish their leases and exit; they are never
	// assigned new work.
	Draining bool `json:"draining,omitempty"`
}

// LeaseView is one in-flight cell.
type LeaseView struct {
	JobID  string `json:"job_id"`
	Key    string `json:"key"`
	Worker string `json:"worker"`
	// ExpiresInMillis is how long until the lease lapses without a
	// heartbeat (negative: already expired, sweep pending).
	ExpiresInMillis int64 `json:"expires_in_ms"`
	// AgeMillis is time since assignment.
	AgeMillis int64 `json:"age_ms"`
	// Hedged is set once the job has been speculatively re-dispatched
	// to a second worker.
	Hedged bool `json:"hedged,omitempty"`
}
