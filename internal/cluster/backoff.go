package cluster

import (
	"math/rand"
	"sync"
	"time"
)

// backoff produces capped exponential retry delays with seeded jitter.
// Jitter is what keeps a partitioned fleet from reconnecting in
// thundering-herd lockstep: every worker seeds its own stream, so the
// same outage produces a spread of retry schedules instead of a
// synchronized stampede — while any single schedule stays reproducible
// from its seed.
type backoff struct {
	mu   sync.Mutex
	rng  *rand.Rand
	base time.Duration
	cap  time.Duration
}

// newBackoff builds a policy: delay(attempt) = base·2^attempt, capped,
// then jittered ±25%.
func newBackoff(seed int64, base, cap time.Duration) *backoff {
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	if cap < base {
		cap = 32 * base
	}
	return &backoff{rng: rand.New(rand.NewSource(seed)), base: base, cap: cap}
}

// Delay returns the jittered delay for the given attempt (0-based).
func (b *backoff) Delay(attempt int) time.Duration {
	d := b.base
	for i := 0; i < attempt && d < b.cap; i++ {
		d *= 2
	}
	if d > b.cap {
		d = b.cap
	}
	return b.Jitter(d, 0.25)
}

// Jitter spreads d uniformly across [d·(1-frac), d·(1+frac)).
func (b *backoff) Jitter(d time.Duration, frac float64) time.Duration {
	b.mu.Lock()
	u := b.rng.Float64()
	b.mu.Unlock()
	scale := 1 - frac + 2*frac*u
	return time.Duration(float64(d) * scale)
}
