// Package cluster splits the simulation service across machines: a
// coordinator embedded in triaged (behind -cluster) owns admission,
// dedup, and the content-addressed result store, while any number of
// triageworker processes register over HTTP, hold heartbeat leases,
// long-poll for jobs, stream progress/sample events back, and upload
// results. The store stays the single source of truth, so no cell
// with the same config fingerprint is ever simulated twice
// cluster-wide; a worker that dies mid-job loses its lease and the
// job requeues; a coordinator that dies re-admits queued and leased
// jobs from the admission log (queue.jsonl) — job ids are derived
// from content keys, so a surviving worker's upload still lands.
//
// The protocol assumes a hostile network and imperfect workers (see
// internal/netfault for the fault model): uploads are verified against
// the config fingerprint and a canonical payload hash before anything
// is persisted, workers accumulate a decaying health score and are
// quarantined out of dispatch when it crosses the threshold, and jobs
// leased far past the fleet's p99 run estimate are hedged — dispatched
// speculatively to a second worker, first result wins.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/vfs"
)

// assignFile is the coordinator's assignment audit log, next to the
// store's queue.jsonl. One JSON line per assign/complete/fail/
// expire/requeue/reject/hedge event, written through the server's vfs
// (so chaos tests exercise it under injected faults). Durability of
// jobs does not depend on it — that is queue.jsonl's contract — but it
// records which worker ran what, survives restarts, and is cheap to
// grep.
const assignFile = "assign.jsonl"

// Health penalties. The score decays exponentially (half-life
// Config.HealthHalfLife); at or above Config.HealthThreshold the
// worker is quarantined out of dispatch and re-admitted by decay
// alone, so the quarantine lasts HalfLife·log2(score/threshold) — a
// penalty must overshoot the threshold to quarantine for real time.
const (
	healthVerifyReject = 6.0 // corrupted/mismatched upload: quarantined for a full half-life
	healthExecFailure  = 1.5 // worker-reported execution error
	healthLeaseExpiry  = 1.0 // heartbeat flap: lease lapsed and the job requeued
)

// Config sizes a Coordinator.
type Config struct {
	// Server is the underlying service (created with RemoteExec: true).
	// Required.
	Server *service.Server
	// LeaseTTL is how long a job assignment survives without a
	// heartbeat before the sweep requeues it. Default 10s.
	LeaseTTL time.Duration
	// SweepEvery paces the lease-expiry sweep. Default LeaseTTL/4.
	SweepEvery time.Duration
	// PollWindow bounds how long a worker's poll blocks waiting for
	// work before returning 204. Default 25s.
	PollWindow time.Duration
	// HealthThreshold is the decayed fault score at which a worker is
	// quarantined. Default 3 (one verification reject, or three lesser
	// faults in quick succession).
	HealthThreshold float64
	// HealthHalfLife is the fault-score decay half-life; it doubles as
	// the re-admission clock for quarantined workers. Default 30s.
	HealthHalfLife time.Duration
	// HedgeFactor multiplies the fleet's p99 run estimate to get the
	// lease age past which a job is speculatively re-dispatched.
	// Default 3.
	HedgeFactor float64
	// HedgeMinAge floors the hedging threshold so small-sample p99
	// estimates cannot trigger duplicate simulation of healthy jobs.
	// Default 30s.
	HedgeMinAge time.Duration
	// HedgeMinSamples is how many completed runs the estimator needs
	// before hedging arms. Default 5.
	HedgeMinSamples int
}

// Coordinator dispatches the server's queue to registered workers.
type Coordinator struct {
	cfg  Config
	srv  *service.Server
	fsys vfs.FS

	mu        sync.Mutex
	workers   map[string]*workerState
	tokens    map[string]string // register idempotency token → worker id
	leases    map[string]*lease // primary assignment, by job id
	hedges    map[string]*lease // speculative second assignment, by job id
	jobAcc    map[string]int    // samples accepted into each job's feed
	gauges    map[string]bool   // per-worker gauge names already registered
	assignLog vfs.File
	workerSeq int
	durations []time.Duration // recent completed-run durations (capped ring)

	dispatch chan *service.Job
	hedgec   chan *service.Job
	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup

	mAssigned    atomic.Int64
	mRequeued    atomic.Int64
	mExpired     atomic.Int64
	mResults     atomic.Int64
	mDupedUp     atomic.Int64 // duplicate uploads (first result won)
	mRejected    atomic.Int64 // uploads that failed verification
	mHedged      atomic.Int64 // jobs speculatively re-dispatched
	mQuarantines atomic.Int64 // quarantine entries (lifetime)
	mLogErrors   atomic.Int64
}

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	token    string
	slots    int
	lastSeen time.Time
	inflight map[string]bool // job ids under lease
	// health is the decaying fault score as of healthAt; read it
	// through decayedHealthLocked, never directly.
	health   float64
	healthAt time.Time
	draining bool
}

// lease is one assignment.
type lease struct {
	job     *service.Job
	worker  string // worker id
	started time.Time
	expires time.Time
	// lastInstr is the worker's last absolute instruction count, so
	// event batches fold into the feed as deltas.
	lastInstr uint64
	// lastSeq is the highest event-batch sequence folded under this
	// lease; duplicate-delivered batches arrive at or below it and are
	// dropped.
	lastSeq int64
	// samplesSeen counts samples received under this lease; together
	// with the job's accepted count it dedups re-streamed samples
	// after a requeue.
	samplesSeen int
	// hedged marks that a speculative second assignment has been
	// offered for this job.
	hedged bool
}

// New starts a coordinator over a RemoteExec server: the dispatcher
// pulls queued jobs (skipping any already durable cluster-wide), the
// sweeper requeues expired leases and hedges stragglers, and cluster
// metrics register on the server's registry. Call Stop (after draining
// the server) to shut down.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("cluster: Config.Server is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.LeaseTTL / 4
	}
	if cfg.PollWindow <= 0 {
		cfg.PollWindow = 25 * time.Second
	}
	if cfg.HealthThreshold <= 0 {
		cfg.HealthThreshold = 3
	}
	if cfg.HealthHalfLife <= 0 {
		cfg.HealthHalfLife = 30 * time.Second
	}
	if cfg.HedgeFactor <= 0 {
		cfg.HedgeFactor = 3
	}
	if cfg.HedgeMinAge <= 0 {
		cfg.HedgeMinAge = 30 * time.Second
	}
	if cfg.HedgeMinSamples <= 0 {
		cfg.HedgeMinSamples = 5
	}
	c := &Coordinator{
		cfg:      cfg,
		srv:      cfg.Server,
		fsys:     cfg.Server.VFS(),
		workers:  make(map[string]*workerState),
		tokens:   make(map[string]string),
		leases:   make(map[string]*lease),
		hedges:   make(map[string]*lease),
		jobAcc:   make(map[string]int),
		gauges:   make(map[string]bool),
		dispatch: make(chan *service.Job),
		hedgec:   make(chan *service.Job, 32),
		stopc:    make(chan struct{}),
	}
	path := filepath.Join(cfg.Server.StoreDirPath(), assignFile)
	f, err := c.fsys.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening assignment log: %w", err)
	}
	c.assignLog = f
	c.registerMetrics()
	c.wg.Add(2)
	go c.dispatchLoop()
	go c.sweepLoop()
	return c, nil
}

// Stop shuts the coordinator down: dispatcher and sweeper exit and
// the assignment log closes. Drain the server first — the dispatcher
// unblocks from the queue when Drain closes it. Leased jobs keep
// their admission-log entries, so nothing is lost across a restart.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopc) })
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.assignLog != nil {
		c.assignLog.Close()
		c.assignLog = nil
	}
}

// dispatchLoop feeds the queue to polling workers, completing
// already-durable cells from the store instead of assigning them.
func (c *Coordinator) dispatchLoop() {
	defer c.wg.Done()
	for {
		j := c.srv.Take()
		if j == nil {
			close(c.dispatch)
			return
		}
		// Cluster-wide dedup at dispatch: the key may have become
		// durable after this job queued (an identical cell finished on
		// another worker, or a pre-loaded store). Serve it, don't
		// simulate it.
		if st := c.srv.StateOf(j); st == service.StateDone || st == service.StateFailed {
			continue
		}
		if c.srv.HasDurable(j.Key()) && c.srv.CompleteFromStore(j) {
			continue
		}
		select {
		case c.dispatch <- j:
		case <-c.stopc:
			// Shutting down with a job in hand: it stays admitted in
			// queue.jsonl and re-admits on the next start.
			return
		}
	}
}

// sweepLoop requeues jobs whose lease lapsed without a heartbeat.
func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case <-t.C:
			c.sweep(time.Now())
		}
	}
}

// sweep expires lapsed leases (requeueing their jobs in a
// deterministic order: lease start time, then job id — never the
// map's iteration order), drops lapsed hedges, promotes a live hedge
// when its primary dies, and offers hedges for jobs leased far past
// the fleet's p99 run estimate.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	var lapsed, hedgeLapsed, promoted, offers []*lease
	for id, l := range c.leases {
		if !now.After(l.expires) {
			continue
		}
		if ws := c.workers[l.worker]; ws != nil {
			delete(ws.inflight, id)
		}
		if h := c.hedges[id]; h != nil && !now.After(h.expires) {
			// The primary died but its hedge is alive: promote the hedge
			// instead of requeueing — the job is already running.
			delete(c.hedges, id)
			h.hedged = true // a promoted job is not hedged again
			c.leases[id] = h
			promoted = append(promoted, l)
			continue
		}
		lapsed = append(lapsed, l)
		delete(c.leases, id)
	}
	for id, h := range c.hedges {
		if _, live := c.leases[id]; live && !now.After(h.expires) {
			continue
		}
		// The hedge lapsed (or its primary vanished with it above):
		// drop it quietly — requeueing is the primary lease's job.
		delete(c.hedges, id)
		if ws := c.workers[h.worker]; ws != nil {
			delete(ws.inflight, id)
		}
		if now.After(h.expires) {
			hedgeLapsed = append(hedgeLapsed, h)
		}
	}
	if thresh, ok := c.hedgeThresholdLocked(); ok {
		for id, l := range c.leases {
			if !l.hedged && c.hedges[id] == nil && now.Sub(l.started) > thresh {
				l.hedged = true
				offers = append(offers, l)
			}
		}
	}
	c.mu.Unlock()

	// Simultaneous expiries requeue in a stable order regardless of Go
	// map iteration: oldest lease first, job id as the tiebreak.
	byStart := func(s []*lease) {
		sort.Slice(s, func(i, k int) bool {
			if !s[i].started.Equal(s[k].started) {
				return s[i].started.Before(s[k].started)
			}
			return s[i].job.ID() < s[k].job.ID()
		})
	}
	byStart(lapsed)
	byStart(offers)

	for _, l := range promoted {
		c.logEvent("promote", l.job, l.worker)
		if tr := l.job.Trace(); tr != nil {
			tr.Mark("hedge-promoted", map[string]string{"expired_worker": l.worker})
		}
	}
	for _, h := range hedgeLapsed {
		c.logEvent("hedge-expire", h.job, h.worker)
	}
	for _, l := range lapsed {
		c.mExpired.Add(1)
		c.penalize(l.worker, healthLeaseExpiry, now)
		if tr := l.job.Trace(); tr != nil {
			tr.Mark("lease-expired", map[string]string{"worker": l.worker})
		}
		c.logEvent("expire", l.job, l.worker)
		if c.srv.Requeue(l.job, "lease expired on worker "+l.worker) {
			c.mRequeued.Add(1)
			c.logEvent("requeue", l.job, l.worker)
		}
	}
	for _, l := range offers {
		select {
		case c.hedgec <- l.job:
			c.mHedged.Add(1)
			c.logEvent("hedge", l.job, l.worker)
			if tr := l.job.Trace(); tr != nil {
				tr.Mark("hedge", map[string]string{"primary": l.worker})
			}
		default:
			// Offer channel full; a later sweep re-offers.
			c.mu.Lock()
			l.hedged = false
			c.mu.Unlock()
		}
	}
}

// hedgeThresholdLocked derives the straggler cutoff from recent run
// durations: HedgeFactor × p99, floored at HedgeMinAge, armed only
// once HedgeMinSamples runs have completed.
func (c *Coordinator) hedgeThresholdLocked() (time.Duration, bool) {
	if len(c.durations) < c.cfg.HedgeMinSamples {
		return 0, false
	}
	sorted := make([]time.Duration, len(c.durations))
	copy(sorted, c.durations)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	p99 := sorted[(len(sorted)-1)*99/100]
	t := time.Duration(float64(p99) * c.cfg.HedgeFactor)
	if t < c.cfg.HedgeMinAge {
		t = c.cfg.HedgeMinAge
	}
	return t, true
}

// recordRunLocked feeds the p99 estimator (capped ring of the last 128
// completed runs).
func (c *Coordinator) recordRunLocked(d time.Duration) {
	if len(c.durations) >= 128 {
		copy(c.durations, c.durations[1:])
		c.durations = c.durations[:len(c.durations)-1]
	}
	c.durations = append(c.durations, d)
}

// logEvent appends one assignment-log line (best effort: the audit
// trail must not take the cluster down when the disk is faulting —
// job durability is queue.jsonl's contract, not this file's).
func (c *Coordinator) logEvent(event string, j *service.Job, worker string) {
	line := fmt.Sprintf("{\"ts_ms\":%d,\"event\":%q,\"job\":%q,\"key\":%q,\"worker\":%q}\n",
		time.Now().UnixMilli(), event, j.ID(), j.Key(), worker)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.assignLog == nil {
		return
	}
	if _, err := c.assignLog.Write([]byte(line)); err != nil {
		c.mLogErrors.Add(1)
		return
	}
	if err := c.assignLog.Sync(); err != nil {
		c.mLogErrors.Add(1)
	}
}

// register admits a worker and returns its state. A re-delivered or
// retried register with a token the coordinator has already seen
// returns the existing identity instead of minting a phantom worker.
func (c *Coordinator) register(name string, slots int, token string) *workerState {
	if slots < 1 {
		slots = 1
	}
	c.mu.Lock()
	if token != "" {
		if id, ok := c.tokens[token]; ok {
			if ws := c.workers[id]; ws != nil {
				ws.lastSeen = time.Now()
				c.mu.Unlock()
				return ws
			}
		}
	}
	c.workerSeq++
	ws := &workerState{
		id:       fmt.Sprintf("w%03d", c.workerSeq),
		name:     name,
		token:    token,
		slots:    slots,
		lastSeen: time.Now(),
		inflight: make(map[string]bool),
	}
	c.workers[ws.id] = ws
	if token != "" {
		c.tokens[token] = ws.id
	}
	c.mu.Unlock()
	c.registerWorkerGauge(name)
	return ws
}

// touch refreshes a worker's liveness, returning nil for unknown ids
// (a coordinator restart wiped the table — the worker re-registers).
func (c *Coordinator) touch(id string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[id]
	if ws != nil {
		ws.lastSeen = time.Now()
	}
	return ws
}

// decayedHealthLocked reads a worker's fault score at now, applying
// exponential decay (half-life cfg.HealthHalfLife) since it was last
// written.
func (c *Coordinator) decayedHealthLocked(ws *workerState, now time.Time) float64 {
	if ws.health == 0 {
		return 0
	}
	elapsed := now.Sub(ws.healthAt)
	if elapsed <= 0 {
		return ws.health
	}
	h := ws.health * math.Exp2(-float64(elapsed)/float64(c.cfg.HealthHalfLife))
	if h < 0.01 {
		return 0
	}
	return h
}

// quarantinedLocked reports whether the worker's decayed score is at
// or above the threshold — if so it receives no assignments until
// decay re-admits it.
func (c *Coordinator) quarantinedLocked(ws *workerState, now time.Time) bool {
	return c.decayedHealthLocked(ws, now) >= c.cfg.HealthThreshold
}

// penalize adds fault points to a worker's decayed score and counts a
// quarantine entry if this penalty crossed the threshold.
func (c *Coordinator) penalize(workerID string, pts float64, now time.Time) {
	c.mu.Lock()
	ws := c.workers[workerID]
	if ws == nil {
		c.mu.Unlock()
		return
	}
	wasQuarantined := c.quarantinedLocked(ws, now)
	ws.health = c.decayedHealthLocked(ws, now) + pts
	ws.healthAt = now
	nowQuarantined := c.quarantinedLocked(ws, now)
	c.mu.Unlock()
	if !wasQuarantined && nowQuarantined {
		c.mQuarantines.Add(1)
	}
}

// dispatchable reports whether a worker may receive new assignments:
// not draining, not quarantined.
func (c *Coordinator) dispatchable(ws *workerState, now time.Time) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !ws.draining && !c.quarantinedLocked(ws, now)
}

// DrainWorkers marks every worker whose name (or id) matches as
// draining: no new assignments, leased jobs run to completion, and the
// worker's next poll tells it to exit. Returns the draining ids.
func (c *Coordinator) DrainWorkers(name string) []string {
	c.mu.Lock()
	var ids []string
	for _, ws := range c.workers {
		if ws.name == name || ws.id == name {
			ws.draining = true
			ids = append(ids, ws.id)
		}
	}
	c.mu.Unlock()
	sort.Strings(ids)
	return ids
}

// assign leases a job to a worker.
func (c *Coordinator) assign(j *service.Job, ws *workerState) {
	now := time.Now()
	c.mu.Lock()
	c.leases[j.ID()] = &lease{
		job:     j,
		worker:  ws.id,
		started: now,
		expires: now.Add(c.cfg.LeaseTTL),
	}
	ws.inflight[j.ID()] = true
	c.mu.Unlock()
	c.mAssigned.Add(1)
	c.srv.BeginRemote(j, ws.name+"/"+ws.id)
	c.logEvent("assign", j, ws.id)
}

// assignHedge installs a speculative second lease for a job that is
// already running on its primary worker. No BeginRemote: the job's
// service-side lifecycle is owned by the primary; the hedge exists
// only in the coordinator's lease table, and first-result-wins makes
// whichever copy finishes first the real one. Declines (returning
// false) when the job finished meanwhile, the polling worker is the
// primary holder, or another hedge is already in place.
func (c *Coordinator) assignHedge(j *service.Job, ws *workerState) bool {
	now := time.Now()
	c.mu.Lock()
	l := c.leases[j.ID()]
	if l == nil || c.hedges[j.ID()] != nil {
		c.mu.Unlock()
		return false
	}
	if l.worker == ws.id {
		// Re-offering the job to its own primary is useless; let a
		// later sweep offer it to someone else.
		l.hedged = false
		c.mu.Unlock()
		return false
	}
	c.hedges[j.ID()] = &lease{
		job:     j,
		worker:  ws.id,
		started: now,
		expires: now.Add(c.cfg.LeaseTTL),
	}
	ws.inflight[j.ID()] = true
	c.mu.Unlock()
	c.mAssigned.Add(1)
	c.logEvent("hedge-assign", j, ws.id)
	if tr := j.Trace(); tr != nil {
		tr.Mark("hedge-assign", map[string]string{"worker": ws.id})
	}
	return true
}

// heartbeat renews the worker's leases (primary or hedge); returns job
// ids it should abandon (done elsewhere, or requeued past it).
func (c *Coordinator) heartbeat(ws *workerState, jobs []string) (cancelled []string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range jobs {
		if l, ok := c.leases[id]; ok && l.worker == ws.id {
			st := c.srv.StateOf(l.job)
			if st == service.StateDone || st == service.StateFailed {
				delete(c.leases, id)
				delete(ws.inflight, id)
				cancelled = append(cancelled, id)
				continue
			}
			l.expires = now.Add(c.cfg.LeaseTTL)
			continue
		}
		if h, ok := c.hedges[id]; ok && h.worker == ws.id {
			st := c.srv.StateOf(h.job)
			if st == service.StateDone || st == service.StateFailed {
				delete(c.hedges, id)
				delete(ws.inflight, id)
				cancelled = append(cancelled, id)
				continue
			}
			h.expires = now.Add(c.cfg.LeaseTTL)
			continue
		}
		cancelled = append(cancelled, id)
	}
	return cancelled
}

// events folds a worker's progress batch into the job's feed.
// Progress is accepted only from the current primary lease holder (a
// hedge's progress would double-count); batches dedup on their
// sequence number, so a duplicate-delivered batch folds once, and
// samples additionally dedup against what the feed already absorbed,
// so a requeued job's re-streamed prefix does not double up for SSE
// consumers.
func (c *Coordinator) events(jobID string, batch EventBatch) {
	c.mu.Lock()
	l, ok := c.leases[jobID]
	if !ok || l.worker != batch.WorkerID {
		c.mu.Unlock()
		return
	}
	if batch.Seq != 0 {
		if batch.Seq <= l.lastSeq {
			c.mu.Unlock()
			return
		}
		l.lastSeq = batch.Seq
	}
	feed := l.job.Feed()
	if batch.Instructions > l.lastInstr {
		feed.Add(batch.Instructions - l.lastInstr)
		l.lastInstr = batch.Instructions
	}
	accepted := c.jobAcc[jobID]
	for i, smp := range batch.Samples {
		if l.samplesSeen+i >= accepted {
			feed.OnSample(smp)
			c.jobAcc[jobID] = l.samplesSeen + i + 1
		}
	}
	l.samplesSeen += len(batch.Samples)
	c.mu.Unlock()
}

// verifyUpload checks a result envelope before anything is persisted:
// the envelope must be structurally whole for the job's kind, produced
// under the coordinator's config fingerprint, and its canonical
// re-encoding must hash to what the worker claims — so a payload
// corrupted in flight (or by a broken serializer) never reaches fsync.
func (c *Coordinator) verifyUpload(j *service.Job, up ResultUpload) error {
	env := up.Result
	if kind := j.Spec().Kind; env.Kind != kind {
		return fmt.Errorf("envelope kind %q does not match job kind %q", env.Kind, kind)
	}
	switch env.Kind {
	case service.KindFigure:
		if env.Table == nil {
			return errors.New("figure envelope carries no table")
		}
	default:
		if env.Result == nil {
			return errors.New("single envelope carries no result")
		}
	}
	if up.Fingerprint != c.srv.Fingerprint() {
		return fmt.Errorf("config fingerprint %.12q does not match the store's %.12q",
			up.Fingerprint, c.srv.Fingerprint())
	}
	canonical, err := json.Marshal(*env)
	if err != nil {
		return fmt.Errorf("re-encoding envelope: %w", err)
	}
	sum := sha256.Sum256(canonical)
	if got := hex.EncodeToString(sum[:]); got != up.PayloadSHA256 {
		return fmt.Errorf("payload hash mismatch: upload claims %.12s, canonical re-encoding is %.12s",
			up.PayloadSHA256, got)
	}
	return nil
}

// finish disposes an uploaded result or error. Verification runs
// before anything touches the store; a rejected upload requeues the
// job (or promotes its hedge) and penalizes the worker. First verified
// result wins; anything after is a duplicate and changes nothing.
func (c *Coordinator) finish(j *service.Job, up ResultUpload) ResultResponse {
	now := time.Now()
	id := j.ID()
	c.mu.Lock()
	l, h := c.leases[id], c.hedges[id]
	holder := l != nil && l.worker == up.WorkerID
	hedgeHolder := h != nil && h.worker == up.WorkerID
	c.mu.Unlock()

	if up.Error == "" {
		if err := c.verifyUpload(j, up); err != nil {
			c.mRejected.Add(1)
			c.logEvent("reject", j, up.WorkerID)
			if tr := j.Trace(); tr != nil {
				tr.Mark("upload-rejected", map[string]string{"worker": up.WorkerID, "reason": err.Error()})
			}
			c.penalize(up.WorkerID, healthVerifyReject, now)
			c.releaseUploader(j, up.WorkerID, holder, hedgeHolder)
			if holder {
				c.failoverOrRequeue(j, up.WorkerID, "upload rejected: "+err.Error())
			}
			return ResultResponse{Rejected: true, Reason: err.Error()}
		}
	}

	if up.Error != "" {
		// Execution errors are honored only from the primary lease
		// holder: a late error from a worker whose lease expired (or a
		// hedge copy) must not kill a job another worker is running.
		c.releaseUploader(j, up.WorkerID, holder, hedgeHolder)
		if !holder {
			c.mDupedUp.Add(1)
			return ResultResponse{Duplicate: true}
		}
		c.penalize(up.WorkerID, healthExecFailure, now)
		if c.failoverOrRequeue(j, up.WorkerID, "") {
			// A hedge copy is still running; let it race the error.
			c.logEvent("fail-deferred", j, up.WorkerID)
			return ResultResponse{}
		}
		c.logEvent("fail", j, up.WorkerID)
		if !c.srv.FailRemote(j, up.Error) {
			c.mDupedUp.Add(1)
			return ResultResponse{Duplicate: true}
		}
		return ResultResponse{}
	}

	// Results are honored from anyone — they are deterministic,
	// verified, and content-addressed, so a late upload from an expired
	// lease saves the requeued copy from re-simulating.
	if !c.srv.CompleteRemote(j, *up.Result) {
		c.releaseUploader(j, up.WorkerID, holder, hedgeHolder)
		c.mDupedUp.Add(1)
		return ResultResponse{Duplicate: true}
	}
	c.mResults.Add(1)
	c.logEvent("complete", j, up.WorkerID)
	c.mu.Lock()
	if holder && l != nil {
		c.recordRunLocked(now.Sub(l.started))
	} else if hedgeHolder && h != nil {
		c.recordRunLocked(now.Sub(h.started))
	}
	// The job is done: clear both lease entries; the losing copy's
	// worker learns via heartbeat cancellation.
	for _, stale := range []*lease{l, h} {
		if stale == nil {
			continue
		}
		if ws := c.workers[stale.worker]; ws != nil {
			delete(ws.inflight, id)
		}
	}
	delete(c.leases, id)
	delete(c.hedges, id)
	delete(c.jobAcc, id)
	c.mu.Unlock()
	return ResultResponse{}
}

// releaseUploader drops the uploading worker's lease entry (primary or
// hedge) after a terminal upload, leaving any other copy's lease
// intact.
func (c *Coordinator) releaseUploader(j *service.Job, workerID string, holder, hedgeHolder bool) {
	id := j.ID()
	c.mu.Lock()
	if holder {
		delete(c.leases, id)
	}
	if hedgeHolder {
		delete(c.hedges, id)
	}
	if ws := c.workers[workerID]; ws != nil {
		delete(ws.inflight, id)
	}
	c.mu.Unlock()
}

// failoverOrRequeue handles a primary copy going bad (rejected upload
// or execution error): if a live hedge exists it is promoted to
// primary and the job keeps running (reports true); otherwise the job
// requeues with the given reason when one is supplied (reports false).
func (c *Coordinator) failoverOrRequeue(j *service.Job, badWorker, requeueReason string) bool {
	id := j.ID()
	c.mu.Lock()
	h := c.hedges[id]
	if h != nil && h.worker != badWorker {
		delete(c.hedges, id)
		h.hedged = true
		c.leases[id] = h
		c.mu.Unlock()
		c.logEvent("promote", j, h.worker)
		return true
	}
	c.mu.Unlock()
	if requeueReason != "" && c.srv.Requeue(j, requeueReason) {
		c.mRequeued.Add(1)
		c.logEvent("requeue", j, badWorker)
	}
	return false
}

// Status snapshots the cluster for triagectl.
func (c *Coordinator) Status() StatusView {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	v := StatusView{
		Workers:  make([]WorkerView, 0, len(c.workers)),
		Leases:   make([]LeaseView, 0, len(c.leases)),
		Queued:   c.srv.QueueLen(),
		Assigned: c.mAssigned.Load(),
		Requeued: c.mRequeued.Load(),
		Expired:  c.mExpired.Load(),
		Hedged:   c.mHedged.Load(),
		Rejected: c.mRejected.Load(),
	}
	for _, ws := range c.workers {
		v.Workers = append(v.Workers, WorkerView{
			ID:             ws.id,
			Name:           ws.name,
			Slots:          ws.slots,
			Inflight:       len(ws.inflight),
			LastSeenMillis: now.Sub(ws.lastSeen).Milliseconds(),
			Live:           now.Sub(ws.lastSeen) <= c.cfg.LeaseTTL,
			Health:         c.decayedHealthLocked(ws, now),
			Quarantined:    c.quarantinedLocked(ws, now),
			Draining:       ws.draining,
		})
	}
	sort.Slice(v.Workers, func(i, k int) bool { return v.Workers[i].ID < v.Workers[k].ID })
	for id, l := range c.leases {
		v.Leases = append(v.Leases, LeaseView{
			JobID:           id,
			Key:             l.job.Key(),
			Worker:          l.worker,
			ExpiresInMillis: l.expires.Sub(now).Milliseconds(),
			AgeMillis:       now.Sub(l.started).Milliseconds(),
			Hedged:          l.hedged,
		})
	}
	sort.Slice(v.Leases, func(i, k int) bool { return v.Leases[i].JobID < v.Leases[k].JobID })
	return v
}

// registerMetrics adds the cluster series to the server's registry
// (scraped through the same /metrics the service already serves).
func (c *Coordinator) registerMetrics() {
	r := c.srv.Registry()
	r.GaugeFunc("triaged_cluster_workers", "registered workers", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	r.GaugeFunc("triaged_cluster_leases", "jobs under an active worker lease", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.leases))
	})
	r.GaugeFunc("triaged_cluster_quarantined", "workers currently quarantined out of dispatch", func() float64 {
		now := time.Now()
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, ws := range c.workers {
			if c.quarantinedLocked(ws, now) {
				n++
			}
		}
		return float64(n)
	})
	r.CounterFunc("triaged_cluster_assigned_total", "jobs leased to workers",
		func() float64 { return float64(c.mAssigned.Load()) })
	r.CounterFunc("triaged_cluster_requeued_total", "jobs requeued after a lease expired",
		func() float64 { return float64(c.mRequeued.Load()) })
	r.CounterFunc("triaged_cluster_lease_expired_total", "leases lapsed without a heartbeat",
		func() float64 { return float64(c.mExpired.Load()) })
	r.CounterFunc("triaged_cluster_results_total", "results uploaded by workers",
		func() float64 { return float64(c.mResults.Load()) })
	r.CounterFunc("triaged_cluster_duplicate_uploads_total", "uploads for jobs that already had a result",
		func() float64 { return float64(c.mDupedUp.Load()) })
	r.CounterFunc("triaged_cluster_upload_rejected_total", "uploads that failed verification (nothing persisted)",
		func() float64 { return float64(c.mRejected.Load()) })
	r.CounterFunc("triaged_cluster_hedged_total", "jobs speculatively re-dispatched past the p99 run estimate",
		func() float64 { return float64(c.mHedged.Load()) })
	r.CounterFunc("triaged_cluster_quarantines_total", "times a worker crossed into quarantine",
		func() float64 { return float64(c.mQuarantines.Load()) })
	r.CounterFunc("triaged_cluster_assignlog_errors_total", "assignment-log write failures (audit only)",
		func() float64 { return float64(c.mLogErrors.Load()) })
}

// registerWorkerGauge adds a per-worker in-flight gauge the first time
// a name registers (re-registrations reuse it; the closure counts all
// live workers carrying the name).
func (c *Coordinator) registerWorkerGauge(name string) {
	gname := "triaged_worker_inflight_" + sanitizeMetricName(name)
	c.mu.Lock()
	if c.gauges[gname] {
		c.mu.Unlock()
		return
	}
	c.gauges[gname] = true
	c.mu.Unlock()
	c.srv.Registry().GaugeFunc(gname, "jobs in flight on worker "+name, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, ws := range c.workers {
			if ws.name == name {
				n += len(ws.inflight)
			}
		}
		return float64(n)
	})
}

// sanitizeMetricName maps an arbitrary worker name onto the Prometheus
// metric-name alphabet.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "unnamed"
	}
	return b.String()
}
