// Package cluster splits the simulation service across machines: a
// coordinator embedded in triaged (behind -cluster) owns admission,
// dedup, and the content-addressed result store, while any number of
// triageworker processes register over HTTP, hold heartbeat leases,
// long-poll for jobs, stream progress/sample events back, and upload
// results. The store stays the single source of truth, so no cell
// with the same config fingerprint is ever simulated twice
// cluster-wide; a worker that dies mid-job loses its lease and the
// job requeues; a coordinator that dies re-admits queued and leased
// jobs from the admission log (queue.jsonl) — job ids are derived
// from content keys, so a surviving worker's upload still lands.
package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/vfs"
)

// assignFile is the coordinator's assignment audit log, next to the
// store's queue.jsonl. One JSON line per assign/complete/fail/
// expire/requeue event, written through the server's vfs (so chaos
// tests exercise it under injected faults). Durability of jobs does
// not depend on it — that is queue.jsonl's contract — but it records
// which worker ran what, survives restarts, and is cheap to grep.
const assignFile = "assign.jsonl"

// Config sizes a Coordinator.
type Config struct {
	// Server is the underlying service (created with RemoteExec: true).
	// Required.
	Server *service.Server
	// LeaseTTL is how long a job assignment survives without a
	// heartbeat before the sweep requeues it. Default 10s.
	LeaseTTL time.Duration
	// SweepEvery paces the lease-expiry sweep. Default LeaseTTL/4.
	SweepEvery time.Duration
	// PollWindow bounds how long a worker's poll blocks waiting for
	// work before returning 204. Default 25s.
	PollWindow time.Duration
}

// Coordinator dispatches the server's queue to registered workers.
type Coordinator struct {
	cfg  Config
	srv  *service.Server
	fsys vfs.FS

	mu        sync.Mutex
	workers   map[string]*workerState
	leases    map[string]*lease // by job id
	jobAcc    map[string]int    // samples accepted into each job's feed
	gauges    map[string]bool   // per-worker gauge names already registered
	assignLog vfs.File
	workerSeq int

	dispatch chan *service.Job
	stopOnce sync.Once
	stopc    chan struct{}
	wg       sync.WaitGroup

	mAssigned  atomic.Int64
	mRequeued  atomic.Int64
	mExpired   atomic.Int64
	mResults   atomic.Int64
	mDupedUp   atomic.Int64 // duplicate uploads (first result won)
	mLogErrors atomic.Int64
}

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	slots    int
	lastSeen time.Time
	inflight map[string]bool // job ids under lease
}

// lease is one assignment.
type lease struct {
	job     *service.Job
	worker  string // worker id
	started time.Time
	expires time.Time
	// lastInstr is the worker's last absolute instruction count, so
	// event batches fold into the feed as deltas.
	lastInstr uint64
	// samplesSeen counts samples received under this lease; together
	// with the job's accepted count it dedups re-streamed samples
	// after a requeue.
	samplesSeen int
}

// New starts a coordinator over a RemoteExec server: the dispatcher
// pulls queued jobs (skipping any already durable cluster-wide), the
// sweeper requeues expired leases, and cluster metrics register on
// the server's registry. Call Stop (after draining the server) to
// shut down.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("cluster: Config.Server is required")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.LeaseTTL / 4
	}
	if cfg.PollWindow <= 0 {
		cfg.PollWindow = 25 * time.Second
	}
	c := &Coordinator{
		cfg:      cfg,
		srv:      cfg.Server,
		fsys:     cfg.Server.VFS(),
		workers:  make(map[string]*workerState),
		leases:   make(map[string]*lease),
		jobAcc:   make(map[string]int),
		gauges:   make(map[string]bool),
		dispatch: make(chan *service.Job),
		stopc:    make(chan struct{}),
	}
	path := filepath.Join(cfg.Server.StoreDirPath(), assignFile)
	f, err := c.fsys.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening assignment log: %w", err)
	}
	c.assignLog = f
	c.registerMetrics()
	c.wg.Add(2)
	go c.dispatchLoop()
	go c.sweepLoop()
	return c, nil
}

// Stop shuts the coordinator down: dispatcher and sweeper exit and
// the assignment log closes. Drain the server first — the dispatcher
// unblocks from the queue when Drain closes it. Leased jobs keep
// their admission-log entries, so nothing is lost across a restart.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.stopc) })
	c.wg.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.assignLog != nil {
		c.assignLog.Close()
		c.assignLog = nil
	}
}

// dispatchLoop feeds the queue to polling workers, completing
// already-durable cells from the store instead of assigning them.
func (c *Coordinator) dispatchLoop() {
	defer c.wg.Done()
	for {
		j := c.srv.Take()
		if j == nil {
			close(c.dispatch)
			return
		}
		// Cluster-wide dedup at dispatch: the key may have become
		// durable after this job queued (an identical cell finished on
		// another worker, or a pre-loaded store). Serve it, don't
		// simulate it.
		if st := c.srv.StateOf(j); st == service.StateDone || st == service.StateFailed {
			continue
		}
		if c.srv.HasDurable(j.Key()) && c.srv.CompleteFromStore(j) {
			continue
		}
		select {
		case c.dispatch <- j:
		case <-c.stopc:
			// Shutting down with a job in hand: it stays admitted in
			// queue.jsonl and re-admits on the next start.
			return
		}
	}
}

// sweepLoop requeues jobs whose lease lapsed without a heartbeat.
func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stopc:
			return
		case <-t.C:
			c.sweep(time.Now())
		}
	}
}

// sweep expires lapsed leases and requeues their jobs.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	var lapsed []*lease
	for id, l := range c.leases {
		if now.After(l.expires) {
			lapsed = append(lapsed, l)
			delete(c.leases, id)
			if ws := c.workers[l.worker]; ws != nil {
				delete(ws.inflight, l.job.ID())
			}
		}
	}
	c.mu.Unlock()
	for _, l := range lapsed {
		c.mExpired.Add(1)
		if tr := l.job.Trace(); tr != nil {
			tr.Mark("lease-expired", map[string]string{"worker": l.worker})
		}
		c.logEvent("expire", l.job, l.worker)
		if c.srv.Requeue(l.job, "lease expired on worker "+l.worker) {
			c.mRequeued.Add(1)
			c.logEvent("requeue", l.job, l.worker)
		}
	}
}

// logEvent appends one assignment-log line (best effort: the audit
// trail must not take the cluster down when the disk is faulting —
// job durability is queue.jsonl's contract, not this file's).
func (c *Coordinator) logEvent(event string, j *service.Job, worker string) {
	line := fmt.Sprintf("{\"ts_ms\":%d,\"event\":%q,\"job\":%q,\"key\":%q,\"worker\":%q}\n",
		time.Now().UnixMilli(), event, j.ID(), j.Key(), worker)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.assignLog == nil {
		return
	}
	if _, err := c.assignLog.Write([]byte(line)); err != nil {
		c.mLogErrors.Add(1)
		return
	}
	if err := c.assignLog.Sync(); err != nil {
		c.mLogErrors.Add(1)
	}
}

// register admits a worker and returns its state.
func (c *Coordinator) register(name string, slots int) *workerState {
	if slots < 1 {
		slots = 1
	}
	c.mu.Lock()
	c.workerSeq++
	ws := &workerState{
		id:       fmt.Sprintf("w%03d", c.workerSeq),
		name:     name,
		slots:    slots,
		lastSeen: time.Now(),
		inflight: make(map[string]bool),
	}
	c.workers[ws.id] = ws
	c.mu.Unlock()
	c.registerWorkerGauge(name)
	return ws
}

// touch refreshes a worker's liveness, returning nil for unknown ids
// (a coordinator restart wiped the table — the worker re-registers).
func (c *Coordinator) touch(id string) *workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[id]
	if ws != nil {
		ws.lastSeen = time.Now()
	}
	return ws
}

// assign leases a job to a worker.
func (c *Coordinator) assign(j *service.Job, ws *workerState) {
	now := time.Now()
	c.mu.Lock()
	c.leases[j.ID()] = &lease{
		job:     j,
		worker:  ws.id,
		started: now,
		expires: now.Add(c.cfg.LeaseTTL),
	}
	ws.inflight[j.ID()] = true
	c.mu.Unlock()
	c.mAssigned.Add(1)
	c.srv.BeginRemote(j, ws.name+"/"+ws.id)
	c.logEvent("assign", j, ws.id)
}

// heartbeat renews the worker's leases; returns job ids it should
// abandon (done elsewhere, or requeued past it).
func (c *Coordinator) heartbeat(ws *workerState, jobs []string) (cancelled []string) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range jobs {
		l, ok := c.leases[id]
		if !ok || l.worker != ws.id {
			cancelled = append(cancelled, id)
			continue
		}
		st := c.srv.StateOf(l.job)
		if st == service.StateDone || st == service.StateFailed {
			delete(c.leases, id)
			delete(ws.inflight, id)
			cancelled = append(cancelled, id)
			continue
		}
		l.expires = now.Add(c.cfg.LeaseTTL)
	}
	return cancelled
}

// events folds a worker's progress batch into the job's feed.
// Progress is accepted only from the current lease holder; samples
// dedup against what the feed already absorbed, so a requeued job's
// re-streamed prefix does not double up for SSE consumers.
func (c *Coordinator) events(jobID string, batch EventBatch) {
	c.mu.Lock()
	l, ok := c.leases[jobID]
	if !ok || l.worker != batch.WorkerID {
		c.mu.Unlock()
		return
	}
	feed := l.job.Feed()
	if batch.Instructions > l.lastInstr {
		feed.Add(batch.Instructions - l.lastInstr)
		l.lastInstr = batch.Instructions
	}
	accepted := c.jobAcc[jobID]
	for i, smp := range batch.Samples {
		if l.samplesSeen+i >= accepted {
			feed.OnSample(smp)
			c.jobAcc[jobID] = l.samplesSeen + i + 1
		}
	}
	l.samplesSeen += len(batch.Samples)
	c.mu.Unlock()
}

// finish disposes an uploaded result or error. First result wins;
// anything after is a duplicate and changes nothing.
func (c *Coordinator) finish(j *service.Job, up ResultUpload) ResultResponse {
	c.mu.Lock()
	l := c.leases[j.ID()]
	holder := l != nil && l.worker == up.WorkerID
	if holder {
		delete(c.leases, j.ID())
		if ws := c.workers[up.WorkerID]; ws != nil {
			delete(ws.inflight, j.ID())
		}
	}
	c.mu.Unlock()

	if up.Error != "" {
		// Execution errors are honored only from the lease holder: a
		// late error from a worker whose lease expired must not kill a
		// job another worker is (re)running.
		if !holder {
			c.mDupedUp.Add(1)
			return ResultResponse{Duplicate: true}
		}
		c.logEvent("fail", j, up.WorkerID)
		if !c.srv.FailRemote(j, up.Error) {
			c.mDupedUp.Add(1)
			return ResultResponse{Duplicate: true}
		}
		return ResultResponse{}
	}
	// Results are honored from anyone — they are deterministic and
	// content-addressed, so a late upload from an expired lease saves
	// the requeued copy from re-simulating.
	if !c.srv.CompleteRemote(j, *up.Result) {
		c.mDupedUp.Add(1)
		return ResultResponse{Duplicate: true}
	}
	c.mResults.Add(1)
	c.logEvent("complete", j, up.WorkerID)
	c.mu.Lock()
	delete(c.jobAcc, j.ID())
	c.mu.Unlock()
	return ResultResponse{}
}

// Status snapshots the cluster for triagectl.
func (c *Coordinator) Status() StatusView {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	v := StatusView{
		Workers:  make([]WorkerView, 0, len(c.workers)),
		Leases:   make([]LeaseView, 0, len(c.leases)),
		Queued:   c.srv.QueueLen(),
		Assigned: c.mAssigned.Load(),
		Requeued: c.mRequeued.Load(),
		Expired:  c.mExpired.Load(),
	}
	for _, ws := range c.workers {
		v.Workers = append(v.Workers, WorkerView{
			ID:             ws.id,
			Name:           ws.name,
			Slots:          ws.slots,
			Inflight:       len(ws.inflight),
			LastSeenMillis: now.Sub(ws.lastSeen).Milliseconds(),
			Live:           now.Sub(ws.lastSeen) <= c.cfg.LeaseTTL,
		})
	}
	sort.Slice(v.Workers, func(i, k int) bool { return v.Workers[i].ID < v.Workers[k].ID })
	for id, l := range c.leases {
		v.Leases = append(v.Leases, LeaseView{
			JobID:           id,
			Key:             l.job.Key(),
			Worker:          l.worker,
			ExpiresInMillis: l.expires.Sub(now).Milliseconds(),
			AgeMillis:       now.Sub(l.started).Milliseconds(),
		})
	}
	sort.Slice(v.Leases, func(i, k int) bool { return v.Leases[i].JobID < v.Leases[k].JobID })
	return v
}

// registerMetrics adds the cluster series to the server's registry
// (scraped through the same /metrics the service already serves).
func (c *Coordinator) registerMetrics() {
	r := c.srv.Registry()
	r.GaugeFunc("triaged_cluster_workers", "registered workers", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	r.GaugeFunc("triaged_cluster_leases", "jobs under an active worker lease", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.leases))
	})
	r.CounterFunc("triaged_cluster_assigned_total", "jobs leased to workers",
		func() float64 { return float64(c.mAssigned.Load()) })
	r.CounterFunc("triaged_cluster_requeued_total", "jobs requeued after a lease expired",
		func() float64 { return float64(c.mRequeued.Load()) })
	r.CounterFunc("triaged_cluster_lease_expired_total", "leases lapsed without a heartbeat",
		func() float64 { return float64(c.mExpired.Load()) })
	r.CounterFunc("triaged_cluster_results_total", "results uploaded by workers",
		func() float64 { return float64(c.mResults.Load()) })
	r.CounterFunc("triaged_cluster_duplicate_uploads_total", "uploads for jobs that already had a result",
		func() float64 { return float64(c.mDupedUp.Load()) })
	r.CounterFunc("triaged_cluster_assignlog_errors_total", "assignment-log write failures (audit only)",
		func() float64 { return float64(c.mLogErrors.Load()) })
}

// registerWorkerGauge adds a per-worker in-flight gauge the first time
// a name registers (re-registrations reuse it; the closure counts all
// live workers carrying the name).
func (c *Coordinator) registerWorkerGauge(name string) {
	gname := "triaged_worker_inflight_" + sanitizeMetricName(name)
	c.mu.Lock()
	if c.gauges[gname] {
		c.mu.Unlock()
		return
	}
	c.gauges[gname] = true
	c.mu.Unlock()
	c.srv.Registry().GaugeFunc(gname, "jobs in flight on worker "+name, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, ws := range c.workers {
			if ws.name == name {
				n += len(ws.inflight)
			}
		}
		return float64(n)
	})
}

// sanitizeMetricName maps an arbitrary worker name onto the Prometheus
// metric-name alphabet.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "unnamed"
	}
	return b.String()
}
