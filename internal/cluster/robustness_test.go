package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netfault"
	"repro/internal/service"
)

// TestBackoffSeededSchedule pins the retry policy: the schedule is a
// pure function of the seed (two instances with the same seed agree
// delay for delay), every delay stays inside the ±25% jitter band of
// its capped exponential center, and different seeds diverge — the
// property that de-correlates a fleet's reconnect stampede.
func TestBackoffSeededSchedule(t *testing.T) {
	const base, cap = 20 * time.Millisecond, 640 * time.Millisecond
	a := newBackoff(42, base, cap)
	b := newBackoff(42, base, cap)
	for i := 0; i < 12; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}

	c := newBackoff(42, base, cap)
	for i := 0; i < 12; i++ {
		center := base << i
		if center > cap {
			center = cap
		}
		d := c.Delay(i)
		lo := time.Duration(float64(center) * 0.75)
		hi := time.Duration(float64(center) * 1.25)
		if d < lo || d > hi {
			t.Errorf("attempt %d: delay %v outside jitter band [%v, %v]", i, d, lo, hi)
		}
	}

	d := newBackoff(43, base, cap)
	e := newBackoff(42, base, cap)
	same := true
	for i := 0; i < 8; i++ {
		if d.Delay(i) != e.Delay(i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}

	// Jitter bounds hold for the heartbeat interval too.
	f := newBackoff(7, base, cap)
	for i := 0; i < 32; i++ {
		j := f.Jitter(time.Second, 0.2)
		if j < 800*time.Millisecond || j >= 1200*time.Millisecond {
			t.Fatalf("Jitter(1s, 0.2) = %v outside [800ms, 1200ms)", j)
		}
	}
}

// TestWorkerTokenDeterministic pins the register idempotency key: it
// derives from name and seed alone, so a retried or duplicate-delivered
// register is recognizable, while distinct workers never collide.
func TestWorkerTokenDeterministic(t *testing.T) {
	mk := func(name string, seed int64) *Worker {
		w, err := NewWorker(WorkerConfig{Coordinator: "http://unused", Name: name, JitterSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	if a, b := mk("n", 7), mk("n", 7); a.token != b.token {
		t.Errorf("same name+seed produced different tokens: %q vs %q", a.token, b.token)
	}
	if a, b := mk("n", 7), mk("n", 8); a.token == b.token {
		t.Errorf("different seeds share token %q", a.token)
	}
	if a, b := mk("n", 7), mk("m", 7); a.token == b.token {
		t.Errorf("different names share token %q", a.token)
	}
}

// TestRegisterTokenIdempotent covers the coordinator side directly and
// over a duplicating wire: a re-delivered register with the same token
// returns the existing identity; no phantom worker is minted.
func TestRegisterTokenIdempotent(t *testing.T) {
	tc := startCluster(t, nil, nil)
	defer tc.stop()

	ws1 := tc.coord.register("n", 1, "tok-a")
	ws2 := tc.coord.register("n", 1, "tok-a")
	if ws1.id != ws2.id {
		t.Errorf("same token minted two workers: %s and %s", ws1.id, ws2.id)
	}
	ws3 := tc.coord.register("n", 1, "tok-b")
	if ws3.id == ws1.id {
		t.Error("different token reused the same worker id")
	}
	if n := len(tc.coord.Status().Workers); n != 2 {
		t.Errorf("status lists %d workers, want 2", n)
	}

	// Over the wire: every register is delivered twice; the worker still
	// registers exactly once.
	nf := netfault.New(tc.ts.Client().Transport, netfault.Plan{Seed: 5, PDuplicate: 1})
	nf.Match(func(req *http.Request) bool { return strings.HasSuffix(req.URL.Path, "/register") })
	_, stop := startWorker(t, tc.ts.URL, "dup-node", func(c *WorkerConfig) {
		c.Client = &http.Client{Transport: nf, Timeout: 5 * time.Minute}
		c.JitterSeed = 11
	})
	defer stop()
	deadline := time.Now().Add(10 * time.Second)
	for len(tc.coord.Status().Workers) < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if nf.Counters()["duplicate"] == 0 {
		t.Fatal("the wire never duplicated the register")
	}
	if n := len(tc.coord.Status().Workers); n != 3 {
		t.Errorf("status lists %d workers after a duplicated register, want 3", n)
	}
}

// assignLogEvents reads the coordinator's assignment audit log and
// returns the job ids of every line matching the given event, in file
// order.
func assignLogEvents(t *testing.T, tc *testCluster, event string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(tc.srv.StoreDirPath(), assignFile))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" {
			continue
		}
		var rec struct {
			Event string `json:"event"`
			Job   string `json:"job"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad assign-log line %q: %v", line, err)
		}
		if rec.Event == event {
			out = append(out, rec.Job)
		}
	}
	return out
}

// recvJob pulls one job off the coordinator's dispatch channel, as a
// polling worker would.
func recvJob(t *testing.T, tc *testCluster) *service.Job {
	t.Helper()
	select {
	case j := <-tc.coord.dispatch:
		return j
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for a dispatched job")
		return nil
	}
}

// sweepRequeueOrder runs one controlled mass-expiry: five jobs are
// leased to a phantom worker, their lease start times are rewritten to
// a crafted permutation (including a tie), everything is expired at
// once, and one sweep requeues them. It returns the requeue order from
// the audit log and the set of re-dispatched job ids.
func sweepRequeueOrder(t *testing.T) (requeued []string, expected []string) {
	t.Helper()
	tc := startCluster(t, nil, func(c *Config) {
		c.LeaseTTL = time.Hour
		c.SweepEvery = time.Hour // manual sweeps only
	})
	defer tc.stop()
	ws := tc.coord.register("phantom", 8, "")

	jobs := make([]*service.Job, 5)
	for i := range jobs {
		j, _, err := tc.srv.Submit(cloneSpec(tinySpec(uint64(9000 + i))))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	taken := make([]*service.Job, 5)
	for i := range taken {
		taken[i] = recvJob(t, tc)
		tc.coord.assign(taken[i], ws)
	}

	// Rewrite lease starts: job 2 oldest, jobs 0 and 4 tied (the id
	// breaks the tie), then 1, then 3 — and lapse every lease at once.
	now := time.Now()
	offsets := []time.Duration{-40 * time.Millisecond, -30 * time.Millisecond,
		-50 * time.Millisecond, -20 * time.Millisecond, -40 * time.Millisecond}
	tc.coord.mu.Lock()
	for i, j := range taken {
		l := tc.coord.leases[j.ID()]
		l.started = now.Add(offsets[i])
		l.expires = now.Add(-time.Second)
	}
	tc.coord.mu.Unlock()

	order := []int{2, 0, 4, 1, 3}
	if taken[4].ID() < taken[0].ID() {
		order = []int{2, 4, 0, 1, 3}
	}
	for _, i := range order {
		expected = append(expected, taken[i].ID())
	}

	tc.coord.sweep(time.Now())

	// Every job re-dispatches exactly once — a double requeue would
	// surface here as a duplicate id.
	seen := make(map[string]int)
	for i := 0; i < 5; i++ {
		seen[recvJob(t, tc).ID()]++
	}
	for _, j := range taken {
		if seen[j.ID()] != 1 {
			t.Errorf("job %s re-dispatched %d times, want 1", j.ID(), seen[j.ID()])
		}
	}
	return assignLogEvents(t, tc, "requeue"), expected
}

// TestSweepRequeueOrderDeterministic pins satellite 3: simultaneous
// lease expiries requeue in (start time, job id) order — never the Go
// map iteration order — no job is double-assigned, and a second
// identical run reproduces the exact sequence.
func TestSweepRequeueOrderDeterministic(t *testing.T) {
	got1, want := sweepRequeueOrder(t)
	if len(got1) != len(want) {
		t.Fatalf("requeued %d jobs, want %d", len(got1), len(want))
	}
	for i := range want {
		if got1[i] != want[i] {
			t.Fatalf("requeue order %v, want %v", got1, want)
		}
	}
	got2, _ := sweepRequeueOrder(t)
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Fatalf("two identical runs diverged: %v vs %v", got1, got2)
		}
	}
}

// TestEventBatchDuplicateDelivery runs a sampled job over a wire that
// delivers every event batch twice. The per-lease sequence filter must
// fold each batch once: the feed's sample intervals stay strictly
// increasing and never exceed the sampler's true count.
func TestEventBatchDuplicateDelivery(t *testing.T) {
	tc := startCluster(t, nil, nil)
	defer tc.stop()

	nf := netfault.New(tc.ts.Client().Transport, netfault.Plan{Seed: 11, PDuplicate: 1})
	nf.Match(func(req *http.Request) bool { return strings.HasSuffix(req.URL.Path, "/events") })
	_, stop := startWorker(t, tc.ts.URL, "dup-events", func(c *WorkerConfig) {
		c.ProgressEvery = 5 * time.Millisecond
		c.Client = &http.Client{Transport: nf, Timeout: 5 * time.Minute}
		c.JitterSeed = 13
	})
	defer stop()

	spec := tinySpec(321)
	spec.Run.Measure = 200_000
	spec.Run.SampleEvery = 20_000
	j, _, err := tc.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, tc.srv, j); st.State != service.StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if nf.Counters()["duplicate"] == 0 {
		t.Fatal("the wire never duplicated an event batch")
	}
	samples := j.Feed().SamplesSince(0)
	if len(samples) == 0 {
		t.Fatal("job feed absorbed no samples")
	}
	if len(samples) > 10 {
		t.Errorf("feed holds %d samples for 10 intervals — duplicates folded in", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Interval <= samples[i-1].Interval {
			t.Errorf("sample intervals not strictly increasing at %d: %d after %d",
				i, samples[i].Interval, samples[i-1].Interval)
		}
	}
}

// TestWorkerDrainRotation is the fleet-rotation satellite: draining a
// worker by name makes its Run return on its own (no context cancel),
// the status view reflects it, and the rest of the fleet keeps serving
// jobs the drained worker never touches.
func TestWorkerDrainRotation(t *testing.T) {
	tc := startCluster(t, nil, func(c *Config) {
		c.PollWindow = 300 * time.Millisecond
	})
	defer tc.stop()
	client := tc.ts.Client()

	alpha, err := NewWorker(WorkerConfig{
		Coordinator: tc.ts.URL, Name: "alpha", Slots: 1, PoolWorkers: 2,
		ProgressEvery: 20 * time.Millisecond, PollRetry: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	alphaDone := make(chan struct{})
	go func() {
		defer close(alphaDone)
		alpha.Run(ctxA)
	}()
	_, stopBeta := startWorker(t, tc.ts.URL, "beta", nil)
	defer stopBeta()

	deadline := time.Now().Add(10 * time.Second)
	for len(tc.coord.Status().Workers) < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}

	// Warm the fleet, then settle: nothing queued when the drain lands.
	for i := 0; i < 2; i++ {
		j, _, err := tc.srv.Submit(cloneSpec(tinySpec(uint64(7000 + i))))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, tc.srv, j); st.State != service.StateDone {
			t.Fatalf("warmup job failed: %s", st.Error)
		}
	}

	var dr DrainResponse
	if code := postJSON(t, client, tc.ts.URL+"/cluster/v1/workers/drain",
		DrainRequest{Name: "alpha"}, &dr); code != http.StatusOK || len(dr.Drained) == 0 {
		t.Fatalf("drain alpha: HTTP %d, drained %v", code, dr.Drained)
	}
	for _, wv := range tc.coord.Status().Workers {
		if wv.Name == "alpha" && !wv.Draining {
			t.Error("status does not show alpha draining")
		}
	}

	// Alpha's next poll tells it to exit; Run returns without a cancel.
	select {
	case <-alphaDone:
	case <-time.After(30 * time.Second):
		t.Fatal("alpha never exited after drain")
	}
	if !alpha.Draining() {
		t.Error("alpha exited without observing the drain")
	}

	// The rotation: a replacement joins and the fleet keeps serving;
	// the drained worker's tally never moves again.
	_, stopGamma := startWorker(t, tc.ts.URL, "gamma", nil)
	defer stopGamma()
	before := alpha.JobsDone()
	for i := 0; i < 3; i++ {
		j, _, err := tc.srv.Submit(cloneSpec(tinySpec(uint64(7100 + i))))
		if err != nil {
			t.Fatal(err)
		}
		if st := waitTerminal(t, tc.srv, j); st.State != service.StateDone {
			t.Fatalf("post-drain job failed: %s", st.Error)
		}
	}
	if got := alpha.JobsDone(); got != before {
		t.Errorf("drained worker completed %d more jobs", got-before)
	}

	// Unknown names are a 404, not a silent no-op.
	if code := postJSON(t, client, tc.ts.URL+"/cluster/v1/workers/drain",
		DrainRequest{Name: "nobody"}, nil); code != http.StatusNotFound {
		t.Errorf("drain of unknown worker: HTTP %d, want 404", code)
	}
}

// TestHealthDecayReadmission pins the quarantine lifecycle: one
// verification reject quarantines a worker immediately, and pure decay
// (no explicit timer, no operator action) re-admits it about
// HalfLife·log2(penalty/threshold) later.
func TestHealthDecayReadmission(t *testing.T) {
	tc := startCluster(t, nil, func(c *Config) {
		c.HealthHalfLife = 50 * time.Millisecond
	})
	defer tc.stop()

	ws := tc.coord.register("flaky", 1, "")
	tc.coord.penalize(ws.id, healthVerifyReject, time.Now())

	sv := tc.coord.Status()
	if len(sv.Workers) != 1 || !sv.Workers[0].Quarantined {
		t.Fatalf("worker not quarantined after a verify reject: %+v", sv.Workers)
	}
	if got := tc.coord.mQuarantines.Load(); got != 1 {
		t.Errorf("quarantine entries = %d, want 1", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if w := tc.coord.Status().Workers[0]; !w.Quarantined {
			return // decay re-admitted it
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("decay never re-admitted the worker")
}
