package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// WorkerConfig sizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	// Required.
	Coordinator string
	// Name is the worker's display name. Default "worker".
	Name string
	// Slots is how many jobs run concurrently. Default 1.
	Slots int
	// PoolWorkers sizes the shared simulation pool a figure job fans
	// out over. Default GOMAXPROCS.
	PoolWorkers int
	// Corpus, when non-nil, is the worker's local trace corpus: traces
	// a job names that are missing locally are fetched from the
	// coordinator by hash and verified on ingest. Nil skips fetching
	// (the process-global corpus is assumed to resolve them).
	Corpus *trace.Corpus
	// Deadline and Stall arm the per-job watchdog, like the service's.
	Deadline time.Duration
	Stall    time.Duration
	// Gate mirrors service.Config.Gate: called right before a job's
	// simulation starts. Test hook; leave nil in production.
	Gate func(key string)
	// ProgressEvery paces progress/sample event batches to the
	// coordinator. Default 250ms.
	ProgressEvery time.Duration
	// PollRetry is the base back-off after a failed RPC (coordinator
	// unreachable); retries grow exponentially from it, capped, with
	// ±25% seeded jitter so a partitioned fleet does not reconnect in
	// lockstep. Default 500ms.
	PollRetry time.Duration
	// RPCTimeout is the per-attempt deadline on short RPCs (register,
	// heartbeat, events, result upload) — a half-open connection fails
	// the attempt instead of wedging the worker until the client's
	// overall timeout. Long-polls keep the client timeout. Default 15s.
	RPCTimeout time.Duration
	// JitterSeed seeds the retry-jitter stream (and the idempotency
	// token). 0 derives a unique seed per worker, which is what
	// production wants; tests pin it for reproducible schedules.
	JitterSeed int64
	// Client is the HTTP client. Default: http.Client with a 5-minute
	// timeout (long-polls ride inside it). Chaos tests hand in a client
	// whose Transport is a netfault.Transport.
	Client *http.Client
	// Log receives worker lifecycle lines; nil discards them.
	Log io.Writer
}

// Worker pulls jobs from a coordinator and executes them on a local
// pool, streaming progress back and uploading results. Run blocks
// until the context cancels and every in-flight job has finished.
type Worker struct {
	cfg    WorkerConfig
	pool   *experiments.Pool
	client *http.Client
	retry  *backoff
	token  string // register idempotency key
	fp     string // machine-config fingerprint stamped on uploads

	mu       sync.Mutex
	id       string
	leaseTTL time.Duration
	inflight map[string]bool

	// killed simulates abrupt process death for chaos tests: every
	// future poll, heartbeat, event post, and result upload is
	// suppressed, exactly as if the process had been kill -9'd (any
	// running simulation's outcome is discarded).
	killed atomic.Bool

	// draining flips when the coordinator rotates this worker out:
	// slots stop polling and Run returns once in-flight jobs finish.
	draining atomic.Bool

	jobsDone atomic.Int64
}

// NewWorker validates the config and prepares a worker; call Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("cluster: WorkerConfig.Coordinator is required")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if !strings.Contains(cfg.Coordinator, "://") {
		cfg.Coordinator = "http://" + cfg.Coordinator
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.PoolWorkers < 1 {
		cfg.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 250 * time.Millisecond
	}
	if cfg.PollRetry <= 0 {
		cfg.PollRetry = 500 * time.Millisecond
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 15 * time.Second
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = time.Now().UnixNano() ^ int64(os.Getpid())<<32
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	retry := newBackoff(cfg.JitterSeed, cfg.PollRetry, 32*cfg.PollRetry)
	return &Worker{
		cfg:      cfg,
		pool:     experiments.NewPool(cfg.PoolWorkers),
		client:   client,
		retry:    retry,
		token:    fmt.Sprintf("%s-%016x", cfg.Name, uint64(cfg.JitterSeed)),
		fp:       experiments.ConfigFingerprint(config.Default(1)),
		inflight: make(map[string]bool),
	}, nil
}

// Draining reports whether the coordinator has told this worker to
// rotate out.
func (w *Worker) Draining() bool { return w.draining.Load() }

// JobsDone reports how many jobs this worker has finished uploading.
func (w *Worker) JobsDone() int64 { return w.jobsDone.Load() }

// Kill hard-stops the worker mid-flight (chaos hook): all further
// communication with the coordinator is suppressed, so its leases
// lapse and its jobs requeue — indistinguishable, from the
// coordinator's side, from the process dying.
func (w *Worker) Kill() { w.killed.Store(true) }

// Run registers with the coordinator and serves jobs until ctx
// cancels (graceful: in-flight jobs finish and upload) or Kill.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	go w.heartbeatLoop(hbCtx)
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slotLoop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		fmt.Fprintf(w.cfg.Log, "triageworker[%s]: "+format+"\n", append([]any{w.cfg.Name}, args...)...)
	}
}

// post sends one JSON request; out may be nil. A killed worker's
// posts vanish without reaching the wire. A positive timeout puts a
// per-attempt deadline on this call — retried RPCs each get a fresh
// one, so a half-open connection costs one attempt, not the client's
// whole timeout; pass 0 for long-polls, which ride the client timeout.
func (w *Worker) post(ctx context.Context, path string, in, out any, timeout time.Duration) (int, error) {
	if w.killed.Load() {
		return 0, errors.New("worker killed")
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if w.killed.Load() {
		return 0, errors.New("worker killed")
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}

// register obtains a worker id, retrying with jittered exponential
// backoff while the coordinator is unreachable — after a partition
// heals, a fleet's registers spread out instead of stampeding. The
// token makes a duplicate-delivered register idempotent.
func (w *Worker) register(ctx context.Context) error {
	for attempt := 0; ; attempt++ {
		var resp RegisterResponse
		code, err := w.post(ctx, "/cluster/v1/register",
			RegisterRequest{Name: w.cfg.Name, Slots: w.cfg.Slots, Token: w.token}, &resp, w.cfg.RPCTimeout)
		if err == nil && code == http.StatusOK {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.leaseTTL = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			w.mu.Unlock()
			w.logf("registered as %s (lease %v)", resp.WorkerID, time.Duration(resp.LeaseTTLMillis)*time.Millisecond)
			return nil
		}
		if w.killed.Load() {
			return errors.New("worker killed")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.retry.Delay(attempt)):
		}
	}
}

func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// heartbeatLoop renews leases for every in-flight job at roughly a
// third of the TTL, jittered ±20% so a fleet's heartbeats (and the
// re-registration stampede after a coordinator restart) decorrelate
// while still landing at least twice per TTL. A 410 (coordinator
// restarted, worker table wiped) re-registers; in-flight jobs keep
// running and upload by job id, which survives the restart because ids
// derive from content keys.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		ttl := w.leaseTTL
		w.mu.Unlock()
		every := ttl / 3
		if every <= 0 {
			every = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(w.retry.Jitter(every, 0.2)):
		}
		if w.killed.Load() {
			return
		}
		w.mu.Lock()
		jobs := make([]string, 0, len(w.inflight))
		for id := range w.inflight {
			jobs = append(jobs, id)
		}
		w.mu.Unlock()
		code, err := w.post(ctx, "/cluster/v1/heartbeat",
			HeartbeatRequest{WorkerID: w.workerID(), Jobs: jobs}, nil, w.cfg.RPCTimeout)
		if err == nil && code == http.StatusGone {
			if err := w.register(ctx); err != nil {
				return
			}
		}
	}
}

// slotLoop polls for jobs and executes them until ctx cancels, the
// coordinator tells the worker to drain, or Kill. Failed polls back
// off exponentially with jitter; a successful round trip resets the
// schedule.
func (w *Worker) slotLoop(ctx context.Context) {
	failures := 0
	for {
		if ctx.Err() != nil || w.killed.Load() || w.draining.Load() {
			return
		}
		var a PollResponse
		code, err := w.post(ctx, "/cluster/v1/poll", PollRequest{WorkerID: w.workerID()}, &a, 0)
		switch {
		case err != nil:
			if ctx.Err() != nil || w.killed.Load() {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(w.retry.Delay(failures)):
			}
			failures++
			continue
		case code == http.StatusGone:
			failures = 0
			if w.register(ctx) != nil {
				return
			}
			continue
		case code != http.StatusOK:
			failures = 0
			continue // 204: no work inside the poll window
		}
		failures = 0
		if a.Drain {
			w.draining.Store(true)
			w.logf("draining: coordinator rotated this worker out")
			return
		}
		w.execute(ctx, a)
	}
}

// execute runs one assigned job and uploads its outcome.
func (w *Worker) execute(ctx context.Context, a PollResponse) {
	w.mu.Lock()
	w.inflight[a.JobID] = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.inflight, a.JobID)
		w.mu.Unlock()
	}()

	if err := w.ensureTraces(ctx, a.Spec); err != nil {
		w.upload(ctx, a.JobID, ResultUpload{WorkerID: w.workerID(), Error: err.Error()})
		return
	}
	if gate := w.cfg.Gate; gate != nil {
		gate(a.Key)
	}

	var env service.JobResult
	var execErr string
	switch a.Spec.Kind {
	case service.KindFigure:
		env = w.runFigure(ctx, a)
	default:
		env, execErr = w.runSingle(ctx, a)
	}
	if w.killed.Load() {
		return
	}
	up := ResultUpload{WorkerID: w.workerID()}
	if execErr != "" {
		up.Error = execErr
	} else {
		up.Result = &env
		up.Fingerprint = w.fp
		// Hash the canonical envelope encoding; the coordinator
		// re-encodes what it decoded and compares, so any corruption
		// between here and its fsync is caught before persistence.
		if canonical, err := json.Marshal(env); err == nil {
			sum := sha256.Sum256(canonical)
			up.PayloadSHA256 = hex.EncodeToString(sum[:])
		}
	}
	w.upload(ctx, a.JobID, up)
}

// upload posts the job outcome, retrying transient failures with
// jittered backoff: losing a finished result to a connection blip
// would force a pointless re-simulation, and a one-way partition
// (result delivered, acknowledgment lost) resolves as a Duplicate on
// the retry — the upload is idempotent by job id. A verification
// reject is terminal: retrying the same bytes cannot succeed, and the
// coordinator has already requeued the job.
func (w *Worker) upload(ctx context.Context, jobID string, up ResultUpload) {
	var resp ResultResponse
	for attempt := 0; attempt < 8; attempt++ {
		resp = ResultResponse{}
		code, err := w.post(ctx, "/cluster/v1/jobs/"+jobID+"/result", up, &resp, w.cfg.RPCTimeout)
		if err == nil && (code == http.StatusOK || code == http.StatusNotFound) {
			if code == http.StatusOK {
				if resp.Rejected {
					w.logf("upload for %s rejected by coordinator: %s", jobID, resp.Reason)
					return
				}
				w.jobsDone.Add(1)
			}
			return
		}
		if w.killed.Load() || ctx.Err() != nil {
			return
		}
		time.Sleep(w.retry.Delay(attempt))
	}
	w.logf("upload for %s abandoned after retries (lease expiry will requeue it)", jobID)
}

// eventPoster batches progress and samples to the coordinator on a
// ticker, off the simulation's hot path: the sim feeds an atomic
// counter and an in-memory sample buffer, and a flusher goroutine
// does the HTTP.
type eventPoster struct {
	w      *Worker
	jobID  string
	instr  atomic.Uint64
	mu     sync.Mutex
	buffer []telemetry.Sample
	sent   uint64
	seq    int64 // batch sequence: the coordinator's duplicate filter
	stop   chan struct{}
	done   chan struct{}
}

// Add implements telemetry.ProgressSink.
func (p *eventPoster) Add(n uint64) { p.instr.Add(n) }

// OnSample buffers one interval sample for the next flush.
func (p *eventPoster) OnSample(s telemetry.Sample) {
	p.mu.Lock()
	p.buffer = append(p.buffer, s)
	p.mu.Unlock()
}

func (p *eventPoster) flush(ctx context.Context) {
	instr := p.instr.Load()
	p.mu.Lock()
	samples := p.buffer
	p.buffer = nil
	p.mu.Unlock()
	if instr == p.sent && len(samples) == 0 {
		return
	}
	p.sent = instr
	p.seq++
	p.w.post(ctx, "/cluster/v1/jobs/"+p.jobID+"/events",
		EventBatch{WorkerID: p.w.workerID(), Instructions: instr, Seq: p.seq, Samples: samples},
		nil, p.w.cfg.RPCTimeout)
}

func (p *eventPoster) run(ctx context.Context) {
	defer close(p.done)
	t := time.NewTicker(p.w.cfg.ProgressEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			p.flush(ctx)
			return
		case <-t.C:
			p.flush(ctx)
		}
	}
}

func (w *Worker) newPoster(jobID string) *eventPoster {
	return &eventPoster{w: w, jobID: jobID, stop: make(chan struct{}), done: make(chan struct{})}
}

// runSingle executes one RunSpec, mirroring the service's local path
// (same Guarded watchdog wrapper, same sampler wiring, same envelope
// construction) so the uploaded result re-encodes byte-identically to
// a single-node run.
func (w *Worker) runSingle(ctx context.Context, a PollResponse) (service.JobResult, string) {
	spec := *a.Spec.Run
	poster := w.newPoster(a.JobID)
	go poster.run(ctx)
	var hooks *telemetry.Hooks
	mkHooks := func() *telemetry.Hooks {
		h := &telemetry.Hooks{Progress: poster}
		if spec.SampleEvery > 0 {
			sam := telemetry.NewSampler(spec.SampleEvery)
			sam.Stream(poster.OnSample)
			h.Sampler = sam
		}
		hooks = h
		return h
	}
	fut := experiments.Go(w.pool, func() sim.Result {
		return experiments.Guarded(a.Key, w.cfg.Deadline, w.cfg.Stall, mkHooks, func(h *telemetry.Hooks) sim.Result {
			res, err := spec.Run(h)
			if err != nil {
				panic(err)
			}
			return res
		})
	})
	res, rerr := fut.Result()
	close(poster.stop)
	<-poster.done
	if rerr != nil {
		return service.JobResult{}, rerr.Error()
	}
	var samples []byte
	if hooks != nil && hooks.Sampler != nil {
		var buf bytes.Buffer
		if err := hooks.Sampler.WriteJSONL(&buf); err == nil {
			samples = buf.Bytes()
		}
	}
	return service.JobResult{Kind: service.KindSingle, Result: &res, SamplesJSONL: string(samples)}, ""
}

// runFigure executes one registry experiment on the worker's pool. A
// failed table still uploads as a result — the coordinator completes
// the job without storing it, same as the local path.
func (w *Worker) runFigure(ctx context.Context, a PollResponse) service.JobResult {
	e, _ := experiments.ByID(a.Spec.Figure)
	p := a.Spec.Scale.Params()
	p.Deadline, p.StallTimeout = w.cfg.Deadline, w.cfg.Stall
	runner := experiments.NewRunnerPool(p, w.pool)
	poster := w.newPoster(a.JobID)
	go poster.run(ctx)
	progressStop := make(chan struct{})
	go func() {
		t := time.NewTicker(w.cfg.ProgressEvery)
		defer t.Stop()
		var last uint64
		for {
			select {
			case <-progressStop:
				return
			case <-t.C:
				if n := runner.SimulatedInstructions(); n > last {
					poster.Add(n - last)
					last = n
				}
			}
		}
	}()
	table := experiments.RunOne(runner, e)
	close(progressStop)
	close(poster.stop)
	<-poster.done
	return service.JobResult{Kind: service.KindFigure, Table: table}
}

// ensureTraces fetches, by content hash, every corpus trace the spec
// names that the worker's local corpus lacks. The ingest re-hashes
// the streamed records, so the stored entry is correct by
// construction regardless of what the wire delivered.
func (w *Worker) ensureTraces(ctx context.Context, spec service.JobSpec) error {
	if w.cfg.Corpus == nil || spec.Run == nil {
		return nil
	}
	var ids []string
	if spec.Run.Trace != "" {
		ids = append(ids, spec.Run.Trace)
	}
	for _, entry := range spec.Run.Mix {
		if strings.HasPrefix(entry, "sha256:") {
			ids = append(ids, entry)
		}
	}
	for _, id := range ids {
		if w.cfg.Corpus.Has(id) {
			continue
		}
		if err := w.fetchTrace(ctx, id); err != nil {
			return err
		}
		w.logf("fetched trace %s from coordinator", id)
	}
	return nil
}

func (w *Worker) fetchTrace(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+"/cluster/v1/traces/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("fetching trace %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching trace %s: coordinator said %s", id, resp.Status)
	}
	got, err := w.cfg.Corpus.IngestFrom(resp.Body, id)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("fetching trace %s: stored as %s", id, got)
	}
	return nil
}
