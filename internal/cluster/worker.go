package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// WorkerConfig sizes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	// Required.
	Coordinator string
	// Name is the worker's display name. Default "worker".
	Name string
	// Slots is how many jobs run concurrently. Default 1.
	Slots int
	// PoolWorkers sizes the shared simulation pool a figure job fans
	// out over. Default GOMAXPROCS.
	PoolWorkers int
	// Corpus, when non-nil, is the worker's local trace corpus: traces
	// a job names that are missing locally are fetched from the
	// coordinator by hash and verified on ingest. Nil skips fetching
	// (the process-global corpus is assumed to resolve them).
	Corpus *trace.Corpus
	// Deadline and Stall arm the per-job watchdog, like the service's.
	Deadline time.Duration
	Stall    time.Duration
	// Gate mirrors service.Config.Gate: called right before a job's
	// simulation starts. Test hook; leave nil in production.
	Gate func(key string)
	// ProgressEvery paces progress/sample event batches to the
	// coordinator. Default 250ms.
	ProgressEvery time.Duration
	// PollRetry is the back-off after a failed poll (coordinator
	// unreachable). Default 500ms.
	PollRetry time.Duration
	// Client is the HTTP client. Default: http.Client with a 5-minute
	// timeout (long-polls ride inside it).
	Client *http.Client
	// Log receives worker lifecycle lines; nil discards them.
	Log io.Writer
}

// Worker pulls jobs from a coordinator and executes them on a local
// pool, streaming progress back and uploading results. Run blocks
// until the context cancels and every in-flight job has finished.
type Worker struct {
	cfg    WorkerConfig
	pool   *experiments.Pool
	client *http.Client

	mu       sync.Mutex
	id       string
	leaseTTL time.Duration
	inflight map[string]bool

	// killed simulates abrupt process death for chaos tests: every
	// future poll, heartbeat, event post, and result upload is
	// suppressed, exactly as if the process had been kill -9'd (any
	// running simulation's outcome is discarded).
	killed atomic.Bool

	jobsDone atomic.Int64
}

// NewWorker validates the config and prepares a worker; call Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, errors.New("cluster: WorkerConfig.Coordinator is required")
	}
	cfg.Coordinator = strings.TrimRight(cfg.Coordinator, "/")
	if !strings.Contains(cfg.Coordinator, "://") {
		cfg.Coordinator = "http://" + cfg.Coordinator
	}
	if cfg.Name == "" {
		cfg.Name = "worker"
	}
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.PoolWorkers < 1 {
		cfg.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = 250 * time.Millisecond
	}
	if cfg.PollRetry <= 0 {
		cfg.PollRetry = 500 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Worker{
		cfg:      cfg,
		pool:     experiments.NewPool(cfg.PoolWorkers),
		client:   client,
		inflight: make(map[string]bool),
	}, nil
}

// JobsDone reports how many jobs this worker has finished uploading.
func (w *Worker) JobsDone() int64 { return w.jobsDone.Load() }

// Kill hard-stops the worker mid-flight (chaos hook): all further
// communication with the coordinator is suppressed, so its leases
// lapse and its jobs requeue — indistinguishable, from the
// coordinator's side, from the process dying.
func (w *Worker) Kill() { w.killed.Store(true) }

// Run registers with the coordinator and serves jobs until ctx
// cancels (graceful: in-flight jobs finish and upload) or Kill.
func (w *Worker) Run(ctx context.Context) error {
	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, hbCancel := context.WithCancel(context.Background())
	defer hbCancel()
	go w.heartbeatLoop(hbCtx)
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slotLoop(ctx)
		}()
	}
	wg.Wait()
	return nil
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		fmt.Fprintf(w.cfg.Log, "triageworker[%s]: "+format+"\n", append([]any{w.cfg.Name}, args...)...)
	}
}

// post sends one JSON request; out may be nil. A killed worker's
// posts vanish without reaching the wire.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	if w.killed.Load() {
		return 0, errors.New("worker killed")
	}
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if w.killed.Load() {
		return 0, errors.New("worker killed")
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return resp.StatusCode, nil
}

// register obtains a worker id, retrying while the coordinator is
// unreachable.
func (w *Worker) register(ctx context.Context) error {
	for {
		var resp RegisterResponse
		code, err := w.post(ctx, "/cluster/v1/register", RegisterRequest{Name: w.cfg.Name, Slots: w.cfg.Slots}, &resp)
		if err == nil && code == http.StatusOK {
			w.mu.Lock()
			w.id = resp.WorkerID
			w.leaseTTL = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
			w.mu.Unlock()
			w.logf("registered as %s (lease %v)", resp.WorkerID, time.Duration(resp.LeaseTTLMillis)*time.Millisecond)
			return nil
		}
		if w.killed.Load() {
			return errors.New("worker killed")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.cfg.PollRetry):
		}
	}
}

func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// heartbeatLoop renews leases for every in-flight job at a third of
// the TTL. A 410 (coordinator restarted, worker table wiped)
// re-registers; in-flight jobs keep running and upload by job id,
// which survives the restart because ids derive from content keys.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	for {
		w.mu.Lock()
		ttl := w.leaseTTL
		w.mu.Unlock()
		every := ttl / 3
		if every <= 0 {
			every = time.Second
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(every):
		}
		if w.killed.Load() {
			return
		}
		w.mu.Lock()
		jobs := make([]string, 0, len(w.inflight))
		for id := range w.inflight {
			jobs = append(jobs, id)
		}
		w.mu.Unlock()
		code, err := w.post(ctx, "/cluster/v1/heartbeat", HeartbeatRequest{WorkerID: w.workerID(), Jobs: jobs}, nil)
		if err == nil && code == http.StatusGone {
			if err := w.register(ctx); err != nil {
				return
			}
		}
	}
}

// slotLoop polls for jobs and executes them until ctx cancels.
func (w *Worker) slotLoop(ctx context.Context) {
	for {
		if ctx.Err() != nil || w.killed.Load() {
			return
		}
		var a PollResponse
		code, err := w.post(ctx, "/cluster/v1/poll", PollRequest{WorkerID: w.workerID()}, &a)
		switch {
		case err != nil:
			if ctx.Err() != nil || w.killed.Load() {
				return
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(w.cfg.PollRetry):
			}
			continue
		case code == http.StatusGone:
			if w.register(ctx) != nil {
				return
			}
			continue
		case code != http.StatusOK:
			continue // 204: no work inside the poll window
		}
		w.execute(ctx, a)
	}
}

// execute runs one assigned job and uploads its outcome.
func (w *Worker) execute(ctx context.Context, a PollResponse) {
	w.mu.Lock()
	w.inflight[a.JobID] = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.inflight, a.JobID)
		w.mu.Unlock()
	}()

	if err := w.ensureTraces(ctx, a.Spec); err != nil {
		w.upload(ctx, a.JobID, ResultUpload{WorkerID: w.workerID(), Error: err.Error()})
		return
	}
	if gate := w.cfg.Gate; gate != nil {
		gate(a.Key)
	}

	var env service.JobResult
	var execErr string
	switch a.Spec.Kind {
	case service.KindFigure:
		env = w.runFigure(ctx, a)
	default:
		env, execErr = w.runSingle(ctx, a)
	}
	if w.killed.Load() {
		return
	}
	up := ResultUpload{WorkerID: w.workerID()}
	if execErr != "" {
		up.Error = execErr
	} else {
		up.Result = &env
	}
	w.upload(ctx, a.JobID, up)
}

// upload posts the job outcome, retrying transient failures: losing a
// finished result to a connection blip would force a pointless
// re-simulation.
func (w *Worker) upload(ctx context.Context, jobID string, up ResultUpload) {
	var resp ResultResponse
	for attempt := 0; attempt < 5; attempt++ {
		code, err := w.post(ctx, "/cluster/v1/jobs/"+jobID+"/result", up, &resp)
		if err == nil && (code == http.StatusOK || code == http.StatusNotFound) {
			if code == http.StatusOK {
				w.jobsDone.Add(1)
			}
			return
		}
		if w.killed.Load() || ctx.Err() != nil {
			return
		}
		time.Sleep(w.cfg.PollRetry)
	}
}

// eventPoster batches progress and samples to the coordinator on a
// ticker, off the simulation's hot path: the sim feeds an atomic
// counter and an in-memory sample buffer, and a flusher goroutine
// does the HTTP.
type eventPoster struct {
	w      *Worker
	jobID  string
	instr  atomic.Uint64
	mu     sync.Mutex
	buffer []telemetry.Sample
	sent   uint64
	stop   chan struct{}
	done   chan struct{}
}

// Add implements telemetry.ProgressSink.
func (p *eventPoster) Add(n uint64) { p.instr.Add(n) }

// OnSample buffers one interval sample for the next flush.
func (p *eventPoster) OnSample(s telemetry.Sample) {
	p.mu.Lock()
	p.buffer = append(p.buffer, s)
	p.mu.Unlock()
}

func (p *eventPoster) flush(ctx context.Context) {
	instr := p.instr.Load()
	p.mu.Lock()
	samples := p.buffer
	p.buffer = nil
	p.mu.Unlock()
	if instr == p.sent && len(samples) == 0 {
		return
	}
	p.sent = instr
	p.w.post(ctx, "/cluster/v1/jobs/"+p.jobID+"/events",
		EventBatch{WorkerID: p.w.workerID(), Instructions: instr, Samples: samples}, nil)
}

func (p *eventPoster) run(ctx context.Context) {
	defer close(p.done)
	t := time.NewTicker(p.w.cfg.ProgressEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			p.flush(ctx)
			return
		case <-t.C:
			p.flush(ctx)
		}
	}
}

func (w *Worker) newPoster(jobID string) *eventPoster {
	return &eventPoster{w: w, jobID: jobID, stop: make(chan struct{}), done: make(chan struct{})}
}

// runSingle executes one RunSpec, mirroring the service's local path
// (same Guarded watchdog wrapper, same sampler wiring, same envelope
// construction) so the uploaded result re-encodes byte-identically to
// a single-node run.
func (w *Worker) runSingle(ctx context.Context, a PollResponse) (service.JobResult, string) {
	spec := *a.Spec.Run
	poster := w.newPoster(a.JobID)
	go poster.run(ctx)
	var hooks *telemetry.Hooks
	mkHooks := func() *telemetry.Hooks {
		h := &telemetry.Hooks{Progress: poster}
		if spec.SampleEvery > 0 {
			sam := telemetry.NewSampler(spec.SampleEvery)
			sam.Stream(poster.OnSample)
			h.Sampler = sam
		}
		hooks = h
		return h
	}
	fut := experiments.Go(w.pool, func() sim.Result {
		return experiments.Guarded(a.Key, w.cfg.Deadline, w.cfg.Stall, mkHooks, func(h *telemetry.Hooks) sim.Result {
			res, err := spec.Run(h)
			if err != nil {
				panic(err)
			}
			return res
		})
	})
	res, rerr := fut.Result()
	close(poster.stop)
	<-poster.done
	if rerr != nil {
		return service.JobResult{}, rerr.Error()
	}
	var samples []byte
	if hooks != nil && hooks.Sampler != nil {
		var buf bytes.Buffer
		if err := hooks.Sampler.WriteJSONL(&buf); err == nil {
			samples = buf.Bytes()
		}
	}
	return service.JobResult{Kind: service.KindSingle, Result: &res, SamplesJSONL: string(samples)}, ""
}

// runFigure executes one registry experiment on the worker's pool. A
// failed table still uploads as a result — the coordinator completes
// the job without storing it, same as the local path.
func (w *Worker) runFigure(ctx context.Context, a PollResponse) service.JobResult {
	e, _ := experiments.ByID(a.Spec.Figure)
	p := a.Spec.Scale.Params()
	p.Deadline, p.StallTimeout = w.cfg.Deadline, w.cfg.Stall
	runner := experiments.NewRunnerPool(p, w.pool)
	poster := w.newPoster(a.JobID)
	go poster.run(ctx)
	progressStop := make(chan struct{})
	go func() {
		t := time.NewTicker(w.cfg.ProgressEvery)
		defer t.Stop()
		var last uint64
		for {
			select {
			case <-progressStop:
				return
			case <-t.C:
				if n := runner.SimulatedInstructions(); n > last {
					poster.Add(n - last)
					last = n
				}
			}
		}
	}()
	table := experiments.RunOne(runner, e)
	close(progressStop)
	close(poster.stop)
	<-poster.done
	return service.JobResult{Kind: service.KindFigure, Table: table}
}

// ensureTraces fetches, by content hash, every corpus trace the spec
// names that the worker's local corpus lacks. The ingest re-hashes
// the streamed records, so the stored entry is correct by
// construction regardless of what the wire delivered.
func (w *Worker) ensureTraces(ctx context.Context, spec service.JobSpec) error {
	if w.cfg.Corpus == nil || spec.Run == nil {
		return nil
	}
	var ids []string
	if spec.Run.Trace != "" {
		ids = append(ids, spec.Run.Trace)
	}
	for _, entry := range spec.Run.Mix {
		if strings.HasPrefix(entry, "sha256:") {
			ids = append(ids, entry)
		}
	}
	for _, id := range ids {
		if w.cfg.Corpus.Has(id) {
			continue
		}
		if err := w.fetchTrace(ctx, id); err != nil {
			return err
		}
		w.logf("fetched trace %s from coordinator", id)
	}
	return nil
}

func (w *Worker) fetchTrace(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+"/cluster/v1/traces/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("fetching trace %s: %w", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching trace %s: coordinator said %s", id, resp.Status)
	}
	got, err := w.cfg.Corpus.IngestFrom(resp.Body, id)
	if err != nil {
		return err
	}
	if got != id {
		return fmt.Errorf("fetching trace %s: stored as %s", id, got)
	}
	return nil
}
