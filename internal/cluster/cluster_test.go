package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/service"
	"repro/internal/trace"
)

// tinySpec is the canonical fast single-run job (mirrors the service
// package's test workload): distinct seeds give distinct content keys.
func tinySpec(seed uint64) service.JobSpec {
	return service.JobSpec{
		Kind: service.KindSingle,
		Run: &experiments.RunSpec{
			Bench: "mcf", PF: "none", Cores: 1,
			Warmup: 0, Measure: 30_000, Seed: seed, Degree: 1,
		},
	}
}

// localPayloads runs specs on a plain single-node server and returns
// each job's stored result payload — the byte-identity baseline every
// cluster test compares against.
func localPayloads(t *testing.T, specs []service.JobSpec) map[string][]byte {
	t.Helper()
	srv, err := service.New(service.Config{StoreDir: t.TempDir(), QueueCap: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Drain(); srv.Close() }()
	out := make(map[string][]byte)
	for _, spec := range specs {
		j, _, err := srv.Submit(cloneSpec(spec))
		if err != nil {
			t.Fatal(err)
		}
		st := waitTerminal(t, srv, j)
		if st.State != service.StateDone {
			t.Fatalf("baseline job %s failed: %s", st.Key, st.Error)
		}
		payload, ok := srv.Result(j)
		if !ok {
			t.Fatalf("baseline job %s has no result", st.Key)
		}
		out[st.Key] = payload
	}
	return out
}

// cloneSpec deep-copies a JobSpec's Run so in-process Submit (which
// normalizes in place) cannot alias across submissions.
func cloneSpec(spec service.JobSpec) service.JobSpec {
	if spec.Run != nil {
		r := *spec.Run
		spec.Run = &r
	}
	return spec
}

func waitTerminal(t *testing.T, srv *service.Server, j *service.Job) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Status(j)
		if st.State == service.StateDone || st.State == service.StateFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", j.ID())
	return service.JobStatus{}
}

// testCluster is one in-process coordinator stack: a RemoteExec server
// fronted by the cluster handler on a real HTTP listener.
type testCluster struct {
	srv   *service.Server
	coord *Coordinator
	ts    *httptest.Server
}

func startCluster(t *testing.T, smut func(*service.Config), cmut func(*Config)) *testCluster {
	t.Helper()
	scfg := service.Config{StoreDir: t.TempDir(), QueueCap: 64, Workers: 2, RemoteExec: true}
	if smut != nil {
		smut(&scfg)
	}
	srv, err := service.New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := Config{Server: srv, LeaseTTL: 5 * time.Second, SweepEvery: 50 * time.Millisecond, PollWindow: 2 * time.Second}
	if cmut != nil {
		cmut(&ccfg)
	}
	coord, err := New(ccfg)
	if err != nil {
		srv.Drain()
		srv.Close()
		t.Fatal(err)
	}
	return &testCluster{srv: srv, coord: coord, ts: httptest.NewServer(coord.Handler(srv.Handler()))}
}

// stop tears the stack down in drain order: queue closes (dispatcher
// exits), coordinator joins, listener closes.
func (tc *testCluster) stop() {
	tc.srv.Drain()
	tc.coord.Stop()
	tc.ts.Close()
	tc.srv.Close()
}

// startWorker launches a worker against the cluster with fast test
// pacing; the returned stop cancels it and waits for Run to return.
func startWorker(t *testing.T, url, name string, mut func(*WorkerConfig)) (*Worker, func()) {
	t.Helper()
	cfg := WorkerConfig{
		Coordinator:   url,
		Name:          name,
		Slots:         1,
		PoolWorkers:   2,
		ProgressEvery: 20 * time.Millisecond,
		PollRetry:     20 * time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	w, err := NewWorker(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	return w, func() {
		cancel()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("worker did not stop")
		}
	}
}

// TestClusterDistributedByteIdentical is the tentpole contract: a
// batch of jobs distributed across two workers produces result
// payloads byte-identical to a single-node run, both workers actually
// execute work, every cell simulates exactly once cluster-wide, and a
// re-submission is served from the warm store without touching a
// worker.
func TestClusterDistributedByteIdentical(t *testing.T) {
	specs := make([]service.JobSpec, 6)
	for i := range specs {
		specs[i] = tinySpec(uint64(i + 1))
	}
	// One spec carries a sampled series so the SamplesJSONL leg of the
	// envelope is byte-compared too.
	specs[5].Run.SampleEvery = 10_000
	baseline := localPayloads(t, specs)

	tc := startCluster(t, nil, nil)
	defer tc.stop()

	simCount := make(chan string, 64)
	gate := func(key string) {
		if tc.srv.HasDurable(key) {
			t.Errorf("key %s re-simulated after its result was durable", key)
		}
		simCount <- key
	}
	_, stopA := startWorker(t, tc.ts.URL, "alpha", func(c *WorkerConfig) { c.Gate = gate })
	_, stopB := startWorker(t, tc.ts.URL, "beta", func(c *WorkerConfig) { c.Gate = gate })
	defer stopB()
	defer stopA()

	jobs := make([]*service.Job, len(specs))
	for i, spec := range specs {
		j, _, err := tc.srv.Submit(cloneSpec(spec))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	for i, j := range jobs {
		st := waitTerminal(t, tc.srv, j)
		if st.State != service.StateDone {
			t.Fatalf("job %d failed: %s", i, st.Error)
		}
		payload, ok := tc.srv.Result(j)
		if !ok {
			t.Fatalf("job %d has no result", i)
		}
		if want := baseline[st.Key]; !bytes.Equal(payload, want) {
			t.Errorf("job %d (%s): cluster payload differs from the single-node run", i, st.Key)
		}
	}

	// Both workers pulled work, and the status view reflects them.
	sv := tc.coord.Status()
	if len(sv.Workers) != 2 {
		t.Fatalf("status lists %d workers, want 2", len(sv.Workers))
	}
	if sv.Assigned < int64(len(specs)) {
		t.Errorf("status assigned %d, want >= %d", sv.Assigned, len(specs))
	}

	// Warm re-submission: no worker involved — it joins the retained
	// done job (or materializes from the store) without a simulation.
	j, disp, err := tc.srv.Submit(cloneSpec(specs[0]))
	if err != nil {
		t.Fatal(err)
	}
	if disp != service.DispDeduped && disp != service.DispCached {
		t.Errorf("re-submission disposition %v, want deduped or cached", disp)
	}
	if st := waitTerminal(t, tc.srv, j); st.State != service.StateDone {
		t.Errorf("re-submitted job not done: %+v", st)
	}

	// Every cell simulated exactly once cluster-wide (the re-submission
	// added none).
	close(simCount)
	perKey := make(map[string]int)
	for key := range simCount {
		perKey[key]++
	}
	if len(perKey) != len(specs) {
		t.Errorf("simulated %d distinct keys, want %d", len(perKey), len(specs))
	}
	for key, n := range perKey {
		if n != 1 {
			t.Errorf("key %s simulated %d times, want 1", key, n)
		}
	}
}

// TestClusterFigureByteIdentical runs one scaled-down figure job
// through a worker and compares the stored table payload with the
// single-node figure path byte for byte.
func TestClusterFigureByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("figure simulation skipped in -short mode")
	}
	spec := service.JobSpec{
		Kind:   service.KindFigure,
		Figure: "fig05",
		Scale: &service.FigureScale{
			Warmup: 50_000, Measure: 50_000,
			MultiWarmup: 25_000, MultiMeasure: 25_000, Mixes: 1,
		},
	}
	baseline := localPayloads(t, []service.JobSpec{spec})

	tc := startCluster(t, nil, nil)
	defer tc.stop()
	_, stopW := startWorker(t, tc.ts.URL, "figs", nil)
	defer stopW()

	j, _, err := tc.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, tc.srv, j)
	if st.State != service.StateDone {
		t.Fatalf("figure job failed: %s", st.Error)
	}
	payload, ok := tc.srv.Result(j)
	if !ok {
		t.Fatal("figure job has no result")
	}
	if !bytes.Equal(payload, baseline[st.Key]) {
		t.Error("cluster figure payload differs from the single-node run")
	}
}

// TestClusterProgressStreams pins the telemetry leg: a worker-run job
// folds progress into the job feed (instructions advance) and sampled
// series arrive for SSE consumers.
func TestClusterProgressStreams(t *testing.T) {
	tc := startCluster(t, nil, nil)
	defer tc.stop()
	_, stopW := startWorker(t, tc.ts.URL, "prog", func(c *WorkerConfig) {
		c.ProgressEvery = 5 * time.Millisecond
	})
	defer stopW()

	spec := tinySpec(77)
	spec.Run.Measure = 200_000
	spec.Run.SampleEvery = 20_000
	j, _, err := tc.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, tc.srv, j)
	if st.State != service.StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Instructions == 0 {
		t.Error("job feed saw no progress from the worker")
	}
	if samples := j.Feed().SamplesSince(0); len(samples) == 0 {
		t.Error("job feed absorbed no samples from the worker")
	}
}

// TestClusterMetricsRegistered pins the cluster series on the shared
// registry, including the per-worker in-flight gauge.
func TestClusterMetricsRegistered(t *testing.T) {
	tc := startCluster(t, nil, nil)
	defer tc.stop()
	_, stopW := startWorker(t, tc.ts.URL, "metrics-node", nil)
	defer stopW()

	j, _, err := tc.srv.Submit(tinySpec(5))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, tc.srv, j)

	snap := tc.srv.Registry().Snapshot()
	for _, name := range []string{
		"triaged_cluster_workers",
		"triaged_cluster_leases",
		"triaged_cluster_assigned_total",
		"triaged_cluster_requeued_total",
		"triaged_cluster_results_total",
		"triaged_worker_inflight_metrics_node",
	} {
		if _, ok := snap[name]; !ok {
			t.Errorf("metric %s not registered", name)
		}
	}
	if v, _ := snap["triaged_cluster_results_total"].(float64); v < 1 {
		t.Errorf("triaged_cluster_results_total = %v, want >= 1", snap["triaged_cluster_results_total"])
	}
	// Re-registering the same worker name must not panic the registry
	// (duplicate gauge guard).
	_, stopW2 := startWorker(t, tc.ts.URL, "metrics-node", nil)
	stopW2()
}

// makeTrace materializes a small deterministic pointer-ish trace into
// the corpus at dir and returns its content id.
func makeTrace(t *testing.T, dir string) string {
	t.Helper()
	c, err := trace.OpenCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		r := trace.Record{PC: 0x4000 + uint64(i%7)*4, Op: trace.NonMem}
		if i%3 == 0 {
			r.Op = trace.Load
			r.Addr = mem.Addr(0x10000 + (i%257)*64)
		}
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestClusterTraceAwareMix submits a mix job naming a corpus trace for
// one core and a generator bench for the other: the worker's local
// corpus lacks the trace, fetches it from the coordinator by content
// hash, verifies it on ingest, and the stored result is byte-identical
// to a single-node run over the same corpus.
func TestClusterTraceAwareMix(t *testing.T) {
	coordCorpus := t.TempDir()
	id := makeTrace(t, coordCorpus)
	// The process-global corpus is what RunSpec resolution reads; the
	// coordinator also serves /cluster/v1/traces/{id} from it.
	if err := experiments.SetTraceCorpus(coordCorpus); err != nil {
		t.Fatal(err)
	}

	spec := service.JobSpec{
		Kind: service.KindSingle,
		Run: &experiments.RunSpec{
			PF: "none", Mix: []string{id, "mcf"},
			Warmup: 0, Measure: 30_000, Seed: 9, Degree: 1,
		},
	}
	baseline := localPayloads(t, []service.JobSpec{spec})

	tc := startCluster(t, nil, nil)
	defer tc.stop()

	workerCorpusDir := t.TempDir()
	workerCorpus, err := trace.OpenCorpus(workerCorpusDir)
	if err != nil {
		t.Fatal(err)
	}
	_, stopW := startWorker(t, tc.ts.URL, "mixer", func(c *WorkerConfig) { c.Corpus = workerCorpus })
	defer stopW()

	j, _, err := tc.srv.Submit(cloneSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, tc.srv, j)
	if st.State != service.StateDone {
		t.Fatalf("mix job failed: %s", st.Error)
	}
	payload, ok := tc.srv.Result(j)
	if !ok {
		t.Fatal("mix job has no result")
	}
	if !bytes.Equal(payload, baseline[st.Key]) {
		t.Error("cluster mix payload differs from the single-node run")
	}
	// The worker pulled the trace into its own corpus, content-verified.
	if !workerCorpus.Has(id) {
		t.Errorf("worker corpus never ingested %s", id)
	}
}
