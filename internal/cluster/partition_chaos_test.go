package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netfault"
	"repro/internal/service"
	"repro/internal/sim"
)

// This file is the seeded partition chaos matrix: three scenarios
// (coordinator unreachable mid-job, worker partitioned after its
// upload started, asymmetric partition during heartbeat), each run
// over three seeds, all asserting the tentpole guarantees — zero
// acknowledged jobs lost, zero post-durable re-simulation, every
// payload byte-identical to a fault-free single-node run — plus the
// corrupted-upload quarantine path.

// chaosRig bundles the per-cycle scaffolding every partition scenario
// shares: a fast-lease cluster over a fresh store, a fault-free
// baseline, a counting gate that forbids post-durable re-simulation,
// and a victim gate that parks the victim worker's first job until
// the scenario releases it.
type chaosRig struct {
	t        *testing.T
	cycle    int
	tc       *testCluster
	specs    []service.JobSpec
	baseline map[string][]byte

	mu       sync.Mutex
	simCount map[string]int

	victimArmed   chan struct{}
	victimRelease chan struct{}
	armedOnce     sync.Once
}

func newChaosRig(t *testing.T, cycle, jobs int, seedBase uint64) *chaosRig {
	t.Helper()
	specs := make([]service.JobSpec, jobs)
	for i := range specs {
		specs[i] = tinySpec(seedBase + uint64(i))
	}
	r := &chaosRig{
		t:             t,
		cycle:         cycle,
		specs:         specs,
		baseline:      localPayloads(t, specs),
		simCount:      make(map[string]int),
		victimArmed:   make(chan struct{}),
		victimRelease: make(chan struct{}),
	}
	r.tc = startCluster(t, nil, func(c *Config) {
		c.LeaseTTL = 500 * time.Millisecond
		c.SweepEvery = 50 * time.Millisecond
	})
	return r
}

func (r *chaosRig) countingGate(key string) {
	if r.tc.srv.HasDurable(key) {
		r.t.Errorf("cycle %d: key %s re-simulated after its result was durable", r.cycle, key)
	}
	r.mu.Lock()
	r.simCount[key]++
	r.mu.Unlock()
}

// victimGate counts like countingGate, then parks the victim's first
// job until the scenario releases it — the instant the partition
// closes around a job mid-flight.
func (r *chaosRig) victimGate(key string) {
	r.countingGate(key)
	r.armedOnce.Do(func() {
		close(r.victimArmed)
		<-r.victimRelease
	})
}

// faultyWorker starts a worker whose HTTP client runs through a seeded
// netfault transport; match scopes injection (nil: every cluster RPC).
func (r *chaosRig) faultyWorker(name string, plan netfault.Plan, match func(*http.Request) bool, gate func(string)) (*Worker, *netfault.Transport, func()) {
	r.t.Helper()
	nf := netfault.New(r.tc.ts.Client().Transport, plan)
	if match != nil {
		nf.Match(match)
	}
	w, stop := startWorker(r.t, r.tc.ts.URL, name, func(c *WorkerConfig) {
		c.Gate = gate
		c.Client = &http.Client{Transport: nf, Timeout: 5 * time.Minute}
		c.JitterSeed = plan.Seed*2 + 1
	})
	return w, nf, stop
}

func (r *chaosRig) waitWorkers(n int) {
	r.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(r.tc.coord.Status().Workers) < n && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := len(r.tc.coord.Status().Workers); got < n {
		r.t.Fatalf("cycle %d: only %d of %d workers registered", r.cycle, got, n)
	}
}

func (r *chaosRig) submitAll() []*service.Job {
	r.t.Helper()
	jobs := make([]*service.Job, 0, len(r.specs))
	for _, spec := range r.specs {
		j, _, err := r.tc.srv.Submit(cloneSpec(spec))
		if err != nil {
			r.t.Fatalf("cycle %d: submit: %v", r.cycle, err)
		}
		jobs = append(jobs, j) // acknowledged
	}
	return jobs
}

func (r *chaosRig) awaitArmed() {
	r.t.Helper()
	select {
	case <-r.victimArmed:
	case <-time.After(30 * time.Second):
		r.t.Fatalf("cycle %d: victim never picked up a job", r.cycle)
	}
}

// awaitByteIdentical is the acknowledged-jobs contract: every
// submission reaches done with a payload byte-equal to the fault-free
// single-node baseline.
func (r *chaosRig) awaitByteIdentical(jobs []*service.Job) {
	r.t.Helper()
	for i, j := range jobs {
		st := waitTerminal(r.t, r.tc.srv, j)
		if st.State != service.StateDone {
			r.t.Fatalf("cycle %d: acknowledged job %d lost (state %s: %s)", r.cycle, i, st.State, st.Error)
		}
		payload, ok := r.tc.srv.Result(j)
		if !ok {
			r.t.Fatalf("cycle %d: job %d has no result", r.cycle, i)
		}
		if !bytes.Equal(payload, r.baseline[st.Key]) {
			r.t.Errorf("cycle %d: job %d payload differs from the fault-free baseline", r.cycle, i)
		}
	}
}

// assertSims checks the exactly-once ledger: every key simulated by
// someone, none more than twice, and at most maxDoubles keys twice
// (the partitioned job re-run elsewhere).
func (r *chaosRig) assertSims(maxDoubles int) {
	r.t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	doubles := 0
	for key, n := range r.simCount {
		if n > 2 {
			r.t.Errorf("cycle %d: key %s simulated %d times", r.cycle, key, n)
		}
		if n == 2 {
			doubles++
		}
	}
	if len(r.simCount) != len(r.specs) {
		r.t.Errorf("cycle %d: %d distinct keys simulated, want %d", r.cycle, len(r.simCount), len(r.specs))
	}
	if doubles > maxDoubles {
		r.t.Errorf("cycle %d: %d keys simulated twice, want at most %d", r.cycle, doubles, maxDoubles)
	}
}

func waitCount(f func() int64, min int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if f() >= min {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return f() >= min
}

// TestChaosCoordinatorUnreachable cuts a worker off from the
// coordinator entirely while it holds a job mid-run: heartbeats,
// events, and uploads all fail until the partition heals. The job must
// survive — either the worker's retried upload lands after Restore, or
// the lease lapses and the survivor re-runs it — with no payload drift
// and no post-durable re-simulation.
func TestChaosCoordinatorUnreachable(t *testing.T) {
	for cycle := 0; cycle < 3; cycle++ {
		r := newChaosRig(t, cycle, 4, uint64(1000+cycle*100))
		noise := netfault.Plan{Seed: int64(cycle + 1), PDelay: 0.2, Delay: 2 * time.Millisecond}
		_, nfVictim, stopVictim := r.faultyWorker("victim", noise, nil, r.victimGate)
		survivorNoise := netfault.Plan{Seed: int64(cycle + 101), PDelay: 0.2, Delay: 2 * time.Millisecond}
		_, _, stopSurvivor := r.faultyWorker("survivor", survivorNoise, nil, r.countingGate)
		r.waitWorkers(2)

		jobs := r.submitAll()
		r.awaitArmed()
		nfVictim.Cut() // the coordinator vanishes from the victim's view
		close(r.victimRelease)
		// Heal inside the lease TTL: the usual resolution is the victim's
		// backed-off upload retry landing; a slow run may instead lapse
		// the lease and requeue, which is equally acceptable.
		time.Sleep(250 * time.Millisecond)
		nfVictim.Restore()

		r.awaitByteIdentical(jobs)
		if nfVictim.Counters()["cut"] == 0 {
			t.Errorf("cycle %d: partition never intercepted any victim traffic", cycle)
		}
		r.assertSims(1)

		stopSurvivor()
		stopVictim()
		r.tc.stop()
	}
}

// TestChaosPartitionDuringUpload opens a one-way partition scoped to
// the result upload: the upload is delivered and executed but its
// acknowledgment is lost — the ambiguous-delivery case. The
// coordinator completes the job on the first delivery; the worker's
// retries must resolve as duplicates, and nothing may re-simulate.
func TestChaosPartitionDuringUpload(t *testing.T) {
	matchResult := func(req *http.Request) bool {
		return strings.HasSuffix(req.URL.Path, "/result")
	}
	for cycle := 0; cycle < 3; cycle++ {
		r := newChaosRig(t, cycle, 4, uint64(2000+cycle*100))
		_, nfVictim, stopVictim := r.faultyWorker("victim", netfault.Plan{Seed: int64(cycle + 1)}, matchResult, r.victimGate)
		noise := netfault.Plan{Seed: int64(cycle + 101), PDelay: 0.2, Delay: 2 * time.Millisecond}
		_, _, stopSurvivor := r.faultyWorker("survivor", noise, nil, r.countingGate)
		r.waitWorkers(2)

		jobs := r.submitAll()
		r.awaitArmed()
		nfVictim.CutOneWay() // uploads execute, acks vanish
		close(r.victimRelease)

		// The first ack-lost delivery completes the job; the worker's
		// retried upload must surface as a duplicate, not a second result.
		if !waitCount(r.tc.coord.mDupedUp.Load, 1, 10*time.Second) {
			t.Errorf("cycle %d: retried upload never resolved as a duplicate", cycle)
		}
		nfVictim.Restore()

		r.awaitByteIdentical(jobs)
		if nfVictim.Counters()["cut-oneway"] == 0 {
			t.Errorf("cycle %d: one-way partition never intercepted an upload", cycle)
		}
		// Ambiguous delivery must never cause a re-simulation: the upload
		// landed, so every key runs exactly once.
		r.assertSims(0)

		stopSurvivor()
		stopVictim()
		r.tc.stop()
	}
}

// TestChaosAsymmetricHeartbeat blackholes only the victim's heartbeats
// while it holds a job: polls and uploads still flow, but the lease
// lapses and the sweep requeues the job onto the survivor. When the
// zombie copy finally finishes, its late upload must land as a
// harmless duplicate.
func TestChaosAsymmetricHeartbeat(t *testing.T) {
	matchHeartbeat := func(req *http.Request) bool {
		return strings.HasSuffix(req.URL.Path, "/heartbeat")
	}
	for cycle := 0; cycle < 3; cycle++ {
		r := newChaosRig(t, cycle, 4, uint64(3000+cycle*100))
		_, nfVictim, stopVictim := r.faultyWorker("victim", netfault.Plan{Seed: int64(cycle + 1)}, matchHeartbeat, r.victimGate)
		noise := netfault.Plan{Seed: int64(cycle + 101), PDelay: 0.2, Delay: 2 * time.Millisecond}
		_, _, stopSurvivor := r.faultyWorker("survivor", noise, nil, r.countingGate)
		r.waitWorkers(2)

		nfVictim.Cut() // heartbeats blackholed from the start
		jobs := r.submitAll()
		r.awaitArmed()

		// With the victim parked and silent, its lease must lapse and the
		// job requeue onto the survivor.
		if !waitCount(r.tc.coord.mRequeued.Load, 1, 10*time.Second) {
			t.Fatalf("cycle %d: heartbeat partition never lapsed the lease", cycle)
		}
		r.awaitByteIdentical(jobs)

		// Release the zombie: its late upload is a duplicate, never a
		// second simulation of a durable key (the gate enforces that).
		close(r.victimRelease)
		if !waitCount(r.tc.coord.mDupedUp.Load, 1, 10*time.Second) {
			t.Errorf("cycle %d: zombie upload never resolved as a duplicate", cycle)
		}
		nfVictim.Restore()

		if r.tc.coord.mExpired.Load() == 0 {
			t.Errorf("cycle %d: no lease expiry was recorded", cycle)
		}
		if nfVictim.Counters()["cut"] == 0 {
			t.Errorf("cycle %d: heartbeat partition never intercepted traffic", cycle)
		}
		r.assertSims(1)

		stopSurvivor()
		stopVictim()
		r.tc.stop()
	}
}

// postJSON is a bare-hands cluster RPC for tests that need a worker
// the Worker type would never be: misbehaving on purpose.
func postJSON(t *testing.T, client *http.Client, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestChaosCorruptedUploadQuarantine is the verified-upload acceptance
// path: a worker uploads a structurally valid envelope whose payload
// hash does not match. The coordinator must reject it before anything
// persists, requeue the job, quarantine the worker (its polls come
// back empty), and let an honest worker re-run the job to a verified,
// byte-identical result.
func TestChaosCorruptedUploadQuarantine(t *testing.T) {
	spec := tinySpec(4242)
	baseline := localPayloads(t, []service.JobSpec{spec})

	tc := startCluster(t, nil, func(c *Config) {
		c.PollWindow = 300 * time.Millisecond
	})
	defer tc.stop()
	client := tc.ts.Client()

	var reg RegisterResponse
	if code := postJSON(t, client, tc.ts.URL+"/cluster/v1/register",
		RegisterRequest{Name: "evil", Slots: 1, Token: "evil-token"}, &reg); code != http.StatusOK {
		t.Fatalf("evil register: HTTP %d", code)
	}

	j, _, err := tc.srv.Submit(cloneSpec(spec))
	if err != nil {
		t.Fatal(err)
	}
	var a PollResponse
	if code := postJSON(t, client, tc.ts.URL+"/cluster/v1/poll",
		PollRequest{WorkerID: reg.WorkerID}, &a); code != http.StatusOK || a.JobID == "" {
		t.Fatalf("evil worker never got the job (HTTP %d, job %q)", code, a.JobID)
	}

	// A well-formed envelope with the right fingerprint but a payload
	// hash that cannot match its canonical encoding.
	up := ResultUpload{
		WorkerID:      reg.WorkerID,
		Result:        &service.JobResult{Kind: service.KindSingle, Result: &sim.Result{}},
		Fingerprint:   tc.srv.Fingerprint(),
		PayloadSHA256: strings.Repeat("0", 64),
	}
	var rr ResultResponse
	if code := postJSON(t, client, tc.ts.URL+"/cluster/v1/jobs/"+a.JobID+"/result", up, &rr); code != http.StatusOK {
		t.Fatalf("corrupt upload: HTTP %d", code)
	}
	if !rr.Rejected || rr.Reason == "" {
		t.Fatalf("corrupt upload not rejected: %+v", rr)
	}
	if tc.srv.HasDurable(j.Key()) {
		t.Fatal("corrupted payload reached the durable store")
	}
	if got := tc.coord.mRejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	if got := tc.coord.mRequeued.Load(); got != 1 {
		t.Errorf("requeued counter = %d, want 1 (the job must requeue)", got)
	}
	sv := tc.coord.Status()
	if len(sv.Workers) != 1 || !sv.Workers[0].Quarantined {
		t.Fatalf("evil worker not quarantined: %+v", sv.Workers)
	}

	// A quarantined worker polls into a held-empty window: no work.
	var again PollResponse
	if code := postJSON(t, client, tc.ts.URL+"/cluster/v1/poll",
		PollRequest{WorkerID: reg.WorkerID}, &again); code != http.StatusNoContent || again.JobID != "" {
		t.Fatalf("quarantined worker still got work (HTTP %d, job %q)", code, again.JobID)
	}

	// An honest worker picks the requeued job up and completes it to a
	// verified, byte-identical result.
	var (
		mu   sync.Mutex
		sims int
	)
	_, stopHonest := startWorker(t, tc.ts.URL, "honest", func(c *WorkerConfig) {
		c.Gate = func(key string) {
			mu.Lock()
			sims++
			mu.Unlock()
		}
	})
	defer stopHonest()

	st := waitTerminal(t, tc.srv, j)
	if st.State != service.StateDone {
		t.Fatalf("job never recovered from the corrupt upload: %s", st.Error)
	}
	payload, ok := tc.srv.Result(j)
	if !ok {
		t.Fatal("job has no result")
	}
	if !bytes.Equal(payload, baseline[st.Key]) {
		t.Error("re-run payload differs from the single-node baseline")
	}
	mu.Lock()
	if sims != 1 {
		t.Errorf("honest worker simulated %d times, want 1", sims)
	}
	mu.Unlock()
}
