package cluster

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// maxUploadBytes bounds worker uploads. A figure table or a sampled
// series is well under this; the cap keeps a misbehaving peer from
// buffering unbounded JSON.
const maxUploadBytes = 64 << 20

// Handler returns the coordinator API, falling through to next (the
// service's client-facing handler) for every other path.
func (c *Coordinator) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/v1/register", c.handleRegister)
	mux.HandleFunc("POST /cluster/v1/poll", c.handlePoll)
	mux.HandleFunc("POST /cluster/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /cluster/v1/jobs/{id}/events", c.handleEvents)
	mux.HandleFunc("POST /cluster/v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("POST /cluster/v1/workers/drain", c.handleDrain)
	mux.HandleFunc("GET /cluster/v1/status", c.handleStatus)
	mux.HandleFunc("GET /cluster/v1/traces/{id}", c.handleTraceFetch)
	if next != nil {
		mux.Handle("/", next)
	}
	return mux
}

func clusterJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, status int, msg string) {
	clusterJSON(w, status, map[string]string{"error": msg})
}

// decodeBody decodes a bounded JSON body, reporting false after
// writing the error response.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			clusterError(w, http.StatusRequestEntityTooLarge, err.Error())
		} else {
			clusterError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		}
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if !decodeBody(w, r, &req, 1<<16) {
		return
	}
	if req.Name == "" {
		req.Name = "worker"
	}
	ws := c.register(req.Name, req.Slots, req.Token)
	clusterJSON(w, http.StatusOK, RegisterResponse{
		WorkerID:       ws.id,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	})
}

// handlePoll long-polls for one job: it blocks until the dispatcher
// hands one over, the poll window lapses (204), or the client goes
// away. A job received but not deliverable (the response write fails)
// is covered by lease expiry — the worker never heartbeats it, so the
// sweep requeues it.
func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	var req PollRequest
	if !decodeBody(w, r, &req, 1<<16) {
		return
	}
	ws := c.touch(req.WorkerID)
	if ws == nil {
		clusterError(w, http.StatusGone, "unknown worker "+req.WorkerID+" (re-register)")
		return
	}
	if c.isDraining(ws) {
		clusterJSON(w, http.StatusOK, PollResponse{Drain: true})
		return
	}
	deadline := time.NewTimer(c.cfg.PollWindow)
	defer deadline.Stop()
	if !c.dispatchable(ws, time.Now()) {
		// Quarantined: hold the poll for the window (so the worker does
		// not hot-spin) and send it away empty; decay re-admits it.
		select {
		case <-deadline.C:
		case <-c.stopc:
		case <-r.Context().Done():
			return
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	for {
		select {
		case j, ok := <-c.dispatch:
			if !ok {
				w.WriteHeader(http.StatusNoContent)
				return
			}
			c.assign(j, ws)
			clusterJSON(w, http.StatusOK, PollResponse{JobID: j.ID(), Key: j.Key(), Spec: j.Spec()})
			return
		case j := <-c.hedgec:
			// Speculative re-dispatch: skip offers that went stale (job
			// finished) or that this worker already owns.
			if st := c.srv.StateOf(j); st == service.StateDone || st == service.StateFailed {
				continue
			}
			if !c.assignHedge(j, ws) {
				continue
			}
			clusterJSON(w, http.StatusOK, PollResponse{JobID: j.ID(), Key: j.Key(), Spec: j.Spec()})
			return
		case <-deadline.C:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-c.stopc:
			w.WriteHeader(http.StatusNoContent)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// isDraining reads the worker's drain flag under the lock.
func (c *Coordinator) isDraining(ws *workerState) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ws.draining
}

// handleDrain rotates workers out of the fleet by display name (or
// id): they get no new work and their next poll tells them to exit.
func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	var req DrainRequest
	if !decodeBody(w, r, &req, 1<<16) {
		return
	}
	if req.Name == "" {
		clusterError(w, http.StatusBadRequest, "drain needs a worker name")
		return
	}
	ids := c.DrainWorkers(req.Name)
	if len(ids) == 0 {
		clusterError(w, http.StatusNotFound, "no worker named "+req.Name)
		return
	}
	clusterJSON(w, http.StatusOK, DrainResponse{Drained: ids})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req, 1<<20) {
		return
	}
	ws := c.touch(req.WorkerID)
	if ws == nil {
		clusterError(w, http.StatusGone, "unknown worker "+req.WorkerID+" (re-register)")
		return
	}
	clusterJSON(w, http.StatusOK, HeartbeatResponse{Cancelled: c.heartbeat(ws, req.Jobs)})
}

func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	var batch EventBatch
	if !decodeBody(w, r, &batch, maxUploadBytes) {
		return
	}
	id := r.PathValue("id")
	if _, ok := c.srv.Lookup(id); !ok {
		clusterError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	c.touch(batch.WorkerID)
	c.events(id, batch)
	w.WriteHeader(http.StatusOK)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var up ResultUpload
	if !decodeBody(w, r, &up, maxUploadBytes) {
		return
	}
	j, ok := c.srv.Lookup(r.PathValue("id"))
	if !ok {
		clusterError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	if up.Result == nil && up.Error == "" {
		clusterError(w, http.StatusBadRequest, "upload carries neither result nor error")
		return
	}
	if up.Result != nil && up.Result.Kind == "" {
		clusterError(w, http.StatusBadRequest, "result envelope missing kind")
		return
	}
	c.touch(up.WorkerID)
	clusterJSON(w, http.StatusOK, c.finish(j, up))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	clusterJSON(w, http.StatusOK, c.Status())
}

// handleTraceFetch serves a corpus trace by content hash to workers
// that lack it — the shared artifact store. The bytes on disk are the
// content-addressed TRC2 container; the worker re-verifies the hash
// on ingest, so a corrupted transfer cannot poison its corpus.
func (c *Coordinator) handleTraceFetch(w http.ResponseWriter, r *http.Request) {
	corpus := experiments.TraceCorpus()
	if corpus == nil {
		clusterError(w, http.StatusNotFound, "coordinator has no trace corpus configured (-corpus)")
		return
	}
	id := r.PathValue("id")
	if !corpus.Has(id) {
		clusterError(w, http.StatusNotFound, "trace "+id+" not in corpus")
		return
	}
	path, err := corpus.Path(id)
	if err != nil {
		clusterError(w, http.StatusBadRequest, err.Error())
		return
	}
	f, err := os.Open(path)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err.Error())
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}
