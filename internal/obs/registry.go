// Package obs is the service-level observability layer: a
// zero-dependency metrics registry (counters, gauges, fixed-layout
// log-linear latency histograms) renderable as both Prometheus text
// exposition and JSON, plus per-job tracing with a bounded flight
// recorder. Everything is stdlib-only and deterministic where it can
// be: histogram bucket boundaries are fixed (snapshots merge exactly
// and quantiles are reproducible for reproducible inputs), and both
// output formats emit metrics in sorted name order.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric kinds, mapped to Prometheus TYPE lines.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// metric is one registered name.
type metric struct {
	name, help string
	kind       string
	counter    *Counter
	gauge      *Gauge
	fn         func() float64 // counter/gauge funcs
	hist       *Histogram
	scale      float64 // histogram export multiplier (ns → s: 1e-9)
}

// Registry holds named metrics and renders them. Registration is
// typically done once at construction; reads (scrapes) are safe
// concurrently with metric updates.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register panics on duplicate names: metric names are code-owned
// constants, so a collision is a programming error, not input.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic("obs: duplicate metric " + m.name)
	}
	r.metrics[m.name] = m
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// CounterFunc registers a counter whose value is computed at scrape
// time (bridging counters owned elsewhere, e.g. expvar ints).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindCounter, fn: fn})
}

// GaugeFunc registers a computed gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, fn: fn})
}

// Histogram registers and returns a histogram. scale multiplies raw
// recorded values at export time (record nanoseconds, export seconds
// with scale 1e-9); pass 1 for unitless values.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	h := &Histogram{}
	r.register(&metric{name: name, help: help, kind: kindHist, hist: h, scale: scale})
	return h
}

// sorted returns the metrics in name order (the deterministic render
// order for both output formats).
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	ms := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		ms = append(ms, m)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	return ms
}

// ftoa renders a float the way encoding/json does (shortest
// round-trip), so the two export formats agree on values.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), in sorted name order. Histograms
// emit only their non-empty buckets (cumulative counts stay correct)
// plus the +Inf bucket, _sum, and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.sorted() {
		if m.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind)
		switch {
		case m.hist != nil:
			s := m.hist.Snapshot()
			var cum uint64
			for i, c := range s.Buckets {
				if c == 0 {
					continue
				}
				cum += c
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", m.name, ftoa(float64(bucketUpper(i))*m.scale), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", m.name, s.Count)
			fmt.Fprintf(bw, "%s_sum %s\n", m.name, ftoa(float64(s.Sum)*m.scale))
			fmt.Fprintf(bw, "%s_count %d\n", m.name, s.Count)
		case m.fn != nil:
			fmt.Fprintf(bw, "%s %s\n", m.name, ftoa(m.fn()))
		case m.counter != nil:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			fmt.Fprintf(bw, "%s %d\n", m.name, m.gauge.Value())
		}
	}
	return bw.Flush()
}

// HistJSON is the JSON rendering of one histogram: count plus scaled
// sum and quantile estimates.
type HistJSON struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// histJSON renders a snapshot with the metric's scale applied.
func histJSON(s HistSnapshot, scale float64) HistJSON {
	return HistJSON{
		Count: s.Count,
		Sum:   float64(s.Sum) * scale,
		P50:   float64(s.Quantile(0.50)) * scale,
		P90:   float64(s.Quantile(0.90)) * scale,
		P99:   float64(s.Quantile(0.99)) * scale,
		P999:  float64(s.Quantile(0.999)) * scale,
		Max:   float64(s.Max()) * scale,
	}
}

// Snapshot renders every metric as a JSON-marshalable map: counters
// and gauges as numbers, histograms as HistJSON objects.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		switch {
		case m.hist != nil:
			out[m.name] = histJSON(m.hist.Snapshot(), m.scale)
		case m.fn != nil:
			out[m.name] = m.fn()
		case m.counter != nil:
			out[m.name] = m.counter.Value()
		case m.gauge != nil:
			out[m.name] = m.gauge.Value()
		}
	}
	return out
}

// promLine matches one sample line of the text exposition format:
// metric name, optional label set, and a float value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)

// ValidatePrometheus checks that r is a well-formed Prometheus text
// exposition: every non-blank, non-comment line must parse as a sample
// with a finite or +Inf-labeled float value. It returns the first
// offending line. Used by the load harness and tests to assert the
// /metrics endpoint stays scrapeable.
func ValidatePrometheus(rd io.Reader) error {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	samples := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			return fmt.Errorf("obs: line %d is not a valid sample: %q", n, line)
		}
		val := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			return fmt.Errorf("obs: line %d has a bad value %q: %v", n, val, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("obs: exposition contains no samples")
	}
	return nil
}
