package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketPlacementDeterministic pins the fixed bucket layout:
// placement is a pure function of the value, unit-exact below histSub,
// with hand-checked log-linear boundaries above it.
func TestBucketPlacementDeterministic(t *testing.T) {
	for v := uint64(0); v < histSub; v++ {
		if got := bucketOf(v); got != int(v) {
			t.Fatalf("bucketOf(%d) = %d, want %d (unit bucket)", v, got, v)
		}
		if up := bucketUpper(int(v)); up != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
	cases := []struct {
		v      uint64
		bucket int
	}{
		{16, 16}, {31, 31}, // [16, 32): width-1 sub-buckets
		{32, 32}, {33, 32}, // [32, 64): width-2 sub-buckets
		{34, 33}, {63, 47},
		{64, 48}, {67, 48}, {68, 49}, // [64, 128): width-4
		{1 << 20, histSub + (20-histSubBits)*histSub},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
}

// TestBucketInverseConsistency sweeps the whole value range: every
// value lands in a bucket whose [lower, upper] range contains it, and
// placement is order-preserving across bucket edges.
func TestBucketInverseConsistency(t *testing.T) {
	check := func(v uint64) {
		t.Helper()
		b := bucketOf(v)
		up := bucketUpper(b)
		if v > up {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, b, up)
		}
		if b > 0 {
			if lo := bucketUpper(b-1) + 1; v < lo {
				t.Fatalf("value %d below its bucket %d lower bound %d", v, b, lo)
			}
		}
		if bucketOf(up) != b {
			t.Fatalf("upper bound %d of bucket %d maps to bucket %d", up, b, bucketOf(up))
		}
		if up != ^uint64(0) && bucketOf(up+1) != b+1 {
			t.Fatalf("value %d (one past bucket %d) maps to bucket %d, want %d", up+1, b, bucketOf(up+1), b+1)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		check(rng.Uint64() >> uint(rng.Intn(64)))
	}
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 1<<32 - 1, 1 << 32, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		check(v)
	}
}

// TestMergeAssociativity pins that histogram snapshots merge exactly:
// (a+b)+c == a+(b+c) == one histogram observing everything, bucket for
// bucket — the property that makes per-shard histograms combinable.
func TestMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var all Histogram
	parts := make([]*Histogram, 3)
	for i := range parts {
		parts[i] = &Histogram{}
		for j := 0; j < 5000; j++ {
			v := rng.Uint64() >> uint(rng.Intn(60))
			parts[i].Observe(v)
			all.Observe(v)
		}
	}
	left := parts[0].Snapshot()
	left.Merge(parts[1].Snapshot())
	left.Merge(parts[2].Snapshot())

	bc := parts[1].Snapshot()
	bc.Merge(parts[2].Snapshot())
	right := parts[0].Snapshot()
	right.Merge(bc)

	whole := all.Snapshot()
	for i, m := range []HistSnapshot{left, right} {
		if m.Count != whole.Count || m.Sum != whole.Sum || m.Buckets != whole.Buckets {
			t.Fatalf("merge order %d differs from the directly-observed histogram", i)
		}
	}
}

// TestQuantileErrorBounds pins the estimator guarantee: the returned
// quantile never undershoots the true order statistic and overshoots
// by at most one sub-bucket (1/histSub relative above histSub).
func TestQuantileErrorBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	values := make([]uint64, 20001)
	for i := range values {
		v := uint64(rng.Int63n(1_000_000_000)) // ns-scale latencies
		values[i] = v
		h.Observe(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		rank := int(q * float64(len(values)))
		if rank >= len(values) {
			rank = len(values) - 1
		}
		truth := values[rank]
		got := s.Quantile(q)
		if got < truth {
			t.Errorf("q=%g: estimate %d undershoots true %d", q, got, truth)
		}
		if limit := bucketUpper(bucketOf(truth)); got > limit {
			t.Errorf("q=%g: estimate %d exceeds bucket bound %d (true %d)", q, got, limit, truth)
		}
		if truth >= histSub && float64(got) > float64(truth)*(1+1.0/histSub)+1 {
			t.Errorf("q=%g: estimate %d violates the %.2f%% relative error bound (true %d)",
				q, got, 100.0/histSub, truth)
		}
	}
	if s.Max() < values[len(values)-1] {
		t.Errorf("Max %d undershoots true max %d", s.Max(), values[len(values)-1])
	}
}

// TestQuantileEmptyAndSingle pins the edge cases.
func TestQuantileEmptyAndSingle(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Quantile(0.5) != 0 || s.Max() != 0 {
		t.Error("empty histogram quantiles should be 0")
	}
	h.Observe(7)
	s = h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 7 {
			t.Errorf("single-value q=%g = %d, want 7 (exact unit bucket)", q, got)
		}
	}
}

// TestConcurrentObserveScrape is the race-detector test for the
// histogram/registry scrape path: hammer Observe from several
// goroutines while snapshots and Prometheus renders run concurrently,
// then check the final totals are exact.
func TestConcurrentObserveScrape(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "test", 1e-9)
	const (
		writers = 4
		perG    = 20000
	)
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var total uint64
			for _, c := range s.Buckets {
				total += c
			}
			// Count is loaded after the buckets, so it can never exceed
			// the bucket total even mid-update.
			if s.Count > total {
				t.Errorf("snapshot count %d exceeds bucket total %d", s.Count, total)
				return
			}
			var sink discard
			r.WritePrometheus(&sink)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				h.Observe(uint64(rng.Int63n(1 << 30)))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-scraperDone
	if got := h.Count(); got != writers*perG {
		t.Fatalf("count %d after concurrent observes, want %d", got, writers*perG)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
