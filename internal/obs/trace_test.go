package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

// TestTraceSpanLifecycle pins the span record: ordered, monotonic
// timestamps, idempotent End, attrs attached, zero SpanRef inert.
func TestTraceSpanLifecycle(t *testing.T) {
	tr := NewTrace("t1", "j1")
	admit := tr.Start("admit")
	admit.Annotate("disposition", "new")
	admit.End()
	admit.End() // idempotent
	qw := tr.Start("queue-wait")
	qw.End()
	tr.Mark("result-served", nil)

	var zero SpanRef
	zero.End() // must not panic
	zero.Annotate("k", "v")

	d := tr.Dump()
	if d.TraceID != "t1" || d.JobID != "j1" {
		t.Fatalf("dump ids %q/%q", d.TraceID, d.JobID)
	}
	names := []string{"admit", "queue-wait", "result-served"}
	if len(d.Spans) != len(names) {
		t.Fatalf("got %d spans, want %d", len(d.Spans), len(names))
	}
	var last int64
	for i, sp := range d.Spans {
		if sp.Name != names[i] {
			t.Errorf("span %d is %q, want %q", i, sp.Name, names[i])
		}
		if sp.Start < last {
			t.Errorf("span %q starts before the previous span's timestamps", sp.Name)
		}
		if sp.End < sp.Start {
			t.Errorf("span %q ends (%d) before it starts (%d)", sp.Name, sp.End, sp.Start)
		}
		last = sp.End
	}
	if d.Spans[0].Attrs["disposition"] != "new" {
		t.Error("annotation lost")
	}
	// The dump is JSON-marshalable (the /debug/trace wire format).
	if _, err := json.Marshal(d); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderRingEviction pins the bounded flight recorder: oldest
// traces fall out, lookups work by both trace and job id.
func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 5; i++ {
		r.Add(NewTrace(fmt.Sprintf("t%d", i), fmt.Sprintf("j%d", i)))
	}
	if r.Len() != 3 {
		t.Fatalf("recorder holds %d traces, want 3", r.Len())
	}
	if _, ok := r.Get("t0"); ok {
		t.Error("evicted trace still resolvable")
	}
	if _, ok := r.Get("j1"); ok {
		t.Error("evicted trace still resolvable by job id")
	}
	for _, id := range []string{"t2", "j2", "t4", "j4"} {
		if _, ok := r.Get(id); !ok {
			t.Errorf("live trace %s not resolvable", id)
		}
	}
	dumps := r.DumpAll()
	if len(dumps) != 3 || dumps[0].TraceID != "t2" || dumps[2].TraceID != "t4" {
		t.Errorf("DumpAll order wrong: %+v", dumps)
	}
}

// TestRecorderIncident pins the out-of-band incident records used on
// degraded-mode entry.
func TestRecorderIncident(t *testing.T) {
	r := NewRecorder(8)
	id := r.Incident("degraded-enter", map[string]string{"cause": "disk on fire"})
	if r.Incidents() != 1 {
		t.Fatalf("incidents = %d, want 1", r.Incidents())
	}
	tr, ok := r.Get(id)
	if !ok {
		t.Fatal("incident not resolvable by id")
	}
	d := tr.Dump()
	if len(d.Spans) != 1 || d.Spans[0].Attrs["cause"] != "disk on fire" {
		t.Fatalf("incident dump %+v lost the cause", d)
	}
}

// TestTraceConcurrentSpans is the race test for handoff between the
// submit handler, worker, and result handler goroutines plus a
// concurrent dumper.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("t", "j")
	rec := NewRecorder(4)
	rec.Add(tr)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start(fmt.Sprintf("g%d", g))
				sp.Annotate("i", "x")
				sp.End()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tr.Dump()
			rec.DumpAll()
		}
	}()
	wg.Wait()
	if got := len(tr.Dump().Spans); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}
