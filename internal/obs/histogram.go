package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram is log-linear (HDR-style): values below histSub land
// in unit-wide buckets; above that, every power-of-two range [2^e,
// 2^(e+1)) is split into histSub linear sub-buckets. Bucket boundaries
// are fixed at compile time — no adaptive resizing — so two histograms
// recorded on different machines (or the same machine on different
// days) have identical bucket layouts: snapshots merge by elementwise
// addition and render byte-identically for identical counts.
//
// With histSub = 16 the worst-case relative quantile error is one
// sub-bucket width: 1/16 = 6.25%.
const (
	histSub     = 16
	histSubBits = 4 // log2(histSub)
	// histBuckets covers the full uint64 range: histSub unit buckets
	// plus histSub sub-buckets for each exponent 4..63.
	histBuckets = histSub + (64-histSubBits)*histSub
)

// bucketOf maps a value to its bucket index. Total order is preserved:
// v1 <= v2 implies bucketOf(v1) <= bucketOf(v2).
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // 2^e <= v < 2^(e+1), e >= histSubBits
	return histSub + (e-histSubBits)*histSub + int((v-1<<e)>>(uint(e)-histSubBits))
}

// bucketUpper returns the largest value that maps to bucket i (the
// inclusive upper bound reported by quantile estimation).
func bucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	e := uint(i/histSub - 1 + histSubBits)
	off := uint64(i % histSub)
	width := uint64(1) << (e - histSubBits)
	return 1<<e + (off+1)*width - 1
}

// Histogram is a fixed-layout log-linear histogram safe for concurrent
// Observe and Snapshot. Values are raw uint64 units (the service
// records nanoseconds); Scale converts them at export time (1e-9 for
// nanoseconds rendered as Prometheus seconds).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds (negative
// durations clamp to zero).
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d.Nanoseconds()))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a histogram. Snapshots of
// concurrently-observed histograms are internally consistent enough
// for monitoring (each bucket count is an atomic load); a quiescent
// histogram snapshots exactly.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [histBuckets]uint64
}

// Snapshot copies the current counts.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	// Load count and sum after the buckets: a concurrent Observe
	// increments buckets first, so Count never exceeds the bucket total.
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Merge adds other's counts into s. Bucket layouts are identical by
// construction, so merging is elementwise addition — commutative and
// associative, which makes per-shard histograms exactly combinable.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	s.Count += other.Count
	s.Sum += other.Sum
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Quantile returns the inclusive upper bound of the bucket holding the
// q-quantile observation (q in [0, 1]). The estimate is deterministic
// for a deterministic set of observations and never underestimates the
// true value by construction; it overestimates by at most one
// sub-bucket width (6.25% relative above histSub, exact below).
// Returns 0 for an empty snapshot.
func (s *HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum > rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// Max returns the upper bound of the highest non-empty bucket (0 when
// empty).
func (s *HistSnapshot) Max() uint64 {
	for i := histBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return bucketUpper(i)
		}
	}
	return 0
}
