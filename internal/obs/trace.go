package obs

import (
	"fmt"
	"sync"
	"time"
)

// Span is one phase of a traced job. Start/End are unix nanoseconds;
// End is zero while the span is open. Within a trace, timestamps are
// monotonic non-decreasing (the trace clamps against wall-clock
// steps), so span sequences always read in causal order.
type Span struct {
	Name  string            `json:"name"`
	Start int64             `json:"start_ns"`
	End   int64             `json:"end_ns,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is the span record of one job, from admission to the first
// result fetch. Spans are appended by the goroutine currently driving
// the job (submit handler, queue worker, result handler); the mutex
// makes cross-goroutine handoffs and concurrent dumps safe.
type Trace struct {
	mu     sync.Mutex
	id     string
	job    string
	spans  []Span
	lastNS int64
}

// NewTrace returns an empty trace for the given trace and job ids.
func NewTrace(id, job string) *Trace {
	return &Trace{id: id, job: job}
}

// ID returns the trace id.
func (t *Trace) ID() string { return t.id }

// nowLocked returns a wall-clock timestamp clamped to be >= every
// timestamp already recorded in this trace. Callers hold t.mu.
func (t *Trace) nowLocked() int64 {
	ns := time.Now().UnixNano()
	if ns < t.lastNS {
		ns = t.lastNS
	}
	t.lastNS = ns
	return ns
}

// SpanRef addresses one span inside a trace for End/Annotate. The zero
// value is inert: End and Annotate on it are no-ops, so callers can
// hold an unconditional ref and only sometimes start the span.
type SpanRef struct {
	t   *Trace
	idx int
}

// Start opens a new span.
func (t *Trace) Start(name string) SpanRef {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, Span{Name: name, Start: t.nowLocked()})
	return SpanRef{t: t, idx: len(t.spans)}
}

// Mark records an instantaneous event as a zero-length span.
func (t *Trace) Mark(name string, attrs map[string]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ns := t.nowLocked()
	t.spans = append(t.spans, Span{Name: name, Start: ns, End: ns, Attrs: attrs})
}

// End closes the span (idempotent: only the first End sticks).
func (r SpanRef) End() {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	if sp := &r.t.spans[r.idx-1]; sp.End == 0 {
		sp.End = r.t.nowLocked()
	}
}

// Annotate attaches a key/value attribute to the span.
func (r SpanRef) Annotate(k, v string) {
	if r.t == nil {
		return
	}
	r.t.mu.Lock()
	defer r.t.mu.Unlock()
	sp := &r.t.spans[r.idx-1]
	if sp.Attrs == nil {
		sp.Attrs = make(map[string]string)
	}
	sp.Attrs[k] = v
}

// TraceDump is the JSON wire shape of a trace.
type TraceDump struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id,omitempty"`
	Spans   []Span `json:"spans"`
}

// Dump snapshots the trace.
func (t *Trace) Dump() TraceDump {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	return TraceDump{TraceID: t.id, JobID: t.job, Spans: spans}
}

// Recorder is the flight recorder: a bounded ring of recent traces,
// addressable by trace or job id. When full, the oldest trace is
// evicted. It is the backing store of GET /debug/trace/{id} and of the
// dump written on degraded-mode entry.
type Recorder struct {
	mu        sync.Mutex
	cap       int
	order     []*Trace // insertion order, oldest first
	byID      map[string]*Trace
	incidents int
}

// NewRecorder returns a recorder bounded to cap traces (minimum 1).
func NewRecorder(cap int) *Recorder {
	if cap < 1 {
		cap = 1
	}
	return &Recorder{cap: cap, byID: make(map[string]*Trace)}
}

// Add registers a trace, evicting the oldest when full. Traces are
// added at job admission so in-flight jobs are dumpable too.
func (r *Recorder) Add(t *Trace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.order) == r.cap {
		old := r.order[0]
		r.order = r.order[1:]
		// Only unmap ids still pointing at the evictee: a re-added trace
		// with the same id must keep its (newer) mapping.
		if r.byID[old.id] == old {
			delete(r.byID, old.id)
		}
		if old.job != "" && r.byID[old.job] == old {
			delete(r.byID, old.job)
		}
	}
	r.order = append(r.order, t)
	r.byID[t.id] = t
	if t.job != "" {
		r.byID[t.job] = t
	}
}

// Get looks a trace up by trace id or job id.
func (r *Recorder) Get(id string) (*Trace, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Incident records an out-of-band event (a store fault, a degraded
// transition) as a one-span trace so the flight recorder's timeline
// captures why the service state changed, not just which jobs ran.
// Returns the incident's trace id.
func (r *Recorder) Incident(name string, attrs map[string]string) string {
	r.mu.Lock()
	r.incidents++
	id := fmt.Sprintf("incident-%d", r.incidents)
	r.mu.Unlock()
	t := NewTrace(id, "")
	t.Mark(name, attrs)
	r.Add(t)
	return id
}

// Incidents returns how many incidents were recorded.
func (r *Recorder) Incidents() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.incidents
}

// Len returns the number of traces currently held.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// DumpAll snapshots every held trace, oldest first.
func (r *Recorder) DumpAll() []TraceDump {
	r.mu.Lock()
	traces := make([]*Trace, len(r.order))
	copy(traces, r.order)
	r.mu.Unlock()
	out := make([]TraceDump, len(traces))
	for i, t := range traces {
		out[i] = t.Dump()
	}
	return out
}
