package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusExposition pins the text format: sorted metric order,
// TYPE/HELP comments, cumulative histogram buckets with scaled bounds,
// and validity under the same parser the load harness uses.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("triaged_submitted_total", "jobs admitted")
	g := r.Gauge("triaged_queue_depth", "queued jobs")
	r.GaugeFunc("triaged_workers", "worker count", func() float64 { return 4 })
	h := r.Histogram("triaged_run_seconds", "run latency", 1e-9)
	c.Add(3)
	g.Set(2)
	h.Observe(10) // bucket upper 10 → 1e-8 s
	h.Observe(10)
	h.Observe(1000) // upper bound 1023

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE triaged_submitted_total counter",
		"triaged_submitted_total 3",
		"# TYPE triaged_queue_depth gauge",
		"triaged_queue_depth 2",
		"triaged_workers 4",
		"# TYPE triaged_run_seconds histogram",
		`triaged_run_seconds_bucket{le="1e-08"} 2`,
		`triaged_run_seconds_bucket{le="+Inf"} 3`,
		"triaged_run_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Sorted order: queue_depth renders before run_seconds before
	// submitted_total before workers.
	idx := func(s string) int { return strings.Index(text, s) }
	if !(idx("triaged_queue_depth") < idx("triaged_run_seconds") &&
		idx("triaged_run_seconds") < idx("triaged_submitted_total") &&
		idx("triaged_submitted_total") < idx("triaged_workers")) {
		t.Errorf("metrics not in sorted name order:\n%s", text)
	}
	if err := ValidatePrometheus(strings.NewReader(text)); err != nil {
		t.Errorf("self-render fails validation: %v", err)
	}
	// Two renders of a quiescent registry are byte-identical.
	var buf2 bytes.Buffer
	r.WritePrometheus(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("repeat render of a quiescent registry differs")
	}
}

// TestValidatePrometheusRejectsGarbage pins the validator both ways.
func TestValidatePrometheusRejectsGarbage(t *testing.T) {
	good := "# TYPE x counter\nx 1\nx_bucket{le=\"+Inf\"} 2\n"
	if err := ValidatePrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	for _, bad := range []string{
		"",                    // no samples at all
		"just some prose\n",   // not a sample line
		"x one\n",             // non-numeric value
		"{no_name=\"x\"} 1\n", // missing metric name
	} {
		if err := ValidatePrometheus(strings.NewReader(bad)); err == nil {
			t.Errorf("invalid exposition %q accepted", bad)
		}
	}
}

// TestRegistrySnapshotJSON pins the JSON shape: numbers for counters
// and gauges, HistJSON objects for histograms, all marshalable.
func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "").Add(5)
	r.Gauge("g", "").Set(-2)
	h := r.Histogram("h", "", 1)
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	snap := r.Snapshot()
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["c"].(float64) != 5 || back["g"].(float64) != -2 {
		t.Errorf("snapshot numbers wrong: %v", back)
	}
	hj := back["h"].(map[string]any)
	if hj["count"].(float64) != 100 || hj["p50"].(float64) <= 0 {
		t.Errorf("histogram snapshot wrong: %v", hj)
	}
}

// TestGaugeSetMax pins the high-water-mark helper.
func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Fatalf("SetMax regressed to %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Fatalf("SetMax did not advance to 9 (got %d)", g.Value())
	}
}

// TestDuplicateMetricPanics pins that name collisions are programming
// errors, caught loudly at registration.
func TestDuplicateMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup", "")
	r.Counter("dup", "")
}
