package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

// TestUtilityRefusesCapacityBoundLoop reproduces the bzip2 pathology
// (paper Fig. 8): a loop whose lines have heavy temporal reuse — so
// plain Dynamic provisions a store — but whose reuse would have been
// LLC hits anyway, so the partition only destroys data hit rate. The
// utility-aware extension must keep the store off.
func TestUtilityRefusesCapacityBoundLoop(t *testing.T) {
	// A loop over 20K lines: fits a 2MB LLC (32K lines), does not fit
	// once a store is carved out.
	ring := make([]mem.Line, 20<<10)
	for i := range ring {
		ring[i] = mem.Line(i)
	}
	feedLoop := func(tr *Triage, laps int) {
		for lap := 0; lap < laps; lap++ {
			for _, l := range ring {
				tr.Train(prefetch.Event{PC: 1, Line: l, Miss: true})
			}
		}
	}

	dyn := New(Config{Mode: Dynamic, EpochAccesses: 10000})
	feedLoop(dyn, 10)
	if dyn.DesiredMetadataBytes() == 0 {
		t.Fatal("baseline Dynamic did not provision a store on the reuse loop (test premise broken)")
	}

	util := New(Config{Mode: DynamicUtility, EpochAccesses: 10000})
	feedLoop(util, 10)
	if got := util.DesiredMetadataBytes(); got != 0 {
		t.Errorf("DynamicUtility provisioned %d bytes on an LLC-resident loop, want 0", got)
	}
}

// TestUtilityProvisionsWhenLLCIsWorthless drives a chase whose
// footprint dwarfs the LLC: data hit rates are near zero at every
// capacity, so the metadata gain wins and a store is provisioned.
func TestUtilityProvisionsWhenLLCIsWorthless(t *testing.T) {
	ring := make([]mem.Line, 120<<10) // 7.5MB >> 2MB LLC
	for i := range ring {
		ring[i] = mem.Line(i * 7)
	}
	tr := New(Config{Mode: DynamicUtility, EpochAccesses: 10000})
	for lap := 0; lap < 6; lap++ {
		for _, l := range ring {
			tr.Train(prefetch.Event{PC: 1, Line: l, Miss: true})
		}
	}
	if got := tr.DesiredMetadataBytes(); got == 0 {
		t.Error("DynamicUtility refused a store despite worthless LLC and heavy metadata reuse")
	}
}

func TestUtilityModeName(t *testing.T) {
	tr := New(Config{Mode: DynamicUtility})
	if tr.Name() != "triage-dynutil" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.DesiredMetadataBytes() != 0 {
		t.Error("initial desire should be 0")
	}
}

func TestDataUtilityLossOrdering(t *testing.T) {
	// Larger partitions can never lose less data hit rate than smaller
	// ones on the same stream.
	u := newDataUtility(16, 4, 8)
	state := uint64(3)
	for i := 0; i < 200000; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		u.observe(mem.Line(state % (24 << 10)))
	}
	if u.total == 0 {
		t.Fatal("no sampled observations")
	}
	if u.lossAt(true) < u.lossAt(false) {
		t.Errorf("lossAt(large)=%.4f < lossAt(small)=%.4f", u.lossAt(true), u.lossAt(false))
	}
}

func TestDataUtilityClampsWays(t *testing.T) {
	u := newDataUtility(16, 16, 20) // degenerate requests
	if u.largeWays >= 16 || u.smallWays >= 16 {
		t.Errorf("ways not clamped: small=%d large=%d", u.smallWays, u.largeWays)
	}
}
