// Package core implements the paper's contribution: the Triage
// prefetcher — a PC-localized temporal data prefetcher whose metadata
// lives entirely on chip, in a dynamically provisioned way-partition of
// the LLC (Wu et al., MICRO'19).
//
// Triage has four pieces, each mapping to a section of the paper:
//
//   - a Training Unit holding the last address touched by each load PC;
//     consecutive addresses from the same PC form a correlated pair (§3.1)
//   - a table-based metadata store: 4-byte entries with compressed tags,
//     16 entries per 64B LLC line, indexed by the trigger's set_id (§3.2)
//   - a modified Hawkeye replacement policy for metadata entries that is
//     trained positively only by prefetches that miss in the cache (§3)
//   - an OPTgen-sandbox partitioner that re-evaluates the metadata
//     store size (0, 512KB, or 1MB per core) every 50K metadata
//     accesses (§3)
package core

import (
	"fmt"

	"repro/internal/flat"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/replacement"
	"repro/internal/telemetry"
)

// Mode selects how the metadata store is provisioned.
type Mode int

// Provisioning modes.
const (
	// Static uses a fixed metadata store size (Triage-Static).
	Static Mode = iota
	// Dynamic provisions 0/512KB/1MB per epoch (Triage-Dynamic).
	Dynamic
	// Unlimited models the idealized PC-localized temporal prefetcher
	// with unbounded metadata (the "Perfect" line of Fig. 9); it claims
	// no LLC capacity.
	Unlimited
	// DynamicUtility extends Dynamic with the paper's named future work
	// (§4.2): the partitioner also estimates the LLC data hit rate it
	// would destroy at each candidate size and provisions a store only
	// when the metadata gain exceeds the data loss. It repairs the
	// bzip2-style pathology where metadata reuse exists but the
	// prefetches it yields are redundant.
	DynamicUtility
	// DynamicLadder implements the paper's §3 sketch for supporting any
	// number of partition sizes: the two OPTgen copies are time-shared
	// across an ascending ladder of candidate sizes, walking one rung
	// per epoch (see timeshare.go).
	DynamicLadder
)

// Replacement selects the metadata replacement policy (Fig. 9 compares
// LRU against Hawkeye).
type Replacement int

// Metadata replacement policies.
const (
	Hawkeye Replacement = iota
	LRU
)

// Config parameterizes a Triage instance.
type Config struct {
	// Mode selects Static, Dynamic or Unlimited provisioning.
	Mode Mode
	// StaticBytes is the metadata store size in Static mode
	// (the paper's best static size for a 2MB LLC is 1MB).
	StaticBytes int
	// SmallBytes/LargeBytes are the Dynamic mode candidates
	// (paper: 512KB and 1MB).
	SmallBytes int
	LargeBytes int
	// Replacement picks Hawkeye (default) or LRU for metadata entries.
	Replacement Replacement
	// Degree is the prefetch degree (default 1). Each additional degree
	// chains another metadata lookup, paying LLCLatencyTicks again.
	Degree int
	// LLCLatencyTicks is the cost of one LLC-resident metadata lookup,
	// charged as issue delay on prefetch requests (~20 cycles, §3).
	LLCLatencyTicks uint64
	// TrainingUnitSize bounds the PC-indexed last-address table.
	TrainingUnitSize int
	// EpochAccesses is the partition re-evaluation period in metadata
	// accesses (paper: 50,000).
	EpochAccesses int
	// Ladder lists the candidate store sizes for DynamicLadder mode,
	// ascending (default 256KB, 512KB, 1MB, 2MB).
	Ladder []int
	// PredictorBits sizes the Hawkeye PC predictor (default 13 = 8K).
	PredictorBits uint
}

func (c *Config) applyDefaults() {
	if c.StaticBytes == 0 {
		c.StaticBytes = 1 << 20
	}
	if c.SmallBytes == 0 {
		c.SmallBytes = 512 << 10
	}
	if c.LargeBytes == 0 {
		c.LargeBytes = 1 << 20
	}
	if c.Degree == 0 {
		c.Degree = 1
	}
	if c.TrainingUnitSize == 0 {
		c.TrainingUnitSize = 256
	}
	if c.EpochAccesses == 0 {
		c.EpochAccesses = 50000
	}
	if c.PredictorBits == 0 {
		c.PredictorBits = 13
	}
}

func (c *Config) validate() error {
	for _, v := range []struct {
		name  string
		bytes int
	}{{"StaticBytes", c.StaticBytes}, {"SmallBytes", c.SmallBytes}, {"LargeBytes", c.LargeBytes}} {
		if v.bytes%(metadataSets*bytesPerEntry) != 0 {
			return fmt.Errorf("triage: %s = %d is not a multiple of %d (sets x entry size)",
				v.name, v.bytes, metadataSets*bytesPerEntry)
		}
	}
	if c.SmallBytes >= c.LargeBytes {
		return fmt.Errorf("triage: SmallBytes %d must be < LargeBytes %d", c.SmallBytes, c.LargeBytes)
	}
	return nil
}

// pendingObs is a deferred Hawkeye predictor update awaiting the
// prefetch outcome (the paper delays training until the prefetch is
// known to miss in the cache; redundant prefetches drop it).
type pendingObs struct {
	hint trainHint
}

// Triage is the prefetcher. It implements prefetch.Prefetcher,
// prefetch.DegreeSetter, prefetch.EnvUser and prefetch.OutcomeObserver.
type Triage struct {
	cfg  Config
	env  prefetch.Env
	pred *replacement.Predictor

	// tu is the training unit: PC -> last line, bounded by
	// TrainingUnitSize with FIFO eviction. Updates go through At (no
	// LRU promotion), so the flat table's recency order degenerates to
	// insertion order — exactly the original FIFO.
	tu *flat.LRU[uint64]

	store       *store
	sizer       *sizer
	ladder      *timeShareSizer
	staticSizer *sizer // pinned OPTgen trainer (Static/Ladder Hawkeye)

	// Unlimited-mode table.
	unl     map[mem.Line]unlEntry
	pending map[mem.Line]pendingObs

	reqs []prefetch.Request // predict scratch, reused every Train

	// tr, when non-nil, receives Hawkeye predictor-decision events;
	// lastTick/lastCore stamp them with the current training event.
	tr       *telemetry.EventTrace
	lastTick uint64
	lastCore int32

	metadataAccesses uint64 // LLC accesses for metadata (energy, Fig 13)
	lookups          uint64
	lookupHits       uint64
	issued           uint64
	usefulFeedback   uint64
	redundant        uint64
}

type unlEntry struct {
	next mem.Line
	conf bool
	uses uint64
}

// New returns a Triage instance. It panics on invalid configuration
// (sizes must pack into the 2048-set, 4-byte-entry layout).
func New(cfg Config) *Triage {
	cfg.applyDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	t := &Triage{
		cfg:     cfg,
		env:     prefetch.NopEnv{},
		pred:    replacement.NewPredictor(cfg.PredictorBits),
		tu:      flat.NewLRU[uint64](cfg.TrainingUnitSize),
		pending: make(map[mem.Line]pendingObs),
	}
	switch cfg.Mode {
	case Unlimited:
		t.unl = make(map[mem.Line]unlEntry)
	case Static:
		assoc := cfg.StaticBytes / bytesPerEntry / metadataSets
		t.store = newStore(assoc, cfg.Replacement == Hawkeye, t.pred)
	case Dynamic, DynamicUtility:
		assoc := cfg.LargeBytes / bytesPerEntry / metadataSets
		t.store = newStore(assoc, cfg.Replacement == Hawkeye, t.pred)
		t.store.resize(0) // start with no partition until proven useful
		t.sizer = newSizer(cfg.SmallBytes, cfg.LargeBytes, cfg.EpochAccesses)
		if cfg.Mode == DynamicUtility {
			// Way costs on the per-core 2MB/16-way LLC view.
			bytesPerWay := metadataSets * mem.LineSize
			t.sizer.utility = newDataUtility(16,
				(cfg.SmallBytes+bytesPerWay/2)/bytesPerWay,
				(cfg.LargeBytes+bytesPerWay/2)/bytesPerWay)
		}
	case DynamicLadder:
		ladder := cfg.Ladder
		if len(ladder) == 0 {
			ladder = []int{256 << 10, 512 << 10, 1 << 20, 2 << 20}
		}
		assoc := ladder[len(ladder)-1] / bytesPerEntry / metadataSets
		t.store = newStore(assoc, cfg.Replacement == Hawkeye, t.pred)
		t.store.resize(0)
		t.ladder = newTimeShareSizer(ladder, cfg.EpochAccesses)
	}
	return t
}

// Name implements prefetch.Prefetcher.
func (t *Triage) Name() string {
	switch t.cfg.Mode {
	case Dynamic:
		return "triage-dynamic"
	case DynamicUtility:
		return "triage-dynutil"
	case DynamicLadder:
		return "triage-ladder"
	case Unlimited:
		return "triage-unlimited"
	default:
		return fmt.Sprintf("triage-%dKB", t.cfg.StaticBytes>>10)
	}
}

// SetDegree implements prefetch.DegreeSetter.
func (t *Triage) SetDegree(d int) {
	if d >= 1 {
		t.cfg.Degree = d
	}
}

// Bind implements prefetch.EnvUser.
func (t *Triage) Bind(env prefetch.Env) { t.env = env }

// BindEventTrace attaches a structured event trace that receives
// Hawkeye predictor-training decisions (telemetry; optional).
func (t *Triage) BindEventTrace(tr *telemetry.EventTrace) { t.tr = tr }

// LookupCounts returns cumulative metadata-store lookups and hits
// (the sampler derives the per-interval hit rate from the deltas).
func (t *Triage) LookupCounts() (lookups, hits uint64) {
	return t.lookups, t.lookupHits
}

// notePredictor records one applied predictor update in the event
// trace. Call immediately before hint.apply.
func (t *Triage) notePredictor(hint trainHint) {
	if t.tr == nil || !hint.valid {
		return
	}
	a := int64(0)
	if hint.optHit {
		a = 1
	}
	t.tr.Emit(telemetry.Event{
		Tick: t.lastTick, Kind: telemetry.EvPredictor,
		Core: t.lastCore, PC: hint.pc, A: a,
	})
}

// DesiredMetadataBytes reports how much LLC capacity Triage wants for
// metadata right now; the simulator carves the corresponding ways out
// of the LLC (0 in Unlimited mode — that configuration models a free
// side table).
func (t *Triage) DesiredMetadataBytes() int {
	switch t.cfg.Mode {
	case Static:
		return t.cfg.StaticBytes
	case Dynamic, DynamicUtility:
		return t.sizer.desiredBytes()
	case DynamicLadder:
		return t.ladder.desiredBytes()
	default:
		return 0
	}
}

// MetadataAccesses returns the number of LLC accesses made on behalf of
// metadata (1 energy unit each in Fig. 13's model).
func (t *Triage) MetadataAccesses() uint64 { return t.metadataAccesses }

// LookupHitRate returns the metadata store hit rate (tests, reports).
func (t *Triage) LookupHitRate() float64 {
	if t.lookups == 0 {
		return 0
	}
	return float64(t.lookupHits) / float64(t.lookups)
}

// EnableReuseTracking records per-trigger reuse counts for the Fig. 1
// style histogram. Only meaningful before the first Train call.
func (t *Triage) EnableReuseTracking() {
	if t.store != nil {
		t.store.enableReuseTracking()
	}
}

// ReuseCounts returns per-trigger metadata reuse counts (Fig. 1). In
// Unlimited mode every entry is tracked; otherwise tracking must be
// enabled first.
func (t *Triage) ReuseCounts() []uint64 {
	if t.cfg.Mode == Unlimited {
		out := make([]uint64, 0, len(t.unl))
		for _, e := range t.unl {
			out = append(out, e.uses)
		}
		return out
	}
	if t.store == nil || t.store.reuse == nil {
		return nil
	}
	out := make([]uint64, 0, t.store.reuse.Len())
	t.store.reuse.Range(func(_, n uint64) bool {
		out = append(out, n)
		return true
	})
	return out
}

// Train implements prefetch.Prefetcher. Per Fig. 4, Triage observes L2
// misses and prefetch hits: it probes the metadata store with the
// incoming address to generate prefetch candidates, then updates the
// Training Unit and the metadata store with the newly observed pair.
func (t *Triage) Train(ev prefetch.Event) []prefetch.Request {
	if !ev.Miss && !ev.PrefetchHit {
		return nil
	}
	t.lastTick, t.lastCore = ev.Tick, int32(ev.Core)
	reqs := t.predict(ev)
	t.learn(ev)
	return reqs
}

// predict chains metadata lookups from ev.Line, one per degree step.
// The returned slice is scratch owned by the prefetcher; callers
// consume it before the next Train.
func (t *Triage) predict(ev prefetch.Event) []prefetch.Request {
	t.reqs = t.reqs[:0]
	cur := ev.Line
	delay := t.cfg.LLCLatencyTicks
	for i := 0; i < t.cfg.Degree; i++ {
		next, hint, ok := t.lookupOnce(cur, ev.PC)
		if !ok {
			break
		}
		req := prefetch.Request{Line: next, PC: ev.PC, IssueDelay: delay}
		t.reqs = append(t.reqs, req)
		// Defer the Hawkeye predictor update until the outcome of this
		// prefetch is known (§3: train only on useful prefetches).
		t.pending[next] = pendingObs{hint: hint}
		t.issued++
		cur = next
		delay += t.cfg.LLCLatencyTicks
	}
	if len(t.reqs) == 0 {
		return nil
	}
	return t.reqs
}

// lookupOnce performs one metadata lookup, charging one LLC metadata
// access, and returns the successor if present plus the deferred
// predictor-training hint for the access.
func (t *Triage) lookupOnce(l mem.Line, pc uint64) (mem.Line, trainHint, bool) {
	t.lookups++
	if t.cfg.Mode == Unlimited {
		e, ok := t.unl[l]
		if ok {
			e.uses++
			t.unl[l] = e
			t.lookupHits++
			return e.next, trainHint{}, true
		}
		return 0, trainHint{}, false
	}
	t.metadataAccesses++
	t.env.LLCMetadataAccess(1)
	hint := t.observe(l, pc)
	next, way, ok := t.store.lookup(l)
	if !ok {
		// Metadata miss: its predictor update applies immediately (a
		// miss cannot be a redundant prefetch).
		t.notePredictor(hint)
		hint.apply(t.pred)
		return 0, trainHint{}, false
	}
	t.lookupHits++
	t.store.promote(l, way, pc)
	return next, hint, true
}

// learn records the PC-localized pair (lastAddr[PC] -> ev.Line).
func (t *Triage) learn(ev prefetch.Event) {
	var prev mem.Line
	slot, had := t.tu.Find(ev.PC)
	if had {
		prev = mem.Line(*t.tu.At(slot))
		*t.tu.At(slot) = uint64(ev.Line)
	} else {
		// Insert evicts the oldest PC when full (FIFO: updates above
		// never promote, so tail order is insertion order).
		t.tu.Insert(ev.PC, uint64(ev.Line))
	}
	if !had || prev == ev.Line {
		return
	}
	if t.cfg.Mode == Unlimited {
		e, ok := t.unl[prev]
		switch {
		case !ok:
			t.unl[prev] = unlEntry{next: ev.Line, conf: true}
		case e.next == ev.Line:
			e.conf = true
			t.unl[prev] = e
		case e.conf:
			e.conf = false
			t.unl[prev] = e
		default:
			t.unl[prev] = unlEntry{next: ev.Line, conf: true, uses: e.uses}
		}
		return
	}
	t.metadataAccesses++
	t.env.LLCMetadataAccess(1)
	t.store.insert(prev, ev.Line, ev.PC)
}

// observe feeds a metadata access into the sizing sandboxes (which see
// every access) and returns the deferred predictor-training hint. In
// Dynamic mode an epoch boundary also re-applies the store size.
func (t *Triage) observe(l mem.Line, pc uint64) trainHint {
	if t.ladder != nil {
		if t.ladder.observe(l) {
			t.store.resize(t.ladder.desiredBytes() / bytesPerEntry / metadataSets)
		}
	}
	z := t.activeSizer()
	if z == nil {
		return trainHint{}
	}
	if z.utility != nil {
		// The same event is an LLC data access: feed the utility model.
		z.utility.observe(l)
	}
	hint, epochEnd := z.observe(l, pc)
	if epochEnd && t.sizer != nil {
		t.store.resize(t.sizer.desiredBytes() / bytesPerEntry / metadataSets)
	}
	if t.cfg.Replacement != Hawkeye {
		return trainHint{} // LRU metadata replacement needs no predictor
	}
	return hint
}

// activeSizer returns the Dynamic-mode sizer, or a lazily created
// pinned OPTgen trainer (Static and Ladder modes need Hawkeye hints but
// make their size decisions elsewhere).
func (t *Triage) activeSizer() *sizer {
	if t.sizer != nil {
		return t.sizer
	}
	if t.cfg.Replacement != Hawkeye {
		return nil
	}
	if t.cfg.Mode != Static && t.cfg.Mode != DynamicLadder {
		return nil
	}
	if t.staticSizer == nil {
		size := t.cfg.StaticBytes
		if t.cfg.Mode == DynamicLadder {
			size = t.ladder.ladder[len(t.ladder.ladder)-1]
		}
		small := size / 2
		if small < metadataSets*bytesPerEntry {
			small = metadataSets * bytesPerEntry
		}
		t.staticSizer = newSizer(small, size, t.cfg.EpochAccesses)
		t.staticSizer.current = size // train at the real size
		t.staticSizer.pinned = true  // never re-decide
	}
	return t.staticSizer
}

// PrefetchOutcome implements prefetch.OutcomeObserver: the deferred
// predictor update fires only if the prefetch was useful (missed in
// cache); redundant prefetch reuse never trains the predictor (§3).
func (t *Triage) PrefetchOutcome(req prefetch.Request, missedCache bool) {
	p, ok := t.pending[req.Line]
	if !ok {
		return
	}
	delete(t.pending, req.Line)
	if !missedCache {
		t.redundant++
		return
	}
	t.usefulFeedback++
	t.notePredictor(p.hint)
	p.hint.apply(t.pred)
}
