package core

import (
	"strings"
	"testing"
)

func TestStoreCheckInvariants(t *testing.T) {
	s := newStore(8, false, nil)
	if err := s.checkInvariants(); err != nil {
		t.Fatalf("fresh store violates invariants: %v", err)
	}
	s.resize(4)
	if err := s.checkInvariants(); err != nil {
		t.Fatalf("shrunk store violates invariants: %v", err)
	}
	// A valid entry above the shrunk associativity means resize leaked
	// state that lookups must never see.
	s.trig[0*s.maxAssoc+6] = 3
	err := s.checkInvariants()
	if err == nil {
		t.Fatal("resize leak passed the invariant check")
	}
	if !strings.Contains(err.Error(), "resize leak") {
		t.Errorf("violation %q does not identify the leak", err)
	}
}

func TestTriageCheckInvariants(t *testing.T) {
	tr := New(Config{Mode: Static, StaticBytes: 512 << 10})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("fresh Triage violates invariants: %v", err)
	}
	// Desynchronize the store from the partition it is supposed to
	// mirror: the sweep must flag the capacity mismatch.
	tr.store.resize(tr.store.assoc / 2)
	err := tr.CheckInvariants()
	if err == nil {
		t.Fatal("store/partition capacity mismatch passed the invariant check")
	}
	if !strings.Contains(err.Error(), "partition wants") {
		t.Errorf("violation %q does not identify the capacity mismatch", err)
	}
}
