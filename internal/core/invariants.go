package core

import "fmt"

// checkInvariants verifies the metadata store's structural invariants:
// the associativity stays inside the allocated backing and no valid
// entry survives beyond the current associativity (resize invalidates
// shrunk ways, so residency there means a resize leaked state).
func (s *store) checkInvariants() error {
	if s.assoc < 0 || s.assoc > s.maxAssoc {
		return fmt.Errorf("triage store: assoc=%d of max %d", s.assoc, s.maxAssoc)
	}
	want := metadataSets * s.maxAssoc
	if len(s.trig) != want || len(s.nextSet) != want || len(s.nextTag) != want ||
		len(s.conf) != want || len(s.rrpv) != want || len(s.pc) != want || len(s.stamp) != want {
		return fmt.Errorf("triage store: backing arrays sized %d/%d/%d/%d/%d/%d/%d, want %d",
			len(s.trig), len(s.nextSet), len(s.nextTag), len(s.conf), len(s.rrpv), len(s.pc), len(s.stamp), want)
	}
	for i := 0; i < metadataSets; i++ {
		base := i * s.maxAssoc
		for w := s.assoc; w < s.maxAssoc; w++ {
			if s.trig[base+w] != invalidTrig {
				return fmt.Errorf("triage store: set %d way %d valid beyond assoc=%d (resize leak)",
					i, w, s.assoc)
			}
		}
	}
	return nil
}

// CheckInvariants verifies Triage's structural invariants: the
// training unit's LRU structure is intact, the metadata store holds no
// state beyond its current associativity, and — outside Unlimited
// mode — the store's capacity matches the LLC partition the
// prefetcher is asking for (resizes are applied synchronously at epoch
// end, so any divergence means the partition and the store are out of
// sync).
func (t *Triage) CheckInvariants() error {
	if err := t.tu.CheckInvariants(); err != nil {
		return fmt.Errorf("triage training unit: %w", err)
	}
	if t.store == nil {
		return nil
	}
	if err := t.store.checkInvariants(); err != nil {
		return err
	}
	if t.cfg.Mode != Unlimited {
		if got, want := t.store.capacityBytes(), t.DesiredMetadataBytes(); got != want {
			return fmt.Errorf("triage store: capacity %dB but partition wants %dB", got, want)
		}
	}
	if t.store.trackReuse && t.store.reuse != nil {
		if err := t.store.reuse.CheckInvariants(); err != nil {
			return fmt.Errorf("triage reuse map: %w", err)
		}
	}
	return nil
}
