package core

import (
	"repro/internal/mem"
	"repro/internal/replacement"
)

// dataUtility implements the paper's named future-work extension
// ("more sophisticated partitioning schemes that account for cache
// utility more accurately", §4.2 discussion of bzip2): alongside the
// metadata sandboxes, it runs OPTgen sandboxes over the *data* stream
// (the L2 misses that access the LLC) at three data capacities — the
// full LLC, the LLC minus the small store, and the LLC minus the large
// store — so the partitioner can weigh metadata hit-rate gains against
// the data hit-rate the partition destroys.
//
// Both streams are the same events (every Triage training event is an
// L2 miss that both probes the metadata store and accesses the LLC),
// so the two hit rates are directly comparable: one metadata hit is one
// covered miss, one lost data hit is one new miss.
type dataUtility struct {
	sampleMask int
	full       map[int]*replacement.OPTgen // LLC ways
	minusSmall map[int]*replacement.OPTgen // LLC ways - small partition
	minusLarge map[int]*replacement.OPTgen // LLC ways - large partition
	last       map[int]map[mem.Line]uint64
	lastCap    int

	fullWays, smallWays, largeWays int

	hitsFull, hitsMinusSmall, hitsMinusLarge uint64
	total                                    uint64
}

// llcUtilSets mirrors the LLC's per-core set view (2MB/16-way/64B).
const llcUtilSets = 2048

// newDataUtility returns a utility estimator for an LLC with fullWays
// per-core ways, of which the small/large metadata stores would claim
// smallWays/largeWays.
func newDataUtility(fullWays, smallWays, largeWays int) *dataUtility {
	if fullWays-largeWays < 1 {
		largeWays = fullWays - 1
	}
	if fullWays-smallWays < 1 {
		smallWays = fullWays - 1
	}
	return &dataUtility{
		sampleMask: 63,
		full:       make(map[int]*replacement.OPTgen),
		minusSmall: make(map[int]*replacement.OPTgen),
		minusLarge: make(map[int]*replacement.OPTgen),
		last:       make(map[int]map[mem.Line]uint64),
		lastCap:    2048,
		fullWays:   fullWays,
		smallWays:  smallWays,
		largeWays:  largeWays,
	}
}

// observe feeds one LLC access (an L2-miss line).
func (u *dataUtility) observe(l mem.Line) {
	set := int(uint64(l) & (llcUtilSets - 1))
	if set&u.sampleMask != 0 {
		return
	}
	f, ok := u.full[set]
	if !ok {
		f = replacement.NewOPTgen(u.fullWays)
		u.full[set] = f
		u.minusSmall[set] = replacement.NewOPTgen(u.fullWays - u.smallWays)
		u.minusLarge[set] = replacement.NewOPTgen(u.fullWays - u.largeWays)
		u.last[set] = make(map[mem.Line]uint64)
	}
	lastTimes := u.last[set]
	prev, seen := lastTimes[l]
	if f.Access(prev, seen) {
		u.hitsFull++
	}
	if u.minusSmall[set].Access(prev, seen) {
		u.hitsMinusSmall++
	}
	if u.minusLarge[set].Access(prev, seen) {
		u.hitsMinusLarge++
	}
	u.total++
	if len(lastTimes) >= u.lastCap {
		var oldest mem.Line
		oldestT := ^uint64(0)
		for line, t := range lastTimes {
			if t < oldestT {
				oldestT, oldest = t, line
			}
		}
		delete(lastTimes, oldest)
	}
	lastTimes[l] = f.Now() - 1
}

// lossAt returns the estimated data hit-rate loss of carving the
// small or large partition out of the LLC.
func (u *dataUtility) lossAt(large bool) float64 {
	if u.total == 0 {
		return 0
	}
	reduced := u.hitsMinusSmall
	if large {
		reduced = u.hitsMinusLarge
	}
	loss := float64(u.hitsFull) - float64(reduced)
	if loss < 0 {
		loss = 0
	}
	return loss / float64(u.total)
}

// missRateAt returns the estimated data miss rate of the LLC with the
// small or large partition carved out — the fraction of accesses whose
// prefetch would actually be useful rather than redundant.
func (u *dataUtility) missRateAt(large bool) float64 {
	if u.total == 0 {
		return 1
	}
	reduced := u.hitsMinusSmall
	if large {
		reduced = u.hitsMinusLarge
	}
	return 1 - float64(reduced)/float64(u.total)
}

// resetEpoch clears per-epoch counters.
func (u *dataUtility) resetEpoch() {
	u.hitsFull, u.hitsMinusSmall, u.hitsMinusLarge = 0, 0, 0
	u.total = 0
}

// recomputeUtility picks the partition maximizing net benefit. A
// metadata hit only helps when the demanded line would have missed the
// (reduced) LLC — prefetches for LLC-resident lines are redundant — so
// the usable benefit at a size is capped by the data miss rate at that
// size. The cost is the data hit rate the partition destroys. Both are
// rates over the same event stream, so they subtract directly.
func (z *sizer) recomputeUtility(u *dataUtility) {
	if z.total == 0 {
		z.current = 0
		return
	}
	hrSmall := float64(z.hitsSmall) / float64(z.total)
	hrLarge := float64(z.hitsLarge) / float64(z.total)
	benefitSmall := hrSmall
	if mr := u.missRateAt(false); mr < benefitSmall {
		benefitSmall = mr
	}
	benefitLarge := hrLarge
	if mr := u.missRateAt(true); mr < benefitLarge {
		benefitLarge = mr
	}
	netSmall := benefitSmall - u.lossAt(false)
	netLarge := benefitLarge - u.lossAt(true)
	best, bestNet := 0, 0.0
	if netSmall > bestNet+z.threshold {
		best, bestNet = z.smallBytes, netSmall
	}
	if netLarge > bestNet+z.threshold {
		best = z.largeBytes
	}
	z.current = best
}
