package core

import (
	"repro/internal/mem"
	"repro/internal/replacement"
)

// sizer implements Triage's dynamic metadata-store provisioning (§3,
// "Adjusting the Size of the Metadata Store"). Two OPTgen sandboxes
// model the *optimal* metadata hit rate at the two candidate sizes
// (512KB and 1MB); the optimal hit rate scales roughly linearly with
// capacity, so two points suffice. Every epoch (50K metadata accesses)
// the partition is re-evaluated:
//
//   - growing pays off if it raises the optimal hit rate by > 5%
//   - shrinking is safe if it lowers the optimal hit rate by < 5%
//
// The sandboxes observe the *hypothetical* metadata access stream, so
// they keep learning even while the real store is sized to zero.
type sizer struct {
	sampleMask int
	small      map[int]*replacement.OPTgen    // sampled set -> OPTgen @512KB assoc
	large      map[int]*replacement.OPTgen    // sampled set -> OPTgen @1MB assoc
	last       map[int]map[mem.Line]lastTouch // sampled set -> trigger -> last access
	lastCap    int

	smallAssoc int
	largeAssoc int

	epochLen  int
	accesses  int
	hitsSmall uint64
	hitsLarge uint64
	total     uint64

	threshold float64 // 5%

	current int // current choice in bytes

	smallBytes int
	largeBytes int

	// utility, when non-nil, switches partition decisions to the
	// utility-aware extension (see utility.go): net benefit =
	// metadata hit rate - data hit rate destroyed.
	utility *dataUtility

	// pinned freezes current (Static mode reuses the sizer purely as a
	// Hawkeye-OPTgen trainer; its size must never re-decide).
	pinned bool
}

// lastTouch records when and from which PC a sampled trigger was last
// accessed; the PC is the training target for Hawkeye's predictor.
type lastTouch struct {
	time uint64
	pc   uint64
}

func newSizer(smallBytes, largeBytes, epochLen int) *sizer {
	return &sizer{
		sampleMask: 63, // sample every 64th metadata set
		small:      make(map[int]*replacement.OPTgen),
		large:      make(map[int]*replacement.OPTgen),
		last:       make(map[int]map[mem.Line]lastTouch),
		lastCap:    2048,
		smallAssoc: smallBytes / bytesPerEntry / metadataSets,
		largeAssoc: largeBytes / bytesPerEntry / metadataSets,
		epochLen:   epochLen,
		threshold:  0.05,
		smallBytes: smallBytes,
		largeBytes: largeBytes,
	}
}

// trainHint is the deferred predictor-training decision produced by an
// OPTgen observation: whether OPT at the current size would have hit,
// and which PC to credit/blame. The paper delays applying it until the
// prefetch outcome is known; redundant prefetches drop it.
type trainHint struct {
	valid  bool
	optHit bool
	pc     uint64
}

// apply trains the predictor from the hint.
func (h trainHint) apply(pred *replacement.Predictor) {
	if !h.valid || pred == nil {
		return
	}
	if h.optHit {
		pred.TrainPositive(h.pc)
	} else {
		pred.TrainNegative(h.pc)
	}
}

// observe feeds one metadata access (for trigger line l) into the
// sandboxes and, at epoch boundaries, recomputes the partition choice.
// Every access is counted (the sizing OPTgens see the full metadata
// stream); the returned trainHint carries the *deferred* predictor
// update, which the caller applies immediately for metadata misses and
// only on useful outcomes for prefetch-generating hits.
func (z *sizer) observe(l mem.Line, pc uint64) (trainHint, bool) {
	set := storeSet(l)
	if set&z.sampleMask != 0 {
		z.accesses++
		return trainHint{}, z.maybeEndEpoch()
	}
	so, ok := z.small[set]
	if !ok {
		so = replacement.NewOPTgen(z.smallAssoc)
		z.small[set] = so
		z.large[set] = replacement.NewOPTgen(z.largeAssoc)
		z.last[set] = make(map[mem.Line]lastTouch)
	}
	lo := z.large[set]
	lastTimes := z.last[set]
	prev, seen := lastTimes[l]
	hitSmall := so.Access(prev.time, seen)
	hitLarge := lo.Access(prev.time, seen)
	if hitSmall {
		z.hitsSmall++
	}
	if hitLarge {
		z.hitsLarge++
	}
	z.total++
	var hint trainHint
	if seen {
		// Train against the sandbox matching the current provisioning
		// (the small sandbox when the store is off, so the predictor is
		// warm when the partition turns on).
		hit := hitSmall
		if z.current == z.largeBytes {
			hit = hitLarge
		}
		hint = trainHint{valid: true, optHit: hit, pc: prev.pc}
	}
	if len(lastTimes) >= z.lastCap {
		// Bound sampler state: drop the stalest tracked trigger.
		var oldest mem.Line
		oldestT := ^uint64(0)
		for line, t := range lastTimes {
			if t.time < oldestT {
				oldestT, oldest = t.time, line
			}
		}
		delete(lastTimes, oldest)
	}
	lastTimes[l] = lastTouch{time: so.Now() - 1, pc: pc}
	z.accesses++
	return hint, z.maybeEndEpoch()
}

func (z *sizer) maybeEndEpoch() bool {
	if z.accesses < z.epochLen {
		return false
	}
	switch {
	case z.pinned:
		// Static trainer: keep the configured size.
	case z.utility != nil:
		z.recomputeUtility(z.utility)
		z.utility.resetEpoch()
	default:
		z.recompute()
	}
	z.accesses = 0
	z.hitsSmall, z.hitsLarge, z.total = 0, 0, 0
	return true
}

// recompute applies the paper's asymmetric rules: grow when the larger
// configuration improves the optimal hit rate by more than the
// threshold; shrink only when the smaller configuration loses clearly
// less than the threshold. The deadband between the two prevents
// flapping (every shrink discards live metadata).
func (z *sizer) recompute() {
	if z.total == 0 {
		z.current = 0
		return
	}
	hrSmall := float64(z.hitsSmall) / float64(z.total)
	hrLarge := float64(z.hitsLarge) / float64(z.total)
	deltaLarge := hrLarge - hrSmall
	shrinkBand := z.threshold * 0.6
	switch z.current {
	case z.largeBytes:
		if deltaLarge < shrinkBand {
			if hrSmall > z.threshold {
				z.current = z.smallBytes
			} else if hrSmall < shrinkBand {
				z.current = 0
			}
		}
	case z.smallBytes:
		if deltaLarge > z.threshold {
			z.current = z.largeBytes
		} else if hrSmall < shrinkBand {
			z.current = 0
		}
	default: // off
		if deltaLarge > z.threshold {
			z.current = z.largeBytes
		} else if hrSmall > z.threshold {
			z.current = z.smallBytes
		}
	}
}

// desiredBytes returns the current partition choice.
func (z *sizer) desiredBytes() int { return z.current }
