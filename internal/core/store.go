package core

import (
	"repro/internal/flat"
	"repro/internal/mem"
	"repro/internal/replacement"
)

// metadataSets is the number of sets in Triage's metadata store. The
// paper indexes metadata by the trigger address's 11-bit set_id
// (§3.2), i.e. 2048 sets; entries within a set are packed 16-per-LLC-
// line and matched by compressed sub-tags.
const metadataSets = 2048

// bytesPerEntry is the paper's 4-byte metadata entry: compressed
// trigger tag (10b) + successor set_id (11b) + successor compressed tag
// (10b) + 1-bit confidence.
const bytesPerEntry = 4

// entry is one correlation record: trigger -> successor.
type entry struct {
	valid bool
	// trigTag is the compressed tag of the trigger line.
	trigTag uint32
	// nextSet and nextTag encode the successor line (set_id plus
	// compressed tag); decompression can fail if the tag table recycled
	// the id, modeling the information loss of a real 10-bit tag.
	nextSet uint32
	nextTag uint32
	// conf is the paper's 1-bit confidence counter: the successor is
	// replaced only after two consecutive disagreements.
	conf bool
	// rrpv and pc are the Hawkeye replacement state.
	rrpv uint8
	pc   uint64
	// stamp is the LRU timestamp (used when the store runs LRU).
	stamp uint64
}

const storeMaxRRPV = 7

// store is Triage's on-chip metadata table. Capacity is expressed in
// entries per set; the sets mirror the LLC's set decomposition so that
// each set maps onto metadata ways of the corresponding LLC sets.
type store struct {
	sets         [][]entry
	assoc        int // current entries per set
	maxAssoc     int
	useHawkeye   bool
	pred         *replacement.Predictor
	trigComp     *mem.TagCompressor
	nextComp     *mem.TagCompressor
	clock        uint64
	reuse        *flat.Map // per-trigger reuse counts (Fig 1)
	trackReuse   bool
	insertions   uint64
	replacements uint64
}

func newStore(maxAssoc int, useHawkeye bool, pred *replacement.Predictor) *store {
	s := &store{
		sets:       make([][]entry, metadataSets),
		assoc:      maxAssoc,
		maxAssoc:   maxAssoc,
		useHawkeye: useHawkeye,
		pred:       pred,
		trigComp:   mem.NewTagCompressor(10),
		nextComp:   mem.NewTagCompressor(10),
	}
	for i := range s.sets {
		s.sets[i] = make([]entry, maxAssoc)
	}
	return s
}

func storeSet(l mem.Line) int      { return int(uint64(l) & (metadataSets - 1)) }
func storeTagOf(l mem.Line) uint64 { return uint64(l) >> 11 }

// resize changes the per-set associativity; shrinking invalidates
// entries in the removed ways (the paper marks them invalid
// immediately).
func (s *store) resize(assoc int) {
	if assoc > s.maxAssoc {
		assoc = s.maxAssoc
	}
	if assoc < 0 {
		assoc = 0
	}
	if assoc < s.assoc {
		for i := range s.sets {
			for w := assoc; w < s.assoc; w++ {
				s.sets[i][w].valid = false
			}
		}
	}
	s.assoc = assoc
}

// capacityBytes returns the store's current capacity.
func (s *store) capacityBytes() int { return s.assoc * metadataSets * bytesPerEntry }

// lookup finds the successor of trigger line l. It returns the
// successor and the way index; ok is false on a metadata miss (or if
// the compressed successor tag was recycled).
func (s *store) lookup(l mem.Line) (next mem.Line, way int, ok bool) {
	if s.assoc == 0 {
		return 0, -1, false
	}
	tag, okTag := s.trigComp.Lookup(storeTagOf(l))
	if !okTag {
		return 0, -1, false
	}
	set := s.sets[storeSet(l)]
	for w := 0; w < s.assoc; w++ {
		e := &set[w]
		if !e.valid || e.trigTag != tag {
			continue
		}
		full, okNext := s.nextComp.Decompress(e.nextTag)
		if !okNext {
			// Successor tag recycled: the entry is stale.
			e.valid = false
			return 0, -1, false
		}
		if s.trackReuse {
			n, _ := s.reuse.Get(uint64(l))
			s.reuse.Set(uint64(l), n+1)
		}
		return mem.Line(full<<11 | uint64(e.nextSet)), w, true
	}
	return 0, -1, false
}

// promote updates replacement state for a useful access to (setIdx, way).
func (s *store) promote(l mem.Line, way int, pc uint64) {
	if way < 0 || way >= s.assoc {
		return
	}
	e := &s.sets[storeSet(l)][way]
	s.clock++
	e.stamp = s.clock
	e.pc = pc
	if s.useHawkeye {
		if s.pred.Friendly(pc) {
			e.rrpv = 0
		} else {
			e.rrpv = storeMaxRRPV
		}
	}
}

// insert records the correlation l -> next under the 1-bit confidence
// policy: an existing entry's successor changes only after two
// consecutive disagreements. It reports whether an update occurred and
// whether an existing entry was replaced (capacity eviction).
func (s *store) insert(l, next mem.Line, pc uint64) {
	if s.assoc == 0 {
		return
	}
	setIdx := storeSet(l)
	set := s.sets[setIdx]
	trigTag := s.trigComp.Compress(storeTagOf(l))
	nextTag := s.nextComp.Compress(storeTagOf(next))
	nextSet := uint32(storeSet(next))

	for w := 0; w < s.assoc; w++ {
		e := &set[w]
		if !e.valid || e.trigTag != trigTag {
			continue
		}
		if e.nextTag == nextTag && e.nextSet == nextSet {
			e.conf = true
		} else if e.conf {
			e.conf = false
		} else {
			e.nextTag, e.nextSet = nextTag, nextSet
			e.conf = true
		}
		s.touchOnInsert(e, pc)
		return
	}

	// Miss: allocate a way.
	w := s.victim(setIdx, pc)
	e := &set[w]
	if e.valid {
		s.replacements++
		if s.useHawkeye && e.rrpv < storeMaxRRPV {
			// Evicting a metadata entry predicted useful detrains the
			// PC that last touched it (Hawkeye's eviction feedback).
			s.pred.TrainNegative(e.pc)
		}
	}
	s.insertions++
	*e = entry{valid: true, trigTag: trigTag, nextSet: nextSet, nextTag: nextTag, conf: true}
	s.touchOnInsert(e, pc)
	if s.trackReuse && s.reuse != nil {
		if _, seen := s.reuse.Get(uint64(l)); !seen {
			s.reuse.Set(uint64(l), 0)
		}
	}
}

func (s *store) touchOnInsert(e *entry, pc uint64) {
	s.clock++
	e.stamp = s.clock
	e.pc = pc
	if s.useHawkeye {
		if s.pred.Friendly(pc) {
			e.rrpv = 0
		} else {
			e.rrpv = storeMaxRRPV
		}
	}
}

// victim picks a way to replace in setIdx.
func (s *store) victim(setIdx int, _ uint64) int {
	set := s.sets[setIdx]
	for w := 0; w < s.assoc; w++ {
		if !set[w].valid {
			return w
		}
	}
	if !s.useHawkeye {
		// LRU
		victim, oldest := 0, ^uint64(0)
		for w := 0; w < s.assoc; w++ {
			if set[w].stamp < oldest {
				oldest, victim = set[w].stamp, w
			}
		}
		return victim
	}
	// Hawkeye: evict an averse entry (RRPV==max), else the oldest
	// friendly one.
	for w := 0; w < s.assoc; w++ {
		if set[w].rrpv == storeMaxRRPV {
			return w
		}
	}
	victim, maxRRPV := 0, -1
	for w := 0; w < s.assoc; w++ {
		if int(set[w].rrpv) > maxRRPV {
			maxRRPV, victim = int(set[w].rrpv), w
		}
	}
	// Age friendly entries so they form an insertion order.
	for w := 0; w < s.assoc; w++ {
		if w != victim && set[w].rrpv < storeMaxRRPV-1 {
			set[w].rrpv++
		}
	}
	return victim
}

// enableReuseTracking turns on per-trigger reuse counting (Fig 1).
func (s *store) enableReuseTracking() {
	s.trackReuse = true
	s.reuse = flat.NewMap(0)
}

// occupancy counts valid entries (tests).
func (s *store) occupancy() int {
	n := 0
	for i := range s.sets {
		for w := 0; w < s.assoc; w++ {
			if s.sets[i][w].valid {
				n++
			}
		}
	}
	return n
}
