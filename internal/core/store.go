package core

import (
	"repro/internal/flat"
	"repro/internal/mem"
	"repro/internal/replacement"
)

// metadataSets is the number of sets in Triage's metadata store. The
// paper indexes metadata by the trigger address's 11-bit set_id
// (§3.2), i.e. 2048 sets; entries within a set are packed 16-per-LLC-
// line and matched by compressed sub-tags.
const metadataSets = 2048

// bytesPerEntry is the paper's 4-byte metadata entry: compressed
// trigger tag (10b) + successor set_id (11b) + successor compressed tag
// (10b) + 1-bit confidence.
const bytesPerEntry = 4

// invalidTrig marks an empty way in the trigger-tag array. Real
// compressed tags are at most 31 bits wide, far below 2^32-1, so the
// residency scan needs no separate valid flag.
const invalidTrig = ^uint32(0)

const storeMaxRRPV = 7

// store is Triage's on-chip metadata table. Capacity is expressed in
// entries per set; the sets mirror the LLC's set decomposition so that
// each set maps onto metadata ways of the corresponding LLC sets.
//
// Layout: per-way state lives in parallel flat arrays indexed
// set*maxAssoc + way (struct-of-arrays). The lookup scan — the hottest
// loop of a Triage run — touches only the 4-byte trigger-tag array,
// with empty ways holding the invalidTrig sentinel.
type store struct {
	// Parallel per-way state, indexed set*maxAssoc + way.
	trig    []uint32 // compressed trigger tag; invalidTrig when empty
	nextSet []uint32 // successor set_id
	nextTag []uint32 // successor compressed tag
	conf    []bool   // 1-bit confidence: replace only after two misses
	rrpv    []uint8  // Hawkeye replacement state
	pc      []uint64 // PC that last touched the entry (Hawkeye)
	stamp   []uint64 // LRU timestamp (used when the store runs LRU)

	assoc        int // current entries per set
	maxAssoc     int
	useHawkeye   bool
	pred         *replacement.Predictor
	trigComp     *mem.TagCompressor
	nextComp     *mem.TagCompressor
	clock        uint64
	reuse        *flat.Map // per-trigger reuse counts (Fig 1)
	trackReuse   bool
	insertions   uint64
	replacements uint64
}

func newStore(maxAssoc int, useHawkeye bool, pred *replacement.Predictor) *store {
	n := metadataSets * maxAssoc
	s := &store{
		trig:       make([]uint32, n),
		nextSet:    make([]uint32, n),
		nextTag:    make([]uint32, n),
		conf:       make([]bool, n),
		rrpv:       make([]uint8, n),
		pc:         make([]uint64, n),
		stamp:      make([]uint64, n),
		assoc:      maxAssoc,
		maxAssoc:   maxAssoc,
		useHawkeye: useHawkeye,
		pred:       pred,
		trigComp:   mem.NewTagCompressor(10),
		nextComp:   mem.NewTagCompressor(10),
	}
	for i := range s.trig {
		s.trig[i] = invalidTrig
	}
	return s
}

func storeSet(l mem.Line) int      { return int(uint64(l) & (metadataSets - 1)) }
func storeTagOf(l mem.Line) uint64 { return uint64(l) >> 11 }

// resize changes the per-set associativity; shrinking invalidates
// entries in the removed ways (the paper marks them invalid
// immediately).
func (s *store) resize(assoc int) {
	if assoc > s.maxAssoc {
		assoc = s.maxAssoc
	}
	if assoc < 0 {
		assoc = 0
	}
	if assoc < s.assoc {
		for i := 0; i < metadataSets; i++ {
			base := i * s.maxAssoc
			for w := assoc; w < s.assoc; w++ {
				s.trig[base+w] = invalidTrig
			}
		}
	}
	s.assoc = assoc
}

// capacityBytes returns the store's current capacity.
func (s *store) capacityBytes() int { return s.assoc * metadataSets * bytesPerEntry }

// lookup finds the successor of trigger line l. It returns the
// successor and the way index; ok is false on a metadata miss (or if
// the compressed successor tag was recycled).
func (s *store) lookup(l mem.Line) (next mem.Line, way int, ok bool) {
	if s.assoc == 0 {
		return 0, -1, false
	}
	tag, okTag := s.trigComp.Lookup(storeTagOf(l))
	if !okTag {
		return 0, -1, false
	}
	base := storeSet(l) * s.maxAssoc
	trig := s.trig[base : base+s.assoc]
	for w := range trig {
		if trig[w] != tag {
			continue
		}
		i := base + w
		full, okNext := s.nextComp.Decompress(s.nextTag[i])
		if !okNext {
			// Successor tag recycled: the entry is stale.
			s.trig[i] = invalidTrig
			return 0, -1, false
		}
		if s.trackReuse {
			n, _ := s.reuse.Get(uint64(l))
			s.reuse.Set(uint64(l), n+1)
		}
		return mem.Line(full<<11 | uint64(s.nextSet[i])), w, true
	}
	return 0, -1, false
}

// promote updates replacement state for a useful access to (setIdx, way).
func (s *store) promote(l mem.Line, way int, pc uint64) {
	if way < 0 || way >= s.assoc {
		return
	}
	i := storeSet(l)*s.maxAssoc + way
	s.clock++
	s.stamp[i] = s.clock
	s.pc[i] = pc
	if s.useHawkeye {
		if s.pred.Friendly(pc) {
			s.rrpv[i] = 0
		} else {
			s.rrpv[i] = storeMaxRRPV
		}
	}
}

// insert records the correlation l -> next under the 1-bit confidence
// policy: an existing entry's successor changes only after two
// consecutive disagreements. It reports whether an update occurred and
// whether an existing entry was replaced (capacity eviction).
func (s *store) insert(l, next mem.Line, pc uint64) {
	if s.assoc == 0 {
		return
	}
	setIdx := storeSet(l)
	base := setIdx * s.maxAssoc
	trigTag := s.trigComp.Compress(storeTagOf(l))
	nextTag := s.nextComp.Compress(storeTagOf(next))
	nextSet := uint32(storeSet(next))

	trig := s.trig[base : base+s.assoc]
	for w := range trig {
		if trig[w] != trigTag {
			continue
		}
		i := base + w
		if s.nextTag[i] == nextTag && s.nextSet[i] == nextSet {
			s.conf[i] = true
		} else if s.conf[i] {
			s.conf[i] = false
		} else {
			s.nextTag[i], s.nextSet[i] = nextTag, nextSet
			s.conf[i] = true
		}
		s.touchOnInsert(i, pc)
		return
	}

	// Miss: allocate a way.
	w := s.victim(setIdx, pc)
	i := base + w
	if s.trig[i] != invalidTrig {
		s.replacements++
		if s.useHawkeye && s.rrpv[i] < storeMaxRRPV {
			// Evicting a metadata entry predicted useful detrains the
			// PC that last touched it (Hawkeye's eviction feedback).
			s.pred.TrainNegative(s.pc[i])
		}
	}
	s.insertions++
	s.trig[i] = trigTag
	s.nextSet[i] = nextSet
	s.nextTag[i] = nextTag
	s.conf[i] = true
	s.rrpv[i] = 0
	s.touchOnInsert(i, pc)
	if s.trackReuse && s.reuse != nil {
		if _, seen := s.reuse.Get(uint64(l)); !seen {
			s.reuse.Set(uint64(l), 0)
		}
	}
}

func (s *store) touchOnInsert(i int, pc uint64) {
	s.clock++
	s.stamp[i] = s.clock
	s.pc[i] = pc
	if s.useHawkeye {
		if s.pred.Friendly(pc) {
			s.rrpv[i] = 0
		} else {
			s.rrpv[i] = storeMaxRRPV
		}
	}
}

// victim picks a way to replace in setIdx.
func (s *store) victim(setIdx int, _ uint64) int {
	base := setIdx * s.maxAssoc
	trig := s.trig[base : base+s.assoc]
	for w := range trig {
		if trig[w] == invalidTrig {
			return w
		}
	}
	if !s.useHawkeye {
		// LRU
		victim, oldest := 0, ^uint64(0)
		for w := 0; w < s.assoc; w++ {
			if s.stamp[base+w] < oldest {
				oldest, victim = s.stamp[base+w], w
			}
		}
		return victim
	}
	// Hawkeye: evict an averse entry (RRPV==max), else the oldest
	// friendly one.
	for w := 0; w < s.assoc; w++ {
		if s.rrpv[base+w] == storeMaxRRPV {
			return w
		}
	}
	victim, maxRRPV := 0, -1
	for w := 0; w < s.assoc; w++ {
		if int(s.rrpv[base+w]) > maxRRPV {
			maxRRPV, victim = int(s.rrpv[base+w]), w
		}
	}
	// Age friendly entries so they form an insertion order.
	for w := 0; w < s.assoc; w++ {
		if w != victim && s.rrpv[base+w] < storeMaxRRPV-1 {
			s.rrpv[base+w]++
		}
	}
	return victim
}

// enableReuseTracking turns on per-trigger reuse counting (Fig 1).
func (s *store) enableReuseTracking() {
	s.trackReuse = true
	s.reuse = flat.NewMap(0)
}

// occupancy counts valid entries (tests).
func (s *store) occupancy() int {
	n := 0
	for i := 0; i < metadataSets; i++ {
		base := i * s.maxAssoc
		for w := 0; w < s.assoc; w++ {
			if s.trig[base+w] != invalidTrig {
				n++
			}
		}
	}
	return n
}
