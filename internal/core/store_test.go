package core

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/replacement"
)

func newTestStore(assoc int, hawkeye bool) *store {
	return newStore(assoc, hawkeye, replacement.NewPredictor(10))
}

func TestStoreInsertLookupRoundTrip(t *testing.T) {
	s := newTestStore(4, false)
	s.insert(100, 9999, 1)
	next, way, ok := s.lookup(100)
	if !ok || next != 9999 {
		t.Fatalf("lookup = %d,%v want 9999,true", next, ok)
	}
	if way < 0 || way >= 4 {
		t.Errorf("way = %d out of range", way)
	}
}

func TestStoreSetIndexing(t *testing.T) {
	// Lines 2048 apart share a set; others don't collide at assoc 1.
	s := newTestStore(1, false)
	s.insert(5, 10, 1)
	s.insert(5+metadataSets, 20, 1) // same set, displaces under assoc 1
	if _, _, ok := s.lookup(5); ok {
		t.Error("entry for 5 survived a same-set displacement at assoc 1")
	}
	if next, _, ok := s.lookup(5 + metadataSets); !ok || next != 20 {
		t.Error("displacing entry missing")
	}
	// A different set is unaffected.
	s.insert(6, 30, 1)
	if _, _, ok := s.lookup(5 + metadataSets); !ok {
		t.Error("insert to another set displaced set 5's entry")
	}
}

func TestStoreConfidenceFlip(t *testing.T) {
	s := newTestStore(4, false)
	s.insert(7, 100, 1) // conf=true
	s.insert(7, 200, 1) // disagreement: conf=false, successor kept
	if next, _, _ := s.lookup(7); next != 100 {
		t.Errorf("successor flipped after one disagreement: %d", next)
	}
	s.insert(7, 200, 1) // second disagreement: replace
	if next, _, _ := s.lookup(7); next != 200 {
		t.Errorf("successor not replaced after two disagreements: %d", next)
	}
	s.insert(7, 100, 1) // one disagreement again
	s.insert(7, 200, 1) // re-agreement resets confidence
	if next, _, _ := s.lookup(7); next != 200 {
		t.Errorf("successor lost after re-agreement: %d", next)
	}
}

func TestStoreResizeShrinkInvalidates(t *testing.T) {
	s := newTestStore(4, false)
	// Fill 4 ways of set 0.
	for i := 0; i < 4; i++ {
		s.insert(mem.Line(i*metadataSets), mem.Line(1000+i), 1)
	}
	if s.occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", s.occupancy())
	}
	s.resize(2)
	if s.occupancy() > 2 {
		t.Errorf("occupancy after shrink = %d, want <= 2", s.occupancy())
	}
	if s.capacityBytes() != 2*metadataSets*bytesPerEntry {
		t.Errorf("capacityBytes = %d", s.capacityBytes())
	}
	// Growing back does not resurrect entries.
	s.resize(4)
	if s.occupancy() > 2 {
		t.Error("grow resurrected invalidated entries")
	}
}

func TestStoreResizeClamps(t *testing.T) {
	s := newTestStore(4, false)
	s.resize(100)
	if s.assoc != 4 {
		t.Errorf("assoc = %d, want clamped to 4", s.assoc)
	}
	s.resize(-1)
	if s.assoc != 0 {
		t.Errorf("assoc = %d, want clamped to 0", s.assoc)
	}
	if _, _, ok := s.lookup(1); ok {
		t.Error("lookup succeeded on a zero-size store")
	}
	s.insert(1, 2, 3) // must not panic
}

func TestStoreHawkeyeProtectsFriendlyEntries(t *testing.T) {
	pred := replacement.NewPredictor(10)
	s := newStore(2, true, pred)
	friendly, averse := uint64(0xF0), uint64(0xA0)
	for i := 0; i < 8; i++ {
		pred.TrainPositive(friendly)
		pred.TrainNegative(averse)
	}
	// Two friendly entries fill set 0.
	s.insert(0, 100, friendly)
	s.insert(mem.Line(metadataSets), 200, friendly)
	// An averse insert must not displace... it has to displace something
	// (capacity), but a subsequent friendly re-insert should displace
	// the averse entry, not the surviving friendly one.
	s.insert(mem.Line(2*metadataSets), 300, averse)
	s.insert(mem.Line(3*metadataSets), 400, friendly)
	if _, _, ok := s.lookup(mem.Line(2 * metadataSets)); ok {
		t.Error("averse entry survived while friendly entries were displaced")
	}
}

func TestStoreOccupancyBoundProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		s := newTestStore(2, true)
		for _, op := range ops {
			l := mem.Line(op % 8192)
			switch op % 3 {
			case 0:
				s.insert(l, l+1, uint64(op%5))
			case 1:
				s.lookup(l)
			default:
				if next, way, ok := s.lookup(l); ok {
					s.promote(l, way, uint64(op%5))
					_ = next
				}
			}
		}
		return s.occupancy() <= 2*metadataSets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStoreReuseTracking(t *testing.T) {
	s := newTestStore(4, false)
	s.enableReuseTracking()
	s.insert(1, 2, 1)
	for i := 0; i < 3; i++ {
		s.lookup(1)
	}
	if got, _ := s.reuse.Get(1); got != 3 {
		t.Errorf("reuse[1] = %d, want 3", got)
	}
}

func TestStoreCompressedTagRecycling(t *testing.T) {
	// Exhaust the 10-bit successor-tag table. Entries holding recycled
	// ids either fail lookup (id invalidated) or resolve to the id's
	// NEW tag — a silent misprediction, exactly what cheap hardware
	// does; the prefetch is then simply inaccurate. The test pins down
	// that (a) recycling happens and (b) the store never panics or
	// corrupts unrelated entries.
	s := newTestStore(1, false)
	first := mem.Line(0)
	s.insert(first, mem.Line(42<<11), 1) // successor tag 42
	for i := 1; i <= 1100; i++ {
		// Different sets, all-new successor tags exhaust the compressor.
		s.insert(mem.Line(i), mem.Line(uint64(1000+i)<<11), 1)
	}
	if s.nextComp.Recycled() == 0 {
		t.Fatal("compressor never recycled despite 1100 distinct tags in a 1024-slot table")
	}
	// A recently inserted entry (its tag is fresh) must still resolve
	// correctly.
	if next, _, ok := s.lookup(mem.Line(1100)); !ok || next != mem.Line(uint64(1000+1100)<<11) {
		t.Errorf("fresh entry corrupted: %d, %v", next, ok)
	}
	// The stale entry may miss or mispredict, but must not panic.
	s.lookup(first)
}
