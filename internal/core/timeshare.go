package core

import (
	"repro/internal/mem"
	"repro/internal/replacement"
)

// timeShareSizer implements the paper's §3 extension sketch: "our
// scheme can be extended to any number of partitioning configurations
// by time-sharing the OPTgen copies to evaluate different metadata
// store sizes." Two physical OPTgen sandboxes rotate through a ladder
// of candidate sizes: each epoch they model one adjacent pair
// (ladder[i], ladder[i+1]); the decision walks the ladder using the
// same 5% marginal-gain rule, one rung per epoch.
//
// Hardware cost stays the paper's 2x1KB; convergence takes O(len
// ladder) epochs instead of one — exactly the trade the paper implies.
// A second cost of time-sharing: sandbox state is discarded when the
// window moves (rearm), so reuse intervals longer than one epoch are
// invisible to the estimator. Epochs must comfortably exceed the
// workload's metadata reuse distance.
type timeShareSizer struct {
	ladder []int // candidate sizes in bytes, ascending, ladder[0] >= 8KB
	pair   int   // index i: currently modeling ladder[i] vs ladder[i+1]

	sampleMask int
	small      map[int]*replacement.OPTgen
	large      map[int]*replacement.OPTgen
	last       map[int]map[mem.Line]uint64
	lastCap    int

	epochLen  int
	accesses  int
	hitsSmall uint64
	hitsLarge uint64
	total     uint64

	threshold float64
	current   int // chosen size in bytes (one of ladder or 0)
}

// newTimeShareSizer returns a sizer over the given ascending ladder of
// candidate store sizes.
func newTimeShareSizer(ladder []int, epochLen int) *timeShareSizer {
	if len(ladder) < 2 {
		panic("triage: time-share ladder needs >= 2 sizes")
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			panic("triage: time-share ladder must be ascending")
		}
	}
	return &timeShareSizer{
		ladder:     ladder,
		sampleMask: 63,
		epochLen:   epochLen,
		threshold:  0.05,
		lastCap:    2048,
	}
}

func (z *timeShareSizer) assocOf(bytes int) int {
	a := bytes / bytesPerEntry / metadataSets
	if a < 1 {
		a = 1
	}
	return a
}

// rearm points the sandboxes at the current ladder pair, discarding the
// previous pair's occupancy state (the cost of time-sharing).
func (z *timeShareSizer) rearm() {
	z.small = make(map[int]*replacement.OPTgen)
	z.large = make(map[int]*replacement.OPTgen)
	z.last = make(map[int]map[mem.Line]uint64)
	z.hitsSmall, z.hitsLarge, z.total = 0, 0, 0
}

// observe feeds one metadata access; at epoch boundaries it walks the
// ladder one rung and re-arms. It reports whether the choice changed.
func (z *timeShareSizer) observe(l mem.Line) bool {
	if z.small == nil {
		z.rearm()
	}
	set := storeSet(l)
	if set&z.sampleMask == 0 {
		so, ok := z.small[set]
		if !ok {
			so = replacement.NewOPTgen(z.assocOf(z.ladder[z.pair]))
			z.small[set] = so
			z.large[set] = replacement.NewOPTgen(z.assocOf(z.ladder[z.pair+1]))
			z.last[set] = make(map[mem.Line]uint64)
		}
		lastTimes := z.last[set]
		prev, seen := lastTimes[l]
		if so.Access(prev, seen) {
			z.hitsSmall++
		}
		if z.large[set].Access(prev, seen) {
			z.hitsLarge++
		}
		z.total++
		if len(lastTimes) >= z.lastCap {
			var oldest mem.Line
			oldestT := ^uint64(0)
			for line, t := range lastTimes {
				if t < oldestT {
					oldestT, oldest = t, line
				}
			}
			delete(lastTimes, oldest)
		}
		lastTimes[l] = so.Now() - 1
	}
	z.accesses++
	if z.accesses < z.epochLen {
		return false
	}
	z.accesses = 0
	return z.step()
}

// step applies the marginal-gain rule to the modeled pair and moves the
// evaluation window along the ladder.
func (z *timeShareSizer) step() bool {
	prev := z.current
	if z.total > 0 {
		hrSmall := float64(z.hitsSmall) / float64(z.total)
		hrLarge := float64(z.hitsLarge) / float64(z.total)
		lo, hi := z.ladder[z.pair], z.ladder[z.pair+1]
		switch {
		case hrLarge-hrSmall > z.threshold:
			// The larger of the modeled pair pays: adopt it and move the
			// window up to probe even larger sizes next.
			z.current = hi
			if z.pair < len(z.ladder)-2 {
				z.pair++
			}
		case hrSmall > z.threshold:
			// The smaller size suffices: adopt it and probe downward.
			z.current = lo
			if z.pair > 0 {
				z.pair--
			}
		default:
			// Not even the smaller size earns its keep at this rung:
			// turn the store off and fall to the bottom of the ladder.
			z.current = 0
			z.pair = 0
		}
	}
	z.rearm()
	return z.current != prev
}

// desiredBytes returns the current choice.
func (z *timeShareSizer) desiredBytes() int { return z.current }
