package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func miss(pc uint64, line mem.Line) prefetch.Event {
	return prefetch.Event{PC: pc, Line: line, Miss: true}
}

func feed(t *Triage, pc uint64, seq []mem.Line) []prefetch.Request {
	var last []prefetch.Request
	for _, l := range seq {
		last = t.Train(miss(pc, l))
	}
	return last
}

func newStatic1MB() *Triage {
	return New(Config{Mode: Static, StaticBytes: 1 << 20, LLCLatencyTicks: 80})
}

func TestLearnsCorrelatedPair(t *testing.T) {
	tr := newStatic1MB()
	feed(tr, 1, []mem.Line{100, 9999})
	reqs := tr.Train(miss(1, 100))
	if len(reqs) != 1 || reqs[0].Line != 9999 {
		t.Fatalf("got %v, want prefetch of 9999", reqs)
	}
	if reqs[0].IssueDelay != 80 {
		t.Errorf("IssueDelay = %d, want one LLC latency (80)", reqs[0].IssueDelay)
	}
}

func TestPCLocalization(t *testing.T) {
	tr := newStatic1MB()
	// Interleaved streams: correlations must be per-PC.
	for i := 0; i < 4; i++ {
		tr.Train(miss(0xA, mem.Line(100+i)))
		tr.Train(miss(0xB, mem.Line(5000+i)))
	}
	reqs := tr.Train(miss(0xA, 100))
	if len(reqs) != 1 || reqs[0].Line != 101 {
		t.Errorf("PC A successor of 100 = %v, want 101", reqs)
	}
	reqs = tr.Train(miss(0xB, 5000))
	if len(reqs) != 1 || reqs[0].Line != 5001 {
		t.Errorf("PC B successor of 5000 = %v, want 5001", reqs)
	}
}

func TestConfidenceGuardsAgainstNoise(t *testing.T) {
	tr := newStatic1MB()
	feed(tr, 1, []mem.Line{10, 20}) // learn 10 -> 20
	// One noisy observation (10 -> 77) must NOT flip the entry...
	feed(tr, 1, []mem.Line{10, 77})
	reqs := tr.Train(miss(1, 10))
	if len(reqs) != 1 || reqs[0].Line != 20 {
		t.Fatalf("after one disagreement: %v, want still 20", reqs)
	}
	// ...but the trigger access above re-armed the pair (10 -> 20), so
	// drive two consecutive disagreements now.
	feed(tr, 1, []mem.Line{10, 77, 10, 77})
	reqs = tr.Train(miss(1, 10))
	if len(reqs) != 1 || reqs[0].Line != 77 {
		t.Errorf("after two disagreements: %v, want 77", reqs)
	}
}

func TestDegreeChainsLookups(t *testing.T) {
	tr := newStatic1MB()
	tr.SetDegree(3)
	feed(tr, 1, []mem.Line{1, 2, 3, 4, 5})
	reqs := tr.Train(miss(1, 1))
	if len(reqs) != 3 {
		t.Fatalf("degree 3: got %d requests (%v)", len(reqs), reqs)
	}
	for k, want := range []mem.Line{2, 3, 4} {
		if reqs[k].Line != want {
			t.Errorf("request %d = %d, want %d", k, reqs[k].Line, want)
		}
		wantDelay := uint64(80 * (k + 1))
		if reqs[k].IssueDelay != wantDelay {
			t.Errorf("request %d delay = %d, want %d (chained LLC lookups)", k, reqs[k].IssueDelay, wantDelay)
		}
	}
}

func TestIgnoresNonMissEvents(t *testing.T) {
	tr := newStatic1MB()
	if reqs := tr.Train(prefetch.Event{PC: 1, Line: 5}); reqs != nil {
		t.Error("plain L2 hit trained the prefetcher")
	}
}

func TestTrainsOnPrefetchHits(t *testing.T) {
	tr := newStatic1MB()
	tr.Train(prefetch.Event{PC: 1, Line: 10, PrefetchHit: true})
	tr.Train(prefetch.Event{PC: 1, Line: 20, PrefetchHit: true})
	reqs := tr.Train(miss(1, 10))
	if len(reqs) != 1 || reqs[0].Line != 20 {
		t.Errorf("prefetch hits did not train: %v", reqs)
	}
}

func TestCapacityEvictionAtSmallStore(t *testing.T) {
	// Smallest legal store: 8KB = 1 entry per set. Distinct triggers
	// mapping to the same set must displace each other.
	tr := New(Config{Mode: Static, StaticBytes: metadataSets * bytesPerEntry})
	feed(tr, 1, []mem.Line{0, 100})    // entry for trigger 0 (set 0)
	feed(tr, 1, []mem.Line{2048, 300}) // trigger 2048 also maps to set 0
	if reqs := tr.Train(miss(1, 2048)); len(reqs) != 1 || reqs[0].Line != 300 {
		t.Fatalf("new entry missing: %v", reqs)
	}
	if reqs := tr.Train(miss(1, 0)); len(reqs) != 0 {
		t.Errorf("evicted entry still present: %v", reqs)
	}
	if tr.store.occupancy() > metadataSets {
		t.Errorf("occupancy %d exceeds capacity %d", tr.store.occupancy(), metadataSets)
	}
}

func TestMetadataAccessCounting(t *testing.T) {
	tr := newStatic1MB()
	feed(tr, 1, []mem.Line{1, 2, 3})
	if tr.MetadataAccesses() == 0 {
		t.Error("no metadata accesses counted")
	}
}

func TestUnlimitedModeClaimsNoLLC(t *testing.T) {
	tr := New(Config{Mode: Unlimited})
	feed(tr, 1, []mem.Line{7, 8, 9})
	if tr.DesiredMetadataBytes() != 0 {
		t.Errorf("Unlimited mode wants %d LLC bytes, want 0", tr.DesiredMetadataBytes())
	}
	reqs := tr.Train(miss(1, 7))
	if len(reqs) != 1 || reqs[0].Line != 8 {
		t.Errorf("unlimited store lookup failed: %v", reqs)
	}
}

func TestUnlimitedReuseCounts(t *testing.T) {
	tr := New(Config{Mode: Unlimited})
	feed(tr, 1, []mem.Line{1, 2})
	for i := 0; i < 5; i++ {
		tr.Train(miss(1, 1)) // 5 reuses of entry (1 -> 2); also rebinds TU
		tr.Train(miss(1, 2))
	}
	counts := tr.ReuseCounts()
	var max uint64
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 5 {
		t.Errorf("max reuse count = %d, want >= 5", max)
	}
}

func TestStaticDesiredBytes(t *testing.T) {
	tr := New(Config{Mode: Static, StaticBytes: 512 << 10})
	if got := tr.DesiredMetadataBytes(); got != 512<<10 {
		t.Errorf("DesiredMetadataBytes = %d, want 512KB", got)
	}
	if tr.Name() != "triage-512KB" {
		t.Errorf("Name = %q", tr.Name())
	}
}

func TestDynamicStartsAtZero(t *testing.T) {
	tr := New(Config{Mode: Dynamic})
	if got := tr.DesiredMetadataBytes(); got != 0 {
		t.Errorf("initial desire = %d, want 0", got)
	}
	if tr.Name() != "triage-dynamic" {
		t.Errorf("Name = %q", tr.Name())
	}
}

// TestDynamicGrowsOnReuse drives a workload whose metadata is heavily
// reused: after an epoch the partitioner must provision a store.
func TestDynamicGrowsOnReuse(t *testing.T) {
	tr := New(Config{Mode: Dynamic, EpochAccesses: 2000})
	// Ring of 1000 lines spread across sets, traversed repeatedly by
	// one PC: metadata entries are reused every lap.
	ring := make([]mem.Line, 1000)
	for i := range ring {
		ring[i] = mem.Line(i * 17)
	}
	for lap := 0; lap < 10; lap++ {
		feed(tr, 1, ring)
	}
	if got := tr.DesiredMetadataBytes(); got == 0 {
		t.Error("partitioner did not provision a store despite heavy metadata reuse")
	}
}

// TestDynamicStaysOffForStreaming drives a pure streaming workload with
// no metadata reuse: the partitioner must not claim LLC capacity.
func TestDynamicStaysOffForStreaming(t *testing.T) {
	tr := New(Config{Mode: Dynamic, EpochAccesses: 2000})
	for i := 0; i < 20000; i++ {
		tr.Train(miss(1, mem.Line(i)))
	}
	if got := tr.DesiredMetadataBytes(); got != 0 {
		t.Errorf("streaming workload provisioned %d bytes, want 0", got)
	}
}

func TestPrefetchOutcomeFiltersRedundant(t *testing.T) {
	tr := newStatic1MB()
	feed(tr, 1, []mem.Line{10, 20})
	reqs := tr.Train(miss(1, 10))
	if len(reqs) != 1 {
		t.Fatal("no prefetch generated")
	}
	tr.PrefetchOutcome(reqs[0], false) // redundant
	if tr.redundant != 1 || tr.usefulFeedback != 0 {
		t.Errorf("redundant=%d useful=%d, want 1,0", tr.redundant, tr.usefulFeedback)
	}
	reqs = tr.Train(miss(1, 10))
	tr.PrefetchOutcome(reqs[0], true) // useful
	if tr.usefulFeedback != 1 {
		t.Errorf("usefulFeedback = %d, want 1", tr.usefulFeedback)
	}
	// Unknown request is ignored.
	tr.PrefetchOutcome(prefetch.Request{Line: 424242}, true)
}

func TestTrainingUnitBounded(t *testing.T) {
	tr := New(Config{Mode: Static, TrainingUnitSize: 8})
	for pc := uint64(0); pc < 100; pc++ {
		tr.Train(miss(pc, mem.Line(pc*10)))
	}
	if tr.tu.Len() > 8 {
		t.Errorf("training unit grew to %d entries, bound 8", tr.tu.Len())
	}
}

func TestLRUReplacementOption(t *testing.T) {
	tr := New(Config{Mode: Static, StaticBytes: metadataSets * bytesPerEntry, Replacement: LRU})
	feed(tr, 1, []mem.Line{0, 1})
	feed(tr, 1, []mem.Line{2048, 3})
	feed(tr, 1, []mem.Line{4096, 5})
	// LRU with 1 entry/set: only the newest of {0, 2048, 4096} survives.
	if reqs := tr.Train(miss(1, 4096)); len(reqs) != 1 {
		t.Errorf("LRU store lost the newest entry: %v", reqs)
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Mode: Static, StaticBytes: 1000},                           // not set-aligned
		{Mode: Dynamic, SmallBytes: 1 << 20, LargeBytes: 512 << 10}, // inverted
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCompressedTagAliasing(t *testing.T) {
	// Two triggers in the same set whose full tags differ: both must be
	// representable because the compressor allocates distinct ids.
	tr := newStatic1MB()
	a := mem.Line(0)
	b := mem.Line(metadataSets * 7) // same set 0, different tag
	feed(tr, 1, []mem.Line{a, 100})
	feed(tr, 1, []mem.Line{b, 200})
	if reqs := tr.Train(miss(1, a)); len(reqs) != 1 || reqs[0].Line != 100 {
		t.Errorf("trigger a: %v, want 100", reqs)
	}
	if reqs := tr.Train(miss(1, b)); len(reqs) != 1 || reqs[0].Line != 200 {
		t.Errorf("trigger b: %v, want 200", reqs)
	}
}

var (
	_ prefetch.Prefetcher      = (*Triage)(nil)
	_ prefetch.DegreeSetter    = (*Triage)(nil)
	_ prefetch.EnvUser         = (*Triage)(nil)
	_ prefetch.OutcomeObserver = (*Triage)(nil)
)
