package core

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/prefetch"
)

func TestLadderValidation(t *testing.T) {
	for _, ladder := range [][]int{
		{1 << 20},              // too short
		{1 << 20, 512 << 10},   // descending
		{512 << 10, 512 << 10}, // equal
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ladder %v accepted", ladder)
				}
			}()
			newTimeShareSizer(ladder, 1000)
		}()
	}
}

// driveLadder feeds a rotating lookup stream of `lines` distinct
// trigger lines. The reuse interval (= lines accesses) must fit within
// one epoch or the time-shared sandboxes never see reuse.
func driveLadder(t *Triage, lines, loads int) {
	for i := 0; i < loads; i++ {
		t.Train(prefetch.Event{PC: 1, Line: mem.Line((i % lines) * 3), Miss: true})
	}
}

func TestLadderClimbsToUsefulSize(t *testing.T) {
	tr := New(Config{Mode: DynamicLadder, EpochAccesses: 450_000})
	// Rotation of 100K entries (~49 per metadata set): more than the
	// 256KB rung holds (32/set), less than 512KB (64/set) — the ladder
	// must climb past 256KB. Epochs span ~4.5 laps so the reuse density
	// is high enough for the rungs to separate.
	driveLadder(tr, 100<<10, 2_700_000)
	if got := tr.DesiredMetadataBytes(); got < 512<<10 {
		t.Errorf("ladder settled at %dKB, want >= 512KB for a 100K-entry rotation", got>>10)
	}
}

func TestLadderFallsToZeroOnStreaming(t *testing.T) {
	tr := New(Config{Mode: DynamicLadder, EpochAccesses: 5000})
	for i := 0; i < 100_000; i++ {
		tr.Train(prefetch.Event{PC: 1, Line: mem.Line(i), Miss: true}) // no reuse
	}
	if got := tr.DesiredMetadataBytes(); got != 0 {
		t.Errorf("ladder kept %dKB on a compulsory-miss stream, want 0", got>>10)
	}
}

func TestLadderName(t *testing.T) {
	tr := New(Config{Mode: DynamicLadder})
	if tr.Name() != "triage-ladder" {
		t.Errorf("Name = %q", tr.Name())
	}
	if tr.DesiredMetadataBytes() != 0 {
		t.Error("initial desire should be 0")
	}
}

func TestLadderCustomRungs(t *testing.T) {
	tr := New(Config{
		Mode:          DynamicLadder,
		Ladder:        []int{128 << 10, 1 << 20},
		EpochAccesses: 240_000,
	})
	// 60K-entry rotation: beyond 128KB (16/set), within 1MB (128/set).
	driveLadder(tr, 60<<10, 960_000)
	if got := tr.DesiredMetadataBytes(); got != 1<<20 {
		t.Errorf("choice %dKB, want the 1MB rung", got>>10)
	}
}

func TestLadderPrediction(t *testing.T) {
	// The ladder mode must still prefetch like any Triage: learn a pair
	// and replay it.
	tr := New(Config{Mode: DynamicLadder, EpochAccesses: 20_000})
	// Force the store on by providing dense reuse first.
	ring := make([]mem.Line, 3000)
	for i := range ring {
		ring[i] = mem.Line(i * 11)
	}
	for lap := 0; lap < 30; lap++ {
		for _, l := range ring {
			tr.Train(prefetch.Event{PC: 1, Line: l, Miss: true})
		}
	}
	if tr.DesiredMetadataBytes() == 0 {
		t.Fatal("store never provisioned")
	}
	reqs := tr.Train(prefetch.Event{PC: 1, Line: ring[100], Miss: true})
	if len(reqs) != 1 || reqs[0].Line != ring[101] {
		t.Errorf("ladder-mode prediction = %v, want %d", reqs, ring[101])
	}
}
