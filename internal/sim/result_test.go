package sim

import (
	"testing"

	"repro/internal/cache"
)

func TestCoreResultIPC(t *testing.T) {
	if got := (CoreResult{Instructions: 100, Cycles: 50}).IPC(); got != 2 {
		t.Errorf("IPC = %g, want 2", got)
	}
	if got := (CoreResult{Instructions: 100}).IPC(); got != 0 {
		t.Errorf("IPC with zero cycles = %g, want 0", got)
	}
}

func TestResultIPCMean(t *testing.T) {
	r := Result{Cores: []CoreResult{
		{Instructions: 100, Cycles: 100}, // 1.0
		{Instructions: 300, Cycles: 100}, // 3.0
	}}
	if got := r.IPC(); got != 2 {
		t.Errorf("mean IPC = %g, want 2", got)
	}
	if got := (Result{}).IPC(); got != 0 {
		t.Errorf("empty Result IPC = %g", got)
	}
}

func TestSpeedupOverMismatchedCores(t *testing.T) {
	a := Result{Cores: []CoreResult{{Instructions: 1, Cycles: 1}}}
	b := Result{}
	if got := a.SpeedupOver(b); got != 0 {
		t.Errorf("mismatched SpeedupOver = %g, want 0", got)
	}
}

func TestSpeedupSkipsZeroBaseline(t *testing.T) {
	base := Result{Cores: []CoreResult{
		{Instructions: 0, Cycles: 0},     // IPC 0: skipped
		{Instructions: 100, Cycles: 100}, // IPC 1
	}}
	with := Result{Cores: []CoreResult{
		{Instructions: 100, Cycles: 100},
		{Instructions: 200, Cycles: 100}, // 2x
	}}
	// The dead core is excluded from both the sum and the divisor, so
	// the mean is over the one measurable core.
	if got := with.SpeedupOver(base); got != 2 {
		t.Errorf("SpeedupOver = %g, want 2 (mean over counted cores)", got)
	}
	// All-dead baseline: no counted cores, not a division by zero.
	dead := Result{Cores: []CoreResult{{}, {}}}
	if got := with.SpeedupOver(dead); got != 0 {
		t.Errorf("SpeedupOver(all-zero baseline) = %g, want 0", got)
	}
}

func TestAccuracyAndCoverage(t *testing.T) {
	r := Result{L2: []cache.Stats{{PrefetchFills: 100, PrefetchUsed: 60}}}
	if got := r.Accuracy(); got != 0.6 {
		t.Errorf("Accuracy = %g, want 0.6", got)
	}
	if got := (Result{}).Accuracy(); got != 0 {
		t.Errorf("empty Accuracy = %g", got)
	}
	base := Result{Cores: []CoreResult{{L2DemandMisses: 100}}}
	with := Result{Cores: []CoreResult{{L2DemandMisses: 40}}}
	if got := with.CoverageOver(base); got != 0.6 {
		t.Errorf("Coverage = %g, want 0.6", got)
	}
	// More misses than baseline clamps to zero, not negative.
	worse := Result{Cores: []CoreResult{{L2DemandMisses: 150}}}
	if got := worse.CoverageOver(base); got != 0 {
		t.Errorf("negative coverage not clamped: %g", got)
	}
}

func TestTrafficOverheadZeroBaseline(t *testing.T) {
	var r, base Result
	r.DRAM.Transfers[0] = 100
	if got := r.TrafficOverheadPct(base); got != 0 {
		t.Errorf("overhead with zero baseline = %g, want 0", got)
	}
}

func TestMSHRRingSerialization(t *testing.T) {
	m := newMSHRRing(2)
	// Two slots free: first two admits start immediately.
	s1, c1 := m.admit(100)
	s2, c2 := m.admit(100)
	if s1 != 100 || s2 != 100 {
		t.Fatalf("starts %d,%d want 100,100", s1, s2)
	}
	m.commit(c1, 500)
	m.commit(c2, 700)
	// Third admit must wait for the first completion.
	s3, c3 := m.admit(100)
	if s3 != 500 {
		t.Errorf("third admit start = %d, want 500", s3)
	}
	m.commit(c3, 900)
	// Fourth waits for the second.
	s4, _ := m.admit(100)
	if s4 != 700 {
		t.Errorf("fourth admit start = %d, want 700", s4)
	}
}

func TestMSHRRingTryAdmit(t *testing.T) {
	m := newMSHRRing(1)
	slot, ok := m.tryAdmit(10)
	if !ok {
		t.Fatal("empty ring rejected")
	}
	m.commit(slot, 100)
	if _, ok := m.tryAdmit(50); ok {
		t.Error("busy ring admitted at t=50 (busy until 100)")
	}
	if _, ok := m.tryAdmit(100); !ok {
		t.Error("ring rejected at exactly the free time")
	}
}
