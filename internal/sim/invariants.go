package sim

import (
	"fmt"

	"repro/internal/prefetch"
)

// invariantChecker is implemented by simulated components that can
// verify their own structural invariants (caches, DRAM, Triage, flat
// tables).
type invariantChecker interface {
	CheckInvariants() error
}

// findCheckers unwraps hybrid prefetchers to find the parts that can
// self-check (mirrors findPartitioners).
func findCheckers(p prefetch.Prefetcher) []invariantChecker {
	var out []invariantChecker
	walkParts(p, func(leaf prefetch.Prefetcher) {
		if ic, ok := leaf.(invariantChecker); ok {
			out = append(out, ic)
		}
	})
	return out
}

// CheckInvariants sweeps the machine's structural invariants: every
// cache level, the MSHR and prefetch-queue rings, the DRAM tables, the
// LLC way partition, and each prefetcher that can self-check. The
// first violation is returned. With Options.CheckEvery set, the step
// loop runs this sweep periodically and panics on violation; tests can
// also call it directly after corrupting state.
func (m *Machine) CheckInvariants() error {
	return m.hier.checkInvariants()
}

func (h *hierarchy) checkInvariants() error {
	for c := range h.l1 {
		if err := h.l1[c].CheckInvariants(); err != nil {
			return fmt.Errorf("core %d: %w", c, err)
		}
		if err := h.l2[c].CheckInvariants(); err != nil {
			return fmt.Errorf("core %d: %w", c, err)
		}
		if err := checkRing(&h.l1mshr[c], h.cfg.L1MSHRs); err != nil {
			return fmt.Errorf("core %d l1 mshr: %w", c, err)
		}
		if err := checkRing(&h.l2mshr[c], h.cfg.L2MSHRs); err != nil {
			return fmt.Errorf("core %d l2 mshr: %w", c, err)
		}
		if err := checkRing(&h.pfq[c], h.cfg.PrefetchQueue); err != nil {
			return fmt.Errorf("core %d prefetch queue: %w", c, err)
		}
		for _, ic := range findCheckers(h.l2pf[c]) {
			if err := ic.CheckInvariants(); err != nil {
				return fmt.Errorf("core %d prefetcher: %w", c, err)
			}
		}
	}
	if err := h.llc.CheckInvariants(); err != nil {
		return err
	}
	if err := h.ram.CheckInvariants(); err != nil {
		return err
	}
	if h.metaWays < 0 || h.metaWays > h.cfg.LLCWays/2 {
		return fmt.Errorf("llc partition: metaWays=%d of %d LLC ways (cap %d)",
			h.metaWays, h.cfg.LLCWays, h.cfg.LLCWays/2)
	}
	if !h.noCapacityLoss {
		if got, want := h.llc.DataWays(), h.cfg.LLCWays-h.metaWays; got != want {
			return fmt.Errorf("llc partition: %d data ways but %d total - %d metadata = %d",
				got, h.cfg.LLCWays, h.metaWays, want)
		}
	}
	return nil
}

// checkRing verifies one MSHR/prefetch-queue ring: its slot count
// matches the configured register count (an entry leak would shrink or
// grow it) and the head cursor stays in range.
func checkRing(r *mshrRing, want int) error {
	if len(r.slots) != want {
		return fmt.Errorf("%d slots, want %d (entry leak)", len(r.slots), want)
	}
	if r.head < 0 || r.head >= len(r.slots) {
		return fmt.Errorf("head %d out of range [0,%d)", r.head, len(r.slots))
	}
	return nil
}
