// Package sim is the trace-driven performance simulator: an analytic
// out-of-order core model (128-entry ROB, 4-wide dispatch and retire)
// over the cache hierarchy of package cache and the DRAM model of
// package dram, following the paper's methodology (§4.1).
//
// Timing works in ticks (4 per core cycle, matching the 4-wide
// pipeline). Each instruction dispatches one tick after its predecessor
// but no earlier than the retirement of the instruction ROB-size ahead
// of it; loads complete when the hierarchy returns their data, with
// pointer-chasing loads (Record.LoadDep) additionally serialized
// behind the load they depend on. This O(1)-per-instruction model captures
// memory-level parallelism, ROB stalls on long misses, and prefetch
// timeliness without an event queue.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// Machine is the hardware configuration (Table 1 defaults via
	// config.Default).
	Machine config.Machine
	// Workloads supplies one instruction stream per core. Streams that
	// end are restarted only if they are LoopReaders; synthetic
	// generators are endless.
	Workloads []trace.Reader
	// Prefetchers holds the per-core L2 prefetcher (nil entries = none).
	Prefetchers []prefetch.Prefetcher
	// LLCPolicy selects the LLC replacement policy ("lru" default,
	// "hawkeye").
	LLCPolicy string
	// WarmupInstructions per core run before statistics reset.
	WarmupInstructions uint64
	// MeasureInstructions per core define the measurement window.
	MeasureInstructions uint64
	// DetailedDRAM forces the channel/bank contention model; by default
	// it is enabled for multi-core machines (paper methodology).
	DetailedDRAM *bool
	// NoCapacityLoss gives Triage its metadata store for free (Fig. 9's
	// "assuming no loss in LLC capacity" study).
	NoCapacityLoss bool
	// Telemetry optionally attaches a sampler, event trace, progress
	// sink, and/or run watch to the run. Nil (or nil fields) disables
	// each piece at the cost of one predictable branch per instruction.
	Telemetry *telemetry.Hooks
	// WarmKey, when non-empty, enables warm-state snapshot reuse: the
	// post-warmup machine state is cached process-wide under this key,
	// and a later run with the same key restores it instead of
	// re-simulating warmup. The key MUST identify the complete warm
	// prefix — machine configuration, workload construction (generator,
	// seed, address base), prefetcher configuration, and warmup window;
	// two runs with equal keys must warm up to identical state. The
	// simulator independently verifies the machine-shape part of that
	// contract (see warmSignature) and falls back to a cold warmup on
	// any mismatch. Reuse is disabled automatically when an event trace
	// is attached or CheckEvery is set (see warmEligible).
	WarmKey string
	// CheckEvery, when non-zero, asserts the structural invariants of
	// every simulated component (caches, MSHR rings, DRAM tables, Triage
	// metadata store, flat LRU chains) every CheckEvery stepped
	// instructions, and once more at the end of the run. A violation
	// panics with the failing invariant. Debug mode: the sweep is
	// O(machine state), so keep the interval coarse.
	CheckEvery uint64
}

func (o *Options) validate() error {
	if err := o.Machine.Validate(); err != nil {
		return err
	}
	if len(o.Workloads) != o.Machine.Cores {
		return fmt.Errorf("sim: %d workloads for %d cores", len(o.Workloads), o.Machine.Cores)
	}
	if o.Prefetchers != nil && len(o.Prefetchers) != o.Machine.Cores {
		return fmt.Errorf("sim: %d prefetchers for %d cores", len(o.Prefetchers), o.Machine.Cores)
	}
	if o.MeasureInstructions == 0 {
		return fmt.Errorf("sim: MeasureInstructions must be > 0")
	}
	return nil
}

// coreState is the per-core analytic pipeline state.
type coreState struct {
	reader trace.Reader

	retire       []uint64 // ring of the last ROB retire ticks
	head         int
	lastDispatch uint64
	lastRetire   uint64

	// loadDone is a ring of the completion ticks of the most recent
	// loads, consulted by LoadDep-serialized loads (pointer chases).
	// Its length is a power of two so the dependency lookup is a mask.
	loadDone [16]uint64
	loadHead int

	instructions uint64 // since current phase start
	loads        uint64
	loadLatTicks uint64 // summed post-dependency load latencies
	startTick    uint64 // measurement window start
	consumed     uint64 // trace records drawn from reader, all phases
	finished     bool
	exhausted    bool

	// frozen captures the core's counters the moment it crosses the
	// measurement target; the core keeps running afterwards to sustain
	// contention (as the paper does by restarting early finishers) but
	// its reported numbers stop here.
	frozen struct {
		instructions uint64
		loads        uint64
		loadLatTicks uint64
		endTick      uint64
		l2Misses     uint64
	}
}

func (cs *coreState) freeze(l2Misses uint64) {
	cs.finished = true
	cs.frozen.instructions = cs.instructions
	cs.frozen.loads = cs.loads
	cs.frozen.loadLatTicks = cs.loadLatTicks
	cs.frozen.endTick = cs.lastRetire
	cs.frozen.l2Misses = l2Misses
}

// Machine is a runnable simulation instance.
type Machine struct {
	opts  Options
	hier  *hierarchy
	cores []*coreState
	steps uint64 // total instructions stepped, all cores and phases

	// Telemetry state (see telemetry.go). sampleCountdown is 0 while
	// sampling is off, so the disabled hot-loop cost is one compare.
	sampler         *telemetry.Sampler
	sampleCountdown uint64
	sampleIdx       int
	prevCores       []corePrev
	prevLLC         cache.Stats
	prevDRAM        dram.Stats
	prevTick        uint64

	progress        telemetry.ProgressSink
	watch           *telemetry.RunWatch
	progressPending uint64
	trackProgress   bool // progress != nil || watch != nil, hoisted

	// checkCountdown counts down to the next invariant sweep; 0 while
	// invariant checking is off (same one-compare idle cost as sampling).
	checkCountdown uint64

	// Interface views of the prefetcher graph, resolved once in New
	// (and again after a warm restore) so result collection and the
	// sampler never repeat per-call type assertions.
	estimators   []estimator
	metaCounters []metaCounter
	lookupFns    [][]lookupCounter // per core
}

// estimator is implemented by idealized prefetchers that report
// estimated metadata traffic (STMS, ISB idealized models).
type estimator interface{ EstimatedMetadataTransfers() uint64 }

// metaCounter is implemented by MISB, which counts its off-chip
// metadata accesses.
type metaCounter interface{ OffChipMetadataAccesses() uint64 }

// Aborted is the panic value of a run cancelled through its RunWatch
// (deadline or stall watchdog). The experiment engine recovers it and
// fails the cell with the reason attached.
type Aborted struct {
	Reason       string
	Instructions uint64
}

func (a *Aborted) Error() string {
	return fmt.Sprintf("simulation aborted after %d instructions: %s", a.Instructions, a.Reason)
}

// progressChunk is how many stepped instructions accumulate before one
// ProgressSink.Add call (coarse enough to keep atomics off the hot
// path).
const progressChunk = 1 << 14

// New constructs a Machine; it returns an error for inconsistent
// options.
func New(opts Options) (*Machine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	pfs := opts.Prefetchers
	if pfs == nil {
		pfs = make([]prefetch.Prefetcher, opts.Machine.Cores)
	}
	detailed := opts.Machine.Cores > 1
	if opts.DetailedDRAM != nil {
		detailed = *opts.DetailedDRAM
	}
	var tr *telemetry.EventTrace
	if opts.Telemetry != nil {
		tr = opts.Telemetry.Events
	}
	m := &Machine{
		opts: opts,
		hier: newHierarchy(opts.Machine, pfs, opts.LLCPolicy, detailed, opts.NoCapacityLoss, tr),
	}
	if opts.Telemetry != nil {
		m.sampler = opts.Telemetry.Sampler
		m.progress = opts.Telemetry.Progress
		m.watch = opts.Telemetry.Watch
		if tr != nil {
			for _, p := range pfs {
				bindEventTrace(p, tr)
			}
		}
	}
	m.trackProgress = m.progress != nil || m.watch != nil
	m.checkCountdown = opts.CheckEvery
	for c := 0; c < opts.Machine.Cores; c++ {
		m.cores = append(m.cores, &coreState{
			reader: opts.Workloads[c],
			retire: make([]uint64, opts.Machine.ROBEntries),
		})
	}
	m.resolveProbes()
	return m, nil
}

// resolveProbes walks the prefetcher graph once and caches the
// interface views collect() and the sampler consult, replacing the
// recursive per-call probes that previously ran at every sample point
// and at result collection.
func (m *Machine) resolveProbes() {
	m.estimators = m.estimators[:0]
	m.metaCounters = m.metaCounters[:0]
	m.lookupFns = make([][]lookupCounter, len(m.hier.l2pf))
	for c, p := range m.hier.l2pf {
		c := c
		walkParts(p, func(leaf prefetch.Prefetcher) {
			if e, ok := leaf.(estimator); ok {
				m.estimators = append(m.estimators, e)
			}
			if mc, ok := leaf.(metaCounter); ok {
				m.metaCounters = append(m.metaCounters, mc)
			}
			if lc, ok := leaf.(lookupCounter); ok {
				m.lookupFns[c] = append(m.lookupFns[c], lc)
			}
		})
	}
}

// Run executes warmup then measurement and returns the results. Each
// core runs until it has retired MeasureInstructions in the measurement
// window; cores that finish early keep executing (so contention is
// sustained, as the paper does by restarting benchmarks) but their
// statistics freeze at the finish line.
func (m *Machine) Run() Result {
	warm := m.opts.WarmupInstructions
	measure := m.opts.MeasureInstructions

	// Warmup phase: early finishers simply stop (no stats involved). A
	// cached warm-state snapshot (same WarmKey) replaces the whole
	// phase; a cold warmup under a WarmKey leaves a snapshot behind.
	reuse := m.warmEligible()
	if !(reuse && m.tryRestoreWarm()) {
		if warm > 0 {
			m.phase(warm, false)
		}
		m.hier.resetStats()
		for _, cs := range m.cores {
			cs.instructions = 0
			cs.loads = 0
			cs.loadLatTicks = 0
			cs.startTick = cs.lastRetire
			cs.finished = false
		}
		if reuse {
			m.saveWarm()
		}
	}

	m.startSampling()

	// Measurement phase: early finishers keep running to sustain
	// contention, with their stats frozen at the finish line.
	m.phase(measure, true)

	// Final flush deliberately skips the cancellation check: a cancel
	// racing a run that just finished must not fail the finished run.
	if m.progressPending > 0 {
		if m.progress != nil {
			m.progress.Add(m.progressPending)
		}
		if m.watch != nil {
			m.watch.Add(m.progressPending)
		}
		m.progressPending = 0
	}
	if m.opts.CheckEvery > 0 {
		if err := m.CheckInvariants(); err != nil {
			panic(err)
		}
	}
	return m.collect()
}

// phase advances cores — always the one with the smallest dispatch time
// next, which keeps shared-resource timestamps coherent — until every
// core has executed target instructions. With sustain, cores that reach
// the target keep executing until the last core arrives.
//
// The scheduler picks a core and then lets it run a whole batch: while
// core i executes, every other core's dispatch clock is frozen, so i
// stays the pick exactly until its own clock passes the smallest other
// eligible clock (ties go to the lowest index, matching the ascending
// strict-< selection scan). Computing that budget once per batch
// amortizes the selection scan over runs of instructions without
// changing the instruction interleaving at all; a single-core machine
// runs each phase as one batch.
func (m *Machine) phase(target uint64, sustain bool) {
	remaining := 0
	for c, cs := range m.cores {
		if cs.exhausted || cs.instructions >= target {
			if !cs.finished {
				cs.freeze(m.hier.l2[c].Stats().Misses)
			}
			continue
		}
		remaining++
	}
	for remaining > 0 {
		// Pick the core with the earliest dispatch time among those
		// still allowed to run, and — in the same pass — the earliest
		// dispatch clock among the other eligible cores (the batch
		// budget: their clocks cannot move while the pick runs, so the
		// pick stays the scheduler's choice until it passes the budget,
		// or meets it with a higher index). Both minima use the same
		// ascending strict-< tie-break the two separate scans had.
		var next *coreState
		idx := -1
		minT := ^uint64(0)
		budget := ^uint64(0)
		budgetIdx := -1
		for i, cs := range m.cores {
			if cs.exhausted || (cs.finished && !sustain) {
				continue
			}
			if d := cs.lastDispatch; d < minT {
				budget, budgetIdx = minT, idx
				minT, next, idx = d, cs, i
			} else if d < budget {
				budget, budgetIdx = d, i
			}
		}
		if next == nil {
			return
		}
		if budgetIdx < 0 {
			budgetIdx = len(m.cores)
		}
		switch m.runBatch(idx, next, target, budget, idx < budgetIdx) {
		case batchExhausted:
			next.exhausted = true
			if !next.finished {
				next.freeze(m.hier.l2[idx].Stats().Misses)
				remaining--
			}
		case batchFroze:
			remaining--
		case batchYield:
			// Budget exceeded: fall through to reselect.
		}
	}
}

// batchOutcome reports why runBatch stopped stepping its core.
type batchOutcome int

const (
	batchYield     batchOutcome = iota // dispatch clock passed the budget
	batchFroze                         // crossed the phase target and froze
	batchExhausted                     // trace ended
)

// runBatch steps core c until it crosses the phase target, its trace
// ends, or its dispatch clock passes budget. Counters that must fire at
// exact global instruction counts — progress chunks, telemetry sample
// intervals, invariant-checker sweeps — are maintained per instruction
// inside the loop, so batching never shifts a polling point.
func (m *Machine) runBatch(c int, cs *coreState, target, budget uint64, tieOK bool) batchOutcome {
	hier := m.hier
	for {
		rec, ok := cs.reader.Next()
		if !ok {
			return batchExhausted
		}
		cs.consumed++
		// Dispatch: one tick (quarter cycle) after the previous
		// dispatch, gated by ROB availability.
		d := cs.lastDispatch + 1
		if robGate := cs.retire[cs.head]; robGate > d {
			d = robGate
		}
		var complete uint64
		switch rec.Op {
		case trace.Load:
			start := d
			if dep := int(rec.LoadDep); dep > 0 {
				// Pointer chase: the address depends on the dep-th most
				// recent load; execution cannot start before it completes.
				if dep > len(cs.loadDone) {
					dep = len(cs.loadDone)
				}
				i := (cs.loadHead - dep + len(cs.loadDone)) & (len(cs.loadDone) - 1)
				if t := cs.loadDone[i]; t > start {
					start = t
				}
			}
			complete = hier.load(c, rec.PC, mem.LineOf(rec.Addr), start)
			cs.loadLatTicks += complete - start
			cs.loadDone[cs.loadHead] = complete
			cs.loadHead = (cs.loadHead + 1) & (len(cs.loadDone) - 1)
			cs.loads++
		case trace.Store:
			hier.store(c, rec.PC, mem.LineOf(rec.Addr), d)
			complete = d + dram.TicksPerCycle
		default:
			complete = d + dram.TicksPerCycle
		}
		// In-order retirement, up to 4 per cycle (1 per tick).
		r := complete
		if min := cs.lastRetire + 1; min > r {
			r = min
		}
		cs.retire[cs.head] = r
		cs.head++
		if cs.head == len(cs.retire) {
			cs.head = 0
		}
		cs.lastDispatch = d
		cs.lastRetire = r
		cs.instructions++
		m.steps++
		if m.trackProgress {
			m.progressPending++
			if m.progressPending >= progressChunk {
				m.flushProgress()
			}
		}
		if m.sampleCountdown > 0 {
			m.sampleCountdown--
			if m.sampleCountdown == 0 {
				m.takeSample()
				m.sampleCountdown = m.sampler.Every()
			}
		}
		if m.checkCountdown > 0 {
			m.checkCountdown--
			if m.checkCountdown == 0 {
				m.checkCountdown = m.opts.CheckEvery
				if err := m.CheckInvariants(); err != nil {
					panic(err)
				}
			}
		}
		if !cs.finished && cs.instructions >= target {
			cs.freeze(hier.l2[c].Stats().Misses)
			return batchFroze
		}
		if d > budget || (d == budget && !tieOK) {
			return batchYield
		}
	}
}

// flushProgress reports the pending instruction chunk to the progress
// sink and run watch, then honors a pending cancellation. The panic
// unwinds the run; the experiment engine recovers the *Aborted and
// fails the cell.
func (m *Machine) flushProgress() {
	if m.progress != nil {
		m.progress.Add(m.progressPending)
	}
	if m.watch != nil {
		m.watch.Add(m.progressPending)
		if reason, ok := m.watch.Cancelled(); ok {
			panic(&Aborted{Reason: reason, Instructions: m.steps})
		}
	}
	m.progressPending = 0
}

// collect builds the Result from the measurement window.
func (m *Machine) collect() Result {
	res := Result{
		SimulatedInstructions:     m.steps,
		DRAM:                      m.hier.ram.Stats(),
		LLC:                       m.hier.llc.Stats(),
		TriageLLCMetadataAccesses: m.hier.triageMetaAccesses,
		PrefetchesIssued:          m.hier.pfIssued,
		PrefetchesRedundant:       m.hier.pfRedundant,
		PrefetchesDropped:         m.hier.pfDropped,
	}
	for c, cs := range m.cores {
		l2 := m.hier.l2[c].Stats()
		res.L2 = append(res.L2, l2)
		ticks := cs.frozen.endTick - cs.startTick
		avgWays := 0.0
		if m.hier.waySampleN > 0 {
			avgWays = m.hier.waySamples[c] / float64(m.hier.waySampleN)
		}
		avgLoad := 0.0
		if cs.frozen.loads > 0 {
			avgLoad = float64(cs.frozen.loadLatTicks) / float64(cs.frozen.loads) / dram.TicksPerCycle
		}
		res.Cores = append(res.Cores, CoreResult{
			Instructions:    cs.frozen.instructions,
			Cycles:          ticks / dram.TicksPerCycle,
			Loads:           cs.frozen.loads,
			L2DemandMisses:  cs.frozen.l2Misses,
			AvgMetadataWays: avgWays,
			AvgLoadCycles:   avgLoad,
		})
		res.PrefetchesUseful += l2.PrefetchUsed
	}
	for _, mc := range m.metaCounters {
		res.MISBOffChipMetadataAccesses += mc.OffChipMetadataAccesses()
	}
	for _, e := range m.estimators {
		res.EstimatedMetadataTransfers += e.EstimatedMetadataTransfers()
	}
	return res
}
