// Package sim is the trace-driven performance simulator: an analytic
// out-of-order core model (128-entry ROB, 4-wide dispatch and retire)
// over the cache hierarchy of package cache and the DRAM model of
// package dram, following the paper's methodology (§4.1).
//
// Timing works in ticks (4 per core cycle, matching the 4-wide
// pipeline). Each instruction dispatches one tick after its predecessor
// but no earlier than the retirement of the instruction ROB-size ahead
// of it; loads complete when the hierarchy returns their data, with
// pointer-chasing loads (Record.LoadDep) additionally serialized
// behind the load they depend on. This O(1)-per-instruction model captures
// memory-level parallelism, ROB stalls on long misses, and prefetch
// timeliness without an event queue.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// Machine is the hardware configuration (Table 1 defaults via
	// config.Default).
	Machine config.Machine
	// Workloads supplies one instruction stream per core. Streams that
	// end are restarted only if they are LoopReaders; synthetic
	// generators are endless.
	Workloads []trace.Reader
	// Prefetchers holds the per-core L2 prefetcher (nil entries = none).
	Prefetchers []prefetch.Prefetcher
	// LLCPolicy selects the LLC replacement policy ("lru" default,
	// "hawkeye").
	LLCPolicy string
	// WarmupInstructions per core run before statistics reset.
	WarmupInstructions uint64
	// MeasureInstructions per core define the measurement window.
	MeasureInstructions uint64
	// DetailedDRAM forces the channel/bank contention model; by default
	// it is enabled for multi-core machines (paper methodology).
	DetailedDRAM *bool
	// NoCapacityLoss gives Triage its metadata store for free (Fig. 9's
	// "assuming no loss in LLC capacity" study).
	NoCapacityLoss bool
	// Telemetry optionally attaches a sampler, event trace, progress
	// sink, and/or run watch to the run. Nil (or nil fields) disables
	// each piece at the cost of one predictable branch per instruction.
	Telemetry *telemetry.Hooks
	// CheckEvery, when non-zero, asserts the structural invariants of
	// every simulated component (caches, MSHR rings, DRAM tables, Triage
	// metadata store, flat LRU chains) every CheckEvery stepped
	// instructions, and once more at the end of the run. A violation
	// panics with the failing invariant. Debug mode: the sweep is
	// O(machine state), so keep the interval coarse.
	CheckEvery uint64
}

func (o *Options) validate() error {
	if err := o.Machine.Validate(); err != nil {
		return err
	}
	if len(o.Workloads) != o.Machine.Cores {
		return fmt.Errorf("sim: %d workloads for %d cores", len(o.Workloads), o.Machine.Cores)
	}
	if o.Prefetchers != nil && len(o.Prefetchers) != o.Machine.Cores {
		return fmt.Errorf("sim: %d prefetchers for %d cores", len(o.Prefetchers), o.Machine.Cores)
	}
	if o.MeasureInstructions == 0 {
		return fmt.Errorf("sim: MeasureInstructions must be > 0")
	}
	return nil
}

// coreState is the per-core analytic pipeline state.
type coreState struct {
	reader trace.Reader

	retire       []uint64 // ring of the last ROB retire ticks
	head         int
	lastDispatch uint64
	lastRetire   uint64

	// loadDone is a ring of the completion ticks of the most recent
	// loads, consulted by LoadDep-serialized loads (pointer chases).
	loadDone [16]uint64
	loadHead int

	instructions uint64 // since current phase start
	loads        uint64
	loadLatTicks uint64 // summed post-dependency load latencies
	startTick    uint64 // measurement window start
	finished     bool
	exhausted    bool

	// frozen captures the core's counters the moment it crosses the
	// measurement target; the core keeps running afterwards to sustain
	// contention (as the paper does by restarting early finishers) but
	// its reported numbers stop here.
	frozen struct {
		instructions uint64
		loads        uint64
		loadLatTicks uint64
		endTick      uint64
		l2Misses     uint64
	}
}

func (cs *coreState) freeze(l2Misses uint64) {
	cs.finished = true
	cs.frozen.instructions = cs.instructions
	cs.frozen.loads = cs.loads
	cs.frozen.loadLatTicks = cs.loadLatTicks
	cs.frozen.endTick = cs.lastRetire
	cs.frozen.l2Misses = l2Misses
}

// Machine is a runnable simulation instance.
type Machine struct {
	opts  Options
	hier  *hierarchy
	cores []*coreState
	steps uint64 // total instructions stepped, all cores and phases

	// Telemetry state (see telemetry.go). sampleCountdown is 0 while
	// sampling is off, so the disabled hot-loop cost is one compare.
	sampler         *telemetry.Sampler
	sampleCountdown uint64
	sampleIdx       int
	prevCores       []corePrev
	prevLLC         cache.Stats
	prevDRAM        dram.Stats
	prevTick        uint64

	progress        telemetry.ProgressSink
	watch           *telemetry.RunWatch
	progressPending uint64

	// checkCountdown counts down to the next invariant sweep; 0 while
	// invariant checking is off (same one-compare idle cost as sampling).
	checkCountdown uint64
}

// Aborted is the panic value of a run cancelled through its RunWatch
// (deadline or stall watchdog). The experiment engine recovers it and
// fails the cell with the reason attached.
type Aborted struct {
	Reason       string
	Instructions uint64
}

func (a *Aborted) Error() string {
	return fmt.Sprintf("simulation aborted after %d instructions: %s", a.Instructions, a.Reason)
}

// progressChunk is how many stepped instructions accumulate before one
// ProgressSink.Add call (coarse enough to keep atomics off the hot
// path).
const progressChunk = 1 << 14

// New constructs a Machine; it returns an error for inconsistent
// options.
func New(opts Options) (*Machine, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	pfs := opts.Prefetchers
	if pfs == nil {
		pfs = make([]prefetch.Prefetcher, opts.Machine.Cores)
	}
	detailed := opts.Machine.Cores > 1
	if opts.DetailedDRAM != nil {
		detailed = *opts.DetailedDRAM
	}
	var tr *telemetry.EventTrace
	if opts.Telemetry != nil {
		tr = opts.Telemetry.Events
	}
	m := &Machine{
		opts: opts,
		hier: newHierarchy(opts.Machine, pfs, opts.LLCPolicy, detailed, opts.NoCapacityLoss, tr),
	}
	if opts.Telemetry != nil {
		m.sampler = opts.Telemetry.Sampler
		m.progress = opts.Telemetry.Progress
		m.watch = opts.Telemetry.Watch
		if tr != nil {
			for _, p := range pfs {
				bindEventTrace(p, tr)
			}
		}
	}
	m.checkCountdown = opts.CheckEvery
	for c := 0; c < opts.Machine.Cores; c++ {
		m.cores = append(m.cores, &coreState{
			reader: opts.Workloads[c],
			retire: make([]uint64, opts.Machine.ROBEntries),
		})
	}
	return m, nil
}

// Run executes warmup then measurement and returns the results. Each
// core runs until it has retired MeasureInstructions in the measurement
// window; cores that finish early keep executing (so contention is
// sustained, as the paper does by restarting benchmarks) but their
// statistics freeze at the finish line.
func (m *Machine) Run() Result {
	warm := m.opts.WarmupInstructions
	measure := m.opts.MeasureInstructions

	// Warmup phase: early finishers simply stop (no stats involved).
	if warm > 0 {
		m.phase(warm, false)
	}
	m.hier.resetStats()
	for _, cs := range m.cores {
		cs.instructions = 0
		cs.loads = 0
		cs.loadLatTicks = 0
		cs.startTick = cs.lastRetire
		cs.finished = false
	}

	m.startSampling()

	// Measurement phase: early finishers keep running to sustain
	// contention, with their stats frozen at the finish line.
	m.phase(measure, true)

	// Final flush deliberately skips the cancellation check: a cancel
	// racing a run that just finished must not fail the finished run.
	if m.progressPending > 0 {
		if m.progress != nil {
			m.progress.Add(m.progressPending)
		}
		if m.watch != nil {
			m.watch.Add(m.progressPending)
		}
		m.progressPending = 0
	}
	if m.opts.CheckEvery > 0 {
		if err := m.CheckInvariants(); err != nil {
			panic(err)
		}
	}
	return m.collect()
}

// phase advances cores — always the one with the smallest dispatch time
// next, which keeps shared-resource timestamps coherent — until every
// core has executed target instructions. With sustain, cores that reach
// the target keep executing until the last core arrives.
func (m *Machine) phase(target uint64, sustain bool) {
	remaining := 0
	for c, cs := range m.cores {
		if cs.exhausted || cs.instructions >= target {
			if !cs.finished {
				cs.freeze(m.hier.l2[c].Stats().Misses)
			}
			continue
		}
		remaining++
	}
	for remaining > 0 {
		// Pick the core with the earliest dispatch time among those
		// still allowed to run.
		var next *coreState
		idx := -1
		minT := ^uint64(0)
		for i, cs := range m.cores {
			if cs.exhausted || (cs.finished && !sustain) {
				continue
			}
			if cs.lastDispatch < minT {
				minT, next, idx = cs.lastDispatch, cs, i
			}
		}
		if next == nil {
			return
		}
		if !m.step(idx, next) {
			next.exhausted = true
			if !next.finished {
				next.freeze(m.hier.l2[idx].Stats().Misses)
				remaining--
			}
			continue
		}
		if !next.finished && next.instructions >= target {
			next.freeze(m.hier.l2[idx].Stats().Misses)
			remaining--
		}
	}
}

// step executes one instruction on core c; it returns false when the
// trace is exhausted.
func (m *Machine) step(c int, cs *coreState) bool {
	rec, ok := cs.reader.Next()
	if !ok {
		return false
	}
	// Dispatch: one tick (quarter cycle) after the previous dispatch,
	// gated by ROB availability.
	d := cs.lastDispatch + 1
	if robGate := cs.retire[cs.head]; robGate > d {
		d = robGate
	}
	var complete uint64
	switch rec.Op {
	case trace.Load:
		start := d
		if dep := int(rec.LoadDep); dep > 0 {
			// Pointer chase: the address depends on the dep-th most
			// recent load; execution cannot start before it completes.
			if dep > len(cs.loadDone) {
				dep = len(cs.loadDone)
			}
			idx := (cs.loadHead - dep + 2*len(cs.loadDone)) % len(cs.loadDone)
			if t := cs.loadDone[idx]; t > start {
				start = t
			}
		}
		complete = m.hier.load(c, rec.PC, mem.LineOf(rec.Addr), start)
		cs.loadLatTicks += complete - start
		cs.loadDone[cs.loadHead] = complete
		cs.loadHead = (cs.loadHead + 1) % len(cs.loadDone)
		cs.loads++
	case trace.Store:
		m.hier.store(c, rec.PC, mem.LineOf(rec.Addr), d)
		complete = d + dram.TicksPerCycle
	default:
		complete = d + dram.TicksPerCycle
	}
	// In-order retirement, up to 4 per cycle (1 per tick).
	r := complete
	if min := cs.lastRetire + 1; min > r {
		r = min
	}
	cs.retire[cs.head] = r
	cs.head++
	if cs.head == len(cs.retire) {
		cs.head = 0
	}
	cs.lastDispatch = d
	cs.lastRetire = r
	cs.instructions++
	m.steps++
	if m.progress != nil || m.watch != nil {
		m.progressPending++
		if m.progressPending >= progressChunk {
			m.flushProgress()
		}
	}
	if m.sampleCountdown > 0 {
		m.sampleCountdown--
		if m.sampleCountdown == 0 {
			m.takeSample()
			m.sampleCountdown = m.sampler.Every()
		}
	}
	if m.checkCountdown > 0 {
		m.checkCountdown--
		if m.checkCountdown == 0 {
			m.checkCountdown = m.opts.CheckEvery
			if err := m.CheckInvariants(); err != nil {
				panic(err)
			}
		}
	}
	return true
}

// flushProgress reports the pending instruction chunk to the progress
// sink and run watch, then honors a pending cancellation. The panic
// unwinds the run; the experiment engine recovers the *Aborted and
// fails the cell.
func (m *Machine) flushProgress() {
	if m.progress != nil {
		m.progress.Add(m.progressPending)
	}
	if m.watch != nil {
		m.watch.Add(m.progressPending)
		if reason, ok := m.watch.Cancelled(); ok {
			panic(&Aborted{Reason: reason, Instructions: m.steps})
		}
	}
	m.progressPending = 0
}

// collect builds the Result from the measurement window.
func (m *Machine) collect() Result {
	res := Result{
		SimulatedInstructions:     m.steps,
		DRAM:                      m.hier.ram.Stats(),
		LLC:                       m.hier.llc.Stats(),
		TriageLLCMetadataAccesses: m.hier.triageMetaAccesses,
		PrefetchesIssued:          m.hier.pfIssued,
		PrefetchesRedundant:       m.hier.pfRedundant,
		PrefetchesDropped:         m.hier.pfDropped,
	}
	for c, cs := range m.cores {
		l2 := m.hier.l2[c].Stats()
		res.L2 = append(res.L2, l2)
		ticks := cs.frozen.endTick - cs.startTick
		avgWays := 0.0
		if m.hier.waySampleN > 0 {
			avgWays = m.hier.waySamples[c] / float64(m.hier.waySampleN)
		}
		avgLoad := 0.0
		if cs.frozen.loads > 0 {
			avgLoad = float64(cs.frozen.loadLatTicks) / float64(cs.frozen.loads) / dram.TicksPerCycle
		}
		res.Cores = append(res.Cores, CoreResult{
			Instructions:    cs.frozen.instructions,
			Cycles:          ticks / dram.TicksPerCycle,
			Loads:           cs.frozen.loads,
			L2DemandMisses:  cs.frozen.l2Misses,
			AvgMetadataWays: avgWays,
			AvgLoadCycles:   avgLoad,
		})
		res.PrefetchesUseful += l2.PrefetchUsed
	}
	for _, p := range m.opts.Prefetchers {
		res.MISBOffChipMetadataAccesses += misbMetaAccesses(p)
		res.EstimatedMetadataTransfers += estimatedMeta(p)
	}
	return res
}

// estimatedMeta extracts idealized prefetchers' estimated metadata
// traffic, unwrapping hybrids.
func estimatedMeta(p prefetch.Prefetcher) uint64 {
	type estimator interface{ EstimatedMetadataTransfers() uint64 }
	if p == nil {
		return 0
	}
	if pp, ok := p.(partsProvider); ok {
		var n uint64
		for _, part := range pp.Parts() {
			n += estimatedMeta(part)
		}
		return n
	}
	if e, ok := p.(estimator); ok {
		return e.EstimatedMetadataTransfers()
	}
	return 0
}

// misbMetaAccesses extracts MISB's off-chip metadata access count,
// unwrapping hybrids.
func misbMetaAccesses(p prefetch.Prefetcher) uint64 {
	type metaCounter interface{ OffChipMetadataAccesses() uint64 }
	if p == nil {
		return 0
	}
	if pp, ok := p.(partsProvider); ok {
		var n uint64
		for _, part := range pp.Parts() {
			n += misbMetaAccesses(part)
		}
		return n
	}
	if mc, ok := p.(metaCounter); ok {
		return mc.OffChipMetadataAccesses()
	}
	return 0
}
