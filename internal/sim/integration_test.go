package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/prefetch/hybrid"
	"repro/internal/prefetch/misb"
	"repro/internal/trace"
	"repro/internal/workload"
)

func triage(mode core.Mode) *core.Triage {
	m := config.Default(1)
	return core.New(core.Config{
		Mode: mode, StaticBytes: 1 << 20,
		LLCLatencyTicks: uint64(m.LLCLatency) * dram.TicksPerCycle,
	})
}

func chase() trace.Reader {
	return workload.NewChase(workload.ChaseParams{
		Nodes: 192 << 10, Streams: 2, HotFrac: 0.5, HotProb: 0.9,
		RunLen: 256, Gap: 6,
	}, 5, 0)
}

// TestDynamicPartitionAppearsDuringRun drives Triage-Dynamic and
// verifies the LLC loses data ways once the sizer provisions a store.
func TestDynamicPartitionAppearsDuringRun(t *testing.T) {
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{triage(core.Dynamic)},
		WarmupInstructions:  2_500_000,
		MeasureInstructions: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if m.hier.metaWays == 0 {
		t.Error("dynamic Triage never claimed LLC ways on a hot chase")
	}
	if res.Cores[0].AvgMetadataWays <= 0 {
		t.Error("AvgMetadataWays not recorded")
	}
}

// TestHybridComposesInSim checks the full hybrid plumbing end to end:
// partition discovery through the hybrid wrapper, outcome fan-out, and
// that composition never corrupts results.
func TestHybridComposesInSim(t *testing.T) {
	h := hybrid.New(triage(core.Static), bo.New())
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{h},
		WarmupInstructions:  1_500_000,
		MeasureInstructions: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	// The hybrid's Triage part must have been found by the partitioner.
	if got := m.hier.llc.DataWays(); got != 8 {
		t.Errorf("LLC data ways with hybrid(Triage-1MB, BO) = %d, want 8", got)
	}
}

// TestMISBMetadataTrafficReachesDRAM verifies the Env plumbing: MISB's
// metadata reads/writes must appear in the DRAM stats.
func TestMISBMetadataTrafficReachesDRAM(t *testing.T) {
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{misb.New()},
		WarmupInstructions:  500_000,
		MeasureInstructions: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.DRAM.Transfers[dram.MetadataRead] == 0 {
		t.Error("MISB produced no metadata-read DRAM traffic")
	}
	if res.MISBOffChipMetadataAccesses == 0 {
		t.Error("MISB metadata access counter not collected")
	}
}

// TestTriageEnergyCounterReachesResult verifies Triage's LLC metadata
// access counter flows through the Env into the Result.
func TestTriageEnergyCounterReachesResult(t *testing.T) {
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{triage(core.Static)},
		WarmupInstructions:  200_000,
		MeasureInstructions: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.TriageLLCMetadataAccesses == 0 {
		t.Error("no Triage LLC metadata accesses recorded")
	}
}

// TestHawkeyeLLCPolicyRuns exercises the alternative LLC policy path.
func TestHawkeyeLLCPolicyRuns(t *testing.T) {
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		LLCPolicy:           "hawkeye",
		WarmupInstructions:  100_000,
		MeasureInstructions: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.IPC() <= 0 {
		t.Error("hawkeye-LLC run produced no progress")
	}
}

// TestStoresDirtyLinesCauseWritebacks checks the write path end to end:
// stores dirty lines, evictions write back, DRAM sees them.
func TestStoresDirtyLinesCauseWritebacks(t *testing.T) {
	// Stores over a 6MB region (>> 2MB LLC): write-allocate then evict
	// dirty lines all the way out to DRAM.
	recs := make([]trace.Record, 0, 200_000)
	for i := 0; i < 100_000; i++ {
		recs = append(recs, trace.Record{PC: 1, Op: trace.Store, Addr: mem.Addr(i) * 64})
		recs = append(recs, trace.Record{PC: 2, Op: trace.NonMem})
	}
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{trace.NewLoopReader(recs)},
		WarmupInstructions:  400_000,
		MeasureInstructions: 400_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.DRAM.Transfers[dram.Writeback] == 0 {
		t.Error("no writebacks despite a dirty streaming store working set")
	}
}

// TestUnlimitedTriageKeepsLLCIntact runs the idealized configuration.
func TestUnlimitedTriageKeepsLLCIntact(t *testing.T) {
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{triage(core.Unlimited)},
		WarmupInstructions:  500_000,
		MeasureInstructions: 300_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if got := m.hier.llc.DataWays(); got != 16 {
		t.Errorf("unlimited mode took LLC ways: %d data ways", got)
	}
}

// TestDeterminism: identical options must produce identical results.
func TestDeterminism(t *testing.T) {
	run := func() Result {
		m, err := New(Options{
			Machine:             config.Default(2),
			Workloads:           []trace.Reader{chase(), chase()},
			Prefetchers:         []prefetch.Prefetcher{triage(core.Dynamic), bo.New()},
			WarmupInstructions:  300_000,
			MeasureInstructions: 300_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Run()
	}
	a, b := run(), run()
	for c := range a.Cores {
		if a.Cores[c].Cycles != b.Cores[c].Cycles || a.Cores[c].Instructions != b.Cores[c].Instructions {
			t.Fatalf("core %d nondeterministic: %+v vs %+v", c, a.Cores[c], b.Cores[c])
		}
	}
	if a.DRAM != b.DRAM {
		t.Errorf("DRAM stats nondeterministic: %+v vs %+v", a.DRAM, b.DRAM)
	}
}

// TestRateModeCoresIsolated verifies disjoint address spaces in rate
// mode: per-core L2 stats must be nearly identical across symmetric
// cores (same workload, different bases/seeds => statistically close).
func TestRateModeCoresIsolated(t *testing.T) {
	spec, _ := workload.ByName("classification")
	ws := make([]trace.Reader, 4)
	for c := range ws {
		ws[c] = spec.New(uint64(c)+1, mem.Addr(c+1)<<40)
	}
	m, err := New(Options{
		Machine:             config.Default(4),
		Workloads:           ws,
		WarmupInstructions:  200_000,
		MeasureInstructions: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	for c, cr := range res.Cores {
		if cr.Instructions != 200_000 {
			t.Errorf("core %d: %d instructions", c, cr.Instructions)
		}
		if cr.IPC() <= 0 {
			t.Errorf("core %d: IPC %.3f", c, cr.IPC())
		}
	}
}

// TestDegreeSweepMonotoneCoverage: higher Triage degree must not reduce
// the number of useful prefetches on a well-trained chase.
func TestDegreeSweepMonotoneCoverage(t *testing.T) {
	useful := func(d int) uint64 {
		tr := triage(core.Static)
		tr.SetDegree(d)
		m, err := New(Options{
			Machine:             config.Default(1),
			Workloads:           []trace.Reader{chase()},
			Prefetchers:         []prefetch.Prefetcher{tr},
			WarmupInstructions:  1_500_000,
			MeasureInstructions: 500_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Run().PrefetchesUseful
	}
	u1, u4 := useful(1), useful(4)
	if u4 < u1 {
		t.Errorf("useful prefetches fell with degree: d1=%d d4=%d", u1, u4)
	}
}
