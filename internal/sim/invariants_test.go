package sim

import (
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/trace"
)

// TestInvariantsHoldDuringRun drives Triage-Dynamic (the config that
// exercises partition resizes, the metadata store, and the flat-map
// structures) with the periodic checker armed: any mid-run structural
// violation panics and fails the test.
func TestInvariantsHoldDuringRun(t *testing.T) {
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{triage(core.Dynamic)},
		WarmupInstructions:  300_000,
		MeasureInstructions: 200_000,
		CheckEvery:          50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Cores[0].Instructions == 0 {
		t.Error("run retired no instructions")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Errorf("post-run invariant violation: %v", err)
	}
}

// TestInvariantCatchesMSHRCorruption corrupts an MSHR ring cursor and
// verifies the sweep reports it with the core and level attributed.
func TestInvariantCatchesMSHRCorruption(t *testing.T) {
	m := freshMachine(t)
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("fresh machine violates invariants: %v", err)
	}
	m.hier.l2mshr[0].head = -1
	err := m.CheckInvariants()
	if err == nil {
		t.Fatal("corrupted MSHR ring passed the invariant sweep")
	}
	if !strings.Contains(err.Error(), "l2 mshr") {
		t.Errorf("violation %q does not attribute the l2 mshr", err)
	}
}

// TestInvariantCatchesMSHRLeak shrinks a ring's slot slice (an entry
// leak) and verifies detection.
func TestInvariantCatchesMSHRLeak(t *testing.T) {
	m := freshMachine(t)
	r := &m.hier.l1mshr[0]
	r.slots = r.slots[:len(r.slots)-1]
	err := m.CheckInvariants()
	if err == nil {
		t.Fatal("leaked MSHR slot passed the invariant sweep")
	}
	if !strings.Contains(err.Error(), "entry leak") {
		t.Errorf("violation %q does not mention the leak", err)
	}
}

// TestInvariantCatchesPartitionMismatch desynchronizes the recorded
// metadata-way count from the LLC's actual data-way split.
func TestInvariantCatchesPartitionMismatch(t *testing.T) {
	m := freshMachine(t)
	m.hier.metaWays = m.hier.cfg.LLCWays // beyond the LLCWays/2 cap
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("impossible way partition passed the invariant sweep")
	}
}

func freshMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{triage(core.Dynamic)},
		WarmupInstructions:  1000,
		MeasureInstructions: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}
