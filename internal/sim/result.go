package sim

import (
	"repro/internal/cache"
	"repro/internal/dram"
)

// CoreResult holds one core's measured-window performance.
type CoreResult struct {
	// Instructions executed in the measurement window.
	Instructions uint64
	// Cycles elapsed for those instructions.
	Cycles uint64
	// Loads and L2 demand misses in the window.
	Loads          uint64
	L2DemandMisses uint64
	// AvgMetadataWays is the time-averaged number of LLC ways allocated
	// to this core's prefetcher metadata (Fig. 19).
	AvgMetadataWays float64
	// AvgLoadCycles is the mean post-dependency load latency in cycles
	// (diagnostics: shows where prefetching pays off).
	AvgLoadCycles float64
}

// IPC returns instructions per cycle.
func (c CoreResult) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// Result aggregates a simulation run.
type Result struct {
	Cores []CoreResult
	// SimulatedInstructions counts every instruction stepped by the
	// run across all cores and phases — warmup, measurement, and the
	// contention-sustain tail — i.e. the simulator's actual workload.
	// The bench harness divides it by wall-clock for sim-instr/s.
	SimulatedInstructions uint64
	// L2 per core and the shared LLC.
	L2  []cache.Stats
	LLC cache.Stats
	// DRAM transfer counts by kind.
	DRAM dram.Stats
	// TriageLLCMetadataAccesses counts LLC accesses made for Triage
	// metadata; MISBOffChipMetadataAccesses counts MISB's off-chip
	// metadata transfers. Both feed the Fig. 13 energy model.
	TriageLLCMetadataAccesses   uint64
	MISBOffChipMetadataAccesses uint64
	// EstimatedMetadataTransfers is the metadata traffic a realistic
	// implementation of an *idealized* prefetcher (STMS, Domino) would
	// have generated; it is charged in Figs. 11/12 traffic but has no
	// timing effect, per the paper's methodology.
	EstimatedMetadataTransfers uint64
	// PrefetchesIssued/Useful/Redundant/Dropped summarize L2
	// prefetching across cores. Redundant requests (already resident)
	// and Dropped requests (full prefetch queue) never consume
	// bandwidth.
	PrefetchesIssued    uint64
	PrefetchesUseful    uint64
	PrefetchesRedundant uint64
	PrefetchesDropped   uint64
}

// IPC returns the arithmetic-mean IPC across cores (single-core: that
// core's IPC).
func (r Result) IPC() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range r.Cores {
		sum += c.IPC()
	}
	return sum / float64(len(r.Cores))
}

// SpeedupOver returns the mean per-core speedup of r relative to a
// baseline run of the same workloads (the paper's multi-programmed
// metric: average of per-benchmark speedups).
func (r Result) SpeedupOver(base Result) float64 {
	if len(r.Cores) != len(base.Cores) || len(r.Cores) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for i := range r.Cores {
		b := base.Cores[i].IPC()
		if b == 0 {
			continue
		}
		sum += r.Cores[i].IPC() / b
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// TotalTraffic returns total off-chip line transfers.
func (r Result) TotalTraffic() uint64 { return r.DRAM.Total() }

// TrafficOverheadPct returns the percentage increase in off-chip
// traffic relative to a baseline run (Figs. 11, 12).
func (r Result) TrafficOverheadPct(base Result) float64 {
	b := float64(base.TotalTraffic())
	if b == 0 {
		return 0
	}
	return 100 * (float64(r.TotalTraffic()) - b) / b
}

// Accuracy returns useful prefetches / prefetch fills at the L2 (the
// paper's accuracy metric, Fig. 6).
func (r Result) Accuracy() float64 {
	var fills, used uint64
	for _, s := range r.L2 {
		fills += s.PrefetchFills
		used += s.PrefetchUsed
	}
	if fills == 0 {
		return 0
	}
	return float64(used) / float64(fills)
}

// CoverageOver returns the fraction of the baseline's L2 demand misses
// that prefetching eliminated (Fig. 6).
func (r Result) CoverageOver(base Result) float64 {
	var bm, pm uint64
	for _, c := range base.Cores {
		bm += c.L2DemandMisses
	}
	for _, c := range r.Cores {
		pm += c.L2DemandMisses
	}
	if bm == 0 {
		return 0
	}
	cov := 1 - float64(pm)/float64(bm)
	if cov < 0 {
		cov = 0
	}
	return cov
}
