package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/bo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// run executes a single-core simulation of the reader with the given
// prefetcher.
func run(t *testing.T, r trace.Reader, pf prefetch.Prefetcher, warm, measure uint64) Result {
	t.Helper()
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{r},
		Prefetchers:         []prefetch.Prefetcher{pf},
		WarmupInstructions:  warm,
		MeasureInstructions: measure,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

func TestOptionsValidation(t *testing.T) {
	_, err := New(Options{Machine: config.Default(1)})
	if err == nil {
		t.Error("missing workloads accepted")
	}
	_, err = New(Options{
		Machine:             config.Default(2),
		Workloads:           []trace.Reader{trace.NewLoopReader([]trace.Record{{}})},
		MeasureInstructions: 10,
	})
	if err == nil {
		t.Error("workload/core count mismatch accepted")
	}
}

func TestNonMemIPCApproachesWidth(t *testing.T) {
	// Pure non-memory instructions retire at the fetch width.
	r := trace.NewLoopReader([]trace.Record{{PC: 1, Op: trace.NonMem}})
	res := run(t, r, nil, 0, 100000)
	if ipc := res.IPC(); ipc < 3.5 || ipc > 4.01 {
		t.Errorf("non-mem IPC = %.2f, want ~4 (fetch width)", ipc)
	}
}

func TestL1HitsAreFast(t *testing.T) {
	// A tiny working set: everything hits L1 after warmup.
	recs := make([]trace.Record, 0, 64)
	for i := 0; i < 32; i++ {
		recs = append(recs, trace.Record{PC: 10, Op: trace.Load, Addr: mem.Addr(i * 64)})
		recs = append(recs, trace.Record{PC: 11, Op: trace.NonMem})
	}
	res := run(t, trace.NewLoopReader(recs), nil, 10000, 100000)
	if ipc := res.IPC(); ipc < 1.0 {
		t.Errorf("L1-resident IPC = %.2f, too low", ipc)
	}
	if res.DRAM.Total() > 64 {
		t.Errorf("L1-resident loop moved %d lines off-chip", res.DRAM.Total())
	}
}

func TestDRAMBoundChaseIsSlow(t *testing.T) {
	// Serialized pointer chase over 32MB: every load ~a DRAM round trip.
	ch := workload.NewChase(workload.ChaseParams{
		Nodes: 512 << 10, Streams: 1, HotFrac: 1, HotProb: 1, RunLen: 1 << 30, Gap: 4,
	}, 1, 0)
	res := run(t, ch, nil, 50000, 300000)
	// ~1 load per 5 instructions, each ~170 cycles serialized:
	// IPC must be well below 0.5.
	if ipc := res.IPC(); ipc > 0.5 {
		t.Errorf("DRAM-bound chase IPC = %.2f, want < 0.5", ipc)
	}
	if res.DRAM.Total() == 0 {
		t.Error("no DRAM traffic on an out-of-LLC chase")
	}
}

func TestTriageSpeedsUpChase(t *testing.T) {
	// The shape that makes temporal prefetching pay off (paper §1): the
	// hot data footprint (8MB) far exceeds the LLC, while its metadata
	// (128K entries = 512KB) fits Triage's 1MB store.
	mk := func() trace.Reader {
		return workload.NewChase(workload.ChaseParams{
			Nodes: 256 << 10, Streams: 2, HotFrac: 0.5, HotProb: 0.9,
			RunLen: 256, Gap: 6,
		}, 1, 0)
	}
	base := run(t, mk(), nil, 4000000, 1000000)
	tri := run(t, mk(), core.New(core.Config{
		Mode: core.Static, StaticBytes: 1 << 20,
		LLCLatencyTicks: 80,
	}), 4000000, 1000000)
	sp := tri.IPC() / base.IPC()
	t.Logf("chase: base IPC %.3f, triage IPC %.3f, speedup %.3f, cov %.2f, acc %.2f",
		base.IPC(), tri.IPC(), sp, tri.CoverageOver(base), tri.Accuracy())
	if sp < 1.05 {
		t.Errorf("Triage speedup on a repeat chase = %.3f, want > 1.05", sp)
	}
	if acc := tri.Accuracy(); acc < 0.5 {
		t.Errorf("Triage accuracy = %.2f, want > 0.5", acc)
	}
}

func TestBOSpeedsUpStride(t *testing.T) {
	// Multiple interleaved streams under one PC: the baseline per-PC L1
	// stride prefetcher fails, BO's address-space offset succeeds.
	mk := func() trace.Reader {
		return workload.NewStride(workload.StrideParams{
			Streams: 4, StrideLines: 1, WorkingSetLines: 0, Gap: 5, SharedPC: true,
		}, 1, 0)
	}
	base := run(t, mk(), nil, 100000, 300000)
	withBO := run(t, mk(), bo.New(), 100000, 300000)
	sp := withBO.IPC() / base.IPC()
	t.Logf("stride: base IPC %.3f, BO IPC %.3f, speedup %.3f", base.IPC(), withBO.IPC(), sp)
	if sp < 1.02 {
		t.Errorf("BO speedup on sequential stream = %.3f, want > 1.02", sp)
	}
}

func TestBODoesNotHelpChase(t *testing.T) {
	mk := func() trace.Reader {
		return workload.NewChase(workload.ChaseParams{
			Nodes: 256 << 10, Streams: 2, HotFrac: 0.2, HotProb: 0.8,
			RunLen: 256, Gap: 6,
		}, 1, 0)
	}
	base := run(t, mk(), nil, 100000, 300000)
	withBO := run(t, mk(), bo.New(), 100000, 300000)
	sp := withBO.IPC() / base.IPC()
	t.Logf("chase+BO: speedup %.3f", sp)
	if sp > 1.10 {
		t.Errorf("BO speedup on pointer chase = %.3f; generator is too regular", sp)
	}
}

func TestTriagePartitionShrinksLLC(t *testing.T) {
	ch := workload.NewChase(workload.ChaseParams{
		Nodes: 128 << 10, Streams: 1, HotFrac: 0.5, HotProb: 0.9, RunLen: 128, Gap: 5,
	}, 1, 0)
	tri := core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20})
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{ch},
		Prefetchers:         []prefetch.Prefetcher{tri},
		WarmupInstructions:  10000,
		MeasureInstructions: 10000,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	// 1MB of a 2MB 16-way LLC = 8 ways.
	if got := m.hier.llc.DataWays(); got != 8 {
		t.Errorf("LLC data ways = %d, want 8 with a 1MB static store", got)
	}
	if got := m.hier.metaWays; got != 8 {
		t.Errorf("metadata ways = %d, want 8", got)
	}
}

func TestNoCapacityLossKeepsAllWays(t *testing.T) {
	ch := workload.NewChase(workload.ChaseParams{
		Nodes: 64 << 10, Streams: 1, HotFrac: 0.5, HotProb: 0.9, RunLen: 128, Gap: 5,
	}, 1, 0)
	tri := core.New(core.Config{Mode: core.Static, StaticBytes: 1 << 20})
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{ch},
		Prefetchers:         []prefetch.Prefetcher{tri},
		MeasureInstructions: 10000,
		NoCapacityLoss:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Run()
	if got := m.hier.llc.DataWays(); got != 16 {
		t.Errorf("LLC data ways = %d, want 16 with NoCapacityLoss", got)
	}
}

func TestMultiCoreSharedLLCContention(t *testing.T) {
	mkOpts := func(cores int) Options {
		ws := make([]trace.Reader, cores)
		for c := range ws {
			ws[c] = workload.NewChase(workload.ChaseParams{
				Nodes: 256 << 10, Streams: 2, HotFrac: 0.3, HotProb: 0.8, RunLen: 128, Gap: 5,
			}, uint64(c+1), mem.Addr(c)<<40)
		}
		return Options{
			Machine:             config.Default(cores),
			Workloads:           ws,
			WarmupInstructions:  50000,
			MeasureInstructions: 150000,
		}
	}
	m1, err := New(mkOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	r1 := m1.Run()
	m4, err := New(mkOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	r4 := m4.Run()
	if len(r4.Cores) != 4 {
		t.Fatalf("got %d core results", len(r4.Cores))
	}
	// Note: 4 cores share bandwidth but each gets 2MB more LLC? No —
	// LLC scales with cores (2MB/core), so per-core IPC should be in
	// the same ballpark, strictly positive.
	for c, cr := range r4.Cores {
		if cr.IPC() <= 0 {
			t.Errorf("core %d IPC = %.3f", c, cr.IPC())
		}
		if cr.Instructions != 150000 {
			t.Errorf("core %d measured %d instructions, want 150000", c, cr.Instructions)
		}
	}
	t.Logf("1-core IPC %.3f; 4-core mean IPC %.3f", r1.IPC(), r4.IPC())
}

func TestBandwidthContentionSlowsCores(t *testing.T) {
	// Streaming workloads saturate the 32GB/s pipe: 16 cores must see
	// much lower per-core IPC than 1 core.
	mk := func(cores int) Result {
		ws := make([]trace.Reader, cores)
		for c := range ws {
			ws[c] = workload.NewStride(workload.StrideParams{
				Streams: 4, StrideLines: 1, WorkingSetLines: 0, Gap: 2,
			}, uint64(c+1), mem.Addr(c)<<40)
		}
		m, err := New(Options{
			Machine:             config.Default(cores),
			Workloads:           ws,
			WarmupInstructions:  20000,
			MeasureInstructions: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m.Run()
	}
	r1 := mk(1)
	r16 := mk(16)
	t.Logf("stream IPC: 1-core %.3f, 16-core %.3f", r1.IPC(), r16.IPC())
	if r16.IPC() > 0.7*r1.IPC() {
		t.Errorf("16-core streaming IPC %.3f vs 1-core %.3f: bandwidth contention not modeled",
			r16.IPC(), r1.IPC())
	}
}

func TestSpeedupAndTrafficHelpers(t *testing.T) {
	base := Result{Cores: []CoreResult{{Instructions: 100, Cycles: 200}}}
	fast := Result{Cores: []CoreResult{{Instructions: 100, Cycles: 100}}}
	if sp := fast.SpeedupOver(base); sp != 2.0 {
		t.Errorf("SpeedupOver = %.2f, want 2.0", sp)
	}
	b := Result{}
	b.DRAM.Transfers[0] = 100
	r := Result{}
	r.DRAM.Transfers[0] = 160
	if pct := r.TrafficOverheadPct(b); pct != 60 {
		t.Errorf("TrafficOverheadPct = %.1f, want 60", pct)
	}
}

func TestExhaustedTraceStopsCleanly(t *testing.T) {
	recs := make([]trace.Record, 500)
	for i := range recs {
		recs[i] = trace.Record{PC: 1, Op: trace.NonMem}
	}
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{trace.NewSliceReader(recs)},
		MeasureInstructions: 10000, // more than the trace has
	})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Run()
	if res.Cores[0].Instructions != 500 {
		t.Errorf("measured %d instructions, want 500 (trace length)", res.Cores[0].Instructions)
	}
}
