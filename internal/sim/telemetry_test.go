package sim

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/prefetch"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func telemetryRun(t *testing.T, hooks *telemetry.Hooks, warm, measure uint64, mode core.Mode) Result {
	t.Helper()
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{triage(mode)},
		WarmupInstructions:  warm,
		MeasureInstructions: measure,
		Telemetry:           hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m.Run()
}

// TestTelemetryDoesNotChangeResults: attaching every hook must be a
// pure observation — the Result is bit-identical to a bare run.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	bare := telemetryRun(t, nil, 400_000, 400_000, core.Dynamic)
	hooks := &telemetry.Hooks{
		Sampler:  telemetry.NewSampler(100_000),
		Events:   telemetry.NewEventTrace(1 << 12),
		Progress: telemetry.NewPoolProgress(0),
	}
	observed := telemetryRun(t, hooks, 400_000, 400_000, core.Dynamic)
	if !reflect.DeepEqual(bare, observed) {
		t.Fatalf("telemetry perturbed the simulation:\nbare:     %+v\nobserved: %+v", bare, observed)
	}
	if len(hooks.Sampler.Samples()) == 0 {
		t.Error("sampler recorded nothing")
	}
	if hooks.Events.Total() == 0 {
		t.Error("event trace recorded nothing")
	}
}

// TestSampledSeriesDeterministic pins the acceptance criterion: two
// identical runs emit byte-identical JSONL, and the series includes
// the per-interval Triage metadata way allocation.
func TestSampledSeriesDeterministic(t *testing.T) {
	series := func() (*telemetry.Sampler, []byte) {
		s := telemetry.NewSampler(50_000)
		telemetryRun(t, &telemetry.Hooks{Sampler: s}, 300_000, 300_000, core.Static)
		var buf bytes.Buffer
		if err := s.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return s, buf.Bytes()
	}
	sa, ja := series()
	_, jb := series()
	if !bytes.Equal(ja, jb) {
		t.Fatalf("sampled JSONL series not deterministic:\n%s\nvs\n%s", ja, jb)
	}
	samples := sa.Samples()
	if len(samples) < 3 {
		t.Fatalf("only %d samples for a 300k-instruction window at 50k interval", len(samples))
	}
	for i, smp := range samples {
		if smp.Interval != i {
			t.Errorf("sample %d has interval %d", i, smp.Interval)
		}
		// Static Triage claims 1MB = 8 of the 16 LLC ways from t=0.
		if got := smp.Cores[0].MetaWays; got != 8 {
			t.Errorf("sample %d MetaWays = %g, want 8 (static 1MB store)", i, got)
		}
		if smp.Cores[0].IPC <= 0 {
			t.Errorf("sample %d has IPC %g", i, smp.Cores[0].IPC)
		}
	}
	// CSV must be deterministic too and carry one row per core.
	var ca bytes.Buffer
	if err := sa.WriteCSV(&ca); err != nil {
		t.Fatal(err)
	}
	if ca.Len() == 0 {
		t.Error("empty CSV")
	}
}

// TestEventTraceCapturesLifecycle checks that a Triage run produces
// the main lifecycle stages plus the partition-resize and predictor
// decision events.
func TestEventTraceCapturesLifecycle(t *testing.T) {
	tr := telemetry.NewEventTrace(1 << 16)
	telemetryRun(t, &telemetry.Hooks{Events: tr}, 1_200_000, 300_000, core.Static)
	seen := map[telemetry.EventKind]int{}
	for _, e := range tr.Events() {
		seen[e.Kind]++
	}
	for _, k := range []telemetry.EventKind{
		telemetry.EvTrained, telemetry.EvIssued, telemetry.EvFilled,
		telemetry.EvUsed, telemetry.EvPredictor,
	} {
		if seen[k] == 0 {
			t.Errorf("no %s events in a trained Triage run (kinds seen: %v)", k, seen)
		}
	}
	// Static Triage resizes the partition 0 -> 8 ways at construction;
	// the ring keeps only the tail, so check the full-run counter via a
	// small fresh trace instead.
	small := telemetry.NewEventTrace(8)
	m, err := New(Options{
		Machine:             config.Default(1),
		Workloads:           []trace.Reader{chase()},
		Prefetchers:         []prefetch.Prefetcher{triage(core.Static)},
		MeasureInstructions: 1,
		Telemetry:           &telemetry.Hooks{Events: small},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	var resized bool
	for _, e := range small.Events() {
		if e.Kind == telemetry.EvPartitionResize {
			resized = true
			if e.A != 0 || e.B != 8 {
				t.Errorf("construction resize = %d -> %d ways, want 0 -> 8", e.A, e.B)
			}
		}
	}
	if !resized {
		t.Error("no partition_resize event at static-Triage construction")
	}
}

// TestProgressSinkSeesEveryInstruction: the chunked live updates plus
// the final flush must account for exactly the simulated instructions.
func TestProgressSinkSeesEveryInstruction(t *testing.T) {
	prog := telemetry.NewPoolProgress(0)
	res := telemetryRun(t, &telemetry.Hooks{Progress: prog}, 150_000, 150_000, core.Static)
	if got := prog.Snapshot().Instructions; got != res.SimulatedInstructions {
		t.Fatalf("progress saw %d instructions, simulator stepped %d", got, res.SimulatedInstructions)
	}
}

// TestTelemetryOffOverheadGuard is the <2% regression guard. The seed
// binary is not runnable from here, so the guard bounds the cost from
// above: the telemetry-disabled path differs from the seed hot loop
// only by nil-guard branches, which cost strictly less than the fully
// *enabled* path measured here. If even enabled-vs-disabled is within
// the budget, the disabled-vs-seed regression is too.
func TestTelemetryOffOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector inflates instrumented-path timings; guard runs in the plain test pass")
	}
	const (
		warm    = 300_000
		measure = 1_200_000
	)
	run := func(hooks *telemetry.Hooks) time.Duration {
		start := time.Now()
		telemetryRun(t, hooks, warm, measure, core.Static)
		return time.Since(start)
	}
	minOf := func(n int, f func() time.Duration) time.Duration {
		best := f()
		for i := 1; i < n; i++ {
			if d := f(); d < best {
				best = d
			}
		}
		return best
	}
	mkHooks := func() *telemetry.Hooks {
		return &telemetry.Hooks{
			Sampler:  telemetry.NewSampler(100_000),
			Events:   telemetry.NewEventTrace(1 << 12),
			Progress: telemetry.NewPoolProgress(0),
		}
	}
	// Allow a few attempts: min-of-N absorbs most scheduler noise, but
	// CI machines still hiccup. The budget is 2% plus a small absolute
	// slack so sub-millisecond jitter can't fail a fast run.
	const slack = 25 * time.Millisecond
	var disabled, enabled time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		disabled = minOf(3, func() time.Duration { return run(nil) })
		enabled = minOf(3, func() time.Duration { return run(mkHooks()) })
		if enabled <= disabled+disabled/50+slack {
			return
		}
	}
	t.Errorf("telemetry overhead too high: enabled %v vs disabled %v (budget 2%% + %v)",
		enabled, disabled, slack)
}
