package sim

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// This file implements warm-state snapshot reuse: after the warmup
// phase, the machine's entire simulated state (hierarchy, prefetchers,
// per-core pipeline state) is deep-copied into a process-wide cache
// keyed by the caller-supplied warm-prefix identity. A later run whose
// warm prefix is identical restores the copy instead of re-simulating
// warmup, then fast-forwards its trace readers by replaying the number
// of records the warm run consumed. Restoration is provably
// output-preserving because the key covers everything that shapes warm
// state (machine config, workloads, prefetcher configuration, warmup
// window — see Options.WarmKey) and the restore is a deep copy: the
// cached snapshot is never aliased by a running machine.
//
// The deep copier is reflection-based and deliberately conservative:
// it refuses any state it does not know how to duplicate (non-nil
// function values, channels, unsafe pointers), so a future field that
// would break value semantics disables reuse (the run falls back to a
// cold warmup) instead of corrupting results. Two fields are skipped
// by name: the hierarchy's devirtualized hook table (l2train, rebuilt
// by resolveHooks after restore — bound method values captured the old
// receivers) and each core's trace reader (readers hold rng state that
// must not be shared; they are fast-forwarded by replay instead).

// warmSnapshot is one cached post-warmup machine state. hier and cores
// are pristine deep copies owned by the cache; restores copy them
// again, so a snapshot can seed any number of runs.
type warmSnapshot struct {
	hier  *hierarchy
	cores []*coreState // reader fields nil; consumed counts preserved
	steps uint64
	sig   string // structural signature double-checking the caller's key
	bytes int64  // approximate heap bytes, for cache accounting
}

// WarmCache is the process-wide snapshot store. It is size-bounded
// (approximate bytes, least-recently-used eviction) and safe for
// concurrent use by parallel runs.
type WarmCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	snaps  map[string]*warmSnapshot
	order  []string // LRU order, oldest first
	hits   uint64
	misses uint64
	stores uint64
}

// DefaultWarmCacheBytes bounds the default process-wide cache. A
// snapshot costs roughly the machine's simulated state (a few to a few
// tens of MB depending on the prefetcher), so this holds on the order
// of a hundred warm states.
const DefaultWarmCacheBytes = 2 << 30

var processWarmCache = NewWarmCache(DefaultWarmCacheBytes)

// GlobalWarmCache returns the process-wide cache used by runs whose
// Options name a WarmKey.
func GlobalWarmCache() *WarmCache { return processWarmCache }

// NewWarmCache returns an empty cache bounded to roughly budget bytes.
func NewWarmCache(budget int64) *WarmCache {
	return &WarmCache{budget: budget, snaps: make(map[string]*warmSnapshot)}
}

// Stats reports cache activity: restores served, lookups that missed,
// and snapshots stored.
func (wc *WarmCache) Stats() (hits, misses, stores uint64) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	return wc.hits, wc.misses, wc.stores
}

// Reset drops every cached snapshot and zeroes the stats counters
// (tests and benchmarks that need a known-cold cache).
func (wc *WarmCache) Reset() {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	wc.snaps = make(map[string]*warmSnapshot)
	wc.order = nil
	wc.used = 0
	wc.hits, wc.misses, wc.stores = 0, 0, 0
}

func (wc *WarmCache) get(key string) *warmSnapshot {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	s := wc.snaps[key]
	if s == nil {
		wc.misses++
		return nil
	}
	wc.hits++
	wc.touch(key)
	return s
}

func (wc *WarmCache) put(key string, s *warmSnapshot) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if old := wc.snaps[key]; old != nil {
		// Concurrent warm runs of the same key race to store identical
		// state; first write wins and stays LRU-fresh.
		wc.touch(key)
		return
	}
	if s.bytes > wc.budget {
		return // larger than the whole cache: not worth thrashing
	}
	for wc.used+s.bytes > wc.budget && len(wc.order) > 0 {
		oldest := wc.order[0]
		wc.order = wc.order[1:]
		if ev := wc.snaps[oldest]; ev != nil {
			wc.used -= ev.bytes
			delete(wc.snaps, oldest)
		}
	}
	wc.snaps[key] = s
	wc.order = append(wc.order, key)
	wc.used += s.bytes
	wc.stores++
}

func (wc *WarmCache) touch(key string) {
	for i, k := range wc.order {
		if k == key {
			copy(wc.order[i:], wc.order[i+1:])
			wc.order[len(wc.order)-1] = key
			return
		}
	}
}

// warmEligible reports whether this run may participate in snapshot
// reuse. An attached event trace binds prefetchers to an external sink
// a deep copy cannot re-bind, and the invariant checker's polling
// points would be skipped by a restored warmup, so both disable reuse;
// samplers and progress sinks only observe the measurement phase and
// stay compatible.
func (m *Machine) warmEligible() bool {
	if m.opts.WarmKey == "" || m.opts.WarmupInstructions == 0 {
		return false
	}
	if m.opts.CheckEvery > 0 {
		return false
	}
	if m.opts.Telemetry != nil && m.opts.Telemetry.Events != nil {
		return false
	}
	return true
}

// warmSignature is the simulator-side identity of the warm prefix:
// everything Options contributes to warm state except the prefetcher
// and workload configuration, which only the caller can name (they are
// interfaces here) and which WarmKey must therefore cover. A key
// collision across different machine shapes is still caught by this
// signature rather than corrupting a run.
func (m *Machine) warmSignature() string {
	detailed := m.opts.Machine.Cores > 1
	if m.opts.DetailedDRAM != nil {
		detailed = *m.opts.DetailedDRAM
	}
	return fmt.Sprintf("%+v/warm%d/pol%s/dram%v/ncl%v/cores%d",
		m.opts.Machine, m.opts.WarmupInstructions, m.opts.LLCPolicy,
		detailed, m.opts.NoCapacityLoss, len(m.cores))
}

// saveWarm deep-copies the machine's post-warmup state into the
// process cache. Failures (a prefetcher grew state the copier refuses)
// are silent: the run proceeds normally and later runs warm up cold.
func (m *Machine) saveWarm() {
	snap, err := m.snapshot()
	if err != nil {
		return
	}
	processWarmCache.put(m.opts.WarmKey, snap)
}

// tryRestoreWarm restores a cached warm state for this machine's key.
// It returns false (leaving the machine untouched) when no snapshot
// exists, the signature disagrees, or the copy fails.
func (m *Machine) tryRestoreWarm() bool {
	snap := processWarmCache.get(m.opts.WarmKey)
	if snap == nil || snap.sig != m.warmSignature() || len(snap.cores) != len(m.cores) {
		return false
	}
	c := newCopier()
	hv, err := c.copyValue(reflect.ValueOf(snap.hier))
	if err != nil {
		return false
	}
	cores := make([]*coreState, len(snap.cores))
	for i, cs := range snap.cores {
		cv, err := c.copyValue(reflect.ValueOf(cs))
		if err != nil {
			return false
		}
		cores[i] = cv.Interface().(*coreState)
	}
	// Point of no return: mutate the machine.
	m.hier = hv.Interface().(*hierarchy)
	m.cores = cores
	m.steps = snap.steps
	for i, cs := range m.cores {
		cs.reader = m.opts.Workloads[i]
		for n := uint64(0); n < cs.consumed; n++ {
			cs.reader.Next()
		}
	}
	// Rebind everything that holds receivers or interface views of the
	// old object graph.
	m.hier.resolveHooks()
	m.resolveProbes()
	return true
}

// snapshot deep-copies the machine's current simulated state.
func (m *Machine) snapshot() (*warmSnapshot, error) {
	c := newCopier()
	c.max = maxSnapshotBytes
	hv, err := c.copyValue(reflect.ValueOf(m.hier))
	if err != nil {
		return nil, err
	}
	snap := &warmSnapshot{
		hier:  hv.Interface().(*hierarchy),
		steps: m.steps,
		sig:   m.warmSignature(),
	}
	for _, cs := range m.cores {
		cv, err := c.copyValue(reflect.ValueOf(cs))
		if err != nil {
			return nil, err
		}
		snap.cores = append(snap.cores, cv.Interface().(*coreState))
	}
	snap.bytes = c.bytes
	return snap, nil
}

// --- reflection deep copier ---

var (
	hierarchyType = reflect.TypeOf(hierarchy{})
	coreStateType = reflect.TypeOf(coreState{})
)

// skipField names the fields the copier leaves zero in the copy; each
// has a dedicated rebuild path after restore (see the file comment).
func skipField(owner reflect.Type, name string) bool {
	switch owner {
	case hierarchyType:
		// Bound method values capture the old hierarchy's prefetchers;
		// resolveHooks rebuilds them (and the derived observer and
		// partitioner views) against the copy.
		return name == "l2train" || name == "l2oo" || name == "l2fo" || name == "partitioners"
	case coreStateType:
		return name == "reader"
	}
	return false
}

type memoKey struct {
	ptr unsafe.Pointer
	t   reflect.Type
}

type copier struct {
	memo  map[memoKey]reflect.Value
	bytes int64
	// max, when non-zero, aborts the copy once bytes exceeds it. Saves
	// are capped (a snapshot that large costs more to copy than the
	// warmup it might save, and would evict many smaller, more reusable
	// snapshots); restores are not — whatever was stored is worth
	// copying back out.
	max int64
}

func newCopier() *copier {
	return &copier{memo: make(map[memoKey]reflect.Value)}
}

// errSnapshotTooLarge aborts an over-budget save mid-copy.
var errSnapshotTooLarge = errors.New("sim: warm snapshot exceeds size cap")

// maxSnapshotBytes caps one saved snapshot at 1/16 of the default
// cache budget (128MB). Single-core machines are a few dozen MB and
// always fit; what this excludes is the many-core machines with
// hundred-MB prefetcher metadata (e.g. 16-core MISB), whose deep copy
// and GC pressure cost more than a cold warmup does.
const maxSnapshotBytes = DefaultWarmCacheBytes / 16

// plainKind caches whether a type contains no Go pointers at any depth
// (strings count as plain: they are immutable and safe to share), so
// the bulk arrays of the cache and metadata stores copy via memmove
// instead of element-wise reflection.
var plainKind sync.Map // reflect.Type -> bool

func isPlain(t reflect.Type) bool {
	if v, ok := plainKind.Load(t); ok {
		return v.(bool)
	}
	plain := false
	switch t.Kind() {
	case reflect.Bool, reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128, reflect.String:
		plain = true
	case reflect.Array:
		plain = isPlain(t.Elem())
	case reflect.Struct:
		plain = true
		for i := 0; i < t.NumField(); i++ {
			if !isPlain(t.Field(i).Type) {
				plain = false
				break
			}
		}
	}
	plainKind.Store(t, plain)
	return plain
}

// readable returns v in a form whose value can be read even when it
// came from an unexported field.
func readable(v reflect.Value) reflect.Value {
	if v.CanInterface() || !v.CanAddr() {
		return v
	}
	return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem()
}

// copyValue returns a deep copy of v. v must be a value readable by
// this copier (top-level calls pass exported values; recursion handles
// unexported fields through readable).
func (c *copier) copyValue(v reflect.Value) (reflect.Value, error) {
	t := v.Type()
	if isPlain(t) {
		return v, nil
	}
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return reflect.Zero(t), nil
		}
		key := memoKey{unsafe.Pointer(v.Pointer()), t}
		if dup, ok := c.memo[key]; ok {
			return dup, nil
		}
		dup := reflect.New(t.Elem())
		c.memo[key] = dup
		c.bytes += int64(t.Elem().Size())
		if c.max > 0 && c.bytes > c.max {
			return reflect.Value{}, errSnapshotTooLarge
		}
		if err := c.copyInto(dup.Elem(), v.Elem()); err != nil {
			return reflect.Value{}, err
		}
		return dup, nil
	case reflect.Slice:
		if v.IsNil() {
			return reflect.Zero(t), nil
		}
		n := v.Len()
		c.bytes += int64(n) * int64(t.Elem().Size())
		if c.max > 0 && c.bytes > c.max {
			return reflect.Value{}, errSnapshotTooLarge
		}
		dup := reflect.MakeSlice(t, n, n)
		if isPlain(t.Elem()) {
			reflect.Copy(dup, readable(v))
			return dup, nil
		}
		for i := 0; i < n; i++ {
			if err := c.copyInto(dup.Index(i), v.Index(i)); err != nil {
				return reflect.Value{}, err
			}
		}
		return dup, nil
	case reflect.Array:
		dup := reflect.New(t).Elem()
		for i := 0; i < v.Len(); i++ {
			if err := c.copyInto(dup.Index(i), v.Index(i)); err != nil {
				return reflect.Value{}, err
			}
		}
		return dup, nil
	case reflect.Map:
		if v.IsNil() {
			return reflect.Zero(t), nil
		}
		src := readable(v)
		dup := reflect.MakeMapWithSize(t, src.Len())
		c.bytes += int64(src.Len()) * int64(t.Key().Size()+t.Elem().Size()+16)
		iter := src.MapRange()
		for iter.Next() {
			k, err := c.copyValue(iter.Key())
			if err != nil {
				return reflect.Value{}, err
			}
			val, err := c.copyValue(iter.Value())
			if err != nil {
				return reflect.Value{}, err
			}
			dup.SetMapIndex(k, val)
		}
		return dup, nil
	case reflect.Interface:
		if v.IsNil() {
			return reflect.Zero(t), nil
		}
		inner, err := c.copyValue(readable(v).Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		dup := reflect.New(t).Elem()
		dup.Set(inner)
		return dup, nil
	case reflect.Struct:
		dup := reflect.New(t).Elem()
		if err := c.copyInto(dup, v); err != nil {
			return reflect.Value{}, err
		}
		return dup, nil
	case reflect.Func:
		if readable(v).IsNil() {
			return reflect.Zero(t), nil
		}
		return reflect.Value{}, fmt.Errorf("sim: snapshot: cannot copy func value of type %v", t)
	default:
		return reflect.Value{}, fmt.Errorf("sim: snapshot: cannot copy %v of type %v", v.Kind(), t)
	}
}

// copyInto deep-copies src into the addressable dst (same type).
// Unexported destinations are written through unsafe addressing.
func (c *copier) copyInto(dst, src reflect.Value) error {
	t := src.Type()
	if isPlain(t) {
		writable(dst).Set(readable(src))
		return nil
	}
	if t.Kind() == reflect.Struct {
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			sf := readable(src.Field(i))
			if skipField(t, f.Name) {
				continue
			}
			if err := c.copyInto(dst.Field(i), sf); err != nil {
				return fmt.Errorf("%v.%s: %w", t, f.Name, err)
			}
		}
		return nil
	}
	dup, err := c.copyValue(readable(src))
	if err != nil {
		return err
	}
	writable(dst).Set(dup)
	return nil
}

// writable returns dst in a form that can be Set even when it is an
// unexported field.
func writable(dst reflect.Value) reflect.Value {
	if dst.CanSet() {
		return dst
	}
	return reflect.NewAt(dst.Type(), unsafe.Pointer(dst.UnsafeAddr())).Elem()
}
