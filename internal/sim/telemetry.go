package sim

import (
	"math"

	"repro/internal/cache"
	"repro/internal/prefetch"
	"repro/internal/telemetry"
)

// This file is the sim side of the telemetry layer: the sampler's
// snapshot-and-delta bookkeeping and the event-trace plumbing into
// prefetchers. All of it is inert unless Options.Telemetry is set.

// corePrev holds one core's counters at the previous sample point, so
// takeSample can report interval rates instead of cumulative ones.
type corePrev struct {
	instr   uint64
	tick    uint64
	l2      cache.Stats
	lookups uint64
	hits    uint64
}

// traceBinder is implemented by prefetchers that can emit structured
// events (Triage's Hawkeye predictor decisions).
type traceBinder interface {
	BindEventTrace(*telemetry.EventTrace)
}

// bindEventTrace attaches tr to p, unwrapping hybrids.
func bindEventTrace(p prefetch.Prefetcher, tr *telemetry.EventTrace) {
	walkParts(p, func(leaf prefetch.Prefetcher) {
		if tb, ok := leaf.(traceBinder); ok {
			tb.BindEventTrace(tr)
		}
	})
}

// lookupCounter is implemented by prefetchers with a metadata store
// whose lookup hit rate the sampler reports (Triage).
type lookupCounter interface {
	LookupCounts() (lookups, hits uint64)
}

// lookupCountsFor sums core c's cumulative metadata lookups/hits over
// the counters resolveProbes cached at construction.
func (m *Machine) lookupCountsFor(c int) (lookups, hits uint64) {
	for _, lc := range m.lookupFns[c] {
		l, h := lc.LookupCounts()
		lookups += l
		hits += h
	}
	return lookups, hits
}

// now returns the machine's current time: the max retire tick across
// cores (shared-resource timestamps never run ahead of it for long).
func (m *Machine) now() uint64 {
	var max uint64
	for _, cs := range m.cores {
		if cs.lastRetire > max {
			max = cs.lastRetire
		}
	}
	return max
}

// startSampling arms the sampler at the start of the measurement
// window (stats have just been reset) and records the baseline
// snapshot the first interval's deltas are taken against.
func (m *Machine) startSampling() {
	if m.sampler == nil || m.sampler.Every() == 0 {
		return
	}
	m.sampleCountdown = m.sampler.Every()
	m.sampleIdx = 0
	m.prevCores = make([]corePrev, len(m.cores))
	for c, cs := range m.cores {
		lk, ht := m.lookupCountsFor(c)
		m.prevCores[c] = corePrev{
			instr:   cs.instructions,
			tick:    cs.lastRetire,
			l2:      m.hier.l2[c].Stats(),
			lookups: lk,
			hits:    ht,
		}
	}
	m.prevLLC = m.hier.llc.Stats()
	m.prevDRAM = m.hier.ram.Stats()
	m.prevTick = m.now()
}

// takeSample appends one interval snapshot to the sampler.
func (m *Machine) takeSample() {
	smp := telemetry.Sample{
		Interval: m.sampleIdx,
		Tick:     m.now(),
		Cores:    make([]telemetry.CoreSample, len(m.cores)),
	}
	var dInstrTotal uint64
	for c, cs := range m.cores {
		prev := &m.prevCores[c]
		l2 := m.hier.l2[c].Stats()
		lk, ht := m.lookupCountsFor(c)

		dInstr := cs.instructions - prev.instr
		dTicks := cs.lastRetire - prev.tick
		dMisses := l2.Misses - prev.l2.Misses
		dFills := l2.PrefetchFills - prev.l2.PrefetchFills
		dUsed := l2.PrefetchUsed - prev.l2.PrefetchUsed
		dLookups := lk - prev.lookups
		dHits := ht - prev.hits
		dInstrTotal += dInstr

		out := &smp.Cores[c]
		out.Core = c
		out.Instructions = cs.instructions
		if dTicks > 0 {
			out.IPC = round6(float64(dInstr) * dramTicksPerCycle / float64(dTicks))
		}
		if dInstr > 0 {
			out.L2MPKI = round6(float64(dMisses) * 1000 / float64(dInstr))
		}
		if dFills > 0 {
			out.Accuracy = round6(float64(dUsed) / float64(dFills))
		}
		if dUsed+dMisses > 0 {
			out.Covered = round6(float64(dUsed) / float64(dUsed+dMisses))
		}
		out.MetaWays = round6(m.hier.metaWaysOf(c))
		if dLookups > 0 {
			out.MetaHitRate = round6(float64(dHits) / float64(dLookups))
		}

		prev.instr = cs.instructions
		prev.tick = cs.lastRetire
		prev.l2 = l2
		prev.lookups = lk
		prev.hits = ht
	}
	llc := m.hier.llc.Stats()
	ram := m.hier.ram.Stats()
	dLLCMisses := llc.Misses - m.prevLLC.Misses
	dLines := ram.Total() - m.prevDRAM.Total()
	dTicks := smp.Tick - m.prevTick

	for _, cs := range m.cores {
		smp.Instructions += cs.instructions
	}
	if dInstrTotal > 0 {
		smp.LLCMPKI = round6(float64(dLLCMisses) * 1000 / float64(dInstrTotal))
	}
	smp.DRAMLines = dLines
	if dTicks > 0 {
		busy := float64(dLines) * float64(m.hier.ram.TransferTicks()) /
			(float64(dTicks) * float64(m.hier.ram.Channels()))
		if busy > 1 {
			busy = 1
		}
		smp.DRAMBusy = round6(busy)
	}

	m.prevLLC = llc
	m.prevDRAM = ram
	m.prevTick = smp.Tick
	m.sampleIdx++
	m.sampler.Add(smp)
}

// dramTicksPerCycle mirrors dram.TicksPerCycle as a float for IPC.
const dramTicksPerCycle = 4.0

// round6 rounds to 6 decimal places so the emitted series stays
// compact and stable under formatting.
func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }
