package sim

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/prefetch"
	"repro/internal/prefetch/stride"
	"repro/internal/replacement"
	"repro/internal/telemetry"
)

// mshrRing models a bank of K miss-status-holding registers as a
// K-server queue: a request arriving at t starts no earlier than the
// completion of the request K slots ago. Requests are inserted in
// program order per core, so FIFO reuse is a faithful approximation.
type mshrRing struct {
	slots []uint64
	head  int
}

func newMSHRRing(k int) mshrRing { return mshrRing{slots: make([]uint64, k)} }

// admit returns the earliest start time for a request arriving at t,
// plus the reserved slot index the caller passes to commit with the
// request's completion. Returning an index instead of a commit closure
// keeps the demand path allocation-free.
func (m *mshrRing) admit(t uint64) (start uint64, slot int) {
	h := m.head
	if f := m.slots[h]; f > t {
		t = f
	}
	m.head = h + 1
	if m.head == len(m.slots) {
		m.head = 0
	}
	return t, h
}

// commit records the completion tick of the request holding slot.
func (m *mshrRing) commit(slot int, done uint64) { m.slots[slot] = done }

// tryAdmit is the non-blocking variant used for prefetches: when every
// slot is busy at t the request is rejected (ChampSim drops prefetches
// on a full prefetch queue rather than delaying them — a delayed
// prefetch would be worse than the demand miss it replaces).
func (m *mshrRing) tryAdmit(t uint64) (slot int, ok bool) {
	h := m.head
	if m.slots[h] > t {
		return -1, false
	}
	m.head = h + 1
	if m.head == len(m.slots) {
		m.head = 0
	}
	return h, true
}

// hierarchy owns the caches, DRAM and prefetchers of one machine.
type hierarchy struct {
	cfg config.Machine

	l1  []*cache.Cache // per core
	l2  []*cache.Cache // per core
	llc *cache.Cache   // shared
	ram *dram.DRAM

	l1pf []*stride.Prefetcher  // optional per-core L1 stride prefetcher
	l2pf []prefetch.Prefetcher // per-core L2 prefetcher (may be nil)

	// Devirtualized per-core prefetcher hooks, resolved once in
	// newHierarchy (and again after a warm-state restore): the Train
	// entry point as a bound function value and the optional observer
	// interfaces. The hot path never repeats the type assertions.
	l2train []func(prefetch.Event) []prefetch.Request
	l2oo    []prefetch.OutcomeObserver
	l2fo    []prefetch.FillObserver

	// Per-core queueing: demand MSHRs at L1 and L2, and the prefetch
	// queue below the L2 (finite MLP; what makes prefetching matter).
	// Stored by value so the rings live in three contiguous arrays.
	l1mshr []mshrRing
	l2mshr []mshrRing
	pfq    []mshrRing

	// Latencies in ticks.
	l1Lat, l2Lat, llcLat uint64

	noCapacityLoss bool
	metaWays       int
	partitioners   [][]metadataPartitioner // per core

	// Fig 19: time-averaged per-core metadata ways.
	waySamples []float64
	waySampleN uint64
	lastWants  []int

	// tr, when non-nil, receives prefetch-lifecycle and
	// partition-resize events. Every emission site is nil-guarded so
	// the disabled path costs one predictable branch off the per-
	// instruction loop.
	tr *telemetry.EventTrace

	// Energy counters (prefetch.Env).
	triageMetaAccesses uint64
	metaLineRR         uint64 // rotates MISB metadata over banks

	pfIssued, pfUseful, pfRedundant, pfDropped uint64
}

// metadataPartitioner is implemented by prefetchers that claim LLC
// capacity for metadata (Triage).
type metadataPartitioner interface {
	DesiredMetadataBytes() int
}

// partsOf unwraps hybrid prefetchers to find partitioners.
type partsProvider interface {
	Parts() []prefetch.Prefetcher
}

// walkParts visits the leaf prefetchers of p, unwrapping hybrids. It is
// the one traversal shared by every construction-time interface probe
// (partitioners, invariant checkers, event-trace binders, estimators).
func walkParts(p prefetch.Prefetcher, fn func(prefetch.Prefetcher)) {
	if p == nil {
		return
	}
	if pp, ok := p.(partsProvider); ok {
		for _, part := range pp.Parts() {
			walkParts(part, fn)
		}
		return
	}
	fn(p)
}

func findPartitioners(p prefetch.Prefetcher) []metadataPartitioner {
	var out []metadataPartitioner
	walkParts(p, func(leaf prefetch.Prefetcher) {
		if mp, ok := leaf.(metadataPartitioner); ok {
			out = append(out, mp)
		}
	})
	return out
}

func newHierarchy(cfg config.Machine, l2pf []prefetch.Prefetcher, llcPolicy string, detailedDRAM, noCapacityLoss bool, tr *telemetry.EventTrace) *hierarchy {
	h := &hierarchy{
		cfg:            cfg,
		ram:            dram.New(cfg, detailedDRAM),
		l2pf:           l2pf,
		tr:             tr,
		l1Lat:          uint64(cfg.L1Latency) * dram.TicksPerCycle,
		l2Lat:          uint64(cfg.L2Latency) * dram.TicksPerCycle,
		llcLat:         uint64(cfg.LLCLatency+cfg.LLCExtraLatency) * dram.TicksPerCycle,
		noCapacityLoss: noCapacityLoss,
		waySamples:     make([]float64, cfg.Cores),
		lastWants:      make([]int, cfg.Cores),
	}
	for c := 0; c < cfg.Cores; c++ {
		h.l1 = append(h.l1, cache.New("l1", cfg.L1Sets(), cfg.L1Ways, replacement.NewLRU(cfg.L1Sets(), cfg.L1Ways)))
		h.l2 = append(h.l2, cache.New("l2", cfg.L2Sets(), cfg.L2Ways, replacement.NewLRU(cfg.L2Sets(), cfg.L2Ways)))
		h.l1mshr = append(h.l1mshr, newMSHRRing(cfg.L1MSHRs))
		h.l2mshr = append(h.l2mshr, newMSHRRing(cfg.L2MSHRs))
		h.pfq = append(h.pfq, newMSHRRing(cfg.PrefetchQueue))
		if cfg.L1StridePrefetcher {
			h.l1pf = append(h.l1pf, stride.New())
		} else {
			h.l1pf = append(h.l1pf, nil)
		}
	}
	llcSets := cfg.LLCSets()
	var pol replacement.Policy
	switch llcPolicy {
	case "hawkeye":
		pol = replacement.NewHawkeye(llcSets, cfg.LLCWays, 64, 13)
	default:
		pol = replacement.NewLRU(llcSets, cfg.LLCWays)
	}
	h.llc = cache.New("llc", llcSets, cfg.LLCWays, pol)
	for _, p := range l2pf {
		if eu, ok := p.(prefetch.EnvUser); ok {
			eu.Bind(h)
		}
	}
	h.resolveHooks()
	h.applyPartition(0)
	return h
}

// resolveHooks builds the devirtualized dispatch tables from the
// current per-core prefetcher set. It runs once at construction and
// once after a warm-state restore replaces the prefetcher objects;
// bound function values must be rebuilt then because they capture the
// receiver they were resolved against.
func (h *hierarchy) resolveHooks() {
	cores := len(h.l2pf)
	h.l2train = make([]func(prefetch.Event) []prefetch.Request, cores)
	h.l2oo = make([]prefetch.OutcomeObserver, cores)
	h.l2fo = make([]prefetch.FillObserver, cores)
	h.partitioners = make([][]metadataPartitioner, cores)
	for c, p := range h.l2pf {
		if p == nil {
			continue
		}
		h.l2train[c] = p.Train
		if oo, ok := p.(prefetch.OutcomeObserver); ok {
			h.l2oo[c] = oo
		}
		if fo, ok := p.(prefetch.FillObserver); ok {
			h.l2fo[c] = fo
		}
		h.partitioners[c] = findPartitioners(p)
	}
}

// --- prefetch.Env ---

// MetadataRead implements prefetch.Env: one off-chip metadata block
// read, contending for DRAM bandwidth like any other transfer.
func (h *hierarchy) MetadataRead(now uint64) uint64 {
	h.metaLineRR++
	return h.ram.Access(now, mem.Line(h.metaLineRR), dram.MetadataRead)
}

// MetadataWrite implements prefetch.Env.
func (h *hierarchy) MetadataWrite(now uint64) {
	h.metaLineRR++
	h.ram.Access(now, mem.Line(h.metaLineRR), dram.MetadataWrite)
}

// LLCMetadataAccess implements prefetch.Env.
func (h *hierarchy) LLCMetadataAccess(n int) {
	h.triageMetaAccesses += uint64(n)
}

// --- partitioning ---

// applyPartition converts the per-core metadata desires into LLC way
// allocation. Each core's wish is clamped so the total never exceeds
// half the LLC (Fig. 19 caps metadata at 50%). now stamps the resize
// event when the allocation changes.
func (h *hierarchy) applyPartition(now uint64) {
	total := 0
	for c := range h.partitioners {
		want := 0
		for _, p := range h.partitioners[c] {
			want += p.DesiredMetadataBytes()
		}
		h.lastWants[c] = want
		total += want
	}
	if h.noCapacityLoss {
		return
	}
	bytesPerWay := h.llc.Sets() * mem.LineSize
	ways := (total + bytesPerWay/2) / bytesPerWay
	if max := h.cfg.LLCWays / 2; ways > max {
		ways = max
	}
	if ways == h.metaWays {
		return
	}
	if h.tr != nil {
		h.tr.Emit(telemetry.Event{
			Tick: now, Kind: telemetry.EvPartitionResize, Core: -1,
			A: int64(h.metaWays), B: int64(ways),
		})
	}
	h.metaWays = ways
	evs := h.llc.SetDataWays(h.cfg.LLCWays - ways)
	// Flushed dirty lines are written back (the paper flushes the
	// reallocated portion immediately).
	for _, ev := range evs {
		if ev.Dirty {
			h.ram.Access(0, ev.Line, dram.Writeback)
		}
	}
}

// sampleWays records the per-core metadata allocation for Fig. 19. The
// recorded unit is LLC ways of the shared cache attributable to each
// core's wish.
func (h *hierarchy) sampleWays() {
	h.waySampleN++
	bytesPerWay := float64(h.llc.Sets() * mem.LineSize)
	for c := range h.lastWants {
		h.waySamples[c] += float64(h.lastWants[c]) / bytesPerWay
	}
}

// metaWaysOf returns core c's current metadata wish in LLC ways (the
// instantaneous Fig. 19 quantity, sampled by the telemetry layer).
func (h *hierarchy) metaWaysOf(c int) float64 {
	return float64(h.lastWants[c]) / float64(h.llc.Sets()*mem.LineSize)
}

// --- the access paths ---

// load performs a demand load for core c and returns the data-ready tick.
func (h *hierarchy) load(c int, pc uint64, line mem.Line, now uint64) uint64 {
	acc := replacement.Access{Line: line, PC: pc, Core: c}

	if r := h.l1[c].Access(line, acc, now); r.Hit {
		ready := now + h.l1Lat
		if r.ReadyTick > ready {
			ready = r.ReadyTick
		}
		h.trainL1(c, pc, line, now)
		return ready
	}
	h.trainL1(c, pc, line, now)

	// L1 miss: allocate an L1 MSHR; it is held until the fill arrives.
	t, slotL1 := h.l1mshr[c].admit(now)
	var ready uint64

	if r := h.l2[c].Access(line, acc, t); r.Hit {
		ready = t + h.l2Lat
		if r.ReadyTick > ready {
			ready = r.ReadyTick
		}
		h.fill(h.l1[c], c, line, acc, false, ready)
		h.l1mshr[c].commit(slotL1, ready)
		if r.WasPrefetch {
			if h.tr != nil {
				h.tr.Emit(telemetry.Event{Tick: t, Kind: telemetry.EvUsed, Core: int32(c), Level: 2, Line: uint64(line), PC: pc})
			}
			// Demand hit on a prefetched L2 line: a training event.
			h.trainL2(c, prefetch.Event{PC: pc, Line: line, Core: c, PrefetchHit: true, Tick: t})
		}
		return ready
	}

	// L2 demand miss: training event regardless of LLC outcome.
	ev := prefetch.Event{PC: pc, Line: line, Core: c, Miss: true, Tick: t}
	t2, slotL2 := h.l2mshr[c].admit(t)
	if r := h.llc.Access(line, acc, t2); r.Hit {
		ready = t2 + h.llcLat
		if r.ReadyTick > ready {
			ready = r.ReadyTick
		}
		if r.WasPrefetch && h.tr != nil {
			h.tr.Emit(telemetry.Event{Tick: t2, Kind: telemetry.EvUsed, Core: int32(c), Level: 3, Line: uint64(line), PC: pc})
		}
	} else {
		ready = h.ram.Access(t2, line, dram.DemandRead)
		h.fill(h.llc, c, line, acc, false, ready)
	}
	h.l2mshr[c].commit(slotL2, ready)
	h.fill(h.l2[c], c, line, acc, false, ready)
	h.observeL2Fill(c, line, false, ready)
	h.fill(h.l1[c], c, line, acc, false, ready)
	h.l1mshr[c].commit(slotL1, ready)
	h.trainL2(c, ev)
	return ready
}

// store performs a demand store; the core does not wait (posted), but
// the line is write-allocated and dirtied.
func (h *hierarchy) store(c int, pc uint64, line mem.Line, now uint64) {
	acc := replacement.Access{Line: line, PC: pc, Core: c}
	if r := h.l1[c].Access(line, acc, now); r.Hit {
		h.l1[c].MarkDirty(line)
		h.trainL1(c, pc, line, now)
		return
	}
	h.trainL1(c, pc, line, now)
	t, slotL1 := h.l1mshr[c].admit(now)
	if r := h.l2[c].Access(line, acc, t); r.Hit {
		ready := t + h.l2Lat
		if r.ReadyTick > ready {
			ready = r.ReadyTick
		}
		h.fill(h.l1[c], c, line, acc, true, ready)
		h.l1mshr[c].commit(slotL1, ready)
		if r.WasPrefetch {
			if h.tr != nil {
				h.tr.Emit(telemetry.Event{Tick: t, Kind: telemetry.EvUsed, Core: int32(c), Level: 2, Line: uint64(line), PC: pc})
			}
			h.trainL2(c, prefetch.Event{PC: pc, Line: line, Core: c, PrefetchHit: true, Store: true, Tick: t})
		}
		return
	}
	ev := prefetch.Event{PC: pc, Line: line, Core: c, Miss: true, Store: true, Tick: t}
	t2, slotL2 := h.l2mshr[c].admit(t)
	var ready uint64
	if r := h.llc.Access(line, acc, t2); r.Hit {
		ready = t2 + h.llcLat
	} else {
		ready = h.ram.Access(t2, line, dram.DemandRead) // write-allocate fetch
		h.fill(h.llc, c, line, acc, false, ready)
	}
	h.l2mshr[c].commit(slotL2, ready)
	h.fill(h.l2[c], c, line, acc, false, ready)
	h.observeL2Fill(c, line, false, ready)
	h.fill(h.l1[c], c, line, acc, true, ready)
	h.l1mshr[c].commit(slotL1, ready)
	h.trainL2(c, ev)
}

// fill installs a line and routes the displaced victim's writeback.
func (h *hierarchy) fill(dst *cache.Cache, c int, line mem.Line, acc replacement.Access, dirty bool, ready uint64) {
	ev := dst.Fill(line, acc, dirty, ready)
	if !ev.Valid {
		return
	}
	if ev.Prefetch && h.tr != nil {
		switch dst {
		case h.l2[c]:
			h.tr.Emit(telemetry.Event{Tick: ready, Kind: telemetry.EvEvictedUnused, Core: int32(ev.Core), Level: 2, Line: uint64(ev.Line)})
		case h.llc:
			h.tr.Emit(telemetry.Event{Tick: ready, Kind: telemetry.EvEvictedUnused, Core: int32(ev.Core), Level: 3, Line: uint64(ev.Line)})
		}
	}
	if !ev.Dirty {
		return
	}
	switch dst {
	case h.l1[c]:
		// L1 victim writes back into L2 (mark dirty if present; install
		// otherwise — simplified non-inclusive writeback).
		h.l2[c].MarkDirty(ev.Line)
	case h.l2[c]:
		h.llc.MarkDirty(ev.Line)
	case h.llc:
		h.ram.Access(ready, ev.Line, dram.Writeback)
	}
}

// trainL1 runs the baseline L1 stride prefetcher; its prefetches fill
// the L1 and L2 without training the L2 prefetcher.
func (h *hierarchy) trainL1(c int, pc uint64, line mem.Line, now uint64) {
	p := h.l1pf[c]
	if p == nil {
		return
	}
	for _, req := range p.Train(prefetch.Event{PC: pc, Line: line, Miss: true}) {
		if h.l1[c].Probe(req.Line) {
			continue
		}
		acc := replacement.Access{Line: req.Line, PC: req.PC, Core: c, Prefetch: true}
		// Resolve from L2/LLC/DRAM without touching the L2 training
		// path; a full prefetch queue drops the request.
		if h.l2[c].Probe(req.Line) {
			h.fill(h.l1[c], c, req.Line, acc, false, now+h.l2Lat)
			continue
		}
		slot, ok := h.pfq[c].tryAdmit(now)
		if !ok {
			continue
		}
		var ready uint64
		if r := h.llc.Access(req.Line, acc, now); r.Hit {
			ready = now + h.llcLat
			h.fill(h.l2[c], c, req.Line, acc, false, ready)
		} else {
			ready = h.ram.Access(now, req.Line, dram.PrefetchRead)
			h.fill(h.llc, c, req.Line, acc, false, ready)
			h.fill(h.l2[c], c, req.Line, acc, false, ready)
		}
		h.pfq[c].commit(slot, ready)
		h.fill(h.l1[c], c, req.Line, acc, false, ready)
	}
}

// trainL2 feeds one training event to the core's L2 prefetcher and
// issues the resulting requests. The Train entry point and the outcome
// observer are the tables resolveHooks built, so the per-event cost is
// one function-value call with no interface assertions.
func (h *hierarchy) trainL2(c int, ev prefetch.Event) {
	train := h.l2train[c]
	if train == nil {
		return
	}
	reqs := train(ev)
	oo := h.l2oo[c]
	maxDelay := uint64(h.cfg.DRAMLatencyCycles()) * dram.TicksPerCycle
	for _, req := range reqs {
		if h.tr != nil {
			h.tr.Emit(telemetry.Event{Tick: ev.Tick, Kind: telemetry.EvTrained, Core: int32(c), Level: 2, Line: uint64(req.Line), PC: req.PC})
		}
		// A prefetch delayed longer than a DRAM round trip (e.g. by
		// serialized off-chip metadata lookups) would complete later
		// than the demand miss it is meant to hide; hardware squashes
		// it rather than letting the demand merge into it.
		if req.IssueDelay > maxDelay {
			h.pfDropped++
			if h.tr != nil {
				h.tr.Emit(telemetry.Event{Tick: ev.Tick, Kind: telemetry.EvDropped, Core: int32(c), Level: 2, Line: uint64(req.Line), PC: req.PC, A: dropDelay})
			}
			if oo != nil {
				oo.PrefetchOutcome(req, false)
			}
			continue
		}
		issueAt := ev.Tick + req.IssueDelay
		// Redundant if already in L2: dropped before consuming anything.
		if h.l2[c].Probe(req.Line) {
			h.pfRedundant++
			if h.tr != nil {
				h.tr.Emit(telemetry.Event{Tick: issueAt, Kind: telemetry.EvRedundant, Core: int32(c), Level: 2, Line: uint64(req.Line), PC: req.PC})
			}
			if oo != nil {
				oo.PrefetchOutcome(req, false)
			}
			continue
		}
		acc := replacement.Access{Line: req.Line, PC: req.PC, Core: c, Prefetch: true}
		slot, ok := h.pfq[c].tryAdmit(issueAt)
		if !ok {
			// Prefetch queue full: drop (never issued, so Triage's
			// delayed training treats it like a redundant prefetch).
			h.pfDropped++
			if h.tr != nil {
				h.tr.Emit(telemetry.Event{Tick: issueAt, Kind: telemetry.EvDropped, Core: int32(c), Level: 2, Line: uint64(req.Line), PC: req.PC, A: dropQueueFull})
			}
			if oo != nil {
				oo.PrefetchOutcome(req, false)
			}
			continue
		}
		h.pfIssued++
		if h.tr != nil {
			h.tr.Emit(telemetry.Event{Tick: issueAt, Kind: telemetry.EvIssued, Core: int32(c), Level: 2, Line: uint64(req.Line), PC: req.PC})
		}
		var ready uint64
		missedCache := false
		if r := h.llc.Access(req.Line, acc, issueAt); r.Hit {
			ready = issueAt + h.llcLat
			if r.ReadyTick > ready {
				ready = r.ReadyTick
			}
		} else {
			missedCache = true
			ready = h.ram.Access(issueAt, req.Line, dram.PrefetchRead)
			h.fill(h.llc, c, req.Line, acc, false, ready)
		}
		h.pfq[c].commit(slot, ready)
		h.fill(h.l2[c], c, req.Line, acc, false, ready)
		if h.tr != nil {
			h.tr.Emit(telemetry.Event{Tick: ready, Kind: telemetry.EvFilled, Core: int32(c), Level: 2, Line: uint64(req.Line), PC: req.PC})
		}
		h.observeL2Fill(c, req.Line, true, ready)
		if oo != nil {
			oo.PrefetchOutcome(req, missedCache)
		}
	}
	// Partition re-evaluation is cheap; poll after each training event.
	if len(h.partitioners[c]) > 0 {
		h.applyPartition(ev.Tick)
	}
	h.sampleWays()
}

// Drop reasons carried in the A operand of EvDropped events.
const (
	dropDelay     = 1 // issue delay exceeded a DRAM round trip
	dropQueueFull = 2 // prefetch queue had no free slot
)

// observeL2Fill notifies FillObserver prefetchers (BO's RR table).
func (h *hierarchy) observeL2Fill(c int, line mem.Line, prefetched bool, tick uint64) {
	if fo := h.l2fo[c]; fo != nil {
		fo.ObserveFill(line, prefetched, tick)
	}
}

// resetStats clears all measurement counters (end of warmup).
func (h *hierarchy) resetStats() {
	for c := range h.l1 {
		h.l1[c].ResetStats()
		h.l2[c].ResetStats()
	}
	h.llc.ResetStats()
	h.ram.ResetStats()
	h.triageMetaAccesses = 0
	h.pfIssued, h.pfUseful, h.pfRedundant, h.pfDropped = 0, 0, 0, 0
	h.waySampleN = 0
	for i := range h.waySamples {
		h.waySamples[i] = 0
	}
}
