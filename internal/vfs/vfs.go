// Package vfs abstracts the filesystem underneath the durable state
// the simulation stack depends on — the checkpoint/result store
// (runs.jsonl), the service admission log (queue.jsonl), and their
// quarantine side files. Two implementations matter:
//
//   - OS: the production backend. Plain os calls, plus WriteFileAtomic
//     implementing the write-tmp / fsync / rename / fsync-dir
//     discipline that makes replacement writes crash-atomic.
//   - Mem: a crashable in-memory filesystem for tests. Every file
//     tracks what has been fsynced separately from what has merely
//     been written; Crash() models a kill -9 or power loss by
//     reverting each file to its synced content plus a seeded,
//     possibly-torn prefix of the unsynced tail.
//
// Faulty (faulty.go) wraps any FS with a deterministic, seeded
// schedule of injected failures — ENOSPC, EIO, short writes, fsync
// and rename failure — so the storage layer's recovery paths can be
// exercised the way Triage exercises metadata under eviction pressure:
// adversarially, not just on the happy path.
package vfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the subset of *os.File the storage layer writes through.
// Writes are only durable after a successful Sync.
type File interface {
	io.Writer
	io.Seeker
	// Sync flushes the file's written data to stable storage.
	Sync() error
	// Truncate cuts the file to size bytes (used to drop torn tails).
	Truncate(size int64) error
	Close() error
}

// FS is the filesystem surface the durable stores are written
// against. Implementations must be safe for concurrent use.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(path string) ([]byte, error)
	// OpenFile opens path for writing with os.OpenFile semantics
	// (flags O_CREATE, O_WRONLY, O_APPEND are the ones used here).
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
}

// OS is the production FS: plain os calls against the real
// filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile implements FS.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// OpenFile implements FS.
func (OS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// WriteFileAtomic replaces path with data crash-atomically: the bytes
// are written to a temporary sibling, fsynced, renamed over path, and
// the parent directory is fsynced (best effort — some filesystems
// refuse directory fsync) so the rename itself is durable. After a
// crash, readers see either the old content or the new, never a
// mixture or a half-written file.
func WriteFileAtomic(fsys FS, path string, data []byte, perm fs.FileMode) error {
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if _, ok := fsys.(OS); ok {
		syncDir(filepath.Dir(path))
	}
	return nil
}

// syncDir fsyncs a directory so a just-completed rename survives a
// crash. Errors are ignored: directory fsync is unsupported on some
// filesystems, and the rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}
