package vfs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestOSAppendRoundTrip exercises the production FS against a real
// temp directory: append, sync, reopen, read back.
func TestOSAppendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	var fsys FS = OS{}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello\n" {
		t.Fatalf("read back %q", data)
	}
}

// TestWriteFileAtomic checks the replace discipline on both backends:
// the target ends with exactly the new content and no .tmp remains.
func TestWriteFileAtomic(t *testing.T) {
	osDir := t.TempDir()
	backends := []struct {
		name string
		fsys FS
		path string
	}{
		{"os", OS{}, filepath.Join(osDir, "f")},
		{"mem", NewMem(1), "store/f"},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			if err := WriteFileAtomic(b.fsys, b.path, []byte("one"), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := WriteFileAtomic(b.fsys, b.path, []byte("two"), 0o644); err != nil {
				t.Fatal(err)
			}
			data, err := b.fsys.ReadFile(b.path)
			if err != nil {
				t.Fatal(err)
			}
			if string(data) != "two" {
				t.Fatalf("content %q, want %q", data, "two")
			}
			if _, err := b.fsys.ReadFile(b.path + ".tmp"); err == nil {
				t.Error("temporary file left behind")
			}
		})
	}
}

// TestMemCrashKeepsSyncedDropsRest is the crash model: synced bytes
// always survive, unsynced bytes survive only as a (possibly empty,
// possibly torn) prefix.
func TestMemCrashKeepsSyncedDropsRest(t *testing.T) {
	sawTorn, sawFull, sawNone := false, false, false
	for seed := int64(0); seed < 64; seed++ {
		m := NewMem(seed)
		f, err := m.OpenFile("log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		f.Write([]byte("durable|"))
		f.Sync()
		f.Write([]byte("volatile"))
		m.Crash()
		data, ok := m.Snapshot("log")
		if !ok {
			t.Fatal("file vanished in crash")
		}
		if !bytes.HasPrefix(data, []byte("durable|")) {
			t.Fatalf("seed %d: synced prefix lost: %q", seed, data)
		}
		tail := data[len("durable|"):]
		if !bytes.HasPrefix([]byte("volatile"), tail) {
			t.Fatalf("seed %d: crash invented bytes: %q", seed, data)
		}
		switch len(tail) {
		case 0:
			sawNone = true
		case len("volatile"):
			sawFull = true
		default:
			sawTorn = true
		}
	}
	if !sawTorn || !sawFull || !sawNone {
		t.Errorf("crash outcomes not diverse: torn=%t full=%t none=%t", sawTorn, sawFull, sawNone)
	}
}

// TestMemCrashRevertsUnsyncedTruncate: an unsynced truncate is rolled
// back by a crash (the old length was the durable one).
func TestMemCrashRevertsUnsyncedTruncate(t *testing.T) {
	m := NewMem(7)
	f, _ := m.OpenFile("log", os.O_CREATE|os.O_WRONLY, 0o644)
	f.Write([]byte("0123456789"))
	f.Sync()
	f.Truncate(4)
	m.Crash()
	data, _ := m.Snapshot("log")
	if string(data) != "0123456789" {
		t.Fatalf("unsynced truncate survived crash: %q", data)
	}
}

// TestFaultyDeterministic: the same plan over the same operation
// sequence injects the same faults.
func TestFaultyDeterministic(t *testing.T) {
	run := func() []string {
		f := NewFaulty(NewMem(1), Plan{Seed: 42, PWrite: 0.5, PSync: 0.5})
		h, err := f.OpenFile("x", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []string
		for i := 0; i < 32; i++ {
			if _, err := h.Write([]byte("abc")); err != nil {
				outcomes = append(outcomes, "w-fail")
			} else {
				outcomes = append(outcomes, "w-ok")
			}
			if err := h.Sync(); err != nil {
				outcomes = append(outcomes, "s-fail")
			} else {
				outcomes = append(outcomes, "s-ok")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestFaultyPowerOffAndHeal: after PowerOff everything fails with an
// injected error; after PowerOn + Heal the disk behaves.
func TestFaultyPowerOffAndHeal(t *testing.T) {
	f := NewFaulty(NewMem(1), Plan{Seed: 1, PWrite: 1})
	h, err := f.OpenFile("x", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("a")); err == nil {
		t.Fatal("PWrite=1 let a write through")
	} else if !IsInjected(err) {
		t.Fatalf("fault not marked injected: %v", err)
	}
	f.PowerOff()
	if _, err := f.ReadFile("x"); !errors.Is(err, ErrPoweredOff) {
		t.Fatalf("powered-off read returned %v", err)
	}
	f.PowerOn()
	f.Heal()
	if _, err := h.Write([]byte("a")); err != nil {
		t.Fatalf("healed write failed: %v", err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("healed sync failed: %v", err)
	}
	c := f.Counters()
	if c["write"] == 0 || c["powered_off"] == 0 {
		t.Errorf("counters missing injected classes: %v", c)
	}
}

// TestFaultyShortWrite: with ShortWrites on, some failing writes land
// a strict prefix — the torn-write model the store must detect.
func TestFaultyShortWrite(t *testing.T) {
	mem := NewMem(1)
	f := NewFaulty(mem, Plan{Seed: 3, PWrite: 1, ShortWrites: true})
	h, err := f.OpenFile("x", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	sawTorn := false
	for i := 0; i < 64 && !sawTorn; i++ {
		before, _ := mem.Snapshot("x")
		n, err := h.Write([]byte("0123456789"))
		if err == nil {
			t.Fatal("PWrite=1 let a write through")
		}
		after, _ := mem.Snapshot("x")
		if got := len(after) - len(before); got != n {
			t.Fatalf("reported %d bytes written, disk grew %d", n, got)
		}
		if n > 0 && n < 10 {
			sawTorn = true
		}
	}
	if !sawTorn {
		t.Error("no torn write in 64 attempts")
	}
}
