package vfs

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"syscall"
)

// InjectedError marks a fault delivered by a Faulty FS, so tests and
// recovery code can tell injected faults from real ones. It unwraps
// to the modelled errno (ENOSPC or EIO).
type InjectedError struct {
	Op  string
	Err error
}

func (e *InjectedError) Error() string { return fmt.Sprintf("vfs: injected %s fault: %v", e.Op, e.Err) }
func (e *InjectedError) Unwrap() error { return e.Err }

// IsInjected reports whether err (or anything it wraps) was delivered
// by a Faulty FS.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// ErrPoweredOff is what every operation returns after PowerOff: the
// moment in a crash schedule after which no write can reach the disk.
var ErrPoweredOff = errors.New("vfs: powered off")

// Plan is a seeded fault schedule. Each probability is consulted, in
// a deterministic rng order, on every operation of its class; a hit
// injects ENOSPC or EIO (seeded pick). The zero Plan injects nothing.
type Plan struct {
	// Seed drives the schedule; the same seed replays the same faults
	// for the same operation sequence.
	Seed int64
	// PWrite, PSync, PRename are per-operation fault probabilities.
	PWrite, PSync, PRename float64
	// ShortWrites makes a failing write first land a random prefix of
	// the buffer — a torn write — instead of nothing.
	ShortWrites bool
}

// Faulty wraps an FS with deterministic fault injection. Beyond the
// probabilistic Plan it has two switches: PowerOff (every subsequent
// operation fails, modelling the instant of a crash) and Heal (clear
// the plan: the disk is healthy again), which together let tests
// script disk-full incidents, recovery probes, and kill/restart
// loops.
type Faulty struct {
	inner FS

	mu       sync.Mutex
	rng      *rand.Rand
	plan     Plan
	off      bool
	counters map[string]int64
}

// NewFaulty wraps inner with the given plan.
func NewFaulty(inner FS, plan Plan) *Faulty {
	return &Faulty{
		inner:    inner,
		rng:      rand.New(rand.NewSource(plan.Seed)),
		plan:     plan,
		counters: make(map[string]int64),
	}
}

// SetPlan swaps the fault schedule (rng state is kept).
func (f *Faulty) SetPlan(plan Plan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
}

// Heal clears the fault schedule: the disk behaves from now on.
func (f *Faulty) Heal() { f.SetPlan(Plan{}) }

// PowerOff makes every subsequent operation fail with ErrPoweredOff —
// nothing written after this point can reach the disk. Pair with
// Mem.Crash to model kill -9.
func (f *Faulty) PowerOff() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.off = true
}

// PowerOn re-enables operations after PowerOff.
func (f *Faulty) PowerOn() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.off = false
}

// Counters returns a copy of the per-class injected-fault counts
// (keys: write, sync, rename, short_write, powered_off).
func (f *Faulty) Counters() map[string]int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]int64, len(f.counters))
	for k, v := range f.counters {
		out[k] = v
	}
	return out
}

// roll decides whether to inject a fault of class op with probability
// p, returning the error to deliver (nil = proceed). The shortWrite
// flag asks the caller to land a torn prefix first.
func (f *Faulty) roll(op string, p float64) (err error, shortWrite bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.off {
		f.counters["powered_off"]++
		return &InjectedError{Op: op, Err: ErrPoweredOff}, false
	}
	if p <= 0 || f.rng.Float64() >= p {
		return nil, false
	}
	errno := syscall.ENOSPC
	if f.rng.Intn(2) == 1 {
		errno = syscall.EIO
	}
	f.counters[op]++
	short := op == "write" && f.plan.ShortWrites && f.rng.Intn(2) == 1
	if short {
		f.counters["short_write"]++
	}
	return &InjectedError{Op: op, Err: errno}, short
}

// shortLen picks how much of an n-byte torn write lands.
func (f *Faulty) shortLen(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if n == 0 {
		return 0
	}
	return f.rng.Intn(n)
}

// MkdirAll implements FS.
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.roll("mkdir", 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// ReadFile implements FS.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if err, _ := f.roll("read", 0); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// OpenFile implements FS.
func (f *Faulty) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	if err, _ := f.roll("open", 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

// Rename implements FS.
func (f *Faulty) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	p := f.plan.PRename
	f.mu.Unlock()
	if err, _ := f.roll("rename", p); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements FS.
func (f *Faulty) Remove(path string) error {
	if err, _ := f.roll("remove", 0); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// faultyFile interposes on the write path of one open file.
type faultyFile struct {
	fs    *Faulty
	inner File
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	pw := ff.fs.plan.PWrite
	ff.fs.mu.Unlock()
	err, short := ff.fs.roll("write", pw)
	if err != nil {
		n := 0
		if short {
			n = ff.fs.shortLen(len(p))
			if n > 0 {
				ff.inner.Write(p[:n]) // torn: a prefix reached the disk
			}
		}
		return n, err
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Seek(offset int64, whence int) (int64, error) {
	if err, _ := ff.fs.roll("seek", 0); err != nil {
		return 0, err
	}
	return ff.inner.Seek(offset, whence)
}

func (ff *faultyFile) Sync() error {
	ff.fs.mu.Lock()
	ps := ff.fs.plan.PSync
	ff.fs.mu.Unlock()
	if err, _ := ff.fs.roll("sync", ps); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Truncate(size int64) error {
	if err, _ := ff.fs.roll("truncate", 0); err != nil {
		return err
	}
	return ff.inner.Truncate(size)
}

func (ff *faultyFile) Close() error {
	if err, _ := ff.fs.roll("close", 0); err != nil {
		return err
	}
	return ff.inner.Close()
}
