package vfs

import (
	"io"
	"io/fs"
	"math/rand"
	"os"
	"sync"
)

// Mem is a crashable in-memory FS. Every file keeps two views: the
// bytes written so far (data) and the bytes known durable (the
// snapshot taken at the last Sync). Crash models a kill -9 / power
// loss: each file reverts to its durable view plus a seeded random
// prefix of the unsynced tail — i.e. an un-fsynced append may survive
// in full, in part (a torn write), or not at all, which is exactly
// the disk state the torn-tail and quarantine recovery paths must
// tolerate.
//
// The namespace itself (create, rename, remove) is modelled as
// durable immediately; the production discipline pairs renames with a
// parent-directory fsync (WriteFileAtomic), so this is the state a
// correctly-written store would recover to.
type Mem struct {
	mu    sync.Mutex
	rng   *rand.Rand
	files map[string]*memData
	dirs  map[string]bool
}

type memData struct {
	data    []byte
	durable []byte
}

// NewMem returns an empty crashable FS; seed drives how much of each
// unsynced tail survives a Crash.
func NewMem(seed int64) *Mem {
	return &Mem{
		rng:   rand.New(rand.NewSource(seed)),
		files: make(map[string]*memData),
		dirs:  make(map[string]bool),
	}
}

// MkdirAll implements FS.
func (m *Mem) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[path] = true
	return nil
}

// ReadFile implements FS.
func (m *Mem) ReadFile(path string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}

// OpenFile implements FS for the write paths the stores use
// (O_CREATE/O_WRONLY/O_TRUNC/O_APPEND).
func (m *Mem) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
		}
		f = &memData{}
		m.files[path] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	return &memFile{fs: m, d: f, append: flag&os.O_APPEND != 0}, nil
}

// Rename implements FS.
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	m.files[newpath] = f
	delete(m.files, oldpath)
	return nil
}

// Remove implements FS.
func (m *Mem) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[path]; !ok {
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	delete(m.files, path)
	return nil
}

// Crash reverts every file to its last synced content plus a seeded
// random prefix of whatever was written-but-not-synced since — the
// on-disk state after a kill -9 between write and fsync. Open handles
// must be discarded by the caller (the process they model is dead).
func (m *Mem) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		if len(f.data) < len(f.durable) {
			// An unsynced truncate: the old length comes back.
			f.data = append([]byte(nil), f.durable...)
			continue
		}
		tail := f.data[len(f.durable):]
		keep := 0
		if len(tail) > 0 {
			keep = m.rng.Intn(len(tail) + 1)
		}
		f.data = append(append([]byte(nil), f.durable...), tail[:keep]...)
		f.durable = append([]byte(nil), f.data...)
	}
}

// Snapshot returns the current content of path (test helper).
func (m *Mem) Snapshot(path string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// memFile is a write handle. Like a real fd it stays bound to the
// file's data even across a rename of its path.
type memFile struct {
	fs     *Mem
	d      *memData
	off    int64
	append bool
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.append {
		f.off = int64(len(f.d.data))
	}
	end := f.off + int64(len(p))
	if int64(len(f.d.data)) < end {
		grown := make([]byte, end)
		copy(grown, f.d.data)
		f.d.data = grown
	}
	copy(f.d.data[f.off:end], p)
	f.off = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.d.data)) + offset
	}
	return f.off, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.d.durable = append([]byte(nil), f.d.data...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if int64(len(f.d.data)) > size {
		f.d.data = f.d.data[:size]
	}
	if f.off > size {
		f.off = size
	}
	return nil
}

func (f *memFile) Close() error { return nil }
