// Package benchfile owns the BENCH_sim.json schema: a versioned report
// holding whole-experiment throughput rows (written by cmd/experiments
// -bench) and per-package microbenchmark rows (appended by
// cmd/benchmerge from `go test -bench` output). Earlier reports were a
// bare JSON array of experiment rows; Read upgrades those to the
// current schema so tooling only handles one shape.
package benchfile

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// SchemaVersion is the current BENCH_sim.json schema.
// Version history:
//
//	1 (implicit): bare JSON array of experiment rows.
//	2: versioned object {schema_version, experiments, micro}.
const SchemaVersion = 2

// File is one BENCH_sim.json report.
type File struct {
	SchemaVersion int          `json:"schema_version"`
	Experiments   []Experiment `json:"experiments"`
	Micro         []Micro      `json:"micro,omitempty"`
}

// Experiment is one whole-experiment throughput row ("total" aggregates
// the run).
type Experiment struct {
	Experiment       string  `json:"experiment"`
	WallSeconds      float64 `json:"wall_seconds"`
	Simulations      uint64  `json:"simulations"`
	SimInstructions  uint64  `json:"sim_instructions"`
	SimInstrPerSec   float64 `json:"sim_instructions_per_sec"`
	Workers          int     `json:"workers"`
	WarmupInstr      uint64  `json:"warmup_instructions"`
	MeasureInstr     uint64  `json:"measure_instructions"`
	MultiWarmupInstr uint64  `json:"multi_warmup_instructions"`
	MultiMeasure     uint64  `json:"multi_measure_instructions"`
	// Telemetry marks entries measured with the per-run sampler
	// attached (-telemetry), so throughput numbers with and without
	// instrumentation are comparable across reports.
	Telemetry bool `json:"telemetry"`
}

// Micro is one Go microbenchmark result.
type Micro struct {
	Package    string             `json:"package"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Read loads a report, upgrading a legacy bare-array file to the
// current schema. A missing or empty file is not an error: it returns
// an empty current-schema File so callers can build reports
// incrementally (mktemp-style pre-created output files included).
func Read(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{SchemaVersion: SchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		return &File{SchemaVersion: SchemaVersion}, nil
	}
	return Decode(data)
}

// Decode parses either schema version.
func Decode(data []byte) (*File, error) {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var rows []Experiment
		if err := json.Unmarshal(data, &rows); err != nil {
			return nil, fmt.Errorf("benchfile: legacy array: %w", err)
		}
		return &File{SchemaVersion: SchemaVersion, Experiments: rows}, nil
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfile: %w", err)
	}
	if f.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("benchfile: schema_version %d is newer than supported %d", f.SchemaVersion, SchemaVersion)
	}
	f.SchemaVersion = SchemaVersion
	return &f, nil
}

// Write atomically-ish persists the report (single WriteFile).
func (f *File) Write(path string) error {
	f.SchemaVersion = SchemaVersion
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Total returns the aggregate "total" experiment row, if present.
func (f *File) Total() (Experiment, bool) {
	for _, e := range f.Experiments {
		if e.Experiment == "total" {
			return e, true
		}
	}
	return Experiment{}, false
}

// MergeMicro inserts rows, replacing any existing row with the same
// (package, name) so re-running a suite updates in place.
func (f *File) MergeMicro(rows []Micro) {
	for _, r := range rows {
		replaced := false
		for i := range f.Micro {
			if f.Micro[i].Package == r.Package && f.Micro[i].Name == r.Name {
				f.Micro[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			f.Micro = append(f.Micro, r)
		}
	}
}

// ParseGoBench extracts benchmark rows from `go test -bench` text
// output. Lines look like:
//
//	BenchmarkStepLoop-8   	      12	  95476503 ns/op	  10.48 Minstr/s
//
// The trailing "-8" GOMAXPROCS suffix is stripped from the name.
// Non-benchmark lines are ignored, so the full `go test` output can be
// piped in unfiltered. pkg labels every parsed row.
func ParseGoBench(r io.Reader, pkg string) ([]Micro, error) {
	var rows []Micro
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		m := Micro{
			Package:    pkg,
			Name:       strings.TrimSuffix(fields[0], "-"+lastDash(fields[0])),
			Iterations: iters,
		}
		// The remainder alternates value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				m.NsPerOp = v
				continue
			}
			if m.Metrics == nil {
				m.Metrics = make(map[string]float64)
			}
			m.Metrics[unit] = v
		}
		rows = append(rows, m)
	}
	return rows, sc.Err()
}

// lastDash returns the text after the final '-' (the GOMAXPROCS
// suffix), or "" when there is none.
func lastDash(s string) string {
	if i := strings.LastIndex(s, "-"); i >= 0 {
		return s[i+1:]
	}
	return ""
}
