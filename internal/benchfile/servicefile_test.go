package benchfile

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleRow(scenario string, p99 float64) ServiceRow {
	return ServiceRow{
		Scenario: scenario, Process: "poisson", Clock: "virtual", Seed: 1,
		RatePerSec: 50, Jobs: 100, Completed: 98, Deduped: 2,
		P50Ms: 3.1, P99Ms: p99, P999Ms: p99 * 1.5, MaxMs: p99 * 2,
		ThroughputJobsPerSec: 49.2, DedupRate: 0.02, QueueDepthHWM: 7,
		WallSeconds: 2.0,
	}
}

// TestServiceRoundTrip pins the schema: write, read back, identical
// rows and version stamped.
func TestServiceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	f := &ServiceFile{}
	f.MergeService([]ServiceRow{sampleRow("steady", 12.5)})
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadService(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.SchemaVersion != ServiceSchemaVersion {
		t.Errorf("schema_version %d, want %d", g.SchemaVersion, ServiceSchemaVersion)
	}
	if len(g.Service) != 1 || g.Service[0] != f.Service[0] {
		t.Errorf("round-trip mismatch: %+v vs %+v", g.Service, f.Service)
	}
}

// TestServiceMergeReplacesByScenario pins in-place updates: re-running
// a scenario replaces its row, others are untouched, order is stable.
func TestServiceMergeReplacesByScenario(t *testing.T) {
	f := &ServiceFile{}
	f.MergeService([]ServiceRow{sampleRow("steady", 10), sampleRow("burst", 40)})
	f.MergeService([]ServiceRow{sampleRow("steady", 11)})
	if len(f.Service) != 2 {
		t.Fatalf("merge grew to %d rows, want 2", len(f.Service))
	}
	if f.Service[0].Scenario != "steady" || f.Service[0].P99Ms != 11 {
		t.Errorf("steady row not replaced in place: %+v", f.Service[0])
	}
	if r, ok := f.Row("burst"); !ok || r.P99Ms != 40 {
		t.Errorf("burst row disturbed by an unrelated merge: %+v", r)
	}
}

// TestServiceReadMissingAndEmpty pins the incremental-build contract:
// missing and empty files both read as empty current-schema reports.
func TestServiceReadMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	for name, setup := range map[string]func(string){
		"missing": func(string) {},
		"empty":   func(p string) { os.WriteFile(p, []byte("\n"), 0o644) },
	} {
		p := filepath.Join(dir, name+".json")
		setup(p)
		f, err := ReadService(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if f.SchemaVersion != ServiceSchemaVersion || len(f.Service) != 0 {
			t.Errorf("%s: got %+v, want empty current-schema report", name, f)
		}
	}
}

// TestServiceRejectsNewerSchema guards against silently misreading a
// future report.
func TestServiceRejectsNewerSchema(t *testing.T) {
	if _, err := DecodeService([]byte(`{"schema_version": 99, "service": []}`)); err == nil {
		t.Fatal("decoded a schema_version 99 report without error")
	}
}

// TestServiceEncodeDeterministic pins byte-stable output for identical
// row sets — verify.sh compares two triageload runs with cmp.
func TestServiceEncodeDeterministic(t *testing.T) {
	mk := func() []byte {
		f := &ServiceFile{}
		f.MergeService([]ServiceRow{sampleRow("steady", 10), sampleRow("burst", 40)})
		b, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Error("identical reports encoded differently")
	}
	if a[len(a)-1] != '\n' {
		t.Error("report does not end in a newline")
	}
}
