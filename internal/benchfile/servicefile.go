package benchfile

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// ServiceSchemaVersion is the current BENCH_service.json schema. The
// file is born versioned (no legacy shape to upgrade).
const ServiceSchemaVersion = 1

// ServiceFile is one BENCH_service.json report: service-level capacity
// rows written by cmd/triageload, one per load scenario.
type ServiceFile struct {
	SchemaVersion int          `json:"schema_version"`
	Service       []ServiceRow `json:"service"`
}

// ServiceRow is one load-scenario result. Latency quantiles come from
// the service's submit-to-result histogram over exactly the jobs this
// scenario issued; rates are jobs per second of scenario wall time.
type ServiceRow struct {
	Scenario   string  `json:"scenario"`
	Process    string  `json:"process"` // poisson | bursty | diurnal
	Clock      string  `json:"clock"`   // wall | virtual
	Seed       uint64  `json:"seed"`
	RatePerSec float64 `json:"rate_per_sec"`
	// Enough of the run configuration to rerun the scenario
	// like-for-like (the bench-compare gate replays virtual rows).
	Workers   int     `json:"workers"`
	QueueCap  int     `json:"queue_cap"`
	DedupFrac float64 `json:"dedup_frac"`
	// ClusterWorkers > 0 means the scenario modeled a triaged -cluster
	// deployment: jobs execute on this many remote workers instead of
	// the in-process pool, and every executed job pays a fixed dispatch
	// round-trip (lease assignment + result upload) on top of its
	// service time. Zero = single-node in-process execution.
	ClusterWorkers int `json:"cluster_workers,omitempty"`
	// FaultAfter/FaultFor describe a store-fault window by arrival
	// index: the store starts failing at arrival FaultAfter and heals
	// FaultFor arrivals later, so the scenario measures degraded-mode
	// behavior (503 shedding) under sustained load. Zero = no fault.
	FaultAfter int `json:"fault_after,omitempty"`
	FaultFor   int `json:"fault_for,omitempty"`

	Jobs        int `json:"jobs"`
	Completed   int `json:"completed"`
	Deduped     int `json:"deduped"`
	StoreHits   int `json:"store_hits"`
	Rejected429 int `json:"rejected_429"`
	Rejected503 int `json:"rejected_503"`

	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`

	ThroughputJobsPerSec float64 `json:"throughput_jobs_per_sec"`
	DedupRate            float64 `json:"dedup_rate"`
	QueueDepthHWM        int     `json:"queue_depth_hwm"`
	InflightHWM          int     `json:"inflight_hwm"`
	WallSeconds          float64 `json:"wall_seconds"`
}

// ReadService loads a BENCH_service.json report. Missing or empty
// files yield an empty current-schema report, matching Read.
func ReadService(path string) (*ServiceFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &ServiceFile{SchemaVersion: ServiceSchemaVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	if len(strings.TrimSpace(string(data))) == 0 {
		return &ServiceFile{SchemaVersion: ServiceSchemaVersion}, nil
	}
	return DecodeService(data)
}

// DecodeService parses a report, rejecting files written by a newer
// schema than this build understands.
func DecodeService(data []byte) (*ServiceFile, error) {
	var f ServiceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchfile: service report: %w", err)
	}
	if f.SchemaVersion > ServiceSchemaVersion {
		return nil, fmt.Errorf("benchfile: service schema_version %d is newer than supported %d",
			f.SchemaVersion, ServiceSchemaVersion)
	}
	f.SchemaVersion = ServiceSchemaVersion
	return &f, nil
}

// Write persists the report with a trailing newline, byte-stable for a
// given row set (key order is struct order, indentation fixed).
func (f *ServiceFile) Write(path string) error {
	data, err := f.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Encode renders the report deterministically.
func (f *ServiceFile) Encode() ([]byte, error) {
	f.SchemaVersion = ServiceSchemaVersion
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// MergeService inserts rows, replacing any existing row with the same
// scenario name so re-running a scenario updates in place.
func (f *ServiceFile) MergeService(rows []ServiceRow) {
	for _, r := range rows {
		replaced := false
		for i := range f.Service {
			if f.Service[i].Scenario == r.Scenario {
				f.Service[i] = r
				replaced = true
				break
			}
		}
		if !replaced {
			f.Service = append(f.Service, r)
		}
	}
}

// Row returns the named scenario's row, if present.
func (f *ServiceFile) Row(scenario string) (ServiceRow, bool) {
	for _, r := range f.Service {
		if r.Scenario == scenario {
			return r, true
		}
	}
	return ServiceRow{}, false
}
