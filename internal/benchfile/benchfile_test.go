package benchfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReadMissingOrEmpty pins that Read treats a nonexistent path and a
// zero-byte file (mktemp pre-creates one before -bench writes it) the
// same way: an empty current-schema report, not a JSON error.
func TestReadMissingOrEmpty(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		name, path string
		create     bool
	}{
		{"missing", filepath.Join(dir, "nope.json"), false},
		{"empty", filepath.Join(dir, "empty.json"), true},
	} {
		if tc.create {
			if err := os.WriteFile(tc.path, nil, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		f, err := Read(tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if f.SchemaVersion != SchemaVersion || len(f.Experiments) != 0 || len(f.Micro) != 0 {
			t.Errorf("%s: got non-empty report %+v", tc.name, f)
		}
	}
}

// TestDecodeLegacyArray pins the v1 bare-array upgrade path.
func TestDecodeLegacyArray(t *testing.T) {
	f, err := Decode([]byte(`[{"experiment":"fig05","wall_seconds":1.5},{"experiment":"total"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if f.SchemaVersion != SchemaVersion || len(f.Experiments) != 2 {
		t.Fatalf("legacy upgrade: %+v", f)
	}
	if tot, ok := f.Total(); !ok || tot.Experiment != "total" {
		t.Errorf("Total() = %+v, %v", tot, ok)
	}
}

// TestDecodeFutureSchemaRefused pins that a newer schema_version is an
// error instead of silently dropped fields.
func TestDecodeFutureSchemaRefused(t *testing.T) {
	if _, err := Decode([]byte(`{"schema_version":99}`)); err == nil {
		t.Fatal("schema_version 99 decoded without error")
	}
}

// TestWriteReadRoundTrip pins that Write output reads back identically
// and keeps micro rows.
func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := &File{
		Experiments: []Experiment{{Experiment: "fig05", WallSeconds: 2, Simulations: 3}},
		Micro:       []Micro{{Package: "repro", Name: "BenchmarkStepLoop", Iterations: 7, NsPerOp: 123}},
	}
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].Simulations != 3 ||
		len(got.Micro) != 1 || got.Micro[0].NsPerOp != 123 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

// TestMergeMicro pins replace-by-(package,name) semantics.
func TestMergeMicro(t *testing.T) {
	f := &File{Micro: []Micro{{Package: "repro", Name: "BenchmarkStepLoop", NsPerOp: 100}}}
	f.MergeMicro([]Micro{
		{Package: "repro", Name: "BenchmarkStepLoop", NsPerOp: 50},
		{Package: "repro", Name: "BenchmarkPrefetchDispatch", NsPerOp: 70},
	})
	if len(f.Micro) != 2 {
		t.Fatalf("got %d rows, want 2 (replace in place)", len(f.Micro))
	}
	if f.Micro[0].NsPerOp != 50 || f.Micro[1].Name != "BenchmarkPrefetchDispatch" {
		t.Errorf("merge result: %+v", f.Micro)
	}
}

// TestParseGoBench pins parsing of raw `go test -bench` output,
// including custom ReportMetric units and noise lines.
func TestParseGoBench(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkStepLoop-8   	      12	  95476503 ns/op	  10.48 Minstr/s
BenchmarkWarmupSnapshot   	      26	  47324683 ns/op	  46.49 effective-Minstr/s
PASS
ok  	repro	3.2s
`
	rows, err := ParseGoBench(strings.NewReader(out), "repro")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("parsed %d rows, want 2: %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Name != "BenchmarkStepLoop" || r.Iterations != 12 || r.NsPerOp != 95476503 ||
		r.Metrics["Minstr/s"] != 10.48 {
		t.Errorf("row 0: %+v", r)
	}
	if rows[1].Name != "BenchmarkWarmupSnapshot" || rows[1].Metrics["effective-Minstr/s"] != 46.49 {
		t.Errorf("row 1: %+v", rows[1])
	}
}
