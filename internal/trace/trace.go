// Package trace defines the instruction-trace model consumed by the
// simulator, mirroring ChampSim's trace-driven methodology: each record
// is one retired instruction, optionally with a memory operand.
// Generators (package workload) synthesize traces program-by-program; a
// compact binary codec supports writing traces to disk and replaying
// them (cmd/tracegen).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Op is the instruction class.
type Op uint8

// Instruction classes.
const (
	// NonMem is a non-memory instruction occupying one ROB slot.
	NonMem Op = iota
	// Load reads Addr.
	Load
	// Store writes Addr.
	Store
)

// Record is one instruction.
type Record struct {
	// PC is the instruction address. Prefetchers PC-localize on it.
	PC uint64
	// Addr is the data address of a Load or Store (unused for NonMem).
	Addr mem.Addr
	// Op classifies the instruction.
	Op Op
	// LoadDep, when non-zero, marks a load whose address depends on the
	// value of the LoadDep-th most recent preceding load (1 = the
	// immediately previous load). Pointer chases set 1; K interleaved
	// chase streams set K so each stream serializes only on itself;
	// array/stride code leaves 0 (fully overlappable).
	LoadDep uint8
}

// Reader supplies a stream of records. Next returns ok=false when the
// stream is exhausted (synthetic generators never exhaust).
type Reader interface {
	Next() (Record, bool)
}

// SliceReader replays an in-memory trace.
type SliceReader struct {
	recs []Record
	pos  int
}

// NewSliceReader returns a Reader over recs.
func NewSliceReader(recs []Record) *SliceReader { return &SliceReader{recs: recs} }

// Next implements Reader.
func (r *SliceReader) Next() (Record, bool) {
	if r.pos >= len(r.recs) {
		return Record{}, false
	}
	rec := r.recs[r.pos]
	r.pos++
	return rec, true
}

// Reset rewinds to the beginning.
func (r *SliceReader) Reset() { r.pos = 0 }

// LoopReader replays a finite trace forever (the paper restarts
// early-finishing benchmarks in multi-programmed mixes so contention is
// sustained, §4.1).
type LoopReader struct {
	recs []Record
	pos  int
}

// NewLoopReader returns a Reader that cycles through recs.
func NewLoopReader(recs []Record) *LoopReader {
	if len(recs) == 0 {
		panic("trace: LoopReader needs a non-empty trace")
	}
	return &LoopReader{recs: recs}
}

// Next implements Reader.
func (r *LoopReader) Next() (Record, bool) {
	rec := r.recs[r.pos]
	r.pos++
	if r.pos == len(r.recs) {
		r.pos = 0
	}
	return rec, true
}

// FuncReader adapts a generator function to Reader.
type FuncReader func() (Record, bool)

// Next implements Reader.
func (f FuncReader) Next() (Record, bool) { return f() }

// Collect drains up to n records from r into a slice.
func Collect(r Reader, n int) []Record {
	out := make([]Record, 0, n)
	for len(out) < n {
		rec, ok := r.Next()
		if !ok {
			break
		}
		out = append(out, rec)
	}
	return out
}

// --- binary codec ---

// magic identifies the trace file format; the version byte guards
// against stale files after format changes.
var magic = [4]byte{'T', 'R', 'C', 1}

// Writer streams records to an io.Writer in a compact delta-encoded
// binary format.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	n      uint64
	header bool
}

// NewWriter returns a trace Writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if !tw.header {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
		tw.header = true
	}
	var buf [binary.MaxVarintLen64*2 + 3]byte
	buf[0] = byte(r.Op)
	if r.LoadDep != 0 {
		buf[0] |= 0x80
	}
	n := 1
	if r.LoadDep != 0 {
		buf[n] = r.LoadDep
		n++
	}
	n += binary.PutVarint(buf[n:], int64(r.PC)-int64(tw.lastPC))
	tw.lastPC = r.PC
	if r.Op != NonMem {
		n += binary.PutUvarint(buf[n:], uint64(r.Addr))
	}
	tw.n++
	if _, err := tw.w.Write(buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record %d: %w", tw.n, err)
	}
	return nil
}

// Flush writes the magic header if no record has yet (a zero-record
// trace must still be a self-identifying file, not a zero-byte one)
// and flushes buffered output.
func (tw *Writer) Flush() error {
	if !tw.header {
		if _, err := tw.w.Write(magic[:]); err != nil {
			return fmt.Errorf("trace: writing header: %w", err)
		}
		tw.header = true
	}
	return tw.w.Flush()
}

// Count returns the number of records written.
func (tw *Writer) Count() uint64 { return tw.n }

// FileReader decodes a trace written by Writer.
type FileReader struct {
	r      *bufio.Reader
	lastPC uint64
	header bool
	err    error
}

// NewFileReader returns a Reader decoding from r.
func NewFileReader(r io.Reader) *FileReader { return &FileReader{r: bufio.NewReader(r)} }

// Err returns the first decoding error, if any. A clean EOF — the
// stream ends exactly at a record boundary after an intact header — is
// not an error; truncation anywhere else (an empty stream, a partial
// header, a record cut mid-encoding) surfaces io.ErrUnexpectedEOF so a
// torn file can never silently pass for a shorter trace.
func (fr *FileReader) Err() error { return fr.err }

// Next implements Reader.
func (fr *FileReader) Next() (Record, bool) {
	if fr.err != nil {
		return Record{}, false
	}
	if !fr.header {
		var got [4]byte
		if _, err := io.ReadFull(fr.r, got[:]); err != nil {
			// Every written trace starts with the magic (Writer.Flush
			// emits it even for zero records), so an empty stream is a
			// truncated file, not an empty trace.
			fr.failMid("header", err)
			return Record{}, false
		}
		if got != magic {
			fr.err = fmt.Errorf("trace: bad magic %v", got)
			return Record{}, false
		}
		fr.header = true
	}
	opByte, err := fr.r.ReadByte()
	if err != nil {
		// EOF on the first byte of a record is the one clean end of a
		// v1 stream; anything else is a real error.
		if !errors.Is(err, io.EOF) {
			fr.err = fmt.Errorf("trace: decoding: %w", err)
		}
		return Record{}, false
	}
	var rec Record
	rec.Op = Op(opByte & 0x7F)
	if rec.Op > Store {
		fr.err = fmt.Errorf("trace: bad op %d", rec.Op)
		return Record{}, false
	}
	if opByte&0x80 != 0 {
		dep, err := fr.r.ReadByte()
		if err != nil {
			fr.failMid("record", err)
			return Record{}, false
		}
		rec.LoadDep = dep
	}
	dpc, err := binary.ReadVarint(fr.r)
	if err != nil {
		fr.failMid("record", err)
		return Record{}, false
	}
	fr.lastPC = uint64(int64(fr.lastPC) + dpc)
	rec.PC = fr.lastPC
	if rec.Op != NonMem {
		addr, err := binary.ReadUvarint(fr.r)
		if err != nil {
			fr.failMid("record", err)
			return Record{}, false
		}
		rec.Addr = mem.Addr(addr)
	}
	return rec, true
}

// Decoder is a streaming trace decoder: a Reader whose exhaustion can
// be distinguished from failure. Both file codecs (v1 FileReader, v2
// ReaderV2) implement it; NewDecoder picks the right one by magic.
type Decoder interface {
	Reader
	// Err returns the first decoding error, nil after a clean end.
	Err() error
}

// NewDecoder sniffs the 4-byte magic and returns the matching decoder:
// the v1 raw-varint FileReader for TRC\x01 files, the framed
// block-compressed ReaderV2 for TRC2 files. Unknown or short magic is
// left to the v1 reader, which reports it as a header error.
func NewDecoder(r io.Reader) Decoder {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	hdr, _ := br.Peek(4)
	if len(hdr) == 4 && [4]byte(hdr) == magicV2 {
		return NewReaderV2(br)
	}
	return NewFileReader(br)
}

// Offset wraps r, adding base to the data address of every memory
// record (PCs are left alone: per-core prefetchers localize on them
// independently). It is how one materialized trace replays on several
// cores with the disjoint address spaces the multi-core runs assume.
func Offset(r Reader, base mem.Addr) Reader {
	if base == 0 {
		return r
	}
	return &offsetReader{r: r, base: base}
}

type offsetReader struct {
	r    Reader
	base mem.Addr
}

// Next implements Reader.
func (o *offsetReader) Next() (Record, bool) {
	rec, ok := o.r.Next()
	if ok && rec.Op != NonMem {
		rec.Addr += o.base
	}
	return rec, ok
}

// failMid records a failure at a point where the stream cannot
// legitimately end: past the op byte of a record, or inside the
// header. io.EOF here means truncation and is reported as
// io.ErrUnexpectedEOF rather than swallowed.
func (fr *FileReader) failMid(where string, err error) {
	if errors.Is(err, io.EOF) {
		fr.err = fmt.Errorf("trace: truncated %s: %w", where, io.ErrUnexpectedEOF)
		return
	}
	fr.err = fmt.Errorf("trace: decoding %s: %w", where, err)
}
