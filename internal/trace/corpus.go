// The trace corpus: a content-addressed on-disk set of TRC2 traces,
// keyed the way the PR 4 result store keys results — by hash of
// content, so a RunSpec can name a trace by id, the service and a
// future cluster can share one corpus, and the same records are never
// stored twice.

package trace

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// corpusExt is the on-disk suffix of corpus entries; the basename is
// the canonical id with ':' replaced by '-' (filesystem-safe):
// sha256-<hex>.trc2.
const corpusExt = ".trc2"

// CanonicalTraceID normalizes a trace id to "sha256:<64 hex>". Bare
// hex is accepted; anything else is an error.
func CanonicalTraceID(id string) (string, error) {
	hexPart := strings.TrimPrefix(id, "sha256:")
	if len(hexPart) != 64 {
		return "", fmt.Errorf("trace: bad trace id %q (want sha256:<64 hex digits>)", id)
	}
	for i := 0; i < len(hexPart); i++ {
		c := hexPart[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("trace: bad trace id %q (want sha256:<64 hex digits>)", id)
		}
	}
	return "sha256:" + hexPart, nil
}

// Corpus is a directory of content-addressed TRC2 traces.
type Corpus struct {
	dir string
}

// OpenCorpus opens (creating if needed) the corpus directory.
func OpenCorpus(dir string) (*Corpus, error) {
	if dir == "" {
		return nil, errors.New("trace: corpus directory is empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: opening corpus: %w", err)
	}
	return &Corpus{dir: dir}, nil
}

// Dir returns the corpus directory.
func (c *Corpus) Dir() string { return c.dir }

// Path returns the on-disk path of the trace named by id (which may or
// may not exist — see Has).
func (c *Corpus) Path(id string) (string, error) {
	canon, err := CanonicalTraceID(id)
	if err != nil {
		return "", err
	}
	return filepath.Join(c.dir, strings.Replace(canon, ":", "-", 1)+corpusExt), nil
}

// Has reports whether the trace named by id is present.
func (c *Corpus) Has(id string) bool {
	path, err := c.Path(id)
	if err != nil {
		return false
	}
	_, err = os.Stat(path)
	return err == nil
}

// List returns the canonical ids of every trace in the corpus, sorted.
func (c *Corpus) List() ([]string, error) {
	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, corpusExt) {
			continue
		}
		base := strings.TrimSuffix(name, corpusExt)
		hexPart, ok := strings.CutPrefix(base, "sha256-")
		if !ok {
			continue
		}
		id, err := CanonicalTraceID(hexPart)
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// CorpusWriter materializes one trace into the corpus. Records stream
// through a WriterV2 into a temporary sibling; Commit seals the
// container, fsyncs, and renames it to its content address — the
// write-tmp / fsync / rename discipline of internal/vfs, so a crash
// never leaves a half-written entry under a valid id.
type CorpusWriter struct {
	c   *Corpus
	f   *os.File
	tw  *WriterV2
	tmp string
}

// Create starts a new corpus entry.
func (c *Corpus) Create() (*CorpusWriter, error) {
	f, err := os.CreateTemp(c.dir, "ingest-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("trace: corpus create: %w", err)
	}
	return &CorpusWriter{c: c, f: f, tw: NewWriterV2(f), tmp: f.Name()}, nil
}

// Write appends one record.
func (cw *CorpusWriter) Write(r Record) error { return cw.tw.Write(r) }

// Count returns the number of records written so far.
func (cw *CorpusWriter) Count() uint64 { return cw.tw.Count() }

// Commit seals the container and publishes it under its content
// address, returning the canonical id. Committing records that are
// already in the corpus is a no-op dedup: the existing entry wins and
// the temporary file is discarded.
func (cw *CorpusWriter) Commit() (string, error) {
	if err := cw.tw.Close(); err != nil {
		cw.Abort()
		return "", err
	}
	id := cw.tw.ContentHash()
	path, err := cw.c.Path(id)
	if err != nil {
		cw.Abort()
		return "", err
	}
	if err := cw.f.Sync(); err != nil {
		cw.Abort()
		return "", fmt.Errorf("trace: corpus commit: %w", err)
	}
	if err := cw.f.Close(); err != nil {
		os.Remove(cw.tmp)
		return "", fmt.Errorf("trace: corpus commit: %w", err)
	}
	if _, err := os.Stat(path); err == nil {
		os.Remove(cw.tmp) // dedup: identical content already stored
		return id, nil
	}
	if err := os.Rename(cw.tmp, path); err != nil {
		os.Remove(cw.tmp)
		return "", fmt.Errorf("trace: corpus commit: %w", err)
	}
	syncCorpusDir(cw.c.dir)
	return id, nil
}

// Abort discards the entry.
func (cw *CorpusWriter) Abort() {
	cw.f.Close()
	os.Remove(cw.tmp)
}

// IngestFrom streams an encoded trace (any supported container) from r
// into the corpus and returns the canonical id of the stored entry.
// The records are decoded and re-encoded through a CorpusWriter, so
// the stored entry is content-addressed by construction: a truncated,
// corrupted, or maliciously renamed source can never land under a
// wrong id. Cluster workers use it to fetch traces they lack from the
// coordinator — pass the id the caller expects in want ("" skips the
// check) and a mismatch (or any decode error) aborts the ingest.
func (c *Corpus) IngestFrom(r io.Reader, want string) (string, error) {
	if want != "" {
		canon, err := CanonicalTraceID(want)
		if err != nil {
			return "", err
		}
		want = canon
	}
	dec := NewDecoder(r)
	cw, err := c.Create()
	if err != nil {
		return "", err
	}
	for {
		rec, ok := dec.Next()
		if !ok {
			break
		}
		if err := cw.Write(rec); err != nil {
			cw.Abort()
			return "", fmt.Errorf("trace: ingest: %w", err)
		}
	}
	if err := dec.Err(); err != nil {
		cw.Abort()
		return "", fmt.Errorf("trace: ingest: %w", err)
	}
	if cw.Count() == 0 {
		cw.Abort()
		return "", errors.New("trace: ingest: source holds no records")
	}
	id, err := cw.Commit()
	if err != nil {
		return "", err
	}
	if want != "" && id != want {
		// Commit already deduped/published under the true id; remove
		// nothing (the content is valid, just not what was asked for)
		// but fail the fetch so the caller does not trust it.
		return "", fmt.Errorf("trace: ingest: content hashes to %s, want %s", id, want)
	}
	return id, nil
}

// syncCorpusDir fsyncs the corpus directory so a just-renamed entry
// survives a crash (best effort, like vfs).
func syncCorpusDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// CorpusFile is one opened corpus trace: a streaming Decoder plus its
// Close.
type CorpusFile struct {
	Decoder
	f *os.File
}

// Close releases the underlying file.
func (cf *CorpusFile) Close() error { return cf.f.Close() }

// Open returns a streaming decoder over the trace named by id.
func (c *Corpus) Open(id string) (*CorpusFile, error) {
	path, err := c.Path(id)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("trace: %s not in corpus %s", id, c.dir)
		}
		return nil, err
	}
	return &CorpusFile{Decoder: NewDecoder(f), f: f}, nil
}

// OpenLoop returns an endless Reader that replays the trace named by
// id, reopening the file at each clean end — the trace never fully
// materializes in memory no matter how many passes a long simulation
// needs (the paper restarts early-finishing benchmarks in mixes,
// §4.1). The first pass is opened eagerly so a missing entry is an
// error here, not later; a decode failure mid-simulation (the file
// corrupted after open) panics with the decoder's error, which the
// experiment engine's panic isolation converts to a structured
// per-cell failure.
func (c *Corpus) OpenLoop(id string) (Reader, error) {
	canon, err := CanonicalTraceID(id)
	if err != nil {
		return nil, err
	}
	first, err := c.Open(canon)
	if err != nil {
		return nil, err
	}
	return &loopFile{c: c, id: canon, cur: first}, nil
}

type loopFile struct {
	c   *Corpus
	id  string
	cur *CorpusFile
	n   uint64 // records delivered in the current pass
}

// Next implements Reader.
func (lf *loopFile) Next() (Record, bool) {
	for {
		rec, ok := lf.cur.Next()
		if ok {
			lf.n++
			return rec, true
		}
		if err := lf.cur.Err(); err != nil {
			lf.cur.Close()
			panic(fmt.Errorf("trace: replaying %s: %w", lf.id, err))
		}
		if lf.n == 0 {
			lf.cur.Close()
			panic(fmt.Errorf("trace: replaying %s: trace is empty, cannot loop", lf.id))
		}
		lf.cur.Close()
		next, err := lf.c.Open(lf.id)
		if err != nil {
			panic(fmt.Errorf("trace: replaying %s: %w", lf.id, err))
		}
		lf.cur = next
		lf.n = 0
	}
}
