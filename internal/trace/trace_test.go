package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestSliceReader(t *testing.T) {
	recs := []Record{
		{PC: 1, Op: NonMem},
		{PC: 2, Op: Load, Addr: 0x1000},
		{PC: 3, Op: Store, Addr: 0x2000},
	}
	r := NewSliceReader(recs)
	for i, want := range recs {
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("record %d: got %+v,%v want %+v", i, got, ok, want)
		}
	}
	if _, ok := r.Next(); ok {
		t.Error("Next after exhaustion returned ok")
	}
	r.Reset()
	if got, ok := r.Next(); !ok || got != recs[0] {
		t.Error("Reset did not rewind")
	}
}

func TestLoopReaderWraps(t *testing.T) {
	recs := []Record{{PC: 1}, {PC: 2}}
	r := NewLoopReader(recs)
	for i := 0; i < 10; i++ {
		got, ok := r.Next()
		if !ok {
			t.Fatal("LoopReader returned not-ok")
		}
		if got.PC != recs[i%2].PC {
			t.Fatalf("iteration %d: PC %d, want %d", i, got.PC, recs[i%2].PC)
		}
	}
}

func TestLoopReaderEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLoopReader(nil) did not panic")
		}
	}()
	NewLoopReader(nil)
}

func TestCollect(t *testing.T) {
	r := NewLoopReader([]Record{{PC: 7}})
	got := Collect(r, 5)
	if len(got) != 5 {
		t.Fatalf("Collect returned %d records, want 5", len(got))
	}
	short := Collect(NewSliceReader([]Record{{PC: 1}}), 10)
	if len(short) != 1 {
		t.Fatalf("Collect over short stream returned %d, want 1", len(short))
	}
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	recs := make([]Record, 5000)
	pc := uint64(0x400000)
	for i := range recs {
		pc += uint64(rng.Intn(8)) * 4
		op := Op(rng.Intn(3))
		r := Record{PC: pc, Op: op}
		if op != NonMem {
			r.Addr = mem.Addr(rng.Uint64() >> 16)
			r.LoadDep = uint8(rng.Intn(4))
		}
		recs[i] = r
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(recs))
	}

	fr := NewFileReader(&buf)
	for i, want := range recs {
		got, ok := fr.Next()
		if !ok {
			t.Fatalf("record %d: premature EOF (err=%v)", i, fr.Err())
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := fr.Next(); ok {
		t.Error("reader returned a record after EOF")
	}
	if fr.Err() != nil {
		t.Errorf("Err = %v, want nil at clean EOF", fr.Err())
	}
}

func TestCodecRejectsBadMagic(t *testing.T) {
	fr := NewFileReader(bytes.NewReader([]byte{'X', 'X', 'X', 'X', 0, 0}))
	if _, ok := fr.Next(); ok {
		t.Fatal("decoded a record from garbage")
	}
	if fr.Err() == nil {
		t.Error("Err = nil, want bad-magic error")
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{PC: 100, Op: Load, Addr: 0x5000}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-record: reader must stop AND report the truncation —
	// a torn file must never pass for a clean, shorter trace.
	fr := NewFileReader(bytes.NewReader(full[:len(full)-1]))
	if _, ok := fr.Next(); ok {
		t.Error("decoded a record from truncated input")
	}
	if fr.Err() == nil {
		t.Error("Err = nil for a mid-record truncation")
	}
}

func TestCodecCompactness(t *testing.T) {
	// Sequential PCs and small addresses should delta-encode well below
	// the naive 17 bytes/record.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		op := NonMem
		if i%4 == 0 {
			op = Load
		}
		if err := w.Write(Record{PC: 0x400000 + uint64(i*4), Op: op, Addr: mem.Addr(i * 64)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	perRec := float64(buf.Len()) / 1000
	if perRec > 6 {
		t.Errorf("%.1f bytes/record, want <= 6 for sequential code", perRec)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(pcs []uint32, addrs []uint32, ops []uint8) bool {
		n := len(pcs)
		if len(addrs) < n {
			n = len(addrs)
		}
		if len(ops) < n {
			n = len(ops)
		}
		recs := make([]Record, n)
		for i := 0; i < n; i++ {
			recs[i] = Record{PC: uint64(pcs[i]), Op: Op(ops[i] % 3)}
			if recs[i].Op != NonMem {
				recs[i].Addr = mem.Addr(addrs[i])
				recs[i].LoadDep = ops[i] % 5
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		fr := NewFileReader(&buf)
		for _, want := range recs {
			got, ok := fr.Next()
			if !ok || got != want {
				return false
			}
		}
		_, ok := fr.Next()
		return !ok && fr.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
