package trace

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestCorpusRoundTrip(t *testing.T) {
	c, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(10, 3000)
	cw, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "sha256:") || len(id) != 7+64 {
		t.Fatalf("bad id %q", id)
	}
	if !c.Has(id) {
		t.Fatal("Has = false right after Commit")
	}
	// Reopen by hash and replay: identical records, verified end.
	f, err := c.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, want := range recs {
		got, ok := f.Next()
		if !ok {
			t.Fatalf("record %d: premature end: %v", i, f.Err())
		}
		if got != want {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
	}
	if _, ok := f.Next(); ok {
		t.Fatal("extra records")
	}
	if f.Err() != nil {
		t.Fatal(f.Err())
	}
	// The bare-hex spelling names the same entry.
	if !c.Has(strings.TrimPrefix(id, "sha256:")) {
		t.Error("bare-hex id not accepted")
	}
	ids, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("List = %v, want [%s]", ids, id)
	}
}

func TestCorpusDedup(t *testing.T) {
	c, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(11, 500)
	put := func() string {
		cw, err := c.Create()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if err := cw.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		id, err := cw.Commit()
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	a, b := put(), put()
	if a != b {
		t.Fatalf("same records, different ids: %s vs %s", a, b)
	}
	ids, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("dedup left %d entries", len(ids))
	}
	// No temp files left behind.
	ents, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestCorpusOpenMissing(t *testing.T) {
	c, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	id := "sha256:" + strings.Repeat("ab", 32)
	if _, err := c.Open(id); err == nil {
		t.Fatal("Open of a missing trace succeeded")
	}
	if _, err := c.OpenLoop(id); err == nil {
		t.Fatal("OpenLoop of a missing trace succeeded")
	}
	if _, err := c.Open("not-a-hash"); err == nil {
		t.Fatal("Open of a malformed id succeeded")
	}
}

func TestCorpusLoop(t *testing.T) {
	c, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(12, 100)
	cw, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}
	lr, err := c.OpenLoop(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*len(recs)+7; i++ {
		got, ok := lr.Next()
		if !ok {
			t.Fatalf("loop reader ended at %d", i)
		}
		if want := recs[i%len(recs)]; got != want {
			t.Fatalf("loop record %d: got %+v want %+v", i, got, want)
		}
	}
}

// TestCorpusLoopDetectsCorruption: a corpus entry corrupted on disk
// panics the replay (which the experiment engine's panic isolation
// turns into a per-cell failure) instead of feeding garbage to the
// simulator.
func TestCorpusLoopDetectsCorruption(t *testing.T) {
	c, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cw, err := c.Create()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range genRecords(13, 200) {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}
	path, err := c.Path(id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	lr, err := c.OpenLoop(id)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("loop over a corrupted trace did not panic")
		}
	}()
	for i := 0; i < 1000; i++ {
		if _, ok := lr.Next(); !ok {
			t.Fatal("loop reader returned not-ok instead of panicking")
		}
	}
}

func TestCanonicalTraceID(t *testing.T) {
	hex64 := strings.Repeat("0123456789abcdef", 4)
	for _, tc := range []struct {
		in, want string
	}{
		{hex64, "sha256:" + hex64},
		{"sha256:" + hex64, "sha256:" + hex64},
	} {
		got, err := CanonicalTraceID(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("CanonicalTraceID(%q) = %q, %v", tc.in, got, err)
		}
	}
	for _, bad := range []string{"", "abc", "sha256:xyz", strings.Repeat("G", 64), "sha256:" + hex64 + "00"} {
		if _, err := CanonicalTraceID(bad); err == nil {
			t.Errorf("CanonicalTraceID(%q) accepted", bad)
		}
	}
}

// TestCorpusIngestFrom covers the cluster trace-fetch path: a corpus
// entry streamed as raw bytes ingests into a second corpus under the
// same content hash, and a stream whose content does not match the
// requested hash is rejected — though the content itself, being valid,
// is published under its true id.
func TestCorpusIngestFrom(t *testing.T) {
	src, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recs := genRecords(14, 1500)
	cw, err := src.Create()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := cw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	id, err := cw.Commit()
	if err != nil {
		t.Fatal(err)
	}
	path, err := src.Path(id)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.IngestFrom(bytes.NewReader(raw), id)
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("ingested id %s, want %s", got, id)
	}
	if !dst.Has(id) {
		t.Fatal("destination corpus lacks the ingested trace")
	}
	f, err := dst.Open(id)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i, want := range recs {
		rec, ok := f.Next()
		if !ok {
			t.Fatalf("record %d: premature end: %v", i, f.Err())
		}
		if rec != want {
			t.Fatalf("record %d: got %+v want %+v", i, rec, want)
		}
	}

	// The bare-hex spelling of the wanted id is accepted.
	bare, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got, err := bare.IngestFrom(bytes.NewReader(raw), strings.TrimPrefix(id, "sha256:")); err != nil || got != id {
		t.Fatalf("bare-hex ingest = %q, %v", got, err)
	}

	// Wrong expected hash: the fetch fails, but the (valid) content is
	// still published under its true id.
	mism, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wrong := "sha256:" + strings.Repeat("ab", 32)
	if _, err := mism.IngestFrom(bytes.NewReader(raw), wrong); err == nil {
		t.Fatal("hash-mismatched ingest succeeded")
	}
	if !mism.Has(id) {
		t.Error("mismatched ingest discarded valid content instead of publishing it under its true id")
	}
	if mism.Has(wrong) {
		t.Error("mismatched ingest published content under the wrong id")
	}

	// An empty stream is rejected outright.
	if _, err := mism.IngestFrom(bytes.NewReader(nil), ""); err == nil {
		t.Fatal("empty ingest succeeded")
	}

	// A truncated stream is rejected and publishes nothing new.
	cut, err := OpenCorpus(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cut.IngestFrom(bytes.NewReader(raw[:len(raw)-3]), id); err == nil {
		t.Fatal("truncated ingest succeeded")
	}
	if cut.Has(id) {
		t.Error("truncated ingest published the full trace's id")
	}
}
