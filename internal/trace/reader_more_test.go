package trace

import "testing"

func TestFuncReader(t *testing.T) {
	n := 0
	r := FuncReader(func() (Record, bool) {
		n++
		if n > 3 {
			return Record{}, false
		}
		return Record{PC: uint64(n)}, true
	})
	got := Collect(r, 10)
	if len(got) != 3 {
		t.Fatalf("collected %d records, want 3", len(got))
	}
	for i, r := range got {
		if r.PC != uint64(i+1) {
			t.Errorf("record %d PC = %d", i, r.PC)
		}
	}
}

func TestFileReaderErrSticky(t *testing.T) {
	fr := NewFileReader(errReader{})
	if _, ok := fr.Next(); ok {
		t.Fatal("Next succeeded on a failing reader")
	}
	if fr.Err() == nil {
		t.Fatal("Err is nil after read failure")
	}
	// Subsequent calls stay failed without panicking.
	if _, ok := fr.Next(); ok {
		t.Error("Next succeeded after sticky error")
	}
}

type errReader struct{}

func (errReader) Read([]byte) (int, error) { return 0, errBoom }

var errBoom = &stickyErr{}

type stickyErr struct{}

func (*stickyErr) Error() string { return "boom" }
