package trace

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

// FuzzTraceDecode feeds arbitrary bytes to the binary trace decoder.
// Invariants: never panic, never return an out-of-range op, and any
// stream that decodes cleanly (EOF, no error) must round-trip — the
// decoded records re-encode and re-decode to the identical sequence.
func FuzzTraceDecode(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(Record{PC: 0x1000, Op: NonMem})
	w.Write(Record{PC: 0x1004, Op: Load, Addr: mem.Addr(0x2000)})
	w.Write(Record{PC: 0x1008, Op: Store, Addr: mem.Addr(0x3000)})
	w.Write(Record{PC: 0x0ff0, Op: Load, Addr: mem.Addr(0x2040), LoadDep: 1})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:5]) // truncated mid-record
	f.Add([]byte{})
	f.Add([]byte("TRC\x01"))
	f.Add([]byte("not a trace"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFileReader(bytes.NewReader(data))
		var recs []Record
		// One record consumes at least one byte, so len(data)+1 bounds
		// the stream; more means the decoder is inventing records.
		for len(recs) <= len(data) {
			rec, ok := fr.Next()
			if !ok {
				break
			}
			if rec.Op > Store {
				t.Fatalf("decoder returned out-of-range op %d", rec.Op)
			}
			recs = append(recs, rec)
		}
		if len(recs) > len(data) {
			t.Fatalf("decoded %d records from %d bytes", len(recs), len(data))
		}
		if fr.Err() != nil {
			return // corrupt input, rejected: nothing more to check
		}
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-encoding decoded record: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		fr2 := NewFileReader(bytes.NewReader(out.Bytes()))
		for i, want := range recs {
			got, ok := fr2.Next()
			if !ok {
				t.Fatalf("round-trip lost record %d (of %d): %v", i, len(recs), fr2.Err())
			}
			if got != want {
				t.Fatalf("round-trip changed record %d: %+v -> %+v", i, want, got)
			}
		}
		if _, ok := fr2.Next(); ok {
			t.Fatal("round-trip invented extra records")
		}
	})
}

// FuzzTraceV2Decode feeds arbitrary bytes to the TRC2 container
// decoder. Invariants: never panic, never return an out-of-range op,
// never allocate unboundedly from a hostile length prefix, and any
// stream that decodes cleanly must have been footer-verified and must
// round-trip through the v2 writer to the identical record sequence.
func FuzzTraceV2Decode(f *testing.F) {
	seed := func(recs []Record, block int) []byte {
		var buf bytes.Buffer
		w := NewWriterV2(&buf)
		if block > 0 {
			w.SetBlockRecords(block)
		}
		for _, r := range recs {
			w.Write(r)
		}
		w.Close()
		return buf.Bytes()
	}
	valid := seed([]Record{
		{PC: 0x1000, Op: NonMem},
		{PC: 0x1004, Op: Load, Addr: mem.Addr(0x2000)},
		{PC: 0x1008, Op: Store, Addr: mem.Addr(0x3000)},
		{PC: 0x0ff0, Op: Load, Addr: mem.Addr(0x2040), LoadDep: 1},
	}, 2)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn footer
	f.Add(valid[:7])            // torn frame header
	f.Add(seed(nil, 0))         // empty trace
	f.Add([]byte("TRC2"))
	f.Add([]byte("TRC\x01not this codec"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewReaderV2(bytes.NewReader(data))
		var recs []Record
		// Flate can expand, so records may legitimately outnumber input
		// bytes; bound the walk far above what the caps allow to catch a
		// decoder looping forever.
		const lim = 1 << 23
		for len(recs) < lim {
			rec, ok := fr.Next()
			if !ok {
				break
			}
			if rec.Op > Store {
				t.Fatalf("decoder returned out-of-range op %d", rec.Op)
			}
			recs = append(recs, rec)
		}
		if fr.Err() != nil {
			return // corrupt input, rejected: nothing more to check
		}
		if len(recs) == lim {
			t.Fatalf("decoder produced %d records without erroring", lim)
		}
		// A clean end means the footer verified; re-encode and compare.
		var out bytes.Buffer
		w := NewWriterV2(&out)
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatalf("re-encoding decoded record: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if w.ContentHash() != fr.ContentHash() {
			t.Fatalf("content hash changed across round-trip: %s -> %s", fr.ContentHash(), w.ContentHash())
		}
		fr2 := NewReaderV2(bytes.NewReader(out.Bytes()))
		for i, want := range recs {
			got, ok := fr2.Next()
			if !ok {
				t.Fatalf("round-trip lost record %d (of %d): %v", i, len(recs), fr2.Err())
			}
			if got != want {
				t.Fatalf("round-trip changed record %d: %+v -> %+v", i, want, got)
			}
		}
		if _, ok := fr2.Next(); ok {
			t.Fatal("round-trip invented extra records")
		}
		if fr2.Err() != nil {
			t.Fatalf("round-trip of a clean stream failed: %v", fr2.Err())
		}
	})
}
