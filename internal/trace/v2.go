// TRC2: the framed, block-compressed trace container.
//
// The v1 codec is a raw varint stream — compact, but with no framing a
// file truncated mid-stream at a record boundary decodes as a clean,
// shorter trace, silently shortening every figure built from it. TRC2
// applies the PR 5 durability discipline to traces:
//
//	file   := "TRC2" frame* footerFrame
//	frame  := kind(1) | len(u32 LE) | crc32c(payload)(u32 LE) | payload
//
// A 'B' frame's payload is a DEFLATE-compressed block of records: a
// uvarint record count followed by the records in the v1 per-record
// encoding, with the PC delta chain reset at each block start so every
// block decodes independently. The final 'F' frame's payload (stored
// uncompressed) is the total record count and the SHA-256 content hash
// of the canonical record stream. Every payload byte is covered by a
// CRC32-C; the framing fields themselves are cross-checked by
// structure (kind whitelist, length caps, footer totals), so a torn or
// bit-flipped file is detected and reported — never silently dropped
// or shortened. The content hash doubles as the trace's identity in
// the content-addressed corpus (corpus.go).

package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"

	"repro/internal/mem"
)

// magicV2 identifies a TRC2 container.
var magicV2 = [4]byte{'T', 'R', 'C', '2'}

// Frame kinds.
const (
	frameBlock  = 'B'
	frameFooter = 'F'
)

const (
	// defaultBlockRecords is how many records the writer packs per
	// block: big enough to compress well, small enough that a streaming
	// reader holds only ~hundreds of KB decompressed.
	defaultBlockRecords = 1 << 16
	// maxBlockPayload caps a block frame's compressed payload; a length
	// prefix beyond it is rejected before any allocation, so a hostile
	// or corrupt length cannot balloon memory.
	maxBlockPayload = 64 << 20
	// maxBlockRecords caps the per-block record count a reader will
	// accept (the writer stays far below it).
	maxBlockRecords = 1 << 22
	// footerPayloadLen: uvarint total (1..10 bytes) + 32-byte SHA-256.
	footerPayloadMin = 1 + sha256.Size
	footerPayloadMax = binary.MaxVarintLen64 + sha256.Size
)

// crcV2 is the Castagnoli table shared with the checkpoint store —
// hardware-accelerated, the standard storage checksum.
var crcV2 = crc32.MakeTable(crc32.Castagnoli)

// hashRecord folds one record into the running content hash in a
// canonical fixed-width encoding (op, dep, PC, addr — addr zero for
// non-memory records, matching what any decoder returns). The hash is
// independent of block boundaries, so the same records always name
// the same corpus entry no matter how they were buffered.
func hashRecord(h hash.Hash, r Record) {
	var b [18]byte
	b[0] = byte(r.Op)
	b[1] = r.LoadDep
	binary.LittleEndian.PutUint64(b[2:], r.PC)
	if r.Op != NonMem {
		binary.LittleEndian.PutUint64(b[10:], uint64(r.Addr))
	}
	h.Write(b[:])
}

// WriterV2 streams records into a TRC2 container. Records buffer into
// blocks of blockRecords, each compressed and framed independently;
// Close flushes the final partial block and the footer. Nothing is
// held beyond one block, so arbitrarily long traces write in constant
// memory.
type WriterV2 struct {
	w     *bufio.Writer
	block bytes.Buffer // encoded records of the open block
	comp  bytes.Buffer // scratch for the compressed payload
	fw    *flate.Writer

	blockRecords int
	blockN       uint64
	lastPC       uint64
	n            uint64
	hash         hash.Hash
	sum          []byte // content hash, fixed at Close

	header bool
	closed bool
	err    error
}

// NewWriterV2 returns a TRC2 writer on w with the default block size.
// The caller must Close it to emit the footer; a container without a
// footer reads back as truncated.
func NewWriterV2(w io.Writer) *WriterV2 {
	fw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		// flate.NewWriter only fails on an invalid level; BestSpeed is valid.
		panic(fmt.Sprintf("trace: flate init: %v", err))
	}
	return &WriterV2{
		w:            bufio.NewWriter(w),
		fw:           fw,
		blockRecords: defaultBlockRecords,
		hash:         sha256.New(),
	}
}

// SetBlockRecords overrides the records-per-block target (tests use
// tiny blocks to exercise multi-block files cheaply). It must be
// called before the first Write.
func (tw *WriterV2) SetBlockRecords(n int) {
	if tw.n != 0 || tw.block.Len() != 0 {
		panic("trace: SetBlockRecords after Write")
	}
	if n < 1 || n > maxBlockRecords {
		panic("trace: SetBlockRecords out of range")
	}
	tw.blockRecords = n
}

// Write appends one record.
func (tw *WriterV2) Write(r Record) error {
	if tw.err != nil {
		return tw.err
	}
	if tw.closed {
		return errors.New("trace: Write after Close")
	}
	var buf [binary.MaxVarintLen64*2 + 3]byte
	buf[0] = byte(r.Op)
	if r.LoadDep != 0 {
		buf[0] |= 0x80
	}
	n := 1
	if r.LoadDep != 0 {
		buf[n] = r.LoadDep
		n++
	}
	n += binary.PutVarint(buf[n:], int64(r.PC)-int64(tw.lastPC))
	tw.lastPC = r.PC
	if r.Op != NonMem {
		n += binary.PutUvarint(buf[n:], uint64(r.Addr))
	}
	tw.block.Write(buf[:n])
	tw.blockN++
	tw.n++
	hashRecord(tw.hash, r)
	if tw.blockN >= uint64(tw.blockRecords) {
		if err := tw.flushBlock(); err != nil {
			return err
		}
	}
	return nil
}

// flushBlock compresses and frames the open block.
func (tw *WriterV2) flushBlock() error {
	if tw.blockN == 0 {
		return nil
	}
	if err := tw.writeHeader(); err != nil {
		return err
	}
	tw.comp.Reset()
	var cnt [binary.MaxVarintLen64]byte
	tw.fw.Reset(&tw.comp)
	if _, err := tw.fw.Write(cnt[:binary.PutUvarint(cnt[:], tw.blockN)]); err != nil {
		return tw.fail(err)
	}
	if _, err := tw.fw.Write(tw.block.Bytes()); err != nil {
		return tw.fail(err)
	}
	if err := tw.fw.Close(); err != nil {
		return tw.fail(err)
	}
	if err := tw.writeFrame(frameBlock, tw.comp.Bytes()); err != nil {
		return err
	}
	tw.block.Reset()
	tw.blockN = 0
	tw.lastPC = 0 // each block's delta chain starts fresh
	return nil
}

// writeHeader emits the magic once.
func (tw *WriterV2) writeHeader() error {
	if tw.header {
		return nil
	}
	if _, err := tw.w.Write(magicV2[:]); err != nil {
		return tw.fail(err)
	}
	tw.header = true
	return nil
}

// writeFrame emits one kind/len/crc/payload frame.
func (tw *WriterV2) writeFrame(kind byte, payload []byte) error {
	var hdr [9]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:], crc32.Checksum(payload, crcV2))
	if _, err := tw.w.Write(hdr[:]); err != nil {
		return tw.fail(err)
	}
	if _, err := tw.w.Write(payload); err != nil {
		return tw.fail(err)
	}
	return nil
}

func (tw *WriterV2) fail(err error) error {
	if tw.err == nil {
		tw.err = fmt.Errorf("trace: writing TRC2: %w", err)
	}
	return tw.err
}

// Close flushes the final partial block, writes the footer, and
// flushes buffered output. It does not close the underlying writer.
// Close is idempotent; after a successful Close, ContentHash names the
// full record stream.
func (tw *WriterV2) Close() error {
	if tw.closed {
		return tw.err
	}
	if tw.err != nil {
		return tw.err
	}
	if err := tw.flushBlock(); err != nil {
		return err
	}
	if err := tw.writeHeader(); err != nil {
		return err
	}
	tw.sum = tw.hash.Sum(nil)
	payload := make([]byte, 0, footerPayloadMax)
	var cnt [binary.MaxVarintLen64]byte
	payload = append(payload, cnt[:binary.PutUvarint(cnt[:], tw.n)]...)
	payload = append(payload, tw.sum...)
	if err := tw.writeFrame(frameFooter, payload); err != nil {
		return err
	}
	if err := tw.w.Flush(); err != nil {
		return tw.fail(err)
	}
	tw.closed = true
	return nil
}

// Count returns the number of records written.
func (tw *WriterV2) Count() uint64 { return tw.n }

// ContentHash returns the canonical identity of the record stream,
// "sha256:<hex>". Valid after Close.
func (tw *WriterV2) ContentHash() string {
	if tw.sum == nil {
		panic("trace: ContentHash before Close")
	}
	return "sha256:" + hex.EncodeToString(tw.sum)
}

// ReaderV2 decodes a TRC2 container as a stream: one frame is resident
// at a time, so traces never fully materialize in memory. After the
// stream is exhausted, Err is nil only if the file ended with an
// intact footer whose record count and content hash match what was
// decoded — a torn, truncated, or bit-flipped file always reports an
// error.
type ReaderV2 struct {
	r   *bufio.Reader
	err error

	header bool
	done   bool

	payload []byte // reusable compressed-frame buffer
	block   []byte // decompressed records of the current block
	pos     int
	remain  uint64 // records left in the current block
	lastPC  uint64

	n    uint64
	hash hash.Hash
	sum  []byte // footer hash, after a clean end
}

// NewReaderV2 returns a streaming decoder for a TRC2 container.
func NewReaderV2(r io.Reader) *ReaderV2 {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &ReaderV2{r: br, hash: sha256.New()}
}

// Err returns the first decoding error; nil only after every block and
// the footer verified.
func (fr *ReaderV2) Err() error { return fr.err }

// Count returns the number of records decoded so far (the verified
// total once the stream ended cleanly).
func (fr *ReaderV2) Count() uint64 { return fr.n }

// ContentHash returns "sha256:<hex>" of the decoded stream. Valid only
// after the stream ended with Err() == nil.
func (fr *ReaderV2) ContentHash() string {
	if fr.sum == nil {
		panic("trace: ContentHash before clean end of stream")
	}
	return "sha256:" + hex.EncodeToString(fr.sum)
}

func (fr *ReaderV2) fail(format string, args ...any) {
	if fr.err == nil {
		fr.err = fmt.Errorf("trace: TRC2: "+format, args...)
	}
}

// Next implements Reader.
func (fr *ReaderV2) Next() (Record, bool) {
	if fr.err != nil || fr.done {
		return Record{}, false
	}
	if !fr.header {
		var got [4]byte
		if _, err := io.ReadFull(fr.r, got[:]); err != nil {
			fr.fail("truncated magic: %w", unexpected(err))
			return Record{}, false
		}
		if got != magicV2 {
			fr.fail("bad magic %v", got)
			return Record{}, false
		}
		fr.header = true
	}
	for fr.remain == 0 {
		if !fr.nextFrame() {
			return Record{}, false
		}
	}
	rec, ok := fr.decodeRecord()
	if !ok {
		return Record{}, false
	}
	fr.remain--
	fr.n++
	hashRecord(fr.hash, rec)
	if fr.remain == 0 && fr.pos != len(fr.block) {
		fr.fail("block carries %d bytes past its %d records", len(fr.block)-fr.pos, fr.n)
		return Record{}, false
	}
	return rec, true
}

// nextFrame reads and validates the next frame. It returns true when a
// non-empty block is resident; false at the clean end of the stream or
// on error (distinguished by fr.err).
func (fr *ReaderV2) nextFrame() bool {
	kind, err := fr.r.ReadByte()
	if err != nil {
		// EOF here means the footer never arrived: the file is torn at a
		// frame boundary, which is exactly the silent-truncation case the
		// container exists to catch.
		if errors.Is(err, io.EOF) {
			fr.fail("missing footer (file truncated at a frame boundary): %w", io.ErrUnexpectedEOF)
		} else {
			fr.fail("reading frame: %w", err)
		}
		return false
	}
	var hdr [8]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		fr.fail("truncated frame header: %w", unexpected(err))
		return false
	}
	plen := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	switch kind {
	case frameBlock:
		if plen == 0 || plen > maxBlockPayload {
			fr.fail("block payload length %d out of range", plen)
			return false
		}
	case frameFooter:
		if plen < footerPayloadMin || plen > footerPayloadMax {
			fr.fail("footer payload length %d out of range", plen)
			return false
		}
	default:
		fr.fail("unknown frame kind %q", kind)
		return false
	}
	if cap(fr.payload) < int(plen) {
		fr.payload = make([]byte, plen)
	}
	fr.payload = fr.payload[:plen]
	if _, err := io.ReadFull(fr.r, fr.payload); err != nil {
		fr.fail("truncated frame payload: %w", unexpected(err))
		return false
	}
	if got := crc32.Checksum(fr.payload, crcV2); got != want {
		fr.fail("frame CRC mismatch (stored %08x, computed %08x)", want, got)
		return false
	}
	if kind == frameFooter {
		fr.finish(fr.payload)
		return false
	}
	return fr.openBlock(fr.payload)
}

// openBlock decompresses a verified block payload and validates its
// record count.
func (fr *ReaderV2) openBlock(payload []byte) bool {
	zr := flate.NewReader(bytes.NewReader(payload))
	raw, err := io.ReadAll(io.LimitReader(zr, maxBlockRecords*(binary.MaxVarintLen64*2+3)+binary.MaxVarintLen64))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fr.fail("decompressing block: %w", err)
		return false
	}
	cnt, n := binary.Uvarint(raw)
	if n <= 0 {
		fr.fail("block missing record count")
		return false
	}
	if cnt == 0 || cnt > maxBlockRecords {
		fr.fail("block record count %d out of range", cnt)
		return false
	}
	fr.block = raw[n:]
	fr.pos = 0
	fr.remain = cnt
	fr.lastPC = 0
	return true
}

// finish validates the footer against the decoded stream and checks
// for trailing garbage.
func (fr *ReaderV2) finish(payload []byte) {
	total, n := binary.Uvarint(payload)
	if n <= 0 || len(payload) != n+sha256.Size {
		fr.fail("malformed footer")
		return
	}
	if total != fr.n {
		fr.fail("footer records %d, decoded %d", total, fr.n)
		return
	}
	sum := fr.hash.Sum(nil)
	if !bytes.Equal(sum, payload[n:]) {
		fr.fail("content hash mismatch (footer %x, decoded %x)", payload[n:], sum)
		return
	}
	if _, err := fr.r.ReadByte(); err == nil {
		fr.fail("trailing data after footer")
		return
	} else if !errors.Is(err, io.EOF) {
		fr.fail("reading past footer: %w", err)
		return
	}
	fr.sum = sum
	fr.done = true
}

// decodeRecord decodes one record from the resident block.
func (fr *ReaderV2) decodeRecord() (Record, bool) {
	b := fr.block
	i := fr.pos
	if i >= len(b) {
		fr.fail("block truncated mid-record")
		return Record{}, false
	}
	opByte := b[i]
	i++
	var rec Record
	rec.Op = Op(opByte & 0x7F)
	if rec.Op > Store {
		fr.fail("bad op %d", rec.Op)
		return Record{}, false
	}
	if opByte&0x80 != 0 {
		if i >= len(b) {
			fr.fail("block truncated mid-record")
			return Record{}, false
		}
		rec.LoadDep = b[i]
		i++
	}
	dpc, n := binary.Varint(b[i:])
	if n <= 0 {
		fr.fail("block truncated mid-record")
		return Record{}, false
	}
	i += n
	fr.lastPC = uint64(int64(fr.lastPC) + dpc)
	rec.PC = fr.lastPC
	if rec.Op != NonMem {
		addr, n := binary.Uvarint(b[i:])
		if n <= 0 {
			fr.fail("block truncated mid-record")
			return Record{}, false
		}
		i += n
		rec.Addr = mem.Addr(addr)
	}
	fr.pos = i
	return rec, true
}

// unexpected maps io.EOF to io.ErrUnexpectedEOF: inside a frame or
// header, the stream has no right to end.
func unexpected(err error) error {
	if errors.Is(err, io.EOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}
